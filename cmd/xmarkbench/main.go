// Command xmarkbench regenerates the paper's evaluation (Figure 9): it
// runs the twenty XMark queries against the read-only pre/size/level
// schema ('ro') and the updatable pos/size/level schema ('up', built with
// ~20% of each logical page unused, mimicking a database after a series
// of XUpdate operations) and reports per-query times and the overhead of
// the updatable schema.
//
// Usage:
//
//	xmarkbench -sf 0.01,0.1 -fill 0.8 -page 1024 -mintime 200ms
//
// SF 0.01 and 0.1 correspond to the paper's 1.1 MB and 11 MB documents;
// add 1.0 for the 110 MB point if you have the memory and patience.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
	"mxq/internal/xmark"
)

func main() {
	sfList := flag.String("sf", "0.01,0.1", "comma-separated scale factors")
	fill := flag.Float64("fill", 0.8, "fill factor of the updatable schema (paper: 0.8)")
	page := flag.Int("page", 1024, "logical page size in tuples")
	minTime := flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per query")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	fmt.Println("XMark evaluation: read-only 'ro' vs updatable 'up' schema (Figure 9)")
	fmt.Printf("page size %d tuples, fill factor %.2f, seed %d\n\n", *page, *fill, *seed)

	type scaleResult struct {
		sf    float64
		mb    float64
		ro    [20]time.Duration
		up    [20]time.Duration
		nodes int
	}
	var results []scaleResult

	for _, sfStr := range strings.Split(*sfList, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(sfStr), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmarkbench: bad scale factor %q\n", sfStr)
			os.Exit(1)
		}
		fmt.Printf("--- SF %g: generating... ", sf)
		var buf bytes.Buffer
		n, err := xmark.NewGenerator(sf, *seed).WriteTo(&buf)
		check(err)
		fmt.Printf("%.2f MB; shredding... ", float64(n)/(1<<20))
		tree, err := shred.Parse(bytes.NewReader(buf.Bytes()), shred.Options{})
		check(err)
		buf.Reset()
		ro, err := rostore.Build(tree)
		check(err)
		up, err := core.Build(tree, core.Options{PageSize: *page, FillFactor: *fill})
		check(err)
		fmt.Printf("%d nodes\n", ro.LiveNodes())

		res := scaleResult{sf: sf, mb: float64(n) / (1 << 20), nodes: ro.LiveNodes()}
		for i, q := range xmark.Queries {
			res.ro[i] = measure(q, ro, *minTime)
			res.up[i] = measure(q, up, *minTime)
			fmt.Printf("  Q%-2d %-58s ro %10s  up %10s  %+6.1f%%\n",
				q.Num, q.Desc, fmtDur(res.ro[i]), fmtDur(res.up[i]), overhead(res.ro[i], res.up[i]))
		}
		results = append(results, res)
		fmt.Println()
	}

	// The paper's table: per query, ro and up seconds per scale.
	fmt.Println("read-only 'ro' vs updateable 'up' schema (seconds)")
	fmt.Printf("%-4s", "Q")
	for _, r := range results {
		fmt.Printf(" | %10s %10s", fmt.Sprintf("ro %.2gMB", r.mb), "up")
	}
	fmt.Println()
	for i := range xmark.Queries {
		fmt.Printf("Q%-3d", i+1)
		for _, r := range results {
			fmt.Printf(" | %10.4f %10.4f", r.ro[i].Seconds(), r.up[i].Seconds())
		}
		fmt.Println()
	}
	fmt.Printf("\noverhead of the updatable schema [%%]\n%-4s", "Q")
	for _, r := range results {
		fmt.Printf(" %10s", fmt.Sprintf("%.2gMB", r.mb))
	}
	fmt.Println()
	for i := range xmark.Queries {
		fmt.Printf("Q%-3d", i+1)
		for _, r := range results {
			fmt.Printf(" %+9.1f%%", overhead(r.ro[i], r.up[i]))
		}
		fmt.Println()
	}
	fmt.Printf("%-4s", "avg")
	for _, r := range results {
		var sum float64
		for i := range xmark.Queries {
			sum += overhead(r.ro[i], r.up[i])
		}
		fmt.Printf(" %+9.1f%%", sum/float64(len(xmark.Queries)))
	}
	fmt.Println()
	fmt.Println("\npaper (Figure 9): overhead <7% at 1.1MB, ~15% avg at 11MB, <30% avg at 1.1GB")
}

func measure(q xmark.Query, v xenc.DocView, minTime time.Duration) time.Duration {
	// Warm up once, then repeat until the budget is filled.
	if _, err := q.Run(v); err != nil {
		check(err)
	}
	var reps int
	start := time.Now()
	for time.Since(start) < minTime {
		if _, err := q.Run(v); err != nil {
			check(err)
		}
		reps++
	}
	return time.Since(start) / time.Duration(reps)
}

func overhead(ro, up time.Duration) float64 {
	if ro == 0 {
		return 0
	}
	return 100 * (float64(up)/float64(ro) - 1)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkbench:", err)
		os.Exit(1)
	}
}
