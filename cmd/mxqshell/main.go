// Command mxqshell is an interactive shell over the mxq XML database:
// load documents, run XPath queries, apply XUpdate modification lists,
// inspect storage statistics.
//
// Usage:
//
//	mxqshell [-page 1024] [-fill 0.8] [-dir data/]
//	         [-ckpt-bytes N] [-ckpt-records N] [doc.xml ...]
//
// Commands:
//
//	load <name> <file>     shred a document
//	docs                   list documents
//	q <name> <xpath>       run a query
//	u <name> <file.xu>     apply an XUpdate file
//	xml <name>             print the document
//	stats <name>           storage statistics
//	checkpoint <name>      write an online checkpoint (needs -dir)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mxq"
	"mxq/internal/shell"
)

func main() {
	page := flag.Int("page", 0, "logical page size in tuples (power of two)")
	fill := flag.Float64("fill", 0, "shredder fill factor (0,1]")
	dir := flag.String("dir", "", "durability directory (segmented WAL + checkpoints)")
	ckptBytes := flag.Int64("ckpt-bytes", 0, "auto-checkpoint once the WAL tail exceeds this many bytes (0 = off)")
	ckptRecords := flag.Int("ckpt-records", 0, "auto-checkpoint once the WAL tail exceeds this many records (0 = off)")
	flag.Parse()

	db, err := mxq.Open(mxq.Options{
		PageSize: *page, FillFactor: *fill, Dir: *dir,
		CheckpointEvery: mxq.CheckpointPolicy{Bytes: *ckptBytes, Records: *ckptRecords},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mxqshell:", err)
		os.Exit(1)
	}

	sh := shell.New(db, os.Stdout, os.Stderr)
	for _, path := range flag.Args() {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := sh.LoadFile(name, path); err != nil {
			fmt.Fprintln(os.Stderr, "mxqshell:", err)
			db.Close()
			os.Exit(1)
		}
		fmt.Printf("loaded %q from %s\n", name, path)
	}

	// Any failed command makes the whole run exit non-zero, so scripted
	// use (mxqshell < commands.txt) can rely on the status.
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("mxq> ")
	for sc.Scan() {
		quit, err := sh.Execute(sc.Text())
		if err != nil {
			failed = true
		}
		if quit {
			break
		}
		fmt.Print("mxq> ")
	}
	db.Close()
	if failed {
		os.Exit(1)
	}
}
