// Command xmarkgen generates deterministic XMark-shaped auction
// documents (the workload of the paper's evaluation).
//
// Usage:
//
//	xmarkgen -sf 0.01 -seed 42 -o auction.xml
//
// SF 0.01 corresponds to the paper's ~1 MB document, 0.1 to ~10 MB,
// 1 to ~100 MB.
package main

import (
	"flag"
	"fmt"
	"os"

	"mxq/internal/xmark"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1 ≈ 100 MB)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	n, err := xmark.NewGenerator(*sf, *seed).WriteTo(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		c := xmark.CountsFor(*sf)
		fmt.Fprintf(os.Stderr, "xmarkgen: wrote %.2f MB (%d persons, %d open auctions, %d closed auctions)\n",
			float64(n)/(1<<20), c.Persons, c.OpenAuctions, c.ClosedAuctions)
	}
}
