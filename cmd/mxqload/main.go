// Command mxqload is a load generator for mxqd with two drive modes:
//
//   - Closed loop (default): N concurrent sessions issue requests
//     back-to-back. Throughput is whatever the server sustains;
//     latency excludes queueing the generator itself caused.
//   - Open loop (-rate R): arrivals are scheduled at R requests/second
//     regardless of how fast responses come back, and latency is
//     measured from the scheduled arrival time — so server backlog
//     shows up as latency instead of being hidden by a slowed-down
//     generator (no coordinated omission).
//
// Both modes report throughput and p50/p99 latency as one JSON line —
// the format the CI smoke job appends to BENCH_ci.json.
//
//	mxqload -addr 127.0.0.1:4477 -sessions 1000 -duration 10s -sf 0.01
//	mxqload -addr 127.0.0.1:4477 -sessions 200 -rate 5000 -duration 10s -sf 0
//
// With -replica, queries route to a follower and carry the session's
// last commit LSN (read-your-writes): the follower parks each read
// until it has applied the write it depends on, and a read that cannot
// be served in time fails typed (counted as "stale", never silently
// wrong). Exit status is non-zero if any request failed; overload
// rejections and stale reads are counted separately and only fail the
// run without -allow-overload / -allow-stale.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mxq/client"
	"mxq/internal/xmark"
)

var bg = context.Background()

// queries is the read mix: plain scans, a sequence filter, an
// aggregation, and a variable binding — the shapes a session workload
// exercises through the prepared-statement cache.
var queries = []struct {
	q    string
	vars map[string]string
}{
	{q: `count(//person)`},
	{q: `//open_auction/bidder/increase/text()`},
	{q: `//item[payment]/@id`},
	{q: `//person[watches]/name/text()`},
	{q: `//person[@id = $id]/name/text()`, vars: map[string]string{"id": "person0"}},
}

// updateMod rewrites one person's name: constant-size, so a long run
// does not grow the document.
const updateMod = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">` +
	`<xupdate:update select="/site/people/person[1]/name">loadgen</xupdate:update></xupdate:modifications>`

type report struct {
	Name       string  `json:"name"`
	Mode       string  `json:"mode"` // "closed" or "open"
	Sessions   int     `json:"sessions"`
	RateTarget float64 `json:"rate_target,omitempty"` // open loop only
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Errors     int64   `json:"errors"`
	Overloaded int64   `json:"overloaded"`
	Stale      int64   `json:"stale"`
	// Lag is the follower's remaining record lag (primary WAL tail −
	// follower applied LSN) sampled after the run; only with -replica.
	Lag *int64 `json:"lag_records,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4477", "mxqd address (the primary)")
	replica := flag.String("replica", "", "follower address; queries route there with read-your-writes")
	sessions := flag.Int("sessions", 100, "concurrent sessions (connections)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	docName := flag.String("doc", "xmark", "document name")
	sf := flag.Float64("sf", 0.01, "XMark scale factor to generate and load (0 = use an existing document)")
	seed := flag.Uint64("seed", 42, "generator seed")
	updateFrac := flag.Float64("update-frac", 0.05, "fraction of requests that are updates")
	allowOverload := flag.Bool("allow-overload", false, "overload rejections do not fail the run")
	allowStale := flag.Bool("allow-stale", false, "stale read-your-writes rejections do not fail the run")
	maxLag := flag.Int64("max-lag", -1, "with -replica: fail unless follower lag converges to at most this many records (-1 = report only)")
	name := flag.String("name", "mxqd_load", "benchmark name in the JSON report")
	flag.Parse()

	if *sf > 0 {
		var b strings.Builder
		if _, err := xmark.NewGenerator(*sf, *seed).WriteTo(&b); err != nil {
			fatal(err)
		}
		c, err := client.Dial(bg, *addr)
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", *addr, err))
		}
		if err := c.Load(bg, *docName, b.String()); err != nil {
			fatal(fmt.Errorf("load %q (%.2f MB): %w", *docName, float64(b.Len())/(1<<20), err))
		}
		c.Close()
		fmt.Fprintf(os.Stderr, "mxqload: loaded %q, %.2f MB (sf %g)\n", *docName, float64(b.Len())/(1<<20), *sf)
	}

	var dialOpts []client.Option
	if *replica != "" {
		dialOpts = append(dialOpts, client.WithReadReplica(*replica))
	}

	var (
		requests   atomic.Int64
		errCount   atomic.Int64
		overloaded atomic.Int64
		stale      atomic.Int64
		mu         sync.Mutex
		latencies  []time.Duration
		firstErrs  = make(chan error, 8)
	)
	reportErr := func(err error) {
		errCount.Add(1)
		select {
		case firstErrs <- err:
		default:
		}
	}
	// one request against c; reports the outcome, returns false on a
	// failure that should end the session.
	shoot := func(c *client.Client, rng *rand.Rand, scheduled time.Time, local *[]time.Duration, id int) bool {
		var err error
		if rng.Float64() < *updateFrac {
			_, err = c.Update(bg, *docName, updateMod)
		} else {
			q := queries[rng.Intn(len(queries))]
			_, err = c.Query(bg, *docName, q.q, q.vars)
		}
		requests.Add(1)
		switch {
		case err == nil:
			*local = append(*local, time.Since(scheduled))
		case errors.Is(err, client.ErrOverloaded):
			overloaded.Add(1)
			time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		case errors.Is(err, client.ErrStale):
			stale.Add(1)
		default:
			reportErr(fmt.Errorf("session %d: %w", id, err))
			return false
		}
		return true
	}

	mode := "closed"
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup

	// Open loop: a dispatcher schedules arrivals at the target rate into
	// a deep queue; sessions drain it. Latency counts from the scheduled
	// arrival, so a backlogged server cannot slow the clock down.
	var arrivals chan time.Time
	if *rate > 0 {
		mode = "open"
		arrivals = make(chan time.Time, 1<<16)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(arrivals)
			for next := time.Now(); next.Before(deadline); next = next.Add(interval) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				select {
				case arrivals <- next:
				default:
					// Queue full: the server is more than 64k requests
					// behind the schedule. Recording the drop as an error
					// keeps the report honest instead of stalling the clock.
					reportErr(fmt.Errorf("open-loop arrival queue overflow at rate %g", *rate))
					return
				}
			}
		}()
	}

	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(bg, *addr, dialOpts...)
			if err != nil {
				reportErr(fmt.Errorf("session %d dial: %w", i, err))
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			local := make([]time.Duration, 0, 1024)
			if arrivals != nil {
				for scheduled := range arrivals {
					if !shoot(c, rng, scheduled, &local, i) {
						return
					}
				}
			} else {
				for time.Now().Before(deadline) {
					if !shoot(c, rng, time.Now(), &local, i) {
						return
					}
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(firstErrs)

	// With a replica, sample its remaining lag after the run: the
	// follower should converge to the primary's tail within a few
	// seconds once traffic stops.
	var lag *int64
	if *replica != "" {
		l, err := measureLag(*addr, *docName, dialOpts, *maxLag)
		if err != nil {
			reportErr(fmt.Errorf("measuring follower lag: %w", err))
		} else {
			lag = &l
			if *maxLag >= 0 && l > *maxLag {
				reportErr(fmt.Errorf("follower lag %d records exceeds -max-lag %d", l, *maxLag))
			}
		}
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep := report{
		Name:       *name,
		Mode:       mode,
		Sessions:   *sessions,
		RateTarget: *rate,
		DurationS:  duration.Seconds(),
		Requests:   requests.Load(),
		QPS:        float64(len(latencies)) / duration.Seconds(),
		P50Ms:      pctMs(latencies, 0.50),
		P99Ms:      pctMs(latencies, 0.99),
		Errors:     errCount.Load(),
		Overloaded: overloaded.Load(),
		Stale:      stale.Load(),
		Lag:        lag,
	}
	out, _ := json.Marshal(rep)
	fmt.Println(string(out))
	for err := range firstErrs {
		fmt.Fprintln(os.Stderr, "mxqload:", err)
	}
	if rep.Errors > 0 || (rep.Overloaded > 0 && !*allowOverload) || (rep.Stale > 0 && !*allowStale) {
		os.Exit(1)
	}
}

// measureLag polls primary and follower status until the follower's
// applied LSN reaches the primary's WAL tail (or, with maxLag >= 0,
// comes within maxLag records), giving up after a few seconds and
// returning the last lag seen.
func measureLag(addr, doc string, dialOpts []client.Option, maxLag int64) (int64, error) {
	c, err := client.Dial(bg, addr, dialOpts...)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	target := maxLag
	if target < 0 {
		target = 0
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, err := c.DocStatus(bg, doc)
		if err != nil {
			return 0, err
		}
		r, err := c.ReplicaStatus(bg, doc)
		if err != nil {
			return 0, err
		}
		lag := int64(p.LastLSN) - int64(r.AppliedLSN)
		if lag <= target || time.Now().After(deadline) {
			return lag, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mxqload:", err)
	os.Exit(1)
}
