// Command mxqload is a closed-loop load generator for mxqd: N
// concurrent sessions (one connection each) issue a query/update mix
// against an XMark document for a fixed duration, then it reports
// throughput and latency percentiles as one JSON line — the format the
// CI smoke job appends to BENCH_ci.json.
//
//	mxqload -addr 127.0.0.1:4477 -sessions 1000 -duration 10s -sf 0.01
//
// Exit status is non-zero if any request failed; overload rejections
// (the server's admission control saying "not now") are counted
// separately and only fail the run without -allow-overload.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mxq/client"
	"mxq/internal/xmark"
)

// queries is the read mix: plain scans, a sequence filter, an
// aggregation, and a variable binding — the shapes a session workload
// exercises through the prepared-statement cache.
var queries = []struct {
	q    string
	vars map[string]string
}{
	{q: `count(//person)`},
	{q: `//open_auction/bidder/increase/text()`},
	{q: `//item[payment]/@id`},
	{q: `//person[watches]/name/text()`},
	{q: `//person[@id = $id]/name/text()`, vars: map[string]string{"id": "person0"}},
}

// updateMod rewrites one person's name: constant-size, so a long run
// does not grow the document.
const updateMod = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">` +
	`<xupdate:update select="/site/people/person[1]/name">loadgen</xupdate:update></xupdate:modifications>`

type report struct {
	Name       string  `json:"name"`
	Sessions   int     `json:"sessions"`
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests"`
	QPS        float64 `json:"qps"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Errors     int64   `json:"errors"`
	Overloaded int64   `json:"overloaded"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4477", "mxqd address")
	sessions := flag.Int("sessions", 100, "concurrent sessions (connections)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	docName := flag.String("doc", "xmark", "document name")
	sf := flag.Float64("sf", 0.01, "XMark scale factor to generate and load (0 = use an existing document)")
	seed := flag.Uint64("seed", 42, "generator seed")
	updateFrac := flag.Float64("update-frac", 0.05, "fraction of requests that are updates")
	allowOverload := flag.Bool("allow-overload", false, "overload rejections do not fail the run")
	name := flag.String("name", "mxqd_load", "benchmark name in the JSON report")
	flag.Parse()

	if *sf > 0 {
		var b strings.Builder
		if _, err := xmark.NewGenerator(*sf, *seed).WriteTo(&b); err != nil {
			fatal(err)
		}
		c, err := client.Dial(*addr)
		if err != nil {
			fatal(fmt.Errorf("dial %s: %w", *addr, err))
		}
		if err := c.Load(*docName, b.String()); err != nil {
			fatal(fmt.Errorf("load %q (%.2f MB): %w", *docName, float64(b.Len())/(1<<20), err))
		}
		c.Close()
		fmt.Fprintf(os.Stderr, "mxqload: loaded %q, %.2f MB (sf %g)\n", *docName, float64(b.Len())/(1<<20), *sf)
	}

	var (
		requests   atomic.Int64
		errCount   atomic.Int64
		overloaded atomic.Int64
		mu         sync.Mutex
		latencies  []time.Duration
		firstErrs  = make(chan error, 8)
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(*addr)
			if err != nil {
				errCount.Add(1)
				select {
				case firstErrs <- fmt.Errorf("session %d dial: %w", i, err):
				default:
				}
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			local := make([]time.Duration, 0, 1024)
			for time.Now().Before(deadline) {
				start := time.Now()
				var err error
				if rng.Float64() < *updateFrac {
					_, err = c.Update(*docName, updateMod)
				} else {
					q := queries[rng.Intn(len(queries))]
					_, err = c.Query(*docName, q.q, q.vars)
				}
				requests.Add(1)
				switch {
				case err == nil:
					local = append(local, time.Since(start))
				case errors.Is(err, client.ErrOverloaded):
					overloaded.Add(1)
					time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
				default:
					errCount.Add(1)
					select {
					case firstErrs <- fmt.Errorf("session %d: %w", i, err):
					default:
					}
					return
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	close(firstErrs)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep := report{
		Name:       *name,
		Sessions:   *sessions,
		DurationS:  duration.Seconds(),
		Requests:   requests.Load(),
		QPS:        float64(len(latencies)) / duration.Seconds(),
		P50Ms:      pctMs(latencies, 0.50),
		P99Ms:      pctMs(latencies, 0.99),
		Errors:     errCount.Load(),
		Overloaded: overloaded.Load(),
	}
	out, _ := json.Marshal(rep)
	fmt.Println(string(out))
	for err := range firstErrs {
		fmt.Fprintln(os.Stderr, "mxqload:", err)
	}
	if rep.Errors > 0 || (rep.Overloaded > 0 && !*allowOverload) {
		os.Exit(1)
	}
}

func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mxqload:", err)
	os.Exit(1)
}
