// Command mxqd serves an mxq database over TCP. See the internal/server
// package documentation for the wire protocol and client/ for the Go
// client. It drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish (under -drain-timeout), sessions release their snapshots, then
// the database closes, flushing WAL segments and checkpointers.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mxq"
	"mxq/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4477", "listen address")
	dir := flag.String("dir", "", "durability directory (segmented WAL + checkpoints); empty = in-memory")
	lazy := flag.Bool("lazy", true, "with -dir: open documents on first use instead of recovering all at startup")
	nosync := flag.Bool("nosync", false, "skip fsync on WAL appends")
	ckptBytes := flag.Int64("ckpt-bytes", 0, "auto-checkpoint once the WAL tail exceeds this many bytes (0 = off)")
	ckptRecords := flag.Int("ckpt-records", 0, "auto-checkpoint once the WAL tail exceeds this many records (0 = off)")
	maxConcurrent := flag.Int64("max-concurrent", 64, "admission: weight units executing at once (queries 1, updates/loads 2)")
	maxWaiters := flag.Int("max-waiters", 0, "admission: queued requests before overload rejection (0 = 4x max-concurrent)")
	idleClose := flag.Duration("idle-close", 0, "with -dir: detach documents unreferenced this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown: how long in-flight requests may finish")
	flag.Parse()

	logger := log.New(os.Stderr, "mxqd: ", log.LstdFlags)
	if *idleClose > 0 && *dir == "" {
		logger.Fatal("-idle-close requires -dir (detaching an in-memory document discards it)")
	}

	db, err := mxq.Open(mxq.Options{
		Dir: *dir, NoSync: *nosync, LazyOpen: *lazy,
		CheckpointEvery: mxq.CheckpointPolicy{Bytes: *ckptBytes, Records: *ckptRecords},
	})
	if err != nil {
		logger.Fatal(err)
	}

	srv := server.New(server.Config{
		DB:            db,
		MaxConcurrent: *maxConcurrent,
		MaxWaiters:    *maxWaiters,
		IdleClose:     *idleClose,
		Logf:          logger.Printf,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s (dir=%q max-concurrent=%d)", l.Addr(), *dir, *maxConcurrent)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %s, draining", sig)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			logger.Print(err)
		}
	case err := <-errc:
		if err != nil {
			logger.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		logger.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mxqd: shut down cleanly")
}
