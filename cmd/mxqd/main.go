// Command mxqd serves an mxq database over TCP. See the internal/server
// package documentation for the wire protocol and client/ for the Go
// client. It drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish (under -drain-timeout), sessions release their snapshots, then
// the database closes, flushing WAL segments and checkpointers.
//
// With -follow, mxqd runs as a read replica: it subscribes every
// document of the primary at the given address (bootstrapping empty
// replicas from checkpoint images, then replaying the WAL as the
// primary commits), serves the same read protocol, and rejects writes
// with a typed read-only error. Reads carry read-your-writes LSNs, so
// a client that wrote on the primary never silently reads an older
// version here.
//
//	mxqd -addr :4477 -dir primary/ &
//	mxqd -addr :4478 -dir replica/ -follow 127.0.0.1:4477 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mxq"
	"mxq/client"
	"mxq/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4477", "listen address")
	dir := flag.String("dir", "", "durability directory (segmented WAL + checkpoints); empty = in-memory")
	follow := flag.String("follow", "", "primary address: run as a read-only replica of every document there (requires -dir)")
	lazy := flag.Bool("lazy", true, "with -dir: open documents on first use instead of recovering all at startup")
	nosync := flag.Bool("nosync", false, "skip fsync on WAL appends")
	ckptBytes := flag.Int64("ckpt-bytes", 0, "auto-checkpoint once the WAL tail exceeds this many bytes (0 = off)")
	ckptRecords := flag.Int("ckpt-records", 0, "auto-checkpoint once the WAL tail exceeds this many records (0 = off)")
	maxConcurrent := flag.Int64("max-concurrent", 64, "admission: weight units executing at once (queries 1, updates/loads 2)")
	maxWaiters := flag.Int("max-waiters", 0, "admission: queued requests before overload rejection (0 = 4x max-concurrent)")
	idleClose := flag.Duration("idle-close", 0, "with -dir: detach documents unreferenced this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown: how long in-flight requests may finish")
	flag.Parse()

	logger := log.New(os.Stderr, "mxqd: ", log.LstdFlags)
	if *idleClose > 0 && *dir == "" {
		logger.Fatal("-idle-close requires -dir (detaching an in-memory document discards it)")
	}
	if *follow != "" && *dir == "" {
		logger.Fatal("-follow requires -dir (a replica's acks promise durably-applied records)")
	}
	if *follow != "" && *idleClose > 0 {
		// A followed document must stay attached: its subscription is
		// what keeps it converging.
		logger.Fatal("-follow and -idle-close are mutually exclusive")
	}

	db, err := mxq.Open(mxq.Options{
		Dir: *dir, NoSync: *nosync, LazyOpen: *lazy,
		CheckpointEvery: mxq.CheckpointPolicy{Bytes: *ckptBytes, Records: *ckptRecords},
	})
	if err != nil {
		logger.Fatal(err)
	}

	// Follower mode: subscribe every document the primary has, then
	// serve the read path read-only while the subscriptions replay the
	// primary's WAL in the background.
	var stopFollows []func()
	if *follow != "" {
		names, err := primaryDocs(*follow)
		if err != nil {
			logger.Fatalf("listing documents on primary %s: %v", *follow, err)
		}
		if len(names) == 0 {
			logger.Printf("warning: primary %s has no documents yet; nothing to follow", *follow)
		}
		for _, name := range names {
			stop, err := db.FollowDocument(*follow, name)
			if err != nil {
				logger.Fatalf("following %q from %s: %v", name, *follow, err)
			}
			stopFollows = append(stopFollows, stop)
		}
		logger.Printf("following %d document(s) from %s (read-only)", len(names), *follow)
	}

	srv := server.New(server.Config{
		DB:            db,
		MaxConcurrent: *maxConcurrent,
		MaxWaiters:    *maxWaiters,
		IdleClose:     *idleClose,
		ReadOnly:      *follow != "",
		Logf:          logger.Printf,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s (dir=%q max-concurrent=%d)", l.Addr(), *dir, *maxConcurrent)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %s, draining", sig)
		if err := srv.Shutdown(*drainTimeout); err != nil {
			logger.Print(err)
		}
	case err := <-errc:
		if err != nil {
			logger.Fatal(err)
		}
	}
	// Stop subscriptions before closing the database: a record batch
	// mid-apply finishes, then the follower goroutines exit.
	for _, stop := range stopFollows {
		stop()
	}
	if err := db.Close(); err != nil {
		logger.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mxqd: shut down cleanly")
}

// primaryDocs asks the primary which documents it serves.
func primaryDocs(addr string) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := client.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.ListDocs(ctx)
}
