package mxq

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

const versionMods = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">%s</xupdate:modifications>`

// setBothBooks rewrites both book texts to val in one transaction; t is
// committed or aborted per the commit flag.
func setBothBooks(t *testing.T, doc *Document, val string, commit bool) {
	t.Helper()
	txn := doc.Begin()
	if _, err := txn.Update(fmt.Sprintf(versionMods,
		`<xupdate:update select="/lib/book[1]">`+val+`</xupdate:update>`+
			`<xupdate:update select="/lib/book[2]">`+val+`</xupdate:update>`)); err != nil {
		txn.Abort()
		t.Fatal(err)
	}
	if commit {
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	} else {
		txn.Abort()
	}
}

// TestPreparedAcrossVersions runs one prepared query before, during and
// after commits: each run must observe exactly one committed version —
// the pre-commit run sees the old data, an open (uncommitted)
// transaction stays invisible, the post-commit run sees the new data,
// and repeated runs at an unchanged version return it unchanged (the
// cached snapshot cannot go stale or serve a torn state).
func TestPreparedAcrossVersions(t *testing.T) {
	db, err := Open(Options{PageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", `<lib><book>v0</book><book>v0</book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := doc.Prepare(`/lib/book/text()`)
	if err != nil {
		t.Fatal(err)
	}

	mustSee := func(stage, want string) {
		t.Helper()
		res, err := p.Run(nil)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		got := res.Strings()
		if len(got) != 2 || got[0] != want || got[1] != want {
			t.Fatalf("%s: got %v, want [%s %s]", stage, got, want, want)
		}
	}

	if v := doc.Version(); v != 0 {
		t.Fatalf("fresh document at version %d", v)
	}
	mustSee("before any commit", "v0")

	// An open transaction's writes must be invisible to Prepared.Run.
	txn := doc.Begin()
	if _, err := txn.Update(fmt.Sprintf(versionMods,
		`<xupdate:update select="/lib/book[1]">leak</xupdate:update>`)); err != nil {
		t.Fatal(err)
	}
	mustSee("during open tx", "v0")
	txn.Abort()
	mustSee("after abort", "v0")
	if v := doc.Version(); v != 0 {
		t.Fatalf("abort bumped version to %d", v)
	}

	for i := 1; i <= 3; i++ {
		setBothBooks(t, doc, fmt.Sprintf("v%d", i), true)
		if v := doc.Version(); v != uint64(i) {
			t.Fatalf("after commit %d: version %d", i, v)
		}
		want := fmt.Sprintf("v%d", i)
		mustSee("first run after commit", want)
		mustSee("second run at same version", want) // served by the cached snapshot
	}
}

// TestPreparedNeverTearsAcrossCommit runs a prepared two-node query from
// many goroutines while a writer commits versions that always keep the
// two books equal. Any result mixing two versions (a torn read straight
// off the base store, or a snapshot caught mid-commit) fails; versions
// observed by each reader must also never go backwards.
func TestPreparedNeverTearsAcrossCommit(t *testing.T) {
	db, err := Open(Options{PageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", `<lib><book>0</book><book>0</book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := doc.Prepare(`/lib/book/text()`)
	if err != nil {
		t.Fatal(err)
	}

	const commits = 50
	done := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := p.Run(nil)
				if err != nil {
					errs <- err
					return
				}
				got := res.Strings()
				if len(got) != 2 || got[0] != got[1] {
					errs <- fmt.Errorf("torn read: %v", got)
					return
				}
				v, err := strconv.Atoi(strings.TrimSpace(got[0]))
				if err != nil {
					errs <- fmt.Errorf("unexpected value %q", got[0])
					return
				}
				if v < last {
					errs <- fmt.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}

	for i := 1; i <= commits; i++ {
		setBothBooks(t, doc, fmt.Sprint(i), true)
		// Interleave aborted transactions: they must stay invisible.
		if i%5 == 0 {
			setBothBooks(t, doc, "aborted", false)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := doc.Version(); v != commits {
		t.Fatalf("version %d after %d commits", v, commits)
	}
}
