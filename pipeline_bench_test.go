// BenchmarkXMarkQueryPipeline quantifies the sequence-at-a-time query
// pipeline against the node-at-a-time interpreter it replaced: the same
// compiled expression runs both ways over the same XMark document, and a
// counting view wrapper reports how many tuples each strategy inspects.
// On descendant steps over many-ancestor contexts the per-node path
// re-scans every overlapping region once per context node; the pipeline's
// staircase pruning touches each region once, so inspections (and time)
// drop superlinearly with nesting depth.
package mxq

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// countingView wraps a DocView and counts tuple inspections: every
// pre-addressed accessor call the evaluator makes. The count is the
// plan-quality metric the benchmark records — unlike wall time it is
// deterministic and machine-independent.
type countingView struct {
	xenc.DocView
	n atomic.Int64
}

func (c *countingView) Size(p xenc.Pre) xenc.Size   { c.n.Add(1); return c.DocView.Size(p) }
func (c *countingView) Level(p xenc.Pre) xenc.Level { c.n.Add(1); return c.DocView.Level(p) }
func (c *countingView) Kind(p xenc.Pre) xenc.Kind   { c.n.Add(1); return c.DocView.Kind(p) }
func (c *countingView) Name(p xenc.Pre) int32       { c.n.Add(1); return c.DocView.Name(p) }
func (c *countingView) Value(p xenc.Pre) string     { c.n.Add(1); return c.DocView.Value(p) }
func (c *countingView) Attrs(p xenc.Pre) []xenc.Attr {
	c.n.Add(1)
	return c.DocView.Attrs(p)
}
func (c *countingView) AttrValue(p xenc.Pre, name int32) (string, bool) {
	c.n.Add(1)
	return c.DocView.AttrValue(p, name)
}

// inspections evaluates e once over a counted wrapping of v under the
// given pipeline mode and returns the tuple-inspection count.
func inspections(tb testing.TB, v xenc.DocView, e *xpath.Expr, seq bool) int64 {
	tb.Helper()
	prev := xpath.SetPlanEnabled(seq)
	defer xpath.SetPlanEnabled(prev)
	cv := &countingView{DocView: v}
	if _, err := e.Eval(cv); err != nil {
		tb.Fatal(err)
	}
	return cv.n.Load()
}

// pipelineQueries are the XMark query shapes the refactor targets:
// //keyword-style descendant sweeps, multi-step descendant paths whose
// intermediate context sets overlap, fused positional predicates, and a
// long child chain as the control (little overlap to prune).
var pipelineQueries = []struct{ name, q string }{
	{"keyword", `//keyword`},
	{"item-names", `/site/regions//item/name/text()`},
	{"nested-keyword", `//listitem//keyword`},
	{"parlist-text", `//parlist//listitem//text()`},
	{"bidder-first", `/site/open_auctions/open_auction/bidder[1]/increase/text()`},
	{"long-child-chain", `/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()`},
	{"pred-filter", `//item[description//keyword]/name/text()`},
}

func BenchmarkXMarkQueryPipeline(b *testing.B) {
	f := getFixture(b, 0.01)
	for _, tc := range pipelineQueries {
		e, err := xpath.Parse(tc.q)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			seq  bool
		}{{"pernode", false}, {"seq", true}} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, mode.name), func(b *testing.B) {
				b.ReportMetric(float64(inspections(b, f.up, e, mode.seq)), "inspections")
				prev := xpath.SetPlanEnabled(mode.seq)
				defer xpath.SetPlanEnabled(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Eval(f.up); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// nestedTree chains depth <l> elements, each carrying fan <k> leaves: a
// //l//k query's intermediate context is depth mutually nested nodes, the
// worst case for per-node descendant evaluation (every region re-scanned
// once per ancestor) and the best case for staircase pruning.
func nestedTree(depth, fan int) *shred.Tree {
	b := shred.NewBuilder().Start("root")
	for i := 0; i < depth; i++ {
		b.Start("l")
		for j := 0; j < fan; j++ {
			b.Elem("k", "x")
		}
	}
	for i := 0; i < depth; i++ {
		b.End()
	}
	return b.End().Tree()
}

// TestPipelineInspectionDrop pins the acceptance criterion: on a
// many-ancestor overlapping context the sequence pipeline inspects each
// tuple at most once per step, so the per-node path must cost at least
// 5x the inspections — and both must return identical results.
func TestPipelineInspectionDrop(t *testing.T) {
	s, err := rostore.Build(nestedTree(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	e := xpath.MustParse(`//l//k`)

	check := func(seq bool) (int64, []xenc.Pre) {
		prev := xpath.SetPlanEnabled(seq)
		defer xpath.SetPlanEnabled(prev)
		cv := &countingView{DocView: s}
		ns, err := e.Select(cv)
		if err != nil {
			t.Fatal(err)
		}
		return cv.n.Load(), ns.Pres()
	}
	seqN, seqRes := check(true)
	perN, perRes := check(false)

	if len(seqRes) != 40*3 {
		t.Fatalf("//l//k returned %d nodes, want %d", len(seqRes), 40*3)
	}
	if len(seqRes) != len(perRes) {
		t.Fatalf("result sizes diverged: seq %d, per-node %d", len(seqRes), len(perRes))
	}
	for i := range seqRes {
		if seqRes[i] != perRes[i] {
			t.Fatalf("results diverged at %d: seq %d, per-node %d", i, seqRes[i], perRes[i])
		}
	}
	if perN < 5*seqN {
		t.Fatalf("tuple inspections: per-node %d, seq %d — want a >=5x drop on overlapping regions", perN, seqN)
	}
	t.Logf("tuple inspections on //l//k (depth 40): per-node %d, seq %d (%.1fx)", perN, seqN, float64(perN)/float64(seqN))
}
