# Tier-1 verification for the MonetDB/XQuery reproduction.
#
# `make check` is the habit: build everything, vet everything (the xmark
# generator once shipped a vet failure that broke `go test`), then run
# the full test suite — including the differential harness in
# internal/difftest and the -race concurrency tests in internal/tx that
# guard the page-granular copy-on-write snapshot machinery.

GO ?= go

.PHONY: check build vet test race bench bench-json lint fuzz server-smoke repl-smoke

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The paper's evaluation benchmarks (Figure 9, insert scaling, the
# page-COW transaction cost, the versioned-snapshot read path, ...).
# Narrow with BENCH=<regexp>.
BENCH ?= .
bench:
	$(GO) test -run xxx -bench '$(BENCH)' -benchmem .

# bench-json records the same run as go-test JSON events in BENCH_ci.json
# (the per-commit benchmark artifact CI uploads; each event's Output
# lines carry the benchstat-parsable result text).
bench-json:
	$(GO) test -run xxx -bench '$(BENCH)' -benchmem -json . > BENCH_ci.json
	@tail -n 3 BENCH_ci.json

# Formatting + static analysis. staticcheck is optional locally (the CI
# lint job installs it); gofmt and vet always run.
lint:
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi

# server-smoke: end-to-end daemon check. Starts mxqd, drives it with
# mxqload (SMOKE_SESSIONS concurrent sessions, SMOKE_DURATION, XMark SF
# 0.01, 5% updates), requires zero request errors and zero overload
# rejections, then SIGTERMs the daemon and requires a clean drain. The
# load report (qps, p50_ms, p99_ms, ...) is appended as one JSON line to
# BENCH_ci.json so the CI artifact carries the served-path numbers next
# to the library benchmarks.
SMOKE_SESSIONS ?= 200
SMOKE_DURATION ?= 10s
SMOKE_ADDR ?= 127.0.0.1:4479
server-smoke:
	$(GO) build -o /tmp/mxqd-smoke ./cmd/mxqd
	$(GO) build -o /tmp/mxqload-smoke ./cmd/mxqload
	@set -e; \
	/tmp/mxqd-smoke -addr $(SMOKE_ADDR) -max-waiters 4096 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	if /tmp/mxqload-smoke -addr $(SMOKE_ADDR) -sessions $(SMOKE_SESSIONS) \
		-duration $(SMOKE_DURATION) -sf 0.01 -name mxqd_smoke \
		> /tmp/mxqload-smoke.json; then ok=1; else ok=0; fi; \
	cat /tmp/mxqload-smoke.json; \
	cat /tmp/mxqload-smoke.json >> BENCH_ci.json; \
	kill -TERM $$pid; \
	wait $$pid; \
	trap - EXIT; \
	test $$ok -eq 1

# repl-smoke: end-to-end replication check. Starts a durable primary,
# loads it and drives it closed-loop, then starts a follower (mxqd
# -follow), and drives the pair open-loop with replica-routed
# read-your-writes reads (-rate, queries to the follower carrying the
# session's last commit LSN). Requires zero request errors, zero stale
# reads (every RYW read must be served within the wait budget, never
# silently stale) and full lag convergence after the run (-max-lag 0).
# Both load reports — closed-loop primary, open-loop with replica lag —
# are appended to BENCH_ci.json.
REPL_PRIMARY ?= 127.0.0.1:4489
REPL_FOLLOWER ?= 127.0.0.1:4490
repl-smoke:
	$(GO) build -o /tmp/mxqd-smoke ./cmd/mxqd
	$(GO) build -o /tmp/mxqload-smoke ./cmd/mxqload
	@set -e; \
	tmp=$$(mktemp -d); \
	/tmp/mxqd-smoke -addr $(REPL_PRIMARY) -dir $$tmp/primary -nosync -max-waiters 4096 & \
	ppid=$$!; fpid=; \
	trap 'kill $$ppid $$fpid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	sleep 1; \
	if /tmp/mxqload-smoke -addr $(REPL_PRIMARY) -sessions 50 -duration 5s -sf 0.005 \
		-name mxqd_repl_primary_closed > /tmp/mxqload-repl1.json; then ok1=1; else ok1=0; fi; \
	/tmp/mxqd-smoke -addr $(REPL_FOLLOWER) -dir $$tmp/follower -nosync -follow $(REPL_PRIMARY) \
		-max-waiters 4096 & \
	fpid=$$!; \
	sleep 1; \
	if /tmp/mxqload-smoke -addr $(REPL_PRIMARY) -replica $(REPL_FOLLOWER) -sf 0 \
		-sessions 50 -rate 2000 -duration 5s -max-lag 0 \
		-name mxqd_repl_ryw_open > /tmp/mxqload-repl2.json; then ok2=1; else ok2=0; fi; \
	cat /tmp/mxqload-repl1.json /tmp/mxqload-repl2.json; \
	cat /tmp/mxqload-repl1.json /tmp/mxqload-repl2.json >> BENCH_ci.json; \
	kill -TERM $$fpid; wait $$fpid; \
	kill -TERM $$ppid; wait $$ppid; \
	trap - EXIT; \
	rm -rf $$tmp; \
	test $$ok1 -eq 1 && test $$ok2 -eq 1

# Native fuzz smoke over the text-input surfaces (the XPath compiler and
# the XUpdate parser) plus the evaluation-side differential fuzzer
# (compiled sequence-at-a-time pipeline vs node-at-a-time interpreter vs
# the naive dense oracle). Go allows one -fuzz target per invocation;
# -fuzzminimizetime=1x keeps short runs fuzzing instead of minimizing.
# Raise FUZZTIME for a real session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzXPathParse -fuzztime $(FUZZTIME) -fuzzminimizetime=1x ./internal/xpath
	$(GO) test -run xxx -fuzz FuzzXPathEval -fuzztime $(FUZZTIME) -fuzzminimizetime=1x ./internal/xpath
	$(GO) test -run xxx -fuzz FuzzXUpdateParse -fuzztime $(FUZZTIME) -fuzzminimizetime=1x ./internal/xupdate
