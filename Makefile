# Tier-1 verification for the MonetDB/XQuery reproduction.
#
# `make check` is the habit: build everything, vet everything (the xmark
# generator once shipped a vet failure that broke `go test`), then run
# the full test suite — including the differential harness in
# internal/difftest and the -race concurrency tests in internal/tx that
# guard the page-granular copy-on-write snapshot machinery.

GO ?= go

.PHONY: check build vet test race bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The paper's evaluation benchmarks (Figure 9, insert scaling, the
# page-COW transaction cost, ...). Narrow with BENCH=<regexp>.
BENCH ?= .
bench:
	$(GO) test -run xxx -bench '$(BENCH)' -benchmem .
