package mxq_test

import (
	"fmt"
	"log"

	"mxq"
)

// Loading a document and running XPath queries.
func ExampleDatabase_LoadXMLString() {
	db, _ := mxq.Open(mxq.Options{})
	doc, err := db.LoadXMLString("zoo", `<zoo><animal legs="4">tiger</animal><animal legs="2">crane</animal></zoo>`)
	if err != nil {
		log.Fatal(err)
	}
	res, _ := doc.Query(`/zoo/animal[@legs="4"]/text()`)
	fmt.Println(res[0].Value)
	// Output: tiger
}

// Aggregates return typed values.
func ExampleDocument_Query() {
	db, _ := mxq.Open(mxq.Options{})
	doc, _ := db.LoadXMLString("zoo", `<zoo><animal/><animal/><animal/></zoo>`)
	res, _ := doc.Query(`count(/zoo/animal)`)
	fmt.Println(res[0].Kind, res[0].Value)
	// Output: number 3
}

// Structural updates are XUpdate modification lists; each list is one
// ACID transaction.
func ExampleDocument_Update() {
	db, _ := mxq.Open(mxq.Options{})
	doc, _ := db.LoadXMLString("zoo", `<zoo><animal>tiger</animal></zoo>`)
	_, err := doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/zoo"><animal>heron</animal></xupdate:append>
	</xupdate:modifications>`)
	if err != nil {
		log.Fatal(err)
	}
	xml, _ := doc.XML()
	fmt.Println(xml)
	// Output: <zoo><animal>tiger</animal><animal>heron</animal></zoo>
}

// Explicit transactions give read-your-writes isolation.
func ExampleDocument_Begin() {
	db, _ := mxq.Open(mxq.Options{})
	doc, _ := db.LoadXMLString("zoo", `<zoo><animal>tiger</animal></zoo>`)
	tx := doc.Begin()
	tx.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:remove select="//animal"/>
	</xupdate:modifications>`)
	inside, _ := tx.Query(`count(//animal)`)
	outside, _ := doc.Query(`count(//animal)`)
	fmt.Println("tx sees:", inside[0].Value, "— readers see:", outside[0].Value)
	tx.Abort()
	after, _ := doc.Query(`count(//animal)`)
	fmt.Println("after abort:", after[0].Value)
	// Output:
	// tx sees: 0 — readers see: 1
	// after abort: 1
}

// Prepared queries skip re-parsing and accept variables.
func ExampleDocument_Prepare() {
	db, _ := mxq.Open(mxq.Options{})
	doc, _ := db.LoadXMLString("zoo", `<zoo><animal legs="4">tiger</animal><animal legs="2">crane</animal></zoo>`)
	byLegs, _ := doc.Prepare(`//animal[@legs = $n]/text()`)
	for _, n := range []string{"2", "4"} {
		res, _ := byLegs.Run(map[string]string{"n": n})
		fmt.Println(n, "legs:", res[0].Value)
	}
	// Output:
	// 2 legs: crane
	// 4 legs: tiger
}
