// Benchmarks regenerating the paper's evaluation artifacts. One bench
// (family) per experiment in DESIGN.md's index:
//
//	BenchmarkFigure9         — XMark Q1–Q20, ro vs up schema (Figure 9)
//	BenchmarkInsertScaling   — naive O(N) vs paged O(update) inserts (Figure 3)
//	BenchmarkInsertWithinPage— Figure 7(a), the in-page insert path
//	BenchmarkInsertPageOverflow — Figure 7(b), the page-splice path
//	BenchmarkCommutativeDeltas — delta commits vs root-locking (Figure 8 / §3.2)
//	BenchmarkAttrLookup      — the node/pos indirection the paper charges to 'up'
//	BenchmarkOrdpath         — related-work comparison (§4.2)
//	BenchmarkFillFactor      — ablation AB1: unused-tuple share
//	BenchmarkPageSize        — ablation AB2: logical page size
//	BenchmarkCompact         — the page-compaction maintenance pass
//	BenchmarkConcurrentQueryDuringCommits — the versioned-snapshot read
//	  path: query throughput with an active committer vs writer-idle
//	BenchmarkCommitFsyncThroughput — group commit: fsyncs/commit vs
//	  committer count, with and without Options.GroupCommitDelay
//	BenchmarkCheckpointIncremental — full vs O(churn) checkpoint bytes
//	  and wall time over the content-addressed chunk store
//
// BenchmarkStaircaseSkipping (staircase_bench_test.go) covers claim C2.
//
// BenchmarkFigure9 runs SF 0.01 by default (the paper's 1.1 MB point);
// set MXQ_BENCH_SF (e.g. "0.01,0.1") for more scales.
package mxq

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/ordpath"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/xenc"
	"mxq/internal/xmark"
	"mxq/internal/xpath"
)

// --- shared fixtures ----------------------------------------------------------

var (
	fixMu  sync.Mutex
	fixMap = map[float64]*fixture{}
)

type fixture struct {
	tree *shred.Tree
	ro   *rostore.Store
	up   *core.Store
}

func getFixture(b *testing.B, sf float64) *fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixMap[sf]; ok {
		return f
	}
	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(sf, 42).WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	tree, err := shred.Parse(bytes.NewReader(buf.Bytes()), shred.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ro, err := rostore.Build(tree)
	if err != nil {
		b.Fatal(err)
	}
	// The Figure 9 scenario: ~20% of each logical page unused, mimicking
	// the state after a series of XUpdate operations.
	up, err := core.Build(tree, core.Options{PageSize: 1024, FillFactor: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{tree: tree, ro: ro, up: up}
	fixMap[sf] = f
	return f
}

func benchScales() []float64 {
	env := os.Getenv("MXQ_BENCH_SF")
	if env == "" {
		return []float64{0.01}
	}
	var out []float64
	for _, s := range strings.Split(env, ",") {
		sf, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err == nil && sf > 0 {
			out = append(out, sf)
		}
	}
	return out
}

// BenchmarkFigure9 regenerates the Figure 9 series: every XMark query on
// the read-only and on the updatable schema. The interesting number is
// the per-query ratio up/ro, which the paper reports as < 7% at 1.1 MB
// and < 30% on average at 1.1 GB.
func BenchmarkFigure9(b *testing.B) {
	for _, sf := range benchScales() {
		f := getFixture(b, sf)
		for _, q := range xmark.Queries {
			q := q
			b.Run(fmt.Sprintf("SF%g/Q%02d/ro", sf, q.Num), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(f.ro); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("SF%g/Q%02d/up", sf, q.Num), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(f.up); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 3: the O(N) claim ---------------------------------------------------

// wideTree builds a flat document with n leaf elements (the worst case
// for shifting: inserts in the middle move half the document).
func wideTree(n int) *shred.Tree {
	bld := shred.NewBuilder().Start("root")
	for i := 0; i < n; i++ {
		bld.Elem("e", "x", shred.Attr{Name: "id", Value: strconv.Itoa(i)})
	}
	return bld.End().Tree()
}

var smallFrag = func() *shred.Tree {
	t, err := shred.ParseFragment(`<k><l/><m/></k>`, shred.Options{})
	if err != nil {
		panic(err)
	}
	return t
}()

// BenchmarkInsertScaling shows the paper's motivating contrast: the cost
// of one mid-document insert is O(document) for the naive materialized
// schema and O(update volume) for the paged schema. Watch ns/op grow
// linearly with N on /naive and stay flat on /paged.
func BenchmarkInsertScaling(b *testing.B) {
	for _, n := range []int{10_000, 40_000, 160_000} {
		n := n
		b.Run(fmt.Sprintf("naive/N%d", n), func(b *testing.B) {
			s, err := naive.Build(wideTree(n))
			if err != nil {
				b.Fatal(err)
			}
			mid := xenc.Pre(s.Len() / 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.InsertAfter(mid, smallFrag); err != nil {
					b.Fatal(err)
				}
				// Keep the document from drifting: delete what we added.
				b.StopTimer()
				if err := s.Delete(mid + s.Size(mid) + 1); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("paged/N%d", n), func(b *testing.B) {
			s, err := core.Build(wideTree(n), core.Options{PageSize: 1024, FillFactor: 0.8})
			if err != nil {
				b.Fatal(err)
			}
			mid := xenc.SkipFree(s, xenc.Pre(s.Len()/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, err := s.InsertAfter(mid, smallFrag)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Delete(s.PreOf(ids[0])); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// --- Figure 7: the two insert paths ----------------------------------------------

// BenchmarkInsertWithinPage measures Figure 7(a): the page has free
// space, so the insert moves only in-page tuples.
func BenchmarkInsertWithinPage(b *testing.B) {
	s, err := core.Build(wideTree(50_000), core.Options{PageSize: 1024, FillFactor: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	mid := xenc.SkipFree(s, xenc.Pre(s.Len()/2))
	pages := s.Pages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := s.InsertAfter(mid, smallFrag)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Delete(s.PreOf(ids[0])); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	if s.Pages() != pages {
		b.Fatalf("within-page bench spliced pages: %d -> %d", pages, s.Pages())
	}
}

// BenchmarkInsertPageOverflow measures Figure 7(b): the page is full, so
// the insert appends pages and splices the pageOffset table.
func BenchmarkInsertPageOverflow(b *testing.B) {
	build := func() *core.Store {
		s, err := core.Build(wideTree(50_000), core.Options{PageSize: 1024, FillFactor: 1.0})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := build()
	mid := xenc.SkipFree(s, xenc.Pre(s.Len()/2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.InsertAfter(mid, smallFrag); err != nil {
			b.Fatal(err)
		}
		// Every insert splices a page (deletes do not reclaim them), so
		// rebuild periodically to keep memory bounded under large b.N.
		if i%2000 == 1999 {
			b.StopTimer()
			s = build()
			mid = xenc.SkipFree(s, xenc.Pre(s.Len()/2))
			b.StartTimer()
		}
	}
}

// --- Figure 8 / §3.2: commutative deltas vs root locking --------------------------

func deptStore(b *testing.B, depts, docsPerDept int) *core.Store {
	b.Helper()
	bld := shred.NewBuilder().Start("site")
	for d := 0; d < depts; d++ {
		bld.Start("department", shred.Attr{Name: "id", Value: fmt.Sprintf("d%d", d)})
		for i := 0; i < docsPerDept; i++ {
			bld.Elem("doc", "x")
		}
		bld.End()
	}
	s, err := core.Build(bld.End().Tree(), core.Options{PageSize: 128, FillFactor: 0.7})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkCommutativeDeltas contrasts the paper's delta-increment
// commit (writers under a shared root commit concurrently) with the
// root-locking discipline absolute size updates would force (every
// writer contends on the root's page and most attempts abort).
func BenchmarkCommutativeDeltas(b *testing.B) {
	for _, mode := range []string{"delta", "rootlock"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			s := deptStore(b, 16, 40)
			m := tx.NewManager(s, nil)
			m.SetLockAncestors(mode == "rootlock")
			// Pin one target department per goroutine.
			var deptIdx int32
			var mu sync.Mutex
			nextDept := func() string {
				mu.Lock()
				defer mu.Unlock()
				deptIdx++
				return fmt.Sprintf("d%d", int(deptIdx)%16)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				dept := nextDept()
				sel := xpath.MustParse(fmt.Sprintf(`//department[@id=%q]`, dept))
				for pb.Next() {
					for {
						txn := m.Begin()
						ns, err := sel.Select(txn)
						if err != nil || len(ns) == 0 {
							txn.Abort()
							continue
						}
						if _, err := txn.AppendChild(ns[0].Pre, smallFrag); err != nil {
							txn.Abort()
							continue
						}
						if err := txn.Commit(); err == nil {
							break
						}
					}
				}
			})
			b.StopTimer()
			commits, aborts := m.Stats()
			b.ReportMetric(float64(aborts)/float64(commits+1), "aborts/commit")
		})
	}
}

// --- §3.2: page-granular copy-on-write transactions -------------------------------

// BenchmarkTxSmallUpdateLargeDoc measures the paper's headline update
// property: a one-node update transaction on a large XMark document.
// Begin takes a page-granular copy-on-write snapshot (O(pages) pointer
// copies), the SetValue dirties exactly one page in the transaction
// image, and commit copies exactly one page of the base — so ns/op and
// B/op stay proportional to pages *touched*, not to document size.
// Before page-COW, Begin deep-copied every column of the whole store,
// making this O(document) per transaction.
func BenchmarkTxSmallUpdateLargeDoc(b *testing.B) {
	f := getFixture(b, 0.05) // ~100k-node document
	s, err := core.Build(f.tree, core.Options{PageSize: 1024, FillFactor: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m := tx.NewManager(s, nil)
	ns, err := xpath.MustParse(`/site/regions//item/name/text()`).Select(s)
	if err != nil || len(ns) == 0 {
		b.Fatalf("no item name text nodes: %v", err)
	}
	id := s.NodeOf(ns[0].Pre)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := m.Begin()
		p := txn.PreOf(id)
		if err := txn.SetValue(p, "updated"); err != nil {
			b.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.LiveNodes()), "nodes")
	b.ReportMetric(float64(s.Pages()), "pages")
}

// --- attribute access: the node/pos hop -------------------------------------------

// BenchmarkAttrLookup isolates the overhead the paper singles out: "the
// additional node/pos table that is positionally joined each time an
// attribute is looked up after an XPath step".
func BenchmarkAttrLookup(b *testing.B) {
	f := getFixture(b, 0.01)
	sel := xpath.MustParse(`/site/people/person`)
	for _, tc := range []struct {
		name string
		v    xenc.DocView
	}{{"ro", f.ro}, {"up", f.up}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			ns, err := sel.Select(tc.v)
			if err != nil || len(ns) == 0 {
				b.Fatalf("%v (%d persons)", err, len(ns))
			}
			idName, _ := tc.v.Names().Lookup("id")
			pres := ns.Pres()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pres {
					if _, ok := tc.v.AttrValue(p, idName); !ok {
						b.Fatal("missing id attribute")
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(pres)), "lookups/op")
		})
	}
}

// --- §4.2 related work: ORDPATH --------------------------------------------------

// BenchmarkOrdpath quantifies the trade-offs of variable-length keys vs
// fixed-size pre integers: comparison cost and label growth under
// repeated same-point inserts.
func BenchmarkOrdpath(b *testing.B) {
	b.Run("compare/int32", func(b *testing.B) {
		xs := make([]int32, 1024)
		for i := range xs {
			xs[i] = int32(i * 7 % 1024)
		}
		sink := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, c := xs[i%1024], xs[(i*31)%1024]
			if a < c {
				sink++
			}
		}
		_ = sink
	})
	b.Run("compare/ordpath", func(b *testing.B) {
		labels := make([]ordpath.Label, 1024)
		l := ordpath.Root().FirstChild()
		for i := range labels {
			labels[i] = l
			l = l.NextSibling()
		}
		sink := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ordpath.Compare(labels[i%1024], labels[(i*31)%1024]) < 0 {
				sink++
			}
		}
		_ = sink
	})
	b.Run("compare/ordpath-degenerate", func(b *testing.B) {
		// Labels after heavy same-point inserting: long, caret-ridden.
		l := ordpath.Label{1, 1}
		r := ordpath.Label{1, 3}
		labels := make([]ordpath.Label, 128)
		for i := range labels {
			l = ordpath.Between(l, r)
			labels[i] = l
		}
		b.ReportMetric(float64(len(labels[127])), "components")
		sink := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ordpath.Compare(labels[i%128], labels[(i*31)%128]) < 0 {
				sink++
			}
		}
		_ = sink
	})
	b.Run("insert/ordpath-between", func(b *testing.B) {
		r := ordpath.Label{1, 3}
		l := ordpath.Label{1, 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l = ordpath.Between(l, r)
			if len(l) > 64 {
				b.StopTimer()
				l = ordpath.Label{1, 1} // reset the degenerate chain
				b.StartTimer()
			}
		}
	})
	b.Run("insert/paged-between-siblings", func(b *testing.B) {
		s, err := core.Build(wideTree(10_000), core.Options{PageSize: 1024, FillFactor: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		mid := xenc.SkipFree(s, xenc.Pre(s.Len()/2))
		one := &shred.Tree{Nodes: []shred.Node{{Kind: xenc.KindElem, Name: "n"}}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids, err := s.InsertAfter(mid, one)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := s.Delete(s.PreOf(ids[0])); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// --- ablation AB1: fill factor ---------------------------------------------------

// BenchmarkFillFactor sweeps the shredder fill factor: more unused
// tuples mean more skipping during scans (query cost up) but cheaper
// inserts (less page overflow).
func BenchmarkFillFactor(b *testing.B) {
	f := getFixture(b, 0.01)
	scan := xpath.MustParse(`count(//item)`)
	for _, fill := range []float64{1.0, 0.9, 0.8, 0.6} {
		fill := fill
		s, err := core.Build(f.tree, core.Options{PageSize: 1024, FillFactor: fill})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("query/fill%.0f%%", fill*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scan.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("insert/fill%.0f%%", fill*100), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			items, err := xpath.MustParse(`//item`).Select(s)
			if err != nil || len(items) == 0 {
				b.Fatal(err)
			}
			// Pin targets by immutable node id: pre ranks shift under
			// the inserts this benchmark performs.
			ids := make([]xenc.NodeID, len(items))
			for i, n := range items {
				ids[i] = s.NodeOf(n.Pre)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target := s.PreOf(ids[rng.Intn(len(ids))])
				newIDs, err := s.InsertAfter(target, smallFrag)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Delete(s.PreOf(newIDs[0])); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// --- ablation AB2: page size -----------------------------------------------------

// BenchmarkPageSize sweeps the logical page size: bigger pages mean
// longer in-page tail moves per insert but a shorter pageOffset table.
func BenchmarkPageSize(b *testing.B) {
	tree := wideTree(100_000)
	for _, ps := range []int{256, 1024, 4096, 16384} {
		ps := ps
		s, err := core.Build(tree, core.Options{PageSize: ps, FillFactor: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		mid := xenc.SkipFree(s, xenc.Pre(s.Len()/2))
		b.Run(fmt.Sprintf("insert/page%d", ps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ids, err := s.InsertAfter(mid, smallFrag)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Delete(s.PreOf(ids[0])); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
		scan := xpath.MustParse(`count(//e)`)
		b.Run(fmt.Sprintf("query/page%d", ps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scan.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompact measures the maintenance extension: rebuilding a
// churned store's pages at the target fill (an offline O(N) pass).
func BenchmarkCompact(b *testing.B) {
	f := getFixture(b, 0.01)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.Build(f.tree, core.Options{PageSize: 1024, FillFactor: 0.6})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.Compact(0.8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- versioned-snapshot read path -------------------------------------------------

// BenchmarkConcurrentQueryDuringCommits measures the property the
// per-version snapshot cache exists for: query throughput while a
// writer continuously commits 1-node transactions must stay within ~2x
// of the writer-idle baseline. Before the versioned read path, every
// query held the manager's global read lock for its whole evaluation,
// so a committer serialized against every scan (and vice versa) and
// throughput collapsed. Now a query leases the cached snapshot of the
// current committed version — a refcount bump when the version is
// unchanged, one O(pages) snapshot per commit otherwise — and holds no
// lock during evaluation.
//
// The writer paces itself: a small burst of commits per ~1ms wakeup,
// so nearly every query sees at least one version change and pays the
// read path's worst case (a version miss and a fresh snapshot) while
// the writer stays below core saturation. An unpaced writer on a
// single-core machine measures CPU fair-share (a hard 2x floor), not
// lock interference.
func BenchmarkConcurrentQueryDuringCommits(b *testing.B) {
	f := getFixture(b, 0.01)
	newDoc := func(b *testing.B) *Document {
		s, err := core.Build(f.tree, core.Options{PageSize: 1024, FillFactor: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		return &Document{name: "bench", store: s, mgr: tx.NewManager(s, nil)}
	}
	const query = `/site/regions//item/name/text()`

	b.Run("writer-idle", func(b *testing.B) {
		doc := newDoc(b)
		p, err := doc.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("writer-active", func(b *testing.B) {
		doc := newDoc(b)
		p, err := doc.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		ns, err := xpath.MustParse(`/site/people/person/name/text()`).Select(doc.store)
		if err != nil || len(ns) == 0 {
			b.Fatalf("no person name text nodes: %v", err)
		}
		victim := doc.store.NodeOf(ns[0].Pre)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for burst := 0; burst < 8; burst++ {
					txn := doc.Begin()
					pre := txn.inner.PreOf(victim)
					if err := txn.inner.SetValue(pre, fmt.Sprintf("w%d-%d", i, burst)); err != nil {
						b.Error(err)
						return
					}
					if err := txn.Commit(); err != nil {
						b.Error(err)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		v0 := doc.Version()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
		v1 := doc.Version()
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(v1-v0)/float64(b.N), "commits/query")
	})
}

// BenchmarkCommitFsyncThroughput measures group commit: N goroutines
// commit small disjoint updates against one durable document (real
// fsyncs), so concurrent committers share the WAL flush through the
// leader/follower door. Throughput should *rise* with committer count —
// the whole point of turning N commit fsyncs into ~1 — where a
// fsync-per-commit design would stay flat. The reported fsyncs/commit
// ratio makes the batching visible in BENCH_ci.json. The delay=500µs
// variants measure Options.GroupCommitDelay: the leader holds the door
// open briefly so more committers board each fsync, trading single-
// commit latency for a lower fsyncs/commit ratio under load.
func BenchmarkCommitFsyncThroughput(b *testing.B) {
	for _, cfg := range []struct {
		committers int
		delay      time.Duration
	}{
		{1, 0}, {4, 0}, {16, 0},
		{4, 500 * time.Microsecond}, {16, 500 * time.Microsecond},
	} {
		committers := cfg.committers
		b.Run(fmt.Sprintf("committers=%d/delay=%v", committers, cfg.delay), func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(Options{Dir: dir, PageSize: 64, GroupCommitDelay: cfg.delay})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			// One padded section per committer so their SetValue targets
			// land on disjoint pages (no lock conflicts, pure commit-path
			// contention).
			var sb strings.Builder
			sb.WriteString(`<r>`)
			for c := 0; c < committers; c++ {
				fmt.Fprintf(&sb, `<s id="c%d"><v>0</v>%s</s>`, c, strings.Repeat(`<pad>x</pad>`, 80))
			}
			sb.WriteString(`</r>`)
			doc, err := db.LoadXMLString("bench", sb.String())
			if err != nil {
				b.Fatal(err)
			}
			mods := make([]string, committers)
			for c := 0; c < committers; c++ {
				mods[c] = wrapMods(fmt.Sprintf(
					`<xupdate:update select="/r/s[@id=&quot;c%d&quot;]/v">n</xupdate:update>`, c))
			}

			syncs0 := docSyncCount(doc)
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / committers
			if per == 0 {
				per = 1
			}
			for c := 0; c < committers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := doc.Update(mods[c]); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			commits := float64(per * committers)
			b.ReportMetric(float64(docSyncCount(doc)-syncs0)/commits, "fsyncs/commit")
			b.ReportMetric(commits/b.Elapsed().Seconds(), "commits/s")
		})
	}
}

// docSyncCount reads the document WAL's physical fsync counter.
func docSyncCount(d *Document) uint64 {
	if d.log == nil {
		return 0
	}
	return d.log.SyncCount()
}

// --- incremental content-addressed checkpoints -------------------------------------

// BenchmarkCheckpointIncremental measures the O(churn) checkpoint
// claim on the XMark SF 0.1 document: a full checkpoint into an empty
// chunk store writes the whole document, while a checkpoint after ≤1%
// clustered churn re-references every clean chunk by content hash and
// writes only the dirtied ones. Compare the two sub-benchmarks'
// ckpt-B/op (bytes actually written; the acceptance floor is 10x) and
// ns/op (the wall-time win of skipping clean chunks).
func BenchmarkCheckpointIncremental(b *testing.B) {
	f := getFixture(b, 0.1)
	s, err := core.Build(f.tree, core.Options{PageSize: 1024, FillFactor: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	m := tx.NewManager(s, nil)
	// Churn targets: ≤1% of live nodes, contiguous in document order so
	// the dirtied pages track the churn volume.
	ns, err := xpath.MustParse(`/site/regions//item//text()`).Select(s)
	if err != nil || len(ns) == 0 {
		b.Fatalf("selecting churn targets: %v (%d nodes)", err, len(ns))
	}
	churn := s.LiveNodes() / 100
	if churn > len(ns) {
		churn = len(ns)
	}
	ids := make([]xenc.NodeID, churn)
	for i := range ids {
		ids[i] = s.NodeOf(ns[i].Pre)
	}
	churnOnce := func(b *testing.B, round int) {
		txn := m.Begin()
		for j, id := range ids {
			if err := txn.SetValue(txn.PreOf(id), fmt.Sprintf("c%d-%d", round, j)); err != nil {
				b.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	save := func(b *testing.B, cs *chunkstore.Dir) int64 {
		img, _ := m.PinCheckpoint()
		defer img.Release()
		_, st, err := img.SaveChunked(cs)
		if err != nil {
			b.Fatal(err)
		}
		return st.BytesWritten
	}

	b.Run("full", func(b *testing.B) {
		var written int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cs := chunkstore.NewDir(filepath.Join(b.TempDir(), "chunks"))
			b.StartTimer()
			written += save(b, cs)
		}
		b.ReportMetric(float64(written)/float64(b.N), "ckpt-B/op")
	})
	b.Run("incremental", func(b *testing.B) {
		cs := chunkstore.NewDir(filepath.Join(b.TempDir(), "chunks"))
		save(b, cs) // baseline: the store holds the whole document
		var written int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churnOnce(b, i)
			b.StartTimer()
			written += save(b, cs)
		}
		b.ReportMetric(float64(written)/float64(b.N), "ckpt-B/op")
	})
}
