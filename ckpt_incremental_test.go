package mxq

import (
	"bytes"
	"fmt"
	"testing"

	"mxq/internal/xmark"
	"mxq/internal/xpath"
)

// TestCheckpointIncrementalSavings pins the incremental-checkpoint
// acceptance number: on an XMark SF 0.1 document, the checkpoint after
// ≤1% churn writes at least 10x fewer bytes than the initial full
// checkpoint (content-addressed dedupe re-references every chunk the
// churn did not dirty), and recovery from the incremental image is
// bit-identical to the live document it captured.
func TestCheckpointIncrementalSavings(t *testing.T) {
	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(0.1, 42).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXML("site", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	full := doc.Stats().CkptBytesWritten
	if full == 0 {
		t.Fatal("full checkpoint wrote no bytes")
	}

	// Churn at most 1% of the document's live nodes. The targets are
	// contiguous in document order (a hot region of items, not one node
	// per item across the whole document), so the dirtied pages — the
	// unit a chunk covers — track the churn volume.
	ns, err := xpath.MustParse(`/site/regions//item//text()`).Select(doc.store)
	if err != nil || len(ns) == 0 {
		t.Fatalf("selecting churn targets: %v (%d nodes)", err, len(ns))
	}
	churn := doc.store.LiveNodes() / 100
	if churn > len(ns) {
		churn = len(ns)
	}
	if churn == 0 {
		t.Fatal("document too small to churn under 1%")
	}
	txn := doc.Begin()
	for i := 0; i < churn; i++ {
		id := doc.store.NodeOf(ns[i].Pre)
		if err := txn.inner.SetValue(txn.inner.PreOf(id), fmt.Sprintf("churn-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	incr := st.CkptBytesWritten - full
	if incr == 0 {
		t.Fatal("incremental checkpoint wrote no bytes — the churn never reached disk")
	}
	if full < 10*incr {
		t.Fatalf("incremental checkpoint after %d-node churn wrote %d bytes, full wrote %d: less than the 10x floor",
			churn, incr, full)
	}
	if st.CkptDedupeRatio <= 0 {
		t.Fatalf("dedupe ratio %v not reported despite chunk reuse", st.CkptDedupeRatio)
	}
	t.Logf("full %d bytes, incremental %d bytes (%.1fx), dedupe %.1f%%",
		full, incr, float64(full)/float64(incr), 100*st.CkptDedupeRatio)

	// Recovery from the incremental image must reproduce the document
	// bit-identically.
	oracle, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("site")
	if !ok {
		t.Fatal("document did not recover")
	}
	got, err := doc2.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got != oracle {
		t.Fatal("recovered document differs from the checkpointed one")
	}
}
