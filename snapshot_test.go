package mxq

import (
	"strings"
	"testing"
)

const snapDoc = `<lib><shelf id="s1"><book genre="sf">A</book><book genre="hist">B</book></shelf></lib>`

func loadSnapDoc(t *testing.T) *Document {
	t.Helper()
	db, err := Open(Options{PageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", snapDoc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSnapshotHandleLifecycle covers the public contract end to end: a
// snapshot observes its version across commits, Close is idempotent,
// and use after Close fails with ErrSnapshotClosed.
func TestSnapshotHandleLifecycle(t *testing.T) {
	doc := loadSnapDoc(t)

	snap := doc.Snapshot()
	if snap.Version() != 0 {
		t.Fatalf("fresh snapshot at version %d, want 0", snap.Version())
	}
	before, err := snap.XML()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/lib/shelf"><book>C</book></xupdate:append>
	</xupdate:modifications>`); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees 2 books; the document sees 3.
	if n, err := snap.Count(`//book`); err != nil || n != 2 {
		t.Fatalf("snapshot sees %d books (err %v), want 2", n, err)
	}
	if n, err := doc.Count(`//book`); err != nil || n != 3 {
		t.Fatalf("document sees %d books (err %v), want 3", n, err)
	}
	if got, _ := snap.XML(); got != before {
		t.Fatalf("snapshot drifted across a commit:\nbefore: %s\nafter:  %s", before, got)
	}
	if v, err := snap.QueryValue(`/lib/shelf/book[1]/text()`); err != nil || v != "A" {
		t.Fatalf("snapshot QueryValue = %q, %v", v, err)
	}

	snap.Close()
	snap.Close() // idempotent
	if _, err := snap.Query(`//book`); err != ErrSnapshotClosed {
		t.Fatalf("query on closed snapshot: %v, want ErrSnapshotClosed", err)
	}
	if err := snap.SerializeTo(&strings.Builder{}, ""); err != ErrSnapshotClosed {
		t.Fatalf("serialize on closed snapshot: %v, want ErrSnapshotClosed", err)
	}

	// The document is unaffected by the handle's lifecycle.
	if n, _ := doc.Count(`//book`); n != 3 {
		t.Fatalf("document sees %d books after snapshot close, want 3", n)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactDictionariesPublic: an aborted transaction leaks names and
// attribute values into the shared dictionaries; CompactDictionaries
// reclaims exactly those, visible through Stats, without changing the
// document.
func TestCompactDictionariesPublic(t *testing.T) {
	doc := loadSnapDoc(t)
	base := doc.Stats()

	txn := doc.Begin()
	if _, err := txn.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	  <xupdate:append select="/lib/shelf"><leaked-elem leaked-attr="leaked-val">x</leaked-elem></xupdate:append>
	</xupdate:modifications>`); err != nil {
		t.Fatal(err)
	}
	txn.Abort()

	leaked := doc.Stats()
	if leaked.Names <= base.Names || leaked.Props <= base.Props {
		t.Fatalf("abort leaked nothing: names %d->%d, props %d->%d",
			base.Names, leaked.Names, base.Props, leaked.Props)
	}
	if leaked.Aborts != 1 {
		t.Fatalf("abort count %d, want 1", leaked.Aborts)
	}

	before, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	nd, pd := doc.CompactDictionaries()
	if nd == 0 || pd == 0 {
		t.Fatalf("compaction dropped (%d names, %d props), want both > 0", nd, pd)
	}
	after := doc.Stats()
	if after.Names != base.Names || after.Props != base.Props {
		t.Fatalf("post-compaction dict sizes (%d, %d), want (%d, %d)",
			after.Names, after.Props, base.Names, base.Props)
	}
	if got, _ := doc.XML(); got != before {
		t.Fatalf("document changed across dictionary compaction:\nbefore: %s\nafter:  %s", before, got)
	}
	// Attribute queries still resolve through the rewritten table.
	if v, err := doc.QueryValue(`/lib/shelf/book[1]/@genre`); err != nil || v != "sf" {
		t.Fatalf("attribute query after compaction = %q, %v, want \"sf\"", v, err)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Nothing left to drop.
	if nd, pd := doc.CompactDictionaries(); nd != 0 || pd != 0 {
		t.Fatalf("second compaction dropped (%d, %d), want (0, 0)", nd, pd)
	}
}

// TestSnapshotSharesQueryCache: handles taken at the same version share
// the query path's cached snapshot, so open queries and snapshots pin
// the base's chunks once, not per handle.
func TestSnapshotSharesQueryCache(t *testing.T) {
	doc := loadSnapDoc(t)
	a := doc.Snapshot()
	b := doc.Snapshot()
	defer a.Close()
	defer b.Close()
	if a.Version() != b.Version() {
		t.Fatalf("versions diverged: %d vs %d", a.Version(), b.Version())
	}
	ax, _ := a.XML()
	bx, _ := b.XML()
	if ax != bx {
		t.Fatal("two same-version handles disagree")
	}
}
