package mxq

import (
	"errors"
	"io"
	"strings"

	"mxq/internal/serialize"
	"mxq/internal/tx"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// ErrSnapshotClosed reports use of a snapshot handle after Close.
var ErrSnapshotClosed = errors.New("mxq: snapshot is closed")

// Snapshot is an immutable point-in-time view of a document, held open
// until Close. Queries against it observe the committed version current
// when it was taken, no matter how many transactions commit afterwards —
// commits copy the pages they modify instead of updating shared chunks
// in place (the page-granular copy-on-write scheme of the paper's
// Section 3.2) — and it is safe for concurrent use by any number of
// goroutines.
//
// Lifetime contract: a held snapshot keeps the chunks it shares with the
// base store copy-on-write, so commits that overlap its lifetime pay one
// page copy per page they dirty. Close (idempotent) returns the handle's
// chunk references; once the last sharer of the version is gone, the
// base store resumes writing those chunks in place, so a snapshot's
// total cost is bounded by the pages dirtied while it was open. Always
// pair Snapshot with a deferred Close. A handle that is garbage-collected
// unclosed is released by a finalizer and reported as a leak, but until
// the collector runs the base keeps paying the copy-on-write tax.
type Snapshot struct {
	h *tx.Snapshot
}

// Snapshot returns a closeable handle on the document's current
// committed version. Handles taken at the same version share one
// underlying snapshot with the query path's internal cache, so taking
// one is cheap (at most one O(pages) refcount sweep, usually none).
// The caller must Close the handle when done.
func (d *Document) Snapshot() *Snapshot {
	return &Snapshot{h: d.mgr.Snapshot()}
}

// Close releases the snapshot. Calling Close more than once is harmless;
// using the snapshot afterwards returns ErrSnapshotClosed.
func (s *Snapshot) Close() { s.h.Close() }

// Version returns the committed version the snapshot observes.
func (s *Snapshot) Version() uint64 { return s.h.Version() }

// read runs fn against the snapshot's view. The underlying handle takes
// a per-call reference, so a Close racing the read (or the finalizer
// backstop, should the handle become garbage mid-call) cannot release
// the snapshot's chunks until fn returns.
func (s *Snapshot) read(fn func(v xenc.DocView) error) error {
	err := s.h.WithView(fn)
	if err == tx.ErrSnapshotClosed {
		return ErrSnapshotClosed
	}
	return err
}

// Query compiles and runs an XPath expression against the snapshot.
func (s *Snapshot) Query(q string) (Result, error) {
	expr, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	var res Result
	err = s.read(func(v xenc.DocView) error {
		var inner error
		res, inner = materialize(v, expr, nil)
		return inner
	})
	return res, err
}

// QueryValue runs a query and returns its single string value.
func (s *Snapshot) QueryValue(q string) (string, error) {
	res, err := s.Query(q)
	if err != nil {
		return "", err
	}
	if len(res) == 0 {
		return "", nil
	}
	return res[0].Value, nil
}

// Count returns the number of nodes a path selects in the snapshot.
func (s *Snapshot) Count(q string) (int, error) {
	res, err := s.Query(q)
	if err != nil {
		return 0, err
	}
	return len(res), nil
}

// SerializeTo writes the snapshot as XML.
func (s *Snapshot) SerializeTo(w io.Writer, indent string) error {
	return s.read(func(v xenc.DocView) error {
		return serialize.Document(w, v, serialize.Options{Indent: indent})
	})
}

// XML returns the serialized snapshot.
func (s *Snapshot) XML() (string, error) {
	var b strings.Builder
	if err := s.SerializeTo(&b, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}
