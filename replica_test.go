package mxq

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxq/internal/ckpt"
	"mxq/internal/repl"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/wire"
)

// countingConn counts the bytes the primary writes to the follower —
// the transfer volume chunked bootstrap exists to shrink.
type countingConn struct {
	net.Conn
	sent *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// replListener is a minimal primary endpoint: Hello + SubscribeWAL
// delegated to repl.Serve over the document's ReplSource (the real
// daemon wires the same calls through internal/server). It negotiates
// features exactly like the server — a follower that advertises
// FeatChunkedSnap on protocol 3 gets chunked bootstraps — and the
// returned counter accumulates every byte sent to followers.
func replListener(t *testing.T, doc *Document) (net.Listener, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sent := new(atomic.Int64)
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := &countingConn{Conn: raw, sent: sent}
				defer conn.Close()
				var proto, feats uint64
				for {
					fr, err := wire.ReadFrame(conn, 0)
					if err != nil {
						return
					}
					switch fr.Op {
					case wire.OpHello:
						r := wire.NewPayloadReader(fr.Payload)
						cliVer, _ := r.Uvarint()
						cliFeats, _ := r.Uvarint()
						var ok bool
						proto, feats, ok = wire.Negotiate(cliVer, wire.FeatReplication|wire.FeatRYW|wire.FeatChunkedSnap, cliFeats)
						if !ok {
							return
						}
						var b wire.PayloadBuilder
						b.Uvarint(proto).Uvarint(feats)
						wire.WriteFrame(conn, wire.Frame{ID: fr.ID, Op: wire.StatusOK, Payload: b.Bytes()})
					case wire.OpSubscribeWAL:
						r := wire.NewPayloadReader(fr.Payload)
						if _, err := r.String(); err != nil {
							return
						}
						after, err := r.Uvarint()
						if err != nil {
							return
						}
						src, err := doc.ReplSource()
						if err != nil {
							return
						}
						src.Chunked = proto >= wire.V3 && feats&wire.FeatChunkedSnap != 0
						repl.Serve(conn, fr.ID, after, src, 0, t.Logf)
						return
					default:
						return
					}
				}
			}()
		}
	}()
	return ln, sent
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const replDoc = `<lib><shelf id="s1"><book>A</book></shelf></lib>`

func appendBook(t *testing.T, doc *Document, name string) uint64 {
	t.Helper()
	txn := doc.Begin()
	if _, err := txn.Update(`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		<xupdate:append select="/lib/shelf"><book>` + name + `</book></xupdate:append>
	</xupdate:modifications>`); err != nil {
		txn.Abort()
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return txn.CommitLSN()
}

// TestFollowDocument is the whole follower lifecycle against a live
// primary: empty-directory bootstrap, live streaming, read-your-writes
// by LSN, restart with WAL-mode resume.
func TestFollowDocument(t *testing.T) {
	primaryDB, err := Open(Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primaryDB.Close()
	doc, err := primaryDB.LoadXMLString("lib", replDoc)
	if err != nil {
		t.Fatal(err)
	}
	appendBook(t, doc, "B")
	ln, _ := replListener(t, doc)

	followerDir := t.TempDir()
	followerDB, err := Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "bootstrap", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == doc.LastLSN()
	})

	// Read-your-writes: commit on the primary, wait for the LSN on the
	// follower, then the read must see it.
	lsn := appendBook(t, doc, "C")
	fdoc, _ := followerDB.Document("lib")
	if err := fdoc.WaitApplied(lsn, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n, err := fdoc.Count(`//book[text()="C"]`); err != nil || n != 1 {
		t.Fatalf("follower read after WaitApplied: n=%d err=%v", n, err)
	}
	// A too-new LSN is a typed staleness failure, never a silent stale read.
	if err := fdoc.WaitApplied(lsn+100, 20*time.Millisecond); !errors.Is(err, tx.ErrStale) {
		t.Fatalf("future LSN wait = %v", err)
	}
	waitUntil(t, "follower registration", func() bool { return doc.Followers() == 1 })

	// Restart the follower: it must recover locally and resume by WAL
	// replay (no second bootstrap — the primary would tell us by mode,
	// which docSink counts via a fresh ckpt each bootstrap; we check
	// convergence and that local recovery alone reached the old LSN).
	stop()
	if err := followerDB.Close(); err != nil {
		t.Fatal(err)
	}
	lsn = appendBook(t, doc, "D")

	followerDB, err = Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer followerDB.Close()
	fdoc, ok := followerDB.Document("lib")
	if !ok {
		t.Fatal("follower did not recover its local document")
	}
	if fdoc.AppliedLSN() == 0 {
		t.Fatal("local recovery lost the applied watermark")
	}
	stop, err = followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	waitUntil(t, "resume", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == lsn
	})
	d, _ := followerDB.Document("lib")
	want, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("follower diverged after restart:\n%s\n%s", got, want)
	}
}

// TestFollowerRebootstrapShipsOnlyMissingChunks is the payoff of the
// chunked bootstrap: a follower that crash-restarts with its recovery
// artifacts gone but its content-addressed chunk store intact
// re-bootstraps by diffing the primary's manifest against that store,
// so the wire carries only the chunks the churn since then dirtied —
// a small fraction of the first (cold) bootstrap's transfer.
func TestFollowerRebootstrapShipsOnlyMissingChunks(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<lib><shelf id="s1">`)
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sb, "<book>title-%05d</book>", i)
	}
	sb.WriteString(`</shelf></lib>`)

	primaryDB, err := Open(Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primaryDB.Close()
	doc, err := primaryDB.LoadXMLString("lib", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	ln, sent := replListener(t, doc)

	// Cold bootstrap: the follower's chunk store is empty, every chunk
	// ships. This transfer is the doc-size yardstick.
	followerDir := t.TempDir()
	followerDB, err := Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "cold bootstrap", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == doc.LastLSN()
	})
	stop()
	if err := followerDB.Close(); err != nil {
		t.Fatal(err)
	}
	cold := sent.Load()
	if cold == 0 {
		t.Fatal("counting conn saw no bootstrap bytes")
	}

	// The crash: WAL and checkpoint images gone (the follower cannot
	// recover locally), chunk store intact. Then a little churn on the
	// primary, so the manifest is not even identical.
	wal.RemoveSegments(filepath.Join(followerDir, "lib.wal"))
	ckpt.RemoveArtifacts(followerDir, "lib")
	lsn := appendBook(t, doc, "churn")

	followerDB, err = Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer followerDB.Close()
	if _, ok := followerDB.Document("lib"); ok {
		t.Fatal("document recovered without WAL or images; crash simulation is broken")
	}
	base := sent.Load()
	stop, err = followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	waitUntil(t, "re-bootstrap", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == lsn
	})
	rebootstrap := sent.Load() - base

	// The re-bootstrap is a full snapshot bootstrap on the wire protocol
	// level (manifest + chunks + stream), but almost every chunk is
	// already local: the transfer must be a small fraction of cold.
	if rebootstrap*5 > cold {
		t.Fatalf("re-bootstrap shipped %d bytes, cold bootstrap %d: chunk reuse is not happening", rebootstrap, cold)
	}
	t.Logf("cold bootstrap %d bytes, re-bootstrap %d bytes (%.1f%%)", cold, rebootstrap, 100*float64(rebootstrap)/float64(cold))

	fdoc, _ := followerDB.Document("lib")
	want, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fdoc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("follower diverged after chunked re-bootstrap")
	}
}

// TestReplSourceRequiresDurability: a volatile document cannot be
// replicated (no WAL, nothing to ship) and says so with a typed error.
func TestReplSourceRequiresDurability(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("lib", replDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.ReplSource(); !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("ReplSource on volatile doc = %v", err)
	}
	if _, err := db.FollowDocument("127.0.0.1:1", "lib"); !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("FollowDocument without dir = %v", err)
	}
	// Volatile commits carry no LSN: nothing for read-your-writes to key on.
	txn := doc.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if txn.CommitLSN() != 0 {
		t.Fatalf("volatile commit LSN = %d, want 0", txn.CommitLSN())
	}
	_ = doc
}
