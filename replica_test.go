package mxq

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"mxq/internal/repl"
	"mxq/internal/tx"
	"mxq/internal/wire"
)

// replListener is a minimal primary endpoint: Hello + SubscribeWAL
// delegated to repl.Serve over the document's ReplSource (the real
// daemon wires the same calls through internal/server).
func replListener(t *testing.T, doc *Document) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				for {
					fr, err := wire.ReadFrame(conn, 0)
					if err != nil {
						return
					}
					switch fr.Op {
					case wire.OpHello:
						var b wire.PayloadBuilder
						b.Uvarint(wire.MaxVersion).Uvarint(wire.FeatReplication | wire.FeatRYW)
						wire.WriteFrame(conn, wire.Frame{ID: fr.ID, Op: wire.StatusOK, Payload: b.Bytes()})
					case wire.OpSubscribeWAL:
						r := wire.NewPayloadReader(fr.Payload)
						if _, err := r.String(); err != nil {
							return
						}
						after, err := r.Uvarint()
						if err != nil {
							return
						}
						src, err := doc.ReplSource()
						if err != nil {
							return
						}
						repl.Serve(conn, fr.ID, after, src, 0, t.Logf)
						return
					default:
						return
					}
				}
			}()
		}
	}()
	return ln
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const replDoc = `<lib><shelf id="s1"><book>A</book></shelf></lib>`

func appendBook(t *testing.T, doc *Document, name string) uint64 {
	t.Helper()
	txn := doc.Begin()
	if _, err := txn.Update(`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
		<xupdate:append select="/lib/shelf"><book>` + name + `</book></xupdate:append>
	</xupdate:modifications>`); err != nil {
		txn.Abort()
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return txn.CommitLSN()
}

// TestFollowDocument is the whole follower lifecycle against a live
// primary: empty-directory bootstrap, live streaming, read-your-writes
// by LSN, restart with WAL-mode resume.
func TestFollowDocument(t *testing.T) {
	primaryDB, err := Open(Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer primaryDB.Close()
	doc, err := primaryDB.LoadXMLString("lib", replDoc)
	if err != nil {
		t.Fatal(err)
	}
	appendBook(t, doc, "B")
	ln := replListener(t, doc)

	followerDir := t.TempDir()
	followerDB, err := Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "bootstrap", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == doc.LastLSN()
	})

	// Read-your-writes: commit on the primary, wait for the LSN on the
	// follower, then the read must see it.
	lsn := appendBook(t, doc, "C")
	fdoc, _ := followerDB.Document("lib")
	if err := fdoc.WaitApplied(lsn, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n, err := fdoc.Count(`//book[text()="C"]`); err != nil || n != 1 {
		t.Fatalf("follower read after WaitApplied: n=%d err=%v", n, err)
	}
	// A too-new LSN is a typed staleness failure, never a silent stale read.
	if err := fdoc.WaitApplied(lsn+100, 20*time.Millisecond); !errors.Is(err, tx.ErrStale) {
		t.Fatalf("future LSN wait = %v", err)
	}
	waitUntil(t, "follower registration", func() bool { return doc.Followers() == 1 })

	// Restart the follower: it must recover locally and resume by WAL
	// replay (no second bootstrap — the primary would tell us by mode,
	// which docSink counts via a fresh ckpt each bootstrap; we check
	// convergence and that local recovery alone reached the old LSN).
	stop()
	if err := followerDB.Close(); err != nil {
		t.Fatal(err)
	}
	lsn = appendBook(t, doc, "D")

	followerDB, err = Open(Options{Dir: followerDir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer followerDB.Close()
	fdoc, ok := followerDB.Document("lib")
	if !ok {
		t.Fatal("follower did not recover its local document")
	}
	if fdoc.AppliedLSN() == 0 {
		t.Fatal("local recovery lost the applied watermark")
	}
	stop, err = followerDB.FollowDocument(ln.Addr().String(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	waitUntil(t, "resume", func() bool {
		d, ok := followerDB.Document("lib")
		return ok && d.AppliedLSN() == lsn
	})
	d, _ := followerDB.Document("lib")
	want, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("follower diverged after restart:\n%s\n%s", got, want)
	}
}

// TestReplSourceRequiresDurability: a volatile document cannot be
// replicated (no WAL, nothing to ship) and says so with a typed error.
func TestReplSourceRequiresDurability(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("lib", replDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.ReplSource(); !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("ReplSource on volatile doc = %v", err)
	}
	if _, err := db.FollowDocument("127.0.0.1:1", "lib"); !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("FollowDocument without dir = %v", err)
	}
	// Volatile commits carry no LSN: nothing for read-your-writes to key on.
	txn := doc.Begin()
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if txn.CommitLSN() != 0 {
		t.Fatalf("volatile commit LSN = %d, want 0", txn.CommitLSN())
	}
	_ = doc
}
