package mxq

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mxq/internal/tx"
	"mxq/internal/validate"
)

const libDoc = `<lib><shelf id="s1"><book year="1999">Alpha</book><book year="2003">Beta</book></shelf></lib>`

const modsWrap = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">%BODY%</xupdate:modifications>`

func wrapMods(body string) string { return strings.Replace(modsWrap, "%BODY%", body, 1) }

func TestLoadQueryUpdateRoundTrip(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.QueryValue(`/lib/shelf/book[1]/text()`); got != "Alpha" {
		t.Fatalf("first book = %q", got)
	}
	if n, _ := doc.Count(`//book`); n != 2 {
		t.Fatalf("books = %d", n)
	}
	if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book year="2020">Gamma</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.Count(`//book`); n != 3 {
		t.Fatalf("books after update = %d", n)
	}
	xml, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, `<book year="2020">Gamma</book></shelf>`) {
		t.Fatalf("xml = %s", xml)
	}
	if err := doc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResultMaterialization(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", libDoc)
	res, err := doc.Query(`//book`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Kind != "element" || res[0].XML != `<book year="1999">Alpha</book>` {
		t.Fatalf("res = %+v", res)
	}
	res, err = doc.Query(`count(//book)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Kind != "number" || res[0].Value != "2" {
		t.Fatalf("count result = %+v", res)
	}
	res, err = doc.Query(`//book/@year`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Kind != "attribute" || res[0].Value != "1999" {
		t.Fatalf("attr result = %+v", res)
	}
	if got := res.Strings(); got[1] != "2003" {
		t.Fatalf("Strings() = %v", got)
	}
	res, err = doc.Query(`boolean(//book)`)
	if err != nil || res[0].Kind != "boolean" || res[0].Value != "true" {
		t.Fatalf("boolean result = %+v (%v)", res, err)
	}
}

func TestQueryVars(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", libDoc)
	res, err := doc.QueryVars(`//book[@year = $y]/text()`, map[string]string{"y": "2003"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Value != "Beta" {
		t.Fatalf("res = %+v", res)
	}
}

func TestDocumentRegistry(t *testing.T) {
	db, _ := Open(Options{})
	if _, err := db.LoadXMLString("a", `<a/>`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("b", `<b/>`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadXMLString("a", `<a2/>`); err == nil {
		t.Fatal("duplicate name accepted")
	}
	names := db.Documents()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("documents = %v", names)
	}
	if _, ok := db.Document("a"); !ok {
		t.Fatal("lookup failed")
	}
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("a"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if _, ok := db.Document("a"); ok {
		t.Fatal("dropped document still present")
	}
}

func TestBadInputs(t *testing.T) {
	db, _ := Open(Options{})
	if _, err := db.LoadXMLString("bad", `<a><b></a>`); err == nil {
		t.Fatal("malformed XML accepted")
	}
	doc, _ := db.LoadXMLString("lib", libDoc)
	if _, err := doc.Query(`//book[`); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := doc.Update(`not xml`); err == nil {
		t.Fatal("bad update accepted")
	}
	if _, err := doc.Update(wrapMods(`<xupdate:remove select="/lib"/>`)); err == nil {
		t.Fatal("root removal committed")
	}
	// The failed update must not have leaked partial state.
	if n, _ := doc.Count(`/lib`); n != 1 {
		t.Fatal("document damaged by failed update")
	}
}

func TestExplicitTransaction(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", libDoc)
	txn := doc.Begin()
	if _, err := txn.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>New</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	res, err := txn.Query(`count(//book)`)
	if err != nil || res[0].Value != "3" {
		t.Fatalf("tx sees %v (%v), want 3", res, err)
	}
	if n, _ := doc.Count(`//book`); n != 2 {
		t.Fatal("uncommitted change visible outside tx")
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := doc.Count(`//book`); n != 3 {
		t.Fatal("commit lost")
	}

	txn2 := doc.Begin()
	txn2.Update(wrapMods(`<xupdate:remove select="//book"/>`))
	txn2.Abort()
	if n, _ := doc.Count(`//book`); n != 3 {
		t.Fatal("aborted change applied")
	}
	if err := txn2.Commit(); !errors.Is(err, tx.ErrDone) {
		t.Fatalf("commit after abort = %v", err)
	}
}

func TestSchemaValidationOnCommit(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", libDoc)
	doc.SetSchema(validate.NewSchema().
		Elem("shelf", Rule()).
		Elem("book", validate.Rule{NoElements: true}))
	if _, err := doc.Update(wrapMods(`<xupdate:append select="//book[1]"><sub/></xupdate:append>`)); err == nil {
		t.Fatal("schema-violating update committed")
	}
	if n, _ := doc.Count(`//sub`); n != 0 {
		t.Fatal("invalid content leaked")
	}
	doc.SetSchema(nil)
	if _, err := doc.Update(wrapMods(`<xupdate:append select="//book[1]"><sub/></xupdate:append>`)); err != nil {
		t.Fatalf("after clearing schema: %v", err)
	}
}

// Rule is a tiny helper keeping the test readable.
func Rule() validate.Rule { return validate.Rule{} }

func TestStats(t *testing.T) {
	db, _ := Open(Options{PageSize: 16, FillFactor: 0.5})
	doc, _ := db.LoadXMLString("lib", libDoc)
	s := doc.Stats()
	if s.LiveNodes != 6 || s.PageSize != 16 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Fill <= 0 || s.Fill > 0.51 {
		t.Fatalf("fill = %v, want ~0.3", s.Fill)
	}
	doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>C</book></xupdate:append>`))
	s = doc.Stats()
	if s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint plus three committed updates in the WAL.
	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>W</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := doc.XML()
	db.Close()

	// "Crash" and reopen: the store must come back from ckpt + WAL.
	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("lib")
	if !ok {
		t.Fatalf("document not recovered; dir: %v", ls(t, dir))
	}
	got, err := doc2.XML()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered xml differs:\nwant %s\ngot  %s", want, got)
	}
	if err := doc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And it stays writable.
	if _, err := doc2.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>Z</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
}

func ls(t *testing.T, dir string) []string {
	t.Helper()
	ents, _ := os.ReadDir(dir)
	var out []string
	for _, e := range ents {
		out = append(out, filepath.Base(e.Name()))
	}
	return out
}

func TestSerializeToIndented(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", `<a><b/></a>`)
	var sb strings.Builder
	if err := doc.SerializeTo(&sb, "  "); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "<a>\n  <b/>\n</a>\n" {
		t.Fatalf("indented = %q", sb.String())
	}
}

func TestPreparedQueries(t *testing.T) {
	db, _ := Open(Options{})
	doc, _ := db.LoadXMLString("lib", libDoc)
	p, err := doc.Prepare(`//book[@year = $y]/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Source() == "" {
		t.Fatal("empty source")
	}
	for y, want := range map[string]string{"1999": "Alpha", "2003": "Beta"} {
		res, err := p.Run(map[string]string{"y": y})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Value != want {
			t.Fatalf("year %s: %+v", y, res)
		}
	}
	// Prepared queries see committed updates.
	if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book year="1999">Alpha2</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	res, _ := p.Run(map[string]string{"y": "1999"})
	if len(res) != 2 {
		t.Fatalf("after update: %+v", res)
	}
	if _, err := doc.Prepare(`bad[`); err == nil {
		t.Fatal("bad query prepared")
	}
}

// TestAutoCheckpointPolicy: with Options.CheckpointEvery set, the
// background goroutine must checkpoint once the WAL tail exceeds the
// policy, prune covered segments, and leave a recoverable manifest;
// Close must drain it cleanly.
func TestAutoCheckpointPolicy(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Dir: dir, NoSync: true, WALSegmentBytes: 512,
		CheckpointEvery: CheckpointPolicy{Records: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>auto</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for doc.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-checkpointer never ran; stats = %+v", doc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	want, _ := doc.XML()
	db.Close() // drains the auto goroutine

	if _, err := os.Stat(filepath.Join(dir, "lib.manifest")); err != nil {
		t.Fatalf("no manifest after auto checkpoint: %v", err)
	}
	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("lib")
	if !ok {
		t.Fatalf("document not recovered; dir: %v", ls(t, dir))
	}
	if got, _ := doc2.XML(); got != want {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}
	if n, _ := doc2.Count(`//book[text()="auto"]`); n != 12 {
		t.Fatalf("auto-checkpointed commits lost: %d of 12", n)
	}
}

// TestCheckpointOnlineKeepsCommitsDurable: commits landing after an
// explicit checkpoint stay in the (pruned) WAL and survive reopen —
// the root-API view of the lost-commit regression.
func TestCheckpointOnlineKeepsCommitsDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true, WALSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>pre</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Racing-commit shape: land right after the checkpoint published.
	if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>racing</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	want, _ := doc.XML()
	db.Close()

	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc2, _ := db2.Document("lib")
	if got, _ := doc2.XML(); got != want {
		t.Fatalf("post-checkpoint commit lost:\nwant %s\ngot  %s", want, got)
	}
}

// TestDropSparesDashSiblingDocuments: dropping "a" must not delete the
// durability artifacts of "a-b" (whose name "a" prefixes).
func TestDropSparesDashSiblingDocuments(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	docA, err := db.LoadXMLString("a", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	docAB, err := db.LoadXMLString("a-b", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Document{docA, docAB} {
		if _, err := d.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>sib</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := docAB.XML()
	if err := db.Drop("a"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Document("a"); ok {
		t.Fatal(`dropped document "a" came back`)
	}
	doc2, ok := db2.Document("a-b")
	if !ok {
		t.Fatalf(`dropping "a" destroyed "a-b"; dir: %v`, ls(t, dir))
	}
	if got, _ := doc2.XML(); got != want {
		t.Fatalf(`"a-b" damaged by Drop("a"):\nwant %s\ngot  %s`, want, got)
	}
}

// TestAutoCheckpointMeasuresBeyondLastCheckpoint: covered records parked
// in the never-pruned active segment must not re-trigger checkpoints —
// the policy measures the tail beyond the last checkpoint's LSN.
func TestAutoCheckpointMeasuresBeyondLastCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Huge segments: nothing ever rotates, so every covered record stays
	// in the active segment and TailStats (total) keeps exceeding the
	// policy forever — only the beyond-checkpoint measure quiesces.
	db, err := Open(Options{
		Dir: dir, NoSync: true,
		CheckpointEvery: CheckpointPolicy{Records: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>q</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for doc.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-checkpointer never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Two more commits: beyond-checkpoint tail is 1-2 records, far under
	// the policy — no new checkpoint may trigger even though the active
	// segment still physically holds all 7 records.
	for i := 0; i < 2; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>r</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	settled := doc.Stats().Checkpoints
	time.Sleep(150 * time.Millisecond)
	st := doc.Stats()
	if st.Checkpoints != settled {
		t.Fatalf("checkpoints kept firing on covered records: %d -> %d", settled, st.Checkpoints)
	}
	if st.WALRecords >= 4 {
		t.Fatalf("beyond-checkpoint tail = %d records, policy would re-trigger", st.WALRecords)
	}
}
