package mxq

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"mxq/internal/ckpt"
	"mxq/internal/repl"
	"mxq/internal/serialize"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
	"mxq/internal/xupdate"

	"mxq/internal/core"
)

// Document is one stored XML document.
type Document struct {
	name  string
	db    *Database
	store *core.Store
	mgr   *tx.Manager
	log   *wal.Log

	// Online durability (nil without Options.Dir): the checkpointer
	// streams LSN-pinned snapshots outside any lock; the auto goroutine
	// (only with Options.CheckpointEvery) runs it when the WAL tail
	// exceeds the policy.
	ckpter      *ckpt.Checkpointer
	autoC       chan struct{}
	stopC       chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
	checkpoints atomic.Uint64
	// lastCkptLSN is the LSN the newest checkpoint covers — the baseline
	// the auto policy (and Stats' WAL-tail figures) measure against, so
	// covered records parked in the never-pruned active segment don't
	// re-trigger checkpoint after checkpoint.
	lastCkptLSN atomic.Uint64

	// tracker registers live replication subscriptions (nil without a
	// durability directory). Its Barrier fences the checkpointer's WAL
	// prune: no segment a live follower still needs is ever deleted.
	tracker *repl.Tracker
}

// Name returns the document's name.
func (d *Document) Name() string { return d.name }

// read runs fn against the cached snapshot of the current committed
// version. No lock is held while fn runs — the view is an immutable
// copy-on-write snapshot leased from the transaction manager — so
// queries fully overlap commits, and repeated reads at an unchanged
// version reuse the same snapshot.
func (d *Document) read(fn func(v xenc.DocView) error) error {
	rv := d.mgr.AcquireRead()
	defer rv.Close()
	return fn(rv.View())
}

// Item is one materialized query result: results are copied out of the
// snapshot the query ran against, so they stay valid across later
// updates.
type Item struct {
	// Kind is "element", "text", "comment", "processing-instruction",
	// "attribute", "document", "number", "string" or "boolean".
	Kind string
	// Value is the item's string value.
	Value string
	// XML is the serialized form for element items ("" otherwise).
	XML string
}

// Result is a materialized query result sequence.
type Result []Item

// Strings returns the items' string values.
func (r Result) Strings() []string {
	out := make([]string, len(r))
	for i, it := range r {
		out[i] = it.Value
	}
	return out
}

// Query compiles and runs an XPath expression as a read-only transaction
// against the snapshot of the current committed version; evaluation
// holds no lock, so queries never block (and are never blocked by)
// concurrent commits.
func (d *Document) Query(q string) (Result, error) {
	expr, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	var res Result
	err = d.read(func(v xenc.DocView) error {
		var inner error
		res, inner = materialize(v, expr, nil)
		return inner
	})
	return res, err
}

// QueryVars runs a query with variable bindings (values are strings).
func (d *Document) QueryVars(q string, vars map[string]string) (Result, error) {
	expr, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	bound := make(map[string]xpath.Value, len(vars))
	for k, v := range vars {
		bound[k] = xpath.String(v)
	}
	var res Result
	err = d.read(func(v xenc.DocView) error {
		var inner error
		res, inner = materialize(v, expr, bound)
		return inner
	})
	return res, err
}

// Prepared is a compiled query bound to a document. Compiling once and
// running many times skips the parse on every execution; the compiled
// form is safe for concurrent use. Each Run evaluates against the
// snapshot of the version committed at that moment: a run before a
// commit sees the old data, a run after it sees the new — never a blend.
type Prepared struct {
	doc  *Document
	expr *xpath.Expr
}

// Prepare compiles a query for repeated execution against this document.
func (d *Document) Prepare(q string) (*Prepared, error) {
	expr, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{doc: d, expr: expr}, nil
}

// Run executes the prepared query; vars may be nil.
func (p *Prepared) Run(vars map[string]string) (Result, error) {
	var res Result
	bound := bindVars(vars)
	err := p.doc.read(func(v xenc.DocView) error {
		var inner error
		res, inner = materialize(v, p.expr, bound)
		return inner
	})
	return res, err
}

// RunSnapshot executes the prepared query against a pinned snapshot
// instead of the current committed version, so a cached plan and a held
// read version compose (a session's multi-request snapshot read reuses
// both). The snapshot should be of the document the query was prepared
// against.
func (p *Prepared) RunSnapshot(s *Snapshot, vars map[string]string) (Result, error) {
	var res Result
	bound := bindVars(vars)
	err := s.read(func(v xenc.DocView) error {
		var inner error
		res, inner = materialize(v, p.expr, bound)
		return inner
	})
	return res, err
}

// bindVars converts string bindings to XPath values (nil stays nil).
func bindVars(vars map[string]string) map[string]xpath.Value {
	if len(vars) == 0 {
		return nil
	}
	bound := make(map[string]xpath.Value, len(vars))
	for k, v := range vars {
		bound[k] = xpath.String(v)
	}
	return bound
}

// Source returns the query text.
func (p *Prepared) Source() string { return p.expr.Source() }

// Explain renders the compiled evaluation plan: one line per location
// step showing whether it runs as a sequence-level staircase scan
// ("seq", with context pruning and no per-step sort), a scan with a
// fused early-exit positional counter ("seq, early-exit pos=n"), or the
// node-at-a-time fallback ("per-node", kept for predicate shapes whose
// semantics need per-context numbering, like last() and positions on
// reverse axes). Collapsed descendant shorthands are marked "fused //".
func (p *Prepared) Explain() string { return p.expr.Explain() }

// QueryValue runs a query and returns its single string value.
func (d *Document) QueryValue(q string) (string, error) {
	res, err := d.Query(q)
	if err != nil {
		return "", err
	}
	if len(res) == 0 {
		return "", nil
	}
	return res[0].Value, nil
}

// Count returns the number of nodes a path selects.
func (d *Document) Count(q string) (int, error) {
	res, err := d.Query(q)
	if err != nil {
		return 0, err
	}
	return len(res), nil
}

func materialize(v xenc.DocView, expr *xpath.Expr, vars map[string]xpath.Value) (Result, error) {
	val, err := expr.EvalVars(v, vars)
	if err != nil {
		return nil, err
	}
	switch x := val.(type) {
	case xpath.NodeSet:
		res := make(Result, 0, len(x))
		for _, n := range x {
			res = append(res, materializeNode(v, n))
		}
		return res, nil
	case xpath.Number:
		return Result{{Kind: "number", Value: xpath.FormatNumber(float64(x))}}, nil
	case xpath.String:
		return Result{{Kind: "string", Value: string(x)}}, nil
	case xpath.Boolean:
		return Result{{Kind: "boolean", Value: fmt.Sprint(bool(x))}}, nil
	}
	return nil, fmt.Errorf("mxq: unexpected result type %T", val)
}

func materializeNode(v xenc.DocView, n xpath.Node) Item {
	if n.Pre == xpath.DocNodePre {
		return Item{Kind: "document", Value: xpath.StringValue(v, n)}
	}
	if n.Attr != xpath.NoAttr {
		return Item{Kind: "attribute", Value: xpath.StringValue(v, n)}
	}
	it := Item{Value: xpath.StringValue(v, n)}
	switch v.Kind(n.Pre) {
	case xenc.KindElem:
		it.Kind = "element"
		if s, err := serialize.String(v, n.Pre, serialize.Options{}); err == nil {
			it.XML = s
		}
	case xenc.KindText:
		it.Kind = "text"
	case xenc.KindComment:
		it.Kind = "comment"
	case xenc.KindPI:
		it.Kind = "processing-instruction"
	}
	return it
}

// Update parses an XUpdate modification list and applies it in a single
// transaction (parse → select → bulk structural updates → validate →
// WAL → commit).
func (d *Document) Update(xupdateXML string) (xupdate.Result, error) {
	mods, err := xupdate.ParseString(xupdateXML)
	if err != nil {
		return xupdate.Result{}, err
	}
	t := d.Begin()
	res, err := xupdate.Execute(t.inner, mods)
	if err != nil {
		t.Abort()
		return res, err
	}
	if err := t.Commit(); err != nil {
		return res, err
	}
	return res, nil
}

// Begin starts a write transaction.
func (d *Document) Begin() *Tx {
	return &Tx{inner: d.mgr.Begin(), doc: d}
}

// Version returns the document's committed version: the number of write
// transactions committed so far. Every query observes exactly one
// version; the counter is what keys the per-version snapshot cache.
func (d *Document) Version() uint64 { return d.mgr.Version() }

// SerializeTo writes the document as XML. Serialization runs against
// the current committed version's snapshot, so a slow writer never
// stalls commits.
func (d *Document) SerializeTo(w io.Writer, indent string) error {
	return d.read(func(v xenc.DocView) error {
		return serialize.Document(w, v, serialize.Options{Indent: indent})
	})
}

// XML returns the serialized document.
func (d *Document) XML() (string, error) {
	var b strings.Builder
	if err := d.SerializeTo(&b, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Stats describe a document's storage state.
type Stats struct {
	LiveNodes int     // live nodes
	Tuples    int     // tuples including unused space
	Pages     int     // logical pages
	PageSize  int     // tuples per page
	Fill      float64 // live / total
	Names     int     // interned qualified names (see CompactDictionaries)
	Props     int     // attribute-value dictionary entries
	Commits   uint64  // committed write transactions
	Aborts    uint64  // aborted write transactions

	// Durability state (zero without a durability directory).
	Checkpoints uint64 // checkpoints completed this session (manual + auto)
	WALBytes    int64  // WAL bytes beyond the last checkpoint (approximate)
	WALRecords  int    // committed records beyond the last checkpoint

	// Incremental-checkpoint economics, cumulative over this session.
	// CkptChunksReused counts manifest references that resolved to chunks
	// already in the store; CkptDedupeRatio is reused/(written+reused) —
	// near 1.0 means checkpoints cost O(churn), not O(document).
	CkptBytesWritten  uint64  // chunk bytes actually written by checkpoints
	CkptChunksWritten uint64  // chunks written (missing from the store)
	CkptChunksReused  uint64  // chunks reused (already present)
	CkptDedupeRatio   float64 // reused / (written + reused)
}

// Stats returns storage statistics.
func (d *Document) Stats() Stats {
	var s Stats
	d.mgr.View(func(v xenc.DocView) error {
		s.LiveNodes = v.LiveNodes()
		s.Tuples = int(v.Len())
		s.Pages = d.store.Pages()
		s.PageSize = d.store.PageSize()
		s.Names, s.Props = d.store.DictStats()
		if s.Tuples > 0 {
			s.Fill = float64(s.LiveNodes) / float64(s.Tuples)
		}
		return nil
	})
	s.Commits, s.Aborts = d.mgr.Stats()
	if d.log != nil {
		s.Checkpoints = d.checkpoints.Load()
		s.WALBytes, s.WALRecords = d.log.TailStatsAbove(d.lastCkptLSN.Load())
	}
	if d.ckpter != nil {
		cs := d.ckpter.Stats()
		s.CkptBytesWritten = cs.BytesWritten
		s.CkptChunksWritten = cs.ChunksWritten
		s.CkptChunksReused = cs.ChunksReused
		if total := cs.ChunksWritten + cs.ChunksReused; total > 0 {
			s.CkptDedupeRatio = float64(cs.ChunksReused) / float64(total)
		}
	}
	return s
}

// Checkpoint writes an *online* checkpoint: a (snapshot, LSN) pair is
// pinned inside the commit critical section (an O(pages) refcount
// sweep), and the O(document) image streams from that immutable
// snapshot outside any lock — commits keep landing at full speed while
// it writes. Completion is published through a crash-safe manifest, and
// only WAL segments wholly below the pinned LSN are deleted, so a
// commit racing the checkpoint is never lost: its record lives in a
// segment the prune keeps. Requires a durability directory.
func (d *Document) Checkpoint() error {
	if d.ckpter == nil {
		return fmt.Errorf("mxq: document %q has no durability directory", d.name)
	}
	lsn, err := d.ckpter.Run()
	if err != nil {
		return err
	}
	// CAS-max: a manual Checkpoint racing the auto goroutine can finish
	// its lower-LSN Run later; the baseline must never regress or the
	// policy would re-trigger on work the newer image already absorbed.
	for {
		cur := d.lastCkptLSN.Load()
		if cur >= lsn || d.lastCkptLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	d.checkpoints.Add(1)
	return nil
}

// maybeAutoCheckpoint nudges the background checkpointer when the WAL
// tail has outgrown the policy. Called after every commit; the
// non-blocking send coalesces bursts.
func (d *Document) maybeAutoCheckpoint() {
	if d.autoC == nil {
		return
	}
	bytes, records := d.log.TailStatsAbove(d.lastCkptLSN.Load())
	if !d.db.opts.CheckpointEvery.exceeded(bytes, records) {
		return
	}
	select {
	case d.autoC <- struct{}{}:
	default:
	}
}

// close shuts the document's durability machinery down in dependency
// order: the auto-checkpoint goroutine is drained first (it may be
// inside a Run; stopAuto waits it out without holding the checkpointer
// mutex, so there is no deadlock), then the checkpointer is closed —
// which waits out any in-flight *manual* Run, including its WAL prune —
// and only then is the WAL released. finalCkpt additionally writes one
// last checkpoint before closing, so a reopen recovers from the image
// alone (and a never-checkpointed document is not lost when its segments
// are detached).
func (d *Document) close(finalCkpt bool) error {
	d.stopAuto()
	var first error
	if d.ckpter != nil {
		if finalCkpt {
			if _, err := d.ckpter.Run(); err != nil && !errors.Is(err, ckpt.ErrClosed) {
				first = err
			}
		}
		d.ckpter.Close()
	}
	if d.log != nil {
		if err := d.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *Document) autoCheckpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.autoC:
			if err := d.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "mxq: auto-checkpoint of %q: %v\n", d.name, err)
			}
		}
	}
}

// View runs fn under the global read lock with direct access to the
// document view (advanced use: the view must not escape fn).
func (d *Document) View(fn func(v xenc.DocView) error) error {
	return d.mgr.View(fn)
}

// CompactDictionaries rebuilds the document's shared qualified-name
// pool and attribute-value dictionary, dropping entries that only
// aborted transactions ever referenced (aborts discard column data but
// the shared dictionaries are append-only, so their entries leak). It
// is an offline maintenance pass in the spirit of page compaction: run
// it when Stats shows Names or Props drifting above what the live
// document references. It blocks like a commit (exclusive lock) but
// never disturbs open snapshots or in-flight transactions, which keep
// their own dictionary references. It returns the number of dropped
// name and property entries.
func (d *Document) CompactDictionaries() (namesDropped, propsDropped int) {
	return d.mgr.CompactDictionaries()
}

// CheckInvariants validates the storage invariants (testing hook).
func (d *Document) CheckInvariants() error {
	var err error
	d.mgr.View(func(xenc.DocView) error {
		err = d.store.CheckInvariants()
		return nil
	})
	return err
}

// Tx is a write transaction over one document. It supports queries (with
// read-your-writes semantics) and XUpdate lists; Commit applies the
// Figure 8 protocol.
type Tx struct {
	inner *tx.Tx
	doc   *Document
}

// Query runs an XPath expression against the transaction image.
func (t *Tx) Query(q string) (Result, error) {
	expr, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	return materialize(t.inner, expr, nil)
}

// Update applies an XUpdate modification list inside the transaction.
func (t *Tx) Update(xupdateXML string) (xupdate.Result, error) {
	mods, err := xupdate.ParseString(xupdateXML)
	if err != nil {
		return xupdate.Result{}, err
	}
	return xupdate.Execute(t.inner, mods)
}

// Commit makes the transaction durable and visible. Under load,
// concurrent commits share their WAL fsync (group commit), and a commit
// that pushes the WAL tail past Options.CheckpointEvery nudges the
// background checkpointer.
func (t *Tx) Commit() error {
	if err := t.inner.Commit(); err != nil {
		return err
	}
	t.doc.maybeAutoCheckpoint()
	return nil
}

// Abort discards the transaction.
func (t *Tx) Abort() { t.inner.Abort() }
