package mxq

// BenchmarkStaircaseSkipping quantifies claim C2 (Section 2.2): the
// staircase child step finds children by positional sibling hops
// (pre += size+1), skipping whole subtrees, where a tree-unaware plan
// scans every tuple in the region and filters by level. The deeper the
// subtrees under the context node, the bigger the win.

import (
	"fmt"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/staircase"
	"mxq/internal/xenc"
)

// bushyTree builds a root with fan children, each carrying a chain of
// depth descendants — the shape where sibling hops skip the most.
func bushyTree(fan, depth int) *shred.Tree {
	b := shred.NewBuilder().Start("root")
	for i := 0; i < fan; i++ {
		b.Start("child")
		for d := 0; d < depth; d++ {
			b.Start("deep")
		}
		b.Text("x")
		for d := 0; d < depth; d++ {
			b.End()
		}
		b.End()
	}
	return b.End().Tree()
}

// scanChildren is the tree-unaware baseline: visit every tuple in the
// region and keep the ones at level+1.
func scanChildren(v xenc.DocView, c xenc.Pre, name int32) []xenc.Pre {
	var out []xenc.Pre
	lvl := v.Level(c)
	for p := xenc.SkipFree(v, c+1); p < v.Len() && v.Level(p) > lvl; p = xenc.SkipFree(v, p+1) {
		if v.Level(p) == lvl+1 && v.Kind(p) == xenc.KindElem && v.Name(p) == name {
			out = append(out, p)
		}
	}
	return out
}

func BenchmarkStaircaseSkipping(b *testing.B) {
	for _, depth := range []int{4, 16, 64} {
		depth := depth
		s, err := rostore.Build(bushyTree(500, depth))
		if err != nil {
			b.Fatal(err)
		}
		name, _ := s.Names().Lookup("child")
		ctx := []xenc.Pre{s.Root()}
		want := len(staircase.Child(s, ctx, staircase.Element(name)))
		if want != 500 {
			b.Fatalf("child count = %d", want)
		}
		b.Run(fmt.Sprintf("staircase/depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := staircase.Child(s, ctx, staircase.Element(name)); len(got) != want {
					b.Fatal("wrong result")
				}
			}
		})
		b.Run(fmt.Sprintf("scan/depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := scanChildren(s, s.Root(), name); len(got) != want {
					b.Fatal("wrong result")
				}
			}
		})
	}
}
