package mxq

// Cross-store differential tests: the paged updatable store (the paper's
// contribution) and the naive renumbering baseline implement the same
// logical document semantics with radically different physical layouts.
// Driving identical operation sequences into both and comparing
// serializations after every step is the strongest end-to-end oracle the
// reproduction has: any divergence in region bookkeeping, free-run
// handling, pageOffset splicing or node/pos maintenance shows up as a
// different document.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/xenc"
	"mxq/internal/xmark"
	"mxq/internal/xpath"
)

// liveElems returns the view ranks of live element nodes in doc order.
func liveElems(v xenc.DocView) []xenc.Pre {
	var out []xenc.Pre
	for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
		if v.Kind(p) == xenc.KindElem {
			out = append(out, p)
		}
	}
	return out
}

func serializeView(t *testing.T, v xenc.DocView) string {
	t.Helper()
	s, err := serialize.String(v, v.Root(), serialize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomOpFragment(rng *rand.Rand) *shred.Tree {
	b := shred.NewBuilder()
	switch rng.Intn(4) {
	case 0:
		b.Elem("leaf", fmt.Sprintf("t%d", rng.Intn(100)))
	case 1:
		b.Start("pair", shred.Attr{Name: "k", Value: fmt.Sprint(rng.Intn(10))}).
			Elem("a", "1").Elem("b", "2").End()
	case 2:
		b.Start("deep").Start("mid").Elem("bottom", "x").End().End()
	default:
		b.Elem("solo", "", shred.Attr{Name: "id", Value: fmt.Sprint(rng.Intn(1000))})
	}
	return b.Tree()
}

// TestPagedVsNaiveDifferential drives the same random structural update
// sequences into both stores, selecting targets by live-element rank so
// the logical operations coincide, and compares full serializations.
func TestPagedVsNaiveDifferential(t *testing.T) {
	const seedCount = 6
	for seed := int64(0); seed < seedCount; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			docXML := `<root><a><b>1</b><c>2</c></a><d><e/><f>3</f></d><g/></root>`
			treeA, err := shred.Parse(strings.NewReader(docXML), shred.Options{})
			if err != nil {
				t.Fatal(err)
			}
			treeB, _ := shred.Parse(strings.NewReader(docXML), shred.Options{})
			paged, err := core.Build(treeA, core.Options{PageSize: 16, FillFactor: 0.7})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := naive.Build(treeB)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 120; step++ {
				pe := liveElems(paged)
				ne := liveElems(plain)
				if len(pe) != len(ne) {
					t.Fatalf("step %d: element counts diverged: %d vs %d", step, len(pe), len(ne))
				}
				idx := rng.Intn(len(pe))
				frag := randomOpFragment(rng)
				fragCopy := &shred.Tree{Nodes: append([]shred.Node(nil), frag.Nodes...)}
				op := rng.Intn(4)
				var errP, errN error
				switch {
				case op == 0 && idx != 0:
					errP = paged.Delete(pe[idx])
					errN = plain.Delete(ne[idx])
				case op == 1 && idx != 0:
					_, errP = paged.InsertBefore(pe[idx], frag)
					errN = plain.InsertBefore(ne[idx], fragCopy)
				case op == 2 && idx != 0:
					_, errP = paged.InsertAfter(pe[idx], frag)
					errN = plain.InsertAfter(ne[idx], fragCopy)
				default:
					_, errP = paged.AppendChild(pe[idx], frag)
					errN = plain.AppendChild(ne[idx], fragCopy)
				}
				if (errP == nil) != (errN == nil) {
					t.Fatalf("step %d op %d: error divergence: paged=%v naive=%v", step, op, errP, errN)
				}
				if errP != nil {
					continue
				}
				if err := paged.CheckInvariants(); err != nil {
					t.Fatalf("step %d: paged invariants: %v", step, err)
				}
				got, want := serializeView(t, paged), serializeView(t, plain)
				if got != want {
					t.Fatalf("step %d op %d: documents diverged:\npaged %s\nnaive %s", step, op, got, want)
				}
			}
		})
	}
}

// TestSnapshotRoundTripAfterChurn saves and reloads the paged store
// after heavy updates; the reloaded store must serialize identically and
// answer node-id lookups identically.
func TestSnapshotRoundTripAfterChurn(t *testing.T) {
	tree, err := shred.Parse(strings.NewReader(`<r><x>1</x><y>2</y><z>3</z></r>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tree, core.Options{PageSize: 8, FillFactor: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		elems := liveElems(s)
		target := elems[rng.Intn(len(elems))]
		if rng.Intn(3) == 0 && target != s.Root() {
			if err := s.Delete(target); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := s.AppendChild(target, randomOpFragment(rng)); err != nil {
			t.Fatal(err)
		}
	}
	want := serializeView(t, s)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := serializeView(t, loaded); got != want {
		t.Fatalf("snapshot round trip changed the document:\nwant %s\ngot  %s", want, got)
	}
	// Node ids must resolve to the same elements.
	for _, p := range liveElems(s) {
		id := s.NodeOf(p)
		lp := loaded.PreOf(id)
		if lp == xenc.NoPre || loaded.Name(lp) != s.Name(p) {
			t.Fatalf("node id %d resolves differently after reload", id)
		}
	}
}

// TestCompactPreservesQueries runs XMark queries before and after
// compaction of a churned store.
func TestCompactPreservesQueries(t *testing.T) {
	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(0.002, 9).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tree, err := shred.Parse(bytes.NewReader(buf.Bytes()), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tree, core.Options{PageSize: 256, FillFactor: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: delete every third person, append new items.
	persons, err := xpath.MustParse(`/site/people/person`).Select(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(persons) - 1; i > 0; i -= 3 {
		if err := s.Delete(s.PreOf(persons[i].Pre)); err != nil {
			t.Fatal(err)
		}
	}
	regions, err := xpath.MustParse(`/site/regions/europe`).Select(s)
	if err != nil || len(regions) != 1 {
		t.Fatalf("%v %d", err, len(regions))
	}
	frag, _ := shred.ParseFragment(`<item id="itemX"><location>Mars</location><name>odd thing</name><description><text>gold gold</text></description></item>`, shred.Options{})
	if _, err := s.AppendChild(regions[0].Pre, frag); err != nil {
		t.Fatal(err)
	}

	before, err := xmark.RunAll(s)
	if err != nil {
		t.Fatal(err)
	}
	pagesBefore := s.Pages()
	if err := s.Compact(0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after, err := xmark.RunAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("query results changed over Compact:\nbefore %v\nafter  %v", before, after)
	}
	t.Logf("compact: %d -> %d pages", pagesBefore, s.Pages())
}

// TestFacadeEndToEndWorkflow exercises the whole public stack as a user
// would: durable DB, schema, transactions, conflict retry, checkpoint,
// reopen.
func TestFacadeEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true, PageSize: 64, FillFactor: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("inv", `<inventory><bin id="b1"/><bin id="b2"/></inventory>`)
	if err != nil {
		t.Fatal(err)
	}
	// Fill both bins through transactions.
	for bin := 1; bin <= 2; bin++ {
		for i := 0; i < 30; i++ {
			if _, err := doc.Update(fmt.Sprintf(
				`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
				   <xupdate:append select='/inventory/bin[@id="b%d"]'><unit n="%d"/></xupdate:append>
				 </xupdate:modifications>`, bin, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n, _ := doc.Count(`//unit`); n != 60 {
		t.Fatalf("units = %d", n)
	}
	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More committed work after the checkpoint, left only in the WAL.
	if _, err := doc.Update(`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
	   <xupdate:remove select='//bin[@id="b1"]/unit[position() = 1]'/>
	 </xupdate:modifications>`); err != nil {
		t.Fatal(err)
	}
	want, _ := doc.XML()
	db.Close()

	db2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	doc2, ok := db2.Document("inv")
	if !ok {
		t.Fatal("document lost")
	}
	got, _ := doc2.XML()
	if got != want {
		t.Fatalf("reopened document differs:\nwant %s\ngot  %s", want, got)
	}
	if n, _ := doc2.Count(`//unit`); n != 59 {
		t.Fatalf("units after recovery = %d", n)
	}
}

// TestQueryResultsStableAcrossPageSizes: the logical document must not
// depend on physical tuning knobs.
func TestQueryResultsStableAcrossPageSizes(t *testing.T) {
	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(0.002, 4).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tree, err := shred.Parse(bytes.NewReader(buf.Bytes()), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ref [20]int
	for i, cfg := range []core.Options{
		{PageSize: 64, FillFactor: 0.5},
		{PageSize: 1024, FillFactor: 0.8},
		{PageSize: 4096, FillFactor: 1.0},
	} {
		s, err := core.Build(tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := xmark.RunAll(s)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = counts
			continue
		}
		if counts != ref {
			t.Fatalf("config %+v changed query results:\n%v\nvs\n%v", cfg, counts, ref)
		}
	}
}
