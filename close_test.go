package mxq

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/ckpt"
)

// slowChunks throttles chunk Puts and signals once the first one starts.
type slowChunks struct {
	chunkstore.Store
	start func()
	delay time.Duration
}

func (s *slowChunks) Put(h chunkstore.Hash, data []byte) error {
	s.start()
	time.Sleep(s.delay)
	return s.Store.Put(h, data)
}

// TestCloseRacesThrottledCheckpoint closes the database while a
// throttled checkpoint is mid-stream (the auto goroutine and a manual
// Checkpoint both racing): Close must wait the checkpoint out — never
// panic, never close the WAL under its prune, never leak the goroutine —
// and a second Close and a post-Close Checkpoint must fail cleanly.
// Run under -race (make check does).
func TestCloseRacesThrottledCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Dir: dir, NoSync: true,
		CheckpointEvery: CheckpointPolicy{Records: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	// Throttle the chunk stream so the close provably overlaps it.
	streaming := make(chan struct{})
	var once sync.Once
	doc.ckpter.SetChunkWrapper(func(cs chunkstore.Store) chunkstore.Store {
		return &slowChunks{
			Store: cs,
			start: func() { once.Do(func() { close(streaming) }) },
			delay: 5 * time.Millisecond,
		}
	})
	for i := 0; i < 8; i++ {
		if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>race</book></xupdate:append>`)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := doc.Checkpoint(); err != nil && !errors.Is(err, ckpt.ErrClosed) {
			t.Errorf("racing manual checkpoint: %v", err)
		}
	}()
	<-streaming // some checkpoint (auto or manual) is mid-stream
	if err := db.Close(); err != nil {
		t.Fatalf("Close during streaming checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	wg.Wait()
	if err := doc.Checkpoint(); !errors.Is(err, ckpt.ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ckpt.ErrClosed", err)
	}
	if _, err := db.LoadXMLString("late", libDoc); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("LoadXML after Close = %v, want ErrDatabaseClosed", err)
	}
}

// TestCloseDocumentReopen detaches a never-explicitly-checkpointed
// document and recovers it through OpenDocument: the final checkpoint
// CloseDocument writes must make the round trip lossless, and the
// reattached WAL must accept new commits.
func TestCloseDocumentReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>pre-close</book></xupdate:append>`)); err != nil {
		t.Fatal(err)
	}
	want, _ := doc.XML()

	if err := db.CloseDocument("lib"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Document("lib"); ok {
		t.Fatal("document still registered after CloseDocument")
	}
	doc2, err := db.OpenDocument("lib")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc2.XML(); got != want {
		t.Fatalf("reopened state differs:\nwant %s\ngot  %s", want, got)
	}
	if _, err := doc2.Update(wrapMods(`<xupdate:append select="/lib/shelf"><book>post-reopen</book></xupdate:append>`)); err != nil {
		t.Fatalf("commit on reopened document: %v", err)
	}
	// Idempotent lookup: a second OpenDocument returns the same instance.
	again, err := db.OpenDocument("lib")
	if err != nil || again != doc2 {
		t.Fatalf("second OpenDocument = %p (%v), want %p", again, err, doc2)
	}
	if err := db.CloseDocument("lib"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseDocument("lib"); err == nil {
		t.Fatal("CloseDocument of a detached document succeeded")
	}
}

// TestLazyOpen: with Options.LazyOpen, Open recovers nothing eagerly;
// OpenDocument recovers on first use and errors on unknown names and
// closed databases.
func TestLazyOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := db.LoadXMLString("lib", libDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, _ := doc.XML()
	db.Close()

	db2, err := Open(Options{Dir: dir, NoSync: true, LazyOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db2.Document("lib"); ok {
		t.Fatal("LazyOpen recovered eagerly")
	}
	doc2, err := db2.OpenDocument("lib")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := doc2.XML(); got != want {
		t.Fatalf("lazily recovered state differs:\nwant %s\ngot  %s", want, got)
	}
	if _, err := db2.OpenDocument("nope"); err == nil {
		t.Fatal("OpenDocument of unknown name succeeded")
	}
	db2.Close()
	if _, err := db2.OpenDocument("lib"); !errors.Is(err, ErrDatabaseClosed) {
		t.Fatalf("OpenDocument after Close = %v, want ErrDatabaseClosed", err)
	}
}
