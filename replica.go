package mxq

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/ckpt"
	"mxq/internal/core"
	"mxq/internal/repl"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/xupdate"
)

// This file is the root-package face of WAL log-shipping replication
// (internal/repl): the primary side hands a document's WAL, checkpoint
// pin and follower tracker to the server's SubscribeWAL handler
// (ReplSource); the follower side maintains a subscription that keeps
// a local document in lockstep with a primary (FollowDocument). A
// follower document is a crash-recovered image of the primary at its
// applied LSN: records are replayed through the exact apply path
// recovery uses, the local WAL reproduces the primary's numbering, and
// local checkpoints bound restart time the same way they do on a
// primary. Read-your-writes across the pair is by LSN: Tx.CommitLSN on
// the primary, WaitApplied on the follower.

// ErrNotReplicated reports a replication operation on a document
// without a durability directory: no WAL, nothing to ship.
var ErrNotReplicated = errors.New("mxq: replication requires a durability directory")

// ErrStale reports a WaitApplied timeout: the document had not applied
// the requested LSN in time. Callers branch on it with errors.Is.
var ErrStale = tx.ErrStale

// ReplSource exposes the document to the replication sender: its WAL
// (the stream), its checkpoint pin (the bootstrap image) and its
// follower tracker (the prune fence). The server's SubscribeWAL
// handler passes it to repl.Serve.
func (d *Document) ReplSource() (repl.Source, error) {
	if d.log == nil || d.tracker == nil {
		return repl.Source{}, fmt.Errorf("%w (document %q)", ErrNotReplicated, d.name)
	}
	return repl.Source{Name: d.name, Log: d.log, Pin: d.mgr.PinCheckpoint, Track: d.tracker}, nil
}

// AppliedLSN is the document's read-your-writes watermark: the highest
// WAL LSN whose effects every new snapshot observes. On a primary it
// is the last commit; on a follower, the last replicated record
// applied.
func (d *Document) AppliedLSN() uint64 { return d.mgr.AppliedLSN() }

// LastLSN is the WAL tail (0 without a durability directory). On a
// follower, LastLSN−AppliedLSN is always 0 (records apply as they
// arrive); lag against the *primary's* tail is what DocStatus measures.
func (d *Document) LastLSN() uint64 {
	if d.log == nil {
		return 0
	}
	return d.log.LastLSN()
}

// WaitApplied parks until the document has applied lsn — the
// read-your-writes primitive: a client that committed at lsn on the
// primary calls this (through the server's Query minLSN field) before
// reading from a follower. It fails with tx.ErrStale after timeout
// rather than ever serving a read the caller knows is stale. lsn 0
// returns immediately.
func (d *Document) WaitApplied(lsn uint64, timeout time.Duration) error {
	return d.mgr.WaitApplied(lsn, timeout)
}

// Followers returns the number of live replication subscriptions.
func (d *Document) Followers() int {
	if d.tracker == nil {
		return 0
	}
	return d.tracker.Count()
}

// CommitLSN returns the WAL LSN the commit was assigned (0 before
// Commit, for an empty commit, or without a durability directory):
// the token to pass to a follower read for read-your-writes.
func (t *Tx) CommitLSN() uint64 { return t.inner.CommitLSN() }

// UpdateLSN is Update returning the commit's WAL LSN alongside the
// result — what the server embeds in v2 Update responses so the client
// can pass it back as a follower read's minimum LSN.
func (d *Document) UpdateLSN(xupdateXML string) (xupdate.Result, uint64, error) {
	mods, err := xupdate.ParseString(xupdateXML)
	if err != nil {
		return xupdate.Result{}, 0, err
	}
	t := d.Begin()
	res, err := xupdate.Execute(t.inner, mods)
	if err != nil {
		t.Abort()
		return res, 0, err
	}
	if err := t.Commit(); err != nil {
		return res, 0, err
	}
	return res, t.CommitLSN(), nil
}

// FollowDocument subscribes the named document to a primary at addr
// and keeps it converged in the background: an empty or out-of-date
// replica bootstraps from a pinned checkpoint image, then replays WAL
// record batches as the primary commits them, reconnecting with
// backoff on any failure. The returned stop function ends the
// subscription and waits it out (call it before Database.Close).
//
// The database must have a durability directory — the follower's local
// WAL and checkpoints are what make its acks mean "durably applied",
// and what let a restarted follower resume by WAL replay instead of a
// full re-bootstrap. The caller must not write to a followed document;
// serve it read-only (the daemon's -follow mode enforces this at the
// protocol layer with CodeReadOnly).
func (db *Database) FollowDocument(addr, name string) (stop func(), err error) {
	if db.opts.Dir == "" {
		return nil, ErrNotReplicated
	}
	db.mu.RLock()
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return nil, ErrDatabaseClosed
	}
	f := &repl.Follower{
		Addr: addr,
		Doc:  name,
		Sink: &docSink{db: db, name: name},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mxq: "+format+"\n", args...)
		},
	}
	stopC := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); f.Run(stopC) }()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopC) })
		<-done
	}, nil
}

// docSink feeds a subscription into one named document of the
// database. It is driven from the follower's single goroutine.
type docSink struct {
	db   *Database
	name string
}

func (s *docSink) AppliedLSN() (uint64, bool) {
	d, ok := s.db.Document(s.name)
	if !ok || d.log == nil {
		return 0, false
	}
	return d.mgr.AppliedLSN(), true
}

// Bootstrap replaces the document wholesale from a checkpoint image
// pinned at lsn: the old instance (if any) is detached and its
// artifacts wiped — its history is foreign to the image's LSN line —
// then a fresh WAL is positioned at lsn and an initial local
// checkpoint written, so a follower restart recovers locally and
// resumes by WAL replay instead of re-shipping the whole document.
// Readers holding the old instance's snapshots finish undisturbed on
// them; new readers see the bootstrapped document once it is
// published.
func (s *docSink) Bootstrap(r io.Reader, lsn uint64) error {
	hdrLSN, err := tx.ReadSnapshotHeader(r)
	if err != nil {
		return err
	}
	if hdrLSN != lsn {
		return fmt.Errorf("mxq: bootstrap image header says LSN %d, subscription says %d", hdrLSN, lsn)
	}
	store, err := core.Load(r)
	if err != nil {
		return fmt.Errorf("mxq: loading bootstrap image: %w", err)
	}
	return s.install(store, lsn)
}

// ChunkStore exposes the document's chunk store to the chunked
// bootstrap — the same store local checkpoints write, so everything a
// previous incarnation of this follower checkpointed counts as already
// transferred when the manifest is diffed.
func (s *docSink) ChunkStore() (chunkstore.Store, error) {
	if cs := s.db.chunkStoreFor(s.name); cs != nil {
		return cs, nil
	}
	return ckpt.DefaultChunkStore(s.db.opts.Dir, s.name), nil
}

// BootstrapManifest is the chunked counterpart of Bootstrap: every
// chunk the manifest names is already in ChunkStore(), so the swap
// materializes locally with no further transfer. The chunk directory
// deliberately survives the artifact wipe below — chunks are named by
// content, not by LSN line, so they are exactly as valid for the new
// incarnation, and the initial local checkpoint re-references them
// instead of rewriting the document.
func (s *docSink) BootstrapManifest(m *core.ChunkManifest, lsn uint64) error {
	cs, err := s.ChunkStore()
	if err != nil {
		return err
	}
	store, err := core.LoadChunked(m, cs)
	if err != nil {
		return fmt.Errorf("mxq: materializing bootstrap manifest: %w", err)
	}
	return s.install(store, lsn)
}

// install publishes a bootstrapped store as the document's new
// incarnation (shared tail of Bootstrap and BootstrapManifest).
func (s *docSink) install(store *core.Store, lsn uint64) error {
	db := s.db
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrDatabaseClosed
	}
	old := db.docs[s.name]
	delete(db.docs, s.name)
	// Fence OpenDocument out of the artifacts until the new instance is
	// published (or this bootstrap fails): recovery from a half-wiped
	// directory would resurrect a dead LSN line.
	db.bootstrapping[s.name] = true
	db.mu.Unlock()
	defer func() {
		db.mu.Lock()
		delete(db.bootstrapping, s.name)
		db.mu.Unlock()
	}()
	if old != nil {
		// Detach without a final checkpoint: the old image is on a dead
		// LSN line and about to be wiped.
		old.stopAuto()
		if old.ckpter != nil {
			old.ckpter.Close()
		}
		if old.log != nil {
			old.log.Close()
		}
	}
	path := filepath.Join(db.opts.Dir, s.name+".wal")
	wal.RemoveSegments(path)
	ckpt.RemoveArtifacts(db.opts.Dir, s.name)

	log, err := wal.Open(path, db.walOptions())
	if err != nil {
		return err
	}
	// The local log must hand out exactly the LSNs the primary's stream
	// carries next; records at or below lsn are inside the image.
	log.EnsureLSN(lsn)
	doc := &Document{name: s.name, db: db, store: store, log: log, mgr: tx.NewManager(store, log)}
	doc.attachDurability()
	if err := doc.Checkpoint(); err != nil {
		doc.close(false)
		return fmt.Errorf("mxq: writing bootstrap checkpoint: %w", err)
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		doc.close(false)
		return ErrDatabaseClosed
	}
	db.docs[s.name] = doc
	db.mu.Unlock()
	return nil
}

// Apply replays a record batch and makes it durable before returning
// the LSN to ack — the primary treats the ack as permission to prune,
// so acking anything a local crash could lose would strand this
// follower on the snapshot path forever.
func (s *docSink) Apply(recs []*wal.Record) (uint64, error) {
	d, ok := s.db.Document(s.name)
	if !ok || d.log == nil {
		return 0, fmt.Errorf("mxq: follower document %q vanished mid-stream", s.name)
	}
	for _, rec := range recs {
		if err := d.mgr.ApplyReplicated(rec); err != nil {
			return 0, err
		}
	}
	last := recs[len(recs)-1].LSN
	if err := d.log.Sync(last); err != nil {
		return 0, err
	}
	d.maybeAutoCheckpoint()
	return last, nil
}
