// Package mxq is an embeddable XML database reproducing the storage and
// update architecture of MonetDB/XQuery as described in "Updating the
// Pre/Post Plane in MonetDB/XQuery" (Boncz, Manegold, Rittinger; CWI
// INS-E0506, 2005).
//
// Documents are shredded into the pre/size/level relational encoding and
// stored in the paper's *updatable* scheme: logical pages with unused
// tuples, a pageOffset indirection that lets page splices shift all
// following pre numbers for free, immutable node ids behind a node/pos
// table, and ACID transactions whose ancestor-size maintenance uses
// commutative delta increments so the document root never becomes a
// locking bottleneck. Write transactions run against a page-granular
// copy-on-write snapshot of the store (Section 3.2): beginning a
// transaction shares all pages with the base, and updates privately copy
// just the pages they touch.
//
// # Versioned-snapshot reads
//
// Every query entry point (Query, QueryVars, Prepared.Run, QueryValue,
// Count, SerializeTo, XML) evaluates against an immutable snapshot of
// the current committed version rather than under a lock, so reads fully
// overlap commits and commits never wait for readers. The document keeps
// a monotonic version counter (Document.Version), bumped on every
// commit, and caches one snapshot per committed version: the first read
// after a commit materializes the snapshot once (O(pages) pointer
// copies), and every further read at that version is a refcount bump.
// Page chunks are shared between the base store and all live snapshots
// with per-chunk reference counts — a snapshot that outlives many
// commits costs only the pages those commits dirtied, and when a
// superseded snapshot's last reader finishes, its chunk references are
// handed back so the base writes those pages in place again.
//
// # Snapshot handles and the Close contract
//
// Document.Snapshot exposes the same mechanism as an explicit handle: a
// refcounted *Snapshot whose queries observe one committed version for
// as long as it is open, shared with the query path's internal cache
// when the versions coincide. The contract is Close-when-done: a held
// snapshot keeps the chunks it shares with the base copy-on-write (each
// overlapping commit pays one page copy per page it dirties), and Close
// — idempotent, safe to race with commits — returns the handle's chunk
// references so the base resumes in-place writes once the last sharer
// of that version is gone. A snapshot's lifetime cost is therefore
// bounded by the pages dirtied while it was open, never by how long it
// stayed open after. Using a handle after Close returns
// ErrSnapshotClosed. Handles that are garbage-collected unclosed are
// released by a finalizer and reported as leaks (see
// tx.SetSnapshotLeakHandler), but the base pays the copy-on-write tax
// until the collector runs — always pair Snapshot with a deferred
// Close.
//
// # Durability: incremental checkpoints, segmented WAL, group commit
//
// With Options.Dir set, every commit writes exactly one record to a
// segmented write-ahead log (the paper's single-I/O commit), and
// concurrent committers share the fsync through a leader/follower door
// (group commit): under load, N commits cost ~1 physical flush, so
// commit throughput rises with concurrency instead of serializing on
// the disk. Options.GroupCommitDelay holds that door open briefly so
// more committers board each flush, trading single-commit latency for
// fewer fsyncs under load. Checkpoints are *online* and *incremental*:
// Document.Checkpoint pins a (snapshot, LSN) pair inside the commit
// critical section — an O(pages) refcount sweep, the same
// copy-on-write machinery the read path uses — then serializes the
// snapshot in content-addressed form outside any lock: every column
// chunk becomes a SHA-256-named file in the document's chunk store,
// and the LSN-stamped image is a small manifest of chunk names. Chunks
// the store already holds — everything unchanged since the previous
// checkpoint, which the copy-on-write layer knows without hashing —
// are re-referenced, not rewritten, so checkpoint I/O is O(churn), not
// O(document), and frequent automatic checkpoints stay cheap on large
// documents. Superseded chunks are garbage-collected by mark-and-sweep
// over the retained images; Options.ChunkStore plugs in a different
// chunk backend per document; pre-existing monolithic images are
// migrated to the chunked format on open. Completion is published
// atomically (chunks synced first, then tmp+rename+fsync of the image,
// then of a manifest), and only WAL segments wholly below the pinned
// LSN are deleted — a commit racing the checkpoint lives in a segment
// the prune keeps, so it can never be lost, by construction.
// Options.CheckpointEvery runs this automatically in a per-document
// background goroutine once the WAL tail *beyond the last checkpoint*
// exceeds the policy (bytes and/or records; Stats.WALBytes and
// Stats.WALRecords expose that tail, Stats.Checkpoints the
// completions, and Stats.CkptBytesWritten / CkptChunksWritten /
// CkptChunksReused / CkptDedupeRatio the incremental win);
// Database.Close drains it. Recovery loads the manifest's image and
// replays the segments above its LSN, degrading to the previous image
// over torn artifacts (leftover *.tmp, missing or torn image, torn or
// missing chunk, corrupt manifest) — each image names every chunk of
// the full document, so a candidate materializes whole or is skipped
// whole, never mixed — and never to silent loss: replay insists on
// gap-free LSNs.
//
// # Set-at-a-time query pipeline
//
// Queries execute the way MonetDB executes them: column-at-a-time, not
// node-at-a-time. Parsing an XPath expression (Query, Prepare) also
// compiles every location path into a plan of sequence-level operators —
// each step maps the *whole* context sequence through one staircase
// join over the pre/size/level columns, with the paper's context
// pruning (a context node inside an already-scanned region is skipped,
// so no tuple is inspected twice) and results emitted directly in
// document order (no per-step sort or dedupe). The compiler pushes name
// and kind tests into the scan, collapses the // shorthand into single
// descendant steps, fuses leading positional predicates ([1], [n]) into
// early-exit counters, and applies position-free boolean predicates
// over the merged sequence with a reusable scratch context; only
// predicate shapes whose semantics need per-context numbering (last(),
// positions on reverse axes) keep the node-at-a-time path. Prepared
// caches the compiled plan across runs, and Prepared.Explain (or the
// mxqshell explain command) renders the chosen operators.
//
// # Dictionary compaction
//
// The qualified-name pool and attribute-value dictionary are shared,
// append-only structures; transactions intern new names and values
// before committing, so an abort leaks entries nothing references.
// Document.CompactDictionaries is the offline reclamation pass: it
// rewrites both dictionaries to exactly the entries the live document
// references (Stats.Names and Stats.Props expose the drift), blocking
// like a single commit while never disturbing open snapshots or
// in-flight transactions, which keep their own consistent dictionary
// references until released. Document content, node identities and
// storage layout are guaranteed unchanged; only internal dictionary
// ids are remapped.
//
// # Serving over the network
//
// The library also runs as a daemon: cmd/mxqd serves a Database over
// TCP (length-prefixed binary frames; see internal/server for the
// protocol) with per-session prepared-statement caches, pinned read
// versions built on Snapshot handles, a lazily-opened document catalog
// (Options.LazyOpen + OpenDocument/CloseDocument), admission control,
// and graceful drain. The client package is the Go client, cmd/mxqload
// the load generator, and examples/ has a served quickstart.
//
// # Replication
//
// A durable document can be followed by read replicas: the primary
// streams its per-document WAL over the wire (an empty follower first
// bootstraps from a pinned checkpoint image — on protocol 3, by
// diffing the image's chunk manifest against its local chunk store and
// transferring only the chunks it is missing, so a crash-restarted
// follower re-bootstraps with O(churn) transfer — then replays record
// batches as they commit), and prunes no segment a live follower still
// needs. Database.FollowDocument subscribes a local document to a
// primary — mxqd -follow does this for every primary document and
// serves the result read-only. Every update response carries its
// commit LSN; a client configured with a read replica routes queries
// there tagged with the highest LSN its session has seen, and the
// follower holds each read until that LSN is applied (or fails typed,
// never silently stale) — read-your-writes on scale-out reads. See
// internal/repl, the ROADMAP "Replication" section, and
// examples/replication.
//
// Quick start:
//
//	db := mxq.Open(mxq.Options{})
//	doc, _ := db.LoadXMLString("lib", `<lib><book>A</book></lib>`)
//	res, _ := doc.Query(`/lib/book/text()`)
//	_, _ = doc.Update(`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
//	    <xupdate:append select="/lib"><book>B</book></xupdate:append>
//	</xupdate:modifications>`)
package mxq

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/ckpt"
	"mxq/internal/core"
	"mxq/internal/repl"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/validate"
	"mxq/internal/wal"
)

// ChunkStore is the content-addressed blob store checkpoint images
// reference: immutable chunks named by their SHA-256, with batched
// existence probes so incremental checkpoints and bootstrap transfers
// move only missing chunks. The default backend is a local fanned-out
// directory (<doc>.chunks/ next to the WAL); implement this interface
// to put chunks somewhere else (an object store, a cache hierarchy).
type ChunkStore = chunkstore.Store

// ChunkHash is a chunk's content address (SHA-256).
type ChunkHash = chunkstore.Hash

// NewDirChunkStore returns the local fanned-out-directory ChunkStore
// backend rooted at root (chunks land in root/ab/<sha256>.chunk,
// written atomically and verified on read). It is the same backend
// documents get by default; use it with Options.ChunkStore to place a
// document's chunks somewhere other than Options.Dir — a bigger disk,
// a shared cache volume. Remember per-document scoping: give each
// document its own root.
func NewDirChunkStore(root string) ChunkStore {
	return chunkstore.NewDir(root)
}

// CheckpointPolicy decides when a document's background checkpointer
// runs: after the un-checkpointed WAL tail exceeds Bytes, or Records
// committed records, whichever triggers first. A zero field disables
// that trigger; a fully zero policy disables automatic checkpointing.
type CheckpointPolicy struct {
	// Bytes triggers a checkpoint once the live WAL segments hold at
	// least this many bytes.
	Bytes int64
	// Records triggers a checkpoint once the live WAL segments hold at
	// least this many committed records.
	Records int
}

func (p CheckpointPolicy) enabled() bool { return p.Bytes > 0 || p.Records > 0 }

func (p CheckpointPolicy) exceeded(bytes int64, records int) bool {
	return (p.Bytes > 0 && bytes >= p.Bytes) || (p.Records > 0 && records >= p.Records)
}

// Options configure a Database.
type Options struct {
	// PageSize is the logical page size in tuples (power of two;
	// default core.DefaultPageSize).
	PageSize int
	// FillFactor is the fraction of each page the shredder fills
	// (default core.DefaultFillFactor; the paper's Figure 9 scenario
	// corresponds to 0.8).
	FillFactor float64
	// Dir, when non-empty, enables durability: each document gets a
	// segmented write-ahead log (<name>.wal.NNNNNNNN), LSN-stamped
	// checkpoint images (<name>-<lsn>.ckpt) and a crash-safe manifest
	// (<name>.manifest) in Dir, and Open recovers every checkpointed
	// document found there (manifest first, degrading to older images
	// over torn artifacts).
	Dir string
	// NoSync skips fsync on WAL appends (faster, test-friendly).
	NoSync bool
	// WALSegmentBytes bounds each WAL segment file; the log rotates to a
	// fresh segment beyond it and checkpoints delete only whole covered
	// segments. Zero means wal.DefaultSegmentBytes.
	WALSegmentBytes int64
	// CheckpointEvery, when enabled, starts a per-document background
	// goroutine that writes an *online* checkpoint whenever the WAL tail
	// exceeds the policy — commits keep landing at full speed while the
	// image streams (see Document.Checkpoint). Close drains it.
	CheckpointEvery CheckpointPolicy
	// LazyOpen skips recovering checkpointed documents at Open; each is
	// recovered on its first OpenDocument instead. A server fronting a
	// large directory pays recovery per document actually used, not for
	// the whole catalog at startup.
	LazyOpen bool
	// PreserveWhitespace keeps whitespace-only text nodes when shredding.
	PreserveWhitespace bool
	// ChunkStore, when non-nil, supplies the content-addressed chunk
	// store backing each document's checkpoint images in place of the
	// default local directory (<doc>.chunks/ in Dir). It is called once
	// per document — per-document scoping is what keeps chunk garbage
	// collection sound, so the returned stores must not share a
	// namespace. Note Drop only deletes the default directory; a custom
	// backend's data is the caller's to reclaim.
	ChunkStore func(doc string) ChunkStore
	// GroupCommitDelay stretches the group-commit window: the fsync
	// leader sleeps this long before flushing, so commits arriving
	// within the window share the flush instead of each paying their
	// own. Zero (the default) keeps the natural-contention batching —
	// only commits that arrive while a flush is in progress share the
	// next one. Worth a few hundred microseconds on fsync-bound
	// concurrent workloads; pure added latency for a lone committer.
	GroupCommitDelay time.Duration
}

// ErrDatabaseClosed reports an operation on a closed Database.
var ErrDatabaseClosed = errors.New("mxq: database is closed")

// Database is a collection of named XML documents.
type Database struct {
	mu     sync.RWMutex
	docs   map[string]*Document
	opts   Options
	closed bool
	// bootstrapping marks documents a replica subscription is currently
	// replacing wholesale (docSink.Bootstrap): their on-disk artifacts
	// are mid-wipe, so OpenDocument must refuse to recover from them
	// rather than resurrect a half-deleted instance.
	bootstrapping map[string]bool
}

// Open creates a database. With Options.Dir set, previously checkpointed
// documents are recovered (best checkpoint image + segmented WAL
// replay; see internal/ckpt for the degradation order over torn
// artifacts).
func Open(opts Options) (*Database, error) {
	db := &Database{docs: make(map[string]*Document), opts: opts, bootstrapping: make(map[string]bool)}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("mxq: %w", err)
	}
	if opts.LazyOpen {
		return db, nil
	}
	for _, name := range checkpointedDocs(opts.Dir) {
		if err := db.recoverDoc(name); err != nil {
			return nil, fmt.Errorf("mxq: recovering %q: %w", name, err)
		}
	}
	return db, nil
}

// checkpointedDocs lists document names with recovery artifacts in dir:
// a manifest, an LSN-stamped image, or a legacy unversioned image.
func checkpointedDocs(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, e := range entries {
		if name, ok := ckpt.DocumentOfArtifact(e.Name()); ok {
			add(name)
		}
	}
	sort.Strings(names)
	return names
}

func (db *Database) walOptions() wal.Options {
	return wal.Options{
		NoSync:           db.opts.NoSync,
		SegmentBytes:     db.opts.WALSegmentBytes,
		GroupCommitDelay: db.opts.GroupCommitDelay,
	}
}

// chunkStoreFor resolves the document's chunk store: the Options
// factory if installed, else nil (the ckpt layer defaults to the local
// <name>.chunks directory).
func (db *Database) chunkStoreFor(name string) ChunkStore {
	if db.opts.ChunkStore == nil {
		return nil
	}
	return db.opts.ChunkStore(name)
}

func (db *Database) recoverDoc(name string) error {
	log, err := wal.Open(filepath.Join(db.opts.Dir, name+".wal"), db.walOptions())
	if err != nil {
		return err
	}
	// A legacy monolithic image recovers fine but should not stay the
	// recovery root; note it before recovery and re-publish below.
	migrate := ckpt.NeedsMigration(db.opts.Dir, name)
	store, _, err := ckpt.Recover(db.opts.Dir, name, log, db.chunkStoreFor(name))
	if err != nil {
		log.Close()
		return err
	}
	doc := &Document{
		name:  name,
		db:    db,
		store: store,
		log:   log,
		mgr:   tx.NewManager(store, log),
	}
	doc.attachDurability()
	if migrate {
		// Auto-migration: one checkpoint re-publishes the document in the
		// content-addressed format; the legacy image then retires through
		// normal retention.
		if err := doc.Checkpoint(); err != nil {
			doc.close(false)
			return fmt.Errorf("migrating checkpoint image: %w", err)
		}
	}
	db.docs[name] = doc
	return nil
}

// attachDurability wires the online checkpointer and, when the policy
// asks for it, the background auto-checkpoint goroutine.
func (d *Document) attachDurability() {
	if d.log == nil {
		return
	}
	d.ckpter = ckpt.New(d.db.opts.Dir, d.name, d.log, d.mgr.PinCheckpoint)
	if cs := d.db.chunkStoreFor(d.name); cs != nil {
		d.ckpter.SetChunkStore(cs)
	}
	d.tracker = repl.NewTracker()
	d.ckpter.SetPruneBarrier(d.tracker.Barrier)
	// The policy measures the WAL tail beyond the last checkpoint; start
	// from the manifest's LSN so records a previous session already
	// checkpointed (but whose segment is not yet prunable) don't count.
	d.lastCkptLSN.Store(ckpt.CurrentLSN(d.db.opts.Dir, d.name))
	if !d.db.opts.CheckpointEvery.enabled() {
		return
	}
	d.autoC = make(chan struct{}, 1)
	d.stopC = make(chan struct{})
	d.wg.Add(1)
	go d.autoCheckpointLoop()
}

// stopAuto drains the auto-checkpointer: after it returns no further
// background checkpoint can start.
func (d *Document) stopAuto() {
	if d.stopC != nil {
		d.stopOnce.Do(func() { close(d.stopC) })
		d.wg.Wait()
	}
}

// LoadXML shreds and stores a document under the given name.
func (db *Database) LoadXML(name string, r io.Reader) (*Document, error) {
	tree, err := shred.Parse(r, shred.Options{PreserveWhitespace: db.opts.PreserveWhitespace})
	if err != nil {
		return nil, err
	}
	store, err := core.Build(tree, core.Options{
		PageSize:   db.opts.PageSize,
		FillFactor: db.opts.FillFactor,
	})
	if err != nil {
		return nil, err
	}
	doc := &Document{name: name, db: db, store: store}

	// The duplicate-name check must precede opening the WAL: wal.Open
	// runs a recovery scan that truncates what it takes for a torn tail,
	// and pointing a second scan at the live document's segments could
	// destroy records the running log is mid-append on.
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrDatabaseClosed
	}
	if _, dup := db.docs[name]; dup {
		return nil, fmt.Errorf("mxq: document %q already exists", name)
	}
	if db.opts.Dir != "" {
		log, err := wal.Open(filepath.Join(db.opts.Dir, name+".wal"), db.walOptions())
		if err != nil {
			return nil, err
		}
		doc.log = log
	}
	doc.mgr = tx.NewManager(store, doc.log)
	doc.attachDurability()
	db.docs[name] = doc
	return doc, nil
}

// LoadXMLString is LoadXML over a string.
func (db *Database) LoadXMLString(name, xml string) (*Document, error) {
	return db.LoadXML(name, strings.NewReader(xml))
}

// Document returns a stored document by name.
func (db *Database) Document(name string) (*Document, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.docs[name]
	return d, ok
}

// OpenDocument returns the named document, recovering it from its
// durability artifacts on first use (the LazyOpen counterpart of the
// eager recovery Open performs by default; also how a document detached
// by CloseDocument comes back). A document with no in-memory instance
// and no on-disk checkpoint is an error.
func (db *Database) OpenDocument(name string) (*Document, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrDatabaseClosed
	}
	if d, ok := db.docs[name]; ok {
		return d, nil
	}
	if db.bootstrapping[name] {
		// The artifacts on disk belong to a document a replica
		// subscription is mid-way through replacing; recovering from
		// them would resurrect a half-deleted instance.
		return nil, fmt.Errorf("mxq: no document %q (replica bootstrap in progress)", name)
	}
	if db.opts.Dir != "" {
		for _, n := range checkpointedDocs(db.opts.Dir) {
			if n == name {
				if err := db.recoverDoc(name); err != nil {
					return nil, fmt.Errorf("mxq: recovering %q: %w", name, err)
				}
				return db.docs[name], nil
			}
		}
	}
	return nil, fmt.Errorf("mxq: no document %q", name)
}

// CloseDocument detaches one document: the auto-checkpointer is drained,
// a final checkpoint is written (so the reopen replays no WAL and a
// never-checkpointed document is not lost), the checkpointer is closed
// and the WAL segments released. Durability artifacts stay on disk —
// OpenDocument recovers the document later; contrast Drop, which deletes
// them. The caller must guarantee no in-flight queries or transactions
// on the document. Without a durability directory this discards the
// document, exactly like Drop.
func (db *Database) CloseDocument(name string) error {
	db.mu.Lock()
	doc, ok := db.docs[name]
	delete(db.docs, name)
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("mxq: no document %q", name)
	}
	return doc.close(true)
}

// Documents lists the stored document names, sorted.
func (db *Database) Documents() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.docs))
	for n := range db.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a document (and its durability files, if any).
func (db *Database) Drop(name string) error {
	db.mu.Lock()
	doc, ok := db.docs[name]
	delete(db.docs, name)
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("mxq: no document %q", name)
	}
	if doc.log != nil {
		doc.stopAuto()
		// Waiting out an in-flight checkpoint (Close serializes on the
		// checkpointer's mutex) before removing artifacts: a Run that
		// lost this race would otherwise republish an image and prune a
		// WAL that no longer exists.
		doc.ckpter.Close()
		doc.log.Close()
		// Exact-boundary removal: a document whose name is a prefix of
		// another ("a" vs "a-b") must never take the other's artifacts.
		wal.RemoveSegments(filepath.Join(db.opts.Dir, name+".wal"))
		ckpt.RemoveArtifacts(db.opts.Dir, name)
		// Dropping the document is the one case chunks go too: no future
		// manifest of this document will reference them. (Only the default
		// local store — a caller-supplied ChunkStore manages its own data.)
		if db.opts.ChunkStore == nil {
			ckpt.RemoveChunks(db.opts.Dir, name)
		}
	}
	return nil
}

// Close drains every document's auto-checkpointer (a checkpoint in
// flight finishes; no new one starts) and closes the WAL segments. It is
// idempotent, and safe to race with manual Checkpoint calls: a
// checkpoint that loses the race fails with ckpt.ErrClosed instead of
// writing through a closed log.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	for _, d := range db.docs {
		if err := d.close(false); err != nil && first == nil {
			first = err
		}
	}
	db.docs = map[string]*Document{}
	return first
}

// SetSchema installs a validation schema for a document; every commit is
// validated against it (the consistency stage of the commit protocol).
func (d *Document) SetSchema(s *validate.Schema) {
	if s == nil {
		d.mgr.SetValidator(nil)
		return
	}
	d.mgr.SetValidator(s.Check)
}
