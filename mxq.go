// Package mxq is an embeddable XML database reproducing the storage and
// update architecture of MonetDB/XQuery as described in "Updating the
// Pre/Post Plane in MonetDB/XQuery" (Boncz, Manegold, Rittinger; CWI
// INS-E0506, 2005).
//
// Documents are shredded into the pre/size/level relational encoding and
// stored in the paper's *updatable* scheme: logical pages with unused
// tuples, a pageOffset indirection that lets page splices shift all
// following pre numbers for free, immutable node ids behind a node/pos
// table, and ACID transactions whose ancestor-size maintenance uses
// commutative delta increments so the document root never becomes a
// locking bottleneck. Write transactions run against a page-granular
// copy-on-write snapshot of the store (Section 3.2): beginning a
// transaction shares all pages with the base, and updates privately copy
// just the pages they touch.
//
// # Versioned-snapshot reads
//
// Every query entry point (Query, QueryVars, Prepared.Run, QueryValue,
// Count, SerializeTo, XML) evaluates against an immutable snapshot of
// the current committed version rather than under a lock, so reads fully
// overlap commits and commits never wait for readers. The document keeps
// a monotonic version counter (Document.Version), bumped on every
// commit, and caches one snapshot per committed version: the first read
// after a commit materializes the snapshot once (O(pages) pointer
// copies), and every further read at that version is a refcount bump.
// Page chunks are shared between the base store and all live snapshots
// with per-chunk reference counts — a snapshot that outlives many
// commits costs only the pages those commits dirtied, and when a
// superseded snapshot's last reader finishes, its chunk references are
// handed back so the base writes those pages in place again.
//
// # Snapshot handles and the Close contract
//
// Document.Snapshot exposes the same mechanism as an explicit handle: a
// refcounted *Snapshot whose queries observe one committed version for
// as long as it is open, shared with the query path's internal cache
// when the versions coincide. The contract is Close-when-done: a held
// snapshot keeps the chunks it shares with the base copy-on-write (each
// overlapping commit pays one page copy per page it dirties), and Close
// — idempotent, safe to race with commits — returns the handle's chunk
// references so the base resumes in-place writes once the last sharer
// of that version is gone. A snapshot's lifetime cost is therefore
// bounded by the pages dirtied while it was open, never by how long it
// stayed open after. Using a handle after Close returns
// ErrSnapshotClosed. Handles that are garbage-collected unclosed are
// released by a finalizer and reported as leaks (see
// tx.SetSnapshotLeakHandler), but the base pays the copy-on-write tax
// until the collector runs — always pair Snapshot with a deferred
// Close.
//
// # Dictionary compaction
//
// The qualified-name pool and attribute-value dictionary are shared,
// append-only structures; transactions intern new names and values
// before committing, so an abort leaks entries nothing references.
// Document.CompactDictionaries is the offline reclamation pass: it
// rewrites both dictionaries to exactly the entries the live document
// references (Stats.Names and Stats.Props expose the drift), blocking
// like a single commit while never disturbing open snapshots or
// in-flight transactions, which keep their own consistent dictionary
// references until released. Document content, node identities and
// storage layout are guaranteed unchanged; only internal dictionary
// ids are remapped.
//
// Quick start:
//
//	db := mxq.Open(mxq.Options{})
//	doc, _ := db.LoadXMLString("lib", `<lib><book>A</book></lib>`)
//	res, _ := doc.Query(`/lib/book/text()`)
//	_, _ = doc.Update(`<xupdate:modifications xmlns:xupdate="http://www.xmldb.org/xupdate">
//	    <xupdate:append select="/lib"><book>B</book></xupdate:append>
//	</xupdate:modifications>`)
package mxq

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mxq/internal/core"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/validate"
	"mxq/internal/wal"
)

// Options configure a Database.
type Options struct {
	// PageSize is the logical page size in tuples (power of two;
	// default core.DefaultPageSize).
	PageSize int
	// FillFactor is the fraction of each page the shredder fills
	// (default core.DefaultFillFactor; the paper's Figure 9 scenario
	// corresponds to 0.8).
	FillFactor float64
	// Dir, when non-empty, enables durability: each document gets a
	// write-ahead log <name>.wal and checkpoints <name>.ckpt in Dir, and
	// Open recovers any checkpointed documents found there.
	Dir string
	// NoSync skips fsync on WAL appends (faster, test-friendly).
	NoSync bool
	// PreserveWhitespace keeps whitespace-only text nodes when shredding.
	PreserveWhitespace bool
}

// Database is a collection of named XML documents.
type Database struct {
	mu   sync.RWMutex
	docs map[string]*Document
	opts Options
}

// Open creates a database. With Options.Dir set, previously checkpointed
// documents are recovered (checkpoint + WAL replay).
func Open(opts Options) (*Database, error) {
	db := &Database{docs: make(map[string]*Document), opts: opts}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("mxq: %w", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(opts.Dir, "*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("mxq: %w", err)
	}
	for _, ck := range ckpts {
		name := strings.TrimSuffix(filepath.Base(ck), ".ckpt")
		if err := db.recoverDoc(name); err != nil {
			return nil, fmt.Errorf("mxq: recovering %q: %w", name, err)
		}
	}
	return db, nil
}

func (db *Database) recoverDoc(name string) error {
	f, err := os.Open(filepath.Join(db.opts.Dir, name+".ckpt"))
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := wal.Open(filepath.Join(db.opts.Dir, name+".wal"), wal.Options{NoSync: db.opts.NoSync})
	if err != nil {
		return err
	}
	store, err := tx.Recover(f, log)
	if err != nil {
		log.Close()
		return err
	}
	db.docs[name] = &Document{
		name:  name,
		db:    db,
		store: store,
		log:   log,
		mgr:   tx.NewManager(store, log),
	}
	return nil
}

// LoadXML shreds and stores a document under the given name.
func (db *Database) LoadXML(name string, r io.Reader) (*Document, error) {
	tree, err := shred.Parse(r, shred.Options{PreserveWhitespace: db.opts.PreserveWhitespace})
	if err != nil {
		return nil, err
	}
	store, err := core.Build(tree, core.Options{
		PageSize:   db.opts.PageSize,
		FillFactor: db.opts.FillFactor,
	})
	if err != nil {
		return nil, err
	}
	doc := &Document{name: name, db: db, store: store}
	if db.opts.Dir != "" {
		log, err := wal.Open(filepath.Join(db.opts.Dir, name+".wal"), wal.Options{NoSync: db.opts.NoSync})
		if err != nil {
			return nil, err
		}
		doc.log = log
	}
	doc.mgr = tx.NewManager(store, doc.log)

	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.docs[name]; dup {
		if doc.log != nil {
			doc.log.Close()
		}
		return nil, fmt.Errorf("mxq: document %q already exists", name)
	}
	db.docs[name] = doc
	return doc, nil
}

// LoadXMLString is LoadXML over a string.
func (db *Database) LoadXMLString(name, xml string) (*Document, error) {
	return db.LoadXML(name, strings.NewReader(xml))
}

// Document returns a stored document by name.
func (db *Database) Document(name string) (*Document, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.docs[name]
	return d, ok
}

// Documents lists the stored document names, sorted.
func (db *Database) Documents() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.docs))
	for n := range db.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a document (and its durability files, if any).
func (db *Database) Drop(name string) error {
	db.mu.Lock()
	doc, ok := db.docs[name]
	delete(db.docs, name)
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("mxq: no document %q", name)
	}
	if doc.log != nil {
		doc.log.Close()
		os.Remove(filepath.Join(db.opts.Dir, name+".wal"))
		os.Remove(filepath.Join(db.opts.Dir, name+".ckpt"))
	}
	return nil
}

// Close closes all documents' logs.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, d := range db.docs {
		if d.log != nil {
			if err := d.log.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	db.docs = map[string]*Document{}
	return first
}

// SetSchema installs a validation schema for a document; every commit is
// validated against it (the consistency stage of the commit protocol).
func (d *Document) SetSchema(s *validate.Schema) {
	if s == nil {
		d.mgr.SetValidator(nil)
		return
	}
	d.mgr.SetValidator(s.Check)
}
