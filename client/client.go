// Package client is the Go client for mxqd, the mxq network daemon. A
// Client wraps one connection — one server session — and issues
// requests strictly in order (it is safe for concurrent use; calls
// serialize on the connection). Concurrency against the server comes
// from opening many clients: the server's versioned read path is built
// for thousands of concurrent sessions.
//
// Session state lives server-side: the session caches compiled query
// plans per (document, query text), and BeginRead…EndRead pins a
// snapshot so every query between them — across any number of requests
// — observes one committed version.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mxq/internal/server"
)

// Sentinel errors mapped from server status codes.
var (
	// ErrOverloaded: the server's admission control rejected the request
	// (concurrency bound and wait queue both full). Back off and retry.
	ErrOverloaded = errors.New("mxqd: overloaded")
	// ErrShuttingDown: the server is draining.
	ErrShuttingDown = errors.New("mxqd: shutting down")
	// ErrNoDocument: the named document does not exist.
	ErrNoDocument = errors.New("mxqd: no such document")
)

// Item is one query result item.
type Item struct {
	// Kind is "element", "text", "comment", "processing-instruction",
	// "attribute", "document", "number", "string" or "boolean".
	Kind string
	// Value is the item's string value.
	Value string
	// XML is the serialized form for element items ("" otherwise).
	XML string
}

// UpdateResult reports what an update applied.
type UpdateResult struct {
	Ops      int // commands executed
	Affected int // nodes the commands were applied to
}

// Client is one mxqd session.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
}

// Dial connects to an mxqd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{conn: conn}, nil
}

// Close closes the session; the server releases its prepared cache and
// any still-pinned reads.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(op byte, payload []byte) (*server.PayloadReader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := c.nextID
	if err := server.WriteFrame(c.conn, server.Frame{ID: id, Op: op, Payload: payload}); err != nil {
		return nil, fmt.Errorf("mxqd: send: %w", err)
	}
	f, err := server.ReadFrame(c.conn, 0)
	if err != nil {
		return nil, fmt.Errorf("mxqd: recv: %w", err)
	}
	if f.ID != id {
		return nil, fmt.Errorf("mxqd: response id %d for request %d", f.ID, id)
	}
	if f.Op != server.StatusOK {
		return nil, decodeError(f)
	}
	return server.NewPayloadReader(f.Payload), nil
}

// decodeError maps an error frame to a sentinel (possibly wrapped with
// the server's message).
func decodeError(f server.Frame) error {
	msg := ""
	if m, err := server.NewPayloadReader(f.Payload).String(); err == nil {
		msg = m
	}
	switch f.Op {
	case server.CodeOverloaded:
		return ErrOverloaded
	case server.CodeShuttingDown:
		return ErrShuttingDown
	case server.CodeNoDocument:
		return fmt.Errorf("%w: %s", ErrNoDocument, msg)
	}
	return fmt.Errorf("mxqd: %s", msg)
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.roundTrip(server.OpPing, nil)
	return err
}

// ListDocs returns the stored document names.
func (c *Client) ListDocs() ([]string, error) {
	r, err := c.roundTrip(server.OpListDocs, nil)
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	return names, nil
}

// Load shreds and stores a document under the given name.
func (c *Client) Load(name, xml string) error {
	var p server.PayloadBuilder
	p.String(name).String(xml)
	_, err := c.roundTrip(server.OpLoad, p.Bytes())
	return err
}

// Query runs an XPath query against the named document (vars may be
// nil). Inside a BeginRead window for the document it observes the
// pinned version; otherwise the version committed at execution time.
func (c *Client) Query(doc, query string, vars map[string]string) ([]Item, error) {
	var p server.PayloadBuilder
	p.String(doc).String(query)
	p.Uvarint(uint64(len(vars)))
	for k, v := range vars {
		p.String(k).String(v)
	}
	r, err := c.roundTrip(server.OpQuery, p.Bytes())
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		kind, err := r.Byte()
		if err != nil {
			return nil, err
		}
		value, err := r.String()
		if err != nil {
			return nil, err
		}
		xml, err := r.String()
		if err != nil {
			return nil, err
		}
		items = append(items, Item{Kind: server.KindName(kind), Value: value, XML: xml})
	}
	return items, nil
}

// Update applies an XUpdate modification list in one transaction.
func (c *Client) Update(doc, mods string) (UpdateResult, error) {
	var p server.PayloadBuilder
	p.String(doc).String(mods)
	r, err := c.roundTrip(server.OpUpdate, p.Bytes())
	if err != nil {
		return UpdateResult{}, err
	}
	ops, err := r.Uvarint()
	if err != nil {
		return UpdateResult{}, err
	}
	affected, err := r.Uvarint()
	if err != nil {
		return UpdateResult{}, err
	}
	return UpdateResult{Ops: int(ops), Affected: int(affected)}, nil
}

// Explain returns the compiled evaluation plan for a query.
func (c *Client) Explain(doc, query string) (string, error) {
	var p server.PayloadBuilder
	p.String(doc).String(query)
	r, err := c.roundTrip(server.OpExplain, p.Bytes())
	if err != nil {
		return "", err
	}
	return r.String()
}

// BeginRead pins the document's current committed version for this
// session: every Query on it until EndRead observes that version, no
// matter what commits in between. It returns the pinned version.
func (c *Client) BeginRead(doc string) (uint64, error) {
	var p server.PayloadBuilder
	p.String(doc)
	r, err := c.roundTrip(server.OpBeginRead, p.Bytes())
	if err != nil {
		return 0, err
	}
	return r.Uvarint()
}

// EndRead releases a pinned read.
func (c *Client) EndRead(doc string) error {
	var p server.PayloadBuilder
	p.String(doc)
	_, err := c.roundTrip(server.OpEndRead, p.Bytes())
	return err
}
