// Package client is the Go client for mxqd, the mxq network daemon. A
// Client wraps one connection — one server session — and issues
// requests strictly in order (it is safe for concurrent use; calls
// serialize on the connection). Concurrency against the server comes
// from opening many clients: the server's versioned read path is built
// for thousands of concurrent sessions.
//
// Session state lives server-side: the session caches compiled query
// plans per (document, query text), and BeginRead…EndRead pins a
// snapshot so every query between them — across any number of requests
// — observes one committed version.
//
// # Contexts
//
// Every request takes a context. A deadline bounds the whole round
// trip; cancellation takes effect mid-round-trip. Because the protocol
// is strictly sequential, a round trip abandoned halfway leaves the
// connection with an un-read response on it — so a context failure
// closes the connection and poisons the client: every later call fails
// with ErrClosed. That is the defined state; callers that want to keep
// working after a timeout dial a fresh client.
//
// # Versions
//
// Dial performs the protocol handshake (Hello): it offers the highest
// version this package speaks and downgrades transparently when the
// server predates the handshake (such servers answer Hello with
// CodeBadRequest — exactly that response means "protocol 1"). Features
// that need a newer protocol than the session negotiated fail with
// ErrVersion rather than sending frames the server would misread.
//
// # Read-your-writes and replica routing
//
// Updates return (and the client remembers) the commit's WAL LSN. A
// client dialed with WithReadReplica routes queries to a follower and
// stamps them with that LSN: the follower parks the read until it has
// applied the write (bounded by WithRYWTimeout, then ErrStale) — reads
// scale out to replicas without ever silently travelling back in time
// across the caller's own writes. Queries on documents with a pinned
// read window stay on the primary connection the pin lives on.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mxq/internal/wire"
)

// Sentinel errors. Every server-reported failure is a *Error wrapping
// one of these (or none, for errors a program has no business branching
// on); test with errors.Is.
var (
	// ErrOverloaded: the server's admission control rejected the request
	// (concurrency bound and wait queue both full). Back off and retry.
	ErrOverloaded = errors.New("mxqd: overloaded")
	// ErrShuttingDown: the server is draining.
	ErrShuttingDown = errors.New("mxqd: shutting down")
	// ErrNoDocument: the named document does not exist.
	ErrNoDocument = errors.New("mxqd: no such document")
	// ErrStale: a read-your-writes query timed out before the replica
	// applied the required LSN. Retry, raise WithRYWTimeout, or read
	// from the primary.
	ErrStale = errors.New("mxqd: replica stale beyond the read's LSN")
	// ErrReadOnly: a write was sent to a read-only (follower) server.
	ErrReadOnly = errors.New("mxqd: server is read-only")
	// ErrVersion: the operation needs a protocol version the session did
	// not negotiate, or the server rejected our version outright.
	ErrVersion = errors.New("mxqd: protocol version not supported")
	// ErrClosed: the client was closed, or poisoned by a context
	// cancellation mid-round-trip.
	ErrClosed = errors.New("mxqd: client is closed")
)

// Error is the typed failure for one request: which operation, against
// which document, with the server's status code and message. It wraps
// the matching sentinel (errors.Is sees through it) and, for transport
// failures, the underlying error (including context.Canceled /
// DeadlineExceeded when a context ended the round trip).
type Error struct {
	Op     string // "query", "update", "dial", ...
	Doc    string // document name ("" for document-independent ops)
	Status byte   // wire status code (0 for transport failures)
	Msg    string // server-provided message, if any
	Err    error  // wrapped sentinel or transport error, if any
}

func (e *Error) Error() string {
	s := "mxqd: " + e.Op
	if e.Doc != "" {
		s += " " + fmt.Sprintf("%q", e.Doc)
	}
	switch {
	case e.Msg != "":
		s += ": " + e.Msg
	case e.Err != nil:
		s += ": " + e.Err.Error()
	default:
		s += fmt.Sprintf(": status %d", e.Status)
	}
	return s
}

func (e *Error) Unwrap() error { return e.Err }

// Item is one query result item.
type Item struct {
	// Kind is "element", "text", "comment", "processing-instruction",
	// "attribute", "document", "number", "string" or "boolean".
	Kind string
	// Value is the item's string value.
	Value string
	// XML is the serialized form for element items ("" otherwise).
	XML string
}

// UpdateResult reports what an update applied.
type UpdateResult struct {
	Ops      int    // commands executed
	Affected int    // nodes the commands were applied to
	LSN      uint64 // the commit's WAL LSN (0 on protocol 1 or volatile documents)
}

// DocStatus is a document's replication standing on one server.
type DocStatus struct {
	Role       string // "primary" or "follower"
	AppliedLSN uint64 // read-your-writes watermark
	LastLSN    uint64 // local WAL tail

	// Checkpoint I/O counters, zero below protocol 3.
	CkptBytesWritten  uint64 // chunk bytes checkpoints have written
	CkptChunksWritten uint64 // chunks written (missing from the store)
	CkptChunksReused  uint64 // chunks already present and reused
}

// Option configures Dial.
type Option func(*options)

type options struct {
	dialTimeout time.Duration
	maxFrame    uint32
	rywTimeout  time.Duration
	replicaAddr string
}

// WithDialTimeout bounds the TCP connect (default 10s; the Dial
// context, if it expires sooner, wins).
func WithDialTimeout(d time.Duration) Option { return func(o *options) { o.dialTimeout = d } }

// WithMaxFrame caps response frame sizes the client will accept
// (default 64 MiB); a server announcing more is cut off, not
// allocated for.
func WithMaxFrame(n uint32) Option { return func(o *options) { o.maxFrame = n } }

// WithRYWTimeout bounds how long a replica-routed query may park
// waiting for the client's last write to be applied before the server
// answers ErrStale (default 5s).
func WithRYWTimeout(d time.Duration) Option { return func(o *options) { o.rywTimeout = d } }

// WithReadReplica routes queries to a follower at addr (writes and
// session-stateful requests stay on the primary connection). Queries
// carry the client's last commit LSN, so reads never travel back in
// time across the caller's own writes. Dial fails if the replica is
// unreachable or does not speak protocol 2.
func WithReadReplica(addr string) Option { return func(o *options) { o.replicaAddr = addr } }

// Client is one mxqd session (plus, optionally, a replica session it
// routes queries to).
type Client struct {
	opts    options
	lastLSN *atomic.Uint64 // highest commit LSN seen; shared with the replica client
	replica *Client        // non-nil when WithReadReplica was given

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
	proto  uint64
	feats  uint64
	closed bool
	pins   map[string]bool // docs with an open BeginRead window (primary only)
}

// Dial connects to an mxqd server and negotiates the protocol.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	o := options{dialTimeout: 10 * time.Second, rywTimeout: 5 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	c, err := dialOne(ctx, addr, o)
	if err != nil {
		return nil, err
	}
	if o.replicaAddr != "" {
		ro := o
		ro.replicaAddr = ""
		rc, err := dialOne(ctx, o.replicaAddr, ro)
		if err != nil {
			c.Close()
			return nil, err
		}
		if rc.proto < wire.V2 {
			c.Close()
			rc.Close()
			return nil, &Error{Op: "dial", Err: ErrVersion,
				Msg: fmt.Sprintf("replica %s speaks protocol %d; read routing needs 2", o.replicaAddr, rc.proto)}
		}
		rc.lastLSN = c.lastLSN // one write-visibility horizon across both sessions
		c.replica = rc
	}
	return c, nil
}

func dialOne(ctx context.Context, addr string, o options) (*Client, error) {
	d := net.Dialer{Timeout: o.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, &Error{Op: "dial", Err: err}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		opts:    o,
		conn:    conn,
		lastLSN: new(atomic.Uint64),
		pins:    make(map[string]bool),
	}
	if err := c.hello(ctx); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// hello negotiates the protocol version. A server that predates the
// handshake answers CodeBadRequest ("unknown opcode"); exactly that
// response means protocol 1 and the client downgrades silently.
func (c *Client) hello(ctx context.Context) error {
	var p wire.PayloadBuilder
	p.Uvarint(wire.MaxVersion).Uvarint(wire.FeatReplication | wire.FeatRYW)
	r, err := c.roundTrip(ctx, "hello", "", wire.OpHello, p.Bytes())
	if err != nil {
		var e *Error
		if errors.As(err, &e) && e.Status == wire.CodeBadRequest {
			c.proto, c.feats = wire.V1, 0
			return nil
		}
		return err
	}
	version, err := r.Uvarint()
	if err != nil {
		return &Error{Op: "hello", Err: err}
	}
	feats, err := r.Uvarint()
	if err != nil {
		return &Error{Op: "hello", Err: err}
	}
	if version < wire.MinVersion || version > wire.MaxVersion {
		return &Error{Op: "hello", Err: ErrVersion,
			Msg: fmt.Sprintf("server negotiated unknown version %d", version)}
	}
	c.proto, c.feats = version, feats
	return nil
}

// Proto reports the negotiated protocol version (1 against servers
// that predate the handshake).
func (c *Client) Proto() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proto
}

// Close closes the session (and the replica session, if routing); the
// server releases the session's prepared cache and any pinned reads.
func (c *Client) Close() error {
	if c.replica != nil {
		c.replica.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends one request and reads its response, honouring ctx. A
// context failure mid-round-trip poisons the client (see the package
// doc): the connection has an un-read response in flight and can never
// be re-synchronized.
func (c *Client) roundTrip(ctx context.Context, op, doc string, opcode byte, payload []byte) (*wire.PayloadReader, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Error{Op: op, Doc: doc, Err: err}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, &Error{Op: op, Doc: doc, Err: ErrClosed}
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	// Cancellation mid-round-trip: yank the deadline so the blocked
	// read/write returns now.
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()

	c.nextID++
	id := c.nextID
	fail := func(stage string, err error) (*wire.PayloadReader, error) {
		// The connection is desynchronized; poison the client.
		c.closed = true
		c.conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		} else if errors.Is(err, os.ErrDeadlineExceeded) {
			// The conn deadline only ever comes from ctx; if it fired a
			// tick before ctx's own timer, it is still ctx's deadline.
			err = context.DeadlineExceeded
		}
		return nil, &Error{Op: op, Doc: doc, Msg: stage, Err: err}
	}
	if err := wire.WriteFrame(c.conn, wire.Frame{ID: id, Op: opcode, Payload: payload}); err != nil {
		return fail("send", err)
	}
	f, err := wire.ReadFrame(c.conn, c.opts.maxFrame)
	if err != nil {
		return fail("recv", err)
	}
	if f.ID != id {
		return fail("recv", fmt.Errorf("response id %d for request %d", f.ID, id))
	}
	if f.Op != wire.StatusOK {
		return nil, decodeError(op, doc, f)
	}
	return wire.NewPayloadReader(f.Payload), nil
}

// decodeError maps an error frame to a *Error wrapping the matching
// sentinel.
func decodeError(op, doc string, f wire.Frame) error {
	e := &Error{Op: op, Doc: doc, Status: f.Op}
	if m, err := wire.NewPayloadReader(f.Payload).String(); err == nil {
		e.Msg = m
	}
	switch f.Op {
	case wire.CodeOverloaded:
		e.Err = ErrOverloaded
	case wire.CodeShuttingDown:
		e.Err = ErrShuttingDown
	case wire.CodeNoDocument:
		e.Err = ErrNoDocument
	case wire.CodeStale:
		e.Err = ErrStale
	case wire.CodeReadOnly:
		e.Err = ErrReadOnly
	case wire.CodeVersion:
		e.Err = ErrVersion
	}
	return e
}

// Ping round-trips an empty frame.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, "ping", "", wire.OpPing, nil)
	return err
}

// ListDocs returns the stored document names.
func (c *Client) ListDocs(ctx context.Context) ([]string, error) {
	r, err := c.roundTrip(ctx, "listdocs", "", wire.OpListDocs, nil)
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	return names, nil
}

// Load shreds and stores a document under the given name.
func (c *Client) Load(ctx context.Context, name, xml string) error {
	var p wire.PayloadBuilder
	p.String(name).String(xml)
	_, err := c.roundTrip(ctx, "load", name, wire.OpLoad, p.Bytes())
	return err
}

// Query runs an XPath query against the named document (vars may be
// nil). Inside a BeginRead window for the document it observes the
// pinned version; otherwise the version committed at execution time.
// With a read replica configured, the query runs there (carrying the
// client's last commit LSN for read-your-writes) unless a pinned read
// window holds it on the primary.
func (c *Client) Query(ctx context.Context, doc, query string, vars map[string]string) ([]Item, error) {
	if c.replica != nil && !c.pinned(doc) {
		return c.replica.QueryAt(ctx, doc, query, vars, c.lastLSN.Load())
	}
	return c.queryOn(ctx, doc, query, vars, 0)
}

// QueryAt is Query with an explicit read-your-writes floor: the server
// parks the query until the document has applied minLSN (bounded by
// WithRYWTimeout), failing with ErrStale rather than reading earlier.
// It requires protocol 2; minLSN 0 reads whatever is current.
func (c *Client) QueryAt(ctx context.Context, doc, query string, vars map[string]string, minLSN uint64) ([]Item, error) {
	if minLSN > 0 {
		if err := c.requireV2("query", doc); err != nil {
			return nil, err
		}
	}
	return c.queryOn(ctx, doc, query, vars, minLSN)
}

func (c *Client) queryOn(ctx context.Context, doc, query string, vars map[string]string, minLSN uint64) ([]Item, error) {
	var p wire.PayloadBuilder
	p.String(doc).String(query)
	p.Uvarint(uint64(len(vars)))
	for k, v := range vars {
		p.String(k).String(v)
	}
	if minLSN > 0 {
		timeout := c.opts.rywTimeout
		if dl, ok := ctx.Deadline(); ok {
			if d := time.Until(dl); d < timeout {
				timeout = d
			}
		}
		if timeout < 0 {
			timeout = 0
		}
		p.Uvarint(minLSN).Uvarint(uint64(timeout / time.Millisecond))
	}
	r, err := c.roundTrip(ctx, "query", doc, wire.OpQuery, p.Bytes())
	if err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, n)
	for i := uint64(0); i < n; i++ {
		kind, err := r.Byte()
		if err != nil {
			return nil, err
		}
		value, err := r.String()
		if err != nil {
			return nil, err
		}
		xml, err := r.String()
		if err != nil {
			return nil, err
		}
		items = append(items, Item{Kind: wire.KindName(kind), Value: value, XML: xml})
	}
	return items, nil
}

// Update applies an XUpdate modification list in one transaction. On
// protocol 2 the result carries the commit's WAL LSN, which the client
// also remembers as its read-your-writes floor for replica-routed
// queries.
func (c *Client) Update(ctx context.Context, doc, mods string) (UpdateResult, error) {
	var p wire.PayloadBuilder
	p.String(doc).String(mods)
	r, err := c.roundTrip(ctx, "update", doc, wire.OpUpdate, p.Bytes())
	if err != nil {
		return UpdateResult{}, err
	}
	ops, err := r.Uvarint()
	if err != nil {
		return UpdateResult{}, err
	}
	affected, err := r.Uvarint()
	if err != nil {
		return UpdateResult{}, err
	}
	res := UpdateResult{Ops: int(ops), Affected: int(affected)}
	if r.Remaining() > 0 {
		if lsn, err := r.Uvarint(); err == nil {
			res.LSN = lsn
			for {
				prev := c.lastLSN.Load()
				if lsn <= prev || c.lastLSN.CompareAndSwap(prev, lsn) {
					break
				}
			}
		}
	}
	return res, nil
}

// Explain returns the compiled evaluation plan for a query.
func (c *Client) Explain(ctx context.Context, doc, query string) (string, error) {
	var p wire.PayloadBuilder
	p.String(doc).String(query)
	r, err := c.roundTrip(ctx, "explain", doc, wire.OpExplain, p.Bytes())
	if err != nil {
		return "", err
	}
	return r.String()
}

// BeginRead pins the document's current committed version for this
// session: every Query on it until EndRead observes that version, no
// matter what commits in between. It returns the pinned version. While
// the window is open, queries on the document stay on the primary
// connection (the pin lives in its session).
func (c *Client) BeginRead(ctx context.Context, doc string) (uint64, error) {
	var p wire.PayloadBuilder
	p.String(doc)
	r, err := c.roundTrip(ctx, "beginread", doc, wire.OpBeginRead, p.Bytes())
	if err != nil {
		return 0, err
	}
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.pins[doc] = true
	c.mu.Unlock()
	return v, nil
}

// EndRead releases a pinned read.
func (c *Client) EndRead(ctx context.Context, doc string) error {
	var p wire.PayloadBuilder
	p.String(doc)
	_, err := c.roundTrip(ctx, "endread", doc, wire.OpEndRead, p.Bytes())
	if err == nil {
		c.mu.Lock()
		delete(c.pins, doc)
		c.mu.Unlock()
	}
	return err
}

func (c *Client) pinned(doc string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pins[doc]
}

// DocStatus reports the document's replication standing on the server
// this client (not its replica) is connected to. Requires protocol 2.
func (c *Client) DocStatus(ctx context.Context, doc string) (DocStatus, error) {
	if err := c.requireV2("docstatus", doc); err != nil {
		return DocStatus{}, err
	}
	var p wire.PayloadBuilder
	p.String(doc)
	r, err := c.roundTrip(ctx, "docstatus", doc, wire.OpDocStatus, p.Bytes())
	if err != nil {
		return DocStatus{}, err
	}
	role, err := r.Byte()
	if err != nil {
		return DocStatus{}, err
	}
	applied, err := r.Uvarint()
	if err != nil {
		return DocStatus{}, err
	}
	last, err := r.Uvarint()
	if err != nil {
		return DocStatus{}, err
	}
	st := DocStatus{AppliedLSN: applied, LastLSN: last, Role: "primary"}
	if role == wire.RoleFollower {
		st.Role = "follower"
	}
	// Protocol 3 appended the checkpoint I/O counters; older servers
	// simply end the payload here (the additivity rule).
	if r.Remaining() > 0 {
		if st.CkptBytesWritten, err = r.Uvarint(); err != nil {
			return DocStatus{}, err
		}
		if st.CkptChunksWritten, err = r.Uvarint(); err != nil {
			return DocStatus{}, err
		}
		if st.CkptChunksReused, err = r.Uvarint(); err != nil {
			return DocStatus{}, err
		}
	}
	return st, nil
}

// ReplicaStatus is DocStatus against the read replica (ErrVersion if
// the client has none — routing is a dial-time choice).
func (c *Client) ReplicaStatus(ctx context.Context, doc string) (DocStatus, error) {
	if c.replica == nil {
		return DocStatus{}, &Error{Op: "docstatus", Doc: doc, Err: ErrVersion, Msg: "no read replica configured"}
	}
	return c.replica.DocStatus(ctx, doc)
}

// LastLSN reports the highest commit LSN this client has observed from
// its own updates — the floor replica-routed reads are held to.
func (c *Client) LastLSN() uint64 { return c.lastLSN.Load() }

func (c *Client) requireV2(op, doc string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.proto >= wire.V2 {
		return nil
	}
	return &Error{Op: op, Doc: doc, Err: ErrVersion,
		Msg: fmt.Sprintf("requires protocol 2; session negotiated %d", c.proto)}
}
