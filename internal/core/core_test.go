package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// paperDoc is the running example of Figures 2–4.
const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func mustParse(t *testing.T, doc string) *shred.Tree {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustFragment(t *testing.T, frag string) *shred.Tree {
	t.Helper()
	tr, err := shred.ParseFragment(frag, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustBuild(t *testing.T, doc string, opts Options) *Store {
	t.Helper()
	s, err := Build(mustParse(t, doc), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("fresh store violates invariants: %v", err)
	}
	return s
}

// liveNames walks the view and returns the element names / text values of
// live tuples in document order.
func liveNames(v xenc.DocView) []string {
	var out []string
	for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
		switch v.Kind(p) {
		case xenc.KindElem:
			out = append(out, v.Names().Name(v.Name(p)))
		case xenc.KindText:
			out = append(out, "#"+v.Value(p))
		default:
			out = append(out, v.Kind(p).String())
		}
	}
	return out
}

func TestBuildPaperExample(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.875})
	// 10 nodes, 7 per page -> two logical pages of 8 tuples.
	if got := s.Pages(); got != 2 {
		t.Fatalf("pages = %d, want 2", got)
	}
	if s.Len() != 16 {
		t.Fatalf("view length = %d, want 16", s.Len())
	}
	if s.LiveNodes() != 10 {
		t.Fatalf("live nodes = %d, want 10", s.LiveNodes())
	}
	want := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	got := liveNames(s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
	// Sizes are live-descendant counts, unaffected by paging.
	wantSizes := map[string]int32{"a": 9, "b": 3, "c": 2, "f": 4, "h": 2, "g": 0}
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		name := s.Names().Name(s.Name(p))
		if w, ok := wantSizes[name]; ok && s.Size(p) != w {
			t.Errorf("size(%s) = %d, want %d", name, s.Size(p), w)
		}
	}
}

// TestPaperFigure4Insert replays the paper's running update: append
// <k><l/><m/></k> under g. The free tuple of g's page takes k, the rest
// overflows to a spliced page, and the ancestor sizes of g, f and a grow
// by 3 — the exact numbers printed in Figure 4.
func TestPaperFigure4Insert(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.875})
	// Find g.
	var g xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "g" {
			g = p
		}
	}
	if g < 0 {
		t.Fatal("g not found")
	}
	gID := s.NodeOf(g)
	aID, fID := s.NodeOf(s.Root()), s.parentOf(gID)

	if _, err := s.AppendChild(g, mustFragment(t, `<k><l/><m/></k>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e", "f", "g", "k", "l", "m", "h", "i", "j"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
	// Figure 4's final sizes: a=12, f=7, g=3 (delta +3 on every ancestor).
	for _, tc := range []struct {
		id   xenc.NodeID
		want int32
	}{{aID, 12}, {fID, 7}, {gID, 3}} {
		if got := s.Size(s.PreOf(tc.id)); got != tc.want {
			t.Errorf("size(node %d) = %d, want %d", tc.id, got, tc.want)
		}
	}
	// One page was spliced in: three logical pages now.
	if got := s.Pages(); got != 3 {
		t.Fatalf("pages = %d, want 3", got)
	}
}

func TestWithinPageInsertMovesNoPages(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 16, FillFactor: 0.7})
	pages := s.Pages()
	root := s.Root()
	if _, err := s.AppendChild(root, mustFragment(t, `<z/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Pages() != pages {
		t.Fatalf("within-page insert spliced a page: %d -> %d", pages, s.Pages())
	}
	got := liveNames(s)
	if got[len(got)-1] != "z" {
		t.Fatalf("appended child not last: %v", got)
	}
}

func TestInsertBeforeAndAfter(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.875})
	var f xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "f" {
			f = p
		}
	}
	if _, err := s.InsertBefore(f, mustFragment(t, `<x/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	f = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "f" {
			f = p
		}
	}
	if _, err := s.InsertAfter(f, mustFragment(t, `<y1/><y2/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e", "x", "f", "g", "h", "i", "j", "y1", "y2"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
	if got := s.Size(s.Root()); got != 12 {
		t.Fatalf("root size = %d, want 12", got)
	}
}

func TestInsertChildAt(t *testing.T) {
	s := mustBuild(t, `<r><a/><b/><c/></r>`, Options{PageSize: 8, FillFactor: 0.5})
	if _, err := s.InsertChildAt(s.Root(), 1, mustFragment(t, `<x/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []string{"r", "a", "x", "b", "c"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
	// Past-the-end index appends.
	if _, err := s.InsertChildAt(s.Root(), 99, mustFragment(t, `<z/>`)); err != nil {
		t.Fatal(err)
	}
	got := liveNames(s)
	if got[len(got)-1] != "z" {
		t.Fatalf("child at 99 not appended: %v", got)
	}
}

func TestDeleteLeavesTuplesInPlace(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.875})
	lenBefore, pagesBefore := s.Len(), s.Pages()
	var h xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "h" {
			h = p
		}
	}
	if err := s.Delete(h); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != lenBefore || s.Pages() != pagesBefore {
		t.Fatalf("delete changed the physical layout: len %d->%d pages %d->%d",
			lenBefore, s.Len(), pagesBefore, s.Pages())
	}
	want := []string{"a", "b", "c", "d", "e", "f", "g"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
	if got := s.Size(s.Root()); got != 6 {
		t.Fatalf("root size = %d, want 6", got)
	}
	if s.LiveNodes() != 7 {
		t.Fatalf("live nodes = %d, want 7", s.LiveNodes())
	}
}

func TestDeleteThenReuseFreeSpace(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 1.0})
	var c xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "c" {
			c = p
		}
	}
	if err := s.Delete(c); err != nil { // frees c,d,e: three tuples
		t.Fatal(err)
	}
	pages := s.Pages()
	var b xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "b" {
			b = p
		}
	}
	if _, err := s.AppendChild(b, mustFragment(t, `<n1/><n2/><n3/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Pages() != pages {
		t.Fatalf("insert into freed space spliced a page: %d -> %d", pages, s.Pages())
	}
	want := []string{"a", "b", "n1", "n2", "n3", "f", "g", "h", "i", "j"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
}

func TestNodeIDStableAcrossShifts(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.875})
	// Remember every node by name.
	idOf := map[string]xenc.NodeID{}
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		idOf[s.Names().Name(s.Name(p))] = s.NodeOf(p)
	}
	// A large insert before f shifts everything after it, possibly across
	// pages.
	var f = s.PreOf(idOf["f"])
	if _, err := s.InsertBefore(f, mustFragment(t, `<x1/><x2/><x3/><x4/><x5/><x6/><x7/><x8/><x9/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for name, id := range idOf {
		p := s.PreOf(id)
		if p == xenc.NoPre {
			t.Fatalf("node %s (id %d) lost", name, id)
		}
		if got := s.Names().Name(s.Name(p)); got != name {
			t.Fatalf("node id %d now resolves to %s, want %s", id, got, name)
		}
	}
	// Document order must still be intact.
	want := []string{"a", "b", "c", "d", "e", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "f", "g", "h", "i", "j"}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live names = %v, want %v", got, want)
	}
}

func TestAttributesSurviveTupleMoves(t *testing.T) {
	s := mustBuild(t, `<r><p id="1" cat="x"/><q id="2"/></r>`, Options{PageSize: 8, FillFactor: 1.0})
	idName, _ := s.Names().Lookup("id")
	// Insert before p: p and q move.
	var p xenc.Pre = -1
	for q := xenc.SkipFree(s, 0); q < s.Len(); q = xenc.SkipFree(s, q+1) {
		if s.Kind(q) == xenc.KindElem && s.Names().Name(s.Name(q)) == "p" {
			p = q
		}
	}
	if _, err := s.InsertBefore(p, mustFragment(t, `<w/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := 0
	for q := xenc.SkipFree(s, 0); q < s.Len(); q = xenc.SkipFree(s, q+1) {
		if s.Kind(q) != xenc.KindElem {
			continue
		}
		switch s.Names().Name(s.Name(q)) {
		case "p":
			if v, ok := s.AttrValue(q, idName); !ok || v != "1" {
				t.Fatalf("p lost its id attribute: %q %v", v, ok)
			}
			if len(s.Attrs(q)) != 2 {
				t.Fatalf("p attrs = %v", s.Attrs(q))
			}
			found++
		case "q":
			if v, ok := s.AttrValue(q, idName); !ok || v != "2" {
				t.Fatalf("q lost its id attribute: %q %v", v, ok)
			}
			found++
		}
	}
	if found != 2 {
		t.Fatalf("found %d of 2 attributed elements", found)
	}
}

func TestValueUpdates(t *testing.T) {
	s := mustBuild(t, `<r><p>old</p></r>`, Options{})
	var txt xenc.Pre = -1
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindText {
			txt = p
		}
	}
	if err := s.SetValue(txt, "new"); err != nil {
		t.Fatal(err)
	}
	if s.Value(txt) != "new" {
		t.Fatalf("value = %q", s.Value(txt))
	}
	if err := s.SetValue(s.Root(), "x"); err == nil {
		t.Fatal("SetValue on element succeeded")
	}
	if err := s.Rename(s.Root(), "root2"); err != nil {
		t.Fatal(err)
	}
	if s.Names().Name(s.Name(s.Root())) != "root2" {
		t.Fatal("rename did not stick")
	}
	if err := s.Rename(txt, "x"); err == nil {
		t.Fatal("Rename on text succeeded")
	}
	if err := s.SetAttr(s.Root(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.AttrValue(s.Root(), mustName(s, "k")); !ok || v != "v" {
		t.Fatalf("attr = %q %v", v, ok)
	}
	if err := s.SetAttr(s.Root(), "k", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.AttrValue(s.Root(), mustName(s, "k")); v != "v2" {
		t.Fatalf("attr after overwrite = %q", v)
	}
	if err := s.RemoveAttr(s.Root(), "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.AttrValue(s.Root(), mustName(s, "k")); ok {
		t.Fatal("attr survived removal")
	}
	if err := s.RemoveAttr(s.Root(), "absent"); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func mustName(s *Store, n string) int32 {
	id, ok := s.Names().Lookup(n)
	if !ok {
		return -2
	}
	return id
}

func TestRootGuards(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{})
	if err := s.Delete(s.Root()); err == nil {
		t.Fatal("deleting the root succeeded")
	}
	if _, err := s.InsertBefore(s.Root(), mustFragment(t, `<x/>`)); err == nil {
		t.Fatal("insert before root succeeded")
	}
	if _, err := s.InsertAfter(s.Root(), mustFragment(t, `<x/>`)); err == nil {
		t.Fatal("insert after root succeeded")
	}
}

func TestBadOptions(t *testing.T) {
	tr := mustParse(t, paperDoc)
	if _, err := Build(tr, Options{PageSize: 100}); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
	if _, err := Build(tr, Options{FillFactor: 1.5}); err == nil {
		t.Fatal("fill factor > 1 accepted")
	}
	if _, err := Build(&shred.Tree{}, Options{}); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestOperationsOnUnusedTuples(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.5})
	// Find an unused tuple.
	var free xenc.Pre = -1
	for p := xenc.Pre(0); p < s.Len(); p++ {
		if s.Level(p) == xenc.LevelUnused {
			free = p
			break
		}
	}
	if free < 0 {
		t.Fatal("no unused tuple with fill factor 0.5")
	}
	if err := s.Delete(free); err == nil {
		t.Fatal("delete of unused tuple succeeded")
	}
	if _, err := s.AppendChild(free, mustFragment(t, `<x/>`)); err == nil {
		t.Fatal("append under unused tuple succeeded")
	}
	if err := s.SetValue(-1, "x"); err == nil {
		t.Fatal("SetValue out of range succeeded")
	}
}

// TestHugeFragmentInsert exercises the multi-page overflow path.
func TestHugeFragmentInsert(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 1.0})
	b := shred.NewBuilder().Start("big")
	for i := 0; i < 100; i++ {
		b.Elem("n", fmt.Sprintf("t%d", i))
	}
	frag := b.End().Tree()
	if _, err := s.AppendChild(s.Root(), frag); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.LiveNodes() != 10+201 {
		t.Fatalf("live nodes = %d, want 211", s.LiveNodes())
	}
	if got := s.Size(s.Root()); got != 9+201 {
		t.Fatalf("root size = %d, want 210", got)
	}
}

// TestRandomOpsAgainstInvariants drives long random update sequences and
// validates the full invariant set after every operation.
func TestRandomOpsAgainstInvariants(t *testing.T) {
	for _, ps := range []int{8, 16, 64} {
		ps := ps
		t.Run(fmt.Sprintf("page%d", ps), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(ps)))
			s := mustBuild(t, paperDoc, Options{PageSize: ps, FillFactor: 0.8})
			for step := 0; step < 300; step++ {
				// Pick a random live node.
				var live []xenc.Pre
				for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
					live = append(live, p)
				}
				target := live[rng.Intn(len(live))]
				frag := randomFragment(rng)
				var err error
				switch op := rng.Intn(4); {
				case op == 0 && target != s.Root():
					err = s.Delete(target)
				case op == 1 && target != s.Root():
					_, err = s.InsertBefore(target, frag)
				case op == 2 && target != s.Root():
					_, err = s.InsertAfter(target, frag)
				default:
					if s.Kind(target) != xenc.KindElem {
						continue
					}
					_, err = s.AppendChild(target, frag)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("step %d: invariants: %v", step, err)
				}
			}
		})
	}
}

func randomFragment(rng *rand.Rand) *shred.Tree {
	b := shred.NewBuilder()
	n := 1 + rng.Intn(6)
	depth := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			b.Start(fmt.Sprintf("e%d", rng.Intn(5)), shred.Attr{Name: "id", Value: fmt.Sprint(rng.Intn(100))})
			depth++
		case 1:
			b.Elem(fmt.Sprintf("leaf%d", rng.Intn(5)), "txt")
		default:
			if depth > 0 {
				b.End()
				depth--
			} else {
				b.Text(fmt.Sprintf("t%d", i))
			}
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Tree()
}
