package core

import (
	"fmt"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// Structural update entry points. All positions are view ranks (pre).
//
// The two insert scenarios of Figure 7:
//
//	(a) "within page": the logical page holding the insert point has
//	    enough unused tuples at or after it. The used tuples after the
//	    insert point move towards the page end, their new positions are
//	    written to node/pos, and the new nodes fill the gap. No other
//	    page is touched.
//	(b) "page overflow": the insert does not fit. The used tuples after
//	    the insert point and the new nodes are written into freshly
//	    appended physical pages, the old tail becomes an unused run, and
//	    the new pages are spliced into the pageOffset order directly
//	    after the insert page. All pre numbers after the splice shift
//	    automatically because pre is a virtual column of the view.
//
// In both cases the only ancestor maintenance is size += k on the chain
// of ancestors of the insert point, which the transaction layer turns
// into commutative delta increments (Section 3.2).
//
// Every write funnels through the dirtyPage / dirtyNodeChunk hooks, so on
// a copy-on-write snapshot each path materializes exactly the pages it
// touches (Section 3.2's copy-on-write discipline).

// errIsRoot guards operations that are illegal on the document root.
var errIsRoot = fmt.Errorf("core: operation not allowed on the document root")

// InsertBefore inserts the fragment as the directly preceding sibling(s)
// of the node at target (XUpdate insert-before).
func (s *Store) InsertBefore(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := s.checkLive(target); err != nil {
		return nil, err
	}
	parent := s.ParentPre(target)
	if parent == xenc.NoPre {
		return nil, errIsRoot
	}
	return s.insertAt(target, parent, frag)
}

// InsertAfter inserts the fragment directly after the subtree of the node
// at target (XUpdate insert-after).
func (s *Store) InsertAfter(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := s.checkLive(target); err != nil {
		return nil, err
	}
	parent := s.ParentPre(target)
	if parent == xenc.NoPre {
		return nil, errIsRoot
	}
	return s.insertAt(s.regionEnd(target)+1, parent, frag)
}

// AppendChild inserts the fragment as the last child(ren) of the element
// at parent (XUpdate append without a child position).
func (s *Store) AppendChild(parent xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := s.checkLive(parent); err != nil {
		return nil, err
	}
	if s.Kind(parent) != xenc.KindElem {
		return nil, fmt.Errorf("core: append target at pre %d is a %v, not an element", parent, s.Kind(parent))
	}
	return s.insertAt(s.regionEnd(parent)+1, parent, frag)
}

// InsertChildAt inserts the fragment as child number idx (0-based) of the
// element at parent (XUpdate append with a child position). If idx is
// past the last child the fragment is appended.
func (s *Store) InsertChildAt(parent xenc.Pre, idx int, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := s.checkLive(parent); err != nil {
		return nil, err
	}
	if s.Kind(parent) != xenc.KindElem {
		return nil, fmt.Errorf("core: append target at pre %d is a %v, not an element", parent, s.Kind(parent))
	}
	c := s.childAt(parent, idx)
	if c == xenc.NoPre {
		return s.insertAt(s.regionEnd(parent)+1, parent, frag)
	}
	return s.insertAt(c, parent, frag)
}

// Delete removes the subtree rooted at target: the tuples stay in place
// as unused tuples ("structural deletes just leave the tuples of the
// deleted nodes in place without causing any shifts in pre numbers").
func (s *Store) Delete(target xenc.Pre) error {
	if err := s.checkLive(target); err != nil {
		return err
	}
	parent := s.ParentPre(target)
	if parent == xenc.NoPre {
		return errIsRoot
	}
	k := s.Size(target) + 1
	lvl := s.Level(target)
	// Mark the whole region unused, release node ids and attributes.
	touched := map[int32]bool{}
	p := target
	for p < s.Len() {
		if s.Level(p) == xenc.LevelUnused {
			p = xenc.SkipFree(s, p)
			continue
		}
		if p != target && s.Level(p) <= lvl {
			break
		}
		pos := s.physOf(p)
		wp := s.dirtyPage(pos >> s.pageBits)
		o := pos & s.pageMask
		id := wp.node[o]
		s.setAttrs(id, nil)
		s.setPos(id, -1)
		s.setParent(id, xenc.NoNode)
		s.pushFree(id)
		wp.level[o] = xenc.LevelUnused
		wp.node[o] = xenc.NoNode
		wp.text[o] = ""
		touched[pos>>s.pageBits] = true
		p++
	}
	for pg := range touched {
		s.recomputeFreeRuns(pg)
	}
	s.liveNodes -= int(k)
	s.addAncestorSizes(s.NodeOf(parent), -k)
	return nil
}

// SetValue replaces the content of a text, comment or PI node (a value
// update, which maps trivially to an in-place column update).
func (s *Store) SetValue(p xenc.Pre, val string) error {
	if err := s.checkLive(p); err != nil {
		return err
	}
	if k := s.Kind(p); k == xenc.KindElem {
		return fmt.Errorf("core: SetValue on an element (pre %d); update its text child instead", p)
	}
	pos := s.physOf(p)
	s.dirtyPage(pos >> s.pageBits).text[pos&s.pageMask] = val
	return nil
}

// Rename changes the qualified name of an element or PI node.
func (s *Store) Rename(p xenc.Pre, name string) error {
	if err := s.checkLive(p); err != nil {
		return err
	}
	if k := s.Kind(p); k != xenc.KindElem && k != xenc.KindPI {
		return fmt.Errorf("core: Rename on a %v node (pre %d)", k, p)
	}
	pos := s.physOf(p)
	s.dirtyPage(pos >> s.pageBits).name[pos&s.pageMask] = s.qn.Intern(name)
	return nil
}

// SetAttr adds or replaces an attribute on the element at p. The
// attribute list is rebuilt rather than patched in place: the old slice
// may be shared with a copy-on-write snapshot.
func (s *Store) SetAttr(p xenc.Pre, name, val string) error {
	if err := s.checkLive(p); err != nil {
		return err
	}
	if s.Kind(p) != xenc.KindElem {
		return fmt.Errorf("core: SetAttr on a %v node (pre %d)", s.Kind(p), p)
	}
	id := s.NodeOf(p)
	nameID := s.qn.Intern(name)
	valID := s.prop.put(val)
	refs := s.attrRefs(id)
	nrefs := make([]attrRef, len(refs), len(refs)+1)
	copy(nrefs, refs)
	for i := range nrefs {
		if nrefs[i].name == nameID {
			nrefs[i].val = valID
			s.setAttrs(id, nrefs)
			return nil
		}
	}
	s.setAttrs(id, append(nrefs, attrRef{name: nameID, val: valID}))
	return nil
}

// RemoveAttr deletes an attribute from the element at p. Removing an
// absent attribute is not an error (XUpdate remove semantics). Like
// SetAttr, the surviving attributes go into a fresh slice so snapshots
// sharing the old one are unaffected.
func (s *Store) RemoveAttr(p xenc.Pre, name string) error {
	if err := s.checkLive(p); err != nil {
		return err
	}
	nameID, ok := s.qn.Lookup(name)
	if !ok {
		return nil
	}
	id := s.NodeOf(p)
	refs := s.attrRefs(id)
	for i := range refs {
		if refs[i].name == nameID {
			nrefs := make([]attrRef, 0, len(refs)-1)
			nrefs = append(nrefs, refs[:i]...)
			nrefs = append(nrefs, refs[i+1:]...)
			if len(nrefs) == 0 {
				nrefs = nil
			}
			s.setAttrs(id, nrefs)
			return nil
		}
	}
	return nil
}

// --- navigation used by updates ------------------------------------------

func (s *Store) checkLive(p xenc.Pre) error {
	if p < 0 || p >= s.Len() {
		return fmt.Errorf("core: pre %d out of range [0,%d)", p, s.Len())
	}
	if s.Level(p) == xenc.LevelUnused {
		return fmt.Errorf("core: pre %d is an unused tuple", p)
	}
	return nil
}

// ParentPre returns the view rank of p's parent (NoPre for the root),
// resolved through the parent column in O(1).
func (s *Store) ParentPre(p xenc.Pre) xenc.Pre {
	id := s.parentOf(s.NodeOf(p))
	if id == xenc.NoNode {
		return xenc.NoPre
	}
	return s.PreOf(id)
}

// regionEnd returns the view rank of the last tuple of p's region: the
// position after which "directly after the subtree of p" content goes.
// It scans forward counting live descendants, skipping free runs.
func (s *Store) regionEnd(p xenc.Pre) xenc.Pre {
	remaining := s.Size(p)
	last := p
	q := p + 1
	for remaining > 0 {
		q = xenc.SkipFree(s, q)
		last = q
		remaining--
		q++
	}
	return last
}

// NthChild returns the view rank of the idx-th (0-based) child of the
// node at parent, or NoPre. The transaction layer uses it to find the
// pages an InsertChildAt will write.
func (s *Store) NthChild(parent xenc.Pre, idx int) xenc.Pre {
	return s.childAt(parent, idx)
}

// childAt returns the view rank of the idx-th child of parent, or NoPre.
func (s *Store) childAt(parent xenc.Pre, idx int) xenc.Pre {
	lvl := s.Level(parent)
	q := xenc.SkipFree(s, parent+1)
	n := s.Len()
	for q < n && s.Level(q) > lvl {
		if s.Level(q) == lvl+1 {
			if idx == 0 {
				return q
			}
			idx--
		}
		q = xenc.SkipFree(s, q+s.Size(q)+1)
	}
	return xenc.NoPre
}

// addAncestorSizes walks the ancestor chain starting at node id and adds
// delta to each ancestor's size. This is the operation the transaction
// protocol performs with commutative delta increments.
func (s *Store) addAncestorSizes(id xenc.NodeID, delta int32) {
	for id != xenc.NoNode {
		pos := s.posOf(id)
		s.dirtyPage(pos >> s.pageBits).size[pos&s.pageMask] += delta
		id = s.parentOf(id)
	}
}

// --- the insert engine ----------------------------------------------------

// insertAt inserts the fragment so that its first node lands at view rank
// at, as content under the element at parent. It returns the node ids of
// all inserted nodes in fragment order (transactions record them so a
// commit replay can map transaction-local ids to base-store ids).
func (s *Store) insertAt(at xenc.Pre, parent xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if len(frag.Nodes) == 0 {
		return nil, nil
	}
	if err := s.checkLive(parent); err != nil {
		return nil, err
	}
	baseLevel := s.Level(parent) + 1
	if int(baseLevel)+maxFragLevel(frag) > 32000 {
		return nil, fmt.Errorf("core: resulting tree too deep")
	}
	parentID := s.NodeOf(parent)
	k := int32(len(frag.Nodes))

	ids := s.placeTuples(at, frag, baseLevel)

	// Wire parent links: fragment roots hang off parentID, inner nodes
	// follow the fragment's own structure.
	var stack []xenc.NodeID
	for i := range frag.Nodes {
		lvl := int(frag.Nodes[i].Level)
		stack = stack[:lvl]
		if lvl == 0 {
			s.setParent(ids[i], parentID)
		} else {
			s.setParent(ids[i], stack[lvl-1])
		}
		stack = append(stack, ids[i])
	}
	s.liveNodes += int(k)
	s.addAncestorSizes(parentID, k)
	return ids, nil
}

func maxFragLevel(frag *shred.Tree) int {
	m := 0
	for i := range frag.Nodes {
		if l := int(frag.Nodes[i].Level); l > m {
			m = l
		}
	}
	return m
}

// placeTuples writes the fragment's tuples into the view starting at view
// rank at, using the within-page path when the page has room and the
// page-overflow path otherwise. It returns the allocated node ids in
// fragment order.
func (s *Store) placeTuples(at xenc.Pre, frag *shred.Tree, baseLevel xenc.Level) []xenc.NodeID {
	k := int32(len(frag.Nodes))

	// At a page boundary, prefer the unused tail of the *previous*
	// logical page (this is how the paper's example places node k on the
	// free tuple of page 0).
	if at&s.pageMask == 0 && at > 0 {
		prevPg := (at - 1) >> s.pageBits
		physBase := s.logToPhys[prevPg] << s.pageBits
		tailStart := s.pageSize
		for tailStart > 0 && s.levelAt(physBase+tailStart-1) == xenc.LevelUnused {
			tailStart--
		}
		if s.pageSize-tailStart >= k {
			ids := s.newIDs(k)
			for i := range frag.Nodes {
				n := frag.Nodes[i]
				n.Level += baseLevel
				s.writeNode(physBase+tailStart+int32(i), &n, ids[i])
			}
			s.markFreeRun(physBase+tailStart+k, physBase+s.pageSize)
			return ids
		}
	}

	pg := at >> s.pageBits
	if pg < int32(len(s.logToPhys)) {
		off := at & s.pageMask
		physBase := s.logToPhys[pg] << s.pageBits
		free := int32(0)
		for i := off; i < s.pageSize; i++ {
			if s.levelAt(physBase+i) == xenc.LevelUnused {
				free++
			}
		}
		if free >= k {
			return s.insertWithinPage(physBase, off, frag, baseLevel)
		}
		return s.insertOverflow(pg, physBase, off, frag, baseLevel)
	}
	// at == Len(): append fresh pages at the very end.
	return s.insertOverflow(pg-1, -1, 0, frag, baseLevel)
}

// insertWithinPage is Figure 7(a): tuples after the insert point move
// towards the page end (their node/pos entries are updated), the new
// nodes fill the gap. Exactly one physical page is dirtied.
func (s *Store) insertWithinPage(physBase, off int32, frag *shred.Tree, baseLevel xenc.Level) []xenc.NodeID {
	k := int32(len(frag.Nodes))
	wp := s.dirtyPage(physBase >> s.pageBits)
	// Save the used tail in order.
	type saved struct {
		size  int32
		level int16
		kind  uint8
		name  int32
		text  string
		node  int32
	}
	var tail []saved
	for i := off; i < s.pageSize; i++ {
		if wp.level[i] != xenc.LevelUnused {
			tail = append(tail, saved{wp.size[i], wp.level[i], wp.kind[i], wp.name[i], wp.text[i], wp.node[i]})
		}
	}
	ids := s.newIDs(k)
	// New nodes at [off, off+k).
	for i := range frag.Nodes {
		n := frag.Nodes[i]
		n.Level += baseLevel
		s.writeNode(physBase+off+int32(i), &n, ids[i])
	}
	// Moved tail directly after them.
	w := off + k
	for _, t := range tail {
		wp.size[w] = t.size
		wp.level[w] = t.level
		wp.kind[w] = t.kind
		wp.name[w] = t.name
		wp.text[w] = t.text
		wp.node[w] = t.node
		s.setPos(t.node, physBase+w)
		w++
	}
	s.markFreeRun(physBase+w, physBase+s.pageSize)
	// An unused run that ended directly before off may have interior runs
	// recorded before the compaction; rebuild the whole page's run lengths
	// so no stale run length can jump over the freshly written tuples.
	s.recomputeFreeRuns(physBase >> s.pageBits)
	return ids
}

// insertOverflow is Figure 7(b): the new nodes plus the used tail of the
// insert page are written into freshly appended physical pages, which are
// then spliced into the logical page order directly after the insert
// page. Only appended pages are written (bulk updates are "written only
// in newly appended logical pages"), so a transaction can keep them
// private until commit; besides the appended pages only the insert page
// itself is dirtied (its tail becomes an unused run).
//
// physBase < 0 means "append at the very end of the document" (no tail to
// move, splice after logical page pg).
func (s *Store) insertOverflow(pg, physBase, off int32, frag *shred.Tree, baseLevel xenc.Level) []xenc.NodeID {
	k := int32(len(frag.Nodes))
	type saved struct {
		size  int32
		level int16
		kind  uint8
		name  int32
		text  string
		node  int32
		isNew int32 // index into frag, or -1
	}
	seq := make([]saved, 0, k)
	for i := range frag.Nodes {
		seq = append(seq, saved{isNew: int32(i)})
	}
	if physBase >= 0 {
		op := s.pages[physBase>>s.pageBits]
		for i := off; i < s.pageSize; i++ {
			if op.level[i] != xenc.LevelUnused {
				seq = append(seq, saved{
					size: op.size[i], level: op.level[i], kind: op.kind[i],
					name: op.name[i], text: op.text[i], node: op.node[i], isNew: -1,
				})
			}
		}
		// The old tail becomes an unused run; rebuild the page's run
		// lengths so a run that ended directly before off absorbs it.
		s.markFreeRun(physBase+off, physBase+s.pageSize)
		s.recomputeFreeRuns(physBase >> s.pageBits)
	}
	ids := s.newIDs(k)
	nNew := (int32(len(seq)) + s.pageSize - 1) >> s.pageBits
	for p := int32(0); p < nNew; p++ {
		phys := s.appendPhysPage()
		base := phys << s.pageBits
		wp := s.pages[phys]
		chunk := seq[p<<s.pageBits : min32((p+1)<<s.pageBits, int32(len(seq)))]
		for i := range chunk {
			t := chunk[i]
			if t.isNew >= 0 {
				n := frag.Nodes[t.isNew]
				n.Level += baseLevel
				s.writeNode(base+int32(i), &n, ids[t.isNew])
			} else {
				wp.size[i] = t.size
				wp.level[i] = t.level
				wp.kind[i] = t.kind
				wp.name[i] = t.name
				wp.text[i] = t.text
				wp.node[i] = t.node
				s.setPos(t.node, base+int32(i))
			}
		}
		s.markFreeRun(base+int32(len(chunk)), base+s.pageSize)
		s.spliceLogical(pg+1+p, phys)
	}
	return ids
}

// spliceLogical inserts physical page phys at logical index logIdx: the
// pageOffset maintenance of Figure 7(b) ("a new entry for it is appended
// to the pageOffset table, and the offset of all pages after the insert
// point is incremented"). The pageOffset tables are private per store
// (copied at snapshot time), so no copy-on-write hook is needed here.
func (s *Store) spliceLogical(logIdx, phys int32) {
	s.logToPhys = append(s.logToPhys, 0)
	copy(s.logToPhys[logIdx+1:], s.logToPhys[logIdx:])
	s.logToPhys[logIdx] = phys
	// physToLog: every logical index >= logIdx shifted by one.
	s.physToLog = append(s.physToLog, 0)
	for ph, lg := range s.physToLog[:len(s.physToLog)-1] {
		if lg >= logIdx {
			s.physToLog[ph] = lg + 1
		}
	}
	s.physToLog[phys] = logIdx
}

func (s *Store) newIDs(k int32) []xenc.NodeID {
	ids := make([]xenc.NodeID, k)
	for i := range ids {
		ids[i] = s.newNodeID()
	}
	return ids
}
