package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"mxq/internal/chunkstore"
	"mxq/internal/xenc"
)

// This file is the content-addressed face of the store: the chunked
// column layout (store.go) serialized chunk-by-chunk instead of as one
// monolithic gob blob. Each page chunk, node chunk and free-list chunk
// has a deterministic binary encoding whose SHA-256 names it in a
// chunkstore.Store; a checkpoint image shrinks to a ChunkManifest — the
// list of those names in column order plus the store's scalars.
//
// The payoff is the COW layer's own bookkeeping reused as a dirty map:
// every write path funnels through the dirty* hooks, which invalidate
// the touched chunk's cached content hash. At save time an untouched
// chunk's hash is read from the cache (no serialization, no hashing)
// and — the store already holding a chunk of that name — no bytes move.
// A checkpoint after small churn therefore costs O(dirtied chunks) in
// both CPU and I/O, not O(document), and two stores that share content
// (a primary and its follower) dedupe chunk transfer the same way.
//
// Hash caching is safe under the COW protocol: a chunk shared with any
// snapshot (refs > 1) is frozen — writers clone it (the clone starts
// with no cached hash) — so a pinned checkpoint snapshot's chunks never
// change under the save. The one exception the encoding must dodge is
// the free-list stack: popFree shrinks freeLen without dirtying the
// tail chunk (the paper's "the slot above freeLen is dead" trick), so a
// partially-filled tail chunk's serialization — which depends on
// freeLen — is never hash-cached; only full free chunks, whose encoding
// is freeLen-independent, are.

// chunkHash caches a chunk's content address. The zero value is the
// "unknown" state; dirty* hooks reset to it before any write.
type chunkHash struct {
	p atomic.Pointer[chunkstore.Hash]
}

func (c *chunkHash) get() (chunkstore.Hash, bool) {
	if h := c.p.Load(); h != nil {
		return *h, true
	}
	return chunkstore.Hash{}, false
}

func (c *chunkHash) set(h chunkstore.Hash) { c.p.Store(&h) }
func (c *chunkHash) invalidate()           { c.p.Store(nil) }

// Chunk encoding kind tags (first byte of every chunk).
const (
	chunkKindPage = 1 // pos/size/level/kind/name/text/node columns of one page
	chunkKindNode = 2 // node/pos, parent and attribute columns of one chunk
	chunkKindFree = 3 // a run of the recycled-NodeID stack
	chunkKindDict = 4 // a group of dictionary strings (names or prop values)
)

// dictGroupSize is the number of dictionary strings per dict chunk.
// Dictionaries are append-only, so grouping keeps every group but the
// tail byte-stable across checkpoints — they dedupe like data chunks.
const dictGroupSize = 4096

// ChunkManifest is a checkpoint image in the content-addressed format:
// the store's scalars and offset tables inline, every bulk column as a
// list of chunk hashes (lowercase hex) in column order. A manifest is
// self-contained — it names every chunk of the full document, so
// recovery never mixes two images; "incremental" is purely a write-side
// property (chunks already in the store are not rewritten).
type ChunkManifest struct {
	PageBits  uint     `json:"pageBits"`
	LogToPhys []int32  `json:"logToPhys"`
	PhysToLog []int32  `json:"physToLog"`
	NodeLen   int32    `json:"nodeLen"`
	FreeLen   int32    `json:"freeLen"`
	LiveNodes int      `json:"liveNodes"`
	Pages     []string `json:"pages"`
	Nodes     []string `json:"nodes"`
	Free      []string `json:"free,omitempty"`
	Names     []string `json:"names,omitempty"`
	Props     []string `json:"props,omitempty"`
}

// TotalChunks returns the number of chunk references in the manifest.
func (m *ChunkManifest) TotalChunks() int {
	return len(m.Pages) + len(m.Nodes) + len(m.Free) + len(m.Names) + len(m.Props)
}

// ChunkHashes parses every chunk reference, in manifest order.
func (m *ChunkManifest) ChunkHashes() ([]chunkstore.Hash, error) {
	out := make([]chunkstore.Hash, 0, m.TotalChunks())
	for _, list := range [][]string{m.Pages, m.Nodes, m.Free, m.Names, m.Props} {
		for _, s := range list {
			h, err := chunkstore.ParseHash(s)
			if err != nil {
				return nil, fmt.Errorf("core: manifest is corrupt: %w", err)
			}
			out = append(out, h)
		}
	}
	return out, nil
}

// ChunkSaveStats reports what one SaveChunked actually moved — the
// observable incremental-checkpoint win (Stats surfaces it).
type ChunkSaveStats struct {
	ChunksTotal   int   // chunk references in the manifest
	ChunksWritten int   // chunks the store was missing (bytes moved)
	ChunksReused  int   // ChunksTotal - ChunksWritten
	BytesWritten  int64 // serialized bytes actually written
}

// --- deterministic chunk encoding ----------------------------------------

type chunkEnc struct{ b []byte }

func (e *chunkEnc) u8(v uint8)       { e.b = append(e.b, v) }
func (e *chunkEnc) u16(v uint16)     { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *chunkEnc) u32(v uint32)     { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *chunkEnc) i16(v int16)      { e.u16(uint16(v)) }
func (e *chunkEnc) i32(v int32)      { e.u32(uint32(v)) }
func (e *chunkEnc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *chunkEnc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }

// chunkDec decodes with a sticky error; every getter returns the zero
// value once the input is exhausted or malformed.
type chunkDec struct {
	b   []byte
	off int
	err error
}

func (d *chunkDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *chunkDec) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.b) || n < 0 {
		d.fail("core: chunk truncated at offset %d", d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *chunkDec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *chunkDec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *chunkDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *chunkDec) i16() int16 { return int16(d.u16()) }
func (d *chunkDec) i32() int32 { return int32(d.u32()) }

func (d *chunkDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("core: chunk has a malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *chunkDec) count(limit int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(limit) {
		d.fail("core: chunk count %d exceeds limit %d", v, limit)
		return 0
	}
	return int(v)
}

func (d *chunkDec) str() string {
	n := d.count(len(d.b)) // a string cannot be longer than the chunk
	return string(d.take(n))
}

// done fails on trailing garbage: a chunk's name covers every byte.
func (d *chunkDec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("core: chunk has %d trailing bytes", len(d.b)-d.off)
	}
	return nil
}

func encodePageChunk(p *page) []byte {
	e := &chunkEnc{b: make([]byte, 0, 16*len(p.size))}
	e.u8(chunkKindPage)
	e.uvarint(uint64(len(p.size)))
	for _, v := range p.size {
		e.i32(v)
	}
	for _, v := range p.level {
		e.i16(v)
	}
	e.b = append(e.b, p.kind...)
	for _, v := range p.name {
		e.i32(v)
	}
	for _, s := range p.text {
		e.str(s)
	}
	for _, v := range p.node {
		e.i32(v)
	}
	return e.b
}

func decodePageChunk(data []byte, pageSize int32) (*page, error) {
	d := &chunkDec{b: data}
	if k := d.u8(); d.err == nil && k != chunkKindPage {
		return nil, fmt.Errorf("core: chunk kind %d, want page (%d)", k, chunkKindPage)
	}
	if n := d.count(int(pageSize)); d.err == nil && int32(n) != pageSize {
		return nil, fmt.Errorf("core: page chunk holds %d tuples, store page size is %d", n, pageSize)
	}
	p := newPage(int(pageSize))
	for i := range p.size {
		p.size[i] = d.i32()
	}
	for i := range p.level {
		p.level[i] = d.i16()
	}
	copy(p.kind, d.take(int(pageSize)))
	for i := range p.name {
		p.name[i] = d.i32()
	}
	for i := range p.text {
		p.text[i] = d.str()
	}
	for i := range p.node {
		p.node[i] = d.i32()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return p, nil
}

func encodeNodeChunk(c *nodeChunk) []byte {
	e := &chunkEnc{b: make([]byte, 0, 9*len(c.pos))}
	e.u8(chunkKindNode)
	e.uvarint(uint64(len(c.pos)))
	for _, v := range c.pos {
		e.i32(v)
	}
	for _, v := range c.parent {
		e.i32(v)
	}
	for _, refs := range c.attrs {
		e.uvarint(uint64(len(refs)))
		for _, r := range refs {
			e.i32(r.name)
			e.i32(r.val)
		}
	}
	return e.b
}

func decodeNodeChunk(data []byte, pageSize int32) (*nodeChunk, error) {
	d := &chunkDec{b: data}
	if k := d.u8(); d.err == nil && k != chunkKindNode {
		return nil, fmt.Errorf("core: chunk kind %d, want node (%d)", k, chunkKindNode)
	}
	if n := d.count(int(pageSize)); d.err == nil && int32(n) != pageSize {
		return nil, fmt.Errorf("core: node chunk holds %d ids, store page size is %d", n, pageSize)
	}
	c := newNodeChunk(int(pageSize))
	for i := range c.pos {
		c.pos[i] = d.i32()
	}
	for i := range c.parent {
		c.parent[i] = d.i32()
	}
	for i := range c.attrs {
		n := d.count(len(d.b) / 8) // each attr ref costs 8 bytes
		if d.err != nil {
			break
		}
		if n == 0 {
			continue
		}
		refs := make([]attrRef, n)
		for j := range refs {
			refs[j] = attrRef{name: d.i32(), val: d.i32()}
		}
		c.attrs[i] = refs
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// encodeFreeChunk serializes the first count recycled ids of a chunk.
// For a full chunk count equals the page size and the encoding is
// independent of freeLen (hash-cacheable); the partial tail chunk is
// re-encoded every save because popFree shrinks freeLen without a
// dirty-hook call.
func encodeFreeChunk(c *freeChunk, count int32) []byte {
	e := &chunkEnc{b: make([]byte, 0, 4*count+8)}
	e.u8(chunkKindFree)
	e.uvarint(uint64(count))
	for _, v := range c.ids[:count] {
		e.i32(v)
	}
	return e.b
}

func decodeFreeChunk(data []byte, pageSize int32) ([]int32, error) {
	d := &chunkDec{b: data}
	if k := d.u8(); d.err == nil && k != chunkKindFree {
		return nil, fmt.Errorf("core: chunk kind %d, want free (%d)", k, chunkKindFree)
	}
	n := d.count(int(pageSize))
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = d.i32()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return ids, nil
}

func encodeDictChunk(vals []string) []byte {
	e := &chunkEnc{b: make([]byte, 0, 16*len(vals))}
	e.u8(chunkKindDict)
	e.uvarint(uint64(len(vals)))
	for _, s := range vals {
		e.str(s)
	}
	return e.b
}

func decodeDictChunk(data []byte) ([]string, error) {
	d := &chunkDec{b: data}
	if k := d.u8(); d.err == nil && k != chunkKindDict {
		return nil, fmt.Errorf("core: chunk kind %d, want dict (%d)", k, chunkKindDict)
	}
	n := d.count(len(d.b)) // each entry costs ≥ 1 byte
	vals := make([]string, n)
	for i := range vals {
		vals[i] = d.str()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return vals, nil
}

// --- save / load ----------------------------------------------------------

// chunkRef is one manifest chunk reference plus a way to (re)produce
// its bytes: data is non-nil when serialization already happened (cache
// miss), ser re-serializes on demand (cache hit whose bytes turn out to
// be needed after all — e.g. the chunk store lost the chunk).
type chunkRef struct {
	hash chunkstore.Hash
	data []byte
	ser  func() []byte
}

func (r *chunkRef) bytes() []byte {
	if r.data == nil {
		r.data = r.ser()
	}
	return r.data
}

// collectChunks computes the store's manifest, reading cached chunk
// hashes where the COW layer proves the chunk unchanged and serializing
// (then caching) the rest. The returned refs parallel the manifest's
// chunk references in order.
func (s *Store) collectChunks() (*ChunkManifest, []chunkRef) {
	m := &ChunkManifest{
		PageBits:  s.pageBits,
		LogToPhys: append([]int32(nil), s.logToPhys...),
		PhysToLog: append([]int32(nil), s.physToLog...),
		NodeLen:   s.nodeLen,
		FreeLen:   s.freeLen,
		LiveNodes: s.liveNodes,
	}
	refs := make([]chunkRef, 0, len(s.pages)+len(s.nodes)+len(s.freeChunks)+2)

	add := func(cache *chunkHash, ser func() []byte, list *[]string) {
		ref := chunkRef{ser: ser}
		if cache != nil {
			if h, ok := cache.get(); ok {
				ref.hash = h
			} else {
				ref.data = ser()
				ref.hash = chunkstore.Sum(ref.data)
				cache.set(ref.hash)
			}
		} else {
			ref.data = ser()
			ref.hash = chunkstore.Sum(ref.data)
		}
		*list = append(*list, ref.hash.String())
		refs = append(refs, ref)
	}

	for _, p := range s.pages {
		p := p
		add(&p.hash, func() []byte { return encodePageChunk(p) }, &m.Pages)
	}
	for _, c := range s.nodes {
		c := c
		add(&c.hash, func() []byte { return encodeNodeChunk(c) }, &m.Nodes)
	}
	nFree := int((s.freeLen + s.pageSize - 1) >> s.pageBits)
	for i := 0; i < nFree; i++ {
		c := s.freeChunks[i]
		count := s.pageSize
		cache := &c.hash
		if int32(i+1)<<s.pageBits > s.freeLen {
			// Partial tail: its encoding depends on freeLen, which popFree
			// moves without dirtying — never trust or populate the cache.
			count = s.freeLen & s.pageMask
			cache = nil
		}
		add(cache, func() []byte { return encodeFreeChunk(c, count) }, &m.Free)
	}
	addDict := func(vals []string, list *[]string) {
		for at := 0; at < len(vals); at += dictGroupSize {
			group := vals[at:min(at+dictGroupSize, len(vals))]
			add(nil, func() []byte { return encodeDictChunk(group) }, list)
		}
	}
	addDict(s.qn.NamesList(), &m.Names)
	addDict(s.prop.values(), &m.Props)
	return m, refs
}

// SaveChunked writes the store into cs in content-addressed form and
// returns the manifest describing it. Only chunks cs does not already
// hold are serialized in full and written — after small churn that is
// the dirtied chunks plus the dictionary tails, never the whole
// document. cs is synced before returning, so a caller may durably
// publish the manifest immediately.
//
// Like Save, SaveChunked requires the store to be free of concurrent
// writes; a pinned checkpoint snapshot satisfies that by construction.
func (s *Store) SaveChunked(cs chunkstore.Store) (*ChunkManifest, ChunkSaveStats, error) {
	m, refs := s.collectChunks()
	stats := ChunkSaveStats{ChunksTotal: len(refs)}

	// One existence probe per unique hash (a document full of identical
	// pages — fill pages, say — references one chunk many times).
	firstRef := make(map[chunkstore.Hash]int, len(refs))
	order := make([]chunkstore.Hash, 0, len(refs))
	for i := range refs {
		if _, ok := firstRef[refs[i].hash]; !ok {
			firstRef[refs[i].hash] = i
			order = append(order, refs[i].hash)
		}
	}
	have, err := cs.HasMany(order)
	if err != nil {
		return nil, stats, fmt.Errorf("core: probing chunk store: %w", err)
	}
	for j, h := range order {
		if have[j] {
			continue
		}
		data := refs[firstRef[h]].bytes()
		if err := cs.Put(h, data); err != nil {
			return nil, stats, fmt.Errorf("core: writing chunk %s: %w", h, err)
		}
		stats.ChunksWritten++
		stats.BytesWritten += int64(len(data))
	}
	stats.ChunksReused = stats.ChunksTotal - stats.ChunksWritten
	if err := cs.Sync(); err != nil {
		return nil, stats, fmt.Errorf("core: syncing chunk store: %w", err)
	}
	return m, stats, nil
}

// BuildManifest computes the store's manifest without writing anywhere
// and returns a resolver that serializes any referenced chunk on
// demand. The replication sender uses it to serve a chunked bootstrap
// straight from a pinned snapshot: the manifest ships first, then only
// the chunks the follower asks for — no chunk-store round trip, no GC
// race (the pin freezes every chunk the resolver closes over).
func (s *Store) BuildManifest() (*ChunkManifest, func(chunkstore.Hash) ([]byte, bool)) {
	m, refs := s.collectChunks()
	byHash := make(map[chunkstore.Hash]*chunkRef, len(refs))
	for i := range refs {
		if _, ok := byHash[refs[i].hash]; !ok {
			byHash[refs[i].hash] = &refs[i]
		}
	}
	return m, func(h chunkstore.Hash) ([]byte, bool) {
		r, ok := byHash[h]
		if !ok {
			return nil, false
		}
		return r.bytes(), true
	}
}

// LoadChunked materializes a store from a manifest, fetching every
// referenced chunk from cs. It is Load for the content-addressed
// format: same validation posture (structural checks here, a full
// CheckInvariants pass at the end), and chunk content is verified
// against its name by the chunk store itself, so a torn chunk file
// surfaces as a load error — recovery then degrades to an older image.
//
// Loaded chunks arrive with their content hashes already cached, so the
// first SaveChunked after a load (a follower's post-bootstrap
// checkpoint, a primary's first checkpoint after restart) re-serializes
// nothing that did not change.
func LoadChunked(m *ChunkManifest, cs chunkstore.Store) (*Store, error) {
	if m.PageBits < 3 || m.PageBits > 30 {
		return nil, fmt.Errorf("core: manifest is corrupt: page bits %d out of range [3,30]", m.PageBits)
	}
	pageSize := int32(1) << m.PageBits
	s := &Store{
		pageBits:  m.PageBits,
		pageMask:  pageSize - 1,
		pageSize:  pageSize,
		logToPhys: append([]int32(nil), m.LogToPhys...),
		physToLog: append([]int32(nil), m.PhysToLog...),
		prop:      newPropDict(),
		qn:        xenc.NewQNamePool(),
		liveNodes: m.LiveNodes,
	}
	fetch := func(hexHash string) (chunkstore.Hash, []byte, error) {
		h, err := chunkstore.ParseHash(hexHash)
		if err != nil {
			return h, nil, fmt.Errorf("core: manifest is corrupt: %w", err)
		}
		data, err := cs.Get(h)
		if err != nil {
			return h, nil, fmt.Errorf("core: manifest chunk: %w", err)
		}
		return h, data, nil
	}
	for _, hs := range m.Pages {
		h, data, err := fetch(hs)
		if err != nil {
			return nil, err
		}
		p, err := decodePageChunk(data, pageSize)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s: %w", h, err)
		}
		p.hash.set(h)
		s.pages = append(s.pages, p)
	}
	if m.NodeLen < 0 {
		return nil, fmt.Errorf("core: manifest is corrupt: negative node count %d", m.NodeLen)
	}
	if want := int((m.NodeLen + pageSize - 1) >> m.PageBits); len(m.Nodes) != want {
		return nil, fmt.Errorf("core: manifest is corrupt: %d node chunks for %d ids (want %d)", len(m.Nodes), m.NodeLen, want)
	}
	for _, hs := range m.Nodes {
		h, data, err := fetch(hs)
		if err != nil {
			return nil, err
		}
		c, err := decodeNodeChunk(data, pageSize)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s: %w", h, err)
		}
		c.hash.set(h)
		s.nodes = append(s.nodes, c)
	}
	s.nodeLen = m.NodeLen
	if m.FreeLen < 0 {
		return nil, fmt.Errorf("core: manifest is corrupt: negative free-list depth %d", m.FreeLen)
	}
	if want := int((m.FreeLen + pageSize - 1) >> m.PageBits); len(m.Free) != want {
		return nil, fmt.Errorf("core: manifest is corrupt: %d free chunks for depth %d (want %d)", len(m.Free), m.FreeLen, want)
	}
	for i, hs := range m.Free {
		h, data, err := fetch(hs)
		if err != nil {
			return nil, err
		}
		ids, err := decodeFreeChunk(data, pageSize)
		if err != nil {
			return nil, fmt.Errorf("core: chunk %s: %w", h, err)
		}
		wantCount := pageSize
		full := int32(i+1)<<m.PageBits <= m.FreeLen
		if !full {
			wantCount = m.FreeLen & s.pageMask
		}
		if int32(len(ids)) != wantCount {
			return nil, fmt.Errorf("core: chunk %s: free chunk holds %d ids, manifest implies %d", h, len(ids), wantCount)
		}
		for _, id := range ids {
			if id < 0 || id >= s.nodeLen {
				return nil, fmt.Errorf("core: manifest is corrupt: free node id %d out of range [0,%d)", id, s.nodeLen)
			}
		}
		c := newFreeChunk(int(pageSize))
		copy(c.ids, ids)
		if full {
			c.hash.set(h)
		}
		s.freeChunks = append(s.freeChunks, c)
	}
	s.freeLen = m.FreeLen
	loadDict := func(hashes []string, apply func(string)) error {
		for _, hs := range hashes {
			h, data, err := fetch(hs)
			if err != nil {
				return err
			}
			vals, err := decodeDictChunk(data)
			if err != nil {
				return fmt.Errorf("core: chunk %s: %w", h, err)
			}
			for _, v := range vals {
				apply(v)
			}
		}
		return nil
	}
	if err := loadDict(m.Names, func(v string) { s.qn.Intern(v) }); err != nil {
		return nil, err
	}
	if err := loadDict(m.Props, func(v string) {
		s.prop.ids[v] = int32(len(s.prop.vals))
		s.prop.vals = append(s.prop.vals, v)
	}); err != nil {
		return nil, err
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: manifest state is corrupt: %w", err)
	}
	return s, nil
}
