// Package core implements the paper's contribution: an *updatable*
// pre/size/level XML store (Sections 3–3.2, Figures 4, 6 and 7).
//
// The physical table is pos/size/level: it is divided into logical pages,
// each logical page may contain unused tuples, and new logical pages are
// only ever appended. The pre/size/level view that queries run against is
// the physical table with its pages presented in *logical* order; the
// pageOffset tables (logToPhys / physToLog) carry that order. Because the
// pre column of the view is virtual (a void column — here: the slice
// index), all pre numbers after an insert point shift "at no update cost
// at all" when a page is spliced into the logical order.
//
// Every node carries an immutable NodeID; the node/pos table translates
// NodeIDs to physical positions, and the attribute table references
// NodeIDs, so attribute rows never need maintenance when tuples move
// (Figure 6). Translating a NodeID to a pre rank is the paper's swizzle:
// a positional lookup in node/pos followed by
// physToLog[pos>>pageBits]<<pageBits | pos&pageMask.
//
// Unused tuples have level == NULL (xenc.LevelUnused) and their size
// column holds the number of directly following consecutive unused tuples
// *within the same logical page*, so scans skip free space in O(1) per
// run and page splices can never corrupt a run.
//
// # Copy-on-write snapshots
//
// All columns are physically chunked per page: the pos/size/level table
// is a slice of *page chunks, and the NodeID-keyed tables (node/pos,
// parent, attributes) are a slice of *nodeChunk chunks of the same
// granularity. Snapshot reproduces Section 3.2's "temporary view backed
// by a copy-on-write memory-map on the base table": it shares every chunk
// between the base store and the snapshot and marks both sides not-owned,
// so taking a snapshot is O(pages), not O(document). Every write path
// funnels through the dirtyPage / dirtyNodeChunk hooks, which privately
// copy a chunk the first time it is written ("only those parts of the
// table that are actually updated get copied" — the base table is never
// altered through a snapshot). A transaction therefore materializes only
// the logical pages it touches, and commit — which replays the
// transaction's operations onto the base — likewise copies only the pages
// it writes, leaving the chunks shared with live snapshots untouched.
// Dropping a snapshot simply drops its private chunks.
//
// The qualified-name pool and the attribute-value dictionary are shared
// between the base and all snapshots (both are append-only and internally
// synchronized); an aborted transaction can leave unreferenced dictionary
// entries behind, which is harmless.
package core

import (
	"fmt"
	"math/bits"
	"sync"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// DefaultPageSize is the logical page size in tuples. The paper sets the
// logical page to the virtual-memory mapping granularity; for an in-Go
// store the tuple count is the tunable that matters (ablation AB2).
const DefaultPageSize = 1024

// DefaultFillFactor is the fraction of each logical page the shredder
// fills; the remainder is left unused for future inserts. The Figure 9
// scenario keeps ~20% of the logical pages unused, i.e. fill factor 0.8.
const DefaultFillFactor = 0.8

// Options configure a paged store at build time.
type Options struct {
	// PageSize is the logical page size in tuples (power of two ≥ 8).
	// 0 means DefaultPageSize.
	PageSize int
	// FillFactor in (0,1] is the fraction of each page the shredder
	// fills. 0 means DefaultFillFactor.
	FillFactor float64
}

func (o Options) withDefaults() (Options, error) {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.FillFactor == 0 {
		o.FillFactor = DefaultFillFactor
	}
	if o.PageSize < 8 || o.PageSize&(o.PageSize-1) != 0 {
		return o, fmt.Errorf("core: page size %d is not a power of two ≥ 8", o.PageSize)
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("core: fill factor %g out of (0,1]", o.FillFactor)
	}
	return o, nil
}

type attrRef struct {
	name int32 // qname id
	val  int32 // prop dictionary id
}

// page is one physical page's worth of the pos/size/level table (plus the
// kind/name/text/node columns). A page chunk shared with a snapshot is
// immutable; writers obtain a private copy through Store.dirtyPage.
type page struct {
	size  []int32
	level []int16
	kind  []uint8
	name  []int32
	text  []string
	node  []int32 // pos -> NodeID (NoNode on unused tuples)
}

func newPage(n int) *page {
	return &page{
		size:  make([]int32, n),
		level: make([]int16, n),
		kind:  make([]uint8, n),
		name:  make([]int32, n),
		text:  make([]string, n),
		node:  make([]int32, n),
	}
}

func (p *page) clone() *page {
	return &page{
		size:  append([]int32(nil), p.size...),
		level: append([]int16(nil), p.level...),
		kind:  append([]uint8(nil), p.kind...),
		name:  append([]int32(nil), p.name...),
		text:  append([]string(nil), p.text...),
		node:  append([]int32(nil), p.node...),
	}
}

// nodeChunk holds one page-sized chunk of the NodeID-keyed tables:
// node/pos, the parent column, and the attribute table (Figure 6). It is
// copy-on-write with the same discipline as page.
type nodeChunk struct {
	pos    []int32     // NodeID -> Pos (-1 when the id is free)
	parent []int32     // NodeID -> parent NodeID (NoNode for a root)
	attrs  [][]attrRef // NodeID -> attribute refs
}

func newNodeChunk(n int) *nodeChunk {
	return &nodeChunk{
		pos:    make([]int32, n),
		parent: make([]int32, n),
		attrs:  make([][]attrRef, n),
	}
}

func (c *nodeChunk) clone() *nodeChunk {
	return &nodeChunk{
		pos:    append([]int32(nil), c.pos...),
		parent: append([]int32(nil), c.parent...),
		attrs:  append([][]attrRef(nil), c.attrs...),
	}
}

// Store is the paged updatable document store.
//
// A Store is safe for concurrent readers. Writes require external
// serialization (the transaction layer provides it); a Store obtained
// from Snapshot may be written by exactly one goroutine, which is what
// isolates a write transaction from the base.
type Store struct {
	pageBits uint
	pageMask int32
	pageSize int32

	// Physical pos/size/level table, chunked per physical page.
	// pageOwned[i] reports whether pages[i] is private to this store;
	// chunks shared with a snapshot are frozen and must be copied via
	// dirtyPage before the first write.
	pages     []*page
	pageOwned []bool

	// pageOffset tables: logical page order over physical pages.
	logToPhys []int32
	physToLog []int32

	// NodeID-keyed tables, chunked at page granularity with the same
	// copy-on-write discipline. nodeLen is the number of NodeIDs ever
	// allocated (the tail of the last chunk is unallocated headroom).
	nodes     []*nodeChunk
	nodeOwned []bool
	nodeLen   int32

	// freeNodes holds recycled NodeIDs. It is shared with snapshots until
	// the first pop/push, which copies it (ownFreeNodes).
	freeNodes    []int32
	ownFreeNodes bool

	// The attribute-value dictionary (Figure 5) and the qualified-name
	// pool are shared between the base and every snapshot: both are
	// append-only and internally synchronized.
	prop *propDict
	qn   *xenc.QNamePool

	liveNodes int
}

// propDict is the attribute-value dictionary. It is append-only and safe
// for concurrent use: the base store and all its snapshots share one
// dictionary (ids handed to an aborted snapshot simply go unreferenced).
type propDict struct {
	mu   sync.RWMutex
	vals []string
	ids  map[string]int32
}

func newPropDict() *propDict { return &propDict{ids: make(map[string]int32)} }

func (d *propDict) put(s string) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

func (d *propDict) get(id int32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[id]
}

// values returns a point-in-time copy of the dictionary contents.
func (d *propDict) values() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.vals...)
}

// Build shreds a tree into a fresh paged store. Each page receives at
// most FillFactor*PageSize nodes; the page tail is left as an unused run.
func Build(t *shred.Tree, opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("core: cannot build a store from an empty tree")
	}
	s := &Store{
		pageBits: uint(bits.TrailingZeros(uint(opts.PageSize))),
		pageMask: int32(opts.PageSize - 1),
		pageSize: int32(opts.PageSize),
		prop:     newPropDict(),
		qn:       xenc.NewQNamePool(),
	}
	s.ownFreeNodes = true
	perPage := int32(float64(opts.PageSize) * opts.FillFactor)
	if perPage < 1 {
		perPage = 1
	}
	n := int32(len(t.Nodes))
	for at := int32(0); at < n; at += perPage {
		chunk := t.Nodes[at:min32(at+perPage, n)]
		pg := s.appendPhysPage()
		s.logToPhys = append(s.logToPhys, pg)
		s.physToLog = append(s.physToLog, int32(len(s.logToPhys)-1))
		base := pg << s.pageBits
		for i := range chunk {
			s.writeNode(base+int32(i), &chunk[i], s.newNodeID())
		}
		s.markFreeRun(base+int32(len(chunk)), base+s.pageSize)
	}
	// Wire parent links from the shredded levels with a stack.
	var stack []xenc.NodeID
	for i := range t.Nodes {
		lvl := int(t.Nodes[i].Level)
		stack = stack[:lvl]
		id := xenc.NodeID(i)
		if lvl == 0 {
			s.setParent(id, xenc.NoNode)
		} else {
			s.setParent(id, stack[lvl-1])
		}
		stack = append(stack, id)
	}
	s.liveNodes = int(n)
	return s, nil
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// --- copy-on-write plumbing ----------------------------------------------

// dirtyPage is the copy-on-write hook of every physical write path: it
// returns a privately owned copy of physical page pg, copying the chunk
// first if it is still shared with the base or a snapshot.
func (s *Store) dirtyPage(pg int32) *page {
	if !s.pageOwned[pg] {
		s.pages[pg] = s.pages[pg].clone()
		s.pageOwned[pg] = true
	}
	return s.pages[pg]
}

// dirtyNodeChunk is dirtyPage for the NodeID-keyed tables.
func (s *Store) dirtyNodeChunk(ch int32) *nodeChunk {
	if !s.nodeOwned[ch] {
		s.nodes[ch] = s.nodes[ch].clone()
		s.nodeOwned[ch] = true
	}
	return s.nodes[ch]
}

// ensureOwnFreeNodes makes the free-node list private before a pop or
// push. Popping from a shared list and pushing again would overwrite the
// shared backing array a snapshot still reads.
func (s *Store) ensureOwnFreeNodes() {
	if !s.ownFreeNodes {
		s.freeNodes = append([]int32(nil), s.freeNodes...)
		s.ownFreeNodes = true
	}
}

// --- raw column access ----------------------------------------------------

func (s *Store) sizeAt(pos int32) int32  { return s.pages[pos>>s.pageBits].size[pos&s.pageMask] }
func (s *Store) levelAt(pos int32) int16 { return s.pages[pos>>s.pageBits].level[pos&s.pageMask] }
func (s *Store) kindAt(pos int32) uint8  { return s.pages[pos>>s.pageBits].kind[pos&s.pageMask] }
func (s *Store) nameAt(pos int32) int32  { return s.pages[pos>>s.pageBits].name[pos&s.pageMask] }
func (s *Store) textAt(pos int32) string { return s.pages[pos>>s.pageBits].text[pos&s.pageMask] }
func (s *Store) nodeAt(pos int32) int32  { return s.pages[pos>>s.pageBits].node[pos&s.pageMask] }

// posOf returns the physical position of a node id (-1 when free).
func (s *Store) posOf(id xenc.NodeID) int32 {
	return s.nodes[id>>s.pageBits].pos[id&s.pageMask]
}

func (s *Store) setPos(id xenc.NodeID, pos int32) {
	s.dirtyNodeChunk(id >> s.pageBits).pos[id&s.pageMask] = pos
}

// parentOf returns the parent node id (NoNode for roots).
func (s *Store) parentOf(id xenc.NodeID) xenc.NodeID {
	return s.nodes[id>>s.pageBits].parent[id&s.pageMask]
}

func (s *Store) setParent(id, parent xenc.NodeID) {
	s.dirtyNodeChunk(id >> s.pageBits).parent[id&s.pageMask] = parent
}

// attrRefs is the positional join into the attribute table. The returned
// slice may be shared with snapshots and must not be mutated in place.
func (s *Store) attrRefs(id xenc.NodeID) []attrRef {
	if id < 0 || id >= s.nodeLen {
		return nil
	}
	return s.nodes[id>>s.pageBits].attrs[id&s.pageMask]
}

func (s *Store) setAttrs(id xenc.NodeID, refs []attrRef) {
	s.dirtyNodeChunk(id >> s.pageBits).attrs[id&s.pageMask] = refs
}

// appendPhysPage grows the physical table by one (privately owned) page
// and returns the new physical page number.
func (s *Store) appendPhysPage() int32 {
	pg := int32(len(s.pages))
	s.pages = append(s.pages, newPage(int(s.pageSize)))
	s.pageOwned = append(s.pageOwned, true)
	return pg
}

// newNodeID allocates a node id, recycling freed ids first (the paper
// scans for NULL pos values before appending to node/pos).
func (s *Store) newNodeID() xenc.NodeID {
	if n := len(s.freeNodes); n > 0 {
		s.ensureOwnFreeNodes()
		id := s.freeNodes[n-1]
		s.freeNodes = s.freeNodes[:n-1]
		return id
	}
	id := s.nodeLen
	ch := id >> s.pageBits
	if int(ch) == len(s.nodes) {
		s.nodes = append(s.nodes, newNodeChunk(int(s.pageSize)))
		s.nodeOwned = append(s.nodeOwned, true)
	}
	nc := s.dirtyNodeChunk(ch)
	off := id & s.pageMask
	nc.pos[off] = -1
	nc.parent[off] = xenc.NoNode
	nc.attrs[off] = nil
	s.nodeLen++
	return id
}

// writeNode materializes one shredded node at physical position pos.
func (s *Store) writeNode(pos int32, n *shred.Node, id xenc.NodeID) {
	wp := s.dirtyPage(pos >> s.pageBits)
	o := pos & s.pageMask
	wp.size[o] = n.Size
	wp.level[o] = n.Level
	wp.kind[o] = uint8(n.Kind)
	wp.text[o] = n.Value
	wp.node[o] = id
	s.setPos(id, pos)
	switch n.Kind {
	case xenc.KindElem, xenc.KindPI:
		wp.name[o] = s.qn.Intern(n.Name)
	default:
		wp.name[o] = xenc.NoName
	}
	if len(n.Attrs) > 0 {
		refs := make([]attrRef, len(n.Attrs))
		for i, a := range n.Attrs {
			refs[i] = attrRef{name: s.qn.Intern(a.Name), val: s.prop.put(a.Value)}
		}
		s.setAttrs(id, refs)
	}
}

// markFreeRun marks physical positions [from, to) as one unused run with
// descending run lengths ("size set to unite consecutive space"). Both
// bounds must lie within a single physical page.
func (s *Store) markFreeRun(from, to int32) {
	if from >= to {
		return
	}
	wp := s.dirtyPage(from >> s.pageBits)
	for pos := from; pos < to; pos++ {
		o := pos & s.pageMask
		wp.level[o] = xenc.LevelUnused
		wp.size[o] = to - pos - 1
		wp.kind[o] = 0
		wp.name[o] = 0
		wp.text[o] = ""
		wp.node[o] = xenc.NoNode
	}
}

// recomputeFreeRuns rebuilds the free-run lengths of one physical page.
func (s *Store) recomputeFreeRuns(physPage int32) {
	wp := s.dirtyPage(physPage)
	run := int32(0)
	for off := s.pageSize - 1; off >= 0; off-- {
		if wp.level[off] == xenc.LevelUnused {
			wp.size[off] = run
			run++
		} else {
			run = 0
		}
	}
}

// --- DocView -------------------------------------------------------------

// physOf translates a view rank (pre) to a physical position.
func (s *Store) physOf(p xenc.Pre) int32 {
	return s.logToPhys[p>>s.pageBits]<<s.pageBits | p&s.pageMask
}

// preOfPos translates a physical position to its view rank — the paper's
// pageOffset swizzle.
func (s *Store) preOfPos(pos int32) xenc.Pre {
	return s.physToLog[pos>>s.pageBits]<<s.pageBits | pos&s.pageMask
}

// Len returns the view length, including unused tuples.
func (s *Store) Len() xenc.Pre { return int32(len(s.pages)) << s.pageBits }

// LiveNodes returns the number of live nodes.
func (s *Store) LiveNodes() int { return s.liveNodes }

// Size returns the live descendant count (or free-run length) at p.
func (s *Store) Size(p xenc.Pre) xenc.Size { return s.sizeAt(s.physOf(p)) }

// Level returns the depth at p, or xenc.LevelUnused.
func (s *Store) Level(p xenc.Pre) xenc.Level { return s.levelAt(s.physOf(p)) }

// Kind returns the node kind at p.
func (s *Store) Kind(p xenc.Pre) xenc.Kind { return xenc.Kind(s.kindAt(s.physOf(p))) }

// Name returns the interned name id at p.
func (s *Store) Name(p xenc.Pre) int32 { return s.nameAt(s.physOf(p)) }

// Value returns the text content at p.
func (s *Store) Value(p xenc.Pre) string { return s.textAt(s.physOf(p)) }

// NodeOf returns the immutable node id at p.
func (s *Store) NodeOf(p xenc.Pre) xenc.NodeID { return s.nodeAt(s.physOf(p)) }

// PreOf translates a node id to its current view rank.
func (s *Store) PreOf(n xenc.NodeID) xenc.Pre {
	if n < 0 || n >= s.nodeLen {
		return xenc.NoPre
	}
	pos := s.posOf(n)
	if pos < 0 {
		return xenc.NoPre
	}
	return s.preOfPos(pos)
}

// Attrs returns the attributes of the element at p. Note the extra
// node/pos hop the updatable schema pays here, which the paper calls out
// as part of the measured overhead.
func (s *Store) Attrs(p xenc.Pre) []xenc.Attr {
	refs := s.attrRefs(s.NodeOf(p))
	if len(refs) == 0 {
		return nil
	}
	out := make([]xenc.Attr, len(refs))
	for i, r := range refs {
		out[i] = xenc.Attr{Name: r.name, Val: s.prop.get(r.val)}
	}
	return out
}

// AttrValue returns the value of the named attribute of the element at p.
func (s *Store) AttrValue(p xenc.Pre, name int32) (string, bool) {
	for _, r := range s.attrRefs(s.NodeOf(p)) {
		if r.name == name {
			return s.prop.get(r.val), true
		}
	}
	return "", false
}

// Names exposes the document's interned names.
func (s *Store) Names() *xenc.QNamePool { return s.qn }

// Root returns the view rank of the root element.
func (s *Store) Root() xenc.Pre { return xenc.SkipFree(s, 0) }

// Pages returns the number of logical pages.
func (s *Store) Pages() int { return len(s.logToPhys) }

// DirtyPages returns the number of physical page chunks privately owned
// by this store — for a snapshot, the pages its writes have materialized
// so far. It is the observable cost of the copy-on-write protocol.
func (s *Store) DirtyPages() int {
	n := 0
	for _, owned := range s.pageOwned {
		if owned {
			n++
		}
	}
	return n
}

// PhysPage returns the physical page number backing the logical page that
// contains view rank p. Physical page numbers are stable for the lifetime
// of the store — splices only append new physical pages — which is why
// the transaction lock table uses them as lock names.
func (s *Store) PhysPage(p xenc.Pre) int32 { return s.logToPhys[p>>s.pageBits] }

// PageSize returns the logical page size in tuples.
func (s *Store) PageSize() int { return int(s.pageSize) }

var _ xenc.DocView = (*Store)(nil)
