// Package core implements the paper's contribution: an *updatable*
// pre/size/level XML store (Sections 3–3.1, Figures 4, 6 and 7).
//
// The physical table is pos/size/level: it is divided into logical pages,
// each logical page may contain unused tuples, and new logical pages are
// only ever appended. The pre/size/level view that queries run against is
// the physical table with its pages presented in *logical* order; the
// pageOffset tables (logToPhys / physToLog) carry that order. Because the
// pre column of the view is virtual (a void column — here: the slice
// index), all pre numbers after an insert point shift "at no update cost
// at all" when a page is spliced into the logical order.
//
// Every node carries an immutable NodeID; the node/pos table translates
// NodeIDs to physical positions, and the attribute table references
// NodeIDs, so attribute rows never need maintenance when tuples move
// (Figure 6). Translating a NodeID to a pre rank is the paper's swizzle:
// a positional lookup in node/pos followed by
// physToLog[pos>>pageBits]<<pageBits | pos&pageMask.
//
// Unused tuples have level == NULL (xenc.LevelUnused) and their size
// column holds the number of directly following consecutive unused tuples
// *within the same logical page*, so scans skip free space in O(1) per
// run and page splices can never corrupt a run.
package core

import (
	"fmt"
	"math/bits"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// DefaultPageSize is the logical page size in tuples. The paper sets the
// logical page to the virtual-memory mapping granularity; for an in-Go
// store the tuple count is the tunable that matters (ablation AB2).
const DefaultPageSize = 1024

// DefaultFillFactor is the fraction of each logical page the shredder
// fills; the remainder is left unused for future inserts. The Figure 9
// scenario keeps ~20% of the logical pages unused, i.e. fill factor 0.8.
const DefaultFillFactor = 0.8

// Options configure a paged store at build time.
type Options struct {
	// PageSize is the logical page size in tuples (power of two ≥ 8).
	// 0 means DefaultPageSize.
	PageSize int
	// FillFactor in (0,1] is the fraction of each page the shredder
	// fills. 0 means DefaultFillFactor.
	FillFactor float64
}

func (o Options) withDefaults() (Options, error) {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.FillFactor == 0 {
		o.FillFactor = DefaultFillFactor
	}
	if o.PageSize < 8 || o.PageSize&(o.PageSize-1) != 0 {
		return o, fmt.Errorf("core: page size %d is not a power of two ≥ 8", o.PageSize)
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("core: fill factor %g out of (0,1]", o.FillFactor)
	}
	return o, nil
}

type attrRef struct {
	name int32 // qname id
	val  int32 // prop dictionary id
}

// Store is the paged updatable document store.
type Store struct {
	pageBits uint
	pageMask int32
	pageSize int32

	// Physical pos/size/level table (plus kind/name/text/node columns),
	// one flat slice per column, length = pages * pageSize.
	size  []int32
	level []int16
	kind  []uint8
	name  []int32
	text  []string
	node  []int32 // pos -> NodeID (NoNode on unused tuples)

	// pageOffset tables: logical page order over physical pages.
	logToPhys []int32
	physToLog []int32

	// node/pos table: NodeID -> Pos (-1 when the id is free).
	nodePos   []int32
	freeNodes []int32 // recycled NodeIDs

	// parentOf: NodeID -> parent NodeID (NoNode for the root). Updates
	// use it to reach "the list of affected ancestors" in O(depth); the
	// query path never touches it (axes run on the DocView alone, like
	// staircase join does in both schemas).
	parentOf []int32

	// Attribute table, keyed by immutable NodeID (Figure 6), with values
	// dictionary-encoded in prop (Figure 5). The index is positional —
	// attrs[node] is a direct array access, MonetDB's positional join
	// over the void node column — so the only extra cost the updatable
	// schema pays on attribute access is the node/pos hop itself.
	attrs [][]attrRef
	prop  *propDict

	qn        *xenc.QNamePool
	liveNodes int
}

// propDict wraps the attribute-value dictionary so the zero Store is
// obviously invalid (construction goes through Build).
type propDict struct {
	vals []string
	ids  map[string]int32
}

func newPropDict() *propDict { return &propDict{ids: make(map[string]int32)} }

func (d *propDict) put(s string) int32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

func (d *propDict) get(id int32) string { return d.vals[id] }

// Build shreds a tree into a fresh paged store. Each page receives at
// most FillFactor*PageSize nodes; the page tail is left as an unused run.
func Build(t *shred.Tree, opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("core: cannot build a store from an empty tree")
	}
	s := &Store{
		pageBits: uint(bits.TrailingZeros(uint(opts.PageSize))),
		pageMask: int32(opts.PageSize - 1),
		pageSize: int32(opts.PageSize),
		prop:     newPropDict(),
		qn:       xenc.NewQNamePool(),
	}
	perPage := int32(float64(opts.PageSize) * opts.FillFactor)
	if perPage < 1 {
		perPage = 1
	}
	n := int32(len(t.Nodes))
	for at := int32(0); at < n; at += perPage {
		chunk := t.Nodes[at:min32(at+perPage, n)]
		pg := s.appendPhysPage()
		s.logToPhys = append(s.logToPhys, pg)
		s.physToLog = append(s.physToLog, int32(len(s.logToPhys)-1))
		base := pg << s.pageBits
		for i := range chunk {
			s.writeNode(base+int32(i), &chunk[i], s.newNodeID())
		}
		s.markFreeRun(base+int32(len(chunk)), base+s.pageSize)
	}
	// Wire parent links from the shredded levels with a stack.
	var stack []xenc.NodeID
	for i := range t.Nodes {
		lvl := int(t.Nodes[i].Level)
		stack = stack[:lvl]
		id := xenc.NodeID(i)
		if lvl == 0 {
			s.parentOf[id] = xenc.NoNode
		} else {
			s.parentOf[id] = stack[lvl-1]
		}
		stack = append(stack, id)
	}
	s.liveNodes = int(n)
	return s, nil
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// appendPhysPage grows every physical column by one page and returns the
// new physical page number.
func (s *Store) appendPhysPage() int32 {
	pg := int32(len(s.size)) >> s.pageBits
	s.size = append(s.size, make([]int32, s.pageSize)...)
	s.level = append(s.level, make([]int16, s.pageSize)...)
	s.kind = append(s.kind, make([]uint8, s.pageSize)...)
	s.name = append(s.name, make([]int32, s.pageSize)...)
	s.text = append(s.text, make([]string, s.pageSize)...)
	s.node = append(s.node, make([]int32, s.pageSize)...)
	return pg
}

// newNodeID allocates a node id, recycling freed ids first (the paper
// scans for NULL pos values before appending to node/pos).
func (s *Store) newNodeID() xenc.NodeID {
	if n := len(s.freeNodes); n > 0 {
		id := s.freeNodes[n-1]
		s.freeNodes = s.freeNodes[:n-1]
		return id
	}
	s.nodePos = append(s.nodePos, -1)
	s.parentOf = append(s.parentOf, xenc.NoNode)
	s.attrs = append(s.attrs, nil)
	return xenc.NodeID(len(s.nodePos) - 1)
}

// writeNode materializes one shredded node at physical position pos.
func (s *Store) writeNode(pos int32, n *shred.Node, id xenc.NodeID) {
	s.size[pos] = n.Size
	s.level[pos] = n.Level
	s.kind[pos] = uint8(n.Kind)
	s.text[pos] = n.Value
	s.node[pos] = id
	s.nodePos[id] = pos
	switch n.Kind {
	case xenc.KindElem, xenc.KindPI:
		s.name[pos] = s.qn.Intern(n.Name)
	default:
		s.name[pos] = xenc.NoName
	}
	if len(n.Attrs) > 0 {
		refs := make([]attrRef, len(n.Attrs))
		for i, a := range n.Attrs {
			refs[i] = attrRef{name: s.qn.Intern(a.Name), val: s.prop.put(a.Value)}
		}
		s.attrs[id] = refs
	}
}

// markFreeRun marks physical positions [from, to) as one unused run with
// descending run lengths ("size set to unite consecutive space"). Both
// bounds must lie within a single physical page.
func (s *Store) markFreeRun(from, to int32) {
	for pos := from; pos < to; pos++ {
		s.level[pos] = xenc.LevelUnused
		s.size[pos] = to - pos - 1
		s.kind[pos] = 0
		s.name[pos] = 0
		s.text[pos] = ""
		s.node[pos] = xenc.NoNode
	}
}

// recomputeFreeRuns rebuilds the free-run lengths of one physical page.
func (s *Store) recomputeFreeRuns(physPage int32) {
	base := physPage << s.pageBits
	run := int32(0)
	for off := s.pageSize - 1; off >= 0; off-- {
		pos := base + off
		if s.level[pos] == xenc.LevelUnused {
			s.size[pos] = run
			run++
		} else {
			run = 0
		}
	}
}

// --- DocView -------------------------------------------------------------

// physOf translates a view rank (pre) to a physical position.
func (s *Store) physOf(p xenc.Pre) int32 {
	return s.logToPhys[p>>s.pageBits]<<s.pageBits | p&s.pageMask
}

// preOfPos translates a physical position to its view rank — the paper's
// pageOffset swizzle.
func (s *Store) preOfPos(pos int32) xenc.Pre {
	return s.physToLog[pos>>s.pageBits]<<s.pageBits | pos&s.pageMask
}

// Len returns the view length, including unused tuples.
func (s *Store) Len() xenc.Pre { return int32(len(s.size)) }

// LiveNodes returns the number of live nodes.
func (s *Store) LiveNodes() int { return s.liveNodes }

// Size returns the live descendant count (or free-run length) at p.
func (s *Store) Size(p xenc.Pre) xenc.Size { return s.size[s.physOf(p)] }

// Level returns the depth at p, or xenc.LevelUnused.
func (s *Store) Level(p xenc.Pre) xenc.Level { return s.level[s.physOf(p)] }

// Kind returns the node kind at p.
func (s *Store) Kind(p xenc.Pre) xenc.Kind { return xenc.Kind(s.kind[s.physOf(p)]) }

// Name returns the interned name id at p.
func (s *Store) Name(p xenc.Pre) int32 { return s.name[s.physOf(p)] }

// Value returns the text content at p.
func (s *Store) Value(p xenc.Pre) string { return s.text[s.physOf(p)] }

// NodeOf returns the immutable node id at p.
func (s *Store) NodeOf(p xenc.Pre) xenc.NodeID { return s.node[s.physOf(p)] }

// PreOf translates a node id to its current view rank.
func (s *Store) PreOf(n xenc.NodeID) xenc.Pre {
	if n < 0 || int(n) >= len(s.nodePos) {
		return xenc.NoPre
	}
	pos := s.nodePos[n]
	if pos < 0 {
		return xenc.NoPre
	}
	return s.preOfPos(pos)
}

// Attrs returns the attributes of the element at p. Note the extra
// node/pos hop the updatable schema pays here, which the paper calls out
// as part of the measured overhead.
func (s *Store) Attrs(p xenc.Pre) []xenc.Attr {
	refs := s.attrRefs(s.NodeOf(p))
	if len(refs) == 0 {
		return nil
	}
	out := make([]xenc.Attr, len(refs))
	for i, r := range refs {
		out[i] = xenc.Attr{Name: r.name, Val: s.prop.get(r.val)}
	}
	return out
}

// AttrValue returns the value of the named attribute of the element at p.
func (s *Store) AttrValue(p xenc.Pre, name int32) (string, bool) {
	for _, r := range s.attrRefs(s.NodeOf(p)) {
		if r.name == name {
			return s.prop.get(r.val), true
		}
	}
	return "", false
}

// attrRefs is the positional join into the attribute table.
func (s *Store) attrRefs(id xenc.NodeID) []attrRef {
	if id < 0 || int(id) >= len(s.attrs) {
		return nil
	}
	return s.attrs[id]
}

// Names exposes the document's interned names.
func (s *Store) Names() *xenc.QNamePool { return s.qn }

// Root returns the view rank of the root element.
func (s *Store) Root() xenc.Pre { return xenc.SkipFree(s, 0) }

// Pages returns the number of logical pages.
func (s *Store) Pages() int { return len(s.logToPhys) }

// PhysPage returns the physical page number backing the logical page that
// contains view rank p. Physical page numbers are stable for the lifetime
// of the store — splices only append new physical pages — which is why
// the transaction lock table uses them as lock names.
func (s *Store) PhysPage(p xenc.Pre) int32 { return s.logToPhys[p>>s.pageBits] }

// PageSize returns the logical page size in tuples.
func (s *Store) PageSize() int { return int(s.pageSize) }

var _ xenc.DocView = (*Store)(nil)
