// Package core implements the paper's contribution: an *updatable*
// pre/size/level XML store (Sections 3–3.2, Figures 4, 6 and 7).
//
// The physical table is pos/size/level: it is divided into logical pages,
// each logical page may contain unused tuples, and new logical pages are
// only ever appended. The pre/size/level view that queries run against is
// the physical table with its pages presented in *logical* order; the
// pageOffset tables (logToPhys / physToLog) carry that order. Because the
// pre column of the view is virtual (a void column — here: the slice
// index), all pre numbers after an insert point shift "at no update cost
// at all" when a page is spliced into the logical order.
//
// Every node carries an immutable NodeID; the node/pos table translates
// NodeIDs to physical positions, and the attribute table references
// NodeIDs, so attribute rows never need maintenance when tuples move
// (Figure 6). Translating a NodeID to a pre rank is the paper's swizzle:
// a positional lookup in node/pos followed by
// physToLog[pos>>pageBits]<<pageBits | pos&pageMask.
//
// Unused tuples have level == NULL (xenc.LevelUnused) and their size
// column holds the number of directly following consecutive unused tuples
// *within the same logical page*, so scans skip free space in O(1) per
// run and page splices can never corrupt a run.
//
// # Copy-on-write snapshots
//
// All columns are physically chunked per page: the pos/size/level table
// is a slice of *page chunks, and the NodeID-keyed tables (node/pos,
// parent, attributes) and the recycled-NodeID stack are chunks of the
// same granularity. Snapshot reproduces Section 3.2's "temporary view
// backed by a copy-on-write memory-map on the base table": it shares
// every chunk between the base store and the snapshot by bumping each
// chunk's reference count, so taking a snapshot is O(pages), not
// O(document), and never mutates base-private state. Every write path
// funnels through the dirtyPage / dirtyNodeChunk / dirtyFreeChunk hooks,
// which privately copy a chunk the first time it is written while shared
// (refs > 1) — "only those parts of the table that are actually updated
// get copied"; the base table is never altered through a snapshot. A
// transaction therefore materializes only the logical pages it touches,
// and commit — which replays the transaction's operations onto the base
// — likewise copies only the pages it writes, leaving the chunks shared
// with live snapshots untouched. Releasing a snapshot (Store.Release)
// decrements its chunks' reference counts; once a chunk's last sharer is
// gone, the surviving owner writes it in place again, so a snapshot's
// lifetime cost is bounded by the pages dirtied while it was live.
//
// The qualified-name pool and the attribute-value dictionary are shared
// between the base and all snapshots (both are append-only and internally
// synchronized); an aborted transaction can leave unreferenced dictionary
// entries behind, which CompactDictionaries reclaims offline the way
// Compact reclaims dead pages.
package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// DefaultPageSize is the logical page size in tuples. The paper sets the
// logical page to the virtual-memory mapping granularity; for an in-Go
// store the tuple count is the tunable that matters (ablation AB2).
const DefaultPageSize = 1024

// DefaultFillFactor is the fraction of each logical page the shredder
// fills; the remainder is left unused for future inserts. The Figure 9
// scenario keeps ~20% of the logical pages unused, i.e. fill factor 0.8.
const DefaultFillFactor = 0.8

// Options configure a paged store at build time.
type Options struct {
	// PageSize is the logical page size in tuples (power of two ≥ 8).
	// 0 means DefaultPageSize.
	PageSize int
	// FillFactor in (0,1] is the fraction of each page the shredder
	// fills. 0 means DefaultFillFactor.
	FillFactor float64
}

func (o Options) withDefaults() (Options, error) {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if o.FillFactor == 0 {
		o.FillFactor = DefaultFillFactor
	}
	if o.PageSize < 8 || o.PageSize&(o.PageSize-1) != 0 {
		return o, fmt.Errorf("core: page size %d is not a power of two ≥ 8", o.PageSize)
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("core: fill factor %g out of (0,1]", o.FillFactor)
	}
	return o, nil
}

type attrRef struct {
	name int32 // qname id
	val  int32 // prop dictionary id
}

// page is one physical page's worth of the pos/size/level table (plus the
// kind/name/text/node columns).
//
// refs counts the stores referencing the chunk (the base plus every live
// snapshot sharing it). A chunk with refs == 1 is exclusively owned and
// may be written in place; a shared chunk (refs > 1) is immutable, and
// writers obtain a private copy through Store.dirtyPage, dropping their
// reference to the shared original. Store.Release decrements the refs of
// every chunk a snapshot holds, so once the last sharer is gone the
// remaining owner writes the chunk in place again — a cached snapshot
// that survives many commits therefore costs O(pages dirtied while it
// was live), never a permanent copy-on-every-write tax.
type page struct {
	refs  atomic.Int32
	hash  chunkHash // content address of the serialized chunk (see chunked.go)
	size  []int32
	level []int16
	kind  []uint8
	name  []int32
	text  []string
	node  []int32 // pos -> NodeID (NoNode on unused tuples)
}

func newPage(n int) *page {
	p := &page{
		size:  make([]int32, n),
		level: make([]int16, n),
		kind:  make([]uint8, n),
		name:  make([]int32, n),
		text:  make([]string, n),
		node:  make([]int32, n),
	}
	p.refs.Store(1)
	return p
}

func (p *page) clone() *page {
	c := &page{
		size:  append([]int32(nil), p.size...),
		level: append([]int16(nil), p.level...),
		kind:  append([]uint8(nil), p.kind...),
		name:  append([]int32(nil), p.name...),
		text:  append([]string(nil), p.text...),
		node:  append([]int32(nil), p.node...),
	}
	c.refs.Store(1)
	return c
}

// nodeChunk holds one page-sized chunk of the NodeID-keyed tables:
// node/pos, the parent column, and the attribute table (Figure 6). It is
// copy-on-write with the same refcount discipline as page.
type nodeChunk struct {
	refs   atomic.Int32
	hash   chunkHash
	pos    []int32     // NodeID -> Pos (-1 when the id is free)
	parent []int32     // NodeID -> parent NodeID (NoNode for a root)
	attrs  [][]attrRef // NodeID -> attribute refs
}

func newNodeChunk(n int) *nodeChunk {
	c := &nodeChunk{
		pos:    make([]int32, n),
		parent: make([]int32, n),
		attrs:  make([][]attrRef, n),
	}
	c.refs.Store(1)
	return c
}

func (c *nodeChunk) clone() *nodeChunk {
	n := &nodeChunk{
		pos:    append([]int32(nil), c.pos...),
		parent: append([]int32(nil), c.parent...),
		attrs:  append([][]attrRef(nil), c.attrs...),
	}
	n.refs.Store(1)
	return n
}

// freeChunk is one page-sized chunk of the recycled-NodeID stack, with
// the same copy-on-write refcount discipline as page. Chunking the free
// list bounds the cost of the first free-list mutation after a snapshot
// to one chunk, where a flat slice was once copied wholesale — the cost
// that used to make a 1-node transaction O(deleted nodes) after heavy
// deletes.
type freeChunk struct {
	refs atomic.Int32
	hash chunkHash
	ids  []int32
}

func newFreeChunk(n int) *freeChunk {
	c := &freeChunk{ids: make([]int32, n)}
	c.refs.Store(1)
	return c
}

func (c *freeChunk) clone() *freeChunk {
	n := &freeChunk{ids: append([]int32(nil), c.ids...)}
	n.refs.Store(1)
	return n
}

// Store is the paged updatable document store.
//
// A Store is safe for concurrent readers. Writes require external
// serialization (the transaction layer provides it); a Store obtained
// from Snapshot may be written by exactly one goroutine, which is what
// isolates a write transaction from the base.
type Store struct {
	pageBits uint
	pageMask int32
	pageSize int32

	// Physical pos/size/level table, chunked per physical page. A chunk
	// with refs == 1 is private to this store; shared chunks (refs > 1)
	// are frozen and must be copied via dirtyPage before the first write.
	pages []*page

	// pageOffset tables: logical page order over physical pages.
	logToPhys []int32
	physToLog []int32

	// NodeID-keyed tables, chunked at page granularity with the same
	// copy-on-write discipline. nodeLen is the number of NodeIDs ever
	// allocated (the tail of the last chunk is unallocated headroom).
	nodes   []*nodeChunk
	nodeLen int32

	// The recycled-NodeID stack, chunked at page granularity. freeLen is
	// the stack depth; popping only reads (the slot above freeLen is dead
	// to this store), so it never copies, while pushing dirties exactly
	// the tail chunk.
	freeChunks []*freeChunk
	freeLen    int32

	// The attribute-value dictionary (Figure 5) and the qualified-name
	// pool are shared between the base and every snapshot: both are
	// append-only and internally synchronized.
	prop *propDict
	qn   *xenc.QNamePool

	liveNodes int
}

// propDict is the attribute-value dictionary. It is append-only and safe
// for concurrent use: the base store and all its snapshots share one
// dictionary (ids handed to an aborted snapshot simply go unreferenced).
type propDict struct {
	mu   sync.RWMutex
	vals []string
	ids  map[string]int32
}

func newPropDict() *propDict { return &propDict{ids: make(map[string]int32)} }

func (d *propDict) put(s string) int32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

func (d *propDict) get(id int32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[id]
}

// count returns the number of dictionary entries.
func (d *propDict) count() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// values returns a point-in-time copy of the dictionary contents.
func (d *propDict) values() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.vals...)
}

// Build shreds a tree into a fresh paged store. Each page receives at
// most FillFactor*PageSize nodes; the page tail is left as an unused run.
func Build(t *shred.Tree, opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("core: cannot build a store from an empty tree")
	}
	s := &Store{
		pageBits: uint(bits.TrailingZeros(uint(opts.PageSize))),
		pageMask: int32(opts.PageSize - 1),
		pageSize: int32(opts.PageSize),
		prop:     newPropDict(),
		qn:       xenc.NewQNamePool(),
	}
	perPage := int32(float64(opts.PageSize) * opts.FillFactor)
	if perPage < 1 {
		perPage = 1
	}
	n := int32(len(t.Nodes))
	for at := int32(0); at < n; at += perPage {
		chunk := t.Nodes[at:min32(at+perPage, n)]
		pg := s.appendPhysPage()
		s.logToPhys = append(s.logToPhys, pg)
		s.physToLog = append(s.physToLog, int32(len(s.logToPhys)-1))
		base := pg << s.pageBits
		for i := range chunk {
			s.writeNode(base+int32(i), &chunk[i], s.newNodeID())
		}
		s.markFreeRun(base+int32(len(chunk)), base+s.pageSize)
	}
	// Wire parent links from the shredded levels with a stack.
	var stack []xenc.NodeID
	for i := range t.Nodes {
		lvl := int(t.Nodes[i].Level)
		stack = stack[:lvl]
		id := xenc.NodeID(i)
		if lvl == 0 {
			s.setParent(id, xenc.NoNode)
		} else {
			s.setParent(id, stack[lvl-1])
		}
		stack = append(stack, id)
	}
	s.liveNodes = int(n)
	return s, nil
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// --- copy-on-write plumbing ----------------------------------------------

// dirtyPage is the copy-on-write hook of every physical write path: it
// returns a privately owned copy of physical page pg, copying the chunk
// first if it is still shared with the base or a snapshot (refs > 1) and
// dropping this store's reference to the shared original.
func (s *Store) dirtyPage(pg int32) *page {
	p := s.pages[pg]
	if p.refs.Load() != 1 {
		c := p.clone()
		p.refs.Add(-1)
		s.pages[pg] = c
		p = c
	}
	// The caller is about to write: whatever content hash the chunk had
	// cached no longer describes it. (A clone starts without one; the
	// shared original keeps its — still valid — hash.)
	p.hash.invalidate()
	return p
}

// dirtyNodeChunk is dirtyPage for the NodeID-keyed tables.
func (s *Store) dirtyNodeChunk(ch int32) *nodeChunk {
	c := s.nodes[ch]
	if c.refs.Load() != 1 {
		n := c.clone()
		c.refs.Add(-1)
		s.nodes[ch] = n
		c = n
	}
	c.hash.invalidate()
	return c
}

// dirtyFreeChunk is dirtyPage for the recycled-NodeID stack.
func (s *Store) dirtyFreeChunk(ch int32) *freeChunk {
	c := s.freeChunks[ch]
	if c.refs.Load() != 1 {
		n := c.clone()
		c.refs.Add(-1)
		s.freeChunks[ch] = n
		c = n
	}
	c.hash.invalidate()
	return c
}

// pushFree records a recycled NodeID. Only the tail chunk is dirtied, so
// the first free-list mutation after a snapshot costs one chunk copy no
// matter how deep the stack is.
func (s *Store) pushFree(id int32) {
	ch := s.freeLen >> s.pageBits
	if int(ch) == len(s.freeChunks) {
		s.freeChunks = append(s.freeChunks, newFreeChunk(int(s.pageSize)))
	}
	s.dirtyFreeChunk(ch).ids[s.freeLen&s.pageMask] = id
	s.freeLen++
}

// popFree takes the most recently recycled NodeID. Popping only reads:
// the slot above the shrunk freeLen is dead to this store, and a later
// push overwriting it goes through dirtyFreeChunk, so snapshots sharing
// the chunk are never disturbed.
func (s *Store) popFree() (int32, bool) {
	if s.freeLen == 0 {
		return 0, false
	}
	s.freeLen--
	return s.freeChunks[s.freeLen>>s.pageBits].ids[s.freeLen&s.pageMask], true
}

// forEachFree visits the recycled NodeIDs (testing and invariant checks).
func (s *Store) forEachFree(fn func(id int32)) {
	for i := int32(0); i < s.freeLen; i++ {
		fn(s.freeChunks[i>>s.pageBits].ids[i&s.pageMask])
	}
}

// Release drops this store's references to every chunk it shares, so the
// remaining owner (typically the base store) regains exclusive ownership
// and writes those chunks in place again instead of copying them. It is
// how a dropped snapshot stops taxing later commits.
//
// Release must be called at most once, and only when no goroutine will
// read the store again (the transaction manager's refcounted read views
// guarantee this for cached snapshots). It is safe to call concurrently
// with reads and writes of *other* stores sharing the same chunks. The
// store is unusable afterwards.
func (s *Store) Release() {
	for _, p := range s.pages {
		p.refs.Add(-1)
	}
	for _, c := range s.nodes {
		c.refs.Add(-1)
	}
	for _, c := range s.freeChunks {
		c.refs.Add(-1)
	}
	s.pages, s.nodes, s.freeChunks = nil, nil, nil
	s.logToPhys, s.physToLog = nil, nil
	s.nodeLen, s.freeLen, s.liveNodes = 0, 0, 0
}

// --- raw column access ----------------------------------------------------

func (s *Store) sizeAt(pos int32) int32  { return s.pages[pos>>s.pageBits].size[pos&s.pageMask] }
func (s *Store) levelAt(pos int32) int16 { return s.pages[pos>>s.pageBits].level[pos&s.pageMask] }
func (s *Store) kindAt(pos int32) uint8  { return s.pages[pos>>s.pageBits].kind[pos&s.pageMask] }
func (s *Store) nameAt(pos int32) int32  { return s.pages[pos>>s.pageBits].name[pos&s.pageMask] }
func (s *Store) textAt(pos int32) string { return s.pages[pos>>s.pageBits].text[pos&s.pageMask] }
func (s *Store) nodeAt(pos int32) int32  { return s.pages[pos>>s.pageBits].node[pos&s.pageMask] }

// posOf returns the physical position of a node id (-1 when free).
func (s *Store) posOf(id xenc.NodeID) int32 {
	return s.nodes[id>>s.pageBits].pos[id&s.pageMask]
}

func (s *Store) setPos(id xenc.NodeID, pos int32) {
	s.dirtyNodeChunk(id >> s.pageBits).pos[id&s.pageMask] = pos
}

// parentOf returns the parent node id (NoNode for roots).
func (s *Store) parentOf(id xenc.NodeID) xenc.NodeID {
	return s.nodes[id>>s.pageBits].parent[id&s.pageMask]
}

func (s *Store) setParent(id, parent xenc.NodeID) {
	s.dirtyNodeChunk(id >> s.pageBits).parent[id&s.pageMask] = parent
}

// attrRefs is the positional join into the attribute table. The returned
// slice may be shared with snapshots and must not be mutated in place.
func (s *Store) attrRefs(id xenc.NodeID) []attrRef {
	if id < 0 || id >= s.nodeLen {
		return nil
	}
	return s.nodes[id>>s.pageBits].attrs[id&s.pageMask]
}

func (s *Store) setAttrs(id xenc.NodeID, refs []attrRef) {
	s.dirtyNodeChunk(id >> s.pageBits).attrs[id&s.pageMask] = refs
}

// appendPhysPage grows the physical table by one (privately owned) page
// and returns the new physical page number.
func (s *Store) appendPhysPage() int32 {
	pg := int32(len(s.pages))
	s.pages = append(s.pages, newPage(int(s.pageSize)))
	return pg
}

// newNodeID allocates a node id, recycling freed ids first (the paper
// scans for NULL pos values before appending to node/pos).
func (s *Store) newNodeID() xenc.NodeID {
	if id, ok := s.popFree(); ok {
		return id
	}
	id := s.nodeLen
	ch := id >> s.pageBits
	if int(ch) == len(s.nodes) {
		s.nodes = append(s.nodes, newNodeChunk(int(s.pageSize)))
	}
	nc := s.dirtyNodeChunk(ch)
	off := id & s.pageMask
	nc.pos[off] = -1
	nc.parent[off] = xenc.NoNode
	nc.attrs[off] = nil
	s.nodeLen++
	return id
}

// writeNode materializes one shredded node at physical position pos.
func (s *Store) writeNode(pos int32, n *shred.Node, id xenc.NodeID) {
	wp := s.dirtyPage(pos >> s.pageBits)
	o := pos & s.pageMask
	wp.size[o] = n.Size
	wp.level[o] = n.Level
	wp.kind[o] = uint8(n.Kind)
	wp.text[o] = n.Value
	wp.node[o] = id
	s.setPos(id, pos)
	switch n.Kind {
	case xenc.KindElem, xenc.KindPI:
		wp.name[o] = s.qn.Intern(n.Name)
	default:
		wp.name[o] = xenc.NoName
	}
	if len(n.Attrs) > 0 {
		refs := make([]attrRef, len(n.Attrs))
		for i, a := range n.Attrs {
			refs[i] = attrRef{name: s.qn.Intern(a.Name), val: s.prop.put(a.Value)}
		}
		s.setAttrs(id, refs)
	}
}

// markFreeRun marks physical positions [from, to) as one unused run with
// descending run lengths ("size set to unite consecutive space"). Both
// bounds must lie within a single physical page.
func (s *Store) markFreeRun(from, to int32) {
	if from >= to {
		return
	}
	wp := s.dirtyPage(from >> s.pageBits)
	for pos := from; pos < to; pos++ {
		o := pos & s.pageMask
		wp.level[o] = xenc.LevelUnused
		wp.size[o] = to - pos - 1
		wp.kind[o] = 0
		wp.name[o] = 0
		wp.text[o] = ""
		wp.node[o] = xenc.NoNode
	}
}

// recomputeFreeRuns rebuilds the free-run lengths of one physical page.
func (s *Store) recomputeFreeRuns(physPage int32) {
	wp := s.dirtyPage(physPage)
	run := int32(0)
	for off := s.pageSize - 1; off >= 0; off-- {
		if wp.level[off] == xenc.LevelUnused {
			wp.size[off] = run
			run++
		} else {
			run = 0
		}
	}
}

// --- DocView -------------------------------------------------------------

// physOf translates a view rank (pre) to a physical position.
func (s *Store) physOf(p xenc.Pre) int32 {
	return s.logToPhys[p>>s.pageBits]<<s.pageBits | p&s.pageMask
}

// preOfPos translates a physical position to its view rank — the paper's
// pageOffset swizzle.
func (s *Store) preOfPos(pos int32) xenc.Pre {
	return s.physToLog[pos>>s.pageBits]<<s.pageBits | pos&s.pageMask
}

// Len returns the view length, including unused tuples.
func (s *Store) Len() xenc.Pre { return int32(len(s.pages)) << s.pageBits }

// LiveNodes returns the number of live nodes.
func (s *Store) LiveNodes() int { return s.liveNodes }

// Size returns the live descendant count (or free-run length) at p.
func (s *Store) Size(p xenc.Pre) xenc.Size { return s.sizeAt(s.physOf(p)) }

// Level returns the depth at p, or xenc.LevelUnused.
func (s *Store) Level(p xenc.Pre) xenc.Level { return s.levelAt(s.physOf(p)) }

// Kind returns the node kind at p.
func (s *Store) Kind(p xenc.Pre) xenc.Kind { return xenc.Kind(s.kindAt(s.physOf(p))) }

// Name returns the interned name id at p.
func (s *Store) Name(p xenc.Pre) int32 { return s.nameAt(s.physOf(p)) }

// Value returns the text content at p.
func (s *Store) Value(p xenc.Pre) string { return s.textAt(s.physOf(p)) }

// NodeOf returns the immutable node id at p.
func (s *Store) NodeOf(p xenc.Pre) xenc.NodeID { return s.nodeAt(s.physOf(p)) }

// PreOf translates a node id to its current view rank.
func (s *Store) PreOf(n xenc.NodeID) xenc.Pre {
	if n < 0 || n >= s.nodeLen {
		return xenc.NoPre
	}
	pos := s.posOf(n)
	if pos < 0 {
		return xenc.NoPre
	}
	return s.preOfPos(pos)
}

// Attrs returns the attributes of the element at p. Note the extra
// node/pos hop the updatable schema pays here, which the paper calls out
// as part of the measured overhead.
func (s *Store) Attrs(p xenc.Pre) []xenc.Attr {
	refs := s.attrRefs(s.NodeOf(p))
	if len(refs) == 0 {
		return nil
	}
	out := make([]xenc.Attr, len(refs))
	for i, r := range refs {
		out[i] = xenc.Attr{Name: r.name, Val: s.prop.get(r.val)}
	}
	return out
}

// AttrValue returns the value of the named attribute of the element at p.
func (s *Store) AttrValue(p xenc.Pre, name int32) (string, bool) {
	for _, r := range s.attrRefs(s.NodeOf(p)) {
		if r.name == name {
			return s.prop.get(r.val), true
		}
	}
	return "", false
}

// Names exposes the document's interned names.
func (s *Store) Names() *xenc.QNamePool { return s.qn }

// Root returns the view rank of the root element.
func (s *Store) Root() xenc.Pre { return xenc.SkipFree(s, 0) }

// Pages returns the number of logical pages.
func (s *Store) Pages() int { return len(s.logToPhys) }

// DirtyPages returns the number of physical page chunks exclusively
// owned by this store (refs == 1) — for a fresh snapshot, the pages its
// writes have materialized so far. It is the observable cost of the
// copy-on-write protocol. Note that ownership also returns when the
// *other* sharers release their references: once every snapshot sharing
// a chunk is dropped, the chunk counts as this store's again.
func (s *Store) DirtyPages() int {
	n := 0
	for _, p := range s.pages {
		if p.refs.Load() == 1 {
			n++
		}
	}
	return n
}

// FreeListStats reports the recycled-NodeID stack's depth, its chunk
// count, and how many of those chunks this store owns exclusively — the
// observable cost of free-list copy-on-write (testing hook).
func (s *Store) FreeListStats() (ids, chunks, ownedChunks int) {
	for _, c := range s.freeChunks {
		if c.refs.Load() == 1 {
			ownedChunks++
		}
	}
	return int(s.freeLen), len(s.freeChunks), ownedChunks
}

// PhysPage returns the physical page number backing the logical page that
// contains view rank p. Physical page numbers are stable for the lifetime
// of the store — splices only append new physical pages — which is why
// the transaction lock table uses them as lock names.
func (s *Store) PhysPage(p xenc.Pre) int32 { return s.logToPhys[p>>s.pageBits] }

// PageSize returns the logical page size in tuples.
func (s *Store) PageSize() int { return int(s.pageSize) }

var _ xenc.DocView = (*Store)(nil)
