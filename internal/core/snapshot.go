package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mxq/internal/xenc"
)

// Clone returns a deep copy of the store. Transactions clone the base
// store on their first write: this plays the role of the copy-on-write
// memory-mapped view of Section 3.2 ("create a temporary view backed by a
// copy-on-write memory-map on the base table... the base table is never
// altered"), giving the writer a private image to update while readers
// keep using the base.
func (s *Store) Clone() *Store {
	c := &Store{
		pageBits:  s.pageBits,
		pageMask:  s.pageMask,
		pageSize:  s.pageSize,
		size:      append([]int32(nil), s.size...),
		level:     append([]int16(nil), s.level...),
		kind:      append([]uint8(nil), s.kind...),
		name:      append([]int32(nil), s.name...),
		text:      append([]string(nil), s.text...),
		node:      append([]int32(nil), s.node...),
		logToPhys: append([]int32(nil), s.logToPhys...),
		physToLog: append([]int32(nil), s.physToLog...),
		nodePos:   append([]int32(nil), s.nodePos...),
		freeNodes: append([]int32(nil), s.freeNodes...),
		parentOf:  append([]int32(nil), s.parentOf...),
		attrs:     make([][]attrRef, len(s.attrs)),
		prop: &propDict{
			vals: append([]string(nil), s.prop.vals...),
			ids:  make(map[string]int32, len(s.prop.ids)),
		},
		qn:        s.qn.Clone(),
		liveNodes: s.liveNodes,
	}
	for id, refs := range s.attrs {
		if len(refs) > 0 {
			c.attrs[id] = append([]attrRef(nil), refs...)
		}
	}
	for k, v := range s.prop.ids {
		c.prop.ids[k] = v
	}
	return c
}

// snapshot is the gob wire form of a store.
type snapshot struct {
	PageBits  uint
	Size      []int32
	Level     []int16
	Kind      []uint8
	Name      []int32
	Text      []string
	Node      []int32
	LogToPhys []int32
	PhysToLog []int32
	NodePos   []int32
	FreeNodes []int32
	ParentOf  []int32
	AttrKeys  []int32
	AttrVals  [][]int32 // name/val id pairs, flattened per owner
	PropVals  []string
	Names     []string
	LiveNodes int
}

// Save writes a snapshot of the store (the checkpoint the WAL recovers
// from).
func (s *Store) Save(w io.Writer) error {
	snap := snapshot{
		PageBits:  s.pageBits,
		Size:      s.size,
		Level:     s.level,
		Kind:      s.kind,
		Name:      s.name,
		Text:      s.text,
		Node:      s.node,
		LogToPhys: s.logToPhys,
		PhysToLog: s.physToLog,
		NodePos:   s.nodePos,
		FreeNodes: s.freeNodes,
		ParentOf:  s.parentOf,
		PropVals:  s.prop.vals,
		LiveNodes: s.liveNodes,
	}
	for i := 0; i < s.qn.Len(); i++ {
		snap.Names = append(snap.Names, s.qn.Name(int32(i)))
	}
	for id, refs := range s.attrs {
		if len(refs) == 0 {
			continue
		}
		snap.AttrKeys = append(snap.AttrKeys, int32(id))
		flat := make([]int32, 0, 2*len(refs))
		for _, r := range refs {
			flat = append(flat, r.name, r.val)
		}
		snap.AttrVals = append(snap.AttrVals, flat)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: loading snapshot: %w", err)
	}
	s := &Store{
		pageBits:  snap.PageBits,
		pageMask:  int32(1)<<snap.PageBits - 1,
		pageSize:  int32(1) << snap.PageBits,
		size:      snap.Size,
		level:     snap.Level,
		kind:      snap.Kind,
		name:      snap.Name,
		text:      snap.Text,
		node:      snap.Node,
		logToPhys: snap.LogToPhys,
		physToLog: snap.PhysToLog,
		nodePos:   snap.NodePos,
		freeNodes: snap.FreeNodes,
		parentOf:  snap.ParentOf,
		attrs:     make([][]attrRef, len(snap.NodePos)),
		prop:      newPropDict(),
		qn:        xenc.NewQNamePool(),
		liveNodes: snap.LiveNodes,
	}
	for i, id := range snap.AttrKeys {
		flat := snap.AttrVals[i]
		refs := make([]attrRef, 0, len(flat)/2)
		for j := 0; j+1 < len(flat); j += 2 {
			refs = append(refs, attrRef{name: flat[j], val: flat[j+1]})
		}
		s.attrs[id] = refs
	}
	for i, v := range snap.PropVals {
		s.prop.vals = append(s.prop.vals, v)
		s.prop.ids[v] = int32(i)
	}
	for _, n := range snap.Names {
		s.qn.Intern(n)
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: snapshot is corrupt: %w", err)
	}
	return s, nil
}
