package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mxq/internal/xenc"
)

// Snapshot returns a page-granular copy-on-write snapshot of the store:
// the paper's "temporary view backed by a copy-on-write memory-map on the
// base table" (Section 3.2). The snapshot shares every page chunk, node
// chunk and free-list chunk with the base by incrementing each chunk's
// reference count, so taking it costs O(pages), not O(document).
// Whichever side writes a shared page first (the snapshot through a
// transaction's updates, the base through a later commit) copies just
// that page via the dirty* hooks — "the base table is never altered"
// through the snapshot, and only touched pages are ever materialized.
//
// Snapshot never mutates base-private state (it only performs atomic
// reference-count increments), so any number of snapshots may be taken
// concurrently with each other and with readers; the caller need only
// exclude concurrent *writes* to s (the transaction manager holds its
// shared read lock, which excludes commits). The returned store may be
// read concurrently; writes to it must come from a single goroutine.
// Call Release when the snapshot is no longer needed so the base regains
// exclusive ownership of the shared chunks; an unreleased snapshot keeps
// them copy-on-write forever (the garbage collector still reclaims the
// memory, but later base writes keep paying the copy).
func (s *Store) Snapshot() *Store {
	for _, p := range s.pages {
		p.refs.Add(1)
	}
	for _, c := range s.nodes {
		c.refs.Add(1)
	}
	for _, c := range s.freeChunks {
		c.refs.Add(1)
	}
	return &Store{
		pageBits:   s.pageBits,
		pageMask:   s.pageMask,
		pageSize:   s.pageSize,
		pages:      append([]*page(nil), s.pages...),
		logToPhys:  append([]int32(nil), s.logToPhys...),
		physToLog:  append([]int32(nil), s.physToLog...),
		nodes:      append([]*nodeChunk(nil), s.nodes...),
		nodeLen:    s.nodeLen,
		freeChunks: append([]*freeChunk(nil), s.freeChunks...),
		freeLen:    s.freeLen,
		prop:       s.prop, // shared: append-only, synchronized
		qn:         s.qn,   // shared: append-only, synchronized
		liveNodes:  s.liveNodes,
	}
}

// snapshot is the gob wire form of a store. The wire format flattens the
// page chunks back into one slice per column, so checkpoints written
// before the chunked layout still load.
type snapshot struct {
	PageBits  uint
	Size      []int32
	Level     []int16
	Kind      []uint8
	Name      []int32
	Text      []string
	Node      []int32
	LogToPhys []int32
	PhysToLog []int32
	NodePos   []int32
	FreeNodes []int32
	ParentOf  []int32
	AttrKeys  []int32
	AttrVals  [][]int32 // name/val id pairs, flattened per owner
	PropVals  []string
	Names     []string
	LiveNodes int
}

// Save writes a snapshot of the store (the checkpoint the WAL recovers
// from).
func (s *Store) Save(w io.Writer) error {
	n := int(s.Len())
	snap := snapshot{
		PageBits:  s.pageBits,
		Size:      make([]int32, 0, n),
		Level:     make([]int16, 0, n),
		Kind:      make([]uint8, 0, n),
		Name:      make([]int32, 0, n),
		Text:      make([]string, 0, n),
		Node:      make([]int32, 0, n),
		LogToPhys: s.logToPhys,
		PhysToLog: s.physToLog,
		NodePos:   make([]int32, 0, s.nodeLen),
		FreeNodes: make([]int32, 0, s.freeLen),
		ParentOf:  make([]int32, 0, s.nodeLen),
		PropVals:  s.prop.values(),
		LiveNodes: s.liveNodes,
	}
	s.forEachFree(func(id int32) { snap.FreeNodes = append(snap.FreeNodes, id) })
	for _, pg := range s.pages {
		snap.Size = append(snap.Size, pg.size...)
		snap.Level = append(snap.Level, pg.level...)
		snap.Kind = append(snap.Kind, pg.kind...)
		snap.Name = append(snap.Name, pg.name...)
		snap.Text = append(snap.Text, pg.text...)
		snap.Node = append(snap.Node, pg.node...)
	}
	for id := xenc.NodeID(0); id < s.nodeLen; id++ {
		snap.NodePos = append(snap.NodePos, s.posOf(id))
		snap.ParentOf = append(snap.ParentOf, s.parentOf(id))
	}
	snap.Names = s.qn.NamesList()
	for id := xenc.NodeID(0); id < s.nodeLen; id++ {
		refs := s.attrRefs(id)
		if len(refs) == 0 {
			continue
		}
		snap.AttrKeys = append(snap.AttrKeys, id)
		flat := make([]int32, 0, 2*len(refs))
		for _, r := range refs {
			flat = append(flat, r.name, r.val)
		}
		snap.AttrVals = append(snap.AttrVals, flat)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: loading snapshot: %w", err)
	}
	// Page size must be a power of two in [8, 2^30] (Options enforces the
	// lower bound at build time); anything else is corruption, and an
	// oversized PageBits would make the chunking arithmetic below loop
	// forever on a zero page size.
	if snap.PageBits < 3 || snap.PageBits > 30 {
		return nil, fmt.Errorf("core: snapshot is corrupt: page bits %d out of range [3,30]", snap.PageBits)
	}
	pageSize := int32(1) << snap.PageBits
	s := &Store{
		pageBits:  snap.PageBits,
		pageMask:  pageSize - 1,
		pageSize:  pageSize,
		logToPhys: snap.LogToPhys,
		physToLog: snap.PhysToLog,
		prop:      newPropDict(),
		qn:        xenc.NewQNamePool(),
		liveNodes: snap.LiveNodes,
	}
	if int32(len(snap.Size))&s.pageMask != 0 {
		return nil, fmt.Errorf("core: snapshot is corrupt: %d tuples is not a whole number of %d-tuple pages", len(snap.Size), pageSize)
	}
	if len(snap.Level) != len(snap.Size) || len(snap.Kind) != len(snap.Size) ||
		len(snap.Name) != len(snap.Size) || len(snap.Text) != len(snap.Size) ||
		len(snap.Node) != len(snap.Size) {
		return nil, fmt.Errorf("core: snapshot is corrupt: ragged columns (%d/%d/%d/%d/%d/%d tuples)",
			len(snap.Size), len(snap.Level), len(snap.Kind), len(snap.Name), len(snap.Text), len(snap.Node))
	}
	if len(snap.ParentOf) != len(snap.NodePos) {
		return nil, fmt.Errorf("core: snapshot is corrupt: node/pos holds %d ids, parent column %d", len(snap.NodePos), len(snap.ParentOf))
	}
	for base := 0; base < len(snap.Size); base += int(pageSize) {
		end := base + int(pageSize)
		// Copy each range into per-page arrays rather than subslicing the
		// decoded columns: a chunk that later survives COW divergence must
		// not pin the whole flat document-sized array behind it.
		pg := newPage(int(pageSize))
		copy(pg.size, snap.Size[base:end])
		copy(pg.level, snap.Level[base:end])
		copy(pg.kind, snap.Kind[base:end])
		copy(pg.name, snap.Name[base:end])
		copy(pg.text, snap.Text[base:end])
		copy(pg.node, snap.Node[base:end])
		s.pages = append(s.pages, pg)
	}
	s.nodeLen = int32(len(snap.NodePos))
	for base := int32(0); base < s.nodeLen; base += pageSize {
		nc := newNodeChunk(int(pageSize))
		copy(nc.pos, snap.NodePos[base:min32(base+pageSize, s.nodeLen)])
		copy(nc.parent, snap.ParentOf[base:min32(base+pageSize, s.nodeLen)])
		s.nodes = append(s.nodes, nc)
	}
	for _, id := range snap.FreeNodes {
		if id < 0 || id >= s.nodeLen {
			return nil, fmt.Errorf("core: snapshot is corrupt: free node id %d out of range [0,%d)", id, s.nodeLen)
		}
		s.pushFree(id)
	}
	if len(snap.AttrVals) != len(snap.AttrKeys) {
		return nil, fmt.Errorf("core: snapshot is corrupt: %d attribute owners, %d value lists", len(snap.AttrKeys), len(snap.AttrVals))
	}
	for i, id := range snap.AttrKeys {
		if id < 0 || id >= s.nodeLen {
			return nil, fmt.Errorf("core: snapshot is corrupt: attribute owner %d out of range [0,%d)", id, s.nodeLen)
		}
		flat := snap.AttrVals[i]
		refs := make([]attrRef, 0, len(flat)/2)
		for j := 0; j+1 < len(flat); j += 2 {
			refs = append(refs, attrRef{name: flat[j], val: flat[j+1]})
		}
		s.setAttrs(id, refs)
	}
	for i, v := range snap.PropVals {
		s.prop.vals = append(s.prop.vals, v)
		s.prop.ids[v] = int32(i)
	}
	for _, n := range snap.Names {
		s.qn.Intern(n)
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: snapshot is corrupt: %w", err)
	}
	return s, nil
}
