package core

import "mxq/internal/xenc"

// DictStats reports the sizes of the shared qualified-name pool and the
// attribute-value dictionary (monitoring and testing hook). Both grow
// monotonically between CompactDictionaries calls: aborted transactions
// leave behind entries nothing references any more.
func (s *Store) DictStats() (names, props int) {
	return s.qn.Len(), s.prop.count()
}

// CompactDictionaries rebuilds the shared QNamePool and attribute-value
// dictionary so they hold exactly the entries referenced by this store's
// live tuples, dropping entries leaked by aborted transactions (which
// intern names and property values into the shared pools before the
// abort discards the column data that would have referenced them). It is
// the dictionary companion of Compact: an offline maintenance pass the
// paper's append-only scheme calls for, run under exclusive access.
//
// Node ids, pre ranks and the physical page layout are untouched — only
// dictionary ids change, and every column that stores one (the name
// column and the attribute table) is rewritten through the copy-on-write
// hooks. Live snapshots are therefore never disturbed: they keep their
// references to the old chunks and the old pool objects, which stay
// internally consistent until the last snapshot is released. The caller
// must hold exclusive write access to s (the transaction manager's
// CompactDictionaries takes the global write lock).
//
// It returns the number of dropped name and property entries; a second
// pass immediately after always drops (0, 0).
func (s *Store) CompactDictionaries() (namesDropped, propsDropped int) {
	oldQN, oldProp := s.qn, s.prop
	nameUsed := make([]bool, oldQN.Len())
	propUsed := make([]bool, oldProp.count())

	// Scan the live references: the name column of used tuples, and the
	// attribute table's name/value ids.
	for _, pg := range s.pages {
		for o := int32(0); o < s.pageSize; o++ {
			if pg.level[o] == xenc.LevelUnused {
				continue
			}
			if n := pg.name[o]; n != xenc.NoName {
				nameUsed[n] = true
			}
		}
	}
	for id := xenc.NodeID(0); id < s.nodeLen; id++ {
		for _, r := range s.attrRefs(id) {
			nameUsed[r.name] = true
			propUsed[r.val] = true
		}
	}

	// Rebuild the pools with only the referenced entries, preserving
	// relative order, and record the old→new id maps.
	newQN := xenc.NewQNamePool()
	nameMap := make([]int32, len(nameUsed))
	for id := range nameUsed {
		if nameUsed[id] {
			nameMap[id] = newQN.Intern(oldQN.Name(int32(id)))
		} else {
			nameMap[id] = xenc.NoName
			namesDropped++
		}
	}
	newProp := newPropDict()
	propMap := make([]int32, len(propUsed))
	for id := range propUsed {
		if propUsed[id] {
			propMap[id] = newProp.put(oldProp.get(int32(id)))
		} else {
			propMap[id] = -1
			propsDropped++
		}
	}
	if namesDropped == 0 && propsDropped == 0 {
		return 0, 0
	}

	// Rewrite the name column. Pages on which every kept id maps to
	// itself are skipped, so chunks shared with snapshots are only
	// copied when an id actually moves.
	if namesDropped > 0 {
		for pg := range s.pages {
			p := s.pages[pg]
			moved := false
			for o := int32(0); o < s.pageSize && !moved; o++ {
				if p.level[o] == xenc.LevelUnused {
					continue
				}
				if n := p.name[o]; n != xenc.NoName && nameMap[n] != n {
					moved = true
				}
			}
			if !moved {
				continue
			}
			wp := s.dirtyPage(int32(pg))
			for o := int32(0); o < s.pageSize; o++ {
				if wp.level[o] == xenc.LevelUnused {
					continue
				}
				if n := wp.name[o]; n != xenc.NoName {
					wp.name[o] = nameMap[n]
				}
			}
		}
	}

	// Rewrite the attribute table. Attr slices may be shared with
	// snapshots, so changed ones are replaced, never mutated in place.
	for id := xenc.NodeID(0); id < s.nodeLen; id++ {
		refs := s.attrRefs(id)
		moved := false
		for _, r := range refs {
			if nameMap[r.name] != r.name || propMap[r.val] != r.val {
				moved = true
				break
			}
		}
		if !moved {
			continue
		}
		fresh := make([]attrRef, len(refs))
		for i, r := range refs {
			fresh[i] = attrRef{name: nameMap[r.name], val: propMap[r.val]}
		}
		s.setAttrs(id, fresh)
	}

	s.qn, s.prop = newQN, newProp
	return namesDropped, propsDropped
}
