package core

import (
	"fmt"

	"mxq/internal/xenc"
)

// Compact rebuilds the physical layout at the given fill factor: live
// tuples are rewritten in document order into fresh pages, the logical
// and physical page orders coincide again, and the space of deleted
// tuples and splice overflow is reclaimed. Node ids (and with them the
// attribute table, parent links and any external references) are
// preserved — only pos values change, which is exactly what the node/pos
// indirection exists to absorb. The fresh pages are privately owned, so
// compacting a store never disturbs snapshots still reading the old
// pages.
//
// The paper treats reorganization as an offline concern ("new logical
// pages are appended only"); Compact is the natural maintenance
// companion: run it when Stats show fill dropping, like a VACUUM.
// fill == 0 means DefaultFillFactor.
func (s *Store) Compact(fill float64) error {
	if fill == 0 {
		fill = DefaultFillFactor
	}
	if fill < 0 || fill > 1 {
		return fmt.Errorf("core: fill factor %g out of (0,1]", fill)
	}
	perPage := int32(float64(s.pageSize) * fill)
	if perPage < 1 {
		perPage = 1
	}
	nPages := (int32(s.liveNodes) + perPage - 1) / perPage
	if nPages == 0 {
		nPages = 1
	}

	pages := make([]*page, nPages)
	for i := range pages {
		pages[i] = newPage(int(s.pageSize))
	}
	n := nPages << s.pageBits
	at := func(pos int32) (*page, int32) {
		return pages[pos>>s.pageBits], pos & s.pageMask
	}

	// Walk the live view in document order, packing perPage tuples into
	// each fresh page.
	w := int32(0)
	written := int32(0)
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if written == perPage {
			// Seal the page just completed: its tail becomes a free run.
			// (With fill 1.0, w already sits on the next page boundary
			// and there is nothing to seal.)
			pageEnd := ((w-1)>>s.pageBits + 1) << s.pageBits
			for q := w; q < pageEnd; q++ {
				wp, o := at(q)
				wp.level[o] = xenc.LevelUnused
				wp.size[o] = pageEnd - q - 1
				wp.node[o] = xenc.NoNode
			}
			w = pageEnd
			written = 0
		}
		pos := s.physOf(p)
		op, oo := s.pages[pos>>s.pageBits], pos&s.pageMask
		wp, o := at(w)
		wp.size[o] = op.size[oo]
		wp.level[o] = op.level[oo]
		wp.kind[o] = op.kind[oo]
		wp.name[o] = op.name[oo]
		wp.text[o] = op.text[oo]
		id := op.node[oo]
		wp.node[o] = id
		s.setPos(id, w)
		w++
		written++
	}
	// Seal the final page.
	for q := w; q < n; q++ {
		wp, o := at(q)
		wp.level[o] = xenc.LevelUnused
		pageEnd := (q >> s.pageBits << s.pageBits) + s.pageSize
		wp.size[o] = pageEnd - q - 1
		wp.node[o] = xenc.NoNode
	}

	// The fresh pages replace the old ones wholesale; drop this store's
	// references to the old chunks so snapshots still reading them become
	// their sole owners (and the chunks become collectable once those
	// snapshots are released).
	for _, old := range s.pages {
		old.refs.Add(-1)
	}
	s.pages = pages
	s.logToPhys = make([]int32, nPages)
	s.physToLog = make([]int32, nPages)
	for i := int32(0); i < nPages; i++ {
		s.logToPhys[i] = i
		s.physToLog[i] = i
	}
	return nil
}
