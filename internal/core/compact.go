package core

import (
	"fmt"

	"mxq/internal/xenc"
)

// Compact rebuilds the physical layout at the given fill factor: live
// tuples are rewritten in document order into fresh pages, the logical
// and physical page orders coincide again, and the space of deleted
// tuples and splice overflow is reclaimed. Node ids (and with them the
// attribute table, parent links and any external references) are
// preserved — only pos values change, which is exactly what the node/pos
// indirection exists to absorb.
//
// The paper treats reorganization as an offline concern ("new logical
// pages are appended only"); Compact is the natural maintenance
// companion: run it when Stats show fill dropping, like a VACUUM.
// fill == 0 means DefaultFillFactor.
func (s *Store) Compact(fill float64) error {
	if fill == 0 {
		fill = DefaultFillFactor
	}
	if fill < 0 || fill > 1 {
		return fmt.Errorf("core: fill factor %g out of (0,1]", fill)
	}
	perPage := int32(float64(s.pageSize) * fill)
	if perPage < 1 {
		perPage = 1
	}
	nPages := (int32(s.liveNodes) + perPage - 1) / perPage
	if nPages == 0 {
		nPages = 1
	}
	n := nPages << s.pageBits

	size := make([]int32, n)
	level := make([]int16, n)
	kind := make([]uint8, n)
	name := make([]int32, n)
	text := make([]string, n)
	node := make([]int32, n)

	// Walk the live view in document order, packing perPage tuples into
	// each fresh page.
	w := int32(0)
	written := int32(0)
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if written == perPage {
			// Seal the page just completed: its tail becomes a free run.
			// (With fill 1.0, w already sits on the next page boundary
			// and there is nothing to seal.)
			pageEnd := ((w-1)>>s.pageBits + 1) << s.pageBits
			for q := w; q < pageEnd; q++ {
				level[q] = xenc.LevelUnused
				size[q] = pageEnd - q - 1
				node[q] = xenc.NoNode
			}
			w = pageEnd
			written = 0
		}
		pos := s.physOf(p)
		size[w] = s.size[pos]
		level[w] = s.level[pos]
		kind[w] = s.kind[pos]
		name[w] = s.name[pos]
		text[w] = s.text[pos]
		id := s.node[pos]
		node[w] = id
		s.nodePos[id] = w
		w++
		written++
	}
	// Seal the final page.
	for q := w; q < n; q++ {
		level[q] = xenc.LevelUnused
		pageEnd := (q >> s.pageBits << s.pageBits) + s.pageSize
		size[q] = pageEnd - q - 1
		node[q] = xenc.NoNode
	}

	s.size, s.level, s.kind, s.name, s.text, s.node = size, level, kind, name, text, node
	s.logToPhys = make([]int32, nPages)
	s.physToLog = make([]int32, nPages)
	for i := int32(0); i < nPages; i++ {
		s.logToPhys[i] = i
		s.physToLog[i] = i
	}
	return nil
}
