package core

import (
	"strings"
	"testing"

	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

func buildDictStore(t *testing.T, xml string) *Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(xml), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(tr, Options{PageSize: 16, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompactDictionariesDropsAbortLeaks plays the aborted-transaction
// scenario at the store level: a snapshot interns names and property
// values into the shared pools, then is released without ever reaching
// the base. Compaction must drop exactly the leaked entries while the
// document's observable state — including a pre-existing snapshot —
// stays intact.
func TestCompactDictionariesDropsAbortLeaks(t *testing.T) {
	s := buildDictStore(t, `<lib><shelf id="s1"><book genre="sf">A</book></shelf></lib>`)
	before := snapshotXML(t, s)
	namesBefore, propsBefore := s.DictStats()

	// Simulated aborted transaction: rename, new elements, new attribute
	// values — all interned into the shared pools through the clone.
	clone := s.Snapshot()
	root := clone.Root()
	if _, err := clone.AppendChild(root, fragTree(t, `<leaked-elem leaked-attr="leaked-val">x</leaked-elem>`)); err != nil {
		t.Fatal(err)
	}
	if err := clone.Rename(root, "leaked-rename"); err != nil {
		t.Fatal(err)
	}
	clone.Release()

	namesLeaked, propsLeaked := s.DictStats()
	if namesLeaked <= namesBefore || propsLeaked <= propsBefore {
		t.Fatalf("abort did not leak: names %d->%d, props %d->%d",
			namesBefore, namesLeaked, propsBefore, propsLeaked)
	}

	// A snapshot taken before compaction must keep reading the old pools.
	held := s.Snapshot()
	heldXML := snapshotXML(t, held)

	nd, pd := s.CompactDictionaries()
	if nd != namesLeaked-namesBefore || pd != propsLeaked-propsBefore {
		t.Fatalf("dropped (%d names, %d props), want (%d, %d)",
			nd, pd, namesLeaked-namesBefore, propsLeaked-propsBefore)
	}
	if names, props := s.DictStats(); names != namesBefore || props != propsBefore {
		t.Fatalf("post-compaction dict sizes (%d, %d), want (%d, %d)", names, props, namesBefore, propsBefore)
	}
	if got := snapshotXML(t, s); got != before {
		t.Fatalf("document changed across compaction:\nbefore: %s\nafter:  %s", before, got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after compaction: %v", err)
	}
	// Attribute lookups must still resolve through the rewritten table.
	bookName, ok := s.Names().Lookup("book")
	if !ok {
		t.Fatal("book name dropped by compaction")
	}
	var bookPre xenc.Pre = xenc.NoPre
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Name(p) == bookName {
			bookPre = p
			break
		}
	}
	if bookPre == xenc.NoPre {
		t.Fatal("book element not found after compaction")
	}
	genre, ok := s.Names().Lookup("genre")
	if !ok {
		t.Fatal("genre attribute name dropped")
	}
	if v, ok := s.AttrValue(bookPre, genre); !ok || v != "sf" {
		t.Fatalf("genre attribute = %q, %v after compaction, want \"sf\", true", v, ok)
	}

	// The held snapshot is undisturbed and still self-consistent.
	if got := snapshotXML(t, held); got != heldXML {
		t.Fatalf("held snapshot changed across compaction:\nbefore: %s\nafter:  %s", heldXML, got)
	}
	held.Release()

	// Idempotence: with no new leaks a second pass drops nothing.
	if nd, pd := s.CompactDictionaries(); nd != 0 || pd != 0 {
		t.Fatalf("second compaction dropped (%d, %d), want (0, 0)", nd, pd)
	}
}

// TestCompactDictionariesRemapsAcrossPages forces an id shift that
// touches every named tuple: the first interned name leaks, so every
// kept id moves down and every page holding elements must be rewritten.
func TestCompactDictionariesRemapsAcrossPages(t *testing.T) {
	// Intern a victim name first by building, renaming away, and only
	// then filling the document — easier: build a doc whose root name
	// becomes garbage after a rename on the base itself.
	s := buildDictStore(t, `<zzz-first><a x="1">t</a><b x="2">u</b><c>v</c></zzz-first>`)
	if err := s.Rename(s.Root(), "renamed-root"); err != nil {
		t.Fatal(err)
	}
	before := snapshotXML(t, s)
	nd, _ := s.CompactDictionaries()
	if nd == 0 {
		t.Fatal("rename left no leaked name to drop")
	}
	if got := snapshotXML(t, s); got != before {
		t.Fatalf("document changed across remap:\nbefore: %s\nafter:  %s", before, got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after remap: %v", err)
	}
	// All attribute values must still resolve.
	x, ok := s.Names().Lookup("x")
	if !ok {
		t.Fatal("attribute name x dropped")
	}
	found := 0
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if v, ok := s.AttrValue(p, x); ok {
			found++
			if v != "1" && v != "2" {
				t.Fatalf("attribute value %q after remap", v)
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d x attributes after remap, want 2", found)
	}
}

func fragTree(t *testing.T, xml string) *shred.Tree {
	t.Helper()
	tr, err := shred.ParseFragment(xml, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func snapshotXML(t *testing.T, v xenc.DocView) string {
	t.Helper()
	var b strings.Builder
	if err := serialize.Document(&b, v, serialize.Options{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
