package core

import (
	"math/rand"
	"testing"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// deleteChildren removes children of the root until the free list holds
// at least wantFree recycled ids.
func deleteChildren(t *testing.T, s *Store, wantFree int) {
	t.Helper()
	for {
		if ids, _, _ := s.FreeListStats(); ids >= wantFree {
			return
		}
		root := s.Root()
		lvl := s.Level(root)
		// First child of the root.
		c := xenc.SkipFree(s, root+1)
		if c >= s.Len() || s.Level(c) <= lvl {
			t.Fatalf("ran out of deletable children with %d free ids", mustFreeIDs(s))
		}
		if err := s.Delete(c); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
}

func mustFreeIDs(s *Store) int {
	ids, _, _ := s.FreeListStats()
	return ids
}

func oneNodeFrag(name, text string) *shred.Tree {
	return shred.NewBuilder().Start(name).Text(text).End().Tree()
}

// TestFreeListChunkedCopy is the regression test for the old wholesale
// free-list copy: after heavy deletes the recycled-id stack spans many
// chunks, and a small transaction image must touch O(1) of them — pops
// copy nothing, a push copies exactly the tail chunk — instead of
// duplicating the entire list on first mutation.
func TestFreeListChunkedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := Build(randomDoc(rng, 1200), Options{PageSize: 16, FillFactor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	deleteChildren(t, s, 20*int(s.pageSize))
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	ids, chunks, _ := s.FreeListStats()
	if chunks < 20 {
		t.Fatalf("free list spans only %d chunks (%d ids); need ≥ 20 for the regression to bite", chunks, ids)
	}

	// A 1-node insert pops one recycled id: no free-list chunk may be
	// copied at all (the popped slot is dead to the image, and the shared
	// chunks stay shared).
	c := s.Snapshot()
	defer c.Release()
	if _, err := c.AppendChild(c.Root(), oneNodeFrag("probe", "x")); err != nil {
		t.Fatal(err)
	}
	if _, _, owned := c.FreeListStats(); owned != 0 {
		t.Fatalf("1-node insert copied %d free-list chunks, want 0", owned)
	}

	// A 1-node delete pushes one recycled id: exactly the tail chunk is
	// copied, regardless of stack depth. Plant a known leaf first (the
	// heavy deletes above may have emptied the root).
	ids2, err := s.AppendChild(s.Root(), oneNodeFrag("victim", "v"))
	if err != nil {
		t.Fatal(err)
	}
	c2 := s.Snapshot()
	defer c2.Release()
	victim := c2.PreOf(ids2[1]) // the text leaf
	if victim == xenc.NoPre {
		t.Fatal("planted leaf not found in snapshot")
	}
	if err := c2.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, owned := c2.FreeListStats(); owned > 1 {
		t.Fatalf("1-node delete copied %d free-list chunks, want ≤ 1", owned)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseReturnsOwnership verifies the snapshot-lifetime half of the
// refcount protocol: while a snapshot is live every chunk is shared (a
// base write would copy), and releasing the last snapshot hands
// exclusive ownership back to the base so later writes go in place.
func TestReleaseReturnsOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s, err := Build(randomDoc(rng, 300), Options{PageSize: 16, FillFactor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.pages)
	if s.DirtyPages() != total {
		t.Fatalf("fresh store owns %d/%d pages", s.DirtyPages(), total)
	}

	c1 := s.Snapshot()
	c2 := s.Snapshot()
	if s.DirtyPages() != 0 || c1.DirtyPages() != 0 || c2.DirtyPages() != 0 {
		t.Fatalf("shared chunks counted as owned: base %d, snaps %d/%d",
			s.DirtyPages(), c1.DirtyPages(), c2.DirtyPages())
	}

	c1.Release()
	if s.DirtyPages() != 0 {
		t.Fatalf("base owns %d pages while a snapshot is still live", s.DirtyPages())
	}
	c2.Release()
	if s.DirtyPages() != total {
		t.Fatalf("base owns %d/%d pages after the last snapshot released", s.DirtyPages(), total)
	}

	// With ownership back, a write must not copy the chunk.
	root := s.Root()
	victim := xenc.SkipFree(s, root+1)
	before := s.pages[s.physOf(victim)>>s.pageBits]
	if s.Kind(victim) == xenc.KindElem {
		if err := s.Rename(victim, "renamed"); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := s.SetValue(victim, "renamed"); err != nil {
			t.Fatal(err)
		}
	}
	if after := s.pages[s.physOf(victim)>>s.pageBits]; after != before {
		t.Fatal("write after release still copied the page chunk")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsolationAfterPeerRelease: releasing one snapshot must not
// let the base write in place under a *different* still-live snapshot.
func TestSnapshotIsolationAfterPeerRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s, err := Build(randomDoc(rng, 200), Options{PageSize: 16, FillFactor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	live := s.Snapshot()
	dead := s.Snapshot()
	want := fingerprint(live)
	dead.Release()
	for i := 0; i < 25; i++ {
		applyRandomOp(rng, s)
	}
	if got := fingerprint(live); got != want {
		t.Fatal("live snapshot observed base writes after a peer snapshot released")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	live.Release()
}
