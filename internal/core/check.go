package core

import (
	"fmt"

	"mxq/internal/xenc"
)

// CheckInvariants verifies the store's structural invariants in O(N).
// Tests run it after every mutation; it is the executable form of the
// encoding rules in Section 3:
//
//   - logToPhys and physToLog are inverse bijections over the pages;
//   - the chunked columns hold exactly one page-sized chunk per physical
//     page (and the copy-on-write ownership tables track every chunk);
//   - free-run lengths count exactly the directly following unused
//     tuples within their logical page;
//   - node/pos and the node column are mutually consistent, and every
//     live node has a valid node id;
//   - size equals the number of live descendants (recomputed with a
//     stack over the view);
//   - levels form a valid pre-order (each node is at most one deeper
//     than its predecessor);
//   - parent links match the tree implied by the levels;
//   - the live-node count and attribute owners agree with the view.
func (s *Store) CheckInvariants() error {
	nPages := len(s.logToPhys)
	if len(s.physToLog) != nPages {
		return fmt.Errorf("pageOffset tables have different lengths: %d vs %d", nPages, len(s.physToLog))
	}
	if len(s.pages) != nPages {
		return fmt.Errorf("store holds %d page chunks, want %d", len(s.pages), nPages)
	}
	for i, pg := range s.pages {
		if r := pg.refs.Load(); r < 1 {
			return fmt.Errorf("page chunk %d has reference count %d", i, r)
		}
		if int32(len(pg.size)) != s.pageSize || int32(len(pg.level)) != s.pageSize ||
			int32(len(pg.kind)) != s.pageSize || int32(len(pg.name)) != s.pageSize ||
			int32(len(pg.text)) != s.pageSize || int32(len(pg.node)) != s.pageSize {
			return fmt.Errorf("page chunk %d has ragged columns", i)
		}
	}
	for i, nc := range s.nodes {
		if r := nc.refs.Load(); r < 1 {
			return fmt.Errorf("node chunk %d has reference count %d", i, r)
		}
	}
	for i, fc := range s.freeChunks {
		if r := fc.refs.Load(); r < 1 {
			return fmt.Errorf("free-list chunk %d has reference count %d", i, r)
		}
	}
	if want := (s.freeLen + s.pageSize - 1) >> s.pageBits; int32(len(s.freeChunks)) < want {
		return fmt.Errorf("free list holds %d ids but only %d chunks", s.freeLen, len(s.freeChunks))
	}
	if maxIDs := int32(len(s.nodes)) << s.pageBits; s.nodeLen > maxIDs {
		return fmt.Errorf("nodeLen %d exceeds chunk capacity %d", s.nodeLen, maxIDs)
	}
	for lg, ph := range s.logToPhys {
		if ph < 0 || int(ph) >= nPages {
			return fmt.Errorf("logToPhys[%d] = %d out of range", lg, ph)
		}
		if s.physToLog[ph] != int32(lg) {
			return fmt.Errorf("pageOffset not a bijection: logToPhys[%d]=%d but physToLog[%d]=%d", lg, ph, ph, s.physToLog[ph])
		}
	}

	// Free runs, node map, level discipline, live count.
	live := 0
	prevLevel := xenc.Level(-1)
	seen := make(map[xenc.NodeID]xenc.Pre)
	for p := xenc.Pre(0); p < s.Len(); p++ {
		pos := s.physOf(p)
		if s.levelAt(pos) == xenc.LevelUnused {
			if s.nodeAt(pos) != xenc.NoNode {
				return fmt.Errorf("unused tuple at pre %d has node id %d", p, s.nodeAt(pos))
			}
			// Count the following unused tuples within the page.
			run := int32(0)
			for q := pos + 1; q&s.pageMask != 0 && s.levelAt(q) == xenc.LevelUnused; q++ {
				run++
			}
			if s.sizeAt(pos) != run {
				return fmt.Errorf("free run at pre %d (pos %d): size %d, want %d", p, pos, s.sizeAt(pos), run)
			}
			continue
		}
		live++
		id := s.nodeAt(pos)
		if id < 0 || id >= s.nodeLen {
			return fmt.Errorf("live tuple at pre %d has invalid node id %d", p, id)
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("node id %d appears at pre %d and %d", id, prev, p)
		}
		seen[id] = p
		if s.posOf(id) != pos {
			return fmt.Errorf("node/pos[%d] = %d, want %d", id, s.posOf(id), pos)
		}
		lvl := s.levelAt(pos)
		if lvl > prevLevel+1 {
			return fmt.Errorf("level jump at pre %d: %d after %d", p, lvl, prevLevel)
		}
		prevLevel = lvl
		if !xenc.Kind(s.kindAt(pos)).Valid() {
			return fmt.Errorf("invalid kind %d at pre %d", s.kindAt(pos), p)
		}
	}
	if live != s.liveNodes {
		return fmt.Errorf("liveNodes = %d, but the view holds %d live tuples", s.liveNodes, live)
	}

	// Sizes and parents via a stack over the live view.
	type frame struct {
		id    xenc.NodeID
		pre   xenc.Pre
		level xenc.Level
		count int32
	}
	var stack []frame
	pop := func() error {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if got := s.Size(top.pre); got != top.count {
			return fmt.Errorf("size at pre %d = %d, want %d live descendants", top.pre, got, top.count)
		}
		if len(stack) > 0 {
			stack[len(stack)-1].count += top.count + 1
		}
		return nil
	}
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		lvl := s.Level(p)
		for len(stack) > 0 && stack[len(stack)-1].level >= lvl {
			if err := pop(); err != nil {
				return err
			}
		}
		id := s.NodeOf(p)
		wantParent := xenc.NoNode
		if len(stack) > 0 {
			wantParent = stack[len(stack)-1].id
		}
		if s.parentOf(id) != wantParent {
			return fmt.Errorf("parentOf[%d] (pre %d) = %d, want %d", id, p, s.parentOf(id), wantParent)
		}
		stack = append(stack, frame{id: id, pre: p, level: lvl})
	}
	for len(stack) > 0 {
		if err := pop(); err != nil {
			return err
		}
	}

	// Free node ids must not be referenced; attribute owners must live.
	var freeErr error
	s.forEachFree(func(id int32) {
		if freeErr == nil && s.posOf(id) != -1 {
			freeErr = fmt.Errorf("free node id %d still mapped to pos %d", id, s.posOf(id))
		}
	})
	if freeErr != nil {
		return freeErr
	}
	for id := xenc.NodeID(0); id < s.nodeLen; id++ {
		if len(s.attrRefs(id)) > 0 && s.posOf(id) < 0 {
			return fmt.Errorf("attributes owned by dead node id %d", id)
		}
	}
	return nil
}
