package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// Property: PreOf and NodeOf are mutually inverse over live nodes after
// arbitrary update sequences — the node/pos swizzle of Section 3.1 never
// loses a node.
func TestNodeMapBijectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Build(randomDoc(rng, 30), Options{PageSize: 16, FillFactor: 0.7})
		if err != nil {
			return false
		}
		for step := 0; step < 40; step++ {
			applyRandomOp(rng, s)
		}
		// Forward: every live view tuple round-trips through its id.
		for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
			if s.PreOf(s.NodeOf(p)) != p {
				return false
			}
		}
		// Backward: every mapped node id lands on a live tuple with the
		// same id.
		for id := xenc.NodeID(0); id < s.nodeLen; id++ {
			p := s.PreOf(id)
			if p == xenc.NoPre {
				continue
			}
			if s.Level(p) == xenc.LevelUnused || s.NodeOf(p) != id {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the root's size always equals liveNodes-1 — the global form
// of the commutative delta bookkeeping.
func TestRootSizeTracksLiveNodesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Build(randomDoc(rng, 25), Options{PageSize: 16, FillFactor: 0.8})
		if err != nil {
			return false
		}
		for step := 0; step < 50; step++ {
			applyRandomOp(rng, s)
			if int(s.Size(s.Root())) != s.LiveNodes()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot produces an independent image — mutations on the
// snapshot never reach the base and vice versa, even though the two
// share pages copy-on-write (the isolation property transactions rely
// on).
func TestSnapshotIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Build(randomDoc(rng, 25), Options{PageSize: 16, FillFactor: 0.8})
		if err != nil {
			return false
		}
		before := fingerprint(s)
		c := s.Snapshot()
		for step := 0; step < 30; step++ {
			applyRandomOp(rng, c)
		}
		if fingerprint(s) != before || s.CheckInvariants() != nil || c.CheckInvariants() != nil {
			return false
		}
		// The base keeps writing after the snapshot froze its pages;
		// the snapshot must not observe any of it.
		after := fingerprint(c)
		for step := 0; step < 30; step++ {
			applyRandomOp(rng, s)
		}
		return fingerprint(c) == after && s.CheckInvariants() == nil && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a snapshot's first write copies only the pages it touches —
// the copy-on-write cost is O(pages written), never O(document).
func TestSnapshotCopiesOnlyDirtyPagesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := Build(randomDoc(rng, 200), Options{PageSize: 16, FillFactor: 0.8})
		if err != nil {
			return false
		}
		c := s.Snapshot()
		if c.DirtyPages() != 0 {
			return false
		}
		// One value update dirties exactly one page.
		var texts []xenc.Pre
		for p := xenc.SkipFree(c, 0); p < c.Len(); p = xenc.SkipFree(c, p+1) {
			if c.Kind(p) == xenc.KindText {
				texts = append(texts, p)
			}
		}
		if len(texts) == 0 {
			return true
		}
		if err := c.SetValue(texts[rng.Intn(len(texts))], "x"); err != nil {
			return false
		}
		// The snapshot owns exactly the one page it copied; by dropping
		// its reference to the shared original, that page's ownership
		// returns to the base, which still shares every other chunk.
		return c.DirtyPages() == 1 && s.DirtyPages() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// fingerprint summarizes a store's logical content.
func fingerprint(s *Store) string {
	out := ""
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		out += fmt.Sprintf("%d:%d:%d:%s;", s.Kind(p), s.Level(p), s.Name(p), s.Value(p))
	}
	return out
}

func randomDoc(rng *rand.Rand, n int) *shred.Tree {
	b := shred.NewBuilder().Start("root")
	depth := 1
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			b.Start(fmt.Sprintf("e%d", rng.Intn(4)), shred.Attr{Name: "i", Value: fmt.Sprint(i)})
			depth++
		case 1:
			b.Text(fmt.Sprintf("t%d", i))
		default:
			if depth > 1 {
				b.End()
				depth--
			} else {
				b.Elem("leaf", "")
			}
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Tree()
}

func applyRandomOp(rng *rand.Rand, s *Store) {
	var live []xenc.Pre
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		live = append(live, p)
	}
	target := live[rng.Intn(len(live))]
	frag := &shred.Tree{Nodes: []shred.Node{
		{Kind: xenc.KindElem, Name: "n", Size: 1},
		{Kind: xenc.KindText, Value: "v", Level: 1},
	}}
	switch op := rng.Intn(5); {
	case op == 0 && target != s.Root():
		s.Delete(target)
	case op == 1 && target != s.Root():
		s.InsertBefore(target, frag)
	case op == 2 && target != s.Root():
		s.InsertAfter(target, frag)
	case op == 3 && s.Kind(target) == xenc.KindElem:
		s.SetAttr(target, "x", "y")
	default:
		if s.Kind(target) == xenc.KindElem {
			s.AppendChild(target, frag)
		}
	}
}
