package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mxq/internal/xenc"
)

func TestCompactReclaimsSpace(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.5})
	// Blow the store up with splicing inserts and deletes.
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 120; step++ {
		var live []xenc.Pre
		for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
			live = append(live, p)
		}
		target := live[rng.Intn(len(live))]
		if rng.Intn(3) == 0 && target != s.Root() {
			if err := s.Delete(target); err != nil {
				t.Fatal(err)
			}
		} else if s.Kind(target) == xenc.KindElem {
			if _, err := s.AppendChild(target, mustFragment(t, `<n><m/>t</n>`)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	before := liveNames(s)
	idOf := map[xenc.NodeID]string{}
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem {
			idOf[s.NodeOf(p)] = s.Names().Name(s.Name(p))
		}
	}
	pagesBefore := s.Pages()

	if err := s.Compact(0.8); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after Compact: %v", err)
	}
	if got := liveNames(s); fmt.Sprint(got) != fmt.Sprint(before) {
		t.Fatalf("compact changed the document:\nbefore %v\nafter  %v", before, got)
	}
	if s.Pages() >= pagesBefore {
		t.Fatalf("compact did not shrink: %d -> %d pages", pagesBefore, s.Pages())
	}
	// Node ids must survive compaction (the whole point of node/pos).
	for id, name := range idOf {
		p := s.PreOf(id)
		if p == xenc.NoPre {
			t.Fatalf("node %d (%s) lost by Compact", id, name)
		}
		if got := s.Names().Name(s.Name(p)); got != name {
			t.Fatalf("node %d renamed by Compact: %s -> %s", id, name, got)
		}
	}
	// And the store stays updatable.
	if _, err := s.AppendChild(s.Root(), mustFragment(t, `<after/>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactFullFill(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{PageSize: 8, FillFactor: 0.5})
	if err := s.Compact(1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// 10 live nodes at fill 1.0 on 8-tuple pages = 2 pages.
	if s.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", s.Pages())
	}
}

func TestCompactAttrsSurvive(t *testing.T) {
	s := mustBuild(t, `<r><p id="1" k="v"/><q id="2"/></r>`, Options{PageSize: 8, FillFactor: 0.5})
	if err := s.Compact(0.9); err != nil {
		t.Fatal(err)
	}
	idName, _ := s.Names().Lookup("id")
	found := 0
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if v, ok := s.AttrValue(p, idName); ok {
			found++
			if v != "1" && v != "2" {
				t.Fatalf("attr value %q", v)
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d attributed nodes, want 2", found)
	}
}

func TestCompactBadFill(t *testing.T) {
	s := mustBuild(t, paperDoc, Options{})
	if err := s.Compact(1.5); err == nil {
		t.Fatal("fill 1.5 accepted")
	}
	if err := s.Compact(-1); err == nil {
		t.Fatal("fill -1 accepted")
	}
}
