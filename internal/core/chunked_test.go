package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"mxq/internal/chunkstore"
)

// saveBytes flattens a store through the legacy gob path — the
// canonical state comparison for chunked round trips.
func saveBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// itemsDoc builds an n-item document with attributes and text so every
// chunk kind (pages, nodes, free, both dictionaries) is exercised.
func itemsDoc(n int) string {
	var b strings.Builder
	b.WriteString("<items>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="i%d" cat="c%d">value %d</item>`, i, i%7, i)
	}
	b.WriteString("</items>")
	return b.String()
}

func mustSaveChunked(t *testing.T, s *Store, cs chunkstore.Store) (*ChunkManifest, ChunkSaveStats) {
	t.Helper()
	m, stats, err := s.SaveChunked(cs)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func mustLoadChunked(t *testing.T, m *ChunkManifest, cs chunkstore.Store) *Store {
	t.Helper()
	s, err := LoadChunked(m, cs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChunkedRoundTrip(t *testing.T) {
	s := mustBuild(t, itemsDoc(200), Options{PageSize: 16, FillFactor: 0.75})
	// Populate the free list and churn the dictionaries.
	for i := 0; i < 5; i++ {
		if err := s.Delete(s.NthChild(s.Root(), 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetAttr(s.NthChild(s.Root(), 0), "extra", "late-dict-entry"); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, s)

	cs := chunkstore.NewMem()
	m, stats := mustSaveChunked(t, s, cs)
	if stats.ChunksWritten == 0 || stats.BytesWritten == 0 {
		t.Fatalf("first save wrote nothing: %+v", stats)
	}
	if stats.ChunksTotal != m.TotalChunks() {
		t.Fatalf("stats count %d chunks, manifest %d", stats.ChunksTotal, m.TotalChunks())
	}

	// The manifest must survive its wire form (JSON inside the image).
	wire, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back ChunkManifest
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}

	got := mustLoadChunked(t, &back, cs)
	if !bytes.Equal(saveBytes(t, got), want) {
		t.Fatal("chunked round trip diverged from the gob image")
	}

	// A loaded store arrives with hashes cached: re-saving it moves no
	// bytes at all.
	_, stats2 := mustSaveChunked(t, got, cs)
	if stats2.ChunksWritten != 0 {
		t.Fatalf("re-save of a just-loaded store wrote %d chunks", stats2.ChunksWritten)
	}
	if stats2.ChunksReused != stats2.ChunksTotal {
		t.Fatalf("re-save reused %d of %d chunks", stats2.ChunksReused, stats2.ChunksTotal)
	}
}

func TestChunkedIncrementalWritesOnlyChurn(t *testing.T) {
	s := mustBuild(t, itemsDoc(2000), Options{PageSize: 64, FillFactor: 0.8})
	cs := chunkstore.NewMem()
	_, full := mustSaveChunked(t, s, cs)

	// One localized edit: a rename dirties one page chunk (and nothing
	// NodeID-keyed).
	if err := s.Rename(s.NthChild(s.Root(), 17), "renamed"); err != nil {
		t.Fatal(err)
	}
	m2, inc := mustSaveChunked(t, s, cs)
	if inc.ChunksWritten == 0 {
		t.Fatal("edit produced no chunk writes")
	}
	// The rename touches one page plus the name-dictionary tail group.
	if inc.ChunksWritten > 3 {
		t.Fatalf("1-node edit wrote %d chunks (full image is %d)", inc.ChunksWritten, full.ChunksTotal)
	}
	if inc.BytesWritten*10 > full.BytesWritten {
		t.Fatalf("incremental save wrote %d bytes, full image was %d — not even 10x smaller",
			inc.BytesWritten, full.BytesWritten)
	}
	got := mustLoadChunked(t, m2, cs)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, s)) {
		t.Fatal("incremental manifest did not reproduce the store")
	}
}

// TestChunkedFreeTailNotCached is the regression test for the one spot
// where the COW dirty hooks under-report change: popFree shrinks
// freeLen without dirtying the tail chunk, so a free chunk that was
// full (hash cached) at one save and partial at the next must be
// re-encoded, not served from the stale cache.
func TestChunkedFreeTailNotCached(t *testing.T) {
	s := mustBuild(t, itemsDoc(300), Options{PageSize: 16, FillFactor: 0.75})
	// Delete enough subtrees to push the free stack past one chunk.
	for ids, _, _ := s.FreeListStats(); ids < 20; ids, _, _ = s.FreeListStats() {
		if err := s.Delete(s.NthChild(s.Root(), 1)); err != nil {
			t.Fatal(err)
		}
	}
	cs := chunkstore.NewMem()
	mustSaveChunked(t, s, cs) // caches the full free chunks' hashes

	// Recycle ids: popFree shrinks freeLen below the cached chunk's
	// boundary with no dirty-hook call.
	before, _, _ := s.FreeListStats()
	for i := 0; i < 10; i++ {
		if _, err := s.AppendChild(s.Root(), mustFragment(t, "<recycled/>")); err != nil {
			t.Fatal(err)
		}
	}
	after, _, _ := s.FreeListStats()
	if after >= before {
		t.Fatalf("free list did not shrink (%d -> %d); test builds no pops", before, after)
	}

	m, _ := mustSaveChunked(t, s, cs)
	got := mustLoadChunked(t, m, cs)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, s)) {
		t.Fatal("free-list state diverged after pops (stale tail-chunk hash served)")
	}
	gotIDs, _, _ := got.FreeListStats()
	if gotIDs != after {
		t.Fatalf("loaded free depth %d, want %d", gotIDs, after)
	}
}

// TestChunkedSharesChunksWithPinnedSnapshot: saving a snapshot must not
// be disturbed by base writes, and hashes cached through one side stay
// correct on the other.
func TestChunkedSnapshotIsolation(t *testing.T) {
	base := mustBuild(t, itemsDoc(400), Options{PageSize: 32, FillFactor: 0.8})
	snap := base.Snapshot()
	defer snap.Release()
	liveBefore := snap.LiveNodes()

	// Base churns after the pin.
	for i := 0; i < 50; i++ {
		if _, err := base.AppendChild(base.Root(), mustFragment(t, fmt.Sprintf("<late n=\"%d\"/>", i))); err != nil {
			t.Fatal(err)
		}
	}

	cs := chunkstore.NewMem()
	m, _ := mustSaveChunked(t, snap, cs)
	got := mustLoadChunked(t, m, cs)
	// The snapshot's tree is frozen (COW pages); only the shared
	// append-only dictionaries may have grown, and both sides of the
	// comparison see the same grown dictionaries.
	if got.LiveNodes() != liveBefore {
		t.Fatalf("snapshot image has %d live nodes, pinned at %d", got.LiveNodes(), liveBefore)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, snap)) {
		t.Fatal("snapshot image saw base writes")
	}

	// The base's own save now reuses every chunk it still shares with
	// the snapshot image.
	_, stats := mustSaveChunked(t, base, cs)
	if stats.ChunksReused == 0 {
		t.Fatal("base save reused nothing despite sharing most chunks with the snapshot")
	}
	got2, err := LoadChunked(mustSaveChunkedManifest(t, base, cs), cs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, got2), saveBytes(t, base)) {
		t.Fatal("base image diverged")
	}
}

func mustSaveChunkedManifest(t *testing.T, s *Store, cs chunkstore.Store) *ChunkManifest {
	t.Helper()
	m, _, err := s.SaveChunked(cs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestChunkedBuildManifestResolver: the replication path computes the
// manifest in memory and serves chunk bytes on demand; every referenced
// chunk must resolve and verify, and a store fed from the resolver must
// equal the source.
func TestChunkedBuildManifestResolver(t *testing.T) {
	s := mustBuild(t, itemsDoc(250), Options{PageSize: 16, FillFactor: 0.75})
	m, resolve := s.BuildManifest()
	hs, err := m.ChunkHashes()
	if err != nil {
		t.Fatal(err)
	}
	dst := chunkstore.NewMem()
	for _, h := range hs {
		data, ok := resolve(h)
		if !ok {
			t.Fatalf("resolver missing chunk %s", h)
		}
		if chunkstore.Sum(data) != h {
			t.Fatalf("resolver served bytes not matching %s", h)
		}
		if err := dst.Put(h, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := resolve(chunkstore.Sum([]byte("alien"))); ok {
		t.Fatal("resolver invented an alien chunk")
	}
	got := mustLoadChunked(t, m, dst)
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, s)) {
		t.Fatal("resolver-fed store diverged")
	}
}

func TestChunkedLoadRejectsCorruption(t *testing.T) {
	s := mustBuild(t, itemsDoc(60), Options{PageSize: 16, FillFactor: 0.75})
	cs := chunkstore.NewMem()
	m, _ := mustSaveChunked(t, s, cs)

	mutate := func(fn func(c ChunkManifest) ChunkManifest) error {
		c := *m
		c = fn(c)
		_, err := LoadChunked(&c, cs)
		return err
	}
	cases := map[string]func(c ChunkManifest) ChunkManifest{
		"bad page bits": func(c ChunkManifest) ChunkManifest { c.PageBits = 40; return c },
		"missing chunk": func(c ChunkManifest) ChunkManifest {
			c.Pages = append([]string(nil), c.Pages...)
			c.Pages[0] = chunkstore.Sum([]byte("gone")).String()
			return c
		},
		"bad hash": func(c ChunkManifest) ChunkManifest {
			c.Pages = append([]string(nil), c.Pages...)
			c.Pages[0] = "zz"
			return c
		},
		"node count": func(c ChunkManifest) ChunkManifest { c.NodeLen += 1000; return c },
		"free depth": func(c ChunkManifest) ChunkManifest { c.FreeLen = -1; return c },
		"kind confusion": func(c ChunkManifest) ChunkManifest {
			c.Pages = append([]string(nil), c.Pages...)
			c.Pages[0] = c.Nodes[0]
			return c
		},
	}
	for name, fn := range cases {
		if err := mutate(fn); err == nil {
			t.Errorf("%s: LoadChunked succeeded on corrupt manifest", name)
		}
	}
	// Torn chunk file on disk: the Dir backend detects it via content
	// verification and the load fails loudly.
	dir := chunkstore.NewDir(filepath.Join(t.TempDir(), "chunks"))
	m2, _ := mustSaveChunked(t, s, dir)
	h, err := chunkstore.ParseHash(m2.Pages[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := dir.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Delete(h); err != nil {
		t.Fatal(err)
	}
	if err := dir.Put(chunkstore.Sum(data), data); err != nil {
		t.Fatal(err)
	}
	if err := dir.Delete(h); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChunked(m2, dir); err == nil {
		t.Fatal("LoadChunked succeeded with a missing page chunk")
	}
}

// TestChunkedDeterministicAcrossStores: two independently built stores
// with identical content produce identical manifests — the property
// that makes primary/follower chunk dedupe work.
func TestChunkedDeterministic(t *testing.T) {
	doc := itemsDoc(150)
	a := mustBuild(t, doc, Options{PageSize: 16, FillFactor: 0.75})
	b := mustBuild(t, doc, Options{PageSize: 16, FillFactor: 0.75})
	ma, _ := a.BuildManifest()
	mb, _ := b.BuildManifest()
	ja, _ := json.Marshal(ma)
	jb, _ := json.Marshal(mb)
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical stores produced different manifests")
	}
}
