package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"mxq/internal/shred"
)

// corruptRoundTrip saves a small store, lets mutate damage the wire
// struct, re-encodes it and feeds it to Load. Load must reject every
// such checkpoint with an error — never panic, never hang.
func corruptRoundTrip(t *testing.T, mutate func(*snapshot)) error {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(`<a><b at="1">x</b><c>y</c></a>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(tr, Options{PageSize: 8, FillFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mutate(&snap)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	_, err = Load(&out)
	return err
}

// TestLoadRejectsCorruptCheckpoints feeds Load systematically damaged
// checkpoints: every case must come back as an error (the recovery path
// a WAL replay builds on must fail closed, not crash the process).
func TestLoadRejectsCorruptCheckpoints(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*snapshot)
	}{
		{"page bits zero", func(m *snapshot) { m.PageBits = 0 }},
		{"page bits huge", func(m *snapshot) { m.PageBits = 40 }},
		{"ragged level column", func(m *snapshot) { m.Level = m.Level[:len(m.Level)-1] }},
		{"partial page", func(m *snapshot) {
			m.Size = m.Size[:len(m.Size)-1]
			m.Level = m.Level[:len(m.Level)-1]
			m.Kind = m.Kind[:len(m.Kind)-1]
			m.Name = m.Name[:len(m.Name)-1]
			m.Text = m.Text[:len(m.Text)-1]
			m.Node = m.Node[:len(m.Node)-1]
		}},
		{"truncated logToPhys", func(m *snapshot) { m.LogToPhys = m.LogToPhys[:0] }},
		{"out-of-range logToPhys", func(m *snapshot) { m.LogToPhys[0] = 99 }},
		{"broken bijection", func(m *snapshot) { m.PhysToLog[0] = m.PhysToLog[0] + 1 }},
		{"short parent column", func(m *snapshot) { m.ParentOf = m.ParentOf[:1] }},
		{"free id out of range", func(m *snapshot) { m.FreeNodes = append(m.FreeNodes, 9999) }},
		{"negative free id", func(m *snapshot) { m.FreeNodes = append(m.FreeNodes, -2) }},
		{"attr owner out of range", func(m *snapshot) {
			m.AttrKeys = append(m.AttrKeys, 9999)
			m.AttrVals = append(m.AttrVals, []int32{0, 0})
		}},
		{"attr keys/vals mismatch", func(m *snapshot) { m.AttrKeys = append(m.AttrKeys, 0) }},
		{"wrong live count", func(m *snapshot) { m.LiveNodes++ }},
		{"node id duplicated", func(m *snapshot) { m.Node[1] = m.Node[0] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := corruptRoundTrip(t, tc.mutate)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			t.Logf("rejected: %v", err)
		})
	}
}
