// Package rostore implements the paper's *original* read-only schema
// (Figure 5): dense pre/size/level columns with a virtual (void) pre
// column, and an attribute table that refers directly to pre values.
// It has no free space, no pageOffset indirection and no node/pos table —
// which is exactly why it cannot be updated, and why it serves as the
// 'ro' side of the Figure 9 experiment.
package rostore

import (
	"fmt"

	"mxq/internal/bat"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// Store is the immutable pre/size/level document store.
type Store struct {
	size  []int32
	level []int16
	kind  []uint8
	name  []int32
	text  []string

	// Attribute table sorted by owner pre, indexed CSR-style, with
	// values dictionary-encoded in prop (Figure 5).
	attrOff  []int32 // len = LiveNodes+1
	attrName []int32
	attrVal  []int32
	prop     *bat.Dict

	qn *xenc.QNamePool
}

// Build encodes a shredded tree. The tree must be a single-rooted
// document (shred.Parse guarantees that).
func Build(t *shred.Tree) (*Store, error) {
	n := len(t.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("rostore: cannot build a store from an empty tree")
	}
	s := &Store{
		size:  make([]int32, n),
		level: make([]int16, n),
		kind:  make([]uint8, n),
		name:  make([]int32, n),
		text:  make([]string, n),
		prop:  bat.NewDict(),
		qn:    xenc.NewQNamePool(),
	}
	s.attrOff = make([]int32, n+1)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		s.size[i] = nd.Size
		s.level[i] = nd.Level
		s.kind[i] = uint8(nd.Kind)
		s.text[i] = nd.Value
		switch nd.Kind {
		case xenc.KindElem, xenc.KindPI:
			s.name[i] = s.qn.Intern(nd.Name)
		default:
			s.name[i] = xenc.NoName
		}
		s.attrOff[i] = int32(len(s.attrName))
		for _, a := range nd.Attrs {
			s.attrName = append(s.attrName, s.qn.Intern(a.Name))
			s.attrVal = append(s.attrVal, s.prop.Put(a.Value))
		}
	}
	s.attrOff[n] = int32(len(s.attrName))
	return s, nil
}

// Len returns the number of tuples (== live nodes; there is no free
// space in the read-only schema).
func (s *Store) Len() xenc.Pre { return int32(len(s.size)) }

// LiveNodes returns the number of live nodes.
func (s *Store) LiveNodes() int { return len(s.size) }

// Size returns the descendant count at p.
func (s *Store) Size(p xenc.Pre) xenc.Size { return s.size[p] }

// Level returns the depth at p.
func (s *Store) Level(p xenc.Pre) xenc.Level { return s.level[p] }

// Kind returns the node kind at p.
func (s *Store) Kind(p xenc.Pre) xenc.Kind { return xenc.Kind(s.kind[p]) }

// Name returns the interned name id at p.
func (s *Store) Name(p xenc.Pre) int32 { return s.name[p] }

// Value returns the text content at p.
func (s *Store) Value(p xenc.Pre) string { return s.text[p] }

// NodeOf returns the stable node id of p. In the read-only schema node
// ids are the pre ranks themselves (the document never changes).
func (s *Store) NodeOf(p xenc.Pre) xenc.NodeID { return p }

// PreOf translates a node id back to a pre rank (the identity here).
func (s *Store) PreOf(n xenc.NodeID) xenc.Pre {
	if n < 0 || n >= s.Len() {
		return xenc.NoPre
	}
	return n
}

// Attrs returns the attributes of the element at p.
func (s *Store) Attrs(p xenc.Pre) []xenc.Attr {
	lo, hi := s.attrOff[p], s.attrOff[p+1]
	if lo == hi {
		return nil
	}
	out := make([]xenc.Attr, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = xenc.Attr{Name: s.attrName[i], Val: s.prop.Get(s.attrVal[i])}
	}
	return out
}

// AttrValue returns the value of the named attribute of the element at p.
func (s *Store) AttrValue(p xenc.Pre, name int32) (string, bool) {
	for i := s.attrOff[p]; i < s.attrOff[p+1]; i++ {
		if s.attrName[i] == name {
			return s.prop.Get(s.attrVal[i]), true
		}
	}
	return "", false
}

// Names exposes the document's interned names.
func (s *Store) Names() *xenc.QNamePool { return s.qn }

// Root returns the pre rank of the root element.
func (s *Store) Root() xenc.Pre { return 0 }

var _ xenc.DocView = (*Store)(nil)
