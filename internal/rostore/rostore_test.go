package rostore

import (
	"strings"
	"testing"
	"testing/quick"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func mustBuild(t *testing.T, doc string) *Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperEncoding(t *testing.T) {
	s := mustBuild(t, paperDoc)
	if s.Len() != 10 || s.LiveNodes() != 10 {
		t.Fatalf("len=%d live=%d, want 10/10", s.Len(), s.LiveNodes())
	}
	// The pre/size/level columns of Figure 2 (iv).
	wantSize := []int32{9, 3, 2, 0, 0, 4, 0, 2, 0, 0}
	wantLevel := []int16{0, 1, 2, 3, 3, 1, 2, 2, 3, 3}
	for p := xenc.Pre(0); p < s.Len(); p++ {
		if s.Size(p) != wantSize[p] || s.Level(p) != wantLevel[p] {
			t.Errorf("pre %d: size=%d level=%d, want %d/%d", p, s.Size(p), s.Level(p), wantSize[p], wantLevel[p])
		}
	}
	if s.Root() != 0 {
		t.Fatalf("root = %d", s.Root())
	}
}

// TestPostEquivalence verifies Figure 2's post = pre + size - level on the
// read-only store: post ranks must be a permutation of 0..n-1 and order
// closing tags correctly (descendants close before their ancestors).
func TestPostEquivalence(t *testing.T) {
	s := mustBuild(t, paperDoc)
	wantPost := []int32{9, 3, 2, 0, 1, 8, 4, 7, 5, 6}
	for p := xenc.Pre(0); p < s.Len(); p++ {
		if got := xenc.PostOf(s, p); got != wantPost[p] {
			t.Errorf("post(%d) = %d, want %d", p, got, wantPost[p])
		}
	}
}

// Property: on random documents, post is a bijection and the pre/post
// plane classifies node pairs exactly like the tree does.
func TestPrePostPlaneProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTree(seed, 60)
		s, err := Build(tr)
		if err != nil {
			return false
		}
		n := s.Len()
		seen := make(map[int32]bool, n)
		for p := xenc.Pre(0); p < n; p++ {
			post := xenc.PostOf(s, p)
			if post < 0 || post >= n || seen[post] {
				return false
			}
			seen[post] = true
		}
		// Quadrant test (Figure 2 iii): v is an ancestor of u iff
		// pre(v) < pre(u) and post(v) > post(u).
		for u := xenc.Pre(0); u < n; u++ {
			for v := xenc.Pre(0); v < n; v++ {
				inRegion := v < u && u <= v+s.Size(v)
				planeSays := v < u && xenc.PostOf(s, v) > xenc.PostOf(s, u)
				if inRegion != planeSays {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(seed int64, n int) *shred.Tree {
	b := shred.NewBuilder()
	b.Start("root")
	depth := 1
	state := uint64(seed)*2654435761 + 12345
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % m
	}
	for i := 0; i < n; i++ {
		switch next(3) {
		case 0:
			b.Start("e")
			depth++
		case 1:
			b.Text("t")
		default:
			if depth > 1 {
				b.End()
				depth--
			} else {
				b.Elem("leaf", "")
			}
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Tree()
}

func TestAttrs(t *testing.T) {
	s := mustBuild(t, `<r a="1"><p b="2" c="3"/><q/></r>`)
	aID, _ := s.Names().Lookup("a")
	bID, _ := s.Names().Lookup("b")
	if v, ok := s.AttrValue(0, aID); !ok || v != "1" {
		t.Fatalf("r/@a = %q %v", v, ok)
	}
	if v, ok := s.AttrValue(1, bID); !ok || v != "2" {
		t.Fatalf("p/@b = %q %v", v, ok)
	}
	if _, ok := s.AttrValue(2, bID); ok {
		t.Fatal("q has no attributes")
	}
	if got := s.Attrs(1); len(got) != 2 {
		t.Fatalf("p attrs = %v", got)
	}
	if got := s.Attrs(2); got != nil {
		t.Fatalf("q attrs = %v", got)
	}
}

func TestNodeIdentityIsPre(t *testing.T) {
	s := mustBuild(t, paperDoc)
	for p := xenc.Pre(0); p < s.Len(); p++ {
		if s.NodeOf(p) != p || s.PreOf(p) != p {
			t.Fatalf("identity broken at %d", p)
		}
	}
	if s.PreOf(-1) != xenc.NoPre || s.PreOf(s.Len()) != xenc.NoPre {
		t.Fatal("out-of-range PreOf must return NoPre")
	}
}

func TestEmptyTreeRejected(t *testing.T) {
	if _, err := Build(&shred.Tree{}); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestValuesAndKinds(t *testing.T) {
	s := mustBuild(t, `<r>hello<!--note--><?p data?></r>`)
	if s.Kind(1) != xenc.KindText || s.Value(1) != "hello" {
		t.Fatalf("text node: %v %q", s.Kind(1), s.Value(1))
	}
	if s.Kind(2) != xenc.KindComment || s.Value(2) != "note" {
		t.Fatalf("comment node: %v %q", s.Kind(2), s.Value(2))
	}
	if s.Kind(3) != xenc.KindPI || s.Names().Name(s.Name(3)) != "p" {
		t.Fatalf("pi node: %v", s.Kind(3))
	}
	if s.Name(1) != xenc.NoName {
		t.Fatal("text node has a name")
	}
}
