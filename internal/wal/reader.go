package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// ErrPruned reports that a streaming reader's position was pruned away:
// the log no longer holds every record past the requested LSN, so a
// gap-free replay from there is impossible. The replication layer
// answers it by falling back to a full snapshot bootstrap.
var ErrPruned = errors.New("wal: records past the requested LSN were pruned")

// FirstLSN returns the lowest LSN the live segments still hold (0 when
// the log holds no records).
func (l *Log) FirstLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		if seg.records > 0 {
			return seg.firstLSN
		}
	}
	return 0
}

// CanStream reports whether the log still holds every record with
// LSN > after — i.e. whether a Reader starting there can replay
// gap-free to the tail. A position beyond the tail (a diverged
// follower) is not streamable either: the records it claims to have
// were never written here.
func (l *Log) CanStream(after uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after > l.lsn {
		return false
	}
	for _, seg := range l.segs {
		if seg.records > 0 {
			return after+1 >= seg.firstLSN
		}
	}
	// No records live: nothing to replay, as long as the caller is not
	// behind the counter (records below l.lsn were pruned).
	return after >= l.lsn
}

// Reader is a streaming cursor over the log's records, built for
// replication senders: it follows segment rotations, never returns a
// record past the durability watermark (a primary crash may lose
// anything beyond it, and a follower must not apply what the primary
// can forget), and reports "caught up" as (nil, nil) instead of
// blocking — callers park on DurableChanged between drains.
//
// A Reader is not safe for concurrent use. It holds at most one open
// segment file handle; a segment pruned while the handle is open keeps
// streaming from the unlinked file, and the cursor moves past it before
// reopening anything, so pruning never corrupts an in-flight drain —
// the prune barrier (internal/repl) exists to keep segments a follower
// has not acked yet, not to protect this cursor.
type Reader struct {
	l   *Log
	lsn uint64 // last LSN handed out
	seq uint64 // seq of the open segment (0 = none)
	f   *os.File
	off int64
}

// NewReader returns a streaming cursor positioned just past `after`.
// It fails with ErrPruned if the log no longer holds every record from
// there.
func (l *Log) NewReader(after uint64) (*Reader, error) {
	if !l.CanStream(after) {
		return nil, fmt.Errorf("%w (after %d, first live %d)", ErrPruned, after, l.FirstLSN())
	}
	return &Reader{l: l, lsn: after}, nil
}

// LSN returns the last LSN the reader handed out.
func (r *Reader) LSN() uint64 { return r.lsn }

// Close releases the open segment handle. The reader is unusable after.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.l = nil
}

// Next returns the next record, or (nil, nil) when every durable record
// has been handed out. Records are returned strictly in LSN order with
// no gaps; any impossibility (pruned position, torn durable record) is
// an error, after which the reader must be discarded.
func (r *Reader) Next() (*Record, error) {
	if r.l == nil {
		return nil, errors.New("wal: reader is closed")
	}
	target := r.lsn + 1
	if target > r.l.DurableLSN() {
		return nil, nil // caught up (to what is safe to ship)
	}
	for attempt := 0; ; attempt++ {
		if r.f == nil {
			if err := r.open(target); err != nil {
				return nil, err
			}
		}
		rec, n, ok := readRecordAt(r.f, r.off)
		if ok {
			r.off += n
			if rec.LSN <= r.lsn {
				continue // skipping the prefix after (re)opening mid-segment
			}
			if rec.LSN != target {
				return nil, fmt.Errorf("wal: stream gap: want %d, segment yields %d", target, rec.LSN)
			}
			r.lsn = rec.LSN
			return rec, nil
		}
		// Short read or bad checksum at the current offset. The target is
		// durable, so either it lives in a later segment (this one is
		// sealed behind us) or the write just raced us and a re-read will
		// see it. advanceSegment distinguishes the two under l.mu.
		advanced, err := r.advanceSegment(target)
		if err != nil {
			return nil, err
		}
		if !advanced && attempt > 0 {
			// Same segment twice with no progress: the durable record is
			// unreadable where it must be. Surface it rather than spin.
			return nil, fmt.Errorf("wal: durable record %d unreadable in segment %d", target, r.seq)
		}
	}
}

// open positions the reader at the segment containing target.
func (r *Reader) open(target uint64) error {
	r.l.mu.Lock()
	var path string
	var seq uint64
	for _, seg := range r.l.segs {
		if seg.records > 0 && seg.firstLSN <= target && target <= seg.lastLSN {
			path, seq = seg.path, seg.seq
			break
		}
	}
	r.l.mu.Unlock()
	if path == "" {
		return fmt.Errorf("%w: record %d is in no live segment", ErrPruned, target)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPruned, err) // unlinked between the scan and the open
	}
	r.f, r.seq, r.off = f, seq, 0
	return nil
}

// advanceSegment decides what an in-segment read failure means: if the
// target now lives in a later segment, move there (reports true);
// otherwise the record should appear at the current offset on a
// re-read (reports false).
func (r *Reader) advanceSegment(target uint64) (bool, error) {
	r.l.mu.Lock()
	var nextSeq uint64
	for _, seg := range r.l.segs {
		if seg.records > 0 && seg.firstLSN <= target && target <= seg.lastLSN {
			nextSeq = seg.seq
			break
		}
	}
	r.l.mu.Unlock()
	if nextSeq == 0 {
		return false, fmt.Errorf("%w: record %d is in no live segment", ErrPruned, target)
	}
	if nextSeq == r.seq {
		return false, nil
	}
	r.f.Close()
	r.f = nil
	return true, nil
}

// readRecordAt decodes one record at off. ok=false means a clean or
// torn end — the caller decides whether that is "wait" or "move on".
func readRecordAt(f *os.File, off int64) (*Record, int64, bool) {
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		return nil, 0, false
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+8); err != nil {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, 0, false
	}
	return &rec, int64(8 + int(n)), true
}
