package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendAssignsLSNs(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	for i := 1; i <= 3; i++ {
		lsn, err := l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d", l.LastLSN())
	}
}

func TestReplayAfter(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]Op{{Kind: OpRename, Target: int32(i), Name: "n"}}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	if err := l.Replay(2, func(r *Record) error {
		seen = append(seen, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 3 || seen[2] != 5 {
		t.Fatalf("replayed %v, want [3 4 5]", seen)
	}
	// Appending still works after a replay.
	if lsn, err := l.Append(nil); err != nil || lsn != 6 {
		t.Fatalf("append after replay: %d, %v", lsn, err)
	}
}

func TestReopenFindsLastLSN(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	l.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Fatalf("LastLSN after reopen = %d", l2.LastLSN())
	}
	if lsn, _ := l2.Append(nil); lsn != 3 {
		t.Fatalf("next lsn = %d", lsn)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpSetValue, Target: 9, Value: "x"}})
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{8, 0, 0, 0, 1, 2, 3}) // header promising 8 bytes, only 3 follow
	f.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1", l2.LastLSN())
	}
	count := 0
	l2.Replay(0, func(*Record) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d records, want 1", count)
	}
}

func TestCorruptPayloadDropped(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	off, _ := l.f.Seek(0, 2)
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	l.Close()
	// Flip a byte in the second record's payload.
	data, _ := os.ReadFile(path)
	data[off+10] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1 (corrupt record dropped)", l2.LastLSN())
	}
}

func TestTruncate(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	l.Replay(0, func(*Record) error { count++; return nil })
	if count != 0 {
		t.Fatalf("records after truncate = %d", count)
	}
	// LSNs keep increasing (no reuse after truncation).
	if lsn, _ := l.Append(nil); lsn != 2 {
		t.Fatalf("lsn after truncate = %d, want 2", lsn)
	}
}

func TestOpsRoundTrip(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	ops := []Op{
		{Kind: OpAppendChild, Target: 3, Frag: []FragNode{
			{Kind: 0, Level: 0, Size: 1, Name: "item", Attrs: []string{"id", "i1"}},
			{Kind: 1, Level: 1, Value: "hello"},
		}, NewIDs: []int32{10, 11}},
		{Kind: OpSetAttr, Target: 10, Name: "k", Value: "v"},
	}
	l.Append(ops)
	var got *Record
	l.Replay(0, func(r *Record) error { got = r; return nil })
	if got == nil || len(got.Ops) != 2 {
		t.Fatalf("record = %+v", got)
	}
	if got.Ops[0].Frag[0].Name != "item" || got.Ops[0].Frag[1].Value != "hello" {
		t.Fatalf("fragment mangled: %+v", got.Ops[0].Frag)
	}
	if got.Ops[0].NewIDs[1] != 11 || got.Ops[1].Name != "k" {
		t.Fatalf("ops mangled: %+v", got.Ops)
	}
}

func TestOpenOnBadPath(t *testing.T) {
	if _, err := Open(filepath.Join("/nonexistent-dir-xyz", "x.wal"), Options{}); err == nil {
		t.Fatal("open on bad path succeeded")
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	calls := 0
	err := l.Replay(0, func(*Record) error {
		calls++
		if calls == 1 {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil {
		t.Fatal("callback error swallowed")
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error", calls)
	}
	// The log must still be appendable after a failed replay.
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathAccessor(t *testing.T) {
	l, path := openTemp(t)
	defer l.Close()
	if l.Path() != path {
		t.Fatalf("Path() = %q, want %q", l.Path(), path)
	}
}

func TestSyncedAppend(t *testing.T) {
	// Exercise the fsync path (Options without NoSync).
	path := filepath.Join(t.TempDir(), "synced.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]Op{{Kind: OpRename, Target: 1, Name: "n"}}); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d", l.LastLSN())
	}
}

// TestAppendPositionAfterFailedReplay pins the fix for a corruption bug:
// a replay aborted by its callback must not leave the write position
// mid-file, or the next Append overwrites existing records.
func TestAppendPositionAfterFailedReplay(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	l.Replay(0, func(*Record) error { return os.ErrInvalid })
	l.Append([]Op{{Kind: OpDelete, Target: 3}})
	l.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var lsns []uint64
	l2.Replay(0, func(r *Record) error { lsns = append(lsns, r.LSN); return nil })
	if len(lsns) != 3 || lsns[0] != 1 || lsns[2] != 3 {
		t.Fatalf("log corrupted by post-replay append: %v", lsns)
	}
}
