package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

// segFiles lists the on-disk segment files for a base path, in order.
func segFiles(t *testing.T, path string) []string {
	t.Helper()
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, m := range matches {
		if len(m) == len(path)+1+segWidth {
			out = append(out, m)
		}
	}
	return out
}

func TestAppendAssignsLSNs(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	for i := 1; i <= 3; i++ {
		lsn, err := l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if l.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d", l.LastLSN())
	}
}

func TestReplayAfter(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]Op{{Kind: OpRename, Target: int32(i), Name: "n"}}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	if err := l.Replay(2, func(r *Record) error {
		seen = append(seen, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 3 || seen[2] != 5 {
		t.Fatalf("replayed %v, want [3 4 5]", seen)
	}
	// Appending still works after a replay.
	if lsn, err := l.Append(nil); err != nil || lsn != 6 {
		t.Fatalf("append after replay: %d, %v", lsn, err)
	}
}

func TestReopenFindsLastLSN(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	l.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Fatalf("LastLSN after reopen = %d", l2.LastLSN())
	}
	if lsn, _ := l2.Append(nil); lsn != 3 {
		t.Fatalf("next lsn = %d", lsn)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpSetValue, Target: 9, Value: "x"}})
	l.Close()
	segs := segFiles(t, path)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{8, 0, 0, 0, 1, 2, 3}) // header promising 8 bytes, only 3 follow
	f.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1", l2.LastLSN())
	}
	count := 0
	l2.Replay(0, func(*Record) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d records, want 1", count)
	}
}

func TestCorruptPayloadDropped(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	off := l.Segments()[0].Size
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	l.Close()
	// Flip a byte in the second record's payload.
	seg := segFiles(t, path)[0]
	data, _ := os.ReadFile(seg)
	data[off+10] ^= 0xFF
	os.WriteFile(seg, data, 0o644)
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1 (corrupt record dropped)", l2.LastLSN())
	}
}

func TestOpsRoundTrip(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	ops := []Op{
		{Kind: OpAppendChild, Target: 3, Frag: []FragNode{
			{Kind: 0, Level: 0, Size: 1, Name: "item", Attrs: []string{"id", "i1"}},
			{Kind: 1, Level: 1, Value: "hello"},
		}, NewIDs: []int32{10, 11}},
		{Kind: OpSetAttr, Target: 10, Name: "k", Value: "v"},
	}
	l.Append(ops)
	var got *Record
	l.Replay(0, func(r *Record) error { got = r; return nil })
	if got == nil || len(got.Ops) != 2 {
		t.Fatalf("record = %+v", got)
	}
	if got.Ops[0].Frag[0].Name != "item" || got.Ops[0].Frag[1].Value != "hello" {
		t.Fatalf("fragment mangled: %+v", got.Ops[0].Frag)
	}
	if got.Ops[0].NewIDs[1] != 11 || got.Ops[1].Name != "k" {
		t.Fatalf("ops mangled: %+v", got.Ops)
	}
}

func TestOpenOnBadPath(t *testing.T) {
	if _, err := Open(filepath.Join("/nonexistent-dir-xyz", "x.wal"), Options{}); err == nil {
		t.Fatal("open on bad path succeeded")
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Append([]Op{{Kind: OpDelete, Target: 2}})
	calls := 0
	err := l.Replay(0, func(*Record) error {
		calls++
		if calls == 1 {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil {
		t.Fatal("callback error swallowed")
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error", calls)
	}
	// The log must still be appendable after a failed replay.
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathAccessor(t *testing.T) {
	l, path := openTemp(t)
	defer l.Close()
	if l.Path() != path {
		t.Fatalf("Path() = %q, want %q", l.Path(), path)
	}
}

func TestSyncedAppend(t *testing.T) {
	// Exercise the fsync path (Options without NoSync).
	path := filepath.Join(t.TempDir(), "synced.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append([]Op{{Kind: OpRename, Target: 1, Name: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 0 {
		t.Fatalf("record durable before Sync: %d", l.DurableLSN())
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() != 1 || l.SyncCount() != 1 {
		t.Fatalf("durable=%d syncs=%d, want 1/1", l.DurableLSN(), l.SyncCount())
	}
}

// TestGroupCommitSharesFsync: one leader fsync covers every record
// appended before it, so the followers' Sync calls are free.
func TestGroupCommitSharesFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Sync(lsns[4]); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncCount(); got != 1 {
		t.Fatalf("leader fsyncs = %d, want 1", got)
	}
	// Followers whose LSNs the leader covered pay nothing.
	for _, lsn := range lsns[:4] {
		if err := l.Sync(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.SyncCount(); got != 1 {
		t.Fatalf("fsyncs after follower Syncs = %d, want 1", got)
	}
}

// TestGroupCommitConcurrent drives the door from many goroutines; every
// record must come out durable with (usually far) fewer fsyncs than
// appends. The hard assertion is only <=: the batching ratio is timing-
// dependent, but correctness (durable >= each lsn) is not.
func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group2.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
			if err != nil {
				errs <- err
				return
			}
			if err := l.Sync(lsn); err != nil {
				errs <- err
				return
			}
			if l.DurableLSN() < lsn {
				errs <- fmt.Errorf("lsn %d not durable after Sync", lsn)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if l.SyncCount() > n {
		t.Fatalf("fsyncs = %d > %d appends", l.SyncCount(), n)
	}
}

// TestGroupCommitDelayBatches: with a delay window the leader's sleep
// gives late committers time to board, so concurrent commits share far
// fewer fsyncs — and the wait must not weaken the durability contract
// (every Sync still returns with its LSN durable).
func TestGroupCommitDelayBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delay.wal")
	l, err := Open(path, Options{GroupCommitDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
			if err != nil {
				errs <- err
				return
			}
			if err := l.Sync(lsn); err != nil {
				errs <- err
				return
			}
			if l.DurableLSN() < lsn {
				errs <- fmt.Errorf("lsn %d not durable after delayed Sync", lsn)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 16 goroutines were in flight inside one 5ms window; a leader
	// that slept it out covers nearly all of them. The generous bound
	// only fails if the delay is not batching at all.
	if got := l.SyncCount(); got > n/2 {
		t.Fatalf("fsyncs = %d for %d concurrent commits — delay window not batching", got, n)
	}
}

func TestRotationAndPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 40; i++ {
		if _, err := l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "some filler text to grow the record"}}); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 40 oversized appends", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Seq != segs[i-1].Seq+1 {
			t.Fatalf("segment seqs not consecutive: %+v", segs)
		}
		if segs[i-1].Records > 0 && segs[i].Records > 0 && segs[i].FirstLSN != segs[i-1].LastLSN+1 {
			t.Fatalf("segment LSNs not contiguous: %+v", segs)
		}
	}
	// Prune up to the end of the second segment: exactly the first two go.
	upTo := segs[1].LastLSN
	if err := l.Prune(upTo); err != nil {
		t.Fatal(err)
	}
	left := l.Segments()
	if len(left) != len(segs)-2 || left[0].Seq != segs[2].Seq {
		t.Fatalf("prune(%d) left %+v", upTo, left)
	}
	// A replay from upTo sees exactly the remaining records, in order.
	want := upTo + 1
	if err := l.Replay(upTo, func(r *Record) error {
		if r.LSN != want {
			return fmt.Errorf("replayed LSN %d, want %d", r.LSN, want)
		}
		want++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want != 41 {
		t.Fatalf("replay stopped at %d", want-1)
	}
	// Reopen: same records, same LastLSN.
	l.Close()
	l2, err := Open(path, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 40 {
		t.Fatalf("LastLSN after reopen = %d", l2.LastLSN())
	}
}

// TestPruneNeverTouchesActiveSegment: records above the prune LSN that
// share the active segment with covered records survive.
func TestPruneNeverTouchesActiveSegment(t *testing.T) {
	l, _ := openTemp(t) // huge segment bytes: everything stays in segment 1
	defer l.Close()
	for i := 0; i < 4; i++ {
		l.Append([]Op{{Kind: OpDelete, Target: int32(i)}})
	}
	if err := l.Prune(2); err != nil {
		t.Fatal(err)
	}
	count := 0
	l.Replay(0, func(*Record) error { count++; return nil })
	if count != 4 {
		t.Fatalf("prune of active segment dropped records: %d of 4 left", count)
	}
}

// TestCutAtRecordBoundaryKeepsAllBelow pins the exact-boundary case: a
// crash that cuts the log at the very end of record k must recover
// exactly k records — an off-by-one here is silent data loss.
func TestCutAtRecordBoundaryKeepsAllBelow(t *testing.T) {
	l, path := openTemp(t)
	var ends []int64
	for i := 0; i < 3; i++ {
		l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "v"}})
		ends = append(ends, l.Segments()[0].Size)
	}
	l.Close()
	seg := segFiles(t, path)[0]
	if err := os.Truncate(seg, ends[1]); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Fatalf("LastLSN after boundary cut = %d, want 2", l2.LastLSN())
	}
}

// TestCutMidSegmentDiscardsLaterSegments: a cut that tears a middle
// segment must drop every later segment too, or replay would produce a
// non-contiguous record stream.
func TestCutMidSegmentDiscardsLaterSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cut.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "padding padding padding"}})
	}
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	l.Close()
	// Tear the second segment in half.
	if err := os.Truncate(segs[1].Path, segs[1].Size/2); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, Options{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := len(l2.Segments()); got != 2 {
		t.Fatalf("segments after mid-cut = %d, want 2 (later segments discarded)", got)
	}
	prev := uint64(0)
	if err := l2.Replay(0, func(r *Record) error {
		if r.LSN != prev+1 {
			return fmt.Errorf("non-contiguous replay: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if prev == 0 || prev >= 20 {
		t.Fatalf("replayed through LSN %d, want a strict prefix", prev)
	}
}

// TestEmptyTailSegmentIsHarmless: a crash between sealing a segment and
// writing the first record of the next one leaves a zero-byte tail; the
// log must open and keep appending.
func TestEmptyTailSegmentIsHarmless(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Close()
	empty := fmt.Sprintf("%s.%0*d", path, segWidth, 2)
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN = %d, want 1", l2.LastLSN())
	}
	if lsn, err := l2.Append(nil); err != nil || lsn != 2 {
		t.Fatalf("append into empty tail: %d, %v", lsn, err)
	}
}

// TestLegacySingleFileMigrated: a pre-segmentation log (one file at the
// base path) is renamed to segment 1 on open and replays as before.
func TestLegacySingleFileMigrated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.wal")

	// Fabricate a legacy log by writing a segment and renaming it down.
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Op{{Kind: OpRename, Target: 7, Name: "x"}})
	l.Close()
	seg := segFiles(t, path)[0]
	if err := os.Rename(seg, path); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Fatalf("LastLSN after migration = %d", l2.LastLSN())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("legacy file still present: %v", err)
	}
}

func TestEnsureLSN(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.EnsureLSN(9)
	if lsn, _ := l.Append(nil); lsn != 10 {
		t.Fatalf("lsn after EnsureLSN(9) = %d, want 10", lsn)
	}
	l.EnsureLSN(3) // never lowers
	if lsn, _ := l.Append(nil); lsn != 11 {
		t.Fatalf("lsn = %d, want 11", lsn)
	}
}

func TestTailStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "some value text for bytes"}})
	}
	bytes, records := l.TailStats()
	if records != 10 || bytes <= 0 {
		t.Fatalf("tail = %d bytes / %d records", bytes, records)
	}
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	if err := l.Prune(segs[0].LastLSN); err != nil {
		t.Fatal(err)
	}
	bytes2, records2 := l.TailStats()
	if records2 >= records || bytes2 >= bytes {
		t.Fatalf("prune did not shrink tail: %d/%d -> %d/%d", bytes, records, bytes2, records2)
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	l, _ := openTemp(t)
	l.Append([]Op{{Kind: OpDelete, Target: 1}})
	l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := l.Sync(1); err != nil {
		t.Fatalf("Sync of an already-durable LSN after Close: %v", err)
	}
}

func TestTailStatsAbove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "above.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "some value text for byte volume"}})
	}
	if _, records := l.TailStatsAbove(0); records != 10 {
		t.Fatalf("records above 0 = %d, want 10", records)
	}
	bytes, records := l.TailStatsAbove(7)
	if records != 3 {
		t.Fatalf("records above 7 = %d, want 3", records)
	}
	total, _ := l.TailStats()
	if bytes <= 0 || bytes >= total {
		t.Fatalf("bytes above 7 = %d, want in (0, %d)", bytes, total)
	}
	if b, r := l.TailStatsAbove(10); b != 0 || r != 0 {
		t.Fatalf("tail above the last LSN = %d/%d, want 0/0", b, r)
	}
}

// TestRemoveSegmentsExactMatch: removing one log's segments must not
// touch a sibling log whose base name shares a prefix.
func TestRemoveSegmentsExactMatch(t *testing.T) {
	dir := t.TempDir()
	short, err := Open(filepath.Join(dir, "a.wal"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	short.Append([]Op{{Kind: OpDelete, Target: 1}})
	short.Close()
	long, err := Open(filepath.Join(dir, "a.wal.extra.wal"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	long.Append([]Op{{Kind: OpDelete, Target: 2}})
	long.Close()

	RemoveSegments(filepath.Join(dir, "a.wal"))
	if files := segFiles(t, filepath.Join(dir, "a.wal")); len(files) != 0 {
		t.Fatalf("own segments survived: %v", files)
	}
	reopened, err := Open(filepath.Join(dir, "a.wal.extra.wal"), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.LastLSN() != 1 {
		t.Fatalf("sibling log damaged: LastLSN = %d, want 1", reopened.LastLSN())
	}
}

// TestSyncToleratesRotateRace: a Sync whose captured file handle is
// sealed and closed by a concurrent rotation must not report an error —
// the seal fsync made the record durable.
func TestSyncToleratesRotateRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rotrace.wal")
	l, err := Open(path, Options{SegmentBytes: 64}) // sync on, tiny segments
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				lsn, err := l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "rotate every append"}})
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if l.DurableLSN() != l.LastLSN() {
		t.Fatalf("durable %d != appended %d", l.DurableLSN(), l.LastLSN())
	}
}

// TestReplayRacesAppend: Replay is a pure read over fresh handles and
// must be safe to run while another goroutine appends (run under -race;
// this pins the fix for scanSegment mutating shared segment state).
func TestReplayRacesAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replayrace.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]Op{{Kind: OpDelete, Target: 0}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < 40; i++ {
			l.Append([]Op{{Kind: OpSetValue, Target: int32(i), Value: "concurrent append payload"}})
		}
	}()
	for i := 0; i < 10; i++ {
		prev := uint64(0)
		if err := l.Replay(0, func(r *Record) error {
			if r.LSN != prev+1 {
				return fmt.Errorf("replay gap: %d after %d", r.LSN, prev)
			}
			prev = r.LSN
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	bytes, records := l.TailStats()
	if records != 40 || bytes <= 0 {
		t.Fatalf("accounting corrupted by concurrent replay: %d bytes / %d records", bytes, records)
	}
}

// recordSize measures the encoded size of one boundary-test record by
// appending it to a throwaway log. The tests below derive SegmentBytes
// from it, so they stay exact if the record encoding ever changes.
func recordSize(t *testing.T) int64 {
	t.Helper()
	l, _ := openTemp(t)
	defer l.Close()
	if _, err := l.Append(boundaryOps()); err != nil {
		t.Fatal(err)
	}
	return l.Segments()[0].Size
}

// boundaryOps builds the fixed op list the boundary tests append. The
// LSN inside the record is gob-encoded, so identical ops produce
// identical record sizes only while the LSN stays in gob's single-byte
// range — the tests keep well under that.
func boundaryOps() []Op {
	return []Op{{Kind: OpSetValue, Target: 7, Value: "boundary filler"}}
}

// TestRotationExactBoundary: a record landing exactly at SegmentBytes
// seals the segment with the record intact — never split across the
// boundary — and the next record starts the new segment.
func TestRotationExactBoundary(t *testing.T) {
	s := recordSize(t)
	path := filepath.Join(t.TempDir(), "exact.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 3 * s})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 3; i++ {
		if _, err := l.Append(boundaryOps()); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments after exact fill = %d, want sealed + fresh active", len(segs))
	}
	if segs[0].Size != 3*s || segs[0].Records != 3 || segs[0].LastLSN != 3 {
		t.Fatalf("sealed segment = %+v, want exactly 3 records / %d bytes", segs[0], 3*s)
	}
	if segs[1].Records != 0 || segs[1].Size != 0 {
		t.Fatalf("active segment not empty after rotation: %+v", segs[1])
	}

	// The next record lands wholly in the new segment: nothing of it in
	// the sealed one, no split.
	if _, err := l.Append(boundaryOps()); err != nil {
		t.Fatal(err)
	}
	segs = l.Segments()
	if segs[0].Size != 3*s {
		t.Fatalf("sealed segment grew after rotation: %+v", segs[0])
	}
	if segs[1].Records != 1 || segs[1].FirstLSN != 4 || segs[1].Size != s {
		t.Fatalf("record after boundary = %+v, want 1 record of %d bytes starting at LSN 4", segs[1], s)
	}
}

// TestRotationOneByteShort: one byte under the threshold must NOT seal —
// rotation fires only once the active segment has reached SegmentBytes.
func TestRotationOneByteShort(t *testing.T) {
	s := recordSize(t)
	path := filepath.Join(t.TempDir(), "short.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 3*s + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(boundaryOps()); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); len(segs) != 1 {
		t.Fatalf("segments one byte short of threshold = %d, want 1", len(segs))
	}
	// The fourth append crosses the threshold and seals.
	if _, err := l.Append(boundaryOps()); err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); len(segs) != 2 || segs[0].Records != 4 {
		t.Fatalf("segments after crossing = %+v", segs)
	}
}

// TestRotationBoundaryRecovery: a reopen across an exact-boundary seal
// replays every record exactly once — no gap and no duplicate at the
// segment seam.
func TestRotationBoundaryRecovery(t *testing.T) {
	s := recordSize(t)
	path := filepath.Join(t.TempDir(), "recover.wal")
	l, err := Open(path, Options{NoSync: true, SegmentBytes: 3 * s})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7 // 3 in the first sealed segment, 3 in the second, 1 active
	for i := 0; i < n; i++ {
		if _, err := l.Append(boundaryOps()); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, Options{NoSync: true, SegmentBytes: 3 * s})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != n {
		t.Fatalf("LastLSN after reopen = %d, want %d", l2.LastLSN(), n)
	}
	want := uint64(1)
	if err := l2.Replay(0, func(r *Record) error {
		if r.LSN != want {
			return fmt.Errorf("replayed LSN %d, want %d", r.LSN, want)
		}
		want++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want != n+1 {
		t.Fatalf("replay covered %d records, want %d", want-1, n)
	}
	// Appends continue seamlessly after the boundary recovery.
	lsn, err := l2.Append(boundaryOps())
	if err != nil || lsn != n+1 {
		t.Fatalf("append after reopen = %d, %v", lsn, err)
	}
}

// TestRotationBoundarySyncDurable: with fsync on, a Sync issued for the
// record that triggered the seal still lands (the seal itself fsyncs the
// sealed segment; Sync must not stall on a file that is already closed).
func TestRotationBoundarySyncDurable(t *testing.T) {
	s := recordSize(t)
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := Open(path, Options{SegmentBytes: 3 * s}) // fsync enabled
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 3; i++ {
		if last, err = l.Append(boundaryOps()); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() < last {
		t.Fatalf("durable = %d after Sync(%d) across a seal", l.DurableLSN(), last)
	}
	if segs := l.Segments(); len(segs) != 2 {
		t.Fatalf("segments = %d, want seal to have happened", len(segs))
	}
}
