// Package wal implements the write-ahead log of the transaction protocol
// (Figure 8). A commit appends exactly one record — "writing the WAL is
// the crucial stage in transaction commit, it consists of a single I/O" —
// containing the transaction's resolved update operations; recovery
// replays committed records that a crash prevented from being carried
// into the checkpointed store image.
//
// Records are length-prefixed, CRC-32 protected gob blobs. A torn tail
// (crash mid-append) is detected by length/checksum mismatch and
// truncated away, which is exactly the atomicity guarantee the paper's
// single-I/O commit gives.
//
// # Segments
//
// The log is not one file but a sequence of rotating, size-bounded
// segment files ("<base>.00000001", "<base>.00000002", ...). Appends go
// to the newest (active) segment; once it exceeds Options.SegmentBytes
// it is sealed — fsynced one final time — and a fresh segment becomes
// active. Sealing never splits a record. Segmentation is what makes
// checkpoint truncation safe and cheap: instead of truncating a single
// file (racing concurrent commits), the checkpointer calls Prune, which
// deletes only whole sealed segments whose every record the checkpoint
// already covers. A commit that lands while a checkpoint streams can at
// worst share the active segment, which Prune never touches — so a
// checkpoint can never delete a record it does not cover, by
// construction.
//
// # Group commit
//
// Append writes a record but does not make it durable; Sync(lsn) does,
// through a batching door: the first committer through the door becomes
// the leader and issues one fsync covering every record appended so far,
// while committers arriving during that fsync wait at the door and
// usually find their record already durable when they get through —
// turning N commit fsyncs into ~1 under load. SyncCount exposes how many
// physical fsyncs the door actually issued.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mxq/internal/xenc"
)

// OpKind enumerates the logical operations a record can carry.
type OpKind uint8

// The redo operation kinds.
const (
	OpInsertBefore OpKind = iota
	OpInsertAfter
	OpAppendChild
	OpInsertChildAt
	OpDelete
	OpSetValue
	OpRename
	OpSetAttr
	OpRemoveAttr
)

// FragNode is one node of a serialized insert fragment.
type FragNode struct {
	Kind  uint8
	Level int16
	Size  int32
	Name  string
	Value string
	Attrs []string // name/value pairs, flattened
}

// Op is one resolved update operation. Targets are immutable node ids;
// inserts carry the ids the transaction observed (NewIDs) so replay can
// map transaction-local ids to the ids the base store hands out.
type Op struct {
	Kind   OpKind
	Target xenc.NodeID
	Child  int32
	Name   string
	Value  string
	Frag   []FragNode
	NewIDs []xenc.NodeID
}

// Record is one committed transaction.
type Record struct {
	LSN uint64
	Ops []Op
}

// DefaultSegmentBytes is the rotation threshold when Options leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 1 << 20

// segWidth is the zero-padded width of the numeric segment suffix
// (lexicographic order == numeric order for any realistic count).
const segWidth = 8

// segment is one on-disk log file. Only the last (active) segment holds
// an open file handle; sealed segments are immutable and reopened
// read-only when replay or recovery needs them.
type segment struct {
	seq      uint64
	path     string
	f        *os.File // non-nil only for the active segment
	firstLSN uint64   // 0 when the segment holds no records
	lastLSN  uint64
	size     int64
	records  int
}

// SegmentInfo describes one segment for observability and tests.
type SegmentInfo struct {
	Path     string
	Seq      uint64
	FirstLSN uint64
	LastLSN  uint64
	Size     int64
	Records  int
}

// Log is an append-only, segmented write-ahead log.
type Log struct {
	mu       sync.Mutex // segment list, active file, lsn, tail counters
	dir      string
	base     string // segment name prefix (e.g. "doc.wal")
	segs     []*segment
	lsn      uint64
	sync     bool
	segBytes int64
	gcDelay  time.Duration // group-commit leader's pre-fsync wait

	// durable is the highest LSN known to have reached stable storage;
	// it only ever advances. syncMu is the group-commit door: the leader
	// holds it across one fsync while followers queue behind it.
	durable   atomic.Uint64
	syncMu    sync.Mutex
	syncCount atomic.Uint64

	// notifyC broadcasts durable-LSN advances to streaming readers (the
	// replication sender parks on it instead of polling): it is closed
	// and replaced whenever the watermark rises. Lazily created by
	// DurableChanged.
	notifyMu sync.Mutex
	notifyC  chan struct{}
}

// Options configure a log.
type Options struct {
	// NoSync skips fsync entirely (for tests and benchmarks that do not
	// measure durability); Sync becomes a no-op that reports every
	// appended record as durable.
	NoSync bool
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the segment is sealed and a new one started. Zero means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// GroupCommitDelay is how long a group-commit leader waits before
	// flushing, giving concurrent committers time to queue behind the one
	// fsync. Zero (the default) flushes immediately: lowest latency, one
	// fsync per quiet commit. A small delay (hundreds of microseconds)
	// trades that latency for fewer, larger group commits under load.
	GroupCommitDelay time.Duration
}

// Open opens or creates the segmented log rooted at path (segments live
// at path.00000001, path.00000002, ...). It scans all segments in order
// to find the last valid LSN, truncating a torn tail and discarding any
// segments beyond a cut (a crash — or crash injection — that severed the
// log mid-stream). A legacy single-file log at path itself is migrated
// to the first segment.
func Open(path string, opts Options) (*Log, error) {
	l := &Log{
		dir:      filepath.Dir(path),
		base:     filepath.Base(path),
		sync:     !opts.NoSync,
		segBytes: opts.SegmentBytes,
		gcDelay:  opts.GroupCommitDelay,
	}
	if l.segBytes <= 0 {
		l.segBytes = DefaultSegmentBytes
	}
	if err := l.migrateLegacy(path); err != nil {
		return nil, err
	}
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	if err := l.scanAll(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if _, err := l.addSegment(1); err != nil {
			return nil, err
		}
	}
	// Open the active (last) segment for appending — unless addSegment
	// just created it with an open handle of its own.
	active := l.segs[len(l.segs)-1]
	if active.f == nil {
		f, err := os.OpenFile(active.path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(active.size, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		active.f = f
	}
	l.durable.Store(l.lsn) // whatever survived on disk is as durable as it gets
	return l, nil
}

// migrateLegacy renames a pre-segmentation single-file log at path to
// the first segment, so old durability directories keep recovering.
func (l *Log) migrateLegacy(path string) error {
	fi, err := os.Stat(path)
	if err != nil || fi.IsDir() {
		return nil
	}
	dst := l.segPath(1)
	if _, err := os.Stat(dst); err == nil {
		return fmt.Errorf("wal: both legacy log %s and segment %s exist", path, dst)
	}
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("wal: migrating legacy log: %w", err)
	}
	return nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s.%0*d", l.base, segWidth, seq))
}

// loadSegments globs and orders the on-disk segment files.
func (l *Log) loadSegments() error {
	pattern := filepath.Join(l.dir, l.base+".*")
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, m := range matches {
		if !isSegmentName(l.base, filepath.Base(m)) {
			continue // not a segment (e.g. a foreign ".tmp")
		}
		seq, err := strconv.ParseUint(m[len(m)-segWidth:], 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		l.segs = append(l.segs, &segment{seq: seq, path: m})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].seq < l.segs[j].seq })
	return nil
}

// scanAll walks every segment in order, truncating the first torn record
// and discarding all segments after it: a crash only ever tears the
// active tail, so anything beyond a tear is the far side of a cut and
// must not be replayed (its records would be non-contiguous with the
// recovered prefix).
func (l *Log) scanAll() error {
	changed := false
	for i, seg := range l.segs {
		meta, err := scanFile(seg.path, nil)
		if err != nil {
			return err
		}
		seg.firstLSN, seg.lastLSN = meta.firstLSN, meta.lastLSN
		seg.records, seg.size = meta.records, meta.size
		torn := meta.validEnd < meta.size
		if torn {
			if err := os.Truncate(seg.path, meta.validEnd); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			seg.size = meta.validEnd
			changed = true
		}
		if seg.lastLSN > l.lsn {
			l.lsn = seg.lastLSN
		}
		if torn && i < len(l.segs)-1 {
			for _, later := range l.segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return fmt.Errorf("wal: removing cut segment %s: %w", later.path, err)
				}
			}
			l.segs = l.segs[:i+1]
			break
		}
	}
	if changed && l.sync {
		// Make the truncation/removals durable now: a crash after this
		// recovery must not resurrect post-cut segments whose records are
		// non-contiguous with the truncated prefix.
		return l.syncDir()
	}
	return nil
}

// segMeta is what one pass over a segment file learns.
type segMeta struct {
	validEnd int64 // offset just past the last valid record
	size     int64 // file size (>= validEnd when the tail is torn)
	firstLSN uint64
	lastLSN  uint64
	records  int
}

// scanFile reads one segment file start to finish, calling fn (if
// non-nil) per valid record. It is a pure read — no *segment state is
// touched — so Replay can run concurrently with Append without racing
// the segment accounting Append maintains under l.mu.
func scanFile(path string, fn func(*Record) error) (segMeta, error) {
	var meta segMeta
	f, err := os.Open(path)
	if err != nil {
		return meta, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return meta, fmt.Errorf("wal: %w", err)
	}
	meta.size = fi.Size()
	r := io.Reader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return meta, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return meta, nil // absurd length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return meta, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return meta, nil // corrupt tail
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return meta, nil
		}
		if fn != nil {
			if err := fn(&rec); err != nil {
				return meta, err
			}
		}
		meta.validEnd += int64(8 + int(n))
		if meta.firstLSN == 0 {
			meta.firstLSN = rec.LSN
		}
		meta.lastLSN = rec.LSN
		meta.records++
	}
}

// addSegment creates and registers an empty segment file. On failure
// nothing is registered, so the caller's segment list stays usable.
func (l *Log) addSegment(seq uint64) (*segment, error) {
	seg := &segment{seq: seq, path: l.segPath(seq)}
	f, err := os.OpenFile(seg.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating segment: %w", err)
	}
	seg.f = f
	if l.sync {
		if err := l.syncDir(); err != nil {
			f.Close()
			os.Remove(seg.path)
			return nil, err
		}
	}
	l.segs = append(l.segs, seg)
	return seg, nil
}

// syncDir makes directory-level changes (segment create/delete) durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}

// LastLSN returns the LSN of the last appended record (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// SyncCount returns how many physical fsyncs the group-commit door has
// issued (a measure of batching: N commits sharing one fsync raise it
// by 1).
func (l *Log) SyncCount() uint64 { return l.syncCount.Load() }

// Append writes one record to the active segment and assigns its LSN.
// The record is NOT durable until Sync(lsn) returns: Append is the part
// of the commit that runs inside the critical section, Sync the part
// that runs outside it, shared with other committers.
func (l *Log) Append(ops []Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{LSN: l.lsn + 1, Ops: ops}
	if err := l.appendLocked(&rec); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// AppendRecord appends a record that already carries its LSN — the
// replication apply path, where the follower's log must reproduce the
// primary's numbering exactly. The record must be contiguous with the
// local tail; a gap is refused rather than written (a follower that
// skipped a record would diverge silently on its next recovery).
// Durability follows the same contract as Append: call Sync to settle
// it, typically once per applied batch.
func (l *Log) AppendRecord(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.LSN != l.lsn+1 {
		return fmt.Errorf("wal: non-contiguous append: local tail %d, record %d", l.lsn, rec.LSN)
	}
	return l.appendLocked(rec)
}

// appendLocked writes one record (rec.LSN must be l.lsn+1) to the
// active segment. Called with l.mu held.
func (l *Log) appendLocked(rec *Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return fmt.Errorf("wal: encoding record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	active := l.segs[len(l.segs)-1]
	if active.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	// One Write for header+payload: a failure (even a short write) is
	// repaired by rolling the file back to the last record boundary, so
	// no garbage can sit between this record's slot and a later append —
	// recovery's scan would stop at the garbage and silently drop every
	// durable record behind it otherwise.
	record := append(hdr[:], payload.Bytes()...)
	if _, err := active.f.Write(record); err != nil {
		l.repairActive(active)
		return fmt.Errorf("wal: %w", err)
	}
	l.lsn = rec.LSN
	if active.firstLSN == 0 {
		active.firstLSN = rec.LSN
	}
	active.lastLSN = rec.LSN
	active.size += int64(len(record))
	active.records++
	if !l.sync {
		// Without fsync every append is "durable" the moment it is
		// written; keeping the marker current keeps Sync a no-op.
		l.advanceDurable(rec.LSN)
	}
	if active.size >= l.segBytes {
		// Rotation is best-effort: the record above is fully written and
		// will be made durable by Sync against this (still-active)
		// segment, so a failed seal or segment creation must NOT fail the
		// append — a WAL record that persists for a commit reported as
		// failed would resurrect at recovery. The oversized segment stays
		// active and rotation is retried on the next append.
		l.tryRotate(active)
	}
	return nil
}

// repairActive rolls the active segment back to the last record
// boundary after a failed write. If even the rollback fails, the
// segment is closed so further appends error loudly instead of landing
// beyond unscanned garbage.
func (l *Log) repairActive(active *segment) {
	if _, err := active.f.Seek(active.size, io.SeekStart); err == nil {
		if err := active.f.Truncate(active.size); err == nil {
			return
		}
	}
	active.f.Close()
	active.f = nil
}

// tryRotate seals the active segment and starts a new one. The seal
// fsync makes every record in the sealed segment durable, so Sync never
// needs to revisit anything but the active file; the old file is closed
// only after the new segment exists, so any failure leaves the old
// segment active and writable (rotation retries later). Called with
// l.mu held.
func (l *Log) tryRotate(active *segment) {
	if l.sync {
		if err := active.f.Sync(); err != nil {
			return // seal not durable: keep appending here, retry later
		}
		l.advanceDurable(active.lastLSN)
	}
	if _, err := l.addSegment(active.seq + 1); err != nil {
		return // could not start a new segment: old one stays active
	}
	active.f.Close() // sealed and never written again; close error is moot
	active.f = nil
}

// advance raises a monotonic atomic watermark to at least v, reporting
// whether it actually rose.
func advance(a *atomic.Uint64, v uint64) bool {
	for {
		cur := a.Load()
		if cur >= v {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// advanceDurable raises the durability watermark and wakes every
// streaming reader parked on DurableChanged.
func (l *Log) advanceDurable(v uint64) {
	if !advance(&l.durable, v) {
		return
	}
	l.notifyMu.Lock()
	if l.notifyC != nil {
		close(l.notifyC)
		l.notifyC = nil
	}
	l.notifyMu.Unlock()
}

// DurableChanged returns a channel closed on the next durable-LSN
// advance. The idiom is: read DurableLSN, consume what it covers, take
// the channel, re-check DurableLSN (an advance may have slipped between
// the check and the take), then park on the channel.
func (l *Log) DurableChanged() <-chan struct{} {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	if l.notifyC == nil {
		l.notifyC = make(chan struct{})
	}
	return l.notifyC
}

// Sync makes every record with LSN <= lsn durable. It is the
// group-commit door: safe for any number of concurrent callers, the
// first through becomes the leader and fsyncs once for everyone queued
// behind it. A no-op when the log runs with NoSync.
func (l *Log) Sync(lsn uint64) error {
	if !l.sync || l.durable.Load() >= lsn {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= lsn {
		return nil // the previous leader's fsync covered us
	}
	if l.gcDelay > 0 {
		// Group-commit window: this caller is the leader (it holds the
		// door); waiting here lets concurrent committers append records
		// the single fsync below will cover. The wait happens after the
		// durable re-check and before the target capture, so late
		// arrivals' LSNs are included, not just observed.
		time.Sleep(l.gcDelay)
	}
	// Capture the active file and the highest appended LSN: the fsync
	// below covers every record appended before the capture (records in
	// earlier segments were made durable when those segments were
	// sealed).
	l.mu.Lock()
	f := l.segs[len(l.segs)-1].f
	target := l.lsn
	l.mu.Unlock()
	if f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	l.syncCount.Add(1)
	if err := f.Sync(); err != nil {
		// A rotation racing this door may have sealed — fsynced — and
		// closed the captured file after we let go of l.mu; the caller's
		// record is durable then (the seal covered everything in the
		// segment), so only report an error the durability watermark does
		// not contradict.
		if l.durable.Load() >= lsn {
			return nil
		}
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.advanceDurable(target)
	return nil
}

// Replay calls fn for every valid record with LSN > after, in segment
// order. It reads the segment files through fresh read-only handles and
// never touches the log's segment accounting, so it may run while
// another goroutine appends (it observes some prefix of the racing
// appends).
func (l *Log) Replay(after uint64, fn func(*Record) error) error {
	l.mu.Lock()
	paths := make([]string, len(l.segs))
	for i, seg := range l.segs {
		paths[i] = seg.path
	}
	l.mu.Unlock()
	for _, path := range paths {
		_, err := scanFile(path, func(r *Record) error {
			if r.LSN <= after {
				return nil
			}
			return fn(r)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// EnsureLSN raises the log's LSN counter to at least lsn. Recovery calls
// it with the checkpoint's LSN: after pruning empties the log, a
// reopened Log would otherwise restart numbering at 1 and hand out LSNs
// the checkpoint already covers — and Replay, which skips records with
// LSN <= the checkpoint LSN, would silently drop those commits on the
// next recovery.
func (l *Log) EnsureLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lsn < lsn {
		l.lsn = lsn
	}
}

// Prune deletes sealed segments whose every record has LSN <= upTo (a
// checkpoint at upTo made them redundant). The active segment is never
// deleted, so a record appended while the caller was checkpointing can
// never be lost — the checkpoint's LSN pin can only cover sealed
// history or a prefix of the active segment, and partial segments are
// kept whole.
func (l *Log) Prune(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut := 0
	for i, seg := range l.segs {
		if i == len(l.segs)-1 {
			break // never the active segment
		}
		if seg.records > 0 && seg.lastLSN > upTo {
			break
		}
		cut = i + 1
	}
	if cut == 0 {
		return nil
	}
	for _, seg := range l.segs[:cut] {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: pruning segment: %w", err)
		}
	}
	l.segs = append(l.segs[:0], l.segs[cut:]...)
	if l.sync {
		return l.syncDir()
	}
	return nil
}

// TailStats reports the un-pruned log tail: total bytes and record count
// across all live segments. The auto-checkpoint policy reads it to
// decide when the WAL has grown enough to warrant a new checkpoint.
func (l *Log) TailStats() (bytes int64, records int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		bytes += seg.size
		records += seg.records
	}
	return bytes, records
}

// TailStatsAbove reports the log tail *beyond* lsn: how many records
// with LSN > lsn the live segments hold, and (approximately, prorating
// the segment that straddles the boundary) how many bytes they span.
// Unlike TailStats it excludes checkpoint-covered records parked in the
// active segment that Prune cannot delete, so the auto-checkpoint
// policy does not re-trigger on work a checkpoint already absorbed.
func (l *Log) TailStatsAbove(lsn uint64) (bytes int64, records int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, seg := range l.segs {
		if seg.records == 0 || seg.lastLSN <= lsn {
			continue
		}
		if seg.firstLSN > lsn {
			bytes += seg.size
			records += seg.records
			continue
		}
		above := int(seg.lastLSN - lsn) // LSNs are contiguous within a segment
		records += above
		bytes += seg.size * int64(above) / int64(seg.records)
	}
	return bytes, records
}

// isSegmentName reports whether file (a bare name) is a segment of the
// log with base name base.
func isSegmentName(base, file string) bool {
	if len(file) != len(base)+1+segWidth || file[:len(base)] != base || file[len(base)] != '.' {
		return false
	}
	for _, c := range file[len(base)+1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// SegmentPaths lists the on-disk segment files of the log rooted at
// path, in segment order, without opening the log. Tooling (e.g. the
// crash-injection harness) shares this matcher so it can never disagree
// with Open about what a segment is.
func SegmentPaths(path string) ([]string, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if isSegmentName(base, e.Name()) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out) // fixed-width numeric suffix: lexicographic == segment order
	return out, nil
}

// RemoveSegments deletes every segment file of the log rooted at path,
// plus a legacy single-file log at path itself (Drop uses it; matching
// is exact, so another document whose name shares a prefix is never
// touched).
func RemoveSegments(path string) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if isSegmentName(base, e.Name()) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	os.Remove(path)
}

// Segments describes the live segments in order (observability, tests).
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.segs))
	for i, seg := range l.segs {
		out[i] = SegmentInfo{
			Path: seg.path, Seq: seg.seq,
			FirstLSN: seg.firstLSN, LastLSN: seg.lastLSN,
			Size: seg.size, Records: seg.records,
		}
	}
	return out
}

// Close closes the active segment file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return nil
	}
	active := l.segs[len(l.segs)-1]
	if active.f == nil {
		return nil
	}
	err := active.f.Close()
	active.f = nil
	return err
}

// Path returns the log's base path (segments live at Path().NNNNNNNN).
func (l *Log) Path() string { return filepath.Join(l.dir, l.base) }
