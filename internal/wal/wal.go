// Package wal implements the write-ahead log of the transaction protocol
// (Figure 8). A commit appends exactly one record — "writing the WAL is
// the crucial stage in transaction commit, it consists of a single I/O" —
// containing the transaction's resolved update operations; recovery
// replays committed records that a crash prevented from being carried
// into the checkpointed store image.
//
// Records are length-prefixed, CRC-32 protected gob blobs. A torn tail
// (crash mid-append) is detected by length/checksum mismatch and
// truncated away, which is exactly the atomicity guarantee the paper's
// single-I/O commit gives.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mxq/internal/xenc"
)

// OpKind enumerates the logical operations a record can carry.
type OpKind uint8

// The redo operation kinds.
const (
	OpInsertBefore OpKind = iota
	OpInsertAfter
	OpAppendChild
	OpInsertChildAt
	OpDelete
	OpSetValue
	OpRename
	OpSetAttr
	OpRemoveAttr
)

// FragNode is one node of a serialized insert fragment.
type FragNode struct {
	Kind  uint8
	Level int16
	Size  int32
	Name  string
	Value string
	Attrs []string // name/value pairs, flattened
}

// Op is one resolved update operation. Targets are immutable node ids;
// inserts carry the ids the transaction observed (NewIDs) so replay can
// map transaction-local ids to the ids the base store hands out.
type Op struct {
	Kind   OpKind
	Target xenc.NodeID
	Child  int32
	Name   string
	Value  string
	Frag   []FragNode
	NewIDs []xenc.NodeID
}

// Record is one committed transaction.
type Record struct {
	LSN uint64
	Ops []Op
}

// Log is an append-only write-ahead log backed by a file.
type Log struct {
	f    *os.File
	path string
	lsn  uint64
	sync bool
}

// Options configure a log.
type Options struct {
	// NoSync skips fsync on append (for tests and benchmarks that do not
	// measure durability).
	NoSync bool
}

// Open opens or creates the log at path and scans it to find the last
// valid LSN, truncating any torn tail.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: path, sync: !opts.NoSync}
	valid, last, err := l.scan(nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.lsn = last
	return l, nil
}

// LastLSN returns the LSN of the last committed record (0 if none).
func (l *Log) LastLSN() uint64 { return l.lsn }

// Append writes one record and makes it durable. It assigns and returns
// the record's LSN.
func (l *Log) Append(ops []Op) (uint64, error) {
	rec := Record{LSN: l.lsn + 1, Ops: ops}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		return 0, fmt.Errorf("wal: encoding record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Write(payload.Bytes()); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.lsn = rec.LSN
	return rec.LSN, nil
}

// Replay calls fn for every valid record with LSN > after, in order.
func (l *Log) Replay(after uint64, fn func(*Record) error) error {
	_, _, err := l.scan(func(r *Record) error {
		if r.LSN <= after {
			return nil
		}
		return fn(r)
	})
	// Restore the append position even when fn failed — a later Append
	// must never land mid-file.
	if _, serr := l.f.Seek(0, io.SeekEnd); serr != nil && err == nil {
		err = serr
	}
	return err
}

// scan walks the log from the start, calling fn (if non-nil) per valid
// record. It returns the offset after the last valid record and its LSN.
func (l *Log) scan(fn func(*Record) error) (validEnd int64, lastLSN uint64, err error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	r := io.Reader(l.f)
	off := int64(0)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, lastLSN, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 {
			return off, lastLSN, nil // absurd length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, lastLSN, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, lastLSN, nil // corrupt tail
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return off, lastLSN, nil
		}
		if fn != nil {
			if err := fn(&rec); err != nil {
				return off, lastLSN, err
			}
		}
		off += int64(8 + int(n))
		lastLSN = rec.LSN
	}
}

// EnsureLSN raises the log's LSN counter to at least lsn. Recovery calls
// it with the checkpoint's LSN: after Truncate empties the log, a
// reopened Log would otherwise restart numbering at 1 and hand out LSNs
// the checkpoint already covers — and Replay, which skips records with
// LSN <= the checkpoint LSN, would silently drop those commits on the
// next recovery.
func (l *Log) EnsureLSN(lsn uint64) {
	if l.lsn < lsn {
		l.lsn = lsn
	}
}

// Truncate discards all records (after a checkpoint made them redundant).
func (l *Log) Truncate() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
