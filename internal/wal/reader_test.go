package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func openTestLog(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "doc.wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// appendN appends n records of one op each and returns the last LSN.
func appendN(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := l.Append([]Op{{Kind: OpSetValue, Value: "v"}})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func drain(t *testing.T, r *Reader) []uint64 {
	t.Helper()
	var got []uint64
	for {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			return got
		}
		got = append(got, rec.LSN)
	}
}

// TestReaderAcrossRotations streams a log whose tiny segment bound
// forces many rotations: the cursor must cross every seal gap-free.
func TestReaderAcrossRotations(t *testing.T) {
	l := openTestLog(t, Options{NoSync: true, SegmentBytes: 256})
	last := appendN(t, l, 50)
	if segs := l.Segments(); len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drain(t, r)
	if uint64(len(got)) != last {
		t.Fatalf("streamed %d records, want %d", len(got), last)
	}
	for i, lsn := range got {
		if lsn != uint64(i)+1 {
			t.Fatalf("record %d has LSN %d", i, lsn)
		}
	}
	// Mid-stream start: skip a prefix.
	r2, err := l.NewReader(last - 5)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := drain(t, r2); len(got) != 5 || got[0] != last-4 {
		t.Fatalf("suffix stream = %v", got)
	}
}

// TestReaderDurableGate proves the cursor never ships a record the
// group commit has not settled: a crash could lose it, and a follower
// must not apply what the primary can forget.
func TestReaderDurableGate(t *testing.T) {
	l := openTestLog(t, Options{})
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	lsn := appendN(t, l, 3) // appended, not synced
	if rec, err := r.Next(); err != nil || rec != nil {
		t.Fatalf("undurable record shipped: %v, %v", rec, err)
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, r); len(got) != 3 {
		t.Fatalf("after sync streamed %v", got)
	}
	// Catch-up is resumable: more appends flow through the same cursor.
	lsn = appendN(t, l, 2)
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, r); len(got) != 2 || got[1] != lsn {
		t.Fatalf("resumed stream = %v", got)
	}
}

// TestReaderPruned: a start position below the pruned horizon must be a
// typed refusal (the replication layer falls back to a snapshot), never
// a silent gap.
func TestReaderPruned(t *testing.T) {
	l := openTestLog(t, Options{NoSync: true, SegmentBytes: 128})
	last := appendN(t, l, 40)
	if err := l.Prune(last); err != nil {
		t.Fatal(err)
	}
	first := l.FirstLSN()
	if first <= 1 && len(l.Segments()) > 1 {
		t.Fatalf("prune kept everything (first live %d)", first)
	}
	if l.CanStream(0) {
		t.Fatal("CanStream(0) after prune")
	}
	if _, err := l.NewReader(0); !errors.Is(err, ErrPruned) {
		t.Fatalf("NewReader(0) = %v, want ErrPruned", err)
	}
	// From the tail it still streams.
	if !l.CanStream(last) {
		t.Fatal("CanStream(tail) = false")
	}
	r, err := l.NewReader(last)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	more := appendN(t, l, 2)
	if got := drain(t, r); len(got) != 2 || got[1] != more {
		t.Fatalf("tail stream = %v", got)
	}
	// Beyond the tail (diverged follower) is not streamable.
	if l.CanStream(more + 10) {
		t.Fatal("CanStream beyond the tail")
	}
}

// TestAppendRecord: the follower apply path reproduces the primary's
// numbering exactly and refuses gaps.
func TestAppendRecord(t *testing.T) {
	l := openTestLog(t, Options{NoSync: true})
	if err := l.AppendRecord(&Record{LSN: 2}); err == nil {
		t.Fatal("gap accepted")
	}
	for lsn := uint64(1); lsn <= 3; lsn++ {
		if err := l.AppendRecord(&Record{LSN: lsn, Ops: []Op{{Kind: OpSetValue, Value: "x"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendRecord(&Record{LSN: 3}); err == nil {
		t.Fatal("replayed LSN accepted")
	}
	if got := l.LastLSN(); got != 3 {
		t.Fatalf("LastLSN = %d", got)
	}
	var lsns []uint64
	if err := l.Replay(0, func(rec *Record) error {
		lsns = append(lsns, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 3 || lsns[2] != 3 {
		t.Fatalf("replay = %v", lsns)
	}
}

// TestDurableChanged: a parked waiter wakes when the watermark rises.
func TestDurableChanged(t *testing.T) {
	l := openTestLog(t, Options{})
	ch := l.DurableChanged()
	lsn := appendN(t, l, 1)
	select {
	case <-ch:
		t.Fatal("woke before sync")
	default:
	}
	if err := l.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no wake after sync")
	}
}
