package ckpt

import (
	"testing"
)

// TestPruneBarrierHoldsSegments: a checkpoint may only prune WAL
// records every retained image covers AND every live follower has
// acked. With the barrier pinned low, segments stay; once it lifts, the
// next checkpoint reclaims them.
func TestPruneBarrierHoldsSegments(t *testing.T) {
	e := newEnv(t, 256) // tiny segments: every few commits seals one
	barrier := uint64(2)
	e.ck.SetPruneBarrier(func() uint64 { return barrier })

	for i := 0; i < 30; i++ {
		e.commitBook(t, "s1", "b")
	}
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	// Another checkpoint: retention alone would now allow pruning below
	// the previous image's LSN, but the barrier pins records > 2.
	for i := 0; i < 5; i++ {
		e.commitBook(t, "s1", "c")
	}
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	if first := e.log.FirstLSN(); first > barrier+1 {
		t.Fatalf("pruned past the barrier: first live LSN %d, barrier %d", first, barrier)
	}
	if !e.log.CanStream(barrier) {
		t.Fatal("a follower acked at the barrier can no longer stream")
	}

	// Barrier lifts (follower caught up or was dropped): the next
	// checkpoint prunes to its retention horizon.
	barrier = ^uint64(0)
	e.commitBook(t, "s1", "d")
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	if first := e.log.FirstLSN(); first <= 2 && len(e.log.Segments()) > 2 {
		t.Fatalf("barrier lifted but old segments remain (first live %d)", first)
	}
}
