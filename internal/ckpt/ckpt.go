// Package ckpt is the online durability subsystem: incremental
// content-addressed checkpoints that never stall commits, a crash-safe
// manifest chain, and recovery that degrades gracefully over torn
// artifacts.
//
// The paper's transaction protocol (Section 3.2 / Figure 8) rests on two
// legs: a single-I/O WAL commit and a checkpointed store image. This
// package makes the checkpoint leg *online* and *O(churn)*. A checkpoint
// pins a (snapshot, LSN) pair inside the commit critical section — an
// O(pages) refcount sweep under the shared read lock
// (tx.Manager.PinCheckpoint) — and then writes the snapshot in
// content-addressed form (core.Store.SaveChunked) outside any lock:
// every column chunk serializes to a SHA-256-named file in the
// document's chunk store, and the LSN-stamped image shrinks to a small
// manifest of chunk names. Chunks the store already holds — everything
// the COW layer did not see dirtied since the previous checkpoint — are
// re-referenced, not rewritten, so checkpoint I/O tracks churn, not
// document size, and frequent auto-checkpoints are cheap. Completion is
// recorded in a manifest written via tmp+rename+fsync; only then are
// WAL segments wholly below the checkpoint's LSN deleted
// (wal.Log.Prune), which closes the legacy lost-commit window by
// construction: a record the checkpoint does not cover lives in a
// segment Prune keeps.
//
// # Artifacts
//
// For a document <name> in directory dir:
//
//	<name>-<LSN as 16 hex digits>.ckpt   checkpoint images: magic +
//	                                     JSON {lsn, store manifest}
//	                                     (or a legacy monolithic gob)
//	<name>.chunks/ab/<sha256>.chunk      content-addressed column chunks
//	<name>.manifest                      JSON {file, lsn} naming the
//	                                     current checkpoint
//	<name>.wal.NNNNNNNN                  WAL segments (see internal/wal)
//
// Every image/manifest is published atomically (write to *.tmp, fsync,
// rename, fsync dir), and chunks are synced before any image naming
// them is published. Cleanup keeps the previous checkpoint image
// besides the current one, prunes the WAL only below the *oldest
// retained* checkpoint, and garbage-collects chunks by mark-and-sweep:
// a chunk referenced by ANY retained image is never deleted, so every
// retained image stays materializable — if the current image, its
// manifest, or one of its chunks is lost or torn, recovery still has an
// older image plus every chunk and WAL record needed to roll it
// forward.
//
// # Recovery
//
// Recover tries candidates in order of preference — the manifest's
// target first, then every other image on disk by descending LSN, then
// a legacy unversioned image — and accepts the first one that loads and
// whose WAL replay is gap-free (contiguous LSNs from the image's pin).
// Image manifests are self-contained (each names every chunk of the
// full document), so a candidate either materializes completely or is
// skipped whole — recovery never mixes two checkpoints. A leftover
// *.tmp, a manifest naming a missing file, a torn image, a torn or
// missing chunk file, or an empty segment tail all degrade to the next
// candidate instead of failing.
package ckpt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mxq/internal/chunkstore"
	"mxq/internal/core"
	"mxq/internal/tx"
	"mxq/internal/wal"
)

// ErrWALGap reports that WAL replay found non-contiguous LSNs: a record
// needed to roll the checkpoint forward is missing (e.g. a deleted
// segment). Recovery treats it as "this candidate cannot recover" and
// falls back to the next one.
var ErrWALGap = errors.New("ckpt: gap in WAL records")

// ErrNoCheckpoint reports that no usable checkpoint exists for the
// document.
var ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")

// ErrClosed reports a Run on a closed checkpointer (a checkpoint racing
// document close: the WAL and image directory are no longer writable).
var ErrClosed = errors.New("ckpt: checkpointer is closed")

// Pin captures a copy-on-write snapshot of the store together with the
// LSN of the last WAL record the snapshot covers, atomically with
// respect to commits. tx.Manager.PinCheckpoint is the canonical
// implementation. The checkpointer releases the snapshot when done.
type Pin func() (*core.Store, uint64)

// manifest is the JSON wire form of the current-checkpoint pointer.
type manifest struct {
	File string `json:"file"` // checkpoint file name, relative to dir
	LSN  uint64 `json:"lsn"`
}

// imageMagicV2 opens a content-addressed checkpoint image. A legacy
// image starts with its little-endian pin LSN instead; this magic
// decodes to an LSN upwards of 10^16, which no real WAL reaches, so the
// two formats cannot be confused.
var imageMagicV2 = [8]byte{'M', 'X', 'Q', 'C', 'K', 'V', '2', 0}

// imageV2 is the JSON body of a content-addressed image: the pin LSN
// plus the store's chunk manifest.
type imageV2 struct {
	LSN   uint64              `json:"lsn"`
	Store *core.ChunkManifest `json:"store"`
}

// ChunkDir returns the document's default chunk-store directory.
func ChunkDir(dir, name string) string { return filepath.Join(dir, name+".chunks") }

// DefaultChunkStore opens the document's default local chunk store.
func DefaultChunkStore(dir, name string) *chunkstore.Dir {
	return chunkstore.NewDir(ChunkDir(dir, name))
}

// RemoveChunks deletes the document's default chunk directory (document
// drop; RemoveArtifacts deliberately leaves chunks in place because a
// re-bootstrapped document on a new LSN line reuses them by content).
func RemoveChunks(dir, name string) { os.RemoveAll(ChunkDir(dir, name)) }

// Stats is the checkpointer's cumulative I/O accounting — the
// observable incremental-checkpoint win.
type Stats struct {
	Checkpoints   uint64 // images published
	ChunksWritten uint64 // chunks the store was missing (bytes moved)
	ChunksReused  uint64 // chunk references served by dedupe
	BytesWritten  uint64 // chunk bytes actually written
}

// Checkpointer writes online checkpoints for one document.
type Checkpointer struct {
	dir  string
	name string
	log  *wal.Log // may be nil (checkpoint-only durability)
	pin  Pin

	// keep is how many superseded checkpoint images to retain besides
	// the current one. The WAL is pruned only below the oldest retained
	// image, so every retained image can actually be rolled forward.
	keep int

	// mu serializes checkpoints: concurrent Run calls (auto + manual)
	// queue rather than race on the manifest. Close takes it too, so
	// closing waits out an in-flight checkpoint instead of yanking the
	// WAL from under its prune.
	mu     sync.Mutex
	closed bool

	// cs is the chunk store images reference; nil until first use, then
	// the document's default local directory unless SetChunkStore
	// installed another backend.
	cs chunkstore.Store

	// chunkWrap, when non-nil, wraps the chunk store for the duration of
	// a save (testing hook: throttling Put stretches the write phase to
	// prove commits do not stall behind it).
	chunkWrap func(chunkstore.Store) chunkstore.Store

	// Cumulative Stats counters.
	statCkpts, statChunksW, statChunksR, statBytes atomic.Uint64

	// pruneBarrier, when non-nil, returns the highest LSN the WAL may be
	// pruned up to for reasons beyond checkpoint retention — the
	// replication layer holds it at the lowest LSN a live follower has
	// acked, so a checkpoint never deletes segments a follower still
	// needs to catch up from (^uint64(0) means "no external constraint").
	pruneBarrier func() uint64
}

// New returns a checkpointer for document name in dir. log may be nil.
func New(dir, name string, log *wal.Log, pin Pin) *Checkpointer {
	return &Checkpointer{dir: dir, name: name, log: log, pin: pin, keep: 1}
}

// SetChunkWrapper installs a chunk-store wrapper applied for the
// duration of each save (testing hook; pass nil to remove).
func (c *Checkpointer) SetChunkWrapper(fn func(chunkstore.Store) chunkstore.Store) {
	c.chunkWrap = fn
}

// SetChunkStore installs the chunk store images reference (an
// alternative backend, or a store shared with a bootstrap). Install it
// before the first Run; nil keeps the document's default local
// directory.
func (c *Checkpointer) SetChunkStore(cs chunkstore.Store) {
	c.mu.Lock()
	c.cs = cs
	c.mu.Unlock()
}

// chunks returns the chunk store, defaulting lazily. Caller holds c.mu.
func (c *Checkpointer) chunks() chunkstore.Store {
	if c.cs == nil {
		c.cs = DefaultChunkStore(c.dir, c.name)
	}
	return c.cs
}

// Stats returns cumulative checkpoint I/O counters (safe concurrently
// with a running checkpoint).
func (c *Checkpointer) Stats() Stats {
	return Stats{
		Checkpoints:   c.statCkpts.Load(),
		ChunksWritten: c.statChunksW.Load(),
		ChunksReused:  c.statChunksR.Load(),
		BytesWritten:  c.statBytes.Load(),
	}
}

// SetPruneBarrier installs an external prune constraint, queried once
// per checkpoint while the checkpointer's own lock is held. Install it
// before the first Run (or while no checkpoint can be racing); the
// function itself must be safe for concurrent use.
func (c *Checkpointer) SetPruneBarrier(fn func() uint64) { c.pruneBarrier = fn }

// ckptFile names the image for a pin LSN.
func ckptFile(name string, lsn uint64) string {
	return fmt.Sprintf("%s-%016x.ckpt", name, lsn)
}

// parseCkptLSN extracts the LSN from an image file name produced by
// ckptFile, reporting ok=false for anything else (legacy or foreign
// files). Matching is exact — lowercase hex, fixed width, the "-"
// boundary in place — so a document whose name is a dash-prefix of
// another ("a" vs "a-b") never claims the other's images.
func parseCkptLSN(name, file string) (uint64, bool) {
	base := strings.TrimSuffix(file, ".ckpt")
	if base == file || !strings.HasPrefix(base, name+"-") {
		return 0, false
	}
	hex := base[len(name)+1:]
	if len(hex) != 16 || !isLowerHex(hex) {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

func isLowerHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ownsTmp reports whether a "*.tmp" file (bare name) is an in-progress
// or stale artifact of this document — exactly an image, manifest or
// legacy-image path plus the ".tmp" suffix. A bare prefix match would
// claim (and let retire delete) another document's in-flight tmp when
// one name prefixes the other.
func ownsTmp(name, file string) bool {
	base := strings.TrimSuffix(file, ".tmp")
	if base == file {
		return false
	}
	if base == name+manifestSuffix || base == name+".ckpt" {
		return true
	}
	_, ok := parseCkptLSN(name, base)
	return ok
}

// DocumentOfArtifact reports which document a durability artifact file
// (bare name) belongs to: a manifest, an LSN-stamped image, or a legacy
// unversioned image. ok=false for everything else (tmp files, WAL
// segments, foreign files). Database discovery shares this parser so it
// can never disagree with Recover's candidate scan.
func DocumentOfArtifact(file string) (string, bool) {
	if strings.HasSuffix(file, ".tmp") {
		return "", false
	}
	if base := strings.TrimSuffix(file, manifestSuffix); base != file {
		return base, base != ""
	}
	base := strings.TrimSuffix(file, ".ckpt")
	if base == file || base == "" {
		return "", false
	}
	if i := len(base) - 17; i > 0 && base[i] == '-' && isLowerHex(base[i+1:]) {
		return base[:i], true // LSN-stamped image
	}
	return base, true // legacy unversioned image
}

// RemoveArtifacts deletes every checkpoint artifact of the document —
// images, manifest, legacy image, stale tmp files — with exact-boundary
// matching, leaving other documents' files alone.
func RemoveArtifacts(dir, name string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		_, isImage := parseCkptLSN(name, n)
		if isImage || n == name+manifestSuffix || n == name+".ckpt" || ownsTmp(name, n) {
			os.Remove(filepath.Join(dir, n))
		}
	}
}

// CurrentLSN returns the manifest's checkpoint LSN for the document (0
// if there is no readable manifest): the baseline the auto-checkpoint
// policy measures the WAL tail against.
func CurrentLSN(dir, name string) uint64 {
	m, err := readManifest(dir, name)
	if err != nil {
		return 0
	}
	return m.LSN
}

// Run writes one checkpoint: pin, write missing chunks, publish,
// retire, collect garbage chunks. It returns the LSN the new checkpoint
// covers. The pin is the only step that shares a lock with committers
// (a shared read lock held for an O(pages) refcount sweep); the chunk
// writes — O(chunks dirtied since the previous checkpoint), thanks to
// content-addressed dedupe — proceed from the pinned immutable snapshot
// while commits continue.
func (c *Checkpointer) Run() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}

	img, lsn := c.pin()
	defer img.Release()

	// Chunks first: SaveChunked syncs them, so by the time an image
	// naming them exists, every chunk it references is durable.
	cs := c.chunks()
	if c.chunkWrap != nil {
		cs = c.chunkWrap(cs)
	}
	man, stats, err := img.SaveChunked(cs)
	if err != nil {
		return 0, fmt.Errorf("ckpt: writing chunks: %w", err)
	}
	file := ckptFile(c.name, lsn)
	err = writeFileAtomic(c.dir, file, func(w io.Writer) error {
		if _, werr := w.Write(imageMagicV2[:]); werr != nil {
			return werr
		}
		return json.NewEncoder(w).Encode(imageV2{LSN: lsn, Store: man})
	})
	if err != nil {
		return 0, fmt.Errorf("ckpt: writing image: %w", err)
	}

	m, _ := json.Marshal(manifest{File: file, LSN: lsn})
	err = writeFileAtomic(c.dir, c.name+manifestSuffix, func(w io.Writer) error {
		_, werr := w.Write(m)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	c.statCkpts.Add(1)
	c.statChunksW.Add(uint64(stats.ChunksWritten))
	c.statChunksR.Add(uint64(stats.ChunksReused))
	c.statBytes.Add(uint64(stats.BytesWritten))

	// The manifest is durable: the new checkpoint is the recovery root.
	// Retire images beyond the retention horizon and prune WAL segments
	// every retained image has already absorbed — capped by the external
	// prune barrier (a live follower's lowest acked LSN), because a
	// record a follower has not durably applied yet is not redundant no
	// matter how many local images cover it.
	pruneTo := c.retire(lsn)
	if c.pruneBarrier != nil {
		if b := c.pruneBarrier(); b < pruneTo {
			pruneTo = b
		}
	}
	if c.log != nil {
		if err := c.log.Prune(pruneTo); err != nil {
			return 0, fmt.Errorf("ckpt: pruning wal: %w", err)
		}
	}
	// With retirement settled, sweep chunks no retained image references.
	c.gc()
	return lsn, nil
}

// gc garbage-collects the chunk store by mark-and-sweep: every chunk
// referenced by ANY image still on disk is live (the retention
// invariant — a retained image must stay materializable); everything
// else is swept. If any retained image cannot be read, the sweep is
// skipped entirely: an unreadable reference list means an unknowable
// mark set, and leaking chunks until the image retires is strictly
// safer than deleting one it might name. Legacy gob images reference no
// chunks. Caller holds c.mu.
func (c *Checkpointer) gc() {
	imgs, err := Images(c.dir, c.name)
	if err != nil {
		return
	}
	live := make(map[chunkstore.Hash]bool)
	for _, img := range imgs {
		hs, err := ImageChunks(filepath.Join(c.dir, img.File))
		if err != nil {
			return
		}
		for _, h := range hs {
			live[h] = true
		}
	}
	var dead []chunkstore.Hash
	if err := c.chunks().ForEach(func(h chunkstore.Hash) error {
		if !live[h] {
			dead = append(dead, h)
		}
		return nil
	}); err != nil {
		return
	}
	for _, h := range dead {
		c.chunks().Delete(h)
	}
}

// Image describes one LSN-stamped checkpoint image on disk.
type Image struct {
	File string // bare file name, relative to the document directory
	LSN  uint64
}

// Images lists the document's LSN-stamped checkpoint images, newest
// first (the legacy unversioned <name>.ckpt, if any, is not included).
func Images(dir, name string) ([]Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var imgs []Image
	for _, e := range entries {
		if lsn, ok := parseCkptLSN(name, e.Name()); ok {
			imgs = append(imgs, Image{File: e.Name(), LSN: lsn})
		}
	}
	sort.Slice(imgs, func(i, j int) bool { return imgs[i].LSN > imgs[j].LSN })
	return imgs, nil
}

// ImageChunks returns the chunk hashes a checkpoint image references,
// in manifest order — nil (and no error) for a legacy monolithic image,
// which references none.
func ImageChunks(path string) ([]chunkstore.Hash, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(imageMagicV2) || !bytes.Equal(data[:len(imageMagicV2)], imageMagicV2[:]) {
		return nil, nil // legacy image
	}
	var img imageV2
	if err := json.Unmarshal(data[len(imageMagicV2):], &img); err != nil {
		return nil, fmt.Errorf("ckpt: corrupt image %s: %w", filepath.Base(path), err)
	}
	if img.Store == nil {
		return nil, fmt.Errorf("ckpt: corrupt image %s: no store manifest", filepath.Base(path))
	}
	return img.Store.ChunkHashes()
}

// NeedsMigration reports whether the document's current recovery root
// is a legacy monolithic image: its next checkpoint (which the open
// path forces) re-publishes the document in the content-addressed
// format, after which the legacy image retires normally.
func NeedsMigration(dir, name string) bool {
	legacyAt := func(path string) bool {
		f, err := os.Open(path)
		if err != nil {
			return false
		}
		defer f.Close()
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return false
		}
		return hdr != imageMagicV2
	}
	if m, err := readManifest(dir, name); err == nil {
		if _, err := os.Stat(filepath.Join(dir, m.File)); err == nil {
			return legacyAt(filepath.Join(dir, m.File))
		}
	}
	if imgs, err := Images(dir, name); err == nil && len(imgs) > 0 {
		return legacyAt(filepath.Join(dir, imgs[0].File))
	}
	if _, err := os.Stat(filepath.Join(dir, name+".ckpt")); err == nil {
		return true
	}
	return false
}

// Close marks the checkpointer closed, first waiting out an in-flight
// Run (including its WAL prune). After Close returns, no checkpoint will
// ever touch the document's WAL or artifacts again — the guarantee the
// document close path needs before it closes the log. Subsequent Runs
// fail with ErrClosed; Close is idempotent.
func (c *Checkpointer) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

const manifestSuffix = ".manifest"

// retire removes checkpoint images beyond the retention count plus any
// stale *.tmp leftovers, and returns the prune horizon: the LSN of the
// oldest image still retained (every WAL record at or below it is
// redundant for every image we can still recover from).
func (c *Checkpointer) retire(current uint64) uint64 {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	var lsns []uint64
	for _, e := range entries {
		n := e.Name()
		if ownsTmp(c.name, n) {
			os.Remove(filepath.Join(c.dir, n))
			continue
		}
		if n == c.name+".ckpt" {
			// A legacy unversioned image: superseded by the manifest'd
			// image we just published.
			os.Remove(filepath.Join(c.dir, n))
			continue
		}
		if lsn, ok := parseCkptLSN(c.name, n); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	oldest := current
	for i, lsn := range lsns {
		if i <= c.keep {
			if lsn < oldest {
				oldest = lsn
			}
			continue
		}
		os.Remove(filepath.Join(c.dir, ckptFile(c.name, lsn)))
	}
	return oldest
}

// writeFileAtomic publishes dir/file via tmp + fsync + rename + dir
// fsync, so a crash leaves either the old file or the new one — never a
// torn one.
func writeFileAtomic(dir, file string, write func(io.Writer) error) error {
	path := filepath.Join(dir, file)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Recover rebuilds the document's store from the best available
// checkpoint plus the WAL. Candidates are tried in order — the
// manifest's target first, then every image on disk by descending LSN,
// then a legacy unversioned <name>.ckpt — and the first one that loads
// cleanly and replays without an LSN gap wins. A content-addressed
// image materializes from cs (nil means the document's default chunk
// directory); because each image names every chunk of the full
// document, a torn chunk or image fails that candidate whole and
// recovery degrades to the next-older image — never a mix of two. It
// returns the store and the LSN of the last replayed record (the
// durable horizon).
func Recover(dir, name string, log *wal.Log, cs chunkstore.Store) (*core.Store, uint64, error) {
	if cs == nil {
		cs = DefaultChunkStore(dir, name)
	}
	var candidates []string
	seen := map[string]bool{}
	add := func(file string) {
		if file != "" && !seen[file] {
			seen[file] = true
			candidates = append(candidates, file)
		}
	}
	if m, err := readManifest(dir, name); err == nil {
		add(m.File)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		var stamped []struct {
			file string
			lsn  uint64
		}
		for _, e := range entries {
			if lsn, ok := parseCkptLSN(name, e.Name()); ok {
				stamped = append(stamped, struct {
					file string
					lsn  uint64
				}{e.Name(), lsn})
			}
		}
		sort.Slice(stamped, func(i, j int) bool { return stamped[i].lsn > stamped[j].lsn })
		for _, s := range stamped {
			add(s.file)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, name+".ckpt")); err == nil {
		add(name + ".ckpt") // legacy unversioned image
	}

	var firstErr error
	for _, file := range candidates {
		store, lsn, err := tryRecover(filepath.Join(dir, file), log, cs)
		if err == nil {
			if log != nil {
				log.EnsureLSN(lsn)
			}
			return store, lsn, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ckpt: recovering from %s: %w", file, err)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w for %q in %s", ErrNoCheckpoint, name, dir)
	}
	return nil, 0, firstErr
}

// readManifest loads and validates the manifest.
func readManifest(dir, name string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, name+manifestSuffix))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("ckpt: corrupt manifest: %w", err)
	}
	if m.File == "" || strings.ContainsAny(m.File, "/\\") {
		return manifest{}, fmt.Errorf("ckpt: corrupt manifest: bad file %q", m.File)
	}
	return m, nil
}

// tryRecover loads one image — content-addressed or legacy monolithic,
// dispatched on the leading magic — and rolls it forward, insisting on
// gap-free LSNs so a missing segment can never surface as silent loss.
func tryRecover(path string, log *wal.Log, cs chunkstore.Store) (*core.Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var store *core.Store
	var lsn uint64
	if peek, perr := br.Peek(len(imageMagicV2)); perr == nil && bytes.Equal(peek, imageMagicV2[:]) {
		br.Discard(len(imageMagicV2))
		var img imageV2
		if err := json.NewDecoder(br).Decode(&img); err != nil {
			return nil, 0, fmt.Errorf("ckpt: corrupt image: %w", err)
		}
		if img.Store == nil {
			return nil, 0, errors.New("ckpt: corrupt image: no store manifest")
		}
		store, err = core.LoadChunked(img.Store, cs)
		if err != nil {
			return nil, 0, err
		}
		lsn = img.LSN
	} else {
		lsn, err = tx.ReadSnapshotHeader(br)
		if err != nil {
			return nil, 0, err
		}
		store, err = core.Load(br)
		if err != nil {
			return nil, 0, err
		}
	}
	last := lsn
	if log != nil {
		err = log.Replay(lsn, func(rec *wal.Record) error {
			if rec.LSN != last+1 {
				return fmt.Errorf("%w: have %d, next record is %d", ErrWALGap, last, rec.LSN)
			}
			if err := tx.ApplyOps(store, rec.Ops); err != nil {
				return fmt.Errorf("ckpt: replaying LSN %d: %w", rec.LSN, err)
			}
			last = rec.LSN
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return store, last, nil
}
