// Package ckpt is the online durability subsystem: checkpoints that
// never stall commits, a crash-safe manifest, and recovery that degrades
// gracefully over torn artifacts.
//
// The paper's transaction protocol (Section 3.2 / Figure 8) rests on two
// legs: a single-I/O WAL commit and a checkpointed store image. This
// package makes the checkpoint leg *online*. A checkpoint pins a
// (snapshot, LSN) pair inside the commit critical section — an O(pages)
// refcount sweep under the shared read lock (tx.Manager.PinCheckpoint) —
// and then streams core.Store.Save from that immutable snapshot outside
// any lock, so commits proceed at full speed for the whole O(document)
// write. Completion is recorded in a manifest written via
// tmp+rename+fsync; only then are WAL segments wholly below the
// checkpoint's LSN deleted (wal.Log.Prune), which closes the legacy
// lost-commit window by construction: a record the checkpoint does not
// cover lives in a segment Prune keeps.
//
// # Artifacts
//
// For a document <name> in directory dir:
//
//	<name>-<LSN as 16 hex digits>.ckpt   checkpoint images (LSN-stamped)
//	<name>.manifest                      JSON {file, lsn} naming the
//	                                     current checkpoint
//	<name>.wal.NNNNNNNN                  WAL segments (see internal/wal)
//
// Every artifact is published atomically (write to *.tmp, fsync, rename,
// fsync dir). Cleanup keeps the previous checkpoint image besides the
// current one, and the WAL is pruned only below the *oldest retained*
// checkpoint — so if the current image or manifest is lost or torn,
// recovery still has an older image plus every record needed to roll it
// forward.
//
// # Recovery
//
// Recover tries candidates in order of preference — the manifest's
// target first, then every other image on disk by descending LSN — and
// accepts the first one that loads and whose WAL replay is gap-free
// (contiguous LSNs from the image's pin). A leftover *.tmp, a manifest
// naming a missing file, a torn image, or an empty segment tail all
// degrade to the next candidate instead of failing.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mxq/internal/core"
	"mxq/internal/tx"
	"mxq/internal/wal"
)

// ErrWALGap reports that WAL replay found non-contiguous LSNs: a record
// needed to roll the checkpoint forward is missing (e.g. a deleted
// segment). Recovery treats it as "this candidate cannot recover" and
// falls back to the next one.
var ErrWALGap = errors.New("ckpt: gap in WAL records")

// ErrNoCheckpoint reports that no usable checkpoint exists for the
// document.
var ErrNoCheckpoint = errors.New("ckpt: no usable checkpoint")

// ErrClosed reports a Run on a closed checkpointer (a checkpoint racing
// document close: the WAL and image directory are no longer writable).
var ErrClosed = errors.New("ckpt: checkpointer is closed")

// Pin captures a copy-on-write snapshot of the store together with the
// LSN of the last WAL record the snapshot covers, atomically with
// respect to commits. tx.Manager.PinCheckpoint is the canonical
// implementation. The checkpointer releases the snapshot when done.
type Pin func() (*core.Store, uint64)

// manifest is the JSON wire form of the current-checkpoint pointer.
type manifest struct {
	File string `json:"file"` // checkpoint file name, relative to dir
	LSN  uint64 `json:"lsn"`
}

// Checkpointer writes online checkpoints for one document.
type Checkpointer struct {
	dir  string
	name string
	log  *wal.Log // may be nil (checkpoint-only durability)
	pin  Pin

	// keep is how many superseded checkpoint images to retain besides
	// the current one. The WAL is pruned only below the oldest retained
	// image, so every retained image can actually be rolled forward.
	keep int

	// mu serializes checkpoints: concurrent Run calls (auto + manual)
	// queue rather than race on the manifest. Close takes it too, so
	// closing waits out an in-flight checkpoint instead of yanking the
	// WAL from under its prune.
	mu     sync.Mutex
	closed bool

	// saveWrap, when non-nil, wraps the checkpoint image writer (testing
	// hook: throttling it stretches the streaming phase to prove commits
	// do not stall behind it).
	saveWrap func(io.Writer) io.Writer

	// pruneBarrier, when non-nil, returns the highest LSN the WAL may be
	// pruned up to for reasons beyond checkpoint retention — the
	// replication layer holds it at the lowest LSN a live follower has
	// acked, so a checkpoint never deletes segments a follower still
	// needs to catch up from (^uint64(0) means "no external constraint").
	pruneBarrier func() uint64
}

// New returns a checkpointer for document name in dir. log may be nil.
func New(dir, name string, log *wal.Log, pin Pin) *Checkpointer {
	return &Checkpointer{dir: dir, name: name, log: log, pin: pin, keep: 1}
}

// SetSaveWrapper installs a writer wrapper around the image stream
// (testing hook; pass nil to remove).
func (c *Checkpointer) SetSaveWrapper(fn func(io.Writer) io.Writer) { c.saveWrap = fn }

// SetPruneBarrier installs an external prune constraint, queried once
// per checkpoint while the checkpointer's own lock is held. Install it
// before the first Run (or while no checkpoint can be racing); the
// function itself must be safe for concurrent use.
func (c *Checkpointer) SetPruneBarrier(fn func() uint64) { c.pruneBarrier = fn }

// ckptFile names the image for a pin LSN.
func ckptFile(name string, lsn uint64) string {
	return fmt.Sprintf("%s-%016x.ckpt", name, lsn)
}

// parseCkptLSN extracts the LSN from an image file name produced by
// ckptFile, reporting ok=false for anything else (legacy or foreign
// files). Matching is exact — lowercase hex, fixed width, the "-"
// boundary in place — so a document whose name is a dash-prefix of
// another ("a" vs "a-b") never claims the other's images.
func parseCkptLSN(name, file string) (uint64, bool) {
	base := strings.TrimSuffix(file, ".ckpt")
	if base == file || !strings.HasPrefix(base, name+"-") {
		return 0, false
	}
	hex := base[len(name)+1:]
	if len(hex) != 16 || !isLowerHex(hex) {
		return 0, false
	}
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

func isLowerHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ownsTmp reports whether a "*.tmp" file (bare name) is an in-progress
// or stale artifact of this document — exactly an image, manifest or
// legacy-image path plus the ".tmp" suffix. A bare prefix match would
// claim (and let retire delete) another document's in-flight tmp when
// one name prefixes the other.
func ownsTmp(name, file string) bool {
	base := strings.TrimSuffix(file, ".tmp")
	if base == file {
		return false
	}
	if base == name+manifestSuffix || base == name+".ckpt" {
		return true
	}
	_, ok := parseCkptLSN(name, base)
	return ok
}

// DocumentOfArtifact reports which document a durability artifact file
// (bare name) belongs to: a manifest, an LSN-stamped image, or a legacy
// unversioned image. ok=false for everything else (tmp files, WAL
// segments, foreign files). Database discovery shares this parser so it
// can never disagree with Recover's candidate scan.
func DocumentOfArtifact(file string) (string, bool) {
	if strings.HasSuffix(file, ".tmp") {
		return "", false
	}
	if base := strings.TrimSuffix(file, manifestSuffix); base != file {
		return base, base != ""
	}
	base := strings.TrimSuffix(file, ".ckpt")
	if base == file || base == "" {
		return "", false
	}
	if i := len(base) - 17; i > 0 && base[i] == '-' && isLowerHex(base[i+1:]) {
		return base[:i], true // LSN-stamped image
	}
	return base, true // legacy unversioned image
}

// RemoveArtifacts deletes every checkpoint artifact of the document —
// images, manifest, legacy image, stale tmp files — with exact-boundary
// matching, leaving other documents' files alone.
func RemoveArtifacts(dir, name string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		_, isImage := parseCkptLSN(name, n)
		if isImage || n == name+manifestSuffix || n == name+".ckpt" || ownsTmp(name, n) {
			os.Remove(filepath.Join(dir, n))
		}
	}
}

// CurrentLSN returns the manifest's checkpoint LSN for the document (0
// if there is no readable manifest): the baseline the auto-checkpoint
// policy measures the WAL tail against.
func CurrentLSN(dir, name string) uint64 {
	m, err := readManifest(dir, name)
	if err != nil {
		return 0
	}
	return m.LSN
}

// Run writes one checkpoint: pin, stream, publish, retire. It returns
// the LSN the new checkpoint covers. The pin is the only step that
// shares a lock with committers (a shared read lock held for an
// O(pages) refcount sweep); the O(document) Save streams from the
// pinned immutable snapshot while commits continue.
func (c *Checkpointer) Run() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}

	img, lsn := c.pin()
	defer img.Release()

	file := ckptFile(c.name, lsn)
	err := writeFileAtomic(c.dir, file, func(w io.Writer) error {
		if c.saveWrap != nil {
			w = c.saveWrap(w)
		}
		if err := tx.WriteSnapshotHeader(w, lsn); err != nil {
			return err
		}
		return img.Save(w)
	})
	if err != nil {
		return 0, fmt.Errorf("ckpt: writing image: %w", err)
	}

	m, _ := json.Marshal(manifest{File: file, LSN: lsn})
	err = writeFileAtomic(c.dir, c.name+manifestSuffix, func(w io.Writer) error {
		_, werr := w.Write(m)
		return werr
	})
	if err != nil {
		return 0, fmt.Errorf("ckpt: writing manifest: %w", err)
	}

	// The manifest is durable: the new checkpoint is the recovery root.
	// Retire images beyond the retention horizon and prune WAL segments
	// every retained image has already absorbed — capped by the external
	// prune barrier (a live follower's lowest acked LSN), because a
	// record a follower has not durably applied yet is not redundant no
	// matter how many local images cover it.
	pruneTo := c.retire(lsn)
	if c.pruneBarrier != nil {
		if b := c.pruneBarrier(); b < pruneTo {
			pruneTo = b
		}
	}
	if c.log != nil {
		if err := c.log.Prune(pruneTo); err != nil {
			return 0, fmt.Errorf("ckpt: pruning wal: %w", err)
		}
	}
	return lsn, nil
}

// Close marks the checkpointer closed, first waiting out an in-flight
// Run (including its WAL prune). After Close returns, no checkpoint will
// ever touch the document's WAL or artifacts again — the guarantee the
// document close path needs before it closes the log. Subsequent Runs
// fail with ErrClosed; Close is idempotent.
func (c *Checkpointer) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

const manifestSuffix = ".manifest"

// retire removes checkpoint images beyond the retention count plus any
// stale *.tmp leftovers, and returns the prune horizon: the LSN of the
// oldest image still retained (every WAL record at or below it is
// redundant for every image we can still recover from).
func (c *Checkpointer) retire(current uint64) uint64 {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	var lsns []uint64
	for _, e := range entries {
		n := e.Name()
		if ownsTmp(c.name, n) {
			os.Remove(filepath.Join(c.dir, n))
			continue
		}
		if n == c.name+".ckpt" {
			// A legacy unversioned image: superseded by the manifest'd
			// image we just published.
			os.Remove(filepath.Join(c.dir, n))
			continue
		}
		if lsn, ok := parseCkptLSN(c.name, n); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	oldest := current
	for i, lsn := range lsns {
		if i <= c.keep {
			if lsn < oldest {
				oldest = lsn
			}
			continue
		}
		os.Remove(filepath.Join(c.dir, ckptFile(c.name, lsn)))
	}
	return oldest
}

// writeFileAtomic publishes dir/file via tmp + fsync + rename + dir
// fsync, so a crash leaves either the old file or the new one — never a
// torn one.
func writeFileAtomic(dir, file string, write func(io.Writer) error) error {
	path := filepath.Join(dir, file)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Recover rebuilds the document's store from the best available
// checkpoint plus the WAL. Candidates are tried in order — the
// manifest's target first, then every image on disk by descending LSN,
// then a legacy unversioned <name>.ckpt — and the first one that loads
// cleanly and replays without an LSN gap wins. It returns the store and
// the LSN of the last replayed record (the durable horizon).
func Recover(dir, name string, log *wal.Log) (*core.Store, uint64, error) {
	var candidates []string
	seen := map[string]bool{}
	add := func(file string) {
		if file != "" && !seen[file] {
			seen[file] = true
			candidates = append(candidates, file)
		}
	}
	if m, err := readManifest(dir, name); err == nil {
		add(m.File)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		var stamped []struct {
			file string
			lsn  uint64
		}
		for _, e := range entries {
			if lsn, ok := parseCkptLSN(name, e.Name()); ok {
				stamped = append(stamped, struct {
					file string
					lsn  uint64
				}{e.Name(), lsn})
			}
		}
		sort.Slice(stamped, func(i, j int) bool { return stamped[i].lsn > stamped[j].lsn })
		for _, s := range stamped {
			add(s.file)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, name+".ckpt")); err == nil {
		add(name + ".ckpt") // legacy unversioned image
	}

	var firstErr error
	for _, file := range candidates {
		store, lsn, err := tryRecover(filepath.Join(dir, file), log)
		if err == nil {
			if log != nil {
				log.EnsureLSN(lsn)
			}
			return store, lsn, nil
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("ckpt: recovering from %s: %w", file, err)
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w for %q in %s", ErrNoCheckpoint, name, dir)
	}
	return nil, 0, firstErr
}

// readManifest loads and validates the manifest.
func readManifest(dir, name string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, name+manifestSuffix))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("ckpt: corrupt manifest: %w", err)
	}
	if m.File == "" || strings.ContainsAny(m.File, "/\\") {
		return manifest{}, fmt.Errorf("ckpt: corrupt manifest: bad file %q", m.File)
	}
	return m, nil
}

// tryRecover loads one image and rolls it forward, insisting on
// gap-free LSNs so a missing segment can never surface as silent loss.
func tryRecover(path string, log *wal.Log) (*core.Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	lsn, err := tx.ReadSnapshotHeader(f)
	if err != nil {
		return nil, 0, err
	}
	store, err := core.Load(f)
	if err != nil {
		return nil, 0, err
	}
	last := lsn
	if log != nil {
		err = log.Replay(lsn, func(rec *wal.Record) error {
			if rec.LSN != last+1 {
				return fmt.Errorf("%w: have %d, next record is %d", ErrWALGap, last, rec.LSN)
			}
			if err := tx.ApplyOps(store, rec.Ops); err != nil {
				return fmt.Errorf("ckpt: replaying LSN %d: %w", rec.LSN, err)
			}
			last = rec.LSN
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	}
	return store, last, nil
}
