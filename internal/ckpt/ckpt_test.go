package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/core"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

const docXML = `<lib><shelf id="s1"><book>A</book><book>B</book></shelf><shelf id="s2"><book>C</book></shelf></lib>`

func buildStore(t testing.TB, xml string, ps int) *core.Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(xml), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: ps, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// env is one document's durability world: store, manager, wal,
// checkpointer.
type env struct {
	dir string
	log *wal.Log
	s   *core.Store
	m   *tx.Manager
	ck  *Checkpointer
}

func newEnv(t testing.TB, segBytes int64) *env {
	t.Helper()
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "d.wal"), wal.Options{NoSync: true, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	s := buildStore(t, docXML, 16)
	m := tx.NewManager(s, log)
	ck := New(dir, "d", log, m.PinCheckpoint)
	return &env{dir: dir, log: log, s: s, m: m, ck: ck}
}

func (e *env) commitBook(t testing.TB, shelf, name string) {
	t.Helper()
	txn := e.m.Begin()
	ns, err := xpath.MustParse(`//shelf[@id="` + shelf + `"]`).Select(txn)
	if err != nil || len(ns) == 0 {
		t.Fatalf("select shelf %s: %v", shelf, err)
	}
	fr, err := shred.ParseFragment(`<book>`+name+`</book>`, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.AppendChild(ns[0].Pre, fr); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func viewXML(t testing.TB, v xenc.DocView) string {
	t.Helper()
	var b bytes.Buffer
	if err := serialize.Document(&b, v, serialize.Options{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func (e *env) baseXML(t testing.TB) string {
	t.Helper()
	var out string
	e.m.View(func(v xenc.DocView) error {
		out = viewXML(t, v)
		return nil
	})
	return out
}

// recover reopens the WAL from disk (as a restart would) and runs
// Recover against it.
func (e *env) recover(t testing.TB) (*core.Store, uint64) {
	t.Helper()
	log, err := wal.Open(filepath.Join(e.dir, "d.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	store, lsn, err := Recover(e.dir, "d", log, nil)
	if err != nil {
		t.Fatal(err)
	}
	return store, lsn
}

func TestCheckpointAndRecover(t *testing.T) {
	e := newEnv(t, wal.DefaultSegmentBytes)
	e.commitBook(t, "s1", "pre")
	lsn, err := e.ck.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1 {
		t.Fatalf("checkpoint lsn = %d, want 1", lsn)
	}
	e.commitBook(t, "s2", "post")
	want := e.baseXML(t)

	store, recLSN := e.recover(t)
	if recLSN != 2 {
		t.Fatalf("recovered lsn = %d, want 2", recLSN)
	}
	if got := viewXML(t, store); got != want {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}
}

func TestRecoverNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Recover(dir, "nope", nil, nil); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// slowStore stretches the checkpoint streaming phase so the test can
// prove commits overlap it: every chunk Put pauses before landing.
type slowStore struct {
	chunkstore.Store
	delay time.Duration
	puts  atomic.Int64
	onPut func()
}

func (ss *slowStore) Put(h chunkstore.Hash, data []byte) error {
	if ss.onPut != nil {
		ss.onPut()
	}
	time.Sleep(ss.delay)
	ss.puts.Add(1)
	return ss.Store.Put(h, data)
}

// TestOnlineCheckpointNonBlocking is the acceptance test for the
// subsystem: while a checkpoint of the document streams (artificially
// slowly), commits must keep landing with individual latencies far below
// the streaming duration — the global lock is NOT held during Save —
// and recovery after the checkpoint must replay exactly the commits
// that landed after the pin.
func TestOnlineCheckpointNonBlocking(t *testing.T) {
	e := newEnv(t, wal.DefaultSegmentBytes)
	e.commitBook(t, "s1", "seed")

	// The small test document yields only a handful of chunks; a per-Put
	// pause keeps the streaming window wide enough to observe overlap.
	const delay = 25 * time.Millisecond
	e.ck.SetChunkWrapper(func(s chunkstore.Store) chunkstore.Store {
		return &slowStore{Store: s, delay: delay}
	})

	stop := make(chan struct{})
	var (
		wg         sync.WaitGroup
		maxLatency atomic.Int64
		commits    atomic.Int64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			e.commitBook(t, "s2", fmt.Sprintf("during-%d", i))
			lat := time.Since(start)
			for {
				cur := maxLatency.Load()
				if int64(lat) <= cur || maxLatency.CompareAndSwap(cur, int64(lat)) {
					break
				}
			}
			commits.Add(1)
		}
	}()

	ckStart := time.Now()
	lsn, err := e.ck.Run()
	ckDur := time.Since(ckStart)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ckDur < 50*time.Millisecond {
		t.Fatalf("throttled checkpoint finished in %v; streaming window too small to prove anything", ckDur)
	}
	if n := commits.Load(); n < 5 {
		t.Fatalf("only %d commits landed during a %v checkpoint — commits stalled", n, ckDur)
	}
	// A commit that had to wait for the streaming phase would take on the
	// order of ckDur; one that only shares the pin takes microseconds. The
	// generous bound keeps CI nondeterminism out.
	if lat := time.Duration(maxLatency.Load()); lat > ckDur/2 {
		t.Fatalf("max commit latency %v during a %v checkpoint — commit stalled behind Save", lat, ckDur)
	}
	t.Logf("checkpoint %v, %d commits during it, max commit latency %v",
		ckDur, commits.Load(), time.Duration(maxLatency.Load()))

	// Recovery = pinned image + exactly the post-pin commits.
	want := e.baseXML(t)
	store, recLSN := e.recover(t)
	if got := viewXML(t, store); got != want {
		t.Fatalf("recovered state differs after online checkpoint:\nwant %s\ngot  %s", want, got)
	}
	if recLSN < lsn {
		t.Fatalf("recovered lsn %d below checkpoint pin %d", recLSN, lsn)
	}
	if err := store.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitsDuringCheckpointSurvivePrune: records landing while the
// checkpoint streams are above the pin LSN and must survive the
// post-publish prune.
func TestCommitsDuringCheckpointSurvivePrune(t *testing.T) {
	e := newEnv(t, 128) // rotate aggressively
	for i := 0; i < 10; i++ {
		e.commitBook(t, "s1", fmt.Sprintf("pre-%d", i))
	}
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.commitBook(t, "s2", fmt.Sprintf("post-%d", i))
	}
	want := e.baseXML(t)
	store, recLSN := e.recover(t)
	if recLSN != 20 {
		t.Fatalf("recovered lsn = %d, want 20", recLSN)
	}
	if got := viewXML(t, store); got != want {
		t.Fatalf("post-checkpoint commits lost:\nwant %s\ngot  %s", want, got)
	}
}

// TestTornArtifacts drives every torn-artifact scenario the satellite
// names: recovery must degrade to an older checkpoint — never error,
// never silently lose a committed record the artifacts still cover.
func TestTornArtifacts(t *testing.T) {
	// setup: two checkpoints with commits before, between and after, so
	// both a current and a previous image exist.
	setup := func(t *testing.T) (*env, string) {
		e := newEnv(t, 192)
		for i := 0; i < 6; i++ {
			e.commitBook(t, "s1", fmt.Sprintf("a%d", i))
		}
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			e.commitBook(t, "s2", fmt.Sprintf("b%d", i))
		}
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			e.commitBook(t, "s1", fmt.Sprintf("c%d", i))
		}
		return e, e.baseXML(t)
	}

	currentImage := func(t *testing.T, e *env) string {
		t.Helper()
		m, err := readManifest(e.dir, "d")
		if err != nil {
			t.Fatal(err)
		}
		return filepath.Join(e.dir, m.File)
	}

	t.Run("LeftoverTmpFilesIgnored", func(t *testing.T) {
		e, want := setup(t)
		for _, junk := range []string{"d-00000000000000ff.ckpt.tmp", "d.manifest.tmp", "d.wal.tmp"} {
			if err := os.WriteFile(filepath.Join(e.dir, junk), []byte("torn garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("tmp leftovers corrupted recovery:\nwant %s\ngot  %s", want, got)
		}
		// The next checkpoint sweeps the leftovers.
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(e.dir, "d-00000000000000ff.ckpt.tmp")); !os.IsNotExist(err) {
			t.Fatal("stale .ckpt.tmp survived the next checkpoint")
		}
	})

	t.Run("ManifestPointsAtMissingImage", func(t *testing.T) {
		e, want := setup(t)
		if err := os.Remove(currentImage(t, e)); err != nil {
			t.Fatal(err)
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("degrade to previous checkpoint lost state:\nwant %s\ngot  %s", want, got)
		}
	})

	t.Run("TornCurrentImage", func(t *testing.T) {
		e, want := setup(t)
		img := currentImage(t, e)
		fi, err := os.Stat(img)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(img, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("degrade over torn image lost state:\nwant %s\ngot  %s", want, got)
		}
	})

	t.Run("CorruptManifest", func(t *testing.T) {
		e, want := setup(t)
		if err := os.WriteFile(filepath.Join(e.dir, "d.manifest"), []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("corrupt manifest broke recovery:\nwant %s\ngot  %s", want, got)
		}
	})

	t.Run("EmptySegmentTail", func(t *testing.T) {
		e, want := setup(t)
		segs := e.log.Segments()
		next := fmt.Sprintf("%s.%08d", filepath.Join(e.dir, "d.wal"), segs[len(segs)-1].Seq+1)
		if err := os.WriteFile(next, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("empty tail segment broke recovery:\nwant %s\ngot  %s", want, got)
		}
	})

	t.Run("MissingSegmentBelowManifestIsHarmless", func(t *testing.T) {
		e, want := setup(t)
		m, err := readManifest(e.dir, "d")
		if err != nil {
			t.Fatal(err)
		}
		// A sealed segment every record of which the manifest's image
		// covers is dead weight (it exists only to serve the *previous*
		// image); deleting it must not disturb manifest-rooted recovery.
		var victim string
		for _, seg := range e.log.Segments()[:len(e.log.Segments())-1] {
			if seg.Records > 0 && seg.LastLSN <= m.LSN {
				victim = seg.Path
				break
			}
		}
		if victim == "" {
			t.Skip("layout kept no sealed segment below the manifest LSN")
		}
		if err := os.Remove(victim); err != nil {
			t.Fatal(err)
		}
		store, _ := e.recover(t)
		if got := viewXML(t, store); got != want {
			t.Fatalf("recovery needed a segment the manifest image covers:\nwant %s\ngot  %s", want, got)
		}
	})

	t.Run("MissingNeededSegmentIsGapNotSilentLoss", func(t *testing.T) {
		e, _ := setup(t)
		// Delete the manifest image AND a sealed segment the previous
		// image needs: the previous candidate must fail with a gap, not
		// recover a hole-y document. (With the current image also gone
		// nothing can recover — the point is the failure is loud.)
		if err := os.Remove(currentImage(t, e)); err != nil {
			t.Fatal(err)
		}
		segs := e.log.Segments()
		if len(segs) < 3 {
			t.Skip("not enough segments to carve a gap")
		}
		if segs[0].Records == 0 {
			t.Skip("first live segment is empty")
		}
		if err := os.Remove(segs[0].Path); err != nil {
			t.Fatal(err)
		}
		log, err := wal.Open(filepath.Join(e.dir, "d.wal"), wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer log.Close()
		_, _, err = Recover(e.dir, "d", log, nil)
		if err == nil {
			t.Fatal("recovery over a missing needed segment succeeded silently")
		}
	})
}

// TestPreviousCheckpointStaysRollable: the WAL is pruned only below the
// oldest *retained* image, so even after several checkpoints the
// previous image plus the remaining segments reproduce the full state.
func TestPreviousCheckpointStaysRollable(t *testing.T) {
	e := newEnv(t, 160)
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			e.commitBook(t, "s1", fmt.Sprintf("r%d-%d", round, i))
		}
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
	}
	want := e.baseXML(t)

	// Kill the newest image and the manifest outright.
	m, err := readManifest(e.dir, "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(e.dir, m.File)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(e.dir, "d.manifest")); err != nil {
		t.Fatal(err)
	}

	store, _ := e.recover(t)
	if got := viewXML(t, store); got != want {
		t.Fatalf("previous checkpoint could not be rolled forward:\nwant %s\ngot  %s", want, got)
	}
}

// TestRetireBoundsImageCount: old images beyond the retention horizon
// are deleted.
func TestRetireBoundsImageCount(t *testing.T) {
	e := newEnv(t, wal.DefaultSegmentBytes)
	for round := 0; round < 6; round++ {
		e.commitBook(t, "s1", fmt.Sprintf("x%d", round))
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		t.Fatal(err)
	}
	images := 0
	for _, en := range entries {
		if _, ok := parseCkptLSN("d", en.Name()); ok {
			images++
		}
	}
	if images > 2 {
		t.Fatalf("%d images on disk, want <= 2 (current + previous)", images)
	}
}

func TestParseCkptLSN(t *testing.T) {
	if lsn, ok := parseCkptLSN("d", ckptFile("d", 0xab)); !ok || lsn != 0xab {
		t.Fatalf("round trip failed: %d %v", lsn, ok)
	}
	for _, bad := range []string{"d.ckpt", "e-00000000000000ab.ckpt", "d-xyz.ckpt", "d-ab.ckpt", "d-00000000000000ab.ckpt.tmp"} {
		if _, ok := parseCkptLSN("d", bad); ok {
			t.Fatalf("parsed %q as an image", bad)
		}
	}
}

func TestArtifactOwnershipBoundaries(t *testing.T) {
	// ownsTmp must not claim a dash-sibling's in-flight tmp.
	if ownsTmp("a", "a-b-00000000000000ff.ckpt.tmp") {
		t.Fatal(`doc "a" claimed doc "a-b"'s image tmp`)
	}
	if !ownsTmp("a-b", "a-b-00000000000000ff.ckpt.tmp") {
		t.Fatal("owner did not claim its own image tmp")
	}
	if !ownsTmp("a", "a.manifest.tmp") || !ownsTmp("a", "a.ckpt.tmp") {
		t.Fatal("owner did not claim its manifest/legacy tmp")
	}
	// Uppercase hex is never produced; reject it.
	if _, ok := parseCkptLSN("d", "d-00000000000000AB.ckpt"); ok {
		t.Fatal("uppercase hex accepted")
	}
	// DocumentOfArtifact mirrors the same rules.
	cases := map[string]string{
		"d.manifest":                "d",
		"d-00000000000000ab.ckpt":   "d",
		"d.ckpt":                    "d",
		"a-b-00000000000000ff.ckpt": "a-b",
	}
	for file, want := range cases {
		if got, ok := DocumentOfArtifact(file); !ok || got != want {
			t.Fatalf("DocumentOfArtifact(%q) = %q/%v, want %q", file, got, ok, want)
		}
	}
	for _, file := range []string{"d.manifest.tmp", "d-00000000000000ab.ckpt.tmp", "d.wal.00000001", "other.txt"} {
		if name, ok := DocumentOfArtifact(file); ok {
			t.Fatalf("DocumentOfArtifact(%q) claimed %q", file, name)
		}
	}
}

// TestRemoveArtifactsSparesSiblings: removing "a"'s artifacts must not
// touch "a-b"'s, even mid-checkpoint (its .tmp files included).
func TestRemoveArtifactsSparesSiblings(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{
		"a.manifest", "a-0000000000000001.ckpt", "a.ckpt", "a-0000000000000002.ckpt.tmp",
		"a-b.manifest", "a-b-0000000000000001.ckpt", "a-b-0000000000000002.ckpt.tmp",
	} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveArtifacts(dir, "a")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range entries {
		left = append(left, e.Name())
	}
	want := []string{"a-b-0000000000000001.ckpt", "a-b-0000000000000002.ckpt.tmp", "a-b.manifest"}
	if fmt.Sprint(left) != fmt.Sprint(want) {
		t.Fatalf("left %v, want %v", left, want)
	}
}
