package ckpt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mxq/internal/chunkstore"
	"mxq/internal/tx"
	"mxq/internal/wal"
)

// TestChunkGCNeverOrphansRetainedImage: after several checkpoints the
// sweep must have (a) kept every chunk any retained image references —
// so each retained image stays materializable — and (b) actually
// deleted everything else.
func TestChunkGCNeverOrphansRetainedImage(t *testing.T) {
	e := newEnv(t, 160)
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			e.commitBook(t, "s1", fmt.Sprintf("r%d-%d", round, i))
		}
		if _, err := e.ck.Run(); err != nil {
			t.Fatal(err)
		}
	}
	want := e.baseXML(t)

	imgs, err := Images(e.dir, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 {
		t.Fatalf("retention kept %d images, want 2 (current + previous)", len(imgs))
	}
	cs := DefaultChunkStore(e.dir, "d")
	live := make(map[chunkstore.Hash]bool)
	for _, img := range imgs {
		hs, err := ImageChunks(filepath.Join(e.dir, img.File))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hs {
			if ok, err := cs.Has(h); err != nil || !ok {
				t.Fatalf("retained image %s references swept chunk %s (%v)", img.File, h, err)
			}
			live[h] = true
		}
	}
	if err := cs.ForEach(func(h chunkstore.Hash) error {
		if !live[h] {
			return fmt.Errorf("chunk %s referenced by no retained image survived GC", h)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The point of keeping the previous image's chunks: losing the
	// current image (and the manifest) must still recover to full state.
	if err := os.Remove(filepath.Join(e.dir, imgs[0].File)); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(e.dir, "d"+manifestSuffix))
	store, _ := e.recover(t)
	if got := viewXML(t, store); got != want {
		t.Fatalf("recovery from previous image after GC:\nwant %s\ngot  %s", want, got)
	}
}

// TestTornChunkDegradesWholeImage: a torn chunk file fails its whole
// image — recovery falls back to the previous image plus WAL roll
// forward, never a mix of the two checkpoints, and a repeat recovery
// (after the failed Get quarantined the corpse) lands the same place.
func TestTornChunkDegradesWholeImage(t *testing.T) {
	e := newEnv(t, 192)
	for i := 0; i < 4; i++ {
		e.commitBook(t, "s1", fmt.Sprintf("a%d", i))
	}
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e.commitBook(t, "s2", fmt.Sprintf("b%d", i))
	}
	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	e.commitBook(t, "s1", "tail")
	want := e.baseXML(t)

	imgs, err := Images(e.dir, "d")
	if err != nil || len(imgs) != 2 {
		t.Fatalf("images = %v, %v; want 2", imgs, err)
	}
	newHS, err := ImageChunks(filepath.Join(e.dir, imgs[0].File))
	if err != nil {
		t.Fatal(err)
	}
	oldHS, err := ImageChunks(filepath.Join(e.dir, imgs[1].File))
	if err != nil {
		t.Fatal(err)
	}
	shared := make(map[chunkstore.Hash]bool)
	for _, h := range oldHS {
		shared[h] = true
	}
	var victim chunkstore.Hash
	found := false
	for _, h := range newHS {
		if !shared[h] {
			victim, found = h, true
			break
		}
	}
	if !found {
		t.Fatal("no chunk unique to the newest image — churn between checkpoints produced none?")
	}
	cs := DefaultChunkStore(e.dir, "d")
	fi, err := os.Stat(cs.PathOf(victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(cs.PathOf(victim), fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	store, _ := e.recover(t)
	if got := viewXML(t, store); got != want {
		t.Fatalf("recovery over a torn chunk:\nwant %s\ngot  %s", want, got)
	}
	store2, _ := e.recover(t)
	if got := viewXML(t, store2); got != want {
		t.Fatalf("second recovery diverged:\nwant %s\ngot  %s", want, got)
	}
}

// TestLegacyImageMigration: a pre-chunk monolithic image recovers, is
// flagged for migration, and one checkpoint re-publishes the document
// content-addressed and retires the legacy file.
func TestLegacyImageMigration(t *testing.T) {
	e := newEnv(t, wal.DefaultSegmentBytes)
	// Publish a legacy unversioned image by hand — byte-for-byte what an
	// old version wrote: LSN header + monolithic gob.
	err := writeFileAtomic(e.dir, "d.ckpt", func(w io.Writer) error {
		if err := tx.WriteSnapshotHeader(w, 0); err != nil {
			return err
		}
		return e.s.Save(w)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !NeedsMigration(e.dir, "d") {
		t.Fatal("legacy image not flagged for migration")
	}

	e.commitBook(t, "s1", "post-legacy")
	want := e.baseXML(t)
	store, lsn := e.recover(t)
	if lsn != 1 {
		t.Fatalf("recovered lsn = %d, want 1", lsn)
	}
	if got := viewXML(t, store); got != want {
		t.Fatalf("legacy recovery differs:\nwant %s\ngot  %s", want, got)
	}

	if _, err := e.ck.Run(); err != nil {
		t.Fatal(err)
	}
	if NeedsMigration(e.dir, "d") {
		t.Fatal("still flagged for migration after a checkpoint")
	}
	if _, err := os.Stat(filepath.Join(e.dir, "d.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("legacy image not retired: %v", err)
	}
	store2, _ := e.recover(t)
	if got := viewXML(t, store2); got != want {
		t.Fatalf("post-migration recovery differs:\nwant %s\ngot  %s", want, got)
	}
}
