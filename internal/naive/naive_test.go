package naive

import (
	"fmt"
	"strings"
	"testing"

	"mxq/internal/shred"
	"mxq/internal/xenc"
)

const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func mustBuild(t *testing.T, doc string) *Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustFragment(t *testing.T, frag string) *shred.Tree {
	t.Helper()
	tr, err := shred.ParseFragment(frag, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func names(s *Store) []string {
	var out []string
	for p := xenc.Pre(0); p < s.Len(); p++ {
		if s.Kind(p) == xenc.KindElem {
			out = append(out, s.Names().Name(s.Name(p)))
		} else {
			out = append(out, "#"+s.Value(p))
		}
	}
	return out
}

// checkSizes recomputes sizes from levels and compares.
func checkSizes(t *testing.T, s *Store) {
	t.Helper()
	n := int(s.Len())
	for p := 0; p < n; p++ {
		count := int32(0)
		for q := p + 1; q < n && s.Level(xenc.Pre(q)) > s.Level(xenc.Pre(p)); q++ {
			count++
		}
		if got := s.Size(xenc.Pre(p)); got != count {
			t.Fatalf("size(%d) = %d, want %d", p, got, count)
		}
	}
}

// TestFigure3Insert replays the paper's Figure 3: appending
// <k><l/><m/></k> under g shifts all following pre values and grows
// every ancestor by 3.
func TestFigure3Insert(t *testing.T) {
	s := mustBuild(t, paperDoc)
	// g is at pre 6.
	if err := s.AppendChild(6, mustFragment(t, `<k><l/><m/></k>`)); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e", "f", "g", "k", "l", "m", "h", "i", "j"}
	if got := names(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	// Figure 3's resulting sizes: a 9->12, f 4->7, g 0->3.
	for _, tc := range []struct {
		pre  xenc.Pre
		want int32
	}{{0, 12}, {5, 7}, {6, 3}} {
		if got := s.Size(tc.pre); got != tc.want {
			t.Errorf("size(%d) = %d, want %d", tc.pre, got, tc.want)
		}
	}
	checkSizes(t, s)
}

func TestInsertBeforeAfterDelete(t *testing.T) {
	s := mustBuild(t, paperDoc)
	if err := s.InsertBefore(5, mustFragment(t, `<x/>`)); err != nil { // before f
		t.Fatal(err)
	}
	checkSizes(t, s)
	if err := s.InsertAfter(6, mustFragment(t, `<y/>`)); err != nil { // after f (now at 6)
		t.Fatal(err)
	}
	checkSizes(t, s)
	want := []string{"a", "b", "c", "d", "e", "x", "f", "g", "h", "i", "j", "y"}
	if got := names(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	if err := s.Delete(6); err != nil { // delete f subtree
		t.Fatal(err)
	}
	checkSizes(t, s)
	want = []string{"a", "b", "c", "d", "e", "x", "y"}
	if got := names(s); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestAttrOwnersRenumbered(t *testing.T) {
	s := mustBuild(t, `<r><p id="1"/><q id="2"/></r>`)
	idName, _ := s.Names().Lookup("id")
	if err := s.InsertBefore(1, mustFragment(t, `<w0/><w1/>`)); err != nil {
		t.Fatal(err)
	}
	// p moved from pre 1 to 3; q from 2 to 4.
	if v, ok := s.AttrValue(3, idName); !ok || v != "1" {
		t.Fatalf("p/@id after shift = %q %v", v, ok)
	}
	if v, ok := s.AttrValue(4, idName); !ok || v != "2" {
		t.Fatalf("q/@id after shift = %q %v", v, ok)
	}
	if err := s.Delete(3); err != nil { // delete p
		t.Fatal(err)
	}
	if v, ok := s.AttrValue(3, idName); !ok || v != "2" {
		t.Fatalf("q/@id after delete = %q %v", v, ok)
	}
	if got := len(s.Attrs(3)); got != 1 {
		t.Fatalf("q attrs = %d", got)
	}
}

func TestAttrsWithNewNodes(t *testing.T) {
	s := mustBuild(t, `<r/>`)
	if err := s.AppendChild(0, mustFragment(t, `<p id="9" k="v"/>`)); err != nil {
		t.Fatal(err)
	}
	idName, _ := s.Names().Lookup("id")
	if v, ok := s.AttrValue(1, idName); !ok || v != "9" {
		t.Fatalf("inserted attr = %q %v", v, ok)
	}
}

func TestGuards(t *testing.T) {
	s := mustBuild(t, paperDoc)
	if err := s.Delete(0); err == nil {
		t.Fatal("root delete accepted")
	}
	if err := s.InsertBefore(0, mustFragment(t, `<x/>`)); err == nil {
		t.Fatal("insert before root accepted")
	}
	if err := s.AppendChild(3, mustFragment(t, `<x/>`)); err == nil {
		// pre 3 is element d... d is an element, so this should work.
		t.Log("append under leaf element is legal")
	}
	if err := s.AppendChild(99, mustFragment(t, `<x/>`)); err == nil {
		t.Fatal("append out of range accepted")
	}
}

func TestDocViewBasics(t *testing.T) {
	s := mustBuild(t, paperDoc)
	if s.Root() != 0 || s.NodeOf(3) != 3 || s.PreOf(3) != 3 {
		t.Fatal("identity mapping broken")
	}
	if s.PreOf(-5) != xenc.NoPre {
		t.Fatal("PreOf(-5) must be NoPre")
	}
	if xenc.PostOf(s, 0) != 9 {
		t.Fatalf("post(root) = %d, want 9", xenc.PostOf(s, 0))
	}
}
