// Package naive implements the baseline the paper argues against
// (Section 2.2, "Structural Update Problems"): a pre/size/level store
// with a *materialized* pre column and no free space. Every structural
// insert or delete shifts all following tuples in every column and
// renumbers every attribute owner after the update point, so the
// physical cost is O(N) in document size rather than O(update volume).
// (In MonetDB itself this scheme is outright impossible — void columns
// may never be modified — so this package materializes what the paper
// calls prohibitive.)
package naive

import (
	"fmt"

	"mxq/internal/bat"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// Store is the naive mutable pre/size/level document store.
type Store struct {
	pre   []int32 // materialized; always the identity, re-enumerated on update
	size  []int32
	level []int16
	kind  []uint8
	name  []int32
	text  []string

	// Attribute table keyed by owner *pre*: every structural update must
	// renumber the tail of this column too.
	attrOwner []int32
	attrName  []int32
	attrVal   []int32
	prop      *bat.Dict

	qn *xenc.QNamePool
}

// Build encodes a shredded tree.
func Build(t *shred.Tree) (*Store, error) {
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("naive: cannot build a store from an empty tree")
	}
	s := &Store{prop: bat.NewDict(), qn: xenc.NewQNamePool()}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		s.pre = append(s.pre, int32(i))
		s.size = append(s.size, nd.Size)
		s.level = append(s.level, nd.Level)
		s.kind = append(s.kind, uint8(nd.Kind))
		s.text = append(s.text, nd.Value)
		if nd.Kind == xenc.KindElem || nd.Kind == xenc.KindPI {
			s.name = append(s.name, s.qn.Intern(nd.Name))
		} else {
			s.name = append(s.name, xenc.NoName)
		}
		for _, a := range nd.Attrs {
			s.attrOwner = append(s.attrOwner, int32(i))
			s.attrName = append(s.attrName, s.qn.Intern(a.Name))
			s.attrVal = append(s.attrVal, s.prop.Put(a.Value))
		}
	}
	return s, nil
}

// Clone returns an independent deep copy of the store. The concurrent
// differential harness uses it to freeze the oracle at each committed
// version while the original keeps advancing; the clone shares only the
// qualified-name pool, which is append-only and internally synchronized.
func (s *Store) Clone() *Store {
	return &Store{
		pre:       append([]int32(nil), s.pre...),
		size:      append([]int32(nil), s.size...),
		level:     append([]int16(nil), s.level...),
		kind:      append([]uint8(nil), s.kind...),
		name:      append([]int32(nil), s.name...),
		text:      append([]string(nil), s.text...),
		attrOwner: append([]int32(nil), s.attrOwner...),
		attrName:  append([]int32(nil), s.attrName...),
		attrVal:   append([]int32(nil), s.attrVal...),
		prop:      s.prop.Clone(),
		qn:        s.qn,
	}
}

// --- DocView --------------------------------------------------------------

// Len returns the number of tuples.
func (s *Store) Len() xenc.Pre { return int32(len(s.size)) }

// LiveNodes returns the number of live nodes.
func (s *Store) LiveNodes() int { return len(s.size) }

// Size returns the descendant count at p.
func (s *Store) Size(p xenc.Pre) xenc.Size { return s.size[p] }

// Level returns the depth at p.
func (s *Store) Level(p xenc.Pre) xenc.Level { return s.level[p] }

// Kind returns the node kind at p.
func (s *Store) Kind(p xenc.Pre) xenc.Kind { return xenc.Kind(s.kind[p]) }

// Name returns the interned name id at p.
func (s *Store) Name(p xenc.Pre) int32 { return s.name[p] }

// Value returns the text content at p.
func (s *Store) Value(p xenc.Pre) string { return s.text[p] }

// NodeOf returns p itself: the naive schema has no stable node identity,
// which is one of the problems the paper's node/pos table solves.
func (s *Store) NodeOf(p xenc.Pre) xenc.NodeID { return p }

// PreOf is the identity.
func (s *Store) PreOf(n xenc.NodeID) xenc.Pre {
	if n < 0 || n >= s.Len() {
		return xenc.NoPre
	}
	return n
}

// Attrs returns the attributes of the element at p (linear probe of the
// sorted owner column).
func (s *Store) Attrs(p xenc.Pre) []xenc.Attr {
	lo, hi := s.attrRange(p)
	if lo == hi {
		return nil
	}
	out := make([]xenc.Attr, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, xenc.Attr{Name: s.attrName[i], Val: s.prop.Get(s.attrVal[i])})
	}
	return out
}

// AttrValue returns the value of the named attribute at p.
func (s *Store) AttrValue(p xenc.Pre, name int32) (string, bool) {
	lo, hi := s.attrRange(p)
	for i := lo; i < hi; i++ {
		if s.attrName[i] == name {
			return s.prop.Get(s.attrVal[i]), true
		}
	}
	return "", false
}

func (s *Store) attrRange(p xenc.Pre) (int, int) {
	// Binary search the sorted owner column.
	lo, hi := 0, len(s.attrOwner)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.attrOwner[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for lo < len(s.attrOwner) && s.attrOwner[lo] == p {
		lo++
	}
	return start, lo
}

// Names exposes the document's interned names.
func (s *Store) Names() *xenc.QNamePool { return s.qn }

// Root returns the pre rank of the root element.
func (s *Store) Root() xenc.Pre { return 0 }

var _ xenc.DocView = (*Store)(nil)

// --- structural updates (all O(N)) ----------------------------------------

// InsertBefore inserts the fragment directly before target.
func (s *Store) InsertBefore(target xenc.Pre, frag *shred.Tree) error {
	if target <= 0 || target >= s.Len() {
		return fmt.Errorf("naive: invalid insert target %d", target)
	}
	return s.insertAt(target, s.parent(target), frag)
}

// InsertAfter inserts the fragment directly after target's subtree.
func (s *Store) InsertAfter(target xenc.Pre, frag *shred.Tree) error {
	if target <= 0 || target >= s.Len() {
		return fmt.Errorf("naive: invalid insert target %d", target)
	}
	return s.insertAt(target+s.size[target]+1, s.parent(target), frag)
}

// AppendChild inserts the fragment as the last child of parent.
func (s *Store) AppendChild(parent xenc.Pre, frag *shred.Tree) error {
	if parent < 0 || parent >= s.Len() || s.Kind(parent) != xenc.KindElem {
		return fmt.Errorf("naive: invalid append target %d", parent)
	}
	return s.insertAt(parent+s.size[parent]+1, parent, frag)
}

func (s *Store) insertAt(at xenc.Pre, parent xenc.Pre, frag *shred.Tree) error {
	k := int32(len(frag.Nodes))
	if k == 0 {
		return nil
	}
	baseLevel := s.level[parent] + 1
	// Shift every column: this is the O(N) tail move.
	newSize := make([]int32, k)
	newLevel := make([]int16, k)
	newKind := make([]uint8, k)
	newName := make([]int32, k)
	newText := make([]string, k)
	for i := range frag.Nodes {
		nd := &frag.Nodes[i]
		newSize[i] = nd.Size
		newLevel[i] = nd.Level + baseLevel
		newKind[i] = uint8(nd.Kind)
		newText[i] = nd.Value
		newName[i] = xenc.NoName
		if nd.Kind == xenc.KindElem || nd.Kind == xenc.KindPI {
			newName[i] = s.qn.Intern(nd.Name)
		}
	}
	s.size = bat.InsertInt32(s.size, int(at), newSize...)
	s.level = bat.InsertInt16(s.level, int(at), newLevel...)
	s.kind = bat.InsertUint8(s.kind, int(at), newKind...)
	s.name = bat.InsertInt32(s.name, int(at), newName...)
	s.text = insertStrings(s.text, int(at), newText)
	// Re-enumerate the materialized pre column (the update a void column
	// cannot absorb).
	s.pre = append(s.pre, make([]int32, k)...)
	for i := int(at); i < len(s.pre); i++ {
		s.pre[i] = int32(i)
	}
	// Renumber attribute owners after the insert point and splice in the
	// new attributes.
	for i := range s.attrOwner {
		if s.attrOwner[i] >= at {
			s.attrOwner[i] += k
		}
	}
	for i := range frag.Nodes {
		for _, a := range frag.Nodes[i].Attrs {
			s.spliceAttr(at+int32(i), a.Name, a.Value)
		}
	}
	// Grow all ancestors.
	for a := parent; ; {
		s.size[a] += k
		if s.level[a] == 0 {
			break
		}
		a = s.parent(a)
	}
	return nil
}

func (s *Store) spliceAttr(owner xenc.Pre, name, val string) {
	// Keep the owner column sorted.
	i := 0
	for i < len(s.attrOwner) && s.attrOwner[i] <= owner {
		i++
	}
	s.attrOwner = bat.InsertInt32(s.attrOwner, i, owner)
	s.attrName = bat.InsertInt32(s.attrName, i, s.qn.Intern(name))
	s.attrVal = bat.InsertInt32(s.attrVal, i, s.prop.Put(val))
}

// Delete removes the subtree rooted at target, shifting the tail left.
func (s *Store) Delete(target xenc.Pre) error {
	if target <= 0 || target >= s.Len() {
		return fmt.Errorf("naive: invalid delete target %d", target)
	}
	k := s.size[target] + 1
	parent := s.parent(target)
	s.size = bat.DeleteInt32(s.size, int(target), int(k))
	s.level = bat.DeleteInt16(s.level, int(target), int(k))
	s.kind = bat.DeleteUint8(s.kind, int(target), int(k))
	s.name = bat.DeleteInt32(s.name, int(target), int(k))
	s.text = append(s.text[:target], s.text[target+k:]...)
	s.pre = s.pre[:len(s.size)]
	for i := int(target); i < len(s.pre); i++ {
		s.pre[i] = int32(i)
	}
	// Drop the deleted owners' attributes and renumber the rest.
	w := 0
	for i := range s.attrOwner {
		o := s.attrOwner[i]
		if o >= target && o < target+k {
			continue
		}
		if o >= target+k {
			o -= k
		}
		s.attrOwner[w] = o
		s.attrName[w] = s.attrName[i]
		s.attrVal[w] = s.attrVal[i]
		w++
	}
	s.attrOwner = s.attrOwner[:w]
	s.attrName = s.attrName[:w]
	s.attrVal = s.attrVal[:w]
	for a := parent; ; {
		s.size[a] -= k
		if s.level[a] == 0 {
			break
		}
		a = s.parent(a)
	}
	return nil
}

// --- value updates (in place; the naive schema handles these fine) ---------

// SetValue replaces the content of a text, comment or PI node.
func (s *Store) SetValue(p xenc.Pre, val string) error {
	if p < 0 || p >= s.Len() {
		return fmt.Errorf("naive: pre %d out of range", p)
	}
	if s.Kind(p) == xenc.KindElem {
		return fmt.Errorf("naive: SetValue on an element (pre %d)", p)
	}
	s.text[p] = val
	return nil
}

// Rename changes the qualified name of an element or PI node.
func (s *Store) Rename(p xenc.Pre, name string) error {
	if p < 0 || p >= s.Len() {
		return fmt.Errorf("naive: pre %d out of range", p)
	}
	if k := s.Kind(p); k != xenc.KindElem && k != xenc.KindPI {
		return fmt.Errorf("naive: Rename on a %v node (pre %d)", k, p)
	}
	s.name[p] = s.qn.Intern(name)
	return nil
}

// SetAttr adds or replaces an attribute on the element at p. A replaced
// attribute keeps its position; a new one goes last, matching the paged
// store's semantics so differential tests can compare serializations.
func (s *Store) SetAttr(p xenc.Pre, name, val string) error {
	if p < 0 || p >= s.Len() {
		return fmt.Errorf("naive: pre %d out of range", p)
	}
	if s.Kind(p) != xenc.KindElem {
		return fmt.Errorf("naive: SetAttr on a %v node (pre %d)", s.Kind(p), p)
	}
	nameID := s.qn.Intern(name)
	lo, hi := s.attrRange(p)
	for i := lo; i < hi; i++ {
		if s.attrName[i] == nameID {
			s.attrVal[i] = s.prop.Put(val)
			return nil
		}
	}
	s.spliceAttr(p, name, val)
	return nil
}

// RemoveAttr deletes an attribute from the element at p. Removing an
// absent attribute is not an error (XUpdate remove semantics).
func (s *Store) RemoveAttr(p xenc.Pre, name string) error {
	if p < 0 || p >= s.Len() {
		return fmt.Errorf("naive: pre %d out of range", p)
	}
	nameID, ok := s.qn.Lookup(name)
	if !ok {
		return nil
	}
	lo, hi := s.attrRange(p)
	for i := lo; i < hi; i++ {
		if s.attrName[i] == nameID {
			s.attrOwner = append(s.attrOwner[:i], s.attrOwner[i+1:]...)
			s.attrName = append(s.attrName[:i], s.attrName[i+1:]...)
			s.attrVal = append(s.attrVal[:i], s.attrVal[i+1:]...)
			return nil
		}
	}
	return nil
}

// parent finds the parent by the backward level scan every pre/size/level
// store supports.
func (s *Store) parent(p xenc.Pre) xenc.Pre {
	lvl := s.level[p]
	for q := p - 1; q >= 0; q-- {
		if s.level[q] < lvl {
			return q
		}
	}
	return xenc.NoPre
}

func insertStrings(s []string, i int, vals []string) []string {
	s = append(s, vals...)
	copy(s[i+len(vals):], s[i:])
	copy(s[i:], vals)
	return s
}
