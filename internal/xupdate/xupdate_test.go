package xupdate

import (
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/xpath"
)

const sampleDoc = `<site><people>` +
	`<person id="p0"><name>Ann</name></person>` +
	`<person id="p1"><name>Bob</name><age>30</age></person>` +
	`</people><items><item id="i0"><name>ring</name></item></items></site>`

func buildStore(t *testing.T, doc string) *core.Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: 16, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *core.Store, mods string) Result {
	t.Helper()
	m, err := ParseString(mods)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(s, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after XUpdate: %v", err)
	}
	return res
}

func serializeDoc(t *testing.T, s *core.Store) string {
	t.Helper()
	out, err := serialize.String(s, s.Root(), serialize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func count(t *testing.T, s *core.Store, q string) int {
	t.Helper()
	ns, err := xpath.MustParse(q).Select(s)
	if err != nil {
		t.Fatal(err)
	}
	return len(ns)
}

const wrap = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">%s</xupdate:modifications>`

func mods(body string) string {
	return strings.Replace(wrap, "%s", body, 1)
}

func TestRemove(t *testing.T) {
	s := buildStore(t, sampleDoc)
	res := run(t, s, mods(`<xupdate:remove select="/site/people/person[@id='p0']"/>`))
	if res.Ops != 1 || res.Affected != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := count(t, s, `//person`); got != 1 {
		t.Fatalf("persons = %d, want 1", got)
	}
}

func TestRemoveAllSelected(t *testing.T) {
	s := buildStore(t, sampleDoc)
	res := run(t, s, mods(`<xupdate:remove select="//name"/>`))
	if res.Affected != 3 {
		t.Fatalf("affected = %d, want 3", res.Affected)
	}
	if got := count(t, s, `//name`); got != 0 {
		t.Fatalf("names left = %d", got)
	}
}

func TestRemoveAttribute(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:remove select="//person[@id='p1']/@id"/>`))
	if got := count(t, s, `//person[@id='p1']`); got != 0 {
		t.Fatal("attribute not removed")
	}
	if got := count(t, s, `//person`); got != 2 {
		t.Fatal("element removed instead of attribute")
	}
}

func TestInsertBeforeLiteral(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:insert-before select="//person[@id='p1']"><person id="px"><name>Xen</name></person></xupdate:insert-before>`))
	got := serializeDoc(t, s)
	if !strings.Contains(got, `<person id="px"><name>Xen</name></person><person id="p1">`) {
		t.Fatalf("insert-before misplaced: %s", got)
	}
}

func TestInsertAfterConstructed(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:insert-after select="//person[@id='p1']">`+
		`<xupdate:element name="person"><xupdate:attribute name="id">p2</xupdate:attribute>`+
		`<xupdate:element name="name"><xupdate:text>Cleo</xupdate:text></xupdate:element>`+
		`</xupdate:element></xupdate:insert-after>`))
	got := serializeDoc(t, s)
	if !strings.Contains(got, `</person><person id="p2"><name>Cleo</name></person></people>`) {
		t.Fatalf("constructed insert wrong: %s", got)
	}
}

func TestAppendDefaultLast(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:append select="/site/items"><item id="i1"><name>spoon</name></item></xupdate:append>`))
	if got := count(t, s, `//item`); got != 2 {
		t.Fatalf("items = %d", got)
	}
	got := serializeDoc(t, s)
	if !strings.Contains(got, `</item><item id="i1"><name>spoon</name></item></items>`) {
		t.Fatalf("append not last: %s", got)
	}
}

func TestAppendWithChildPosition(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:append select="/site/people" child="1"><person id="first"/></xupdate:append>`))
	got := serializeDoc(t, s)
	if !strings.Contains(got, `<people><person id="first"/><person id="p0">`) {
		t.Fatalf("child=1 append misplaced: %s", got)
	}
}

func TestAppendAttributeConstructor(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:append select="//item[@id='i0']"><xupdate:attribute name="featured">yes</xupdate:attribute></xupdate:append>`))
	if got := count(t, s, `//item[@featured='yes']`); got != 1 {
		t.Fatal("attribute constructor did not apply to target")
	}
}

func TestUpdateTextAndAttr(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:update select="//person[@id='p0']/name">Anna</xupdate:update>`))
	if got := count(t, s, `//name[text()='Anna']`); got != 1 {
		t.Fatalf("update element content failed: %s", serializeDoc(t, s))
	}
	run(t, s, mods(`<xupdate:update select="//person[@id='p1']/@id">p9</xupdate:update>`))
	if got := count(t, s, `//person[@id='p9']`); got != 1 {
		t.Fatal("update attribute failed")
	}
}

func TestRenameElementAndAttr(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:rename select="//item">product</xupdate:rename>`))
	if got := count(t, s, `//product`); got != 1 {
		t.Fatal("element rename failed")
	}
	run(t, s, mods(`<xupdate:rename select="//product/@id">code</xupdate:rename>`))
	if got := count(t, s, `//product[@code='i0']`); got != 1 {
		t.Fatalf("attribute rename failed: %s", serializeDoc(t, s))
	}
}

func TestMultipleCommandsInOrder(t *testing.T) {
	s := buildStore(t, sampleDoc)
	res := run(t, s, mods(
		`<xupdate:remove select="//person[@id='p0']"/>`+
			`<xupdate:append select="/site/people"><person id="p2"/></xupdate:append>`+
			`<xupdate:rename select="//person[@id='p2']">member</xupdate:rename>`))
	if res.Ops != 3 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if got := count(t, s, `//member`); got != 1 {
		t.Fatal("pipeline failed")
	}
}

func TestEmptySelectionIsNoOp(t *testing.T) {
	s := buildStore(t, sampleDoc)
	res := run(t, s, mods(`<xupdate:remove select="//ghost"/>`))
	if res.Ops != 1 || res.Affected != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCommentAndPIConstructors(t *testing.T) {
	s := buildStore(t, sampleDoc)
	run(t, s, mods(`<xupdate:append select="/site">`+
		`<xupdate:comment>generated</xupdate:comment>`+
		`<xupdate:processing-instruction name="audit">v=1</xupdate:processing-instruction>`+
		`</xupdate:append>`))
	if got := count(t, s, `//comment()`); got != 1 {
		t.Fatal("comment constructor failed")
	}
	if got := count(t, s, `//processing-instruction("audit")`); got != 1 {
		t.Fatal("pi constructor failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<no-mods/>`,
		mods(`<xupdate:remove/>`),
		mods(`<xupdate:insert-before select="//x"/>`),
		mods(`<xupdate:rename select="//x"/>`),
		mods(`<xupdate:append select="//x" child="0"><y/></xupdate:append>`),
		mods(`<xupdate:frobnicate select="//x"/>`),
		mods(`<xupdate:remove select="//x["/>`),
		mods(`<xupdate:insert-after select="//x"><xupdate:element/></xupdate:insert-after>`),
	}
	for _, b := range bad {
		if _, err := ParseString(b); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", b)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s := buildStore(t, sampleDoc)
	// Structural insert targeting an attribute is an execution error.
	m, err := ParseString(mods(`<xupdate:insert-before select="//person/@id"><x/></xupdate:insert-before>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s, m); err == nil {
		t.Fatal("insert before attribute succeeded")
	}
	// Removing the document root fails.
	m, err = ParseString(mods(`<xupdate:remove select="/site"/>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(s, m); err == nil {
		t.Fatal("removing the root succeeded")
	}
}

// TestRemoveParentAndChild: when a command selects both a node and its
// descendant, deleting the parent first must make the child a silent
// no-op (pinned ids resolve to NoPre).
func TestRemoveParentAndChild(t *testing.T) {
	s := buildStore(t, sampleDoc)
	res := run(t, s, mods(`<xupdate:remove select="//person[@id='p1'] | //person[@id='p1']/name"/>`))
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1 (child already gone)", res.Affected)
	}
	if got := count(t, s, `//person`); got != 1 {
		t.Fatal("wrong remove count")
	}
}

func TestVariableBinding(t *testing.T) {
	s := buildStore(t, sampleDoc)
	// Bind the id of the first person, then remove by it.
	res := run(t, s, mods(
		`<xupdate:variable name="victim" select="string(/site/people/person[1]/@id)"/>`+
			`<xupdate:remove select="//person[@id = $victim]"/>`))
	if res.Ops != 2 || res.Affected != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := count(t, s, `//person[@id='p0']`); got != 0 {
		t.Fatal("variable-selected person not removed")
	}
	if got := count(t, s, `//person`); got != 1 {
		t.Fatal("wrong person removed")
	}
}

func TestVariableFromNodeSet(t *testing.T) {
	s := buildStore(t, sampleDoc)
	// A node-set binding collapses to its first string value.
	run(t, s, mods(
		`<xupdate:variable name="n" select="//person/name"/>`+
			`<xupdate:update select="//item/name">$SEE: </xupdate:update>`+
			`<xupdate:append select="//item"><copy-of-name/></xupdate:append>`))
	if got := count(t, s, `//copy-of-name`); got != 1 {
		t.Fatal("commands after variable did not run")
	}
}

func TestVariableParseErrors(t *testing.T) {
	if _, err := ParseString(mods(`<xupdate:variable select="//x"/>`)); err == nil {
		t.Fatal("variable without name accepted")
	}
	if _, err := ParseString(mods(`<xupdate:variable name="v"/>`)); err == nil {
		t.Fatal("variable without select accepted")
	}
}
