package xupdate

import (
	"testing"
)

const fuzzWrap = `<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">`

// FuzzXUpdateParse feeds arbitrary byte strings to the XUpdate
// modification-list parser: it must return a parse error or a valid
// *Mods, never panic — whatever the XML decoder and the embedded XPath
// select compiler are handed. The seed corpus covers every operation
// the subset implements, namespace variants, fragment content, and
// malformed shapes.
func FuzzXUpdateParse(f *testing.F) {
	seeds := []string{
		// Every operation, well-formed.
		fuzzWrap + `<xupdate:remove select="/site/people/person[@id='p0']"/></xupdate:modifications>`,
		fuzzWrap + `<xupdate:remove select="//person[@id='p1']/@id"/></xupdate:modifications>`,
		fuzzWrap + `<xupdate:insert-before select="//person[@id='p1']"><person id="px"><name>Xen</name></person></xupdate:insert-before></xupdate:modifications>`,
		fuzzWrap + `<xupdate:insert-after select="//name"><x/></xupdate:insert-after></xupdate:modifications>`,
		fuzzWrap + `<xupdate:append select="/site" child="2"><y>text</y></xupdate:append></xupdate:modifications>`,
		fuzzWrap + `<xupdate:append select="/a"><xupdate:element name="e"><xupdate:attribute name="k">v</xupdate:attribute>body</xupdate:element></xupdate:append></xupdate:modifications>`,
		fuzzWrap + `<xupdate:update select="//name">New Name</xupdate:update></xupdate:modifications>`,
		fuzzWrap + `<xupdate:update select="//person/@id">p9</xupdate:update></xupdate:modifications>`,
		fuzzWrap + `<xupdate:rename select="//person">human</xupdate:rename></xupdate:modifications>`,
		fuzzWrap + `<xupdate:variable name="v" select="//name"/><xupdate:value-of select="$v"/></xupdate:modifications>`,
		// Multiple ops, comments, PIs, whitespace.
		fuzzWrap + `
		  <xupdate:remove select="//a"/><!-- c -->
		  <xupdate:append select="/r"><b><!--x--><?pi d?></b></xupdate:append>
		</xupdate:modifications>`,
		// Namespace variants the parser accepts.
		`<modifications><remove select="//a"/></modifications>`,
		`<m:modifications xmlns:m="http://www.xmldb.org/xupdate"><m:remove select="//a"/></m:modifications>`,
		// Malformed: must error, not panic.
		``, `<`, `</xupdate:modifications>`, `<xupdate:remove select="//a"/>`,
		fuzzWrap, // unterminated root
		fuzzWrap + `<xupdate:bogus select="//a"/></xupdate:modifications>`,
		fuzzWrap + `<xupdate:remove/></xupdate:modifications>`,               // missing select
		fuzzWrap + `<xupdate:remove select="///"/></xupdate:modifications>`,  // bad XPath
		fuzzWrap + `<xupdate:remove select="//a["/></xupdate:modifications>`, // unterminated predicate
		fuzzWrap + `<xupdate:update select="//a"><z/></xupdate:update></xupdate:modifications>`,
		fuzzWrap + `<xupdate:modifications/></xupdate:modifications>`, // nested root
		`<notxupdate><remove select="//a"/></notxupdate>`,
		fuzzWrap + `<xupdate:append select="/r" child="notanumber"><b/></xupdate:append></xupdate:modifications>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			t.Skip()
		}
		mods, err := ParseString(src)
		if err != nil {
			return
		}
		// A successful parse must produce a well-formed op list: every op
		// carries a compiled select.
		for i, op := range mods.Ops {
			if op.Select == nil {
				t.Fatalf("op %d (%v) parsed without a select expression", i, op.Kind)
			}
		}
	})
}
