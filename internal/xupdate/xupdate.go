// Package xupdate implements the update language of the paper
// (Section 2.1): the XUpdate structural commands remove, insert-before,
// insert-after and append (with its optional child position), plus the
// value commands update and rename and the element/attribute/text/
// comment/processing-instruction content constructors.
//
// A parsed modification list is executed against any store that offers
// the structural update operations (the paged core store directly, or a
// transaction overlay). Selections are evaluated with the XPath engine;
// selected nodes are pinned by their immutable NodeIDs before any
// mutation, so earlier commands in a list cannot invalidate the targets
// of later ones — this is the translation of XUpdate statements into bulk
// updates on the pos/size/level, pageOffset and node/pos tables that
// Section 3.1 describes.
package xupdate

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"mxq/internal/shred"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// NS is the XUpdate namespace. The parser accepts both the prefixed
// namespace-resolved form and bare "xupdate:*" names.
const NS = "http://www.xmldb.org/xupdate"

// OpKind enumerates XUpdate commands.
type OpKind int

// The supported commands.
const (
	OpRemove OpKind = iota
	OpInsertBefore
	OpInsertAfter
	OpAppend
	OpUpdate
	OpRename
	OpVariable
)

func (k OpKind) String() string {
	switch k {
	case OpRemove:
		return "remove"
	case OpInsertBefore:
		return "insert-before"
	case OpInsertAfter:
		return "insert-after"
	case OpAppend:
		return "append"
	case OpUpdate:
		return "update"
	case OpRename:
		return "rename"
	case OpVariable:
		return "variable"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one parsed XUpdate command.
type Op struct {
	Kind    OpKind
	Select  *xpath.Expr
	Child   int         // append: 0-based child index, -1 = last
	Frag    *shred.Tree // content for the insert commands
	Attrs   []shred.Attr
	Text    string // update: new content; rename: new name
	VarName string // variable: the binding name
}

// Mods is a parsed xupdate:modifications document.
type Mods struct {
	Ops []Op
}

// Parse reads an XUpdate modification list.
func Parse(r io.Reader) (*Mods, error) {
	dec := xml.NewDecoder(r)
	mods := &Mods{}
	seenRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xupdate: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if !isXU(tk.Name) {
				return nil, fmt.Errorf("xupdate: unexpected element %q", tk.Name.Local)
			}
			if tk.Name.Local == "modifications" {
				if seenRoot {
					return nil, fmt.Errorf("xupdate: nested modifications")
				}
				seenRoot = true
				continue
			}
			if !seenRoot {
				return nil, fmt.Errorf("xupdate: %s outside modifications", tk.Name.Local)
			}
			op, err := parseOp(dec, tk)
			if err != nil {
				return nil, err
			}
			mods.Ops = append(mods.Ops, *op)
		}
	}
	if !seenRoot {
		return nil, fmt.Errorf("xupdate: missing xupdate:modifications root")
	}
	return mods, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Mods, error) { return Parse(strings.NewReader(s)) }

func isXU(n xml.Name) bool {
	return n.Space == NS || n.Space == "xupdate" || n.Space == ""
}

func parseOp(dec *xml.Decoder, start xml.StartElement) (*Op, error) {
	op := &Op{Child: -1}
	switch start.Name.Local {
	case "remove":
		op.Kind = OpRemove
	case "insert-before":
		op.Kind = OpInsertBefore
	case "insert-after":
		op.Kind = OpInsertAfter
	case "append":
		op.Kind = OpAppend
	case "update":
		op.Kind = OpUpdate
	case "rename":
		op.Kind = OpRename
	case "variable":
		op.Kind = OpVariable
	default:
		return nil, fmt.Errorf("xupdate: unknown command %q", start.Name.Local)
	}
	var selectSrc string
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "select":
			selectSrc = a.Value
		case "name":
			if op.Kind == OpVariable {
				op.VarName = a.Value
			}
		case "child":
			var c int
			if _, err := fmt.Sscanf(a.Value, "%d", &c); err != nil || c < 1 {
				return nil, fmt.Errorf("xupdate: bad child position %q", a.Value)
			}
			op.Child = c - 1 // XUpdate child counts from 1
		}
	}
	if selectSrc == "" {
		return nil, fmt.Errorf("xupdate: %s without select", start.Name.Local)
	}
	sel, err := xpath.Parse(selectSrc)
	if err != nil {
		return nil, err
	}
	op.Select = sel

	b := shred.NewBuilder()
	var text strings.Builder
	if err := parseContent(dec, start.Name, b, &text, op); err != nil {
		return nil, err
	}
	frag := b.Tree()
	if len(frag.Nodes) > 0 {
		op.Frag = frag
	}
	op.Text = strings.TrimSpace(text.String())

	switch op.Kind {
	case OpInsertBefore, OpInsertAfter, OpAppend:
		if op.Frag == nil && len(op.Attrs) == 0 {
			return nil, fmt.Errorf("xupdate: %s without content", op.Kind)
		}
	case OpRename:
		if op.Text == "" {
			return nil, fmt.Errorf("xupdate: rename without a new name")
		}
	case OpVariable:
		if op.VarName == "" {
			return nil, fmt.Errorf("xupdate: variable without a name")
		}
	}
	return op, nil
}

// parseContent fills the builder with the command's content constructors
// and literal XML until the command's end element.
func parseContent(dec *xml.Decoder, until xml.Name, b *shred.Builder, text *strings.Builder, op *Op) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("xupdate: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if isXU(tk.Name) && tk.Name.Space != "" {
				if err := parseConstructor(dec, tk, b, op, depth); err != nil {
					return err
				}
				continue
			}
			// Literal element content.
			var attrs []shred.Attr
			for _, a := range tk.Attr {
				attrs = append(attrs, shred.Attr{Name: a.Name.Local, Value: a.Value})
			}
			b.Start(tk.Name.Local, attrs...)
			depth++
		case xml.EndElement:
			if depth == 0 {
				if tk.Name.Local != until.Local {
					return fmt.Errorf("xupdate: unbalanced %q", tk.Name.Local)
				}
				return nil
			}
			b.End()
			depth--
		case xml.CharData:
			s := string(tk)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if depth == 0 {
				text.WriteString(s)
			} else {
				b.Text(s)
			}
		case xml.Comment:
			if depth > 0 {
				b.Comment(string(tk))
			}
		}
	}
}

// parseConstructor handles xupdate:element / attribute / text / comment /
// processing-instruction.
func parseConstructor(dec *xml.Decoder, start xml.StartElement, b *shred.Builder, op *Op, depth int) error {
	name := ""
	for _, a := range start.Attr {
		if a.Name.Local == "name" {
			name = a.Value
		}
	}
	inner := func() (string, error) {
		var sb strings.Builder
		for {
			tok, err := dec.Token()
			if err != nil {
				return "", fmt.Errorf("xupdate: %w", err)
			}
			switch tk := tok.(type) {
			case xml.CharData:
				sb.WriteString(string(tk))
			case xml.EndElement:
				return sb.String(), nil
			case xml.StartElement:
				return "", fmt.Errorf("xupdate: %s cannot contain elements", start.Name.Local)
			}
		}
	}
	switch start.Name.Local {
	case "element":
		if name == "" {
			return fmt.Errorf("xupdate: element constructor without name")
		}
		b.Start(name)
		var ignored strings.Builder
		if err := parseContent(dec, start.Name, b, &ignored, op); err != nil {
			return err
		}
		b.End()
	case "attribute":
		if name == "" {
			return fmt.Errorf("xupdate: attribute constructor without name")
		}
		val, err := inner()
		if err != nil {
			return err
		}
		if depth == 0 && !b.Open() {
			// Top-level attribute constructor: applies to the target.
			op.Attrs = append(op.Attrs, shred.Attr{Name: name, Value: val})
		} else {
			b.Attr(name, val)
		}
	case "text":
		val, err := inner()
		if err != nil {
			return err
		}
		b.Text(val)
	case "comment":
		val, err := inner()
		if err != nil {
			return err
		}
		b.Comment(val)
	case "processing-instruction":
		if name == "" {
			return fmt.Errorf("xupdate: processing-instruction constructor without name")
		}
		val, err := inner()
		if err != nil {
			return err
		}
		b.PI(name, strings.TrimSpace(val))
	default:
		return fmt.Errorf("xupdate: unknown constructor %q", start.Name.Local)
	}
	return nil
}

// Target is the store interface the executor mutates: the DocView read
// surface plus the structural and value update operations of the paged
// store (Section 3). *core.Store and transaction overlays implement it.
type Target interface {
	xenc.DocView
	InsertBefore(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error)
	InsertAfter(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error)
	AppendChild(parent xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error)
	InsertChildAt(parent xenc.Pre, idx int, frag *shred.Tree) ([]xenc.NodeID, error)
	Delete(target xenc.Pre) error
	SetValue(p xenc.Pre, val string) error
	Rename(p xenc.Pre, name string) error
	SetAttr(p xenc.Pre, name, val string) error
	RemoveAttr(p xenc.Pre, name string) error
}

// Result summarizes an execution.
type Result struct {
	Ops      int // commands executed
	Affected int // nodes the commands were applied to
}

// Execute runs all commands in order against the store.
// xupdate:variable bindings are evaluated when the command runs and are
// visible to the select expressions of all later commands ($name). Node
// set bindings are converted to their string value at definition time,
// since later structural commands may relocate the selected nodes.
func Execute(st Target, mods *Mods) (Result, error) {
	var res Result
	vars := map[string]xpath.Value{}
	for i := range mods.Ops {
		op := &mods.Ops[i]
		if op.Kind == OpVariable {
			val, err := op.Select.EvalVars(st, vars)
			if err != nil {
				return res, fmt.Errorf("xupdate: command %d (variable %s): %w", i+1, op.VarName, err)
			}
			vars[op.VarName] = xpath.String(xpath.StringOf(st, val))
			res.Ops++
			continue
		}
		n, err := executeOp(st, op, vars)
		if err != nil {
			return res, fmt.Errorf("xupdate: command %d (%s): %w", i+1, op.Kind, err)
		}
		res.Ops++
		res.Affected += n
	}
	return res, nil
}

func executeOp(st Target, op *Op, vars map[string]xpath.Value) (int, error) {
	ns, err := op.Select.SelectVars(st, vars)
	if err != nil {
		return 0, err
	}
	if len(ns) == 0 {
		return 0, nil // XUpdate: empty selection is a no-op
	}
	// Pin targets by immutable node id (attribute targets keep their
	// owner's id plus the attribute name).
	type pinned struct {
		id       xenc.NodeID
		attrName string
	}
	targets := make([]pinned, 0, len(ns))
	for _, n := range ns {
		if n.Pre == xpath.DocNodePre {
			return 0, fmt.Errorf("cannot apply %s to the document node", op.Kind)
		}
		p := pinned{id: st.NodeOf(n.Pre)}
		if n.Attr != xpath.NoAttr {
			attrs := st.Attrs(n.Pre)
			if int(n.Attr) >= len(attrs) {
				return 0, fmt.Errorf("stale attribute selection")
			}
			p.attrName = st.Names().Name(attrs[n.Attr].Name)
		}
		targets = append(targets, p)
	}
	count := 0
	for _, tgt := range targets {
		p := st.PreOf(tgt.id)
		if p == xenc.NoPre {
			continue // removed by an earlier target of this same command
		}
		if err := applyOne(st, op, p, tgt.attrName); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func applyOne(st Target, op *Op, p xenc.Pre, attrName string) error {
	isAttr := attrName != ""
	switch op.Kind {
	case OpRemove:
		if isAttr {
			return st.RemoveAttr(p, attrName)
		}
		return st.Delete(p)
	case OpUpdate:
		if isAttr {
			return st.SetAttr(p, attrName, op.Text)
		}
		return updateContent(st, p, op.Text)
	case OpRename:
		if isAttr {
			val, _ := attrValue(st, p, attrName)
			if err := st.RemoveAttr(p, attrName); err != nil {
				return err
			}
			return st.SetAttr(p, op.Text, val)
		}
		return st.Rename(p, op.Text)
	case OpInsertBefore:
		if isAttr {
			return fmt.Errorf("insert-before cannot target an attribute")
		}
		_, err := st.InsertBefore(p, op.Frag)
		return err
	case OpInsertAfter:
		if isAttr {
			return fmt.Errorf("insert-after cannot target an attribute")
		}
		_, err := st.InsertAfter(p, op.Frag)
		return err
	case OpAppend:
		if isAttr {
			return fmt.Errorf("append cannot target an attribute")
		}
		for _, a := range op.Attrs {
			if err := st.SetAttr(p, a.Name, a.Value); err != nil {
				return err
			}
		}
		if op.Frag == nil {
			return nil
		}
		if op.Child < 0 {
			_, err := st.AppendChild(p, op.Frag)
			return err
		}
		_, err := st.InsertChildAt(p, op.Child, op.Frag)
		return err
	}
	return fmt.Errorf("unknown command %v", op.Kind)
}

func attrValue(st Target, p xenc.Pre, name string) (string, bool) {
	id, ok := st.Names().Lookup(name)
	if !ok {
		return "", false
	}
	return st.AttrValue(p, id)
}

// updateContent implements xupdate:update on an element or value node:
// value nodes get their content replaced; elements get their children
// replaced by a single text node.
func updateContent(st Target, p xenc.Pre, text string) error {
	if st.Kind(p) != xenc.KindElem {
		return st.SetValue(p, text)
	}
	// Delete all children (pin them first: deleting shifts nothing in the
	// paged store, but ids are the stable handle).
	var kids []xenc.NodeID
	lvl := st.Level(p)
	q := xenc.SkipFree(st, p+1)
	for q < st.Len() && st.Level(q) > lvl {
		if st.Level(q) == lvl+1 {
			kids = append(kids, st.NodeOf(q))
		}
		q = xenc.SkipFree(st, q+st.Size(q)+1)
	}
	for _, id := range kids {
		cp := st.PreOf(id)
		if cp == xenc.NoPre {
			continue
		}
		if err := st.Delete(cp); err != nil {
			return err
		}
	}
	if text == "" {
		return nil
	}
	frag := &shred.Tree{Nodes: []shred.Node{{Kind: xenc.KindText, Value: text}}}
	_, err := st.AppendChild(st.PreOf(st.NodeOf(p)), frag)
	if err != nil {
		return err
	}
	return nil
}
