package repl

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mxq/internal/wal"
)

// encodeRecords gobs a record batch into one WALRecords frame payload.
// Each frame carries a self-contained gob stream (fresh encoder), so
// frames survive reordering across reconnects and a torn stream never
// poisons a decoder.
func encodeRecords(recs []*wal.Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("repl: encoding record batch: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRecords reverses encodeRecords.
func decodeRecords(b []byte) ([]*wal.Record, error) {
	var recs []*wal.Record
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&recs); err != nil {
		return nil, fmt.Errorf("repl: decoding record batch: %w", err)
	}
	return recs, nil
}
