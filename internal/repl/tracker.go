// Package repl is WAL log-shipping replication for read scale-out: a
// primary streams a document's WAL — the records its commit protocol
// already writes — to any number of followers, each of which replays
// them through the same apply path recovery uses, so a follower is at
// all times a crash-recovered image of the primary at some LSN.
//
// The design rests on three contracts the rest of the system already
// provides:
//
//   - the WAL is the total order of committed work (one record per
//     commit, LSNs contiguous), and wal.Reader streams it gap-free past
//     any LSN that has not been pruned, never past the durability
//     watermark — a follower cannot apply a record a primary crash
//     could take back;
//   - the checkpoint image format (internal/ckpt) doubles as the
//     bootstrap format: a follower whose LSN was pruned away — or an
//     empty one — is sent a pinned checkpoint image and resumes
//     streaming from its LSN, exactly the recovery path run over the
//     network;
//   - pruning is fenced by a barrier (ckpt.SetPruneBarrier →
//     Tracker.Barrier): no segment holding a record beyond a live
//     follower's last durably-applied LSN is ever deleted, so a
//     connected follower never falls into the snapshot path; a
//     follower that disconnects loses the fence and self-heals through
//     it when it returns.
//
// Followers acknowledge the LSN they have durably applied; the primary
// tracks the minimum across live subscriptions both for the prune
// barrier and for observability (lag = primary tail − follower ack).
package repl

import "sync"

// Tracker registers one document's live follower subscriptions and
// their durably-acked LSNs. Its Barrier is the document's prune fence.
type Tracker struct {
	mu     sync.Mutex
	nextID uint64
	acked  map[uint64]uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{acked: make(map[uint64]uint64)}
}

// Register adds a follower whose last durably-applied LSN is acked, and
// returns its subscription id. From this moment the prune barrier
// protects every record past acked, so Register must happen before the
// primary decides it can stream (not after — a prune could slip into
// the gap).
func (t *Tracker) Register(acked uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.acked[t.nextID] = acked
	return t.nextID
}

// Ack raises a follower's durably-applied LSN (never lowers it; acks
// racing out of order are harmless). Unknown ids are ignored — a late
// ack from a subscription already unregistered must not resurrect it.
func (t *Tracker) Ack(id, lsn uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.acked[id]; ok && lsn > cur {
		t.acked[id] = lsn
	}
}

// Unregister drops a subscription; its fence is released.
func (t *Tracker) Unregister(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.acked, id)
}

// Barrier returns the highest LSN the WAL may be pruned up to without
// stranding a live follower: the minimum acked LSN, or ^uint64(0) when
// no follower is subscribed (no external constraint).
func (t *Tracker) Barrier() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	min := ^uint64(0)
	for _, lsn := range t.acked {
		if lsn < min {
			min = lsn
		}
	}
	return min
}

// Count returns the number of live subscriptions.
func (t *Tracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.acked)
}
