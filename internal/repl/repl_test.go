package repl

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mxq/internal/core"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/wire"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

const docXML = `<lib><shelf id="s1"><book>A</book></shelf></lib>`

func buildStore(t testing.TB) *core.Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(docXML), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: 16, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// primary is a document plus a mini replication listener speaking just
// enough of the v2 protocol (Hello + SubscribeWAL) to exercise Serve.
type primary struct {
	t     *testing.T
	log   *wal.Log
	mgr   *tx.Manager
	track *Tracker
	ln    net.Listener
	wg    sync.WaitGroup
}

func newPrimary(t *testing.T, segBytes int64) *primary {
	t.Helper()
	log, err := wal.Open(filepath.Join(t.TempDir(), "d.wal"), wal.Options{NoSync: true, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	p := &primary{t: t, log: log, mgr: tx.NewManager(buildStore(t), log), track: NewTracker()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.ln = ln
	t.Cleanup(func() { ln.Close(); p.wg.Wait() })
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

func (p *primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			p.serveConn(conn)
		}()
	}
}

func (p *primary) serveConn(conn net.Conn) {
	for {
		fr, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return
		}
		switch fr.Op {
		case wire.OpHello:
			var b wire.PayloadBuilder
			b.Uvarint(wire.MaxVersion).Uvarint(wire.FeatReplication | wire.FeatRYW)
			wire.WriteFrame(conn, wire.Frame{ID: fr.ID, Op: wire.StatusOK, Payload: b.Bytes()})
		case wire.OpSubscribeWAL:
			r := wire.NewPayloadReader(fr.Payload)
			if _, err := r.String(); err != nil {
				return
			}
			after, err := r.Uvarint()
			if err != nil {
				return
			}
			Serve(conn, fr.ID, after, Source{
				Name: "d", Log: p.log, Pin: p.mgr.PinCheckpoint, Track: p.track,
			}, 0, p.t.Logf)
			return
		default:
			return
		}
	}
}

func (p *primary) commit(name string) uint64 {
	p.t.Helper()
	txn := p.mgr.Begin()
	ns, err := xpath.MustParse(`//shelf`).Select(txn)
	if err != nil || len(ns) == 0 {
		p.t.Fatalf("select shelf: %v", err)
	}
	fr, err := shred.ParseFragment(`<book>`+name+`</book>`, shred.Options{})
	if err != nil {
		p.t.Fatal(err)
	}
	if _, err := txn.AppendChild(ns[0].Pre, fr); err != nil {
		p.t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		p.t.Fatal(err)
	}
	return txn.CommitLSN()
}

func (p *primary) xml() string {
	p.t.Helper()
	return managerXML(p.t, p.mgr)
}

func managerXML(t testing.TB, m *tx.Manager) string {
	t.Helper()
	rv := m.AcquireRead()
	defer rv.Close()
	var b bytes.Buffer
	if err := serialize.Document(&b, rv.View().(xenc.DocView), serialize.Options{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// testSink applies a subscription onto a real manager + local WAL —
// the same wiring the root package's follower documents use.
type testSink struct {
	t   *testing.T
	dir string

	mu        sync.Mutex
	log       *wal.Log
	mgr       *tx.Manager
	bootstrap int
}

func newTestSink(t *testing.T) *testSink {
	return &testSink{t: t, dir: t.TempDir()}
}

func (s *testSink) manager() *tx.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

func (s *testSink) AppliedLSN() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr == nil {
		return 0, false
	}
	return s.mgr.AppliedLSN(), true
}

// applied is the test-side shorthand (0 until bootstrapped).
func (s *testSink) applied() uint64 {
	lsn, _ := s.AppliedLSN()
	return lsn
}

func (s *testSink) Bootstrap(r io.Reader, lsn uint64) error {
	hdrLSN, err := tx.ReadSnapshotHeader(r)
	if err != nil {
		return err
	}
	if hdrLSN != lsn {
		return fmt.Errorf("image header %d, subscription says %d", hdrLSN, lsn)
	}
	store, err := core.Load(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		s.log.Close()
	}
	path := filepath.Join(s.dir, "d.wal")
	wal.RemoveSegments(path)
	log, err := wal.Open(path, wal.Options{NoSync: true})
	if err != nil {
		return err
	}
	log.EnsureLSN(lsn)
	s.log = log
	s.mgr = tx.NewManager(store, log)
	s.bootstrap++
	return nil
}

func (s *testSink) Apply(recs []*wal.Record) (uint64, error) {
	s.mu.Lock()
	mgr := s.mgr
	s.mu.Unlock()
	if mgr == nil {
		return 0, fmt.Errorf("apply before bootstrap")
	}
	for _, rec := range recs {
		if err := mgr.ApplyReplicated(rec); err != nil {
			return 0, err
		}
	}
	return recs[len(recs)-1].LSN, nil
}

func (s *testSink) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		s.log.Close()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startFollower runs f until the returned stop function is called.
func startFollower(t *testing.T, f *Follower) (stop func()) {
	t.Helper()
	stopC := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); f.Run(stopC) }()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopC) })
		<-done
	}
}

// TestFollowerBootstrapAndStream: an empty follower bootstraps from a
// snapshot image, then applies live commits as they arrive; its acks
// drive the tracker barrier, and the stores converge byte-for-byte.
func TestFollowerBootstrapAndStream(t *testing.T) {
	p := newPrimary(t, wal.DefaultSegmentBytes)
	p.commit("B")
	p.commit("C")

	sink := newTestSink(t)
	defer sink.close()
	f := &Follower{Addr: p.ln.Addr().String(), Doc: "d", Sink: sink, Logf: t.Logf}
	stop := startFollower(t, f)
	defer stop()

	waitFor(t, "bootstrap catch-up", func() bool { return sink.applied() == 2 })
	// Live tail: commits made after the subscription stream through.
	p.commit("D")
	last := p.commit("E")
	waitFor(t, "live stream", func() bool { return sink.applied() == last })
	if got, want := managerXML(t, sink.manager()), p.xml(); got != want {
		t.Fatalf("stores diverged:\nfollower: %s\nprimary:  %s", got, want)
	}
	waitFor(t, "ack propagation", func() bool { return p.track.Barrier() == last })
	if p.track.Count() != 1 {
		t.Fatalf("tracker count = %d", p.track.Count())
	}
	stop()
	waitFor(t, "unregister", func() bool { return p.track.Count() == 0 })
	if p.track.Barrier() != ^uint64(0) {
		t.Fatalf("barrier with no followers = %d", p.track.Barrier())
	}
}

// TestFollowerResumesInWALMode: a follower that already holds a prefix
// reconnects and resumes by WAL replay alone — no second snapshot.
func TestFollowerResumesInWALMode(t *testing.T) {
	p := newPrimary(t, wal.DefaultSegmentBytes)
	p.commit("B")

	sink := newTestSink(t)
	defer sink.close()
	f := &Follower{Addr: p.ln.Addr().String(), Doc: "d", Sink: sink, Logf: t.Logf}
	stop := startFollower(t, f)
	waitFor(t, "first catch-up", func() bool { return sink.applied() == 1 })
	stop()

	// Commits land while the follower is away; the WAL keeps them.
	last := p.commit("C")
	stop = startFollower(t, f)
	defer stop()
	waitFor(t, "resume", func() bool { return sink.applied() == last })
	if n := sink.bootstrap; n != 1 {
		t.Fatalf("bootstrapped %d times, want 1 (resume must use WAL mode)", n)
	}
	if got, want := managerXML(t, sink.manager()), p.xml(); got != want {
		t.Fatalf("stores diverged after resume:\n%s\n%s", got, want)
	}
}

// TestPrunedFollowerRebootstraps: while the follower is disconnected
// its fence is gone; if the primary prunes past its position, the
// reconnect self-heals through a fresh snapshot bootstrap.
func TestPrunedFollowerRebootstraps(t *testing.T) {
	p := newPrimary(t, 256) // tiny segments so pruning actually seals some
	p.commit("B")

	sink := newTestSink(t)
	defer sink.close()
	f := &Follower{Addr: p.ln.Addr().String(), Doc: "d", Sink: sink, Logf: t.Logf}
	stop := startFollower(t, f)
	waitFor(t, "first catch-up", func() bool { return sink.applied() == 1 })
	stop()

	var last uint64
	for i := 0; i < 30; i++ {
		last = p.commit("X")
	}
	if err := p.log.Prune(last - 1); err != nil {
		t.Fatal(err)
	}
	if p.log.CanStream(1) {
		t.Skip("prune sealed nothing; segment bound too large for this doc")
	}

	stop = startFollower(t, f)
	defer stop()
	waitFor(t, "re-bootstrap", func() bool { return sink.applied() == last })
	if n := sink.bootstrap; n != 2 {
		t.Fatalf("bootstrapped %d times, want 2", n)
	}
	if got, want := managerXML(t, sink.manager()), p.xml(); got != want {
		t.Fatalf("stores diverged after re-bootstrap:\n%s\n%s", got, want)
	}
}

func TestTrackerBarrier(t *testing.T) {
	tr := NewTracker()
	if tr.Barrier() != ^uint64(0) {
		t.Fatal("empty tracker constrains pruning")
	}
	a := tr.Register(5)
	b := tr.Register(9)
	if got := tr.Barrier(); got != 5 {
		t.Fatalf("barrier = %d", got)
	}
	tr.Ack(a, 12)
	if got := tr.Barrier(); got != 9 {
		t.Fatalf("barrier = %d", got)
	}
	tr.Ack(b, 3) // acks never regress
	if got := tr.Barrier(); got != 9 {
		t.Fatalf("barrier after stale ack = %d", got)
	}
	tr.Unregister(b)
	if got := tr.Barrier(); got != 12 {
		t.Fatalf("barrier = %d", got)
	}
	tr.Unregister(a)
	tr.Ack(a, 99) // late ack on a dead subscription is inert
	if tr.Count() != 0 || tr.Barrier() != ^uint64(0) {
		t.Fatal("dead subscription resurrected")
	}
}

func TestRecordCodec(t *testing.T) {
	in := []*wal.Record{
		{LSN: 7, Ops: []wal.Op{{Kind: wal.OpSetValue, Target: 3, Value: "v"}}},
		{LSN: 8, Ops: []wal.Op{{Kind: wal.OpAppendChild, Target: 1,
			Frag:   []wal.FragNode{{Kind: 1, Name: "book", Attrs: []string{"id", "b9"}}},
			NewIDs: []xenc.NodeID{42}}}},
	}
	b, err := encodeRecords(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeRecords(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].LSN != 7 || out[1].Ops[0].Frag[0].Name != "book" || out[1].Ops[0].NewIDs[0] != 42 {
		t.Fatalf("round trip = %+v", out)
	}
}
