package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"mxq/internal/chunkstore"
	"mxq/internal/core"
	"mxq/internal/wal"
	"mxq/internal/wire"
)

// Sink is the follower-side state a subscription feeds: the root
// package implements it over a document's store, manager and local WAL.
// Methods are called from a single goroutine.
type Sink interface {
	// AppliedLSN is where the follower resumes from: the last LSN whose
	// effects are durably applied locally. ok=false means the follower
	// holds no state at all — not even the document's initial image,
	// which the WAL does not contain — so the subscription must open
	// with a snapshot bootstrap, never with record replay.
	AppliedLSN() (lsn uint64, ok bool)
	// Bootstrap replaces the follower's entire state from a checkpoint
	// image stream (snapshot header + store pages) pinned at lsn. After
	// it returns, AppliedLSN must report lsn.
	Bootstrap(r io.Reader, lsn uint64) error
	// Apply applies a record batch in order and makes it durable,
	// returning the LSN to ack (normally the batch's last). An error
	// ends the subscription — a follower that cannot apply must not ack.
	Apply(recs []*wal.Record) (uint64, error)
}

// ChunkSink is a Sink that can bootstrap by content: the follower
// advertises wire.FeatChunkedSnap, diffs the primary's manifest against
// its local chunk store, and receives only the chunks it is missing. A
// re-bootstrap after a crash-restart then transfers O(churn), not the
// whole document.
type ChunkSink interface {
	Sink
	// ChunkStore returns the local store received chunks land in — the
	// same one the document's checkpoints use, so checkpointed chunks
	// count as "already have" during the diff.
	ChunkStore() (chunkstore.Store, error)
	// BootstrapManifest replaces the follower's entire state from the
	// manifest, whose chunks are all present in ChunkStore() by the time
	// it is called. After it returns, AppliedLSN must report lsn.
	BootstrapManifest(m *core.ChunkManifest, lsn uint64) error
}

// Follower maintains one document's subscription to a primary:
// connect, negotiate protocol 2, subscribe past the sink's applied
// LSN, bootstrap from a snapshot when told to, apply record batches
// and ack them — reconnecting with backoff until stopped. The
// subscription is self-healing: every reconnect renegotiates from the
// sink's current applied LSN, so a crash on either side (or a prune
// that outran the fence while disconnected) degrades to a snapshot
// bootstrap, never to divergence.
type Follower struct {
	Addr string
	Doc  string
	Sink Sink
	Logf func(string, ...any)

	// DialFunc overrides the TCP dial (tests). nil = net.Dial.
	DialFunc func() (net.Conn, error)
	// MaxFrame caps inbound frame size (0 = wire.MaxFrame).
	MaxFrame uint32
}

func (f *Follower) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

// Run services the subscription until stop closes. Connection errors
// are logged and retried with backoff (100ms doubling to 3s, reset
// whenever a connection made progress); only a nil from stop ends it.
func (f *Follower) Run(stop <-chan struct{}) {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		progressed, err := f.runOnce(stop)
		select {
		case <-stop:
			return
		default:
		}
		if err != nil {
			f.logf("repl %s: subscription ended: %v", f.Doc, err)
		}
		if progressed {
			backoff = 100 * time.Millisecond
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// runOnce runs a single connection's lifetime. progressed reports
// whether anything was bootstrapped or applied (it resets the backoff).
func (f *Follower) runOnce(stop <-chan struct{}) (progressed bool, err error) {
	conn, err := f.dial()
	if err != nil {
		return false, err
	}
	defer conn.Close()
	// stop kills the connection out from under every blocking read; the
	// watcher is reaped on return so it cannot leak across reconnects.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-stop:
			conn.Close()
		case <-watcherDone:
		}
	}()

	if err := f.hello(conn); err != nil {
		return false, err
	}
	after, haveState := f.Sink.AppliedLSN()
	if !haveState {
		after = wire.SubscribeNone
	}
	mode, start, err := f.subscribe(conn, after)
	if err != nil {
		return false, err
	}
	switch mode {
	case wire.ModeWAL:
		if !haveState || start != after {
			return false, fmt.Errorf("repl: primary streams from %d, asked for %d", start, after)
		}
	case wire.ModeSnapshot, wire.ModeSnapshotChunked:
		if haveState && start < after {
			// The primary is behind what this follower already applied:
			// it lost history (or we subscribed to the wrong primary).
			// Rewinding silently would un-happen acknowledged commits.
			return false, fmt.Errorf("repl: primary offers snapshot at %d but %d is already applied locally", start, after)
		}
		if mode == wire.ModeSnapshotChunked {
			if err := f.chunkedBootstrap(conn, start); err != nil {
				return false, fmt.Errorf("repl: chunked bootstrap: %w", err)
			}
		} else {
			sr := &snapshotReader{conn: conn, max: f.MaxFrame}
			if err := f.Sink.Bootstrap(sr, start); err != nil {
				return false, fmt.Errorf("repl: bootstrap: %w", err)
			}
			if err := sr.drain(); err != nil {
				return false, err
			}
		}
		if got, ok := f.Sink.AppliedLSN(); !ok || got != start {
			return true, fmt.Errorf("repl: bootstrap left applied at %d, image was %d", got, start)
		}
		if err := f.ack(conn, start); err != nil {
			return true, err
		}
		progressed = true
	default:
		return false, fmt.Errorf("repl: unknown subscription mode %d", mode)
	}

	for {
		fr, err := wire.ReadFrame(conn, f.MaxFrame)
		if err != nil {
			return progressed, err
		}
		if fr.Op != wire.OpWALRecords {
			return progressed, fmt.Errorf("repl: unexpected op %d mid-stream", fr.Op)
		}
		recs, err := decodeRecords(fr.Payload)
		if err != nil {
			return progressed, err
		}
		if len(recs) == 0 {
			continue
		}
		acked, err := f.Sink.Apply(recs)
		if err != nil {
			return progressed, fmt.Errorf("repl: applying batch at %d: %w", recs[0].LSN, err)
		}
		progressed = true
		if err := f.ack(conn, acked); err != nil {
			return progressed, err
		}
	}
}

func (f *Follower) dial() (net.Conn, error) {
	if f.DialFunc != nil {
		return f.DialFunc()
	}
	return net.DialTimeout("tcp", f.Addr, 5*time.Second)
}

// hello negotiates protocol 2 + replication (and, when the sink can
// bootstrap by content, the chunked-bootstrap feature). A primary that
// answers with anything but OK (an old server saying BadRequest, or a
// version rejection) cannot serve this subscription.
func (f *Follower) hello(conn net.Conn) error {
	feats := wire.FeatReplication
	if _, ok := f.Sink.(ChunkSink); ok {
		feats |= wire.FeatChunkedSnap
	}
	var p wire.PayloadBuilder
	p.Uvarint(wire.MaxVersion).Uvarint(feats)
	if err := wire.WriteFrame(conn, wire.Frame{ID: 1, Op: wire.OpHello, Payload: p.Bytes()}); err != nil {
		return err
	}
	fr, err := wire.ReadFrame(conn, f.MaxFrame)
	if err != nil {
		return err
	}
	if fr.Op != wire.StatusOK {
		return fmt.Errorf("repl: primary rejected Hello (status %d): it does not speak protocol %d", fr.Op, wire.V2)
	}
	r := wire.NewPayloadReader(fr.Payload)
	version, err := r.Uvarint()
	if err != nil {
		return err
	}
	feats, err = r.Uvarint()
	if err != nil {
		return err
	}
	if version < wire.V2 || feats&wire.FeatReplication == 0 {
		return fmt.Errorf("repl: primary negotiated v%d feats %b: replication unavailable", version, feats)
	}
	return nil
}

func (f *Follower) subscribe(conn net.Conn, after uint64) (mode byte, start uint64, err error) {
	var p wire.PayloadBuilder
	p.String(f.Doc).Uvarint(after)
	if err := wire.WriteFrame(conn, wire.Frame{ID: 2, Op: wire.OpSubscribeWAL, Payload: p.Bytes()}); err != nil {
		return 0, 0, err
	}
	fr, err := wire.ReadFrame(conn, f.MaxFrame)
	if err != nil {
		return 0, 0, err
	}
	if fr.Op != wire.StatusOK {
		return 0, 0, fmt.Errorf("repl: subscribe rejected (status %d): %s", fr.Op, fr.Payload)
	}
	r := wire.NewPayloadReader(fr.Payload)
	if mode, err = r.Byte(); err != nil {
		return 0, 0, err
	}
	if start, err = r.Uvarint(); err != nil {
		return 0, 0, err
	}
	return mode, start, nil
}

// chunkedBootstrap runs the follower side of ModeSnapshotChunked: read
// the manifest, diff it against the local chunk store, request exactly
// the missing chunks, verify and store each as it arrives, then hand
// the complete manifest to the sink.
func (f *Follower) chunkedBootstrap(conn net.Conn, start uint64) error {
	sink, ok := f.Sink.(ChunkSink)
	if !ok {
		// The primary only answers chunked to sessions that asked for it
		// (hello sets the bit exactly when the sink is a ChunkSink).
		return errors.New("repl: primary sent chunked mode to a sink that cannot take it")
	}
	fr, err := wire.ReadFrame(conn, f.MaxFrame)
	if err != nil {
		return err
	}
	if fr.Op != wire.OpSnapManifest {
		return fmt.Errorf("repl: op %d where SnapManifest expected", fr.Op)
	}
	var man core.ChunkManifest
	if err := json.Unmarshal(fr.Payload, &man); err != nil {
		return fmt.Errorf("repl: decoding manifest: %w", err)
	}
	all, err := man.ChunkHashes()
	if err != nil {
		return err
	}
	// Unique hashes only — a dedupe-heavy manifest repeats names.
	seen := make(map[chunkstore.Hash]bool, len(all))
	uniq := all[:0]
	for _, h := range all {
		if !seen[h] {
			seen[h] = true
			uniq = append(uniq, h)
		}
	}
	cs, err := sink.ChunkStore()
	if err != nil {
		return err
	}
	have, err := cs.HasMany(uniq)
	if err != nil {
		return err
	}
	var need []chunkstore.Hash
	for i, h := range uniq {
		if !have[i] {
			need = append(need, h)
		}
	}
	var p wire.PayloadBuilder
	p.Uvarint(uint64(len(need)))
	for _, h := range need {
		p.Raw(h[:])
	}
	if err := wire.WriteFrame(conn, wire.Frame{Op: wire.OpChunkNeed, Payload: p.Bytes()}); err != nil {
		return err
	}
	pending := make(map[chunkstore.Hash]bool, len(need))
	for _, h := range need {
		pending[h] = true
	}
	for last := false; !last; {
		fr, err := wire.ReadFrame(conn, f.MaxFrame)
		if err != nil {
			return err
		}
		if fr.Op != wire.OpChunkData {
			return fmt.Errorf("repl: op %d inside chunk stream", fr.Op)
		}
		r := wire.NewPayloadReader(fr.Payload)
		lastB, err := r.Byte()
		if err != nil {
			return err
		}
		last = lastB == 1
		n, err := r.Uvarint()
		if err != nil {
			return err
		}
		b := r.Rest()
		for i := uint64(0); i < n; i++ {
			if len(b) < chunkstore.HashSize {
				return errors.New("repl: truncated chunk hash")
			}
			var h chunkstore.Hash
			copy(h[:], b)
			b = b[chunkstore.HashSize:]
			size, w := binary.Uvarint(b)
			if w <= 0 || size > uint64(len(b)-w) {
				return errors.New("repl: truncated chunk data")
			}
			body := b[w : w+int(size)]
			b = b[w+int(size):]
			if !pending[h] {
				return fmt.Errorf("repl: primary shipped chunk %s that was not requested", h)
			}
			delete(pending, h)
			// Put verifies content against the name, so a corrupted
			// transfer fails here rather than landing under a false name.
			if err := cs.Put(h, body); err != nil {
				return err
			}
		}
		if len(b) != 0 {
			return fmt.Errorf("repl: %d stray bytes after chunk batch", len(b))
		}
	}
	if len(pending) > 0 {
		return fmt.Errorf("repl: primary left %d requested chunks unshipped", len(pending))
	}
	if err := cs.Sync(); err != nil {
		return err
	}
	return sink.BootstrapManifest(&man, start)
}

func (f *Follower) ack(conn net.Conn, lsn uint64) error {
	var p wire.PayloadBuilder
	p.Uvarint(lsn)
	return wire.WriteFrame(conn, wire.Frame{Op: wire.OpFollowerAck, Payload: p.Bytes()})
}

// snapshotReader reassembles Snapshot frames into the byte stream
// Bootstrap consumes.
type snapshotReader struct {
	conn net.Conn
	max  uint32
	buf  []byte
	done bool
	err  error
}

func (s *snapshotReader) Read(p []byte) (int, error) {
	for len(s.buf) == 0 {
		if s.err != nil {
			return 0, s.err
		}
		if s.done {
			return 0, io.EOF
		}
		fr, err := wire.ReadFrame(s.conn, s.max)
		if err != nil {
			s.err = err
			return 0, err
		}
		if fr.Op != wire.OpSnapshot {
			s.err = fmt.Errorf("repl: op %d inside snapshot stream", fr.Op)
			return 0, s.err
		}
		r := wire.NewPayloadReader(fr.Payload)
		last, err := r.Byte()
		if err != nil {
			s.err = err
			return 0, err
		}
		s.done = last == 1
		s.buf = r.Rest()
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// drain consumes the rest of the snapshot stream if Bootstrap stopped
// early, so the record stream behind it stays aligned.
func (s *snapshotReader) drain() error {
	var scratch [4096]byte
	for {
		_, err := s.Read(scratch[:])
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
