package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"mxq/internal/chunkstore"
	"mxq/internal/core"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/wire"
)

// Batch and chunk shaping for the stream. One WALRecords frame carries
// up to maxBatchRecords records or ~maxBatchBytes of encoded ops,
// whichever fills first; snapshot images are cut into snapChunk pieces.
const (
	maxBatchRecords = 256
	maxBatchBytes   = 256 << 10
	snapChunk       = 128 << 10
)

// Source is everything the primary side of a subscription needs from a
// document: its WAL (the stream), a checkpoint pin (the bootstrap
// image), and the document's follower tracker (the prune fence).
type Source struct {
	Name  string
	Log   *wal.Log
	Pin   func() (*core.Store, uint64)
	Track *Tracker

	// Chunked opts a bootstrap into ModeSnapshotChunked (manifest + only
	// the chunks the follower is missing). The caller sets it only for
	// sessions that negotiated wire.FeatChunkedSnap on protocol >= 3 —
	// the additivity rule: a mode the peer did not negotiate never
	// appears on its wire.
	Chunked bool
}

// Serve runs the primary side of one replication subscription on conn,
// which the caller has already read the SubscribeWAL request (reqID,
// afterLSN) from. It sends the mode response, bootstraps with a pinned
// checkpoint image if the WAL no longer reaches back to after, then
// streams record batches until the connection dies; acks are consumed
// concurrently and update the tracker. Serve returns when the
// subscription ends (any conn error); the caller closes conn.
//
// The fence ordering matters: the follower is registered in the
// tracker at its claimed LSN *before* CanStream is consulted, so a
// checkpoint cannot prune the gap in between. The one remaining race —
// a prune already in flight when Register lands — surfaces as
// wal.ErrPruned mid-setup, ends the subscription, and heals on the
// follower's reconnect (by then the registration is visible, or the
// snapshot path takes over).
func Serve(conn net.Conn, reqID uint64, after uint64, src Source, maxFrame uint32, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// A follower with no state (SubscribeNone) is fenced at 0 — maximally
	// conservative for the moment between registration and the pin.
	regAt := after
	if after == wire.SubscribeNone {
		regAt = 0
	}
	id := src.Track.Register(regAt)
	defer src.Track.Unregister(id)

	start := after
	mode := wire.ModeWAL
	var img *core.Store
	if after == wire.SubscribeNone || !src.Log.CanStream(after) {
		mode = wire.ModeSnapshot
		if src.Chunked {
			mode = wire.ModeSnapshotChunked
		}
		img, start = src.Pin()
		defer img.Release()
		// The follower will restart from the image's LSN; move its fence
		// there so the records it still needs (start, tail] stay pinned.
		src.Track.Ack(id, start)
	}
	var p wire.PayloadBuilder
	p.Byte(mode).Uvarint(start)
	if err := wire.WriteFrame(conn, wire.Frame{ID: reqID, Op: wire.StatusOK, Payload: p.Bytes()}); err != nil {
		return err
	}

	// The chunked negotiation — send the manifest, read back the list of
	// chunks the follower is missing — must happen while this goroutine
	// is still conn's only reader (the ack receiver below takes over the
	// read side for good).
	var need []chunkstore.Hash
	var resolve func(chunkstore.Hash) ([]byte, bool)
	if mode == wire.ModeSnapshotChunked {
		var man *core.ChunkManifest
		man, resolve = img.BuildManifest()
		data, err := json.Marshal(man)
		if err != nil {
			return fmt.Errorf("repl %s: encoding manifest: %w", src.Name, err)
		}
		if err := wire.WriteFrame(conn, wire.Frame{Op: wire.OpSnapManifest, Payload: data}); err != nil {
			return err
		}
		if need, err = readChunkNeed(conn, maxFrame); err != nil {
			return fmt.Errorf("repl %s: reading chunk wants: %w", src.Name, err)
		}
	}

	// Ack receiver: the only reader of conn from here on. Its exit (conn
	// error, or any frame that is not an ack) ends the subscription.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			fr, err := wire.ReadFrame(conn, maxFrame)
			if err != nil {
				return
			}
			if fr.Op != wire.OpFollowerAck {
				logf("repl %s: follower sent op %d mid-stream", src.Name, fr.Op)
				return
			}
			lsn, err := wire.NewPayloadReader(fr.Payload).Uvarint()
			if err != nil {
				return
			}
			src.Track.Ack(id, lsn)
		}
	}()

	switch mode {
	case wire.ModeSnapshot:
		if err := streamSnapshot(conn, img, start); err != nil {
			return fmt.Errorf("repl %s: streaming snapshot: %w", src.Name, err)
		}
		logf("repl %s: follower bootstrapped with snapshot at LSN %d", src.Name, start)
	case wire.ModeSnapshotChunked:
		if err := streamChunks(conn, need, resolve); err != nil {
			return fmt.Errorf("repl %s: streaming chunks: %w", src.Name, err)
		}
		logf("repl %s: follower bootstrapped at LSN %d shipping %d missing chunks", src.Name, start, len(need))
	}
	return streamRecords(conn, src.Log, start, done)
}

// readChunkNeed reads the follower's ChunkNeed frame: the chunk hashes
// it is missing and wants shipped.
func readChunkNeed(conn net.Conn, maxFrame uint32) ([]chunkstore.Hash, error) {
	fr, err := wire.ReadFrame(conn, maxFrame)
	if err != nil {
		return nil, err
	}
	if fr.Op != wire.OpChunkNeed {
		return nil, fmt.Errorf("repl: op %d where ChunkNeed expected", fr.Op)
	}
	r := wire.NewPayloadReader(fr.Payload)
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n*chunkstore.HashSize != uint64(r.Remaining()) {
		return nil, fmt.Errorf("repl: ChunkNeed claims %d hashes, carries %d bytes", n, r.Remaining())
	}
	rest := r.Rest()
	need := make([]chunkstore.Hash, n)
	for i := range need {
		copy(need[i][:], rest[i*chunkstore.HashSize:])
	}
	return need, nil
}

// streamChunks ships the requested chunks in ChunkData frames of about
// snapChunk bytes each; the final frame (sent even for an empty want
// list) carries the last flag.
func streamChunks(conn net.Conn, need []chunkstore.Hash, resolve func(chunkstore.Hash) ([]byte, bool)) error {
	var p wire.PayloadBuilder
	n, bytes := 0, 0
	flush := func(last bool) error {
		var hdr wire.PayloadBuilder
		if last {
			hdr.Byte(1)
		} else {
			hdr.Byte(0)
		}
		hdr.Uvarint(uint64(n)).Raw(p.Bytes())
		err := wire.WriteFrame(conn, wire.Frame{Op: wire.OpChunkData, Payload: hdr.Bytes()})
		p, n, bytes = wire.PayloadBuilder{}, 0, 0
		return err
	}
	for _, h := range need {
		data, ok := resolve(h)
		if !ok {
			// The follower asked for a hash the manifest does not name —
			// a protocol violation, not a retryable miss.
			return fmt.Errorf("repl: follower requested unknown chunk %s", h)
		}
		p.Raw(h[:]).Uvarint(uint64(len(data))).Raw(data)
		n++
		if bytes += len(data); bytes >= snapChunk {
			if err := flush(false); err != nil {
				return err
			}
		}
	}
	return flush(true)
}

// streamSnapshot sends the checkpoint image (header + store pages) as
// Snapshot frames of at most snapChunk bytes; the final frame carries
// the last flag.
func streamSnapshot(conn net.Conn, img *core.Store, lsn uint64) error {
	sw := &snapshotWriter{conn: conn}
	if err := tx.WriteSnapshotHeader(sw, lsn); err != nil {
		return err
	}
	if err := img.Save(sw); err != nil {
		return err
	}
	return sw.finish()
}

// snapshotWriter cuts a byte stream into Snapshot frames.
type snapshotWriter struct {
	conn io.Writer
	buf  []byte
}

func (s *snapshotWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(s.buf)+len(p) >= snapChunk {
		take := snapChunk - len(s.buf)
		s.buf = append(s.buf, p[:take]...)
		p = p[take:]
		if err := s.flush(false); err != nil {
			return 0, err
		}
	}
	s.buf = append(s.buf, p...)
	return n, nil
}

func (s *snapshotWriter) finish() error { return s.flush(true) }

func (s *snapshotWriter) flush(last bool) error {
	var p wire.PayloadBuilder
	if last {
		p.Byte(1)
	} else {
		p.Byte(0)
	}
	p.Raw(s.buf)
	s.buf = s.buf[:0]
	return wire.WriteFrame(s.conn, wire.Frame{Op: wire.OpSnapshot, Payload: p.Bytes()})
}

// streamRecords ships durable WAL records past `after` in batches,
// parking on the durability watermark when caught up, until the
// connection dies (write error, or the ack receiver exits).
func streamRecords(conn net.Conn, log *wal.Log, after uint64, done <-chan struct{}) error {
	r, err := log.NewReader(after)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		batch, err := nextBatch(r)
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			// Caught up. Take the change channel, re-check (a commit may
			// have landed between the drain and the take), then park.
			ch := log.DurableChanged()
			if log.DurableLSN() > r.LSN() {
				continue
			}
			select {
			case <-ch:
				continue
			case <-done:
				return errors.New("repl: subscription closed")
			}
		}
		payload, err := encodeRecords(batch)
		if err != nil {
			return err
		}
		if err := wire.WriteFrame(conn, wire.Frame{Op: wire.OpWALRecords, Payload: payload}); err != nil {
			return err
		}
		select {
		case <-done:
			return errors.New("repl: subscription closed")
		default:
		}
	}
}

// nextBatch drains the reader up to the batch bounds; empty means
// caught up.
func nextBatch(r *wal.Reader) ([]*wal.Record, error) {
	var batch []*wal.Record
	bytes := 0
	for len(batch) < maxBatchRecords && bytes < maxBatchBytes {
		rec, err := r.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		batch = append(batch, rec)
		for i := range rec.Ops {
			op := &rec.Ops[i]
			bytes += 64 + len(op.Name) + len(op.Value) + 96*len(op.Frag)
		}
	}
	return batch, nil
}
