package xmark

// wordList is the fixed vocabulary descriptions are drawn from. xmlgen
// samples Shakespeare; any fixed word list preserves what the evaluation
// depends on (selectivity of text predicates). "gold" is present because
// Q14 searches for it.
var wordList = []string{
	"gold", "silver", "bronze", "ancient", "modern", "rare", "common",
	"large", "small", "heavy", "light", "ornate", "plain", "carved",
	"painted", "glazed", "woven", "forged", "cast", "polished", "rough",
	"smooth", "broken", "restored", "original", "replica", "signed",
	"dated", "stamped", "engraved", "mounted", "framed", "boxed",
	"wooden", "iron", "copper", "brass", "marble", "ivory", "crystal",
	"porcelain", "ceramic", "leather", "velvet", "silk", "linen",
	"chair", "table", "lamp", "clock", "vase", "bowl", "plate", "cup",
	"ring", "brooch", "pendant", "bracelet", "coin", "medal", "stamp",
	"map", "book", "print", "painting", "sculpture", "tapestry",
	"mirror", "chest", "cabinet", "desk", "sword", "shield", "helmet",
	"excellent", "good", "fair", "poor", "mint", "pristine", "worn",
	"condition", "provenance", "estate", "collection", "auction",
	"lot", "bid", "reserve", "appraised", "certified", "authentic",
	"century", "period", "dynasty", "colonial", "victorian", "deco",
	"nouveau", "baroque", "gothic", "classical", "oriental", "nordic",
}

var countries = []string{
	"United States", "Germany", "France", "Netherlands", "Japan",
	"Australia", "Brazil", "Canada", "Spain", "Italy", "Kenya",
	"South Africa", "India", "China", "Argentina", "Mexico",
}

var cities = []string{
	"Amsterdam", "Berlin", "Paris", "Tokyo", "Sydney", "Nairobi",
	"Toronto", "Madrid", "Rome", "Mumbai", "Shanghai", "Lima",
}

var payments = []string{
	"Creditcard", "Money order", "Personal Check", "Cash",
	"Creditcard, Money order", "Money order, Personal Check",
}

var shippings = []string{
	"Will ship only within country", "Will ship internationally",
	"Buyer pays fixed shipping charges", "See description for charges",
}

var educations = []string{
	"High School", "College", "Graduate School", "Other",
}

var firstNames = []string{
	"Kasidit", "Oleg", "Aditya", "Maria", "Chen", "Fatima", "Lars",
	"Ingrid", "Pavel", "Yuki", "Amara", "Diego", "Nadia", "Tom",
	"Sara", "Ivan", "Lucia", "Hans", "Priya", "Omar",
}

var lastNames = []string{
	"Treweek", "Blanc", "Brown", "Garcia", "Wei", "Hassan", "Nilsson",
	"Johansson", "Novak", "Tanaka", "Okafor", "Morales", "Petrov",
	"Smith", "Jones", "Keller", "Rossi", "Schmidt", "Sharma", "Ali",
}
