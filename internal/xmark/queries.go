package xmark

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mxq/internal/serialize"
	"mxq/internal/staircase"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// Query is one XMark benchmark query, hand-compiled to engine calls the
// way Pathfinder compiles XQuery to MIL plans. Holding the plan constant
// across the read-only and the updatable schema is exactly the control of
// the Figure 9 experiment: only the storage layer differs.
type Query struct {
	Num  int
	Desc string
	Run  func(v xenc.DocView) ([]string, error)
}

// Queries holds Q1–Q20 in order.
var Queries = []Query{
	{1, "name of person0 (point query on an attribute)", q1},
	{2, "initial increase of all open auctions (positional predicate)", q2},
	{3, "auctions whose first increase doubled (positional + arithmetic)", q3},
	{4, "auctions where person1 bid before person2 (order test)", q4},
	{5, "number of sold items with price >= 40 (aggregate)", q5},
	{6, "items per region (structural aggregate)", q6},
	{7, "pieces of prose (multi-path count)", q7},
	{8, "items bought per person (value join)", q8},
	{9, "European items bought per person (double join)", q9},
	{10, "persons grouped by interest (grouping + reconstruction)", q10},
	{11, "open auctions affordable per person (value join on income)", q11},
	{12, "as Q11 for the well-off (filtered value join)", q12},
	{13, "Australian items with descriptions (reconstruction)", q13},
	{14, "items whose description mentions gold (full-text contains)", q14},
	{15, "keywords in nested annotation markup (long path)", q15},
	{16, "sellers of auctions with nested markup (long path existence)", q16},
	{17, "persons without a homepage (negation)", q17},
	{18, "converted auction reserves (numeric function)", q18},
	{19, "items ordered by location (sort)", q19},
	{20, "persons by income bracket (range aggregate)", q20},
}

// RunAll executes every query and returns the row counts, as a smoke
// check that all twenty run on a given document.
func RunAll(v xenc.DocView) ([20]int, error) {
	var counts [20]int
	for i, q := range Queries {
		rows, err := q.Run(v)
		if err != nil {
			return counts, fmt.Errorf("xmark Q%d: %w", q.Num, err)
		}
		counts[i] = len(rows)
	}
	return counts, nil
}

// --- plan helpers ------------------------------------------------------------

// doc caches the interned name ids a plan needs. Lookup of a name absent
// from the document yields -2, which matches nothing.
type doc struct {
	v xenc.DocView
}

func (d doc) name(s string) int32 {
	if id, ok := d.v.Names().Lookup(s); ok {
		return id
	}
	return -2
}

// children returns the direct element children of p named nameID, using
// the staircase sibling hops.
func (d doc) children(p xenc.Pre, nameID int32) []xenc.Pre {
	return staircase.Child(d.v, []xenc.Pre{p}, staircase.Element(nameID))
}

// child returns the first element child named nameID, or NoPre.
func (d doc) child(p xenc.Pre, nameID int32) xenc.Pre {
	v := d.v
	lvl := v.Level(p)
	q := xenc.SkipFree(v, p+1)
	n := v.Len()
	for q < n && v.Level(q) > lvl {
		if v.Level(q) == lvl+1 && v.Kind(q) == xenc.KindElem && v.Name(q) == nameID {
			return q
		}
		q = xenc.SkipFree(v, q+v.Size(q)+1)
	}
	return xenc.NoPre
}

// text returns the string-value of the node (concatenated descendant
// text).
func (d doc) text(p xenc.Pre) string {
	if p == xenc.NoPre {
		return ""
	}
	return xpath.StringValue(d.v, xpath.ElemNode(p))
}

// attr returns the attribute value by name id.
func (d doc) attr(p xenc.Pre, nameID int32) string {
	s, _ := d.v.AttrValue(p, nameID)
	return s
}

// number parses a decimal, NaN-free (0 on failure — XMark data is clean).
func number(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return f
}

// path compiles an XPath once (plans are package-level).
func path(src string) *xpath.Expr { return xpath.MustParse(src) }

var (
	pPersons       = path(`/site/people/person`)
	pOpenAuctions  = path(`/site/open_auctions/open_auction`)
	pClosed        = path(`/site/closed_auctions/closed_auction`)
	pRegions       = path(`/site/regions/*`)
	pQ1            = path(`/site/people/person[@id="person0"]/name/text()`)
	pQ2            = path(`/site/open_auctions/open_auction/bidder[1]/increase/text()`)
	pQ7Description = path(`//description`)
	pQ7Annotation  = path(`//annotation`)
	pQ7Email       = path(`//emailaddress`)
	pQ13           = path(`/site/regions/australia/item`)
	pQ14           = path(`//item`)
	pQ15           = path(`/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()`)
	pQ16           = path(`/site/closed_auctions/closed_auction[annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword]`)
	pQ17           = path(`/site/people/person[not(homepage)]/name/text()`)
	pQ9Europe      = path(`/site/regions/europe/item`)
)

func selPres(e *xpath.Expr, v xenc.DocView) ([]xenc.Pre, error) {
	ns, err := e.Select(v)
	if err != nil {
		return nil, err
	}
	return ns.Pres(), nil
}

// --- the twenty queries -------------------------------------------------------

// Q1: Return the name of the person with ID "person0".
func q1(v xenc.DocView) ([]string, error) {
	ns, err := pQ1.Select(v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, xpath.StringValue(v, n))
	}
	return rows, nil
}

// Q2: Return the initial increases of all open auctions.
func q2(v xenc.DocView) ([]string, error) {
	ns, err := pQ2.Select(v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, "<increase>"+xpath.StringValue(v, n)+"</increase>")
	}
	return rows, nil
}

// Q3: Return the IDs of open auctions whose current increase is at least
// twice as high as the initial increase.
func q3(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nBidder, nIncrease, nID := d.name("bidder"), d.name("increase"), d.name("id")
	auctions, err := selPres(pOpenAuctions, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, a := range auctions {
		bidders := d.children(a, nBidder)
		if len(bidders) < 2 {
			continue
		}
		first := number(d.text(d.child(bidders[0], nIncrease)))
		last := number(d.text(d.child(bidders[len(bidders)-1], nIncrease)))
		if first*2 <= last {
			rows = append(rows, fmt.Sprintf(`<increase id=%q first="%.2f" last="%.2f"/>`, d.attr(a, nID), first, last))
		}
	}
	return rows, nil
}

// Q4: List the reserves of open auctions where person1 bid before
// person2.
func q4(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nBidder, nPersonref, nPerson, nInitial := d.name("bidder"), d.name("personref"), d.name("person"), d.name("initial")
	auctions, err := selPres(pOpenAuctions, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, a := range auctions {
		sawFirst := false
		hit := false
		for _, b := range d.children(a, nBidder) {
			ref := d.child(b, nPersonref)
			if ref == xenc.NoPre {
				continue
			}
			switch d.attr(ref, nPerson) {
			case "person1":
				sawFirst = true
			case "person2":
				if sawFirst {
					hit = true
				}
			}
		}
		if hit {
			rows = append(rows, "<history>"+d.text(d.child(a, nInitial))+"</history>")
		}
	}
	return rows, nil
}

// Q5: How many sold items cost more than 40?
func q5(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nPrice := d.name("price")
	closed, err := selPres(pClosed, v)
	if err != nil {
		return nil, err
	}
	count := 0
	for _, c := range closed {
		if number(d.text(d.child(c, nPrice))) >= 40 {
			count++
		}
	}
	return []string{strconv.Itoa(count)}, nil
}

// Q6: How many items are listed on all continents?
func q6(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nItem := d.name("item")
	regions, err := selPres(pRegions, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, r := range regions {
		items := staircase.Descendant(v, []xenc.Pre{r}, staircase.Element(nItem))
		rows = append(rows, fmt.Sprintf("%s %d", v.Names().Name(v.Name(r)), len(items)))
	}
	return rows, nil
}

// Q7: How many pieces of prose are in our database?
func q7(v xenc.DocView) ([]string, error) {
	total := 0
	for _, p := range []*xpath.Expr{pQ7Description, pQ7Annotation, pQ7Email} {
		ns, err := p.Select(v)
		if err != nil {
			return nil, err
		}
		total += len(ns)
	}
	return []string{strconv.Itoa(total)}, nil
}

// Q8: List the names of persons and the number of items they bought.
func q8(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nBuyer, nPerson, nID, nName := d.name("buyer"), d.name("person"), d.name("id"), d.name("name")
	closed, err := selPres(pClosed, v)
	if err != nil {
		return nil, err
	}
	bought := make(map[string]int)
	for _, c := range closed {
		if b := d.child(c, nBuyer); b != xenc.NoPre {
			bought[d.attr(b, nPerson)]++
		}
	}
	persons, err := selPres(pPersons, v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(persons))
	for _, p := range persons {
		rows = append(rows, fmt.Sprintf(`<item person=%q>%d</item>`,
			d.text(d.child(p, nName)), bought[d.attr(p, nID)]))
	}
	return rows, nil
}

// Q9: List the names of persons and the names of the items they bought
// in Europe (join person ⋈ closed_auction ⋈ item).
func q9(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nBuyer, nPerson, nID, nName := d.name("buyer"), d.name("person"), d.name("id"), d.name("name")
	nItemref, nItem := d.name("itemref"), d.name("item")
	// Europe items by id.
	europe, err := selPres(pQ9Europe, v)
	if err != nil {
		return nil, err
	}
	itemName := make(map[string]string, len(europe))
	for _, it := range europe {
		itemName[d.attr(it, nID)] = d.text(d.child(it, nName))
	}
	closed, err := selPres(pClosed, v)
	if err != nil {
		return nil, err
	}
	byBuyer := make(map[string][]string)
	for _, c := range closed {
		b, ref := d.child(c, nBuyer), d.child(c, nItemref)
		if b == xenc.NoPre || ref == xenc.NoPre {
			continue
		}
		if name, ok := itemName[d.attr(ref, nItem)]; ok {
			buyer := d.attr(b, nPerson)
			byBuyer[buyer] = append(byBuyer[buyer], name)
		}
	}
	persons, err := selPres(pPersons, v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(persons))
	for _, p := range persons {
		items := byBuyer[d.attr(p, nID)]
		rows = append(rows, fmt.Sprintf(`<person name=%q>%s</person>`,
			d.text(d.child(p, nName)), strings.Join(items, ", ")))
	}
	return rows, nil
}

// Q10: List all persons according to their interest.
func q10(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nProfile, nInterest, nCategory := d.name("profile"), d.name("interest"), d.name("category")
	nName, nEmail := d.name("name"), d.name("emailaddress")
	nIncome := d.name("income")
	persons, err := selPres(pPersons, v)
	if err != nil {
		return nil, err
	}
	grouped := make(map[string][]string)
	var cats []string
	for _, p := range persons {
		profile := d.child(p, nProfile)
		if profile == xenc.NoPre {
			continue
		}
		// Reconstruct the person record the query copies out.
		record := fmt.Sprintf("<personal><name>%s</name><email>%s</email><income>%s</income></personal>",
			d.text(d.child(p, nName)), d.text(d.child(p, nEmail)), d.attr(profile, nIncome))
		for _, in := range d.children(profile, nInterest) {
			cat := d.attr(in, nCategory)
			if _, seen := grouped[cat]; !seen {
				cats = append(cats, cat)
			}
			grouped[cat] = append(grouped[cat], record)
		}
	}
	sort.Strings(cats)
	rows := make([]string, 0, len(cats))
	for _, c := range cats {
		rows = append(rows, fmt.Sprintf("<categorie id=%q>%s</categorie>", c, strings.Join(grouped[c], "")))
	}
	return rows, nil
}

// Q11: For each person, the number of open auctions whose initial bid
// does not exceed 0.02% of the person's income.
func q11(v xenc.DocView) ([]string, error) {
	return incomeJoin(v, 0)
}

// Q12: As Q11, restricted to persons with income above 50000.
func q12(v xenc.DocView) ([]string, error) {
	return incomeJoin(v, 50000)
}

func incomeJoin(v xenc.DocView, minIncome float64) ([]string, error) {
	d := doc{v}
	nProfile, nIncome, nName, nInitial := d.name("profile"), d.name("income"), d.name("name"), d.name("initial")
	auctions, err := selPres(pOpenAuctions, v)
	if err != nil {
		return nil, err
	}
	initials := make([]float64, 0, len(auctions))
	for _, a := range auctions {
		initials = append(initials, number(d.text(d.child(a, nInitial))))
	}
	persons, err := selPres(pPersons, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, p := range persons {
		profile := d.child(p, nProfile)
		if profile == xenc.NoPre {
			continue
		}
		income := number(d.attr(profile, nIncome))
		if income <= minIncome {
			continue
		}
		// The deliberate theta-join of XMark: no index applies.
		count := 0
		for _, init := range initials {
			if init < income*0.0002 {
				count++
			}
		}
		rows = append(rows, fmt.Sprintf(`<items name=%q>%d</items>`, d.text(d.child(p, nName)), count))
	}
	return rows, nil
}

// Q13: List the names of items registered in Australia along with their
// descriptions.
func q13(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nName, nDescription := d.name("name"), d.name("description")
	items, err := selPres(pQ13, v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(items))
	for _, it := range items {
		desc := ""
		if dn := d.child(it, nDescription); dn != xenc.NoPre {
			s, err := serialize.String(v, dn, serialize.Options{})
			if err != nil {
				return nil, err
			}
			desc = s
		}
		rows = append(rows, fmt.Sprintf(`<item name=%q>%s</item>`, d.text(d.child(it, nName)), desc))
	}
	return rows, nil
}

// Q14: Return the names of all items whose description contains the word
// "gold".
func q14(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nName, nDescription := d.name("name"), d.name("description")
	items, err := selPres(pQ14, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, it := range items {
		if dn := d.child(it, nDescription); dn != xenc.NoPre && strings.Contains(d.text(dn), "gold") {
			rows = append(rows, d.text(d.child(it, nName)))
		}
	}
	return rows, nil
}

// Q15: Print the keywords in emphasis in annotations of closed auctions.
func q15(v xenc.DocView) ([]string, error) {
	ns, err := pQ15.Select(v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, "<text>"+xpath.StringValue(v, n)+"</text>")
	}
	return rows, nil
}

// Q16: Return the sellers of auctions that have one or more keywords in
// emphasis.
func q16(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nSeller, nPerson := d.name("seller"), d.name("person")
	auctions, err := selPres(pQ16, v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(auctions))
	for _, a := range auctions {
		if s := d.child(a, nSeller); s != xenc.NoPre {
			rows = append(rows, fmt.Sprintf(`<person id=%q/>`, d.attr(s, nPerson)))
		}
	}
	return rows, nil
}

// Q17: Which persons don't have a homepage?
func q17(v xenc.DocView) ([]string, error) {
	ns, err := pQ17.Select(v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(ns))
	for _, n := range ns {
		rows = append(rows, "<person name="+strconv.Quote(xpath.StringValue(v, n))+"/>")
	}
	return rows, nil
}

// Q18: Convert the currency of the reserve of all open auctions.
func q18(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nReserve := d.name("reserve")
	auctions, err := selPres(pOpenAuctions, v)
	if err != nil {
		return nil, err
	}
	var rows []string
	for _, a := range auctions {
		if r := d.child(a, nReserve); r != xenc.NoPre {
			rows = append(rows, fmt.Sprintf("%.2f", number(d.text(r))*2.20371))
		}
	}
	return rows, nil
}

// Q19: Give an alphabetically ordered list of all items along with their
// location.
func q19(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nName, nLocation := d.name("name"), d.name("location")
	items, err := selPres(pQ14, v)
	if err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(items))
	for _, it := range items {
		rows = append(rows, fmt.Sprintf(`<item name=%q>%s</item>`,
			d.text(d.child(it, nName)), d.text(d.child(it, nLocation))))
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows, nil
}

// Q20: Group customers by their income.
func q20(v xenc.DocView) ([]string, error) {
	d := doc{v}
	nProfile, nIncome := d.name("profile"), d.name("income")
	persons, err := selPres(pPersons, v)
	if err != nil {
		return nil, err
	}
	var high, mid, low, none int
	for _, p := range persons {
		profile := d.child(p, nProfile)
		if profile == xenc.NoPre {
			none++
			continue
		}
		val, ok := v.AttrValue(profile, nIncome)
		if !ok {
			none++
			continue
		}
		switch income := number(val); {
		case income >= 100000:
			high++
		case income >= 30000:
			mid++
		default:
			low++
		}
	}
	return []string{
		fmt.Sprintf("<preferred>%d</preferred>", high),
		fmt.Sprintf("<standard>%d</standard>", mid),
		fmt.Sprintf("<challenge>%d</challenge>", low),
		fmt.Sprintf("<na>%d</na>", none),
	}, nil
}
