package xmark

// Hand-verifiable query semantics: a miniature auction site small enough
// to compute every query's answer by hand pins the exact row content of
// the trickier plans (positional logic in Q2–Q4, the theta-join in
// Q11/Q12, brackets in Q20, text search in Q14).

import (
	"fmt"
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

const miniSite = `<site>
<regions>
  <africa><item id="item0"><location>Kenya</location><quantity>1</quantity><name>carved mask</name><payment>Cash</payment><description><text>old carved gold mask</text></description><shipping>x</shipping></item></africa>
  <asia><item id="item1"><location>Japan</location><quantity>1</quantity><name>silk scroll</name><payment>Cash</payment><description><text>silk painting</text></description><shipping>x</shipping></item></asia>
  <australia><item id="item2"><location>Australia</location><quantity>1</quantity><name>opal ring</name><payment>Cash</payment><description><text>shiny opal</text></description><shipping>x</shipping></item></australia>
  <europe><item id="item3"><location>France</location><quantity>2</quantity><name>bronze bell</name><payment>Cash</payment><description><text>heavy bronze bell</text></description><shipping>x</shipping></item></europe>
  <namerica><item id="item4"><location>Canada</location><quantity>1</quantity><name>maple desk</name><payment>Cash</payment><description><text>gold inlay desk</text></description><shipping>x</shipping></item></namerica>
  <samerica><item id="item5"><location>Peru</location><quantity>1</quantity><name>clay pot</name><payment>Cash</payment><description><text>plain clay pot</text></description><shipping>x</shipping></item></samerica>
</regions>
<categories><category id="category0"><name>antiques</name><description><text>old things</text></description></category></categories>
<catgraph><edge from="category0" to="category0"/></catgraph>
<people>
  <person id="person0"><name>Ann Alpha</name><emailaddress>a@x</emailaddress><homepage>http://a</homepage><profile income="120000.00"><business>No</business></profile></person>
  <person id="person1"><name>Bob Beta</name><emailaddress>b@x</emailaddress><profile income="40000.00"><business>No</business></profile></person>
  <person id="person2"><name>Cy Gamma</name><emailaddress>c@x</emailaddress><profile income="9000.00"><business>No</business></profile></person>
  <person id="person3"><name>Di Delta</name><emailaddress>d@x</emailaddress></person>
</people>
<open_auctions>
  <open_auction id="open_auction0">
    <initial>10.00</initial>
    <bidder><date>d</date><time>t</time><personref person="person1"/><increase>4.00</increase></bidder>
    <bidder><date>d</date><time>t</time><personref person="person2"/><increase>8.00</increase></bidder>
    <current>22.00</current><itemref item="item0"/><seller person="person0"/>
    <annotation><author person="person0"/><description><text>fine</text></description><happiness>5</happiness></annotation>
    <quantity>1</quantity><type>Regular</type><interval><start>s</start><end>e</end></interval>
  </open_auction>
  <open_auction id="open_auction1">
    <initial>100.00</initial><reserve>120.00</reserve>
    <bidder><date>d</date><time>t</time><personref person="person2"/><increase>10.00</increase></bidder>
    <current>110.00</current><itemref item="item1"/><seller person="person1"/>
    <annotation><author person="person1"/><description><parlist><listitem><parlist><listitem><text><emph><keyword>rare</keyword></emph> find</text></listitem></parlist></listitem></parlist></description><happiness>7</happiness></annotation>
    <quantity>1</quantity><type>Featured</type><interval><start>s</start><end>e</end></interval>
  </open_auction>
</open_auctions>
<closed_auctions>
  <closed_auction><seller person="person0"/><buyer person="person1"/><itemref item="item3"/><price>55.00</price><date>d</date><quantity>1</quantity><type>Regular</type>
    <annotation><author person="person0"/><description><parlist><listitem><parlist><listitem><text><emph><keyword>bargain</keyword></emph> sale</text></listitem></parlist></listitem></parlist></description><happiness>9</happiness></annotation></closed_auction>
  <closed_auction><seller person="person1"/><buyer person="person1"/><itemref item="item4"/><price>12.00</price><date>d</date><quantity>1</quantity><type>Regular</type>
    <annotation><author person="person2"/><description><text>ok</text></description><happiness>3</happiness></annotation></closed_auction>
  <closed_auction><seller person="person2"/><buyer person="person0"/><itemref item="item5"/><price>40.00</price><date>d</date><quantity>1</quantity><type>Regular</type>
    <annotation><author person="person1"/><description><text>nice</text></description><happiness>6</happiness></annotation></closed_auction>
</closed_auctions>
</site>`

func miniView(t *testing.T) xenc.DocView {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(miniSite), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func rows(t *testing.T, v xenc.DocView, n int) []string {
	t.Helper()
	r, err := Queries[n-1].Run(v)
	if err != nil {
		t.Fatalf("Q%d: %v", n, err)
	}
	return r
}

func TestMiniQ1(t *testing.T) {
	got := rows(t, miniView(t), 1)
	if len(got) != 1 || got[0] != "Ann Alpha" {
		t.Fatalf("Q1 = %v", got)
	}
}

func TestMiniQ2FirstIncreases(t *testing.T) {
	got := rows(t, miniView(t), 2)
	want := []string{"<increase>4.00</increase>", "<increase>10.00</increase>"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q2 = %v, want %v", got, want)
	}
}

func TestMiniQ3DoubledIncrease(t *testing.T) {
	// auction0: first 4.00, last 8.00 → 4*2 <= 8 qualifies.
	// auction1: single bidder → excluded (needs at least two).
	got := rows(t, miniView(t), 3)
	if len(got) != 1 || !strings.Contains(got[0], `id="open_auction0"`) {
		t.Fatalf("Q3 = %v", got)
	}
}

func TestMiniQ4BidOrder(t *testing.T) {
	// auction0 has person1 before person2 → initial 10.00 is reported.
	got := rows(t, miniView(t), 4)
	want := []string{"<history>10.00</history>"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q4 = %v, want %v", got, want)
	}
}

func TestMiniQ5PriceAggregate(t *testing.T) {
	// Prices 55, 12, 40 → two at >= 40.
	got := rows(t, miniView(t), 5)
	if len(got) != 1 || got[0] != "2" {
		t.Fatalf("Q5 = %v", got)
	}
}

func TestMiniQ6PerRegion(t *testing.T) {
	got := rows(t, miniView(t), 6)
	want := []string{"africa 1", "asia 1", "australia 1", "europe 1", "namerica 1", "samerica 1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q6 = %v", got)
	}
}

func TestMiniQ7Prose(t *testing.T) {
	// descriptions: 6 items + 1 category + 2 open + 3 closed = 12;
	// annotations: 2 open + 3 closed = 5; emailaddresses: 4. Total 21.
	got := rows(t, miniView(t), 7)
	if len(got) != 1 || got[0] != "21" {
		t.Fatalf("Q7 = %v", got)
	}
}

func TestMiniQ8BuyerJoin(t *testing.T) {
	// person1 bought 2, person0 bought 1, others 0.
	got := rows(t, miniView(t), 8)
	want := []string{
		`<item person="Ann Alpha">1</item>`,
		`<item person="Bob Beta">2</item>`,
		`<item person="Cy Gamma">0</item>`,
		`<item person="Di Delta">0</item>`,
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q8 = %v", got)
	}
}

func TestMiniQ9EuropeanJoin(t *testing.T) {
	// Only item3 (bronze bell) is European; person1 bought it.
	got := rows(t, miniView(t), 9)
	if got[1] != `<person name="Bob Beta">bronze bell</person>` {
		t.Fatalf("Q9 = %v", got)
	}
	for i, r := range got {
		if i != 1 && strings.Contains(r, "bronze") {
			t.Fatalf("Q9 row %d unexpectedly lists the bell: %v", i, got)
		}
	}
}

func TestMiniQ11Q12IncomeJoin(t *testing.T) {
	v := miniView(t)
	// initial bids: 10.00, 100.00.
	// person0: 120000 × 0.0002 = 24 → counts auctions with initial < 24 → 1.
	// person1: 40000 × 0.0002 = 8 → 0. person2: 9000 → 1.8 → 0.
	// person3: no profile → skipped.
	got := rows(t, v, 11)
	want := []string{
		`<items name="Ann Alpha">1</items>`,
		`<items name="Bob Beta">0</items>`,
		`<items name="Cy Gamma">0</items>`,
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q11 = %v, want %v", got, want)
	}
	// Q12 keeps only incomes > 50000: just person0.
	got = rows(t, v, 12)
	if len(got) != 1 || got[0] != `<items name="Ann Alpha">1</items>` {
		t.Fatalf("Q12 = %v", got)
	}
}

func TestMiniQ13Australia(t *testing.T) {
	got := rows(t, miniView(t), 13)
	if len(got) != 1 || !strings.Contains(got[0], "opal ring") || !strings.Contains(got[0], "<description><text>shiny opal</text></description>") {
		t.Fatalf("Q13 = %v", got)
	}
}

func TestMiniQ14Gold(t *testing.T) {
	// "gold" appears in item0 (mask) and item4 (desk) descriptions.
	got := rows(t, miniView(t), 14)
	want := []string{"carved mask", "maple desk"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q14 = %v, want %v", got, want)
	}
}

func TestMiniQ15Q16NestedMarkup(t *testing.T) {
	v := miniView(t)
	// Only the first closed auction carries the full nested path.
	got := rows(t, v, 15)
	if len(got) != 1 || got[0] != "<text>bargain</text>" {
		t.Fatalf("Q15 = %v", got)
	}
	got = rows(t, v, 16)
	if len(got) != 1 || got[0] != `<person id="person0"/>` {
		t.Fatalf("Q16 = %v", got)
	}
}

func TestMiniQ17NoHomepage(t *testing.T) {
	// Only person0 has a homepage; the other three are reported.
	got := rows(t, miniView(t), 17)
	if len(got) != 3 || !strings.Contains(got[0], "Bob Beta") {
		t.Fatalf("Q17 = %v", got)
	}
}

func TestMiniQ18Conversion(t *testing.T) {
	// One reserve (120.00) × 2.20371 = 264.45.
	got := rows(t, miniView(t), 18)
	if len(got) != 1 || got[0] != "264.45" {
		t.Fatalf("Q18 = %v", got)
	}
}

func TestMiniQ19SortByName(t *testing.T) {
	got := rows(t, miniView(t), 19)
	if len(got) != 6 {
		t.Fatalf("Q19 = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("Q19 unsorted: %v", got)
		}
	}
}

func TestMiniQ20Brackets(t *testing.T) {
	// Incomes: 120000 (high), 40000 (mid), 9000 (low), none (na).
	got := rows(t, miniView(t), 20)
	want := []string{
		"<preferred>1</preferred>", "<standard>1</standard>",
		"<challenge>1</challenge>", "<na>1</na>",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Q20 = %v, want %v", got, want)
	}
}
