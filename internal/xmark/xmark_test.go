package xmark

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// genDoc generates the SF document once per test run.
func genDoc(t testing.TB, sf float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := NewGenerator(sf, 42).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGeneratorDeterministic(t *testing.T) {
	a := genDoc(t, 0.002)
	b := genDoc(t, 0.002)
	if !bytes.Equal(a, b) {
		t.Fatal("same (sf, seed) produced different documents")
	}
	var c bytes.Buffer
	if _, err := NewGenerator(0.002, 43).WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c.Bytes()) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestGeneratedDocumentParses(t *testing.T) {
	data := genDoc(t, 0.002)
	tr, err := shred.Parse(bytes.NewReader(data), shred.Options{})
	if err != nil {
		t.Fatalf("generated document does not parse: %v", err)
	}
	if tr.Nodes[0].Name != "site" {
		t.Fatalf("root = %q", tr.Nodes[0].Name)
	}
	c := CountsFor(0.002)
	v, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	for q, want := range map[string]int{
		`/site/people/person`:                  c.Persons,
		`/site/open_auctions/open_auction`:     c.OpenAuctions,
		`/site/closed_auctions/closed_auction`: c.ClosedAuctions,
		`/site/categories/category`:            c.Categories,
		`/site/regions/europe/item`:            c.Items[3],
		`/site/regions/africa/item`:            c.Items[0],
	} {
		ns, err := xpath.MustParse(q).Select(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != want {
			t.Errorf("count(%s) = %d, want %d", q, len(ns), want)
		}
	}
}

func TestCountsScaleLinearly(t *testing.T) {
	small, big := CountsFor(0.01), CountsFor(0.1)
	if big.Persons < 9*small.Persons || big.Persons > 11*small.Persons {
		t.Fatalf("persons do not scale: %d vs %d", small.Persons, big.Persons)
	}
	if small.Persons != 255 || small.OpenAuctions != 120 {
		t.Fatalf("SF 0.01 counts = %+v", small)
	}
	one := CountsFor(1)
	if one.Persons != 25500 || one.ClosedAuctions != 9750 {
		t.Fatalf("SF 1 counts = %+v", one)
	}
	tiny := CountsFor(0.00001)
	if tiny.Persons < 1 || tiny.Items[0] < 1 {
		t.Fatal("tiny scale dropped an entity class to zero")
	}
}

func TestDocumentSizeRoughlyCalibrated(t *testing.T) {
	// SF 0.01 should be on the order of 1 MB (the paper's 1.1 MB point).
	data := genDoc(t, 0.01)
	mb := float64(len(data)) / (1 << 20)
	if mb < 0.4 || mb > 3.0 {
		t.Fatalf("SF 0.01 document = %.2f MB, want ~1 MB", mb)
	}
}

// buildBoth builds the document on both schemas.
func buildBoth(t testing.TB, sf float64) (ro *rostore.Store, up *core.Store) {
	t.Helper()
	data := genDoc(t, sf)
	tr, err := shred.Parse(bytes.NewReader(data), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ro, err = rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	up, err = core.Build(tr, core.Options{PageSize: 1024, FillFactor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return ro, up
}

// TestAllQueriesRunAndAgree is the validity core of the Figure 9
// experiment: every query must produce byte-identical results on the
// read-only and on the updatable schema.
func TestAllQueriesRunAndAgree(t *testing.T) {
	ro, up := buildBoth(t, 0.004)
	for _, q := range Queries {
		roRows, err := q.Run(ro)
		if err != nil {
			t.Fatalf("Q%d on ro: %v", q.Num, err)
		}
		upRows, err := q.Run(up)
		if err != nil {
			t.Fatalf("Q%d on up: %v", q.Num, err)
		}
		if len(roRows) != len(upRows) {
			t.Fatalf("Q%d: ro %d rows, up %d rows", q.Num, len(roRows), len(upRows))
		}
		for i := range roRows {
			if roRows[i] != upRows[i] {
				t.Fatalf("Q%d row %d differs:\nro: %s\nup: %s", q.Num, i, roRows[i], upRows[i])
			}
		}
	}
}

// TestQueryPlausibility pins the selectivity shape of each query on a
// known document so a broken plan cannot silently return garbage.
func TestQueryPlausibility(t *testing.T) {
	ro, _ := buildBoth(t, 0.004)
	c := CountsFor(0.004)
	counts, err := RunAll(ro)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 finds exactly person0's name.
	if counts[0] != 1 {
		t.Errorf("Q1 rows = %d, want 1", counts[0])
	}
	// Q2 returns one row per auction with >= 1 bidder: positive, bounded.
	if counts[1] < 1 || counts[1] > c.OpenAuctions {
		t.Errorf("Q2 rows = %d, want within (0, %d]", counts[1], c.OpenAuctions)
	}
	// Q5-Q7 are aggregates: single row each (Q6 one per region).
	if counts[4] != 1 {
		t.Errorf("Q5 rows = %d", counts[4])
	}
	if counts[5] != 6 {
		t.Errorf("Q6 rows = %d, want 6 regions", counts[5])
	}
	if counts[6] != 1 {
		t.Errorf("Q7 rows = %d", counts[6])
	}
	// Q8/Q9 list every person.
	if counts[7] != c.Persons || counts[8] != c.Persons {
		t.Errorf("Q8/Q9 rows = %d/%d, want %d", counts[7], counts[8], c.Persons)
	}
	// Q13 lists every Australian item.
	if counts[12] != c.Items[2] {
		t.Errorf("Q13 rows = %d, want %d", counts[12], c.Items[2])
	}
	// Q14 finds some but not all items ("gold" is 1 of ~100 words).
	if counts[13] == 0 {
		t.Error("Q14 found no gold items")
	}
	totalItems := 0
	for _, n := range c.Items {
		totalItems += n
	}
	if counts[13] >= totalItems {
		t.Errorf("Q14 rows = %d of %d items: contains() broken", counts[13], totalItems)
	}
	// Q15/Q16 traverse the nested markup: ~1/3 of closed auctions.
	if counts[14] == 0 || counts[15] == 0 {
		t.Errorf("Q15/Q16 rows = %d/%d, want > 0", counts[14], counts[15])
	}
	if counts[14] != counts[15] {
		t.Errorf("Q15 (%d) and Q16 (%d) should match on this generator", counts[14], counts[15])
	}
	// Q17: about half the persons have no homepage.
	if counts[16] == 0 || counts[16] >= c.Persons {
		t.Errorf("Q17 rows = %d of %d", counts[16], c.Persons)
	}
	// Q19 lists all items, Q20 has exactly 4 brackets.
	if counts[18] != totalItems {
		t.Errorf("Q19 rows = %d, want %d", counts[18], totalItems)
	}
	if counts[19] != 4 {
		t.Errorf("Q20 rows = %d, want 4", counts[19])
	}
}

func TestQ1FindsPerson0(t *testing.T) {
	ro, _ := buildBoth(t, 0.002)
	rows, err := q1(ro)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] == "" {
		t.Fatalf("Q1 = %v", rows)
	}
}

func TestQ19Sorted(t *testing.T) {
	ro, _ := buildBoth(t, 0.002)
	rows, err := q19(ro)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] < rows[i-1] {
			t.Fatalf("Q19 not sorted at %d: %q < %q", i, rows[i], rows[i-1])
		}
	}
}

func TestQ20BracketsSumToPersons(t *testing.T) {
	ro, _ := buildBoth(t, 0.002)
	rows, err := q20(ro)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		var n int
		if _, err := fmt.Sscanf(r[strings.Index(r, ">")+1:], "%d<", &n); err != nil {
			t.Fatalf("unparseable row %q", r)
		}
		total += n
	}
	if total != CountsFor(0.002).Persons {
		t.Fatalf("bracket sum = %d, want %d", total, CountsFor(0.002).Persons)
	}
}

// TestQueriesSurviveUpdates: after structural updates on the paged store
// the queries still run and reflect the changes (the scenario Figure 9's
// 20% free pages mimic).
func TestQueriesSurviveUpdates(t *testing.T) {
	_, up := buildBoth(t, 0.002)
	before, err := q5(up)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new expensive closed auction.
	cas, err := xpath.MustParse(`/site/closed_auctions`).Select(up)
	if err != nil || len(cas) != 1 {
		t.Fatalf("closed_auctions: %v %d", err, len(cas))
	}
	frag, err := shred.ParseFragment(
		`<closed_auction><seller person="person0"/><buyer person="person0"/>`+
			`<itemref item="item0"/><price>999.99</price><date>01/01/2000</date>`+
			`<quantity>1</quantity><type>Regular</type></closed_auction>`, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.AppendChild(cas[0].Pre, frag); err != nil {
		t.Fatal(err)
	}
	if err := up.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after, err := q5(up)
	if err != nil {
		t.Fatal(err)
	}
	var nb, na int
	fmt.Sscanf(before[0], "%d", &nb)
	fmt.Sscanf(after[0], "%d", &na)
	if na != nb+1 {
		t.Fatalf("Q5 after insert = %d, want %d", na, nb+1)
	}
	// Delete a person: Q8 rows shrink by one.
	persons, err := xpath.MustParse(`/site/people/person`).Select(up)
	if err != nil {
		t.Fatal(err)
	}
	nPersons := len(persons)
	if err := up.Delete(persons[nPersons-1].Pre); err != nil {
		t.Fatal(err)
	}
	rows, err := q8(up)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != nPersons-1 {
		t.Fatalf("Q8 rows after delete = %d, want %d", len(rows), nPersons-1)
	}
}

func BenchmarkGenerateSF001(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := NewGenerator(0.01, 42).WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = xenc.Pre(0)
