// Package xmark provides the evaluation workload of the paper: a
// deterministic generator for XMark-shaped auction documents (the
// benchmark of Schmidt et al. used in Section 4.1) and the twenty XMark
// queries, hand-compiled against the XPath engine and relational-style
// joins the way Pathfinder compiles them to MIL plans.
//
// The generator reproduces the XMark DTD's shape — six regional item
// lists, categories, a category graph, people with profiles and watch
// lists, open auctions with bidder histories, closed auctions with
// nested annotation markup — with element counts that scale linearly in
// the scale factor exactly like xmlgen (SF 1 ≈ 100 MB). Prose is drawn
// from a fixed word list (including the word "gold" that Q14 searches
// for), generated from a seeded PRNG so every run of a given scale
// factor yields byte-identical documents.
package xmark

import (
	"bufio"
	"fmt"
	"io"
)

// Counts holds the entity cardinalities for a scale factor (SF 1 values
// are the published xmlgen numbers).
type Counts struct {
	Categories     int
	Items          [6]int // africa, asia, australia, europe, namerica, samerica
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
}

// Regions are the six item containers, in document order.
var Regions = [6]string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// sf1 holds the xmlgen cardinalities at scale factor 1.
var sf1 = Counts{
	Categories:     1000,
	Items:          [6]int{550, 2000, 2200, 6000, 10000, 1000},
	Persons:        25500,
	OpenAuctions:   12000,
	ClosedAuctions: 9750,
}

// CountsFor scales the SF-1 cardinalities. Every entity class keeps at
// least one instance so tiny documents still exercise every query.
func CountsFor(sf float64) Counts {
	scale := func(n int) int {
		v := int(float64(n)*sf + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	c := Counts{
		Categories:     scale(sf1.Categories),
		Persons:        scale(sf1.Persons),
		OpenAuctions:   scale(sf1.OpenAuctions),
		ClosedAuctions: scale(sf1.ClosedAuctions),
	}
	for i, n := range sf1.Items {
		c.Items[i] = scale(n)
	}
	return c
}

// Generator emits deterministic XMark documents.
type Generator struct {
	sf   float64
	seed uint64
}

// NewGenerator returns a generator for the given scale factor. The same
// (sf, seed) pair always produces the same document.
func NewGenerator(sf float64, seed uint64) *Generator {
	return &Generator{sf: sf, seed: seed}
}

// rng is a splitmix64 stream; good enough and dependency-free.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) choice(words []string) string { return words[r.intn(len(words))] }

// WriteTo generates the document into w and returns the byte count.
func (g *Generator) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &countWriter{w: bw}
	e := &emitter{w: cw, rng: rng{state: g.seed*0x9e3779b9 + 0xabcdef}, counts: CountsFor(g.sf)}
	e.document()
	if e.err != nil {
		return cw.n, e.err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type emitter struct {
	w      io.Writer
	rng    rng
	counts Counts
	err    error
}

func (e *emitter) emit(format string, args ...any) {
	if e.err != nil {
		return
	}
	if len(args) == 0 {
		_, e.err = io.WriteString(e.w, format)
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// text emits n random words.
func (e *emitter) text(n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			e.emit(" ")
		}
		e.emit("%s", e.rng.choice(wordList))
	}
}

// markedText emits words with occasional inline emph/keyword markup, the
// mixed content XMark descriptions carry.
func (e *emitter) markedText(n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			e.emit(" ")
		}
		switch e.rng.intn(12) {
		case 0:
			e.emit("<emph>%s</emph>", e.rng.choice(wordList))
		case 1:
			e.emit("<keyword>%s</keyword>", e.rng.choice(wordList))
		default:
			e.emit("%s", e.rng.choice(wordList))
		}
	}
}

func (e *emitter) document() {
	e.emit("<?xml version=\"1.0\" standalone=\"yes\"?>\n")
	e.emit("<site>\n")
	e.regions()
	e.categories()
	e.catgraph()
	e.people()
	e.openAuctions()
	e.closedAuctions()
	e.emit("</site>\n")
}

func (e *emitter) regions() {
	e.emit("<regions>\n")
	itemID := 0
	for ri, region := range Regions {
		e.emit("<%s>\n", region)
		for i := 0; i < e.counts.Items[ri]; i++ {
			e.item(itemID, region)
			itemID++
		}
		e.emit("</%s>\n", region)
	}
	e.emit("</regions>\n")
}

func (e *emitter) item(id int, region string) {
	featured := ""
	if e.rng.intn(10) == 0 {
		featured = ` featured="yes"`
	}
	e.emit(`<item id="item%d"%s>`, id, featured)
	e.emit("<location>%s</location>", e.rng.choice(countries))
	e.emit("<quantity>%d</quantity>", 1+e.rng.intn(5))
	e.emit("<name>")
	e.text(2 + e.rng.intn(2))
	e.emit("</name>")
	e.emit("<payment>%s</payment>", e.rng.choice(payments))
	e.emit("<description><text>")
	e.markedText(45 + e.rng.intn(150))
	e.emit("</text></description>")
	e.emit("<shipping>%s</shipping>", e.rng.choice(shippings))
	nCat := 1 + e.rng.intn(3)
	for c := 0; c < nCat; c++ {
		e.emit(`<incategory category="category%d"/>`, e.rng.intn(e.counts.Categories))
	}
	if e.rng.intn(4) != 0 {
		e.emit("<mailbox>")
		for m := 0; m < e.rng.intn(5); m++ {
			e.emit("<mail><from>%s %s</from><to>%s %s</to><date>%s</date><text>",
				e.rng.choice(firstNames), e.rng.choice(lastNames),
				e.rng.choice(firstNames), e.rng.choice(lastNames), e.date())
			e.text(60 + e.rng.intn(160))
			e.emit("</text></mail>")
		}
		e.emit("</mailbox>")
	}
	e.emit("</item>\n")
	_ = region
}

func (e *emitter) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+e.rng.intn(12), 1+e.rng.intn(28), 1998+e.rng.intn(4))
}

func (e *emitter) categories() {
	e.emit("<categories>\n")
	for i := 0; i < e.counts.Categories; i++ {
		e.emit(`<category id="category%d"><name>`, i)
		e.text(1 + e.rng.intn(2))
		e.emit("</name><description><text>")
		e.markedText(25 + e.rng.intn(60))
		e.emit("</text></description></category>\n")
	}
	e.emit("</categories>\n")
}

func (e *emitter) catgraph() {
	e.emit("<catgraph>\n")
	edges := e.counts.Categories
	for i := 0; i < edges; i++ {
		e.emit(`<edge from="category%d" to="category%d"/>`,
			e.rng.intn(e.counts.Categories), e.rng.intn(e.counts.Categories))
		e.emit("\n")
	}
	e.emit("</catgraph>\n")
}

func (e *emitter) people() {
	e.emit("<people>\n")
	for i := 0; i < e.counts.Persons; i++ {
		e.person(i)
	}
	e.emit("</people>\n")
}

func (e *emitter) person(id int) {
	first, last := e.rng.choice(firstNames), e.rng.choice(lastNames)
	e.emit(`<person id="person%d">`, id)
	e.emit("<name>%s %s</name>", first, last)
	e.emit("<emailaddress>mailto:%s.%s@example.com</emailaddress>", first, last)
	if e.rng.intn(2) == 0 {
		e.emit("<phone>+%d (%d) %d</phone>", 1+e.rng.intn(40), 100+e.rng.intn(900), 10000000+e.rng.intn(80000000))
	}
	if e.rng.intn(2) == 0 {
		e.emit("<address><street>%d %s St</street><city>%s</city><country>%s</country><zipcode>%d</zipcode></address>",
			1+e.rng.intn(100), e.rng.choice(lastNames), e.rng.choice(cities), e.rng.choice(countries), 10000+e.rng.intn(80000))
	}
	if e.rng.intn(2) == 0 {
		e.emit("<homepage>http://www.example.com/~%s%d</homepage>", last, id)
	}
	if e.rng.intn(4) != 0 {
		e.emit("<creditcard>%d %d %d %d</creditcard>", 1000+e.rng.intn(9000), 1000+e.rng.intn(9000), 1000+e.rng.intn(9000), 1000+e.rng.intn(9000))
	}
	if e.rng.intn(4) != 0 {
		// Income distribution like xmlgen: mostly tens of thousands.
		income := float64(9000+e.rng.intn(90000)) + float64(e.rng.intn(100))/100
		e.emit(`<profile income="%.2f">`, income)
		nInterest := e.rng.intn(4)
		for j := 0; j < nInterest; j++ {
			e.emit(`<interest category="category%d"/>`, e.rng.intn(e.counts.Categories))
		}
		if e.rng.intn(2) == 0 {
			e.emit("<education>%s</education>", e.rng.choice(educations))
		}
		if e.rng.intn(2) == 0 {
			e.emit("<gender>%s</gender>", e.rng.choice([]string{"male", "female"}))
		}
		e.emit("<business>%s</business>", e.rng.choice([]string{"Yes", "No"}))
		if e.rng.intn(2) == 0 {
			e.emit("<age>%d</age>", 18+e.rng.intn(60))
		}
		e.emit("</profile>")
	}
	if e.rng.intn(3) == 0 {
		e.emit("<watches>")
		n := 1 + e.rng.intn(4)
		for j := 0; j < n; j++ {
			e.emit(`<watch open_auction="open_auction%d"/>`, e.rng.intn(e.counts.OpenAuctions))
		}
		e.emit("</watches>")
	}
	e.emit("</person>\n")
}

func (e *emitter) openAuctions() {
	totalItems := 0
	for _, n := range e.counts.Items {
		totalItems += n
	}
	e.emit("<open_auctions>\n")
	for i := 0; i < e.counts.OpenAuctions; i++ {
		initial := float64(5+e.rng.intn(200)) + float64(e.rng.intn(100))/100
		e.emit(`<open_auction id="open_auction%d">`, i)
		e.emit("<initial>%.2f</initial>", initial)
		if e.rng.intn(2) == 0 {
			e.emit("<reserve>%.2f</reserve>", initial*1.2)
		}
		nBidders := e.rng.intn(5)
		cur := initial
		for b := 0; b < nBidders; b++ {
			inc := float64(1+e.rng.intn(20)) * 1.5
			cur += inc
			e.emit("<bidder><date>%s</date><time>%02d:%02d:%02d</time>", e.date(), e.rng.intn(24), e.rng.intn(60), e.rng.intn(60))
			e.emit(`<personref person="person%d"/>`, e.rng.intn(e.counts.Persons))
			e.emit("<increase>%.2f</increase></bidder>", inc)
		}
		e.emit("<current>%.2f</current>", cur)
		if e.rng.intn(2) == 0 {
			e.emit("<privacy>Yes</privacy>")
		}
		e.emit(`<itemref item="item%d"/>`, e.rng.intn(totalItems))
		e.emit(`<seller person="person%d"/>`, e.rng.intn(e.counts.Persons))
		e.annotation()
		e.emit("<quantity>%d</quantity>", 1+e.rng.intn(5))
		e.emit("<type>%s</type>", e.rng.choice([]string{"Regular", "Featured"}))
		e.emit("<interval><start>%s</start><end>%s</end></interval>", e.date(), e.date())
		e.emit("</open_auction>\n")
	}
	e.emit("</open_auctions>\n")
}

// annotation emits the nested parlist markup that Q15/Q16 traverse:
// annotation/description/parlist/listitem/parlist/listitem/text/emph/
// keyword. Roughly one in three annotations carries the double-nested
// form.
func (e *emitter) annotation() {
	e.emit(`<annotation><author person="person%d"/>`, e.rng.intn(e.counts.Persons))
	e.emit("<description>")
	switch e.rng.intn(3) {
	case 0:
		e.emit("<text>")
		e.markedText(25 + e.rng.intn(70))
		e.emit("</text>")
	case 1:
		e.emit("<parlist><listitem><text>")
		e.markedText(10 + e.rng.intn(30))
		e.emit("</text></listitem></parlist>")
	default:
		e.emit("<parlist><listitem><parlist><listitem><text><emph><keyword>")
		e.text(1 + e.rng.intn(3))
		e.emit("</keyword></emph>")
		e.text(8 + e.rng.intn(25))
		e.emit("</text></listitem></parlist></listitem></parlist>")
	}
	e.emit("</description>")
	e.emit("<happiness>%d</happiness></annotation>", 1+e.rng.intn(10))
}

func (e *emitter) closedAuctions() {
	totalItems := 0
	for _, n := range e.counts.Items {
		totalItems += n
	}
	e.emit("<closed_auctions>\n")
	for i := 0; i < e.counts.ClosedAuctions; i++ {
		e.emit("<closed_auction>")
		e.emit(`<seller person="person%d"/>`, e.rng.intn(e.counts.Persons))
		e.emit(`<buyer person="person%d"/>`, e.rng.intn(e.counts.Persons))
		e.emit(`<itemref item="item%d"/>`, e.rng.intn(totalItems))
		e.emit("<price>%.2f</price>", float64(5+e.rng.intn(300))+float64(e.rng.intn(100))/100)
		e.emit("<date>%s</date>", e.date())
		e.emit("<quantity>%d</quantity>", 1+e.rng.intn(5))
		e.emit("<type>%s</type>", e.rng.choice([]string{"Regular", "Featured"}))
		e.annotation()
		e.emit("</closed_auction>\n")
	}
	e.emit("</closed_auctions>\n")
}
