package bat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPositionalJoin(t *testing.T) {
	inner := []int32{10, 11, 12, 13}
	got := PositionalJoin([]int32{3, 0, 2}, inner)
	want := []int32{13, 10, 12}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PositionalJoin = %v, want %v", got, want)
	}
}

func TestPositionalJoinEmpty(t *testing.T) {
	if got := PositionalJoin(nil, []int32{1}); len(got) != 0 {
		t.Fatalf("PositionalJoin(nil) = %v, want empty", got)
	}
}

func TestPositionalSelect(t *testing.T) {
	col := []int32{5, 1, 9, 5, 0}
	got := PositionalSelect(col, 1, 5)
	want := []int32{0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PositionalSelect = %v, want %v", got, want)
	}
}

func TestInsertDeleteInt32(t *testing.T) {
	s := []int32{1, 2, 3}
	s = InsertInt32(s, 1, 8, 9)
	if want := []int32{1, 8, 9, 2, 3}; !reflect.DeepEqual(s, want) {
		t.Fatalf("InsertInt32 = %v, want %v", s, want)
	}
	s = DeleteInt32(s, 1, 2)
	if want := []int32{1, 2, 3}; !reflect.DeepEqual(s, want) {
		t.Fatalf("DeleteInt32 = %v, want %v", s, want)
	}
}

func TestInsertInt32Ends(t *testing.T) {
	s := InsertInt32(nil, 0, 7)
	if want := []int32{7}; !reflect.DeepEqual(s, want) {
		t.Fatalf("insert into empty = %v", s)
	}
	s = InsertInt32(s, 1, 8)
	if want := []int32{7, 8}; !reflect.DeepEqual(s, want) {
		t.Fatalf("insert at end = %v", s)
	}
}

func TestInsertInt32Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	InsertInt32([]int32{1}, 3, 2)
}

func TestInsertInt16AndUint8(t *testing.T) {
	s16 := InsertInt16([]int16{1, 4}, 1, 2, 3)
	if want := []int16{1, 2, 3, 4}; !reflect.DeepEqual(s16, want) {
		t.Fatalf("InsertInt16 = %v", s16)
	}
	s16 = DeleteInt16(s16, 0, 2)
	if want := []int16{3, 4}; !reflect.DeepEqual(s16, want) {
		t.Fatalf("DeleteInt16 = %v", s16)
	}
	s8 := InsertUint8([]uint8{1, 4}, 1, 2, 3)
	if want := []uint8{1, 2, 3, 4}; !reflect.DeepEqual(s8, want) {
		t.Fatalf("InsertUint8 = %v", s8)
	}
	s8 = DeleteUint8(s8, 3, 1)
	if want := []uint8{1, 2, 3}; !reflect.DeepEqual(s8, want) {
		t.Fatalf("DeleteUint8 = %v", s8)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Put("alpha")
	b := d.Put("beta")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if got := d.Put("alpha"); got != a {
		t.Fatalf("re-Put changed id: %d != %d", got, a)
	}
	if d.Get(a) != "alpha" || d.Get(b) != "beta" {
		t.Fatal("Get mismatch")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Fatal("Lookup(beta) failed")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of absent value succeeded")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictClone(t *testing.T) {
	d := NewDict()
	d.Put("x")
	c := d.Clone()
	c.Put("y")
	if d.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: base=%d clone=%d", d.Len(), c.Len())
	}
	if c.Get(0) != "x" {
		t.Fatal("clone lost base value")
	}
}

func TestDeltaApplyRevert(t *testing.T) {
	col := []int32{10, 20, 30}
	var d Delta
	d.Update(1, 20, 99)
	d.Update(1, 99, 77) // second update to the same cell
	d.Append(40)
	col = d.Apply(col)
	if want := []int32{10, 77, 30, 40}; !reflect.DeepEqual(col, want) {
		t.Fatalf("Apply = %v, want %v", col, want)
	}
	col = d.Revert(col)
	if want := []int32{10, 20, 30}; !reflect.DeepEqual(col, want) {
		t.Fatalf("Revert = %v, want %v", col, want)
	}
}

func TestDeltaView(t *testing.T) {
	base := []int32{1, 2, 3}
	var d Delta
	d.Update(0, 1, 100)
	d.Append(4)
	if got := d.View(base, 0); got != 100 {
		t.Fatalf("View(updated) = %d", got)
	}
	if got := d.View(base, 2); got != 3 {
		t.Fatalf("View(base) = %d", got)
	}
	if got := d.View(base, 3); got != 4 {
		t.Fatalf("View(append) = %d", got)
	}
	if d.Empty() {
		t.Fatal("Empty on a non-empty delta")
	}
	if !(&Delta{}).Empty() {
		t.Fatal("Empty false on zero delta")
	}
}

// Property: Apply followed by Revert is the identity for any sequence of
// valid updates and appends (the transaction abort path relies on this).
func TestDeltaRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%32) + 1
		col := make([]int32, size)
		for i := range col {
			col[i] = rng.Int31n(1000)
		}
		orig := append([]int32(nil), col...)
		var d Delta
		for i := 0; i < int(n%20); i++ {
			if rng.Intn(2) == 0 {
				p := int32(rng.Intn(size))
				old := d.View(col, p)
				d.Update(p, old, rng.Int31n(1000))
			} else {
				d.Append(rng.Int31n(1000))
			}
		}
		col = d.Apply(col)
		col = d.Revert(col)
		return reflect.DeepEqual(col, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedOffsets(t *testing.T) {
	owners := []int32{0, 0, 2, 2, 2, 4}
	off := SortedOffsets(owners, 5)
	want := []int32{0, 2, 2, 5, 5, 6}
	if !reflect.DeepEqual(off, want) {
		t.Fatalf("SortedOffsets = %v, want %v", off, want)
	}
	// Bucket k must select exactly the rows owned by k.
	for k := int32(0); k < 5; k++ {
		for r := off[k]; r < off[k+1]; r++ {
			if owners[r] != k {
				t.Fatalf("row %d in bucket %d has owner %d", r, k, owners[r])
			}
		}
	}
}

func TestSortedOffsetsUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted owners")
		}
	}()
	SortedOffsets([]int32{2, 1}, 3)
}
