// Package bat provides the column-storage primitives of the reproduction:
// a small Go analogue of MonetDB's Binary Association Tables. The paper's
// performance argument rests on three BAT properties, all preserved here:
//
//   - void head columns: a densely ascending key (0,1,2,...) is never
//     materialized — a Go slice indexed by the dense key is exactly that;
//   - positional select and positional join: lookup of a void key is an
//     array access, one CPU-level operation, not a B-tree descent;
//   - differential (delta) lists: updates are collected out of place and
//     propagated to the base column at commit.
package bat

import (
	"fmt"
	"sort"
)

// PositionalJoin implements the MonetDB positional join over a void-keyed
// inner column: out[i] = inner[outer[i]]. It is the access pattern queries
// use to hop over foreign keys in the document schema (Figure 5: "All
// tables use a void column as key for efficient positional access").
func PositionalJoin(outer []int32, inner []int32) []int32 {
	out := make([]int32, len(outer))
	for i, o := range outer {
		out[i] = inner[o]
	}
	return out
}

// PositionalSelect returns the dense keys k in [0,len(col)) whose value
// satisfies lo <= col[k] <= hi.
func PositionalSelect(col []int32, lo, hi int32) []int32 {
	var out []int32
	for k, v := range col {
		if v >= lo && v <= hi {
			out = append(out, int32(k))
		}
	}
	return out
}

// InsertInt32 inserts vals into s at index i, shifting the tail. It is the
// materialized-column insert whose O(N) cost the naive baseline pays on
// every structural update.
func InsertInt32(s []int32, i int, vals ...int32) []int32 {
	if i < 0 || i > len(s) {
		panic(fmt.Sprintf("bat: insert index %d out of range [0,%d]", i, len(s)))
	}
	s = append(s, vals...)
	copy(s[i+len(vals):], s[i:])
	copy(s[i:], vals)
	return s
}

// DeleteInt32 removes n elements of s starting at index i.
func DeleteInt32(s []int32, i, n int) []int32 {
	return append(s[:i], s[i+n:]...)
}

// InsertInt16 is InsertInt32 for 16-bit columns (the level column).
func InsertInt16(s []int16, i int, vals ...int16) []int16 {
	if i < 0 || i > len(s) {
		panic(fmt.Sprintf("bat: insert index %d out of range [0,%d]", i, len(s)))
	}
	s = append(s, vals...)
	copy(s[i+len(vals):], s[i:])
	copy(s[i:], vals)
	return s
}

// DeleteInt16 removes n elements of s starting at index i.
func DeleteInt16(s []int16, i, n int) []int16 {
	return append(s[:i], s[i+n:]...)
}

// InsertUint8 is InsertInt32 for byte columns (the kind column).
func InsertUint8(s []uint8, i int, vals ...uint8) []uint8 {
	if i < 0 || i > len(s) {
		panic(fmt.Sprintf("bat: insert index %d out of range [0,%d]", i, len(s)))
	}
	s = append(s, vals...)
	copy(s[i+len(vals):], s[i:])
	copy(s[i:], vals)
	return s
}

// DeleteUint8 removes n elements of s starting at index i.
func DeleteUint8(s []uint8, i, n int) []uint8 {
	return append(s[:i], s[i+n:]...)
}

// Dict is a dictionary-encoded string column: the paper's prop table
// ("holding all unique attribute values (as strings)") and the text pools
// are Dicts. Ids are dense and stable, so value columns store int32 ids
// and equality tests on values reduce to integer comparisons.
type Dict struct {
	vals []string
	ids  map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Put interns s and returns its id.
func (d *Dict) Put(s string) int32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int32(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

// Get returns the string for id.
func (d *Dict) Get(id int32) string { return d.vals[id] }

// Lookup returns the id for s without interning.
func (d *Dict) Lookup(s string) (int32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Clone returns an independent copy.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		vals: append([]string(nil), d.vals...),
		ids:  make(map[string]int32, len(d.ids)),
	}
	for k, v := range d.ids {
		c.ids[k] = v
	}
	return c
}

// Cell is one deferred in-place update of a delta list.
type Cell struct {
	Pos int32 // dense key of the updated tuple
	Old int32 // value before the update (for revert and WAL undo)
	New int32 // value after the update
}

// Delta is a differential list over an int32 column: MonetDB keeps such
// lists per transaction and propagates them to the base BAT at commit
// (Section 3.2: "MonetDB keeps delta-tables (differential lists) for all
// changes made, that allow propagating those changes later to the base
// table when the transaction commits").
type Delta struct {
	Updates []Cell
	Appends []int32
}

// Update records an in-place change.
func (d *Delta) Update(pos, old, new int32) {
	d.Updates = append(d.Updates, Cell{Pos: pos, Old: old, New: new})
}

// Append records a new tuple at the end of the column.
func (d *Delta) Append(v int32) {
	d.Appends = append(d.Appends, v)
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool {
	return len(d.Updates) == 0 && len(d.Appends) == 0
}

// Apply propagates the delta to col and returns the grown column.
func (d *Delta) Apply(col []int32) []int32 {
	for _, c := range d.Updates {
		col[c.Pos] = c.New
	}
	return append(col, d.Appends...)
}

// Revert undoes the delta on col (appends are truncated, updates restored
// in reverse order so overlapping updates unwind correctly).
func (d *Delta) Revert(col []int32) []int32 {
	col = col[:len(col)-len(d.Appends)]
	for i := len(d.Updates) - 1; i >= 0; i-- {
		c := d.Updates[i]
		col[c.Pos] = c.Old
	}
	return col
}

// View resolves the current value of the column at pos as seen through
// the (unapplied) delta, falling back to base.
func (d *Delta) View(base []int32, pos int32) int32 {
	if pos >= int32(len(base)) {
		return d.Appends[pos-int32(len(base))]
	}
	// Later updates win; scan from the back.
	for i := len(d.Updates) - 1; i >= 0; i-- {
		if d.Updates[i].Pos == pos {
			return d.Updates[i].New
		}
	}
	return base[pos]
}

// SortedOffsets builds a CSR-style offset index over a sorted owner
// column: off[k]..off[k+1] are the rows whose owner equals k, for owners
// in [0, n). The attribute table of the read-only schema is indexed this
// way by owner pre.
func SortedOffsets(owners []int32, n int32) []int32 {
	if !sort.SliceIsSorted(owners, func(i, j int) bool { return owners[i] < owners[j] }) {
		panic("bat: SortedOffsets requires a sorted owner column")
	}
	off := make([]int32, n+1)
	row := 0
	for k := int32(0); k <= n; k++ {
		for row < len(owners) && owners[row] < k {
			row++
		}
		off[k] = int32(row)
	}
	off[n] = int32(len(owners))
	return off
}
