package chunkstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	a, b := []byte("alpha chunk"), []byte("beta chunk")
	ha, hb := Sum(a), Sum(b)

	if ok, err := s.Has(ha); err != nil || ok {
		t.Fatalf("Has on empty store = %v, %v", ok, err)
	}
	if _, err := s.Get(ha); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get on empty store = %v, want ErrMissing", err)
	}
	if err := s.Put(hb, a); err == nil {
		t.Fatal("Put under a wrong name succeeded")
	}
	if err := s.Put(ha, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ha, a); err != nil {
		t.Fatalf("idempotent re-Put failed: %v", err)
	}
	if err := s.Put(hb, b); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ha)
	if err != nil || string(got) != string(a) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	have, err := s.HasMany([]Hash{ha, Sum([]byte("absent")), hb})
	if err != nil {
		t.Fatal(err)
	}
	if !have[0] || have[1] || !have[2] {
		t.Fatalf("HasMany = %v", have)
	}
	seen := map[Hash]bool{}
	if err := s.ForEach(func(h Hash) error { seen[h] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || !seen[ha] || !seen[hb] {
		t.Fatalf("ForEach visited %v", seen)
	}
	if err := s.Delete(hb); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(hb); err != nil {
		t.Fatalf("double Delete failed: %v", err)
	}
	if ok, _ := s.Has(hb); ok {
		t.Fatal("deleted chunk still present")
	}
	if ok, _ := s.Has(ha); !ok {
		t.Fatal("Delete removed the wrong chunk")
	}
}

func TestMem(t *testing.T) { testStore(t, NewMem()) }

func TestDir(t *testing.T) { testStore(t, NewDir(filepath.Join(t.TempDir(), "chunks"))) }

func TestDirTornChunkIsMissing(t *testing.T) {
	d := NewDir(filepath.Join(t.TempDir(), "chunks"))
	data := []byte("some chunk content that will be torn")
	h := Sum(data)
	if err := d.Put(h, data); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(d.PathOf(h), int64(len(data)/2)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(h); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get of torn chunk = %v, want ErrMissing", err)
	}
	// The failed Get quarantined the corpse, so the store no longer
	// claims the name and the next checkpoint re-Puts good bytes —
	// without this, Put's skip-if-exists would pin the torn file forever.
	if ok, err := d.Has(h); err != nil || ok {
		t.Fatalf("torn chunk still claimed after failed Get: %v, %v", ok, err)
	}
	if err := d.Put(h, data); err != nil {
		t.Fatal(err)
	}
	if got, err := d.Get(h); err != nil || string(got) != string(data) {
		t.Fatalf("re-Put after quarantine: %q, %v", got, err)
	}
}

func TestDirForEachSkipsStrays(t *testing.T) {
	root := filepath.Join(t.TempDir(), "chunks")
	d := NewDir(root)
	data := []byte("x")
	if err := d.Put(Sum(data), data); err != nil {
		t.Fatal(err)
	}
	// Drop junk: a tmp leftover and an alien file.
	sub := filepath.Dir(d.PathOf(Sum(data)))
	if err := os.WriteFile(filepath.Join(sub, "junk.txt"), []byte("j"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.PathOf(Sum(data))+".tmp99", []byte("t"), 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := d.ForEach(func(Hash) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ForEach visited %d chunks, want 1", n)
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := Sum([]byte("round trip"))
	back, err := ParseHash(h.String())
	if err != nil || back != h {
		t.Fatalf("ParseHash(%s) = %s, %v", h, back, err)
	}
	for _, bad := range []string{"", "abcd", h.String()[:63], h.String() + "00", "ZZ" + h.String()[2:]} {
		if _, err := ParseHash(bad); err == nil {
			t.Fatalf("ParseHash(%q) succeeded", bad)
		}
	}
}
