// Package chunkstore is the content-addressed blob layer under
// incremental checkpoints and chunked replication bootstrap: a chunk is
// an immutable byte string named by its SHA-256, a Store holds chunks
// under those names, and a checkpoint manifest is a list of names. A
// chunk's name *is* its integrity check (Get verifies the digest, so a
// torn or bit-flipped chunk file is detected, never silently loaded)
// and *is* its dedupe key (Put of a chunk the store already holds is
// free, which is what turns a checkpoint of a barely-changed document
// into an O(churn) write).
//
// The interface is deliberately small and batched (HasMany) so remote
// backends — an object store, an LRU cache over one — can slot in
// behind the same contract. The in-tree backends are Dir (a fanned-out
// local directory, the durability default) and Mem (tests).
package chunkstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// HashSize is the size of a chunk name in bytes (SHA-256).
const HashSize = sha256.Size

// Hash is a chunk's content address: the SHA-256 of its bytes.
type Hash [HashSize]byte

// Sum names a chunk: the SHA-256 of its contents.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// String renders the hash as lowercase hex (the manifest wire form).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash parses the lowercase-hex form produced by Hash.String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 2*HashSize {
		return h, fmt.Errorf("chunkstore: hash %q has length %d, want %d", s, len(s), 2*HashSize)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("chunkstore: hash %q: %w", s, err)
	}
	copy(h[:], b)
	return h, nil
}

// ErrMissing reports a Get of a chunk the store does not hold (or holds
// only in a torn/corrupt form, which counts as not holding it).
var ErrMissing = errors.New("chunkstore: chunk missing")

// Store holds immutable chunks by content address.
//
// Put is idempotent: storing a chunk the store already holds is a no-op
// (that idempotence is the entire incremental-checkpoint win). Get
// verifies the content against the name and fails — wrapping ErrMissing
// — rather than return corrupt bytes. Writers that need the chunks on
// stable storage before publishing a manifest referencing them call
// Sync after their Puts.
type Store interface {
	// Put stores data under h. h must equal Sum(data).
	Put(h Hash, data []byte) error
	// Get returns the chunk named h, or an error wrapping ErrMissing.
	Get(h Hash) ([]byte, error)
	// Has reports whether the store holds h.
	Has(h Hash) (bool, error)
	// HasMany is Has batched: out[i] reports hs[i]. One round trip for
	// remote backends.
	HasMany(hs []Hash) ([]bool, error)
	// ForEach visits every chunk the store holds (GC mark/sweep).
	ForEach(fn func(h Hash) error) error
	// Delete removes h (GC sweep). Deleting an absent chunk is a no-op.
	Delete(h Hash) error
	// Sync forces previously Put chunks to stable storage.
	Sync() error
}

// --- Dir: local-directory backend ----------------------------------------

// Dir is the local filesystem backend: chunk h lives at
// root/h[:2]/h.chunk (a 256-way fan-out keeps directories small). Files
// are written tmp+fsync+rename so a crash never leaves a torn chunk
// under a final name; Sync fsyncs the directories touched since the
// last Sync so renames themselves are durable before a manifest
// referencing them is published.
//
// Dir is safe for concurrent use.
type Dir struct {
	root string

	mu    sync.Mutex
	dirty map[string]struct{} // subdirs with un-fsynced renames
	seq   uint64              // tmp-name uniquifier
}

// NewDir opens (creating if needed on first Put) a directory-backed
// store rooted at root.
func NewDir(root string) *Dir {
	return &Dir{root: root, dirty: make(map[string]struct{})}
}

// Root returns the store's root directory.
func (d *Dir) Root() string { return d.root }

// PathOf returns the path chunk h lives at (crash-injection hook; the
// file need not exist).
func (d *Dir) PathOf(h Hash) string {
	name := h.String()
	return filepath.Join(d.root, name[:2], name+".chunk")
}

func (d *Dir) Put(h Hash, data []byte) error {
	if Sum(data) != h {
		return fmt.Errorf("chunkstore: put of %s with non-matching content", h)
	}
	path := d.PathOf(h)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: an existing chunk is this chunk
	}
	sub := filepath.Dir(path)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	d.mu.Lock()
	d.seq++
	tmp := fmt.Sprintf("%s.tmp%d", path, d.seq)
	d.mu.Unlock()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d.mu.Lock()
	d.dirty[sub] = struct{}{}
	d.mu.Unlock()
	return nil
}

func (d *Dir) Get(h Hash) ([]byte, error) {
	data, err := os.ReadFile(d.PathOf(h))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("chunkstore: %s: %w", h, ErrMissing)
		}
		return nil, err
	}
	if Sum(data) != h {
		// A torn or corrupt chunk is indistinguishable from an absent one
		// to callers: both mean "this manifest cannot be materialized".
		// Quarantine it too: Put skips chunks whose final path exists, so
		// leaving the corpse in place would block every future checkpoint
		// from ever rewriting this chunk with good bytes.
		os.Remove(d.PathOf(h))
		return nil, fmt.Errorf("chunkstore: %s fails content verification (%d bytes on disk): %w", h, len(data), ErrMissing)
	}
	return data, nil
}

func (d *Dir) Has(h Hash) (bool, error) {
	_, err := os.Stat(d.PathOf(h))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (d *Dir) HasMany(hs []Hash) ([]bool, error) {
	out := make([]bool, len(hs))
	for i, h := range hs {
		ok, err := d.Has(h)
		if err != nil {
			return nil, err
		}
		out[i] = ok
	}
	return out, nil
}

func (d *Dir) ForEach(fn func(h Hash) error) error {
	subs, err := os.ReadDir(d.root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // no Puts yet: an empty store
		}
		return err
	}
	for _, sub := range subs {
		if !sub.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.root, sub.Name()))
		if err != nil {
			return err
		}
		for _, f := range files {
			name, ok := chunkFileName(f.Name())
			if !ok {
				continue
			}
			h, err := ParseHash(name)
			if err != nil {
				continue // stray file, not ours
			}
			if err := fn(h); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Dir) Delete(h Hash) error {
	err := os.Remove(d.PathOf(h))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (d *Dir) Sync() error {
	d.mu.Lock()
	dirs := make([]string, 0, len(d.dirty)+1)
	for sub := range d.dirty {
		dirs = append(dirs, sub)
	}
	d.dirty = make(map[string]struct{})
	d.mu.Unlock()
	if len(dirs) == 0 {
		return nil
	}
	sort.Strings(dirs)
	dirs = append(dirs, d.root)
	for _, dir := range dirs {
		f, err := os.Open(dir)
		if err != nil {
			return err
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkFileName strips the ".chunk" suffix, rejecting tmp leftovers.
func chunkFileName(file string) (string, bool) {
	const suffix = ".chunk"
	if len(file) != 2*HashSize+len(suffix) || file[2*HashSize:] != suffix {
		return "", false
	}
	return file[:2*HashSize], true
}

// RemoveAll deletes the store's entire root directory — the document is
// being dropped and no manifest will reference these chunks again.
func (d *Dir) RemoveAll() error { return os.RemoveAll(d.root) }

// --- Mem: in-memory backend ----------------------------------------------

// Mem is an in-memory Store for tests and for staging a bootstrap
// transfer. The zero value is not usable; call NewMem.
type Mem struct {
	mu     sync.RWMutex
	chunks map[Hash][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{chunks: make(map[Hash][]byte)} }

func (m *Mem) Put(h Hash, data []byte) error {
	if Sum(data) != h {
		return fmt.Errorf("chunkstore: put of %s with non-matching content", h)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.chunks[h]; !ok {
		m.chunks[h] = append([]byte(nil), data...)
	}
	return nil
}

func (m *Mem) Get(h Hash) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.chunks[h]
	if !ok {
		return nil, fmt.Errorf("chunkstore: %s: %w", h, ErrMissing)
	}
	return data, nil
}

func (m *Mem) Has(h Hash) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.chunks[h]
	return ok, nil
}

func (m *Mem) HasMany(hs []Hash) ([]bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]bool, len(hs))
	for i, h := range hs {
		_, out[i] = m.chunks[h]
	}
	return out, nil
}

func (m *Mem) ForEach(fn func(h Hash) error) error {
	m.mu.RLock()
	hs := make([]Hash, 0, len(m.chunks))
	for h := range m.chunks {
		hs = append(hs, h)
	}
	m.mu.RUnlock()
	for _, h := range hs {
		if err := fn(h); err != nil {
			return err
		}
	}
	return nil
}

func (m *Mem) Delete(h Hash) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.chunks, h)
	return nil
}

func (m *Mem) Sync() error { return nil }

// Len returns the number of chunks held (testing hook).
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.chunks)
}
