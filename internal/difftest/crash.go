package difftest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mxq/internal/chunkstore"
	"mxq/internal/ckpt"
	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/tx"
	"mxq/internal/wal"
)

// CrashConfig describes one crash-injection workload: a seeded batch
// workload commits through the transaction manager with a segmented WAL
// and periodic online checkpoints, then the WAL is cut at a random byte
// offset — mid-record, mid-segment, or exactly at a rotation boundary —
// and the recovered store is compared against the naive oracle replayed
// to the LSN recovery reports durable.
type CrashConfig struct {
	Seed     int64
	Batches  int // committed/aborted batches before the crash
	BatchOps int // ops per batch
	DocSize  int
	PageSize int
	Fill     float64
	// SegmentBytes should be small enough that the workload rotates
	// through several segments, so cuts land mid-rotation too.
	SegmentBytes int64
	// CheckpointEvery runs an online checkpoint every N committed
	// batches (0: only the initial checkpoint).
	CheckpointEvery int
	// TearCkpt additionally tears a checkpoint artifact after the WAL
	// cut — the newest image, the manifest pointer, or a chunk file only
	// the newest image references, truncated at a random offset — so
	// recovery must degrade to the previous retained checkpoint.
	// Requires CheckpointEvery > 0 (two images must be on disk).
	TearCkpt bool
}

// RunCrash executes one crash-injection workload. The durability
// contract it checks: recovery never errors, recovers a *prefix* of the
// committed history — at least the last completed checkpoint, at most
// the full history, exactly the full history when the cut removed
// nothing — and the recovered document is bit-identical to the oracle
// replayed to that same LSN. Recovery is then repeated to prove it is
// deterministic (the first recovery's torn-tail truncation must not
// change the outcome).
func RunCrash(t *testing.T, cfg CrashConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir := t.TempDir()
	tree := randomDoc(rng, cfg.DocSize)
	walPath := filepath.Join(dir, "d.wal")

	log, err := wal.Open(walPath, wal.Options{NoSync: true, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	paged, err := core.Build(tree, core.Options{PageSize: cfg.PageSize, FillFactor: cfg.Fill})
	if err != nil {
		t.Fatalf("seed %d: building paged store: %v", cfg.Seed, err)
	}
	m := tx.NewManager(paged, log)
	ck := ckpt.New(dir, "d", log, m.PinCheckpoint)

	ckptLSN, err := ck.Run() // initial checkpoint: the recovery floor
	if err != nil {
		t.Fatalf("seed %d: initial checkpoint: %v", cfg.Seed, err)
	}

	// The committed history, keyed by the LSN of the commit that applied
	// it; the oracle replays a prefix of it after the crash.
	batches := make(map[uint64][]op)
	committed := 0
	for b := 1; b <= cfg.Batches; b++ {
		txn := m.Begin()
		var pending []op
		for i := 0; i < cfg.BatchOps; i++ {
			o, ok := genOp(rng, txn, b*1000+i)
			if !ok {
				t.Fatalf("seed %d batch %d: tx image has no live nodes", cfg.Seed, b)
			}
			pending = append(pending, o)
			if err := o.applyPaged(txn); err != nil {
				t.Fatalf("seed %d batch %d: tx %v: %v", cfg.Seed, b, o, err)
			}
		}
		if rng.Intn(4) == 0 { // some batches abort: no record, no oracle ops
			txn.Abort()
			continue
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("seed %d batch %d: commit: %v", cfg.Seed, b, err)
		}
		committed++
		batches[log.LastLSN()] = pending
		if cfg.CheckpointEvery > 0 && committed%cfg.CheckpointEvery == 0 {
			lsn, err := ck.Run()
			if err != nil {
				t.Fatalf("seed %d batch %d: checkpoint: %v", cfg.Seed, b, err)
			}
			ckptLSN = lsn
		}
	}
	lastLSN := log.LastLSN()
	log.Close()

	// Crash: sever the WAL at a random byte offset across the
	// concatenated live segments, and — when configured — tear a
	// checkpoint artifact too (a crash mid-checkpoint can leave both).
	cutAll := cutWAL(t, rng, walPath)
	floor := ckptLSN
	if cfg.TearCkpt {
		// Recovery may lose the newest image wholesale; the floor drops
		// to the previous retained checkpoint, whose chunks and WAL
		// records retention guarantees are still on disk.
		floor = tearCkptArtifact(t, rng, dir)
	}

	recovered, recLSN := recoverOnce(t, cfg, dir, walPath)

	// Prefix property: at least the checkpoint floor, at most (and after
	// a no-op cut, exactly) the full history.
	if recLSN < floor {
		t.Fatalf("seed %d: recovered LSN %d below checkpoint floor %d", cfg.Seed, recLSN, floor)
	}
	if recLSN > lastLSN {
		t.Fatalf("seed %d: recovered LSN %d beyond committed history %d", cfg.Seed, recLSN, lastLSN)
	}
	if cutAll && recLSN != lastLSN {
		t.Fatalf("seed %d: cut removed nothing but recovery lost LSNs %d..%d", cfg.Seed, recLSN+1, lastLSN)
	}
	if err := recovered.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: recovered store invariants: %v", cfg.Seed, err)
	}

	// The oracle replayed to the recovered LSN must agree exactly.
	oracle, err := naive.Build(tree)
	if err != nil {
		t.Fatalf("seed %d: building oracle: %v", cfg.Seed, err)
	}
	for lsn := uint64(1); lsn <= recLSN; lsn++ {
		for _, o := range batches[lsn] {
			if err := o.applyNaive(oracle); err != nil {
				t.Fatalf("seed %d: oracle replay of LSN %d op %v: %v", cfg.Seed, lsn, o, err)
			}
		}
	}
	got, want := serializeView(t, recovered), serializeView(t, oracle)
	if got != want {
		t.Fatalf("seed %d: recovered state diverges from oracle at LSN %d\nrecovered: %s\noracle:    %s",
			cfg.Seed, recLSN, got, want)
	}

	// Recovery must be deterministic: running it again (after the first
	// pass truncated the torn tail) lands on the same LSN and bytes.
	recovered2, recLSN2 := recoverOnce(t, cfg, dir, walPath)
	if recLSN2 != recLSN {
		t.Fatalf("seed %d: second recovery reached LSN %d, first %d", cfg.Seed, recLSN2, recLSN)
	}
	if got2 := serializeView(t, recovered2); got2 != got {
		t.Fatalf("seed %d: second recovery produced different bytes", cfg.Seed)
	}
}

func recoverOnce(t *testing.T, cfg CrashConfig, dir, walPath string) (*core.Store, uint64) {
	t.Helper()
	log, err := wal.Open(walPath, wal.Options{NoSync: true, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		t.Fatalf("seed %d: reopening wal after crash: %v", cfg.Seed, err)
	}
	defer log.Close()
	store, lsn, err := ckpt.Recover(dir, "d", log, nil)
	if err != nil {
		t.Fatalf("seed %d: recovery errored (must degrade, never fail): %v", cfg.Seed, err)
	}
	return store, lsn
}

// cutWAL truncates the concatenated segment stream at a uniformly random
// byte offset: a cut inside segment k truncates k mid-file and deletes
// every later segment. It reports whether the cut was a no-op (landed at
// the very end of the stream).
func cutWAL(t *testing.T, rng *rand.Rand, walPath string) (noop bool) {
	t.Helper()
	segs, err := wal.SegmentPaths(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments found at %s — nothing to cut", walPath)
	}
	var total int64
	sizes := make([]int64, len(segs))
	for i, s := range segs {
		fi, err := os.Stat(s)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = fi.Size()
		total += fi.Size()
	}
	cut := rng.Int63n(total + 1)
	if cut == total {
		return true
	}
	for i, s := range segs {
		if cut >= sizes[i] {
			cut -= sizes[i]
			continue
		}
		if err := os.Truncate(s, cut); err != nil {
			t.Fatal(err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(later); err != nil {
				t.Fatal(err)
			}
		}
		return false
	}
	return true
}

// tearCkptArtifact truncates one checkpoint artifact at a random
// offset — the newest image, the document manifest, or a chunk file
// referenced only by the newest image (a chunk shared with an older
// image cannot be torn by a crash: the chunk store skips writes for
// chunks it already holds). It returns the new recovery floor: the LSN
// of the previous retained image, which must stay materializable
// whatever was torn.
func tearCkptArtifact(t *testing.T, rng *rand.Rand, dir string) uint64 {
	t.Helper()
	imgs, err := ckpt.Images(dir, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) < 2 {
		t.Fatalf("TearCkpt needs two retained images to degrade across, have %d", len(imgs))
	}
	newest, prev := imgs[0], imgs[1]
	imgPath := filepath.Join(dir, newest.File)
	switch rng.Intn(3) {
	case 0:
		tearFile(t, rng, imgPath)
	case 1:
		tearFile(t, rng, filepath.Join(dir, "d.manifest"))
	default:
		newHashes, err := ckpt.ImageChunks(imgPath)
		if err != nil {
			t.Fatal(err)
		}
		shared := make(map[chunkstore.Hash]bool)
		for _, old := range imgs[1:] {
			hs, err := ckpt.ImageChunks(filepath.Join(dir, old.File))
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range hs {
				shared[h] = true
			}
		}
		var unique []chunkstore.Hash
		for _, h := range newHashes {
			if !shared[h] {
				unique = append(unique, h)
			}
		}
		if len(unique) == 0 {
			// Every chunk is shared (no churn between the checkpoints):
			// nothing a crash could have torn; tear the image instead.
			tearFile(t, rng, imgPath)
			break
		}
		cs := ckpt.DefaultChunkStore(dir, "d")
		tearFile(t, rng, cs.PathOf(unique[rng.Intn(len(unique))]))
	}
	return prev.LSN
}

// tearFile truncates path at a uniformly random offset strictly inside
// the file (offset 0 = emptied, never a clean full copy).
func tearFile(t *testing.T, rng *rand.Rand, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		return
	}
	if err := os.Truncate(path, rng.Int63n(fi.Size())); err != nil {
		t.Fatal(err)
	}
}

// CrashConfigs returns the seeded crash-injection matrix; iters scales
// the number of random cuts per shape (the nightly soak raises it).
func CrashConfigs(iters int) []CrashConfig {
	var cfgs []CrashConfig
	shapes := []CrashConfig{
		// Small segments: cuts land mid-rotation; frequent checkpoints.
		{Batches: 30, BatchOps: 4, DocSize: 90, PageSize: 16, Fill: 0.7, SegmentBytes: 512, CheckpointEvery: 7},
		// One big segment: cuts always tear the active tail.
		{Batches: 20, BatchOps: 3, DocSize: 60, PageSize: 32, Fill: 0.8, SegmentBytes: wal.DefaultSegmentBytes},
		// Tiny segments, no mid-run checkpoints: long replay chains.
		{Batches: 25, BatchOps: 5, DocSize: 120, PageSize: 16, Fill: 0.75, SegmentBytes: 256},
		// Torn checkpoint artifacts on top of the WAL cut: recovery must
		// degrade whole to the previous retained image, never mix two.
		{Batches: 30, BatchOps: 4, DocSize: 90, PageSize: 16, Fill: 0.7, SegmentBytes: 512, CheckpointEvery: 7, TearCkpt: true},
		{Batches: 24, BatchOps: 5, DocSize: 120, PageSize: 32, Fill: 0.8, SegmentBytes: 1024, CheckpointEvery: 5, TearCkpt: true},
	}
	for i := 0; i < iters; i++ {
		for j, s := range shapes {
			s.Seed = int64(1000*i + j)
			cfgs = append(cfgs, s)
		}
	}
	return cfgs
}

// crashName labels one config for subtest naming.
func crashName(c CrashConfig) string {
	n := fmt.Sprintf("seed=%d/seg=%d/ckpt=%d", c.Seed, c.SegmentBytes, c.CheckpointEvery)
	if c.TearCkpt {
		n += "/tear"
	}
	return n
}
