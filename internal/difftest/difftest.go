// Package difftest cross-checks the paged updatable store against the
// naive O(N) reference store (internal/naive) on randomized update
// workloads. The two implementations share nothing but the DocView
// interface, so any divergence in serialized output or any broken
// invariant points at a real defect in one of them — the style of net
// FLUX-like update-language work recommends for XML stores, where update
// correctness is notoriously easy to rot silently.
//
// Workloads are seeded and fully deterministic: a failure report's seed
// reproduces the exact op sequence. Operations target nodes by *live
// document-order index*, which both stores can resolve regardless of how
// their physical layouts diverge (the paged store interleaves free
// tuples; the naive store is dense).
//
// The harness runs in two modes: direct (every op mutates the paged
// store in place) and transactional (ops run against a page-granular
// copy-on-write transaction image in batches that alternately commit and
// abort, exercising the snapshot/commit/abort paths of Section 3.2 — the
// oracle is advanced only on commit).
package difftest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// diffQueries cross-check the query engine over both stores at every
// agreement point, on top of the serialized-document comparison. The
// shapes target the sequence-at-a-time pipeline: multi-step descendant
// paths whose context sets overlap (pruned staircase scans), positional
// predicates (fused early-exit counters), boolean predicates over merged
// sequences, and reverse-axis positions (the per-node fallback). Element
// and attribute names follow what randomDoc/randFrag generate.
var diffQueries = []*xpath.Expr{
	xpath.MustParse(`count(//node())`),
	xpath.MustParse(`//e0//leaf/text()`),
	xpath.MustParse(`//e1//g1/text()`),
	xpath.MustParse(`//f0//text()`),
	xpath.MustParse(`/root//leaf[1]/text()`),
	xpath.MustParse(`//leaf[2]`),
	xpath.MustParse(`//*[@i]//leaf`),
	xpath.MustParse(`//e0[.//leaf]/..`),
	xpath.MustParse(`//e1/ancestor::*[last()]`),
	xpath.MustParse(`//f1/preceding-sibling::node()[1]`),
	xpath.MustParse(`count(//*[@a0] | //*[@a1])`),
	xpath.MustParse(`//e2[leaf]/leaf[last()]/text()`),
	// Filter expressions: predicates numbered against the base sequence,
	// filtered in place over both stores' physically different layouts.
	xpath.MustParse(`(//leaf)[2]/text()`),
	xpath.MustParse(`(//e0 | //e1)[leaf]`),
	xpath.MustParse(`(//e0//leaf)[.//text()][1]`),
	xpath.MustParse(`count((//*[@i])[g1])`),
	xpath.MustParse(`//e0[leaf][.//g1]`),
}

// Config describes one differential workload.
type Config struct {
	Seed     int64
	Steps    int     // number of update operations
	DocSize  int     // node count of the initial random document
	PageSize int     // paged-store logical page size
	Fill     float64 // paged-store fill factor
	// TxBatch, when > 0, routes the paged-store operations through a
	// tx.Manager in batches of TxBatch ops; odd batches commit, even
	// batches abort (the oracle only advances on commit).
	TxBatch int
	// CompactDictEvery, when > 0, runs CompactDictionaries every N steps
	// (direct mode) or every N batches (tx mode) and re-verifies the
	// stores agree: the dictionary rewrite must be invisible to the
	// serialized document, and aborted batches' leaked entries must be
	// reclaimable at any point in the workload.
	CompactDictEvery int
}

// mutTarget is the mutation surface shared by *core.Store and *tx.Tx.
type mutTarget interface {
	xenc.DocView
	InsertBefore(xenc.Pre, *shred.Tree) ([]xenc.NodeID, error)
	InsertAfter(xenc.Pre, *shred.Tree) ([]xenc.NodeID, error)
	AppendChild(xenc.Pre, *shred.Tree) ([]xenc.NodeID, error)
	Delete(xenc.Pre) error
	SetValue(xenc.Pre, string) error
	Rename(xenc.Pre, string) error
	SetAttr(xenc.Pre, string, string) error
	RemoveAttr(xenc.Pre, string) error
}

var (
	_ mutTarget = (*core.Store)(nil)
	_ mutTarget = (*tx.Tx)(nil)
)

// op kinds.
const (
	opInsertBefore = iota
	opInsertAfter
	opAppendChild
	opDelete
	opSetValue
	opRename
	opSetAttr
	opRemoveAttr
	numOpKinds
)

var opNames = [numOpKinds]string{
	"InsertBefore", "InsertAfter", "AppendChild", "Delete",
	"SetValue", "Rename", "SetAttr", "RemoveAttr",
}

// op is one resolved operation: a kind plus a live document-order index,
// which each store translates to its own pre rank at apply time.
type op struct {
	kind  int
	index int
	frag  *shred.Tree
	name  string
	value string
}

func (o op) String() string {
	return fmt.Sprintf("%s@%d(name=%q value=%q)", opNames[o.kind], o.index, o.name, o.value)
}

// applyPaged runs the op on the paged store (or a transaction image).
func (o op) applyPaged(v mutTarget) error {
	p := liveIndexPre(v, o.index)
	switch o.kind {
	case opInsertBefore:
		_, err := v.InsertBefore(p, o.frag)
		return err
	case opInsertAfter:
		_, err := v.InsertAfter(p, o.frag)
		return err
	case opAppendChild:
		_, err := v.AppendChild(p, o.frag)
		return err
	case opDelete:
		return v.Delete(p)
	case opSetValue:
		return v.SetValue(p, o.value)
	case opRename:
		return v.Rename(p, o.name)
	case opSetAttr:
		return v.SetAttr(p, o.name, o.value)
	case opRemoveAttr:
		return v.RemoveAttr(p, o.name)
	}
	return fmt.Errorf("unknown op kind %d", o.kind)
}

// applyNaive runs the op on the oracle.
func (o op) applyNaive(s *naive.Store) error {
	p := liveIndexPre(s, o.index)
	switch o.kind {
	case opInsertBefore:
		return s.InsertBefore(p, o.frag)
	case opInsertAfter:
		return s.InsertAfter(p, o.frag)
	case opAppendChild:
		return s.AppendChild(p, o.frag)
	case opDelete:
		return s.Delete(p)
	case opSetValue:
		return s.SetValue(p, o.value)
	case opRename:
		return s.Rename(p, o.name)
	case opSetAttr:
		return s.SetAttr(p, o.name, o.value)
	case opRemoveAttr:
		return s.RemoveAttr(p, o.name)
	}
	return fmt.Errorf("unknown op kind %d", o.kind)
}

// liveIndexPre returns the pre rank of the idx-th live node in document
// order (idx 0 is the root).
func liveIndexPre(v xenc.DocView, idx int) xenc.Pre {
	p := xenc.SkipFree(v, 0)
	for ; idx > 0; idx-- {
		p = xenc.SkipFree(v, p+1)
	}
	return p
}

// genOp picks a random operation that is valid against the current state
// of view v. It returns ok=false only if the document somehow has no
// live nodes (which would itself be a bug the caller reports).
func genOp(rng *rand.Rand, v xenc.DocView, stamp int) (op, bool) {
	n := v.LiveNodes()
	if n == 0 {
		return op{}, false
	}
	idx := rng.Intn(n)
	p := liveIndexPre(v, idx)
	kind := v.Kind(p)

	var candidates []int
	if idx != 0 {
		candidates = append(candidates, opInsertBefore, opInsertAfter, opDelete)
	}
	switch kind {
	case xenc.KindElem:
		candidates = append(candidates, opAppendChild, opRename, opSetAttr, opRemoveAttr)
	case xenc.KindText, xenc.KindComment:
		candidates = append(candidates, opSetValue)
	case xenc.KindPI:
		candidates = append(candidates, opSetValue, opRename)
	}
	o := op{kind: candidates[rng.Intn(len(candidates))], index: idx}
	switch o.kind {
	case opInsertBefore, opInsertAfter, opAppendChild:
		o.frag = randFrag(rng, stamp)
	case opSetValue:
		o.value = fmt.Sprintf("v%d", stamp)
	case opRename:
		o.name = fmt.Sprintf("r%d", rng.Intn(6))
	case opSetAttr:
		o.name = fmt.Sprintf("a%d", rng.Intn(4))
		o.value = fmt.Sprintf("w%d", stamp)
	case opRemoveAttr:
		o.name = fmt.Sprintf("a%d", rng.Intn(4))
	}
	return o, true
}

// randFrag builds a small random single-rooted fragment: an element with
// up to three child nodes (elements, text, comments), possibly carrying
// an attribute.
func randFrag(rng *rand.Rand, stamp int) *shred.Tree {
	b := shred.NewBuilder()
	if rng.Intn(2) == 0 {
		b.Start(fmt.Sprintf("f%d", rng.Intn(5)), shred.Attr{Name: "s", Value: fmt.Sprint(stamp)})
	} else {
		b.Start(fmt.Sprintf("f%d", rng.Intn(5)))
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			b.Elem(fmt.Sprintf("g%d", rng.Intn(3)), fmt.Sprintf("t%d", stamp))
		case 1:
			b.Text(fmt.Sprintf("x%d", stamp))
		default:
			b.Comment(fmt.Sprintf("c%d", stamp))
		}
	}
	return b.End().Tree()
}

// randomDoc builds the seeded initial document.
func randomDoc(rng *rand.Rand, n int) *shred.Tree {
	b := shred.NewBuilder().Start("root")
	depth := 1
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			if rng.Intn(2) == 0 {
				b.Start(fmt.Sprintf("e%d", rng.Intn(4)), shred.Attr{Name: "i", Value: fmt.Sprint(i)})
			} else {
				b.Start(fmt.Sprintf("e%d", rng.Intn(4)))
			}
			depth++
		case 1:
			b.Text(fmt.Sprintf("t%d", i))
		case 2:
			b.Elem("leaf", fmt.Sprintf("l%d", i))
		default:
			if depth > 1 {
				b.End()
				depth--
			} else {
				b.Comment(fmt.Sprintf("c%d", i))
			}
		}
	}
	for depth > 0 {
		b.End()
		depth--
	}
	return b.Tree()
}

// serializeView renders a view to XML.
func serializeView(tb testing.TB, v xenc.DocView) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := serialize.Document(&buf, v, serialize.Options{}); err != nil {
		tb.Fatalf("serialize: %v", err)
	}
	return buf.String()
}

// checkAgree compares the paged store against the oracle and verifies
// the paged store's structural invariants.
func checkAgree(t *testing.T, cfg Config, step int, paged *core.Store, oracle *naive.Store, history []op) {
	t.Helper()
	if err := paged.CheckInvariants(); err != nil {
		t.Fatalf("seed %d step %d: paged-store invariants broken after %v: %v",
			cfg.Seed, step, tail(history), err)
	}
	got, want := serializeView(t, paged), serializeView(t, oracle)
	if got != want {
		t.Fatalf("seed %d step %d: stores diverged after %v\npaged:  %s\noracle: %s",
			cfg.Seed, step, tail(history), got, want)
	}
	if paged.LiveNodes() != oracle.LiveNodes() {
		t.Fatalf("seed %d step %d: live-node counts diverged: paged %d, oracle %d",
			cfg.Seed, step, paged.LiveNodes(), oracle.LiveNodes())
	}
	for _, e := range diffQueries {
		got, err1 := queryFingerprint(paged, e)
		want, err2 := queryFingerprint(oracle, e)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d step %d: query %q: paged err %v, oracle err %v",
				cfg.Seed, step, e.Source(), err1, err2)
		}
		if got != want {
			t.Fatalf("seed %d step %d: query %q diverged after %v\npaged:  %.300s\noracle: %.300s",
				cfg.Seed, step, e.Source(), tail(history), got, want)
		}
	}
}

func tail(history []op) []op {
	if len(history) > 5 {
		return history[len(history)-5:]
	}
	return history
}

// Run executes one differential workload described by cfg.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tree := randomDoc(rng, cfg.DocSize)

	oracle, err := naive.Build(tree)
	if err != nil {
		t.Fatalf("seed %d: building oracle: %v", cfg.Seed, err)
	}
	paged, err := core.Build(tree, core.Options{PageSize: cfg.PageSize, FillFactor: cfg.Fill})
	if err != nil {
		t.Fatalf("seed %d: building paged store: %v", cfg.Seed, err)
	}
	checkAgree(t, cfg, -1, paged, oracle, nil)

	if cfg.TxBatch > 0 {
		runTx(t, cfg, rng, paged, oracle)
		return
	}

	var history []op
	for step := 0; step < cfg.Steps; step++ {
		o, ok := genOp(rng, paged, step)
		if !ok {
			t.Fatalf("seed %d step %d: paged store has no live nodes", cfg.Seed, step)
		}
		history = append(history, o)
		if err := o.applyPaged(paged); err != nil {
			t.Fatalf("seed %d step %d: paged %v: %v", cfg.Seed, step, o, err)
		}
		if err := o.applyNaive(oracle); err != nil {
			t.Fatalf("seed %d step %d: oracle %v: %v", cfg.Seed, step, o, err)
		}
		if cfg.CompactDictEvery > 0 && (step+1)%cfg.CompactDictEvery == 0 {
			paged.CompactDictionaries()
		}
		checkAgree(t, cfg, step, paged, oracle, history)
	}
}

// runTx drives the same differential comparison through the transaction
// layer: ops are generated against (and applied to) a copy-on-write
// transaction image; odd batches commit — replaying onto the base and
// advancing the oracle — while even batches abort, after which the base
// must still match the oracle exactly (the dropped private pages must
// not have leaked into shared state).
func runTx(t *testing.T, cfg Config, rng *rand.Rand, paged *core.Store, oracle *naive.Store) {
	t.Helper()
	m := tx.NewManager(paged, nil)
	step := 0
	batch := 0
	var history []op
	for step < cfg.Steps {
		batch++
		txn := m.Begin()
		var pending []op
		for i := 0; i < cfg.TxBatch && step < cfg.Steps; i++ {
			o, ok := genOp(rng, txn, step)
			if !ok {
				t.Fatalf("seed %d step %d: tx image has no live nodes", cfg.Seed, step)
			}
			pending = append(pending, o)
			if err := o.applyPaged(txn); err != nil {
				t.Fatalf("seed %d step %d: tx %v: %v", cfg.Seed, step, o, err)
			}
			step++
		}
		commit := batch%2 == 1
		if commit {
			if err := txn.Commit(); err != nil {
				t.Fatalf("seed %d batch %d: commit: %v", cfg.Seed, batch, err)
			}
			for _, o := range pending {
				if err := o.applyNaive(oracle); err != nil {
					t.Fatalf("seed %d batch %d: oracle %v: %v", cfg.Seed, batch, o, err)
				}
			}
			history = append(history, pending...)
		} else {
			txn.Abort()
		}
		if cfg.CompactDictEvery > 0 && batch%cfg.CompactDictEvery == 0 {
			m.CompactDictionaries()
		}
		checkAgree(t, cfg, step, paged, oracle, history)
	}
}
