package difftest

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mxq/internal/ckpt"
	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/repl"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/wal"
	"mxq/internal/wire"
	"mxq/internal/xenc"
)

// ReplConfig describes one replication workload: a seeded primary
// commits batches through the transaction manager while a follower —
// subscribed over a real loopback connection through repl.Serve and
// repl.Follower — replays them. The follower is repeatedly
// disconnected mid-stream, crash-restarted from its own durability
// directory (optionally with its WAL cut at a random byte offset, the
// same injection the crash mode uses), and left behind while the
// primary commits and prunes — forcing both resume paths: gap-free WAL
// replay and snapshot re-bootstrap.
type ReplConfig struct {
	Seed     int64
	Rounds   int // disconnect / crash / reconnect cycles
	Batches  int // batches committed while the follower is connected
	Offline  int // batches committed while the follower is away
	BatchOps int
	DocSize  int
	PageSize int
	Fill     float64
	// SegmentBytes small + CheckpointEvery low makes primary pruning
	// outrun a disconnected follower, forcing snapshot re-bootstraps.
	SegmentBytes    int64
	CheckpointEvery int // primary checkpoint every N commits (0: initial only)
	FollowerCkpt    int // follower local checkpoint every N applied batches
	// ForceLap keeps committing and checkpointing while the follower is
	// away until its LSN is pruned out of the primary's WAL, so every
	// reconnect after the first provably takes the snapshot path.
	ForceLap bool
}

// RunRepl executes one replication workload. The contract it checks:
// a follower is at all times a crash-recovered image of the primary at
// its applied LSN — after every disconnect, crash, WAL cut and
// re-bootstrap, the follower's store is bit-identical to the naive
// oracle replayed to exactly the LSN the follower reports applied, and
// a connected follower always converges to the primary's tail. It also
// checks the prune fence: while a follower subscription is live, the
// primary's WAL can always stream past the tracker's barrier.
func RunRepl(t *testing.T, cfg ReplConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pdir := t.TempDir()
	tree := randomDoc(rng, cfg.DocSize)

	log, err := wal.Open(filepath.Join(pdir, "d.wal"), wal.Options{NoSync: true, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
	defer log.Close()
	paged, err := core.Build(tree, core.Options{PageSize: cfg.PageSize, FillFactor: cfg.Fill})
	if err != nil {
		t.Fatalf("seed %d: building paged store: %v", cfg.Seed, err)
	}
	m := tx.NewManager(paged, log)
	tracker := repl.NewTracker()
	ck := ckpt.New(pdir, "d", log, m.PinCheckpoint)
	ck.SetPruneBarrier(tracker.Barrier)
	if _, err := ck.Run(); err != nil {
		t.Fatalf("seed %d: initial checkpoint: %v", cfg.Seed, err)
	}

	src := repl.Source{Name: "d", Log: log, Pin: m.PinCheckpoint, Track: tracker}
	addr, shutdown := serveRepl(t, src)
	defer shutdown()

	sink := newReplSink(t.TempDir(), wal.Options{NoSync: true, SegmentBytes: cfg.SegmentBytes}, cfg.FollowerCkpt)

	// The committed history keyed by commit LSN; the oracle replays a
	// prefix of it at every verification point.
	batches := make(map[uint64][]op)
	batchNo, committed := 0, 0
	commit := func(n int) {
		t.Helper()
		for b := 0; b < n; b++ {
			batchNo++
			txn := m.Begin()
			var pending []op
			for i := 0; i < cfg.BatchOps; i++ {
				o, ok := genOp(rng, txn, batchNo*1000+i)
				if !ok {
					t.Fatalf("seed %d batch %d: tx image has no live nodes", cfg.Seed, batchNo)
				}
				pending = append(pending, o)
				if err := o.applyPaged(txn); err != nil {
					t.Fatalf("seed %d batch %d: tx %v: %v", cfg.Seed, batchNo, o, err)
				}
			}
			if rng.Intn(5) == 0 { // some batches abort: no record, no oracle ops
				txn.Abort()
				continue
			}
			if err := txn.Commit(); err != nil {
				t.Fatalf("seed %d batch %d: commit: %v", cfg.Seed, batchNo, err)
			}
			committed++
			batches[log.LastLSN()] = pending
			if cfg.CheckpointEvery > 0 && committed%cfg.CheckpointEvery == 0 {
				if _, err := ck.Run(); err != nil {
					t.Fatalf("seed %d batch %d: checkpoint: %v", cfg.Seed, batchNo, err)
				}
				// Prune fence: a live follower's acked LSN must still be
				// streamable after every checkpoint's prune.
				if b := tracker.Barrier(); b != ^uint64(0) && !log.CanStream(b) {
					t.Fatalf("seed %d: prune fence violated: barrier %d no longer streamable", cfg.Seed, b)
				}
			}
		}
	}

	for round := 1; round <= cfg.Rounds; round++ {
		// Commit (and maybe prune) while the follower is away: with small
		// segments and frequent checkpoints this outruns the follower's
		// LSN, so the reconnect takes the snapshot path.
		commit(cfg.Offline)
		if cfg.ForceLap {
			if applied, ok := sink.applied(); ok {
				lapped := false
				for lap := 0; lap < 50; lap++ {
					if !log.CanStream(applied) {
						lapped = true
						break
					}
					commit(1)
					if _, err := ck.Run(); err != nil {
						t.Fatalf("seed %d: lap checkpoint: %v", cfg.Seed, err)
					}
				}
				if !lapped {
					t.Fatalf("seed %d round %d: could not prune the primary past follower LSN %d",
						cfg.Seed, round, applied)
				}
			}
		}

		stop := startFollower(t, addr, sink)
		commit(cfg.Batches)

		final := round == cfg.Rounds
		if final || rng.Intn(2) == 0 {
			// Converged stop: wait for the follower to reach the primary's
			// tail, then verify full agreement with both the oracle and
			// the primary's live store.
			tail := log.LastLSN()
			waitApplied(t, cfg, sink, tail)
			stop()
			got := serializeView(t, sink.view())
			oracleCheckRepl(t, cfg, tree, batches, got, tail, "converged follower")
			var primary string
			if err := m.View(func(v xenc.DocView) error { primary = serializeView(t, v); return nil }); err != nil {
				t.Fatalf("seed %d: primary view: %v", cfg.Seed, err)
			}
			if got != primary {
				t.Fatalf("seed %d round %d: converged follower diverges from primary at LSN %d\nfollower: %s\nprimary:  %s",
					cfg.Seed, round, tail, got, primary)
			}
		} else {
			// Mid-stream stop: cut the connection wherever the stream
			// happens to be. The follower must still be a clean prefix.
			time.Sleep(time.Duration(rng.Intn(25)) * time.Millisecond)
			stop()
			if applied, ok := sink.appliedQuiesced(); ok {
				if applied > log.LastLSN() {
					t.Fatalf("seed %d round %d: follower applied %d beyond primary tail %d",
						cfg.Seed, round, applied, log.LastLSN())
				}
				oracleCheckRepl(t, cfg, tree, batches, serializeView(t, sink.view()), applied, "mid-stream follower")
			}
		}

		// Crash the follower process: drop all in-memory state, optionally
		// cut its WAL at a random byte offset, recover from its own
		// artifacts, and check the recovered image against the oracle at
		// the LSN recovery reports.
		if recLSN, ok := sink.crash(t, rng, cfg); ok {
			oracleCheckRepl(t, cfg, tree, batches, serializeView(t, sink.view()), recLSN, "crash-recovered follower")
		}
	}

	if sinkErr := sink.err(); sinkErr != nil {
		t.Fatalf("seed %d: follower sink recorded error: %v", cfg.Seed, sinkErr)
	}

	// Coverage tripwires: the lapping shape must have taken the snapshot
	// re-bootstrap path, and a never-pruned primary must never push a
	// follower off the gap-free WAL-replay path.
	boots := sink.bootstrapCount()
	if cfg.ForceLap && boots < 2 {
		t.Fatalf("seed %d: snapshot re-bootstrap path not exercised (%d bootstraps)", cfg.Seed, boots)
	}
	if cfg.CheckpointEvery == 0 && !cfg.ForceLap && boots != 1 {
		t.Fatalf("seed %d: pruning disabled but follower bootstrapped %d times (want exactly the initial one)",
			cfg.Seed, boots)
	}
}

// oracleCheckRepl replays a fresh oracle to lsn and compares it against
// the already-serialized follower bytes.
func oracleCheckRepl(t *testing.T, cfg ReplConfig, tree *shred.Tree, batches map[uint64][]op, got string, lsn uint64, who string) {
	t.Helper()
	oracle, err := naive.Build(tree)
	if err != nil {
		t.Fatalf("seed %d: building oracle: %v", cfg.Seed, err)
	}
	for l := uint64(1); l <= lsn; l++ {
		for _, o := range batches[l] {
			if err := o.applyNaive(oracle); err != nil {
				t.Fatalf("seed %d: oracle replay of LSN %d op %v: %v", cfg.Seed, l, o, err)
			}
		}
	}
	if want := serializeView(t, oracle); got != want {
		t.Fatalf("seed %d: %s diverges from oracle at LSN %d\nfollower: %s\noracle:   %s",
			cfg.Seed, who, lsn, got, want)
	}
}

// serveRepl runs a minimal subscription listener: Hello is answered
// with protocol 2 + replication, SubscribeWAL hands the connection to
// repl.Serve. shutdown closes the listener and waits out every
// connection (the follower must be stopped first — its death is what
// unblocks Serve).
func serveRepl(t *testing.T, src repl.Source) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				replConn(conn, src)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		wg.Wait()
	}
}

func replConn(conn net.Conn, src repl.Source) {
	for {
		fr, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return
		}
		switch fr.Op {
		case wire.OpHello:
			var p wire.PayloadBuilder
			p.Uvarint(wire.MaxVersion).Uvarint(wire.FeatReplication)
			if wire.WriteFrame(conn, wire.Frame{ID: fr.ID, Op: wire.StatusOK, Payload: p.Bytes()}) != nil {
				return
			}
		case wire.OpSubscribeWAL:
			r := wire.NewPayloadReader(fr.Payload)
			if _, err := r.String(); err != nil { // doc name; single-doc harness
				return
			}
			after, err := r.Uvarint()
			if err != nil {
				return
			}
			repl.Serve(conn, fr.ID, after, src, 0, nil)
			return
		default:
			return
		}
	}
}

// startFollower runs one subscription until its stop function is
// called; the stop function waits the follower's goroutine out, so
// after it returns the sink is quiescent.
func startFollower(t *testing.T, addr string, sink *replSink) (stop func()) {
	t.Helper()
	f := &repl.Follower{Addr: addr, Doc: "d", Sink: sink}
	stopC := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(stopC)
	}()
	return func() {
		close(stopC)
		<-done
	}
}

// waitApplied polls until the sink has applied lsn; the deadline is
// generous because a snapshot re-bootstrap plus catch-up sits behind
// the follower's reconnect backoff.
func waitApplied(t *testing.T, cfg ReplConfig, sink *replSink, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if applied, ok := sink.applied(); ok && applied >= lsn {
			return
		}
		if time.Now().After(deadline) {
			applied, _ := sink.applied()
			t.Fatalf("seed %d: follower stuck at LSN %d, want %d (sink error: %v)",
				cfg.Seed, applied, lsn, sink.err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replSink is the follower-side state: a store, manager, local WAL and
// local checkpointer in its own durability directory — the same pieces
// the root package's document sink wires together, minus the catalog.
// The mutex covers the handoff between the follower's goroutine (via
// the Sink interface) and the test goroutine (crash/verify while the
// follower is stopped).
type replSink struct {
	mu        sync.Mutex
	dir       string
	wopts     wal.Options
	ckptEvery int

	store      *core.Store
	log        *wal.Log
	mgr        *tx.Manager
	ck         *ckpt.Checkpointer
	applies    int
	bootstraps int
	firstErr   error
}

func newReplSink(dir string, wopts wal.Options, ckptEvery int) *replSink {
	return &replSink{dir: dir, wopts: wopts, ckptEvery: ckptEvery}
}

func (s *replSink) walPath() string { return filepath.Join(s.dir, "f.wal") }

func (s *replSink) fail(err error) error {
	if s.firstErr == nil {
		s.firstErr = err
	}
	return err
}

func (s *replSink) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *replSink) applied() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr == nil {
		return 0, false
	}
	return s.mgr.AppliedLSN(), true
}

// appliedQuiesced and view are test-goroutine accessors; the caller
// guarantees the follower goroutine has exited.
func (s *replSink) appliedQuiesced() (uint64, bool) { return s.applied() }

func (s *replSink) view() *core.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// AppliedLSN implements repl.Sink.
func (s *replSink) AppliedLSN() (uint64, bool) { return s.applied() }

// Bootstrap implements repl.Sink: wholesale replacement from a
// checkpoint image, exactly like the root package's document sink —
// wipe local artifacts, position a fresh WAL at the image's LSN, write
// an initial local checkpoint so a crash right after recovers locally.
func (s *replSink) Bootstrap(r io.Reader, lsn uint64) error {
	hdrLSN, err := tx.ReadSnapshotHeader(r)
	if err != nil {
		return s.fail(err)
	}
	if hdrLSN != lsn {
		return s.fail(fmt.Errorf("difftest: bootstrap image header says LSN %d, subscription says %d", hdrLSN, lsn))
	}
	store, err := core.Load(r)
	if err != nil {
		return s.fail(fmt.Errorf("difftest: loading bootstrap image: %w", err))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ck != nil {
		s.ck.Close()
	}
	if s.log != nil {
		s.log.Close()
	}
	s.store, s.log, s.mgr, s.ck = nil, nil, nil, nil
	wal.RemoveSegments(s.walPath())
	ckpt.RemoveArtifacts(s.dir, "f")
	log, err := wal.Open(s.walPath(), s.wopts)
	if err != nil {
		return s.fail(err)
	}
	log.EnsureLSN(lsn)
	s.store, s.log = store, log
	s.mgr = tx.NewManager(store, log)
	s.ck = ckpt.New(s.dir, "f", log, s.mgr.PinCheckpoint)
	if _, err := s.ck.Run(); err != nil {
		return s.fail(fmt.Errorf("difftest: bootstrap checkpoint: %w", err))
	}
	s.bootstraps++
	return nil
}

func (s *replSink) bootstrapCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bootstraps
}

// Apply implements repl.Sink: replay the batch through the recovery
// apply path, make it durable, occasionally checkpoint locally so
// crash-recovery floors advance past the bootstrap image.
func (s *replSink) Apply(recs []*wal.Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr == nil {
		return 0, s.fail(fmt.Errorf("difftest: apply before bootstrap"))
	}
	for _, rec := range recs {
		if err := s.mgr.ApplyReplicated(rec); err != nil {
			return 0, s.fail(err)
		}
	}
	last := recs[len(recs)-1].LSN
	if err := s.log.Sync(last); err != nil {
		return 0, s.fail(err)
	}
	s.applies++
	if s.ckptEvery > 0 && s.applies%s.ckptEvery == 0 {
		if _, err := s.ck.Run(); err != nil {
			return 0, s.fail(fmt.Errorf("difftest: follower checkpoint: %w", err))
		}
	}
	return last, nil
}

// crash simulates a follower process crash and restart: all in-memory
// state is dropped, the local WAL is cut at a random byte offset half
// the time (disk loss past the last sync — or even past acked LSNs,
// which the snapshot fallback must absorb), and the document is
// recovered from local artifacts alone. Reports the recovered LSN; ok
// is false when the follower never bootstrapped (nothing to crash).
// Caller must have stopped the follower.
func (s *replSink) crash(t *testing.T, rng *rand.Rand, cfg ReplConfig) (uint64, bool) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mgr == nil {
		return 0, false
	}
	appliedBefore := s.mgr.AppliedLSN()
	s.ck.Close()
	s.log.Close()
	s.store, s.log, s.mgr, s.ck = nil, nil, nil, nil
	if rng.Intn(2) == 0 {
		cutWAL(t, rng, s.walPath())
	}
	log, err := wal.Open(s.walPath(), s.wopts)
	if err != nil {
		t.Fatalf("seed %d: reopening follower wal: %v", cfg.Seed, err)
	}
	store, lsn, err := ckpt.Recover(s.dir, "f", log, nil)
	if err != nil {
		t.Fatalf("seed %d: follower recovery errored (must degrade, never fail): %v", cfg.Seed, err)
	}
	if lsn > appliedBefore {
		t.Fatalf("seed %d: follower recovered LSN %d beyond what it had applied (%d)", cfg.Seed, lsn, appliedBefore)
	}
	if err := store.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: recovered follower invariants: %v", cfg.Seed, err)
	}
	s.store, s.log = store, log
	s.mgr = tx.NewManager(store, log)
	s.ck = ckpt.New(s.dir, "f", log, s.mgr.PinCheckpoint)
	if got := s.mgr.AppliedLSN(); got != lsn {
		t.Fatalf("seed %d: recovered manager applied %d, recovery reported %d", cfg.Seed, got, lsn)
	}
	return lsn, true
}

// ReplConfigs returns the seeded replication matrix; iters scales the
// number of seeds per shape (the nightly soak raises it).
func ReplConfigs(iters int) []ReplConfig {
	var cfgs []ReplConfig
	shapes := []ReplConfig{
		// Tiny segments, aggressive pruning: disconnected followers get
		// lapped and re-bootstrap from snapshots.
		{Rounds: 4, Batches: 6, Offline: 4, BatchOps: 4, DocSize: 80,
			PageSize: 16, Fill: 0.75, SegmentBytes: 512, CheckpointEvery: 2, FollowerCkpt: 3, ForceLap: true},
		// One big segment, no mid-run pruning: reconnects always resume by
		// gap-free WAL replay.
		{Rounds: 3, Batches: 8, Offline: 3, BatchOps: 3, DocSize: 60,
			PageSize: 32, Fill: 0.8, SegmentBytes: wal.DefaultSegmentBytes, FollowerCkpt: 2},
		// Mid shape: rotation without much pruning, no follower
		// checkpoints beyond bootstrap (long local replay chains).
		{Rounds: 3, Batches: 5, Offline: 2, BatchOps: 5, DocSize: 100,
			PageSize: 16, Fill: 0.7, SegmentBytes: 1024, CheckpointEvery: 5},
	}
	for i := 0; i < iters; i++ {
		for j, s := range shapes {
			s.Seed = int64(7000*i + j)
			cfgs = append(cfgs, s)
		}
	}
	return cfgs
}

// replName labels one config for subtest naming.
func replName(c ReplConfig) string {
	return fmt.Sprintf("seed=%d/seg=%d/ckpt=%d", c.Seed, c.SegmentBytes, c.CheckpointEvery)
}
