package difftest

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// concurrentBatches returns def unless the MXQ_DIFFTEST_BATCHES
// environment variable overrides it — the nightly CI workflow raises the
// concurrent-mode iteration count far beyond what per-PR runs can spend.
func concurrentBatches(def int) int {
	if s := os.Getenv("MXQ_DIFFTEST_BATCHES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestDirectSmallPages drives the paged store directly with tiny pages,
// the regime with the most page splices and free-run churn per op.
func TestDirectSmallPages(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			Run(t, Config{
				Seed: seed, Steps: 120, DocSize: 60,
				PageSize: 16, Fill: 0.75, CompactDictEvery: 40,
			})
		})
	}
}

// TestDirectLargePages exercises the within-page insert path: with large
// pages nearly all inserts fit without splicing.
func TestDirectLargePages(t *testing.T) {
	for seed := int64(10); seed <= 13; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			Run(t, Config{
				Seed: seed, Steps: 120, DocSize: 120,
				PageSize: 256, Fill: 0.6,
			})
		})
	}
}

// TestDirectFullPages forces the page-overflow path: fill factor 1.0
// leaves no free tuples, so every structural insert splices pages.
func TestDirectFullPages(t *testing.T) {
	for seed := int64(20); seed <= 23; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			Run(t, Config{
				Seed: seed, Steps: 100, DocSize: 80,
				PageSize: 16, Fill: 1.0,
			})
		})
	}
}

// TestTxCommitAbort routes every op through a page-granular
// copy-on-write transaction image, alternating committing and aborting
// batches: the base store must match the oracle after every batch, and
// an aborted batch must leave no trace.
func TestTxCommitAbort(t *testing.T) {
	for seed := int64(30); seed <= 35; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			Run(t, Config{
				Seed: seed, Steps: 120, DocSize: 70,
				PageSize: 16, Fill: 0.75, TxBatch: 5,
				CompactDictEvery: 6,
			})
		})
	}
}

// TestTxSingleOpBatches is the worst case for snapshot overhead: every
// single op pays a fresh Begin (copy-on-write snapshot) and commit or
// abort.
func TestTxSingleOpBatches(t *testing.T) {
	for seed := int64(40); seed <= 43; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			Run(t, Config{
				Seed: seed, Steps: 80, DocSize: 50,
				PageSize: 32, Fill: 0.8, TxBatch: 1,
			})
		})
	}
}

// TestConcurrentSnapshotQueries is the concurrent mode: reader
// goroutines run XMark-style queries over per-version snapshots while
// the driver applies randomized committed/aborted update batches. Every
// query result must match the naive oracle frozen at that snapshot's
// version. Run under -race (make check does).
func TestConcurrentSnapshotQueries(t *testing.T) {
	batches := concurrentBatches(25)
	readers := 4
	if testing.Short() {
		batches, readers = concurrentBatches(8), 2
	}
	for seed := int64(50); seed <= 52; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			RunConcurrent(t, ConcurrentConfig{
				Seed: seed, SF: 0.002, Readers: readers,
				Batches: batches, BatchOps: 6,
				PageSize: 64, Fill: 0.75,
			})
		})
	}
}

// TestConcurrentSnapshotQueriesTinyPages stresses the page-splice paths
// under concurrency: tiny full pages make almost every insert splice.
func TestConcurrentSnapshotQueriesTinyPages(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestConcurrentSnapshotQueries in -short mode")
	}
	RunConcurrent(t, ConcurrentConfig{
		Seed: 60, SF: 0.002, Readers: 3,
		Batches: concurrentBatches(15), BatchOps: 4,
		PageSize: 16, Fill: 1.0,
	})
}

// crashIters returns def unless MXQ_CRASH_ITERS overrides it — the
// nightly crash-recovery soak raises the number of random cuts far
// beyond what per-PR CI can spend.
func crashIters(def int) int {
	if s := os.Getenv("MXQ_CRASH_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestCrashRecovery is the crash-injection mode: a seeded transactional
// workload runs over a segmented WAL with online checkpoints, the WAL is
// cut at a random byte offset (mid-record, mid-segment, mid-rotation),
// and the recovered store must match the naive oracle replayed to the
// durable LSN — recovery must be a clean prefix, never an error and
// never silent loss.
func TestCrashRecovery(t *testing.T) {
	iters := crashIters(4)
	if testing.Short() {
		iters = crashIters(2)
	}
	for _, cfg := range CrashConfigs(iters) {
		t.Run(crashName(cfg), func(t *testing.T) {
			RunCrash(t, cfg)
		})
	}
}

// replIters returns def unless MXQ_REPL_ITERS overrides it — the
// nightly replication soak raises the number of seeds per shape far
// beyond what per-PR CI can spend.
func replIters(def int) int {
	if s := os.Getenv("MXQ_REPL_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestReplication is the replication mode: a primary streams its WAL
// to a follower over a real loopback subscription while the follower
// is repeatedly disconnected mid-stream, crash-restarted (sometimes
// with its local WAL cut at a random offset), and left behind across
// primary checkpoints and prunes. The follower must always be a
// crash-recovered image of the primary at its applied LSN — verified
// against the naive oracle at every stop — and must always reconverge,
// by gap-free WAL replay or snapshot re-bootstrap. Run under -race
// (make check does).
func TestReplication(t *testing.T) {
	iters := replIters(2)
	if testing.Short() {
		iters = replIters(1)
	}
	for _, cfg := range ReplConfigs(iters) {
		t.Run(replName(cfg), func(t *testing.T) {
			RunRepl(t, cfg)
		})
	}
}
