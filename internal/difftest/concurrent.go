package difftest

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/tx"
	"mxq/internal/xenc"
	"mxq/internal/xmark"
	"mxq/internal/xpath"
)

// ConcurrentConfig describes one concurrent snapshot workload: reader
// goroutines run XMark-style queries against per-version snapshots
// while the driver applies randomized committed and aborted update
// batches through the transaction layer. Every query result must match
// the naive oracle frozen at that snapshot's version — the harness's
// strongest guarantee, because it catches torn reads, stale caches and
// cross-version bleed that single-threaded difftests cannot. Run it
// under -race.
type ConcurrentConfig struct {
	Seed     int64
	SF       float64 // XMark scale factor of the base document
	Readers  int     // concurrent query goroutines
	Batches  int     // update batches the driver applies
	BatchOps int     // ops per batch
	PageSize int
	Fill     float64
}

// concurrentQueries are the XMark-style read workloads; all are inside
// the supported XPath subset and meaningful on a generated XMark
// document whatever updates later land on it.
var concurrentQueries = []string{
	`count(/site/regions//item)`,
	`/site/regions//item/name/text()`,
	`/site/people/person/name/text()`,
	`count(/site/people/person[@id])`,
	`count(//keyword)`,
	`/site/open_auctions/open_auction/initial/text()`,
	`count(/site//text())`,
	`string(/site/catgraph)`,
	// Multi-step descendant paths over large overlapping context sets
	// (the sequence-at-a-time pipeline's pruned staircase scans) and
	// positional predicates (fused early-exit counters and the per-node
	// last() fallback), exercised while commits land concurrently.
	`/site//open_auction//increase/text()`,
	`//description//keyword/text()`,
	`//listitem//text()`,
	`/site/regions//item[1]/name/text()`,
	`//person[2]/name/text()`,
	`//open_auction/bidder[last()]/increase/text()`,
	`count(//parlist//listitem)`,
	`//item[description//keyword]/name/text()`,
}

// queryFingerprint renders a query result into a comparable form that
// does not depend on physical pre ranks (the paged store interleaves
// free tuples; the oracle is dense).
func queryFingerprint(v xenc.DocView, e *xpath.Expr) (string, error) {
	val, err := e.Eval(v)
	if err != nil {
		return "", err
	}
	switch x := val.(type) {
	case xpath.NodeSet:
		var b strings.Builder
		fmt.Fprintf(&b, "nodes:%d\n", len(x))
		for _, n := range x {
			b.WriteString(xpath.StringValue(v, n))
			b.WriteByte('\n')
		}
		return b.String(), nil
	case xpath.Number:
		return "num:" + xpath.FormatNumber(float64(x)), nil
	case xpath.String:
		return "str:" + string(x), nil
	case xpath.Boolean:
		return fmt.Sprintf("bool:%v", bool(x)), nil
	}
	return "", fmt.Errorf("unexpected result type %T", val)
}

func serializeErr(v xenc.DocView) (string, error) {
	var buf bytes.Buffer
	if err := serialize.Document(&buf, v, serialize.Options{}); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// RunConcurrent executes one concurrent snapshot workload.
func RunConcurrent(t *testing.T, cfg ConcurrentConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var buf bytes.Buffer
	if _, err := xmark.NewGenerator(cfg.SF, uint64(cfg.Seed)+1).WriteTo(&buf); err != nil {
		t.Fatalf("seed %d: generating XMark: %v", cfg.Seed, err)
	}
	tree, err := shred.Parse(&buf, shred.Options{})
	if err != nil {
		t.Fatalf("seed %d: shredding XMark: %v", cfg.Seed, err)
	}
	oracle, err := naive.Build(tree)
	if err != nil {
		t.Fatalf("seed %d: building oracle: %v", cfg.Seed, err)
	}
	paged, err := core.Build(tree, core.Options{PageSize: cfg.PageSize, FillFactor: cfg.Fill})
	if err != nil {
		t.Fatalf("seed %d: building paged store: %v", cfg.Seed, err)
	}
	m := tx.NewManager(paged, nil)

	exprs := make([]*xpath.Expr, len(concurrentQueries))
	for i, q := range concurrentQueries {
		e, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		exprs[i] = e
	}

	// versions[v] is the oracle frozen at committed version v. The
	// driver publishes versions[v+1] *before* making version v+1 visible
	// (commit bumps the counter under the manager's exclusive lock), so
	// any reader that observes a version finds its oracle.
	var verMu sync.RWMutex
	versions := map[uint64]*naive.Store{0: oracle.Clone()}
	oracleAt := func(v uint64) *naive.Store {
		verMu.RLock()
		defer verMu.RUnlock()
		return versions[v]
	}

	stop := make(chan struct{})
	errs := make(chan error, cfg.Readers)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(cfg.Seed ^ (int64(r)+1)*7919))
			fail := func(err error) {
				select {
				case errs <- err:
				default:
				}
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := func() error {
					// Lifecycle-aware acquisition: most iterations lease
					// the cached per-version snapshot (AcquireRead), but
					// every fourth takes a public closeable Snapshot
					// handle, so the refcount handoff of both entry
					// points races commits, compactions and each other.
					var view xenc.DocView
					var v uint64
					var release func()
					if i%4 == 3 {
						snap := m.Snapshot()
						view, v, release = snap.View(), snap.Version(), snap.Close
					} else {
						rv := m.AcquireRead()
						view, v, release = rv.View(), rv.Version(), rv.Close
					}
					defer release()
					want := oracleAt(v)
					if want == nil {
						return fmt.Errorf("seed %d reader %d: no oracle for version %d", cfg.Seed, r, v)
					}
					e := exprs[rrng.Intn(len(exprs))]
					got, err1 := queryFingerprint(view, e)
					exp, err2 := queryFingerprint(want, e)
					if err1 != nil || err2 != nil {
						return fmt.Errorf("seed %d reader %d version %d query %q: paged err %v, oracle err %v",
							cfg.Seed, r, v, e.Source(), err1, err2)
					}
					if got != exp {
						return fmt.Errorf("seed %d reader %d version %d query %q diverged\npaged:  %.400s\noracle: %.400s",
							cfg.Seed, r, v, e.Source(), got, exp)
					}
					// Periodic whole-document agreement on top of the query
					// check — catches structural divergence queries miss.
					if i%8 == 0 {
						gs, err1 := serializeErr(view)
						ws, err2 := serializeErr(want)
						if err1 != nil || err2 != nil || gs != ws {
							return fmt.Errorf("seed %d reader %d version %d: serialized documents diverged (errs %v/%v)",
								cfg.Seed, r, v, err1, err2)
						}
					}
					return nil
				}(); err != nil {
					fail(err)
					return
				}
			}
		}(r)
	}

	step := 0
	for batch := 1; batch <= cfg.Batches; batch++ {
		txn := m.Begin()
		var pending []op
		for i := 0; i < cfg.BatchOps; i++ {
			o, genOK := genOp(rng, txn, step)
			if !genOK {
				close(stop)
				t.Fatalf("seed %d batch %d: tx image has no live nodes", cfg.Seed, batch)
			}
			pending = append(pending, o)
			if err := o.applyPaged(txn); err != nil {
				close(stop)
				t.Fatalf("seed %d batch %d: tx %v: %v", cfg.Seed, batch, o, err)
			}
			step++
		}
		if rng.Intn(3) == 0 {
			// Aborted batches must be invisible to every reader.
			txn.Abort()
			continue
		}
		for _, o := range pending {
			if err := o.applyNaive(oracle); err != nil {
				close(stop)
				t.Fatalf("seed %d batch %d: oracle %v: %v", cfg.Seed, batch, o, err)
			}
		}
		next := m.Version() + 1 // the driver is the only writer
		verMu.Lock()
		versions[next] = oracle.Clone()
		verMu.Unlock()
		if err := txn.Commit(); err != nil {
			close(stop)
			t.Fatalf("seed %d batch %d: commit: %v", cfg.Seed, batch, err)
		}
		// Periodic dictionary compaction while readers race: aborted
		// batches leak names and attribute values into the shared pools,
		// and reclaiming them must never disturb a live snapshot.
		if batch%4 == 0 {
			m.CompactDictionaries()
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final whole-document agreement plus paged-store invariants.
	if err := paged.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: invariants broken after concurrent run: %v", cfg.Seed, err)
	}
	// A final compaction must leave the document intact (checked by the
	// serialization below), and an immediate second pass must find
	// nothing left to drop.
	m.CompactDictionaries()
	if nd, pd := m.CompactDictionaries(); nd != 0 || pd != 0 {
		t.Errorf("seed %d: second dictionary compaction dropped (%d names, %d props), want (0, 0)", cfg.Seed, nd, pd)
	}
	if err := paged.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: invariants broken after dictionary compaction: %v", cfg.Seed, err)
	}
	rv := m.AcquireRead()
	defer rv.Close()
	got, err1 := serializeErr(rv.View())
	want, err2 := serializeErr(oracle)
	if err1 != nil || err2 != nil {
		t.Fatalf("seed %d: final serialize: %v / %v", cfg.Seed, err1, err2)
	}
	if got != want {
		t.Fatalf("seed %d: final states diverged\npaged:  %.600s\noracle: %.600s", cfg.Seed, got, want)
	}
	// The rewritten base (post-compaction dictionary ids) must agree too,
	// not just the cached pre-compaction snapshot.
	if err := m.View(func(v xenc.DocView) error {
		base, err := serializeErr(v)
		if err != nil {
			return err
		}
		if base != want {
			return fmt.Errorf("compacted base diverged\npaged:  %.600s\noracle: %.600s", base, want)
		}
		return nil
	}); err != nil {
		t.Fatalf("seed %d: %v", cfg.Seed, err)
	}
}
