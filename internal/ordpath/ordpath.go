// Package ordpath implements the insert-friendly variable-length node
// labels of O'Neil et al. (SIGMOD 2004) that the paper's related-work
// section contrasts with fixed-size pre numbers: a bit-compressed Dewey
// order where inserts between existing siblings extend labels with even
// "caret" components instead of renumbering.
//
// The package exists to quantify the trade-off the paper claims
// (Section 4.2): variable-length keys avoid renumbering entirely, but
// comparisons cost more than single integer comparisons, positional
// skipping is impossible, and label length degenerates under repeated
// inserts into the same gap. The Ordpath benchmarks measure exactly
// those three effects.
package ordpath

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Label is a node label: a sequence of ordinals. Odd ordinals open tree
// levels; even ordinals are carets gluing inserts into an existing level.
// A well-formed label ends with an odd ordinal.
type Label []int64

// Root returns the label of the document root.
func Root() Label { return Label{1} }

// Clone returns an independent copy.
func (l Label) Clone() Label { return append(Label(nil), l...) }

// Depth returns the tree depth: the number of odd components.
func (l Label) Depth() int {
	d := 0
	for _, c := range l {
		if c%2 != 0 {
			d++
		}
	}
	return d
}

// String renders the dotted form.
func (l Label) String() string {
	var b bytes.Buffer
	for i, c := range l {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// FirstChild returns the label of a first child.
func (l Label) FirstChild() Label {
	return append(l.Clone(), 1)
}

// NextSibling returns a label directly after l among its siblings (used
// when appending at the end of a child list).
func (l Label) NextSibling() Label {
	n := l.Clone()
	n[len(n)-1] += 2
	return n
}

// PrevSibling returns a label directly before l (inserting at the front).
func (l Label) PrevSibling() Label {
	n := l.Clone()
	n[len(n)-1] -= 2
	return n
}

// Compare orders labels in document order (componentwise; a proper
// prefix — an ancestor — sorts first).
func Compare(a, b Label) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsAncestor reports whether a is a proper ancestor of b: a is a strict
// prefix of b (carets considered).
func IsAncestor(a, b Label) bool {
	if len(a) >= len(b) {
		return false
	}
	for i, c := range a {
		if b[i] != c {
			return false
		}
	}
	return true
}

// Between returns a fresh label strictly between two sibling labels
// (Compare(l, new) < 0 < Compare(new, r)) at the same depth — the
// "careting in" insert of the ORDPATH paper. It panics if l >= r or the
// labels are not siblings of a common parent.
func Between(l, r Label) Label {
	if Compare(l, r) >= 0 {
		panic(fmt.Sprintf("ordpath: Between(%s, %s): not ordered", l, r))
	}
	i := 0
	for i < len(l) && i < len(r) && l[i] == r[i] {
		i++
	}
	if i == len(l) || i == len(r) {
		panic(fmt.Sprintf("ordpath: Between(%s, %s): prefix labels are ancestor/descendant, not siblings", l, r))
	}
	lo, hi := l[i], r[i]
	// An odd ordinal strictly between fits directly.
	if hi-lo >= 2 {
		m := lo + (hi-lo)/2
		if m%2 == 0 {
			m++
		}
		if m > lo && m < hi {
			return append(l[:i:i].Clone(), m)
		}
		// Only the even lo+1 lies between: caret into it.
		return append(l[:i:i].Clone(), lo+1, 1)
	}
	// Adjacent ordinals (hi == lo+1): descend into the side that has a
	// continuation after the even component.
	if hi%2 == 0 {
		// r continues after its caret; produce something smaller there.
		rest := r[i+1]
		o := rest - 1
		if o%2 == 0 {
			o--
		}
		return append(r[:i+1:i+1].Clone(), o)
	}
	// lo is even, so l continues; produce something larger there.
	rest := l[i+1]
	o := rest + 1
	if o%2 == 0 {
		o++
	}
	return append(l[:i+1:i+1].Clone(), o)
}

// Encode produces the order-preserving bit-compressed byte form: for each
// ordinal, one header byte (0x40 ± byte-length, negatives complemented)
// followed by the big-endian magnitude. bytes.Compare on encodings equals
// Compare on labels, which is what an RDBMS index needs.
func (l Label) Encode() []byte {
	out := make([]byte, 0, len(l)*3)
	var scratch [8]byte
	for _, c := range l {
		neg := c < 0
		mag := uint64(c)
		if neg {
			mag = uint64(-c)
		}
		binary.BigEndian.PutUint64(scratch[:], mag)
		n := 8
		for n > 1 && scratch[8-n] == 0 {
			n--
		}
		if neg {
			// Negative ordinals: header below 0x40, magnitude bytes
			// complemented so bigger magnitudes sort earlier.
			out = append(out, byte(0x40-n))
			for _, b := range scratch[8-n:] {
				out = append(out, ^b)
			}
		} else {
			out = append(out, byte(0x40+n))
			out = append(out, scratch[8-n:]...)
		}
	}
	return out
}

// Decode parses an encoded label.
func Decode(enc []byte) (Label, error) {
	var l Label
	for i := 0; i < len(enc); {
		h := enc[i]
		i++
		var n int
		neg := false
		switch {
		case h > 0x40 && h <= 0x48:
			n = int(h - 0x40)
		case h >= 0x38 && h < 0x40:
			n = int(0x40 - h)
			neg = true
		default:
			return nil, fmt.Errorf("ordpath: bad header byte %#x at %d", h, i-1)
		}
		if i+n > len(enc) {
			return nil, fmt.Errorf("ordpath: truncated ordinal at %d", i)
		}
		var mag uint64
		for _, b := range enc[i : i+n] {
			if neg {
				b = ^b
			}
			mag = mag<<8 | uint64(b)
		}
		i += n
		if neg {
			l = append(l, -int64(mag))
		} else {
			l = append(l, int64(mag))
		}
	}
	return l, nil
}
