package ordpath

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicsAndDepth(t *testing.T) {
	root := Root()
	if root.Depth() != 1 {
		t.Fatalf("root depth = %d", root.Depth())
	}
	c1 := root.FirstChild()
	c2 := c1.NextSibling()
	if c1.Depth() != 2 || c2.Depth() != 2 {
		t.Fatalf("child depths = %d, %d", c1.Depth(), c2.Depth())
	}
	if Compare(c1, c2) >= 0 || Compare(root, c1) >= 0 {
		t.Fatal("sibling/parent ordering broken")
	}
	if !IsAncestor(root, c1) || IsAncestor(c1, c2) || IsAncestor(c1, root) {
		t.Fatal("IsAncestor broken")
	}
	p := c1.PrevSibling()
	if Compare(p, c1) >= 0 || p.Depth() != 2 {
		t.Fatalf("PrevSibling = %s", p)
	}
}

func TestBetweenSimpleGap(t *testing.T) {
	l := Label{1, 1}
	r := Label{1, 5}
	m := Between(l, r)
	if Compare(l, m) >= 0 || Compare(m, r) >= 0 {
		t.Fatalf("Between(%s,%s) = %s out of order", l, r, m)
	}
	if m.Depth() != 2 {
		t.Fatalf("Between depth = %d, want 2", m.Depth())
	}
}

func TestBetweenAdjacentUsesCarets(t *testing.T) {
	l := Label{1, 3}
	r := Label{1, 5}
	m := Between(l, r)
	if Compare(l, m) >= 0 || Compare(m, r) >= 0 {
		t.Fatalf("Between = %s out of order", m)
	}
	if m.Depth() != 2 {
		t.Fatalf("caret label depth = %d (%s)", m.Depth(), m)
	}
	if len(m) <= 2 {
		t.Fatalf("adjacent odds must caret-extend, got %s", m)
	}
}

// TestRepeatedInsertsSamePoint drives the degenerate case the paper
// warns about: labels grow under repeated inserts into the same gap, but
// order and depth stay correct throughout.
func TestRepeatedInsertsSamePoint(t *testing.T) {
	l := Label{1, 1}
	r := Label{1, 3}
	prev := l
	maxLen := 0
	for i := 0; i < 200; i++ {
		m := Between(prev, r)
		if Compare(prev, m) >= 0 || Compare(m, r) >= 0 {
			t.Fatalf("step %d: %s not between %s and %s", i, m, prev, r)
		}
		if m.Depth() != 2 {
			t.Fatalf("step %d: depth %d (%s)", i, m.Depth(), m)
		}
		if len(m) > maxLen {
			maxLen = len(m)
		}
		prev = m
	}
	if maxLen <= 2 {
		t.Fatal("labels never grew; caret machinery unused")
	}
	t.Logf("label length after 200 same-point inserts: %d components", maxLen)
}

// TestRandomSiblingInserts keeps a sorted sibling list and inserts at
// random positions, checking total order, depth and encoding order after
// every insert.
func TestRandomSiblingInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parent := Root()
	sibs := []Label{parent.FirstChild()}
	for i := 0; i < 400; i++ {
		pos := rng.Intn(len(sibs) + 1)
		var nl Label
		switch {
		case pos == 0:
			nl = sibs[0].PrevSibling()
		case pos == len(sibs):
			nl = sibs[len(sibs)-1].NextSibling()
		default:
			nl = Between(sibs[pos-1], sibs[pos])
		}
		if nl.Depth() != 2 {
			t.Fatalf("insert %d at %d: depth %d (%s)", i, pos, nl.Depth(), nl)
		}
		sibs = append(sibs[:pos], append([]Label{nl}, sibs[pos:]...)...)
		if !sort.SliceIsSorted(sibs, func(a, b int) bool { return Compare(sibs[a], sibs[b]) < 0 }) {
			t.Fatalf("insert %d at %d broke the order", i, pos)
		}
	}
	// Encoded order must equal label order.
	for i := 1; i < len(sibs); i++ {
		if bytes.Compare(sibs[i-1].Encode(), sibs[i].Encode()) >= 0 {
			t.Fatalf("encoding order broken between %s and %s", sibs[i-1], sibs[i])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		l := make(Label, len(raw))
		for i, v := range raw {
			l[i] = int64(v)
		}
		dec, err := Decode(l.Encode())
		if err != nil {
			return false
		}
		return Compare(l, dec) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() Label {
		n := 1 + rng.Intn(5)
		l := make(Label, n)
		for i := range l {
			l[i] = int64(rng.Intn(2000) - 1000)
		}
		return l
	}
	for i := 0; i < 2000; i++ {
		a, b := mk(), mk()
		cmpL := Compare(a, b)
		cmpE := bytes.Compare(a.Encode(), b.Encode())
		if (cmpL < 0) != (cmpE < 0) || (cmpL == 0) != (cmpE == 0) {
			t.Fatalf("order mismatch: %s vs %s: labels %d, bytes %d", a, b, cmpL, cmpE)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, enc := range [][]byte{
		{0x00},
		{0x49},
		{0x41}, // header promising one byte, none follow
	} {
		if _, err := Decode(enc); err == nil {
			t.Errorf("Decode(%v) succeeded", enc)
		}
	}
}

func TestBetweenPanics(t *testing.T) {
	for _, tc := range [][2]Label{
		{{1, 5}, {1, 3}}, // reversed
		{{1}, {1, 3}},    // ancestor/descendant
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Between(%s,%s) did not panic", tc[0], tc[1])
				}
			}()
			Between(tc[0], tc[1])
		}()
	}
}
