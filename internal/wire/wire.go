// Package wire is the mxqd wire protocol: the frame codec, the opcode
// and status-code space, and the protocol-version negotiation contract.
// It is a leaf package — the server, the replication subsystem and the
// Go client all speak through it, so none of them needs to import the
// others to agree on what bytes mean.
//
// # Frames
//
// Every frame — request and response — is
//
//	uint32  length of everything after this field (big-endian)
//	uint64  request id (echoed verbatim in the response)
//	byte    request: opcode; response: status (0 = OK, else error code)
//	...     payload
//
// Strings inside payloads are uvarint-length-prefixed bytes.
//
// # Version negotiation
//
// Protocol 1 is the original frame protocol and needs no handshake: a
// client that never sends Hello is a protocol-1 session and every
// protocol-1 opcode keeps working forever. A client that wants more
// sends OpHello first, carrying the highest protocol version it speaks
// plus its feature bits; the server answers with the negotiated version
// — min(client max, server max) — and the feature intersection. The
// rules that keep this additive:
//
//   - New opcodes and new payload fields may only appear on sessions
//     that negotiated a version that includes them. A version-gated
//     opcode on a lower-version session is answered with CodeVersion (a
//     typed rejection), never with CodeBadRequest.
//   - Response payloads may grow only by appending fields, and only on
//     sessions whose negotiated version knows to read them.
//   - A server that predates Hello answers it with CodeBadRequest
//     (unknown opcode); clients treat exactly that as "protocol 1" and
//     downgrade, erroring only when a version-gated feature is used.
//   - A client whose maximum version is below the server's minimum gets
//     CodeVersion back, with the server's supported range in the
//     message.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol versions.
const (
	// V1 is the original mxqd protocol: Ping..EndRead, no handshake.
	V1 = 1
	// V2 adds the Hello handshake, the replication opcodes
	// (SubscribeWAL / WALRecords / FollowerAck), DocStatus, the commit
	// LSN in Update responses and the read-your-writes fields (minimum
	// LSN + park timeout) in Query requests.
	V2 = 2
	// V3 adds the chunked-bootstrap opcodes (SnapManifest / ChunkNeed /
	// ChunkData with ModeSnapshotChunked, gated by FeatChunkedSnap) and
	// appends checkpoint I/O counters to DocStatus responses.
	V3 = 3
	// MinVersion..MaxVersion is the range this build speaks.
	MinVersion = V1
	MaxVersion = V3
)

// Feature bits exchanged in Hello (a bitmask; unknown bits are ignored,
// the negotiated set is the intersection).
const (
	// FeatReplication: the peer serves (server) or wants (client) the
	// WAL-shipping opcodes SubscribeWAL/WALRecords/Snapshot/FollowerAck.
	FeatReplication uint64 = 1 << 0
	// FeatRYW: read-your-writes — Update responses carry the commit LSN
	// and Query requests may carry a minimum LSN + park timeout.
	FeatRYW uint64 = 1 << 1
	// FeatChunkedSnap: content-addressed bootstrap — a subscription may
	// be answered with ModeSnapshotChunked, shipping a chunk manifest and
	// then only the chunks the follower is missing, instead of the whole
	// image. Requires V3.
	FeatChunkedSnap uint64 = 1 << 2
)

// Request opcodes.
const (
	OpPing      byte = 1 // -> OK, empty
	OpListDocs  byte = 2 // -> uvarint n, then n names
	OpLoad      byte = 3 // name, xml -> OK
	OpQuery     byte = 4 // name, query, uvarint nvars, (k, v)*, [v2: uvarint minLSN, uvarint timeoutMillis] -> result items
	OpUpdate    byte = 5 // name, xupdate xml -> uvarint ops, uvarint affected, [v2: uvarint commitLSN]
	OpExplain   byte = 6 // name, query -> plan text
	OpBeginRead byte = 7 // name -> uvarint pinned version
	OpEndRead   byte = 8 // name -> OK

	// V2 opcodes.
	OpHello        byte = 9  // uvarint maxVersion, uvarint features -> uvarint version, uvarint features
	OpSubscribeWAL byte = 10 // name, uvarint afterLSN -> byte mode, uvarint startLSN; then streaming
	OpWALRecords   byte = 11 // primary->follower stream: one encoded record batch
	OpSnapshot     byte = 12 // primary->follower stream: byte last, image chunk bytes
	OpFollowerAck  byte = 13 // follower->primary stream: uvarint appliedLSN
	OpDocStatus    byte = 14 // name -> byte role, uvarint appliedLSN, uvarint lastLSN, [v3: uvarint ckptBytes, uvarint chunksWritten, uvarint chunksReused]

	// V3 opcodes (chunked bootstrap; see ModeSnapshotChunked).
	OpSnapManifest byte = 15 // primary->follower stream: manifest JSON
	OpChunkNeed    byte = 16 // follower->primary stream: uvarint n, then n raw 32-byte hashes the follower is missing
	OpChunkData    byte = 17 // primary->follower stream: byte last, uvarint n, then n x (raw 32-byte hash, uvarint len, bytes)
)

// SubscribeNone is the afterLSN a follower with no local state sends
// in SubscribeWAL: "I have nothing, bootstrap me". An LSN of 0 is NOT
// the same thing — it claims the follower holds the document's initial
// image (which the WAL does not contain) and only the records are
// missing.
const SubscribeNone = ^uint64(0)

// SubscribeWAL response modes.
const (
	// ModeWAL: the primary still holds every record past the follower's
	// LSN; streaming starts directly with WALRecords frames after
	// startLSN (= the request's afterLSN).
	ModeWAL byte = 0
	// ModeSnapshot: the WAL was pruned past the follower's LSN (or the
	// follower diverged); the primary streams a full checkpoint image
	// (Snapshot frames) pinned at startLSN, then WALRecords from there.
	ModeSnapshot byte = 1
	// ModeSnapshotChunked (v3, FeatChunkedSnap): bootstrap by content.
	// The primary sends a SnapManifest frame naming every chunk of the
	// pinned image; the follower answers with one ChunkNeed frame listing
	// the hashes it is missing; the primary ships exactly those in
	// ChunkData frames (last flag on the final one), then WALRecords from
	// startLSN. A re-bootstrapping follower that already holds most
	// chunks transfers only the churn.
	ModeSnapshotChunked byte = 2
)

// DocStatus roles.
const (
	RolePrimary  byte = 0
	RoleFollower byte = 1
)

// Response status codes (0 is OK).
const (
	StatusOK          byte = 0
	CodeBadRequest    byte = 1 // malformed frame or unknown opcode
	CodeNoDocument    byte = 2 // unknown document name
	CodeQuery         byte = 3 // compile/evaluation/update error (message in payload)
	CodeOverloaded    byte = 4 // admission control rejected the request
	CodeShuttingDown  byte = 5 // server is draining
	CodeInternal      byte = 6
	CodeReadNotPinned byte = 7 // OpEndRead without a matching OpBeginRead

	// V2 status codes.
	CodeStale    byte = 8  // read-your-writes park timed out below the requested LSN
	CodeVersion  byte = 9  // protocol version rejection (unknown version, or op needs a higher negotiated version)
	CodeReadOnly byte = 10 // write op on a read-only (follower) server
)

// MaxFrame is the default cap on a frame's length field; a peer
// announcing more is cut off rather than allocated for.
const MaxFrame = 64 << 20

// Frame is one decoded frame: id, op (opcode or status), payload.
type Frame struct {
	ID      uint64
	Op      byte
	Payload []byte
}

// ReadFrame reads one frame, rejecting lengths beyond max (0 means
// MaxFrame).
func ReadFrame(r io.Reader, max uint32) (Frame, error) {
	if max == 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 9 {
		return Frame{}, fmt.Errorf("wire: frame too short (%d)", n)
	}
	if n > max {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return Frame{
		ID:      binary.BigEndian.Uint64(body[:8]),
		Op:      body[8],
		Payload: body[9:],
	}, nil
}

// WriteFrame writes one frame. The payload is assembled by the caller
// (see PayloadBuilder); a single Write keeps frames intact under
// concurrent connection teardown.
func WriteFrame(w io.Writer, f Frame) error {
	buf := make([]byte, 4+8+1+len(f.Payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(8+1+len(f.Payload)))
	binary.BigEndian.PutUint64(buf[4:12], f.ID)
	buf[12] = f.Op
	copy(buf[13:], f.Payload)
	_, err := w.Write(buf)
	return err
}

// PayloadBuilder assembles a payload of uvarints and length-prefixed
// strings.
type PayloadBuilder struct{ b []byte }

// Uvarint appends a uvarint.
func (p *PayloadBuilder) Uvarint(v uint64) *PayloadBuilder {
	p.b = binary.AppendUvarint(p.b, v)
	return p
}

// String appends a length-prefixed string.
func (p *PayloadBuilder) String(s string) *PayloadBuilder {
	p.b = binary.AppendUvarint(p.b, uint64(len(s)))
	p.b = append(p.b, s...)
	return p
}

// Byte appends one raw byte.
func (p *PayloadBuilder) Byte(c byte) *PayloadBuilder {
	p.b = append(p.b, c)
	return p
}

// Raw appends raw bytes with no length prefix (stream chunks).
func (p *PayloadBuilder) Raw(b []byte) *PayloadBuilder {
	p.b = append(p.b, b...)
	return p
}

// Bytes returns the assembled payload.
func (p *PayloadBuilder) Bytes() []byte { return p.b }

// PayloadReader decodes a payload assembled by PayloadBuilder.
type PayloadReader struct{ b []byte }

// NewPayloadReader wraps a payload.
func NewPayloadReader(b []byte) *PayloadReader { return &PayloadReader{b: b} }

// Uvarint reads a uvarint.
func (p *PayloadReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		return 0, errors.New("wire: truncated uvarint")
	}
	p.b = p.b[n:]
	return v, nil
}

// String reads a length-prefixed string.
func (p *PayloadReader) String() (string, error) {
	n, err := p.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.b)) {
		return "", errors.New("wire: truncated string")
	}
	s := string(p.b[:n])
	p.b = p.b[n:]
	return s, nil
}

// Byte reads one raw byte.
func (p *PayloadReader) Byte() (byte, error) {
	if len(p.b) == 0 {
		return 0, errors.New("wire: truncated byte")
	}
	c := p.b[0]
	p.b = p.b[1:]
	return c, nil
}

// Rest returns every unread byte (stream chunks).
func (p *PayloadReader) Rest() []byte {
	b := p.b
	p.b = nil
	return b
}

// Remaining reports the unread byte count.
func (p *PayloadReader) Remaining() int { return len(p.b) }

// Result item kind codes on the wire.
const (
	KindElement byte = 1
	KindText    byte = 2
	KindComment byte = 3
	KindPI      byte = 4
	KindAttr    byte = 5
	KindDoc     byte = 6
	KindNumber  byte = 7
	KindString  byte = 8
	KindBoolean byte = 9
)

var kindCodes = map[string]byte{
	"element": KindElement, "text": KindText, "comment": KindComment,
	"processing-instruction": KindPI, "attribute": KindAttr,
	"document": KindDoc, "number": KindNumber, "string": KindString,
	"boolean": KindBoolean,
}

// KindCode maps mxq's item kind string to its wire code (0 if unknown).
func KindCode(name string) byte { return kindCodes[name] }

// KindName maps a wire kind code back to mxq's item kind string.
func KindName(c byte) string {
	for n, k := range kindCodes {
		if k == c {
			return n
		}
	}
	return fmt.Sprintf("kind(%d)", c)
}

// Negotiate computes the server-side Hello outcome for a client
// announcing clientMax/clientFeats against a server speaking
// [MinVersion, MaxVersion] with serverFeats. ok=false means the client
// speaks no version this server does (answer CodeVersion).
func Negotiate(clientMax, serverFeats, clientFeats uint64) (version uint64, feats uint64, ok bool) {
	if clientMax < MinVersion {
		return 0, 0, false
	}
	version = clientMax
	if version > MaxVersion {
		version = MaxVersion
	}
	return version, serverFeats & clientFeats, true
}
