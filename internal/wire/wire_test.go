package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var p PayloadBuilder
	p.String("doc").Uvarint(42).Byte(7).Raw([]byte("tail"))
	in := Frame{ID: 99, Op: OpQuery, Payload: p.Bytes()}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 99 || out.Op != OpQuery {
		t.Fatalf("frame header = %d/%d", out.ID, out.Op)
	}
	r := NewPayloadReader(out.Payload)
	if s, err := r.String(); err != nil || s != "doc" {
		t.Fatalf("string = %q, %v", s, err)
	}
	if v, err := r.Uvarint(); err != nil || v != 42 {
		t.Fatalf("uvarint = %d, %v", v, err)
	}
	if c, err := r.Byte(); err != nil || c != 7 {
		t.Fatalf("byte = %d, %v", c, err)
	}
	if rest := r.Rest(); string(rest) != "tail" {
		t.Fatalf("rest = %q", rest)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{ID: 1, Op: OpPing, Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 32); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: %v", err)
	}
	short := []byte{0, 0, 0, 3, 1, 2, 3}
	if _, err := ReadFrame(bytes.NewReader(short), 0); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestTruncatedPayload(t *testing.T) {
	var p PayloadBuilder
	p.Uvarint(1000) // string length prefix with no bytes behind it
	r := NewPayloadReader(p.Bytes())
	if _, err := r.String(); err == nil {
		t.Fatal("truncated string accepted")
	}
	if _, err := NewPayloadReader(nil).Uvarint(); err == nil {
		t.Fatal("empty uvarint accepted")
	}
	if _, err := NewPayloadReader(nil).Byte(); err == nil {
		t.Fatal("empty byte accepted")
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		clientMax, want uint64
		ok              bool
	}{
		{0, 0, false},          // below the server's minimum: typed rejection
		{V1, V1, true},         // plain old protocol
		{V2, V2, true},         // exact match
		{99, MaxVersion, true}, // future client: server picks its own max
	}
	for _, c := range cases {
		v, _, ok := Negotiate(c.clientMax, FeatReplication|FeatRYW, FeatReplication|FeatRYW)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("Negotiate(max=%d) = %d, %v; want %d, %v", c.clientMax, v, ok, c.want, c.ok)
		}
	}
	// Feature bits intersect; unknown bits vanish.
	_, feats, ok := Negotiate(V2, FeatReplication, FeatReplication|FeatRYW|1<<60)
	if !ok || feats != FeatReplication {
		t.Fatalf("feature intersection = %b, %v", feats, ok)
	}
}

func TestKindCodes(t *testing.T) {
	for _, name := range []string{
		"element", "text", "comment", "processing-instruction",
		"attribute", "document", "number", "string", "boolean",
	} {
		c := KindCode(name)
		if c == 0 {
			t.Fatalf("no code for %q", name)
		}
		if back := KindName(c); back != name {
			t.Fatalf("KindName(KindCode(%q)) = %q", name, back)
		}
	}
	if KindCode("nope") != 0 {
		t.Fatal("unknown kind got a code")
	}
}
