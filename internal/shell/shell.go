// Package shell implements the command interpreter behind cmd/mxqshell:
// a line-oriented front end over an mxq.Database (load / query / update /
// stats / checkpoint). It lives in its own package so the command logic
// is unit-testable without a terminal.
package shell

import (
	"fmt"
	"io"
	"os"
	"strings"

	"mxq"
)

// Shell interprets commands against a database.
type Shell struct {
	db  *mxq.Database
	out io.Writer
}

// New returns a shell writing its output to out.
func New(db *mxq.Database, out io.Writer) *Shell {
	return &Shell{db: db, out: out}
}

// LoadFile shreds the XML file at path into the database under name.
func (s *Shell) LoadFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = s.db.LoadXML(name, f)
	return err
}

// Execute interprets one command line and reports whether the shell
// should exit.
func (s *Shell) Execute(line string) (quit bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return false
	}
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	// rest(i) returns everything after the i-th space-separated token,
	// so queries may contain spaces.
	rest := func(i int) string {
		parts := strings.SplitN(line, " ", i+1)
		if len(parts) > i {
			return parts[i]
		}
		return ""
	}
	switch cmd {
	case "quit", "exit":
		return true
	case "help":
		fmt.Fprintln(s.out, "commands: load <name> <file> | docs | q <name> <xpath> | explain <name> <xpath> | u <name> <file.xu> | xml <name> | stats <name> | checkpoint <name> | quit")
	case "docs":
		for _, n := range s.db.Documents() {
			fmt.Fprintln(s.out, " ", n)
		}
	case "load":
		if arg(1) == "" || arg(2) == "" {
			s.errorf("usage: load <name> <file>")
			return false
		}
		if err := s.LoadFile(arg(1), arg(2)); err != nil {
			s.errorf("%v", err)
		}
	case "q":
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		res, err := doc.Query(rest(2))
		if err != nil {
			s.errorf("%v", err)
			return false
		}
		for i, item := range res {
			if item.XML != "" {
				fmt.Fprintf(s.out, "%4d: %s\n", i+1, item.XML)
			} else {
				fmt.Fprintf(s.out, "%4d: [%s] %s\n", i+1, item.Kind, item.Value)
			}
		}
		fmt.Fprintf(s.out, "(%d items)\n", len(res))
	case "explain":
		// Render the compiled sequence-at-a-time plan without running it.
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		prep, err := doc.Prepare(rest(2))
		if err != nil {
			s.errorf("%v", err)
			return false
		}
		fmt.Fprint(s.out, prep.Explain())
	case "u":
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		data, err := os.ReadFile(arg(2))
		if err != nil {
			s.errorf("%v", err)
			return false
		}
		res, err := doc.Update(string(data))
		if err != nil {
			s.errorf("%v", err)
			return false
		}
		fmt.Fprintf(s.out, "ok: %d commands, %d nodes affected\n", res.Ops, res.Affected)
	case "xml":
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		if err := doc.SerializeTo(s.out, "  "); err != nil {
			s.errorf("%v", err)
		}
	case "stats":
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		st := doc.Stats()
		fmt.Fprintf(s.out, "live nodes: %d\ntuples:     %d (%d pages × %d)\nfill:       %.1f%%\ncommits:    %d (aborts %d)\n",
			st.LiveNodes, st.Tuples, st.Pages, st.PageSize, 100*st.Fill, st.Commits, st.Aborts)
		if st.WALBytes > 0 || st.WALRecords > 0 || st.Checkpoints > 0 {
			fmt.Fprintf(s.out, "wal tail:   %d bytes, %d records (checkpoints this session: %d)\n",
				st.WALBytes, st.WALRecords, st.Checkpoints)
		}
	case "checkpoint":
		doc := s.doc(arg(1))
		if doc == nil {
			return false
		}
		if err := doc.Checkpoint(); err != nil {
			s.errorf("%v", err)
		} else {
			// Online checkpoint: commits kept landing while it streamed.
			fmt.Fprintln(s.out, "ok (online)")
		}
	default:
		fmt.Fprintf(s.out, "unknown command %q (try 'help')\n", cmd)
	}
	return false
}

func (s *Shell) doc(name string) *mxq.Document {
	d, ok := s.db.Document(name)
	if !ok {
		s.errorf("no document %q (try 'docs')", name)
		return nil
	}
	return d
}

func (s *Shell) errorf(format string, args ...any) {
	fmt.Fprintf(s.out, "error: "+format+"\n", args...)
}
