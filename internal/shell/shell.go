// Package shell implements the command interpreter behind cmd/mxqshell:
// a line-oriented front end over an mxq.Database (load / query / update /
// stats / checkpoint). It lives in its own package so the command logic
// is unit-testable without a terminal.
package shell

import (
	"fmt"
	"io"
	"os"
	"strings"

	"mxq"
)

// Shell interprets commands against a database.
type Shell struct {
	db   *mxq.Database
	out  io.Writer // command results
	errw io.Writer // error messages ("error: ..." lines)
}

// New returns a shell writing results to out and errors to errw (nil
// means out — errors interleave with results, the old behavior).
func New(db *mxq.Database, out, errw io.Writer) *Shell {
	if errw == nil {
		errw = out
	}
	return &Shell{db: db, out: out, errw: errw}
}

// LoadFile shreds the XML file at path into the database under name.
func (s *Shell) LoadFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = s.db.LoadXML(name, f)
	return err
}

// Execute interprets one command line. quit reports whether the shell
// should exit; err is non-nil when the command failed (after the error
// message has already been printed to the error writer), so a driver
// can turn any failure into a non-zero exit status.
func (s *Shell) Execute(line string) (quit bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return false, nil
	}
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	// rest(i) returns everything after the i-th space-separated token,
	// so queries may contain spaces.
	rest := func(i int) string {
		parts := strings.SplitN(line, " ", i+1)
		if len(parts) > i {
			return parts[i]
		}
		return ""
	}
	switch cmd {
	case "quit", "exit":
		return true, nil
	case "help":
		fmt.Fprintln(s.out, "commands: load <name> <file> | docs | q <name> <xpath> | explain <name> <xpath> | u <name> <file.xu> | xml <name> | stats <name> | checkpoint <name> | quit")
	case "docs":
		for _, n := range s.db.Documents() {
			fmt.Fprintln(s.out, " ", n)
		}
	case "load":
		if arg(1) == "" || arg(2) == "" {
			return false, s.errorf("usage: load <name> <file>")
		}
		if err := s.LoadFile(arg(1), arg(2)); err != nil {
			return false, s.errorf("%v", err)
		}
	case "q":
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		res, err := doc.Query(rest(2))
		if err != nil {
			return false, s.errorf("%v", err)
		}
		for i, item := range res {
			if item.XML != "" {
				fmt.Fprintf(s.out, "%4d: %s\n", i+1, item.XML)
			} else {
				fmt.Fprintf(s.out, "%4d: [%s] %s\n", i+1, item.Kind, item.Value)
			}
		}
		fmt.Fprintf(s.out, "(%d items)\n", len(res))
	case "explain":
		// Render the compiled sequence-at-a-time plan without running it.
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		prep, err := doc.Prepare(rest(2))
		if err != nil {
			return false, s.errorf("%v", err)
		}
		fmt.Fprint(s.out, prep.Explain())
	case "u":
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		data, err := os.ReadFile(arg(2))
		if err != nil {
			return false, s.errorf("%v", err)
		}
		res, err := doc.Update(string(data))
		if err != nil {
			return false, s.errorf("%v", err)
		}
		fmt.Fprintf(s.out, "ok: %d commands, %d nodes affected\n", res.Ops, res.Affected)
	case "xml":
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		if err := doc.SerializeTo(s.out, "  "); err != nil {
			return false, s.errorf("%v", err)
		}
	case "stats":
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		st := doc.Stats()
		fmt.Fprintf(s.out, "live nodes: %d\ntuples:     %d (%d pages × %d)\nfill:       %.1f%%\ncommits:    %d (aborts %d)\n",
			st.LiveNodes, st.Tuples, st.Pages, st.PageSize, 100*st.Fill, st.Commits, st.Aborts)
		if st.WALBytes > 0 || st.WALRecords > 0 || st.Checkpoints > 0 {
			fmt.Fprintf(s.out, "wal tail:   %d bytes, %d records (checkpoints this session: %d)\n",
				st.WALBytes, st.WALRecords, st.Checkpoints)
		}
		if st.CkptChunksWritten > 0 || st.CkptChunksReused > 0 {
			fmt.Fprintf(s.out, "ckpt io:    %d bytes in %d chunks written, %d reused (dedupe %.1f%%)\n",
				st.CkptBytesWritten, st.CkptChunksWritten, st.CkptChunksReused, 100*st.CkptDedupeRatio)
		}
	case "checkpoint":
		doc, err := s.doc(arg(1))
		if err != nil {
			return false, err
		}
		if err := doc.Checkpoint(); err != nil {
			return false, s.errorf("%v", err)
		}
		// Online checkpoint: commits kept landing while it streamed.
		fmt.Fprintln(s.out, "ok (online)")
	default:
		return false, s.errorf("unknown command %q (try 'help')", cmd)
	}
	return false, nil
}

func (s *Shell) doc(name string) (*mxq.Document, error) {
	d, ok := s.db.Document(name)
	if !ok {
		return nil, s.errorf("no document %q (try 'docs')", name)
	}
	return d, nil
}

// errorf prints one "error: ..." line to the error writer and returns
// the same message as an error for the caller's exit status.
func (s *Shell) errorf(format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	fmt.Fprintf(s.errw, "error: %v\n", err)
	return err
}
