package shell

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mxq"
)

func newShell(t *testing.T) (*Shell, *strings.Builder, *strings.Builder) {
	t.Helper()
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	return New(db, &out, &errw), &out, &errw
}

// run executes a line that must succeed.
func run(t *testing.T, sh *Shell, line string) {
	t.Helper()
	if _, err := sh.Execute(line); err != nil {
		t.Fatalf("%q failed: %v", line, err)
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadQueryStats(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	path := writeFile(t, dir, "z.xml", `<zoo><animal>tiger</animal><animal>crane</animal></zoo>`)

	if quit, err := sh.Execute("load zoo " + path); quit || err != nil {
		t.Fatalf("load: quit=%v err=%v", quit, err)
	}
	run(t, sh, "docs")
	if !strings.Contains(out.String(), "zoo") {
		t.Fatalf("docs output: %q", out.String())
	}
	out.Reset()
	run(t, sh, "q zoo count(//animal)")
	if !strings.Contains(out.String(), "[number] 2") {
		t.Fatalf("query output: %q", out.String())
	}
	out.Reset()
	run(t, sh, "q zoo //animal[1]")
	if !strings.Contains(out.String(), "<animal>tiger</animal>") {
		t.Fatalf("element output: %q", out.String())
	}
	out.Reset()
	run(t, sh, "stats zoo")
	if !strings.Contains(out.String(), "live nodes: 5") {
		t.Fatalf("stats output: %q", out.String())
	}
}

func TestUpdateAndXML(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml", `<zoo><animal>tiger</animal></zoo>`)
	xu := writeFile(t, dir, "add.xu",
		`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
		   <xupdate:append select="/zoo"><animal>heron</animal></xupdate:append>
		 </xupdate:modifications>`)
	run(t, sh, "load zoo "+doc)
	out.Reset()
	run(t, sh, "u zoo "+xu)
	if !strings.Contains(out.String(), "ok: 1 commands, 1 nodes affected") {
		t.Fatalf("update output: %q", out.String())
	}
	out.Reset()
	run(t, sh, "xml zoo")
	if !strings.Contains(out.String(), "heron") {
		t.Fatalf("xml output: %q", out.String())
	}
}

func TestExplain(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml",
		`<zoo><cage><animal>tiger</animal></cage><cage><animal>crane</animal></cage></zoo>`)
	run(t, sh, "load zoo "+doc)
	out.Reset()
	run(t, sh, "explain zoo //cage//animal")
	got := out.String()
	for _, want := range []string{"descendant::cage", "descendant::animal", "seq (fused //)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output missing %q:\n%s", want, got)
		}
	}
	out.Reset()
	run(t, sh, "explain zoo //animal[last()]")
	if !strings.Contains(out.String(), "per-node") {
		t.Fatalf("explain output missing per-node fallback: %q", out.String())
	}
}

// TestCommandFailures is the table test for the failure contract: every
// failing command must return a non-nil error (the driver's exit
// status) and print one "error:" line to the error writer, not stdout.
func TestCommandFailures(t *testing.T) {
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml", `<z/>`)
	cases := []struct {
		name    string
		line    string
		wantErr string // substring of the error / stderr line
	}{
		{"unknown command", "frobnicate", "unknown command"},
		{"load usage", "load onlyname", "usage:"},
		{"load missing file", "load x /nonexistent/file.xml", "no such file"},
		{"query unknown doc", "q ghost //x", `no document "ghost"`},
		{"query parse error", "q z //[bad", "xpath"},
		{"explain parse error", "explain z //[bad", "xpath"},
		{"update missing file", "u z /nonexistent/mods.xu", "no such file"},
		{"checkpoint without dir", "checkpoint z", "error"},
		{"stats unknown doc", "stats ghost", `no document "ghost"`},
		{"xml unknown doc", "xml ghost", `no document "ghost"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh, out, errw := newShell(t)
			run(t, sh, "load z "+doc)
			out.Reset()
			quit, err := sh.Execute(tc.line)
			if quit {
				t.Fatal("failed command quit the shell")
			}
			if err == nil {
				t.Fatalf("%q returned nil error", tc.line)
			}
			if !strings.Contains(err.Error(), tc.wantErr) && !strings.Contains(errw.String(), tc.wantErr) {
				t.Fatalf("error %q / stderr %q missing %q", err, errw.String(), tc.wantErr)
			}
			if !strings.HasPrefix(errw.String(), "error: ") {
				t.Fatalf("stderr = %q, want an error: line", errw.String())
			}
			if strings.Contains(out.String(), "error:") {
				t.Fatalf("error leaked to stdout: %q", out.String())
			}
			// The shell keeps working after a failure.
			out.Reset()
			run(t, sh, "q z count(/z)")
			if !strings.Contains(out.String(), "[number] 1") {
				t.Fatalf("query after failure: %q", out.String())
			}
		})
	}
}

// TestErrorWriterDefaultsToOut keeps the old single-writer behavior for
// callers passing nil.
func TestErrorWriterDefaultsToOut(t *testing.T) {
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := New(db, &out, nil)
	if _, err := sh.Execute("frobnicate"); err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("out = %q, want the error inline", out.String())
	}
}

func TestQuitAndHelp(t *testing.T) {
	sh, out, _ := newShell(t)
	q1, err1 := sh.Execute("quit")
	q2, err2 := sh.Execute("exit")
	if !q1 || !q2 || err1 != nil || err2 != nil {
		t.Fatal("quit/exit did not signal cleanly")
	}
	if quit, err := sh.Execute(""); quit || err != nil {
		t.Fatal("empty line should be a no-op")
	}
	run(t, sh, "help")
	if !strings.Contains(out.String(), "commands:") {
		t.Fatalf("help output: %q", out.String())
	}
}
