package shell

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mxq"
)

func newShell(t *testing.T) (*Shell, *strings.Builder, *mxq.Database) {
	t.Helper()
	db, err := mxq.Open(mxq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	return New(db, &out), &out, db
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadQueryStats(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	path := writeFile(t, dir, "z.xml", `<zoo><animal>tiger</animal><animal>crane</animal></zoo>`)

	if quit := sh.Execute("load zoo " + path); quit {
		t.Fatal("load quit")
	}
	sh.Execute("docs")
	if !strings.Contains(out.String(), "zoo") {
		t.Fatalf("docs output: %q", out.String())
	}
	out.Reset()
	sh.Execute("q zoo count(//animal)")
	if !strings.Contains(out.String(), "[number] 2") {
		t.Fatalf("query output: %q", out.String())
	}
	out.Reset()
	sh.Execute("q zoo //animal[1]")
	if !strings.Contains(out.String(), "<animal>tiger</animal>") {
		t.Fatalf("element output: %q", out.String())
	}
	out.Reset()
	sh.Execute("stats zoo")
	if !strings.Contains(out.String(), "live nodes: 5") {
		t.Fatalf("stats output: %q", out.String())
	}
}

func TestUpdateAndXML(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml", `<zoo><animal>tiger</animal></zoo>`)
	xu := writeFile(t, dir, "add.xu",
		`<xupdate:modifications version="1.0" xmlns:xupdate="http://www.xmldb.org/xupdate">
		   <xupdate:append select="/zoo"><animal>heron</animal></xupdate:append>
		 </xupdate:modifications>`)
	sh.Execute("load zoo " + doc)
	out.Reset()
	sh.Execute("u zoo " + xu)
	if !strings.Contains(out.String(), "ok: 1 commands, 1 nodes affected") {
		t.Fatalf("update output: %q", out.String())
	}
	out.Reset()
	sh.Execute("xml zoo")
	if !strings.Contains(out.String(), "heron") {
		t.Fatalf("xml output: %q", out.String())
	}
}

func TestExplain(t *testing.T) {
	sh, out, _ := newShell(t)
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml",
		`<zoo><cage><animal>tiger</animal></cage><cage><animal>crane</animal></cage></zoo>`)
	sh.Execute("load zoo " + doc)
	out.Reset()
	sh.Execute("explain zoo //cage//animal")
	got := out.String()
	for _, want := range []string{"descendant::cage", "descendant::animal", "seq (fused //)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output missing %q:\n%s", want, got)
		}
	}
	out.Reset()
	sh.Execute("explain zoo //animal[last()]")
	if !strings.Contains(out.String(), "per-node") {
		t.Fatalf("explain output missing per-node fallback: %q", out.String())
	}
	out.Reset()
	sh.Execute("explain zoo //[bad")
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("explain parse-error output: %q", out.String())
	}
}

func TestErrorsAndUnknown(t *testing.T) {
	sh, out, _ := newShell(t)
	sh.Execute("q ghost //x")
	if !strings.Contains(out.String(), `no document "ghost"`) {
		t.Fatalf("missing-doc output: %q", out.String())
	}
	out.Reset()
	sh.Execute("frobnicate")
	if !strings.Contains(out.String(), "unknown command") {
		t.Fatalf("unknown output: %q", out.String())
	}
	out.Reset()
	sh.Execute("load onlyname")
	if !strings.Contains(out.String(), "usage:") {
		t.Fatalf("usage output: %q", out.String())
	}
	out.Reset()
	sh.Execute("load x /nonexistent/file.xml")
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("load error output: %q", out.String())
	}
	out.Reset()
	dir := t.TempDir()
	doc := writeFile(t, dir, "z.xml", `<z/>`)
	sh.Execute("load z " + doc)
	out.Reset()
	sh.Execute("q z //[bad")
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("bad query output: %q", out.String())
	}
	out.Reset()
	sh.Execute("checkpoint z") // no durability dir configured
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("checkpoint output: %q", out.String())
	}
}

func TestQuitAndHelp(t *testing.T) {
	sh, out, _ := newShell(t)
	if !sh.Execute("quit") || !sh.Execute("exit") {
		t.Fatal("quit/exit did not signal")
	}
	if sh.Execute("") {
		t.Fatal("empty line quit")
	}
	sh.Execute("help")
	if !strings.Contains(out.String(), "commands:") {
		t.Fatalf("help output: %q", out.String())
	}
}
