package tx

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mxq/internal/core"
	"mxq/internal/serialize"
	"mxq/internal/shred"
	"mxq/internal/wal"
	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

func buildStore(t *testing.T, doc string, ps int) *core.Store {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(tr, core.Options{PageSize: ps, FillFactor: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func frag(t *testing.T, s string) *shred.Tree {
	t.Helper()
	tr, err := shred.ParseFragment(s, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func findElem(t *testing.T, v xenc.DocView, name string) xenc.Pre {
	t.Helper()
	ns, err := xpath.MustParse("//" + name).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) == 0 {
		t.Fatalf("element %q not found", name)
	}
	return ns[0].Pre
}

const doc = `<lib><shelf id="s1"><book>A</book><book>B</book></shelf><shelf id="s2"><book>C</book></shelf></lib>`

func TestCommitMakesChangesVisible(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	tx := m.Begin()
	shelf := findElem(t, tx, "shelf")
	if _, err := tx.AppendChild(shelf, frag(t, `<book>D</book>`)); err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible to readers.
	m.View(func(v xenc.DocView) error {
		if n, _ := xpath.MustParse(`//book`).Select(v); len(n) != 3 {
			t.Fatalf("uncommitted change visible: %d books", len(n))
		}
		return nil
	})
	// Visible inside the transaction (read your writes).
	if n, _ := xpath.MustParse(`//book`).Select(tx); len(n) != 4 {
		t.Fatalf("tx does not see its own write: %d books", len(n))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m.View(func(v xenc.DocView) error {
		if n, _ := xpath.MustParse(`//book`).Select(v); len(n) != 4 {
			t.Fatalf("committed change lost: %d books", len(n))
		}
		return nil
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c, a := m.Stats(); c != 1 || a != 0 {
		t.Fatalf("stats = %d/%d", c, a)
	}
}

func TestAbortDiscardsChanges(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	tx := m.Begin()
	shelf := findElem(t, tx, "shelf")
	if _, err := tx.AppendChild(shelf, frag(t, `<book>D</book>`)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	m.View(func(v xenc.DocView) error {
		if n, _ := xpath.MustParse(`//book`).Select(v); len(n) != 3 {
			t.Fatalf("aborted change visible: %d books", len(n))
		}
		return nil
	})
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("commit after abort = %v, want ErrDone", err)
	}
}

func TestEmptyCommitIsNoOp(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := m.Version(); v != 0 {
		t.Fatalf("version = %d after empty commit", v)
	}
}

func TestPageConflictAborts(t *testing.T) {
	s := buildStore(t, doc, 16) // one page: everything conflicts
	m := NewManager(s, nil)
	t1 := m.Begin()
	t2 := m.Begin()
	shelf1 := findElem(t, t1, "shelf")
	if _, err := t1.AppendChild(shelf1, frag(t, `<book>X</book>`)); err != nil {
		t.Fatal(err)
	}
	shelf2 := findElem(t, t2, "shelf")
	if _, err := t2.AppendChild(shelf2, frag(t, `<book>Y</book>`)); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// t2 is poisoned; only abort works.
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("poisoned commit = %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if c, a := m.Stats(); c != 1 || a != 1 {
		t.Fatalf("stats = %d/%d", c, a)
	}
}

// TestDisjointPagesCommitConcurrently is the commutativity claim: two
// writers under different logical pages (but sharing the root as
// ancestor) both commit; the root's size absorbs both delta increments.
func TestDisjointPagesCommitConcurrently(t *testing.T) {
	// Small pages so the two shelves land on different pages.
	big := `<lib><shelf id="s1">` + strings.Repeat(`<book>A</book>`, 10) +
		`</shelf><shelf id="s2">` + strings.Repeat(`<book>C</book>`, 10) + `</shelf></lib>`
	s := buildStore(t, big, 16)
	m := NewManager(s, nil)
	rootSize := s.Size(s.Root())

	t1 := m.Begin()
	t2 := m.Begin()
	s1 := mustSelect(t, t1, `//shelf[@id="s1"]`)
	s2 := mustSelect(t, t2, `//shelf[@id="s2"]`)
	if t1.clone.PhysPage(s1) == t2.clone.PhysPage(s2) {
		t.Skip("layout put both shelves on one page; enlarge the document")
	}
	if _, err := t1.AppendChild(s1, frag(t, `<book>X</book>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.AppendChild(s2, frag(t, `<book>Y</book>`)); err != nil {
		t.Fatalf("disjoint writers conflicted: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.Size(s.Root()); got != rootSize+4 {
		t.Fatalf("root size = %d, want %d (two delta increments of 2)", got, rootSize+4)
	}
	if n, _ := xpath.MustParse(`//book`).Select(s); len(n) != 22 {
		t.Fatalf("books = %d, want 22", len(n))
	}
}

func mustSelect(t *testing.T, v xenc.DocView, q string) xenc.Pre {
	t.Helper()
	ns, err := xpath.MustParse(q).Select(v)
	if err != nil || len(ns) == 0 {
		t.Fatalf("select %s: %v (%d results)", q, err, len(ns))
	}
	return ns[0].Pre
}

// TestRootLockingAblation: with LockAncestors on, the same disjoint
// writers conflict on the root's page — the bottleneck the paper's delta
// scheme removes.
func TestRootLockingAblation(t *testing.T) {
	big := `<lib><shelf id="s1">` + strings.Repeat(`<book>A</book>`, 10) +
		`</shelf><shelf id="s2">` + strings.Repeat(`<book>C</book>`, 10) + `</shelf></lib>`
	s := buildStore(t, big, 16)
	m := NewManager(s, nil)
	m.SetLockAncestors(true)
	t1 := m.Begin()
	t2 := m.Begin()
	s1 := mustSelect(t, t1, `//shelf[@id="s1"]`)
	s2 := mustSelect(t, t2, `//shelf[@id="s2"]`)
	if _, err := t1.AppendChild(s1, frag(t, `<book>X</book>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.AppendChild(s2, frag(t, `<book>Y</book>`)); !errors.Is(err, ErrConflict) {
		t.Fatalf("root-locking mode did not conflict: %v", err)
	}
	t1.Commit()
	t2.Abort()
}

func TestConcurrentWritersStress(t *testing.T) {
	shelves := 8
	var sb strings.Builder
	sb.WriteString(`<lib>`)
	for i := 0; i < shelves; i++ {
		fmt.Fprintf(&sb, `<shelf id="s%d">%s</shelf>`, i, strings.Repeat(`<book>B</book>`, 12))
	}
	sb.WriteString(`</lib>`)
	s := buildStore(t, sb.String(), 16)
	m := NewManager(s, nil)

	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for w := 0; w < shelves; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for try := 0; try < 40; try++ {
				tx := m.Begin()
				ns, err := xpath.MustParse(fmt.Sprintf(`//shelf[@id="s%d"]`, w)).Select(tx)
				if err != nil || len(ns) == 0 {
					tx.Abort()
					continue
				}
				if _, err := tx.AppendChild(ns[0].Pre, frag(t, `<book>N</book>`)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err == nil {
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	books := 0
	m.View(func(v xenc.DocView) error {
		n, _ := xpath.MustParse(`//book`).Select(v)
		books = len(n)
		return nil
	})
	if books != shelves*12+committed {
		t.Fatalf("books = %d, want %d + %d committed", books, shelves*12, committed)
	}
	if committed == 0 {
		t.Fatal("no transaction ever committed")
	}
}

func TestValidatorBlocksCommit(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	m.SetValidator(func(v xenc.DocView) error {
		ns, _ := xpath.MustParse(`//banned`).Select(v)
		if len(ns) > 0 {
			return fmt.Errorf("banned element present")
		}
		return nil
	})
	tx := m.Begin()
	shelf := findElem(t, tx, "shelf")
	if _, err := tx.AppendChild(shelf, frag(t, `<banned/>`)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("validator did not block commit")
	}
	m.View(func(v xenc.DocView) error {
		if n, _ := xpath.MustParse(`//banned`).Select(v); len(n) != 0 {
			t.Fatal("invalid content leaked into the base store")
		}
		return nil
	})
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "doc.wal")
	log, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	// Checkpoint the initial state, then run committed transactions with
	// the WAL attached.
	var checkpoint bytes.Buffer
	if _, err := m.Checkpoint(&checkpoint); err != nil {
		t.Fatal(err)
	}
	m = NewManager(s, log)
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		shelf := mustSelect(t, tx, `//shelf[@id="s2"]`)
		if _, err := tx.AppendChild(shelf, frag(t, fmt.Sprintf(`<book>R%d</book>`, i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := serialize.String(s, s.Root(), serialize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log.Close()

	// "Crash": rebuild from checkpoint + WAL only.
	log2, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	recovered, err := Recover(bytes.NewReader(checkpoint.Bytes()), log2)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := serialize.String(recovered, recovered.Root(), serialize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered document differs:\nwant %s\ngot  %s", want, got)
	}
}

// TestRecoveryAfterCheckpointTruncate reproduces the full durability
// cycle an embedding application drives: commit, checkpoint (which
// truncates the WAL), restart, commit again, restart again. The second
// restart must see the post-checkpoint commit. This is a regression
// test: a truncated log reopened with its LSN counter at zero used to
// hand out LSNs the checkpoint already covered, so the replay of the
// second recovery silently skipped the commit.
func TestRecoveryAfterCheckpointTruncate(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "doc.wal")
	log, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := buildStore(t, doc, 16)
	m := NewManager(s, log)

	commitBook := func(m *Manager, name string) {
		t.Helper()
		tx := m.Begin()
		shelf := mustSelect(t, tx, `//shelf[@id="s1"]`)
		if _, err := tx.AppendChild(shelf, frag(t, `<book>`+name+`</book>`)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Session 1: commit, checkpoint, prune the now-redundant WAL records.
	commitBook(m, "before-ckpt")
	var checkpoint bytes.Buffer
	lsn, err := m.Checkpoint(&checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Prune(lsn); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Session 2: recover, commit one more book.
	log2, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Recover(bytes.NewReader(checkpoint.Bytes()), log2)
	if err != nil {
		t.Fatal(err)
	}
	commitBook(NewManager(s2, log2), "after-ckpt")
	log2.Close()

	// Session 3: the post-checkpoint commit must survive.
	log3, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	s3, err := Recover(bytes.NewReader(checkpoint.Bytes()), log3)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := xpath.MustParse(`//book[text()="after-ckpt"]`).Select(s3); len(n) != 1 {
		t.Fatalf("post-checkpoint commit lost on recovery: found %d matching books", len(n))
	}
}

func TestRecoveryWithTornTail(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "doc.wal")
	log, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	var checkpoint bytes.Buffer
	if _, err := m.Checkpoint(&checkpoint); err != nil {
		t.Fatal(err)
	}
	m = NewManager(s, log)
	for i := 0; i < 3; i++ {
		tx := m.Begin()
		shelf := mustSelect(t, tx, `//shelf[@id="s1"]`)
		if _, err := tx.AppendChild(shelf, frag(t, `<book>T</book>`)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	// Corrupt the tail of the active segment: append garbage simulating
	// a crash mid-append.
	segs, err := filepath.Glob(logPath + ".*")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{42, 1, 0, 0, 99})
	f.Close()

	log2, err := wal.Open(logPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if log2.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d, want 3 (torn tail dropped)", log2.LastLSN())
	}
	recovered, err := Recover(bytes.NewReader(checkpoint.Bytes()), log2)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := xpath.MustParse(`//book[text()="T"]`).Select(recovered); len(n) != 3 {
		t.Fatalf("recovered inserts = %d, want 3", len(n))
	}
}

func TestCheckpointTruncatesRecoveryWork(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "doc.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	s := buildStore(t, doc, 16)
	m := NewManager(s, log)
	for i := 0; i < 4; i++ {
		tx := m.Begin()
		shelf := mustSelect(t, tx, `//shelf[@id="s1"]`)
		tx.AppendChild(shelf, frag(t, `<book>K</book>`))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var checkpoint bytes.Buffer
	if _, err := m.Checkpoint(&checkpoint); err != nil {
		t.Fatal(err)
	}
	// Recovery from this checkpoint replays nothing (LSNs all covered).
	recovered, err := Recover(bytes.NewReader(checkpoint.Bytes()), log)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := xpath.MustParse(`//book[text()="K"]`).Select(recovered); len(n) != 4 {
		t.Fatalf("checkpointed books = %d, want 4", len(n))
	}
}

func TestXUpdateThroughTransaction(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	tx := m.Begin()
	// The Tx implements xupdate.Target; drive it with value + structure ops.
	shelf := mustSelect(t, tx, `//shelf[@id="s1"]`)
	if err := tx.SetAttr(shelf, "label", "fiction"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rename(shelf, "case"); err != nil {
		t.Fatal(err)
	}
	book := mustSelect(t, tx, `//case/book[1]`)
	if err := tx.Delete(book); err != nil {
		t.Fatal(err)
	}
	txt := mustSelect(t, tx, `//case/book[1]/text()`)
	if err := tx.SetValue(txt, "B2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n, _ := xpath.MustParse(`//case[@label="fiction"]/book[text()="B2"]`).Select(s); len(n) != 1 {
		t.Fatalf("combined tx ops not applied: %v", n)
	}
}

func TestInsertBeforeAndChildAtThroughTx(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	tx := m.Begin()
	book := mustSelect(t, tx, `//book[text()="B"]`)
	if _, err := tx.InsertBefore(book, frag(t, `<book>A2</book>`)); err != nil {
		t.Fatal(err)
	}
	bookC := mustSelect(t, tx, `//book[text()="C"]`)
	if _, err := tx.InsertAfter(bookC, frag(t, `<book>D</book>`)); err != nil {
		t.Fatal(err)
	}
	shelf := mustSelect(t, tx, `//shelf[@id="s1"]`)
	if _, err := tx.InsertChildAt(shelf, 0, frag(t, `<book>A0</book>`)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := serialize.String(s, s.Root(), serialize.Options{})
	want := `<lib><shelf id="s1"><book>A0</book><book>A</book><book>A2</book><book>B</book></shelf><shelf id="s2"><book>C</book><book>D</book></shelf></lib>`
	if got != want {
		t.Fatalf("document = %s\nwant %s", got, want)
	}
}

// TestCommitRacingCheckpointSurvivesPrune is the regression test for the
// lost-commit window in the legacy checkpoint path: the old flow wrote
// the image under the lock but truncated the *whole* WAL afterwards, so
// a commit landing between the image capture and the truncate vanished
// from both the image and the log. The fixed contract: Checkpoint
// returns the LSN its image covers, captured atomically with the image,
// and the caller prunes only records <= that LSN.
func TestCommitRacingCheckpointSurvivesPrune(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "doc.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	s := buildStore(t, doc, 16)
	m := NewManager(s, log)

	commitBook := func(name string) {
		t.Helper()
		txn := m.Begin()
		shelf := mustSelect(t, txn, `//shelf[@id="s1"]`)
		if _, err := txn.AppendChild(shelf, frag(t, `<book>`+name+`</book>`)); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	commitBook("covered")
	var checkpoint bytes.Buffer
	lsn, err := m.Checkpoint(&checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	// The racing commit: lands after the image was captured, before the
	// caller gets around to discarding the covered WAL records.
	commitBook("racing")
	if err := log.Prune(lsn); err != nil {
		t.Fatal(err)
	}

	recovered, err := Recover(bytes.NewReader(checkpoint.Bytes()), log)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := xpath.MustParse(`//book[text()="racing"]`).Select(recovered); len(n) != 1 {
		t.Fatalf("commit racing the checkpoint was dropped by recovery (found %d)", len(n))
	}
	if n, _ := xpath.MustParse(`//book[text()="covered"]`).Select(recovered); len(n) != 1 {
		t.Fatalf("checkpoint-covered commit lost (found %d)", len(n))
	}
}

// TestPinCheckpointCapturesConsistentPair: the (snapshot, LSN) pair from
// PinCheckpoint must agree — every commit with LSN <= the pinned LSN is
// in the image, every later one is not — even with commits racing the
// pin. Recovery from the pinned image plus the log must equal the final
// base state.
func TestPinCheckpointCapturesConsistentPair(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "doc.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	s := buildStore(t, doc, 16)
	m := NewManager(s, log)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			txn := m.Begin()
			shelf := mustSelect(t, txn, `//shelf[@id="s2"]`)
			if _, err := txn.AppendChild(shelf, frag(t, fmt.Sprintf(`<book>P%d</book>`, i))); err != nil {
				t.Error(err)
				return
			}
			if err := txn.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Pin and stream several checkpoints while the committer runs.
	for i := 0; i < 5; i++ {
		img, lsn := m.PinCheckpoint()
		var buf bytes.Buffer
		if err := WriteSnapshotHeader(&buf, lsn); err != nil {
			t.Fatal(err)
		}
		if err := img.Save(&buf); err != nil {
			t.Fatal(err)
		}
		img.Release()
		recovered, err := Recover(bytes.NewReader(buf.Bytes()), log)
		if err != nil {
			t.Fatal(err)
		}
		// The recovered store must hold exactly the books of every commit
		// the log has seen up to its replay point; comparing against the
		// live base is racy, so check internal consistency instead: all
		// LSNs <= lsn are in the image (no book duplicated after replay),
		// and invariants hold.
		if err := recovered.CheckInvariants(); err != nil {
			t.Fatalf("pin %d: %v", i, err)
		}
		books, _ := xpath.MustParse(`//book`).Select(recovered)
		seen := map[string]int{}
		for _, n := range books {
			seen[xpath.StringValue(recovered, n)]++
		}
		for name, count := range seen {
			if count > 1 {
				t.Fatalf("pin %d: book %q appears %d times — image and LSN disagree", i, name, count)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestCommitGroupDurability: with a sync'd log, every commit must be
// durable when Commit returns, and concurrent committers must not issue
// more fsyncs than commits (the group-commit door may batch them).
func TestCommitGroupDurability(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "doc.wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	s := buildStore(t, doc, 16)
	m := NewManager(s, log)

	const committers = 8
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				for {
					txn := m.Begin()
					shelf := mustSelect(t, txn, `//shelf[@id="s2"]`)
					if _, err := txn.AppendChild(shelf, frag(t, fmt.Sprintf(`<book>G%d-%d</book>`, c, i))); err != nil {
						txn.Abort()
						continue // page conflict with a sibling committer: retry
					}
					if err := txn.Commit(); err != nil {
						if errors.Is(err, ErrConflict) {
							continue
						}
						t.Error(err)
						return
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	if log.DurableLSN() != log.LastLSN() {
		t.Fatalf("durable %d != appended %d after all commits returned", log.DurableLSN(), log.LastLSN())
	}
	if log.SyncCount() > committers*4 {
		t.Fatalf("%d fsyncs for %d commits", log.SyncCount(), committers*4)
	}
}
