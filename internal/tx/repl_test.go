package tx

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"mxq/internal/wal"
	"mxq/internal/xenc"
)

func openTestWAL(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.Open(filepath.Join(t.TempDir(), "doc.wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// commitSetValue commits one SetValue on the first book and returns the
// commit's LSN.
func commitSetValue(t *testing.T, m *Manager, val string) uint64 {
	t.Helper()
	tx := m.Begin()
	if err := tx.SetValue(findElem(t, tx, "book")+1, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tx.CommitLSN()
}

func TestCommitAdvancesApplied(t *testing.T) {
	m := NewManager(buildStore(t, doc, 16), openTestWAL(t))
	if m.AppliedLSN() != 0 {
		t.Fatalf("fresh manager applied = %d", m.AppliedLSN())
	}
	lsn := commitSetValue(t, m, "X")
	if lsn != 1 || m.AppliedLSN() != 1 {
		t.Fatalf("after commit: lsn=%d applied=%d", lsn, m.AppliedLSN())
	}
	// Already-applied LSNs never wait, and 0 is "any version".
	if err := m.WaitApplied(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitApplied(0, 0); err != nil {
		t.Fatal(err)
	}
	// A future LSN with no timeout is an immediate typed failure.
	if err := m.WaitApplied(2, 0); !errors.Is(err, ErrStale) {
		t.Fatalf("WaitApplied(future, 0) = %v", err)
	}
}

func TestWaitAppliedParksAndWakes(t *testing.T) {
	m := NewManager(buildStore(t, doc, 16), openTestWAL(t))
	done := make(chan error, 1)
	go func() { done <- m.WaitApplied(1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	commitSetValue(t, m, "X")
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
	// And the timeout path is ErrStale, not a hang.
	if err := m.WaitApplied(99, 20*time.Millisecond); !errors.Is(err, ErrStale) {
		t.Fatalf("timeout = %v", err)
	}
}

// TestApplyReplicated drives a follower manager from a primary's WAL
// records: the stores converge, the follower's local log reproduces the
// primary's numbering, and gaps are refused.
func TestApplyReplicated(t *testing.T) {
	primaryLog := openTestWAL(t)
	primary := NewManager(buildStore(t, doc, 16), primaryLog)
	follower := NewManager(buildStore(t, doc, 16), openTestWAL(t))

	commitSetValue(t, primary, "AA")
	tx := primary.Begin()
	shelf := findElem(t, tx, "shelf")
	if _, err := tx.AppendChild(shelf, frag(t, "<book>D</book>")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var recs []*wal.Record
	if err := primaryLog.Replay(0, func(rec *wal.Record) error {
		c := *rec
		recs = append(recs, &c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("primary wrote %d records", len(recs))
	}

	// Applying out of order is refused before anything mutates.
	if err := follower.ApplyReplicated(recs[1]); err == nil {
		t.Fatal("gap accepted")
	}
	for _, rec := range recs {
		if err := follower.ApplyReplicated(rec); err != nil {
			t.Fatal(err)
		}
	}
	if follower.AppliedLSN() != 2 {
		t.Fatalf("follower applied = %d", follower.AppliedLSN())
	}

	for _, m := range []*Manager{primary, follower} {
		rv := m.AcquireRead()
		v := rv.View()
		b := findElem(t, v, "book")
		if got := v.Value(b + 1); got != "AA" {
			t.Fatalf("book value = %q", got)
		}
		count := 0
		for p := xenc.Pre(0); p < v.Len(); p++ {
			if v.Kind(p) == xenc.KindElem && v.Names().Name(v.Name(p)) == "book" {
				count++
			}
		}
		rv.Close()
		if count != 4 {
			t.Fatalf("book count = %d", count)
		}
	}
}

// TestManagerAppliedStartsAtLogTail: a recovered (or bootstrapped)
// replica must not report itself behind the records its store already
// contains.
func TestManagerAppliedStartsAtLogTail(t *testing.T) {
	l := openTestWAL(t)
	m := NewManager(buildStore(t, doc, 16), l)
	commitSetValue(t, m, "X")
	commitSetValue(t, m, "Y")
	m2 := NewManager(buildStore(t, doc, 16), l)
	if got := m2.AppliedLSN(); got != 2 {
		t.Fatalf("recovered applied = %d, want 2", got)
	}
}
