package tx

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mxq/internal/xenc"
	"mxq/internal/xpath"
)

// TestReadersNeverSeePartialCommits is the atomicity litmus test: every
// write transaction inserts a *pair* of elements in one commit, and
// concurrent readers (under the global read lock, like the paper's
// read-only queries) must always observe an even number — a torn commit
// would show up as an odd count.
func TestReadersNeverSeePartialCommits(t *testing.T) {
	s := buildStore(t, `<log><entries>`+strings.Repeat(`<pad/>`, 20)+`</entries></log>`, 64)
	m := NewManager(s, nil)

	const writers = 4
	const commitsPerWriter = 30
	var torn atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers.
	countPairs := xpath.MustParse(`count(//pair)`)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.View(func(v xenc.DocView) error {
					val, err := countPairs.Eval(v)
					if err != nil {
						t.Error(err)
						return nil
					}
					n := int(val.(xpath.Number))
					if n%2 != 0 {
						torn.Add(1)
					}
					return nil
				})
			}
		}()
	}

	// Writers: each commit inserts two <pair/> elements atomically.
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			sel := xpath.MustParse(`/log/entries`)
			for i := 0; i < commitsPerWriter; i++ {
				for {
					txn := m.Begin()
					ns, err := sel.Select(txn)
					if err != nil || len(ns) != 1 {
						txn.Abort()
						continue
					}
					if _, err := txn.AppendChild(ns[0].Pre, frag(t, fmt.Sprintf(`<pair w="%d"/><pair w="%d"/>`, w, w))); err != nil {
						txn.Abort()
						continue
					}
					if err := txn.Commit(); err == nil {
						break
					}
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("readers observed %d torn states", n)
	}
	m.View(func(v xenc.DocView) error {
		ns, _ := xpath.MustParse(`//pair`).Select(v)
		if len(ns) != writers*commitsPerWriter*2 {
			t.Fatalf("pairs = %d, want %d", len(ns), writers*commitsPerWriter*2)
		}
		return nil
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
