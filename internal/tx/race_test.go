package tx

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mxq/internal/staircase"
	"mxq/internal/xenc"
)

// invariantChecker is implemented by *core.Store; Manager.Snapshot views
// are stores underneath, so tests can run the O(N) structural check on
// them.
type invariantChecker interface {
	CheckInvariants() error
}

// raceDoc builds a library spanning many logical pages: shelves shelves
// with booksPerShelf books each, plus a counter element tracking the
// total book count.
func raceDoc(shelves, booksPerShelf int) string {
	var b strings.Builder
	b.WriteString("<lib><counter>")
	b.WriteString(strconv.Itoa(shelves * booksPerShelf))
	b.WriteString("</counter>")
	for s := 0; s < shelves; s++ {
		fmt.Fprintf(&b, `<shelf id="s%d">`, s)
		for i := 0; i < booksPerShelf; i++ {
			b.WriteString("<book>x</book>")
		}
		b.WriteString("</shelf>")
	}
	b.WriteString("</lib>")
	return b.String()
}

// TestConcurrentSnapshotReadersDuringCommit runs reader goroutines that
// traverse axes via staircase over lock-free copy-on-write snapshots
// while a writer commits page-COW updates. Every snapshot must be
// internally consistent — the book count observed by a descendant scan
// must match the counter value written in the same transaction, and the
// full pre/size/level invariant check must pass — i.e. no reader ever
// observes a torn page. Run with -race.
func TestConcurrentSnapshotReadersDuringCommit(t *testing.T) {
	const (
		shelves       = 12
		booksPerShelf = 3
		commits       = 60
		readers       = 3
	)
	if testing.Short() {
		t.Skip("concurrency soak test; run without -short")
	}
	s := buildStore(t, raceDoc(shelves, booksPerShelf), 64)
	m := NewManager(s, nil)

	bookName, ok := s.Names().Lookup("book")
	if !ok {
		t.Fatal("book name not interned")
	}
	counterName, ok := s.Names().Lookup("counter")
	if !ok {
		t.Fatal("counter name not interned")
	}

	// The counter's text node, addressed by immutable NodeID so the
	// writer can find it whatever the current page layout is.
	counterElem := findElem(t, s, "counter")
	counterTextID := s.NodeOf(counterElem + 1)

	done := make(chan struct{})
	var snapshotsChecked atomic.Int64
	var wg sync.WaitGroup

	// checkSnapshot asserts one snapshot is consistent.
	checkSnapshot := func(v xenc.DocView) error {
		root := v.Root()
		all := staircase.DescendantOrSelf(v, []xenc.Pre{root}, staircase.AnyNode())
		if len(all) != v.LiveNodes() {
			return fmt.Errorf("descendant-or-self found %d nodes, LiveNodes says %d", len(all), v.LiveNodes())
		}
		if int(v.Size(root)) != v.LiveNodes()-1 {
			return fmt.Errorf("root size %d, want %d live descendants", v.Size(root), v.LiveNodes()-1)
		}
		books := staircase.Descendant(v, []xenc.Pre{root}, staircase.Element(bookName))
		counters := staircase.Child(v, []xenc.Pre{root}, staircase.Element(counterName))
		if len(counters) != 1 {
			return fmt.Errorf("found %d counter elements, want 1", len(counters))
		}
		texts := staircase.Child(v, counters, staircase.KindTest(xenc.KindText))
		if len(texts) != 1 {
			return fmt.Errorf("counter has %d text children, want 1", len(texts))
		}
		want, err := strconv.Atoi(v.Value(texts[0]))
		if err != nil {
			return fmt.Errorf("counter value %q: %v", v.Value(texts[0]), err)
		}
		if len(books) != want {
			return fmt.Errorf("torn snapshot: %d books visible, counter says %d", len(books), want)
		}
		if c, isStore := v.(invariantChecker); isStore {
			if err := c.CheckInvariants(); err != nil {
				return fmt.Errorf("invariants: %v", err)
			}
		}
		return nil
	}

	// Lock-free snapshot readers.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := m.Snapshot()
				err := checkSnapshot(snap.View())
				snap.Close()
				if err != nil {
					t.Error(err)
					return
				}
				snapshotsChecked.Add(1)
			}
		}()
	}

	// One reader holds a single snapshot across the whole run: it must
	// stay frozen at its creation state no matter how many commits land.
	wg.Add(1)
	go func() {
		defer wg.Done()
		snap := m.Snapshot()
		defer snap.Close()
		frozen := snap.View()
		base := frozen.LiveNodes()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := checkSnapshot(frozen); err != nil {
				t.Errorf("held snapshot: %v", err)
				return
			}
			if frozen.LiveNodes() != base {
				t.Errorf("held snapshot changed: %d live nodes, started with %d", frozen.LiveNodes(), base)
				return
			}
		}
	}()

	// A lock-based reader keeps the classic View path honest too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := m.View(func(v xenc.DocView) error { return checkSnapshot(v) }); err != nil {
				t.Errorf("View reader: %v", err)
				return
			}
		}
	}()

	// The writer: each transaction appends one book to a shelf and
	// updates the counter — atomically, or not at all. Every third
	// transaction aborts instead, which must leave no trace. The writer
	// keeps committing (up to a generous cap) until the readers have
	// demonstrably overlapped with it, so the test cannot pass vacuously
	// when the writer outruns reader startup.
	count := shelves * booksPerShelf
	for i := 0; i < commits || (snapshotsChecked.Load() < 20 && i < 100*commits); i++ {
		txn := m.Begin()
		shelf := findElem(t, txn, fmt.Sprintf("shelf[@id=%q]", fmt.Sprintf("s%d", i%shelves)))
		if _, err := txn.AppendChild(shelf, frag(t, `<book>y</book>`)); err != nil {
			t.Fatalf("commit %d: append: %v", i, err)
		}
		if i%3 == 2 {
			txn.Abort()
			continue
		}
		p := txn.PreOf(counterTextID)
		if p == xenc.NoPre {
			t.Fatalf("commit %d: counter text vanished", i)
		}
		count++
		if err := txn.SetValue(p, strconv.Itoa(count)); err != nil {
			t.Fatalf("commit %d: set counter: %v", i, err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	if n := snapshotsChecked.Load(); n == 0 {
		t.Fatal("no snapshots were checked concurrently with commits")
	}
	// Final state: base must reflect exactly the committed books.
	final := m.Snapshot()
	defer final.Close()
	if err := checkSnapshot(final.View()); err != nil {
		t.Fatalf("final state: %v", err)
	}
}
