package tx

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/shred"
	"mxq/internal/wal"
	"mxq/internal/xenc"
)

func TestOpsAfterDoneFail(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	txn := m.Begin()
	txn.Abort()
	if _, err := txn.AppendChild(0, frag(t, `<x/>`)); !errors.Is(err, ErrDone) {
		t.Fatalf("append after abort = %v", err)
	}
	if err := txn.Delete(1); !errors.Is(err, ErrDone) {
		t.Fatalf("delete after abort = %v", err)
	}
	if err := txn.SetValue(1, "x"); !errors.Is(err, ErrDone) {
		t.Fatalf("setvalue after abort = %v", err)
	}
	if _, err := txn.InsertBefore(1, frag(t, `<x/>`)); !errors.Is(err, ErrDone) {
		t.Fatalf("insert after abort = %v", err)
	}
	txn.Abort() // double abort is a no-op
}

func TestStoreErrorsPropagateWithoutPoisoning(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	txn := m.Begin()
	// Illegal op: delete the root.
	if err := txn.Delete(txn.Root()); err == nil {
		t.Fatal("root delete accepted")
	}
	// The tx is still usable (store-level errors are not conflicts).
	shelf := mustSelect(t, txn, `//shelf[@id="s1"]`)
	if _, err := txn.AppendChild(shelf, frag(t, `<book>X</book>`)); err != nil {
		t.Fatalf("tx unusable after store error: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverErrors(t *testing.T) {
	// Truncated header.
	if _, err := Recover(strings.NewReader("abc"), nil); err == nil {
		t.Fatal("short header accepted")
	}
	// Valid header, corrupt snapshot.
	var buf bytes.Buffer
	WriteSnapshotHeader(&buf, 3)
	buf.WriteString("not a gob snapshot")
	if _, err := Recover(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestRecoverWithoutLog(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	var ck bytes.Buffer
	if _, err := m.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(bytes.NewReader(ck.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.LiveNodes() != s.LiveNodes() {
		t.Fatalf("nodes = %d, want %d", got.LiveNodes(), s.LiveNodes())
	}
}

func TestApplyOpsErrors(t *testing.T) {
	s := buildStore(t, doc, 16)
	// Unknown kind.
	if err := ApplyOps(s, []wal.Op{{Kind: 99, Target: 0}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	// Missing target.
	if err := ApplyOps(s, []wal.Op{{Kind: wal.OpDelete, Target: 9999}}); err == nil {
		t.Fatal("missing target accepted")
	}
	// Insert-before without an anchor.
	if err := ApplyOps(s, []wal.Op{{Kind: wal.OpInsertBefore, Target: xenc.NoNode}}); err == nil {
		t.Fatal("anchorless insert accepted")
	}
}

func TestApplyOpsIDMapping(t *testing.T) {
	s := buildStore(t, doc, 16)
	// An op list that renames a node created earlier in the same list,
	// using a transaction-local id that must be remapped.
	fr := frag(t, `<book>New</book>`)
	shelfID := s.NodeOf(mustSelectStore(t, s, `//shelf[@id="s1"]`))
	ops := []wal.Op{
		{Kind: wal.OpAppendChild, Target: shelfID, Frag: fragNodes(fr), NewIDs: []xenc.NodeID{7777, 7778}},
		{Kind: wal.OpRename, Target: 7777, Name: "tome"},
	}
	if err := ApplyOps(s, ops); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := false
	for p := xenc.SkipFree(s, 0); p < s.Len(); p = xenc.SkipFree(s, p+1) {
		if s.Kind(p) == xenc.KindElem && s.Names().Name(s.Name(p)) == "tome" {
			found = true
		}
	}
	if !found {
		t.Fatal("remapped rename did not reach the new node")
	}
}

func mustSelectStore(t *testing.T, s *core.Store, q string) xenc.Pre {
	t.Helper()
	return mustSelect(t, s, q)
}

func fragNodes(tr *shred.Tree) []wal.FragNode {
	return fragToWal(tr)
}

func TestLockReleaseOnAbort(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	t1 := m.Begin()
	shelf := mustSelect(t, t1, `//shelf[@id="s1"]`)
	if _, err := t1.AppendChild(shelf, frag(t, `<x/>`)); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	// The pages must be free again.
	t2 := m.Begin()
	shelf2 := mustSelect(t, t2, `//shelf[@id="s1"]`)
	if _, err := t2.AppendChild(shelf2, frag(t, `<y/>`)); err != nil {
		t.Fatalf("locks leaked after abort: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionCounts(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	if m.Version() != 0 {
		t.Fatal("fresh manager has nonzero version")
	}
	txn := m.Begin()
	shelf := mustSelect(t, txn, `//shelf[@id="s1"]`)
	txn.AppendChild(shelf, frag(t, `<x/>`))
	txn.Commit()
	if m.Version() != 1 {
		t.Fatalf("version = %d", m.Version())
	}
}
