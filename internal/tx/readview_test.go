package tx

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mxq/internal/serialize"
	"mxq/internal/xenc"
)

func viewXML(t *testing.T, v xenc.DocView) string {
	t.Helper()
	var b strings.Builder
	if err := serialize.Document(&b, v, serialize.Options{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// setBook updates the text of the idx-th book to val in one committed
// transaction.
func setBook(t *testing.T, m *Manager, idx int, val string) {
	t.Helper()
	txn := m.Begin()
	books := findBooks(t, txn)
	if err := txn.SetValue(books[idx]+1, val); err != nil { // text child follows the element
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func findBooks(t *testing.T, v xenc.DocView) []xenc.Pre {
	t.Helper()
	nameID, ok := v.Names().Lookup("book")
	if !ok {
		t.Fatal("no book name interned")
	}
	var out []xenc.Pre
	for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
		if v.Kind(p) == xenc.KindElem && v.Name(p) == nameID {
			out = append(out, p)
		}
	}
	return out
}

// TestAcquireReadCachesPerVersion: repeated reads at an unchanged
// version must reuse the identical snapshot (no per-query O(pages)
// cost), and the first read after a commit must get a fresh one.
func TestAcquireReadCachesPerVersion(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	rv1 := m.AcquireRead()
	rv2 := m.AcquireRead()
	if rv1.View() != rv2.View() {
		t.Fatal("two reads at the same version got different snapshots")
	}
	if rv1.Version() != 0 || rv2.Version() != 0 {
		t.Fatalf("fresh document read at version %d/%d, want 0", rv1.Version(), rv2.Version())
	}
	rv1.Close()
	rv2.Close()

	setBook(t, m, 0, "A2")
	rv3 := m.AcquireRead()
	if rv3.Version() != 1 {
		t.Fatalf("post-commit read at version %d, want 1", rv3.Version())
	}
	if rv3.View() == rv1.View() {
		t.Fatal("post-commit read reused the pre-commit snapshot")
	}
	rv4 := m.AcquireRead()
	if rv4.View() != rv3.View() {
		t.Fatal("second post-commit read did not reuse the cached snapshot")
	}
	rv3.Close()
	rv4.Close()
}

// TestAcquireReadIsolation: an open read view must keep observing its
// version while commits land, and Close must be idempotent.
func TestAcquireReadIsolation(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	rv := m.AcquireRead()
	before := viewXML(t, rv.View())

	for i := 0; i < 5; i++ {
		setBook(t, m, i%3, fmt.Sprintf("v%d", i))
	}
	if got := viewXML(t, rv.View()); got != before {
		t.Fatalf("open read view drifted across commits:\nbefore: %s\nafter:  %s", before, got)
	}
	rv.Close()
	rv.Close() // idempotent

	latest := m.AcquireRead()
	defer latest.Close()
	if got := viewXML(t, latest.View()); !strings.Contains(got, "v4") {
		t.Fatalf("latest view missing last committed value: %s", got)
	}
}

// TestAcquireReadConcurrentWithCommits hammers the read path from many
// goroutines while a writer commits, checking that every acquired view
// is internally consistent (its XML matches what its version's commit
// produced) and versions are monotonic per reader. Run with -race.
func TestAcquireReadConcurrentWithCommits(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	const commits = 40
	// byVersion[v] = the document XML after commit v (filled by the
	// writer before the commit becomes visible).
	byVersion := make([]string, commits+1)
	rv0 := m.AcquireRead()
	byVersion[0] = viewXML(t, rv0.View())
	rv0.Close()
	var mu sync.Mutex

	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				rv := m.AcquireRead()
				v := rv.Version()
				if v < last {
					errs <- fmt.Errorf("version went backwards: %d after %d", v, last)
					rv.Close()
					return
				}
				last = v
				var b strings.Builder
				if err := serialize.Document(&b, rv.View(), serialize.Options{}); err != nil {
					errs <- err
					rv.Close()
					return
				}
				mu.Lock()
				want := byVersion[v]
				mu.Unlock()
				if got := b.String(); got != want {
					errs <- fmt.Errorf("version %d: view does not match committed state\ngot:  %s\nwant: %s", v, got, want)
					rv.Close()
					return
				}
				rv.Close()
			}
		}()
	}

	for i := 1; i <= commits; i++ {
		txn := m.Begin()
		books := findBooks(t, txn)
		if err := txn.SetValue(books[i%3]+1, fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		byVersion[i] = viewXML(t, txn)
		mu.Unlock()
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := m.Version(); got != commits {
		t.Fatalf("version %d after %d commits", got, commits)
	}
}

// TestWriteOnlyPhaseUnpinsCache: after readers go quiet, a commit must
// drop the cache's reference to the superseded snapshot on its own —
// a long write-only phase may neither pin the old version in memory
// nor pay copy-on-write for it on every commit while no reader will
// ever lease it again.
func TestWriteOnlyPhaseUnpinsCache(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	rv := m.AcquireRead()
	rv.Close()
	if got := s.DirtyPages(); got != 0 {
		t.Fatalf("base owns %d pages while the cache slot holds the snapshot", got)
	}
	// One commit, no reader afterwards: the superseded snapshot's last
	// reference (the cache slot's) must be dropped by the commit itself.
	setBook(t, m, 0, "only-writers-now")
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d pages after a commit in a write-only phase", got, total)
	}
	// An open lease must survive the invalidation, though.
	rv2 := m.AcquireRead()
	setBook(t, m, 1, "still-leased")
	before := viewXML(t, rv2.View())
	setBook(t, m, 2, "still-leased-2")
	if got := viewXML(t, rv2.View()); got != before {
		t.Fatal("open lease drifted after commit-side cache invalidation")
	}
	rv2.Close()
}

// TestReadSnapLifecycle drives the share → copy-on-commit → release
// cycle several times and checks the base store's chunk ownership at
// each stage: a live cached snapshot shares every chunk (base owns 0),
// a commit privately materializes only the pages it writes, and
// superseded snapshots hand their references back when their last
// reader closes instead of taxing the base forever.
func TestReadSnapLifecycle(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	if got := s.DirtyPages(); got == 0 {
		t.Fatal("fresh store owns no pages")
	}
	var prev *ReadView
	var prevXML string
	for i := 0; i < 5; i++ {
		rv := m.AcquireRead()
		if got := s.DirtyPages(); got != 0 {
			t.Fatalf("cycle %d: base owns %d pages while the cached snapshot is live, want 0", i, got)
		}
		if prev != nil {
			// The superseded snapshot's view must stay intact until closed.
			if got := viewXML(t, prev.View()); got != prevXML {
				t.Fatalf("cycle %d: superseded view drifted:\nat acquire: %s\nnow:        %s", i, prevXML, got)
			}
			prev.Close()
		}
		prevXML = viewXML(t, rv.View())
		setBook(t, m, i%3, fmt.Sprintf("w%d", i))
		// The commit copied the pages it wrote; everything else is still
		// shared with rv's snapshot, so ownership stays O(pages dirtied).
		owned := s.DirtyPages()
		if owned == 0 {
			t.Fatalf("cycle %d: commit materialized no private pages", i)
		}
		if owned > 4 {
			t.Fatalf("cycle %d: commit materialized %d pages for a 1-node update", i, owned)
		}
		prev = rv
	}
	prev.Close()
}
