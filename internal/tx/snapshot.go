package tx

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"mxq/internal/xenc"
)

// ErrSnapshotClosed reports use of a Snapshot handle after Close.
var ErrSnapshotClosed = errors.New("tx: snapshot is closed")

// Snapshot is a closeable, refcounted handle on an immutable snapshot of
// one committed version — the public extension of the chunk-refcount
// protocol that ReadView applies inside the query path. The view is read
// without any lock: it stays consistent while later transactions commit,
// because commits copy the pages they modify instead of updating shared
// chunks in place (Section 3.2's copy-on-write reader isolation), and it
// is safe for concurrent use by any number of goroutines.
//
// Handles taken at the same committed version share one underlying
// snapshot; the base store pays copy-on-write only for the chunks
// commits dirty while at least one sharer is alive, and resumes in-place
// writes on a chunk as soon as its last sharer is gone. Close returns
// this handle's reference (idempotent; see core.Store.Release). The view
// must not be used after Close, and must not outlive the handle it came
// from: a garbage-collected unclosed handle is reported through the leak
// handler by a finalizer, which releases the reference as a backstop —
// but relying on the finalizer reintroduces exactly the unbounded
// copy-on-write tax Close exists to end.
type Snapshot struct {
	rs     *readSnap
	closed atomic.Bool
	// stack is the call stack captured at Snapshot() time when
	// SetSnapshotDebug(true) is active; the leak handler receives it so a
	// leaked handle can be attributed to the call site that opened it.
	stack []byte
}

// Snapshot returns a handle on the snapshot of the current committed
// version. Taking one costs at most one O(pages) refcount sweep, and
// nothing at all when the cached per-version snapshot is current; the
// handle shares the cache's snapshot, so open queries and other handles
// at the same version all pin the same chunks once.
func (m *Manager) Snapshot() *Snapshot {
	s := &Snapshot{rs: m.acquireSnap()}
	if snapshotDebug.Load() {
		buf := make([]byte, 16<<10)
		s.stack = buf[:runtime.Stack(buf, false)]
	}
	runtime.SetFinalizer(s, (*Snapshot).finalize)
	return s
}

// snapshotDebug gates call-stack capture at Snapshot() time.
var snapshotDebug atomic.Bool

// SetSnapshotDebug toggles leak attribution: when on, every Snapshot
// handle records the call stack of its creation (one runtime.Stack per
// handle — cheap enough for tests and staging, not free), and a handle
// that is garbage-collected unclosed hands that stack to the leak
// handler, which can then report *where* the leaked handle was opened
// rather than only that one existed.
func SetSnapshotDebug(on bool) { snapshotDebug.Store(on) }

// View returns the immutable document view. The view must not be used
// after Close, and must not be retained beyond the handle's lifetime.
func (s *Snapshot) View() xenc.DocView { return s.rs.store }

// Version returns the committed version the snapshot observes.
func (s *Snapshot) Version() uint64 { return s.rs.version }

// Closed reports whether Close has been called.
func (s *Snapshot) Closed() bool { return s.closed.Load() }

// WithView runs fn against the snapshot's view while holding a
// temporary reference of its own, so a Close racing the call (from
// another goroutine, or from the finalizer backstop) cannot release the
// snapshot's chunks mid-read — the release is deferred until fn
// returns. It fails with ErrSnapshotClosed once Close has been called,
// or if the snapshot is already fully released.
func (s *Snapshot) WithView(fn func(v xenc.DocView) error) error {
	if s.closed.Load() || !s.rs.tryAcquire() {
		return ErrSnapshotClosed
	}
	defer s.rs.release()
	return fn(s.rs.store)
}

// Close returns the handle's snapshot reference. Once the last sharer of
// the version is gone (handles, query leases and the manager's cache
// slot all count), the snapshot's chunk references are handed back to
// the base store, which resumes writing those chunks in place. Close is
// idempotent and safe to call concurrently with commits.
func (s *Snapshot) Close() {
	if s.closed.CompareAndSwap(false, true) {
		runtime.SetFinalizer(s, nil)
		s.rs.release()
	}
}

// leakHandler is called when an unclosed Snapshot is garbage-collected.
// Nil means the default (a warning on stderr).
var leakHandler atomic.Pointer[func(version uint64, stack []byte)]

// SetSnapshotLeakHandler replaces the hook invoked when an unclosed
// Snapshot handle is reclaimed by the garbage collector (after its
// reference has been released). stack is the call stack captured when
// the leaked handle was opened — non-nil only while SetSnapshotDebug is
// on. Passing nil restores the default, which writes a warning (plus the
// stack, when captured) to stderr. Intended for tests and embedders that
// route diagnostics elsewhere.
func SetSnapshotLeakHandler(fn func(version uint64, stack []byte)) {
	if fn == nil {
		leakHandler.Store(nil)
		return
	}
	leakHandler.Store(&fn)
}

func (s *Snapshot) finalize() {
	if s.closed.CompareAndSwap(false, true) {
		s.rs.release()
		if fn := leakHandler.Load(); fn != nil {
			(*fn)(s.rs.version, s.stack)
			return
		}
		fmt.Fprintf(os.Stderr,
			"mxq/internal/tx: Snapshot of version %d was garbage-collected without Close; "+
				"the base store paid copy-on-write for its chunks until now\n", s.rs.version)
		if s.stack != nil {
			fmt.Fprintf(os.Stderr, "opened at:\n%s\n", s.stack)
		}
	}
}
