package tx

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mxq/internal/wal"
)

// ErrStale reports that WaitApplied timed out before the applied LSN
// reached the requested point: the caller asked to read its own write
// on a replica that has not caught up to it yet. The server maps this
// to a typed wire status (never a silently stale answer).
var ErrStale = errors.New("tx: applied LSN below the requested read point")

// appliedLSN is the read-your-writes watermark: the highest WAL LSN
// whose effects are visible to a reader acquiring a snapshot now. On a
// primary it advances with every local commit; on a follower, with
// every replicated record applied. Waiters park on a broadcast channel
// that is closed and replaced each time the watermark rises.
type appliedLSN struct {
	mu  sync.Mutex
	lsn uint64
	ch  chan struct{}
}

func (a *appliedLSN) advance(lsn uint64) {
	if lsn == 0 {
		return
	}
	a.mu.Lock()
	if lsn > a.lsn {
		a.lsn = lsn
		if a.ch != nil {
			close(a.ch)
			a.ch = nil
		}
	}
	a.mu.Unlock()
}

func (a *appliedLSN) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lsn
}

// wait parks until the watermark reaches lsn or the deadline passes.
func (a *appliedLSN) wait(lsn uint64, timeout time.Duration) error {
	if lsn == 0 {
		return nil
	}
	var timer *time.Timer
	for {
		a.mu.Lock()
		if a.lsn >= lsn {
			a.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return nil
		}
		if a.ch == nil {
			a.ch = make(chan struct{})
		}
		ch := a.ch
		cur := a.lsn
		a.mu.Unlock()
		if timer == nil {
			if timeout <= 0 {
				return fmt.Errorf("%w: applied %d, need %d", ErrStale, cur, lsn)
			}
			timer = time.NewTimer(timeout)
			defer timer.Stop()
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("%w: applied %d, need %d", ErrStale, a.get(), lsn)
		}
	}
}

// AppliedLSN returns the read-your-writes watermark: every commit with
// an LSN at or below it is visible to a snapshot acquired now.
func (m *Manager) AppliedLSN() uint64 { return m.applied.get() }

// WaitApplied parks until the applied watermark reaches lsn, or fails
// with ErrStale after timeout (a zero or negative timeout fails
// immediately unless the watermark is already there). lsn 0 never
// waits — it is the "any version will do" request every plain read
// carries.
func (m *Manager) WaitApplied(lsn uint64, timeout time.Duration) error {
	return m.applied.wait(lsn, timeout)
}

// ApplyReplicated applies one replicated WAL record: the follower-side
// twin of the commit critical section. It appends the record to the
// local log verbatim — the follower's LSN numbering must reproduce the
// primary's exactly, and wal.Log.AppendRecord refuses gaps — replays
// the record's operations onto the base store through the same
// ApplyOps path recovery uses, bumps the committed version, and
// advances the applied watermark so parked read-your-writes readers
// wake.
//
// Durability is the caller's business: ApplyReplicated does not fsync,
// so a batch of records costs one Sync at its end (before the LSN is
// acked to the primary), not one per record.
func (m *Manager) ApplyReplicated(rec *wal.Record) error {
	m.mu.Lock()
	if m.log != nil {
		if err := m.log.AppendRecord(rec); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	if err := ApplyOps(m.store, rec.Ops); err != nil {
		m.mu.Unlock()
		return fmt.Errorf("tx: applying replicated LSN %d: %w", rec.LSN, err)
	}
	m.version.Add(1)
	m.commits++
	m.mu.Unlock()
	m.invalidateStale()
	m.applied.advance(rec.LSN)
	return nil
}
