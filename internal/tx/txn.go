package tx

import (
	"fmt"

	"mxq/internal/core"
	"mxq/internal/shred"
	"mxq/internal/wal"
	"mxq/internal/xenc"
)

// Tx is a write transaction: a private copy-on-write image of the store
// plus the log of resolved operations that commit will replay onto the
// base. Tx implements xenc.DocView and the xupdate.Target mutation
// surface, so XPath queries and XUpdate modification lists run against it
// directly with read-your-writes semantics.
type Tx struct {
	m     *Manager
	clone *core.Store
	ops   []wal.Op
	pages map[int32]bool
	done  bool
	err   error
	lsn   uint64 // assigned at commit; 0 until then (or for no-op commits)
}

// CommitLSN returns the WAL LSN Commit assigned, 0 before Commit or for
// a commit that logged nothing (empty op list, or a volatile database).
// It is the token a client carries to read its own write on a replica.
func (t *Tx) CommitLSN() uint64 { return t.lsn }

// --- DocView over the private image ----------------------------------------

// Len returns the view length of the transaction image.
func (t *Tx) Len() xenc.Pre { return t.clone.Len() }

// LiveNodes returns the live node count of the transaction image.
func (t *Tx) LiveNodes() int { return t.clone.LiveNodes() }

// Size returns the size column value at p.
func (t *Tx) Size(p xenc.Pre) xenc.Size { return t.clone.Size(p) }

// Level returns the level column value at p.
func (t *Tx) Level(p xenc.Pre) xenc.Level { return t.clone.Level(p) }

// Kind returns the node kind at p.
func (t *Tx) Kind(p xenc.Pre) xenc.Kind { return t.clone.Kind(p) }

// Name returns the interned name id at p.
func (t *Tx) Name(p xenc.Pre) int32 { return t.clone.Name(p) }

// Value returns the text content at p.
func (t *Tx) Value(p xenc.Pre) string { return t.clone.Value(p) }

// NodeOf returns the immutable node id at p.
func (t *Tx) NodeOf(p xenc.Pre) xenc.NodeID { return t.clone.NodeOf(p) }

// PreOf resolves a node id in the transaction image.
func (t *Tx) PreOf(n xenc.NodeID) xenc.Pre { return t.clone.PreOf(n) }

// Attrs returns the attributes at p.
func (t *Tx) Attrs(p xenc.Pre) []xenc.Attr { return t.clone.Attrs(p) }

// AttrValue returns the named attribute value at p.
func (t *Tx) AttrValue(p xenc.Pre, name int32) (string, bool) {
	return t.clone.AttrValue(p, name)
}

// Names returns the name pool of the transaction image.
func (t *Tx) Names() *xenc.QNamePool { return t.clone.Names() }

// Root returns the root element of the transaction image.
func (t *Tx) Root() xenc.Pre { return t.clone.Root() }

var _ xenc.DocView = (*Tx)(nil)

// --- mutations ---------------------------------------------------------------

func (t *Tx) check() error {
	if t.done {
		return ErrDone
	}
	return t.err
}

// fail poisons the transaction: after a lock conflict only Abort works.
func (t *Tx) fail(err error) error {
	if t.err == nil && err == ErrConflict {
		t.err = err
	}
	return err
}

// lockSpan write-locks the *physical* pages backing the view span
// [from, to] plus, in the root-locking ablation mode, the pages of all
// ancestors of anc. Physical page numbers are stable across page
// splices, so two transactions always agree on what a lock name means
// even after either of them has reshaped the logical order.
func (t *Tx) lockSpan(from, to xenc.Pre, anc xenc.Pre) error {
	if from < 0 {
		from = 0
	}
	last := t.clone.Len() - 1
	if to > last {
		to = last
	}
	var pages []int32
	step := xenc.Pre(t.m.store.PageSize())
	for p := from; ; p += step {
		if p > to {
			p = to
		}
		pages = append(pages, t.clone.PhysPage(p))
		if p == to {
			break
		}
	}
	pages = t.withAncestors(pages, anc)
	return t.fail(t.m.lockPages(t, pages))
}

// lockPoint write-locks the pages an insert at view rank `at` writes to:
// the page of the insert point and the page directly before it (whose
// unused tail may absorb the insert). Ancestor pages are deliberately
// NOT locked — their size maintenance happens through commutative delta
// increments, which is how the paper keeps the document root from
// becoming a locking bottleneck. The page before the insert point always
// lies inside the anchor's region (or is the anchor itself), so a
// concurrent delete of the anchor's subtree — which locks the whole
// region span — is always detected as a conflict.
func (t *Tx) lockPoint(at xenc.Pre, anc xenc.Pre) error {
	var pages []int32
	if at > 0 {
		pages = append(pages, t.clone.PhysPage(at-1))
	}
	if at < t.clone.Len() {
		pages = append(pages, t.clone.PhysPage(at))
	}
	pages = t.withAncestors(pages, anc)
	return t.fail(t.m.lockPages(t, pages))
}

// withAncestors adds the ancestor chain's pages in the root-locking
// ablation mode (the discipline absolute-value size updates would need).
func (t *Tx) withAncestors(pages []int32, anc xenc.Pre) []int32 {
	if t.m.lockAncestors && anc != xenc.NoPre {
		for a := anc; a != xenc.NoPre; a = t.clone.ParentPre(a) {
			pages = append(pages, t.clone.PhysPage(a))
		}
	}
	return pages
}

// regionEnd is the last view rank of p's region in the tx image.
func (t *Tx) regionEnd(p xenc.Pre) xenc.Pre {
	remaining := t.clone.Size(p)
	last := p
	q := p
	for remaining > 0 {
		q = xenc.SkipFree(t.clone, q+1)
		last = q
		remaining--
	}
	return last
}

func fragToWal(frag *shred.Tree) []wal.FragNode {
	out := make([]wal.FragNode, len(frag.Nodes))
	for i, n := range frag.Nodes {
		fn := wal.FragNode{
			Kind:  uint8(n.Kind),
			Level: n.Level,
			Size:  n.Size,
			Name:  n.Name,
			Value: n.Value,
		}
		for _, a := range n.Attrs {
			fn.Attrs = append(fn.Attrs, a.Name, a.Value)
		}
		out[i] = fn
	}
	return out
}

func walToFrag(ops []wal.FragNode) *shred.Tree {
	tr := &shred.Tree{Nodes: make([]shred.Node, len(ops))}
	for i, fn := range ops {
		n := shred.Node{
			Kind:  xenc.Kind(fn.Kind),
			Level: fn.Level,
			Size:  fn.Size,
			Name:  fn.Name,
			Value: fn.Value,
		}
		for j := 0; j+1 < len(fn.Attrs); j += 2 {
			n.Attrs = append(n.Attrs, shred.Attr{Name: fn.Attrs[j], Value: fn.Attrs[j+1]})
		}
		tr.Nodes[i] = n
	}
	return tr
}

// InsertBefore inserts the fragment before the node at target.
func (t *Tx) InsertBefore(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.lockPoint(target, t.clone.ParentPre(target)); err != nil {
		return nil, err
	}
	// The anchor node's immutable id survives the insert (it only moves),
	// so replay can re-resolve the insert point from it.
	tgtID := t.clone.NodeOf(target)
	ids, err := t.clone.InsertBefore(target, frag)
	if err != nil {
		return nil, err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpInsertBefore, Target: tgtID, Frag: fragToWal(frag), NewIDs: ids})
	return ids, nil
}

// InsertAfter inserts the fragment after the subtree at target.
func (t *Tx) InsertAfter(target xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	tgtID := t.clone.NodeOf(target)
	if err := t.lockPoint(t.regionEnd(target)+1, t.clone.ParentPre(target)); err != nil {
		return nil, err
	}
	ids, err := t.clone.InsertAfter(target, frag)
	if err != nil {
		return nil, err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpInsertAfter, Target: tgtID, Frag: fragToWal(frag), NewIDs: ids})
	return ids, nil
}

// AppendChild appends the fragment as last child(ren) of parent.
func (t *Tx) AppendChild(parent xenc.Pre, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	parentID := t.clone.NodeOf(parent)
	if err := t.lockPoint(t.regionEnd(parent)+1, parent); err != nil {
		return nil, err
	}
	ids, err := t.clone.AppendChild(parent, frag)
	if err != nil {
		return nil, err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpAppendChild, Target: parentID, Frag: fragToWal(frag), NewIDs: ids})
	return ids, nil
}

// InsertChildAt inserts the fragment as child number idx of parent.
func (t *Tx) InsertChildAt(parent xenc.Pre, idx int, frag *shred.Tree) ([]xenc.NodeID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	parentID := t.clone.NodeOf(parent)
	at := t.clone.NthChild(parent, idx)
	if at == xenc.NoPre {
		at = t.regionEnd(parent) + 1
	}
	if err := t.lockPoint(at, parent); err != nil {
		return nil, err
	}
	ids, err := t.clone.InsertChildAt(parent, idx, frag)
	if err != nil {
		return nil, err
	}
	t.ops = append(t.ops, wal.Op{
		Kind: wal.OpInsertChildAt, Target: parentID, Child: int32(idx),
		Frag: fragToWal(frag), NewIDs: ids,
	})
	return ids, nil
}

// Delete removes the subtree at target.
func (t *Tx) Delete(target xenc.Pre) error {
	if err := t.check(); err != nil {
		return err
	}
	tgtID := t.clone.NodeOf(target)
	if err := t.lockSpan(target, t.regionEnd(target), t.clone.ParentPre(target)); err != nil {
		return err
	}
	if err := t.clone.Delete(target); err != nil {
		return err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpDelete, Target: tgtID})
	return nil
}

// SetValue updates a text/comment/PI node's content.
func (t *Tx) SetValue(p xenc.Pre, val string) error {
	if err := t.check(); err != nil {
		return err
	}
	id := t.clone.NodeOf(p)
	if err := t.lockSpan(p, p, xenc.NoPre); err != nil {
		return err
	}
	if err := t.clone.SetValue(p, val); err != nil {
		return err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpSetValue, Target: id, Value: val})
	return nil
}

// Rename renames an element or PI node.
func (t *Tx) Rename(p xenc.Pre, name string) error {
	if err := t.check(); err != nil {
		return err
	}
	id := t.clone.NodeOf(p)
	if err := t.lockSpan(p, p, xenc.NoPre); err != nil {
		return err
	}
	if err := t.clone.Rename(p, name); err != nil {
		return err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpRename, Target: id, Name: name})
	return nil
}

// SetAttr adds or replaces an attribute.
func (t *Tx) SetAttr(p xenc.Pre, name, val string) error {
	if err := t.check(); err != nil {
		return err
	}
	id := t.clone.NodeOf(p)
	if err := t.lockSpan(p, p, xenc.NoPre); err != nil {
		return err
	}
	if err := t.clone.SetAttr(p, name, val); err != nil {
		return err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpSetAttr, Target: id, Name: name, Value: val})
	return nil
}

// RemoveAttr removes an attribute.
func (t *Tx) RemoveAttr(p xenc.Pre, name string) error {
	if err := t.check(); err != nil {
		return err
	}
	id := t.clone.NodeOf(p)
	if err := t.lockSpan(p, p, xenc.NoPre); err != nil {
		return err
	}
	if err := t.clone.RemoveAttr(p, name); err != nil {
		return err
	}
	t.ops = append(t.ops, wal.Op{Kind: wal.OpRemoveAttr, Target: id, Name: name})
	return nil
}

// --- commit / abort -----------------------------------------------------------

// Commit validates the new document image, writes the WAL record and
// replays the transaction's operations onto the base store under the
// global write lock (Figure 8's commit sequence).
func (t *Tx) Commit() error {
	if t.done {
		return ErrDone
	}
	if t.err != nil {
		t.Abort()
		return t.err
	}
	if len(t.ops) == 0 {
		t.Abort()
		return nil
	}
	if v := t.m.validator; v != nil {
		if err := v(t.clone); err != nil {
			t.Abort()
			return fmt.Errorf("tx: validation failed: %w", err)
		}
	}
	m := t.m
	m.mu.Lock()
	// Commit-time check: every op target must still exist in the base
	// (page locks make this unreachable for conflicting writers, but a
	// cheap check keeps replay failures impossible).
	for i := range t.ops {
		op := &t.ops[i]
		if op.Target == xenc.NoNode {
			continue
		}
		if !knownNewID(t.ops[:i], op.Target) && m.store.PreOf(op.Target) == xenc.NoPre {
			m.mu.Unlock()
			t.Abort()
			return fmt.Errorf("tx: %w: op %d target %d vanished", ErrConflict, i, op.Target)
		}
	}
	var lsn uint64
	if m.log != nil {
		var err error
		// Append inside the critical section (it assigns the LSN that
		// orders this commit), but do NOT fsync here: durability is
		// settled by the group-commit Sync below, outside the lock, so
		// concurrent committers share one fsync instead of queueing N of
		// them behind the global mutex.
		if lsn, err = m.log.Append(t.ops); err != nil {
			m.mu.Unlock()
			t.Abort()
			return err
		}
	}
	if err := ApplyOps(m.store, t.ops); err != nil {
		// The WAL record is already written; an apply failure here is an
		// invariant violation, not a user error.
		m.mu.Unlock()
		t.Abort()
		return fmt.Errorf("tx: applying committed ops: %w", err)
	}
	m.version.Add(1)
	m.commits++
	m.mu.Unlock()
	m.invalidateStale()
	// Wake read-your-writes waiters: the ops are applied and any snapshot
	// acquired from here on observes them. Durability is settled below —
	// the watermark is about visibility, and a waiter on this replica
	// already raced ahead of the fsync the moment the lock dropped.
	m.applied.advance(lsn)
	t.lsn = lsn
	m.unlockAll(t)
	t.done = true
	// Return the image's chunk references: pages the transaction did not
	// dirty go back to being base-owned (in-place writable) as soon as
	// no snapshot shares them.
	t.clone.Release()
	t.clone = nil
	if m.log != nil {
		// Group commit: the transaction is visible to new readers already
		// (early lock release), but Commit only returns once its record is
		// on stable storage — the leader/follower door in wal.Log.Sync
		// batches the fsyncs of every committer that raced through the
		// critical section since the last one. A Sync failure is a
		// half-state: applied and visible, durability unknown — reported
		// as ErrNotDurable, which the caller must not answer by retrying.
		if err := m.log.Sync(lsn); err != nil {
			return fmt.Errorf("%w: %w", ErrNotDurable, err)
		}
	}
	return nil
}

func knownNewID(prior []wal.Op, id xenc.NodeID) bool {
	for i := range prior {
		for _, n := range prior[i].NewIDs {
			if n == id {
				return true
			}
		}
	}
	return false
}

// Abort drops the transaction image and releases all locks.
func (t *Tx) Abort() {
	if t.done {
		return
	}
	t.m.mu.Lock()
	t.m.aborts++
	t.m.mu.Unlock()
	t.m.unlockAll(t)
	t.done = true
	t.clone.Release()
	t.clone = nil
}

// ApplyOps replays resolved operations onto a store, mapping the
// transaction-local ids of inserted nodes to the ids the store hands out
// (recovery uses the same code path, which keeps replay deterministic).
func ApplyOps(store *core.Store, ops []wal.Op) error {
	idMap := make(map[xenc.NodeID]xenc.NodeID)
	resolve := func(id xenc.NodeID) xenc.NodeID {
		if mapped, ok := idMap[id]; ok {
			return mapped
		}
		return id
	}
	for i := range ops {
		op := &ops[i]
		var p xenc.Pre
		if op.Target != xenc.NoNode {
			p = store.PreOf(resolve(op.Target))
			if p == xenc.NoPre {
				return fmt.Errorf("tx: op %d: target node %d not found", i, op.Target)
			}
		}
		var newIDs []xenc.NodeID
		var err error
		switch op.Kind {
		case wal.OpInsertBefore:
			if op.Target == xenc.NoNode {
				return fmt.Errorf("tx: op %d: insert-before without anchor", i)
			}
			newIDs, err = store.InsertBefore(p, walToFrag(op.Frag))
		case wal.OpInsertAfter:
			newIDs, err = store.InsertAfter(p, walToFrag(op.Frag))
		case wal.OpAppendChild:
			newIDs, err = store.AppendChild(p, walToFrag(op.Frag))
		case wal.OpInsertChildAt:
			newIDs, err = store.InsertChildAt(p, int(op.Child), walToFrag(op.Frag))
		case wal.OpDelete:
			err = store.Delete(p)
		case wal.OpSetValue:
			err = store.SetValue(p, op.Value)
		case wal.OpRename:
			err = store.Rename(p, op.Name)
		case wal.OpSetAttr:
			err = store.SetAttr(p, op.Name, op.Value)
		case wal.OpRemoveAttr:
			err = store.RemoveAttr(p, op.Name)
		default:
			err = fmt.Errorf("unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("tx: op %d (%d): %w", i, op.Kind, err)
		}
		for j, id := range op.NewIDs {
			if j < len(newIDs) {
				idMap[id] = newIDs[j]
			}
		}
	}
	return nil
}
