package tx

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mxq/internal/serialize"
	"mxq/internal/xenc"
)

// TestClosedSnapshotRestoresInPlaceWrites is the lifecycle regression
// test: a long-lived snapshot that outlives several commits pins the
// chunks of its version, and closing it must return every one of them
// to refcount 1 so the base store resumes in-place writes.
func TestClosedSnapshotRestoresInPlaceWrites(t *testing.T) {
	// A document spanning several logical pages, so the commits below
	// dirty a strict subset of the chunks the snapshot pins.
	s := buildStore(t, raceDoc(8, 4), 16)
	m := NewManager(s, nil)
	total := s.DirtyPages() // fresh store: every chunk exclusively owned
	if total < 3 {
		t.Fatalf("test document too small: %d page chunks", total)
	}

	snap := m.Snapshot()
	if got := s.DirtyPages(); got != 0 {
		t.Fatalf("base owns %d chunks while the snapshot shares everything, want 0", got)
	}
	for i := 0; i < 5; i++ {
		setBook(t, m, i%3, fmt.Sprintf("v%d", i))
	}
	// The commits superseded the snapshot's version, so the cache slot's
	// reference is gone (write-only phase) and the handle is the last
	// sharer. The pages the commits dirtied were privately copied; the
	// rest are still shared with the handle.
	if got := s.DirtyPages(); got >= total {
		t.Fatalf("base owns %d/%d chunks while the handle is open — nothing is pinned", got, total)
	}
	snap.Close()
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after the last handle closed; copy-on-write tax not lifted", got, total)
	}
	// And the base really does write in place now: a 1-node commit may
	// not recopy the whole store.
	setBook(t, m, 0, "in-place")
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after a post-close commit", got, total)
	}
}

// TestSnapshotDoubleClose: Close must be idempotent — the second call
// must not release a reference some other sharer still owns.
func TestSnapshotDoubleClose(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	a := m.Snapshot()
	b := m.Snapshot()
	if a.View() != b.View() {
		t.Fatal("two handles at the same version did not share one snapshot")
	}
	a.Close()
	a.Close() // idempotent: must not steal b's (or the cache slot's) reference
	if !a.Closed() || b.Closed() {
		t.Fatalf("Closed() reports a=%v b=%v, want true false", a.Closed(), b.Closed())
	}
	before := viewXML(t, b.View())
	setBook(t, m, 0, "after-double-close")
	if got := viewXML(t, b.View()); got != before {
		t.Fatal("surviving handle drifted after sibling double-close")
	}
	b.Close()
	setBook(t, m, 1, "drain") // supersede + invalidate the cached version
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after all handles closed", got, total)
	}
}

// TestSnapshotCloseRacesCommit closes handles from one goroutine while
// commits land in another (run under -race): refcount handoff must stay
// exact, and when everything quiesces the base must own every chunk.
func TestSnapshotCloseRacesCommit(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	const commits = 60
	snaps := make(chan *Snapshot, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for snap := range snaps {
			snap.Close()
		}
	}()
	for i := 0; i < commits; i++ {
		snaps <- m.Snapshot()
		setBook(t, m, i%3, fmt.Sprintf("c%d", i))
	}
	close(snaps)
	wg.Wait()

	// One more commit invalidates the cache slot of the final version;
	// with every handle closed, nothing shares the base's chunks.
	setBook(t, m, 0, "quiesce")
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after all racing handles closed", got, total)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadRacesClose: a read through WithView racing Close on
// the same handle must either observe the live view to completion or
// fail with ErrSnapshotClosed — never have the snapshot released out
// from under it mid-read. Run under -race.
func TestSnapshotReadRacesClose(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	for i := 0; i < 100; i++ {
		snap := m.Snapshot()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			err := snap.WithView(func(v xenc.DocView) error {
				var b strings.Builder
				return serialize.Document(&b, v, serialize.Options{})
			})
			if err != nil && err != ErrSnapshotClosed {
				t.Errorf("iteration %d: WithView: %v", i, err)
			}
		}()
		go func() {
			defer wg.Done()
			snap.Close()
		}()
		wg.Wait()
		if err := snap.WithView(func(xenc.DocView) error { return nil }); err != ErrSnapshotClosed {
			t.Fatalf("iteration %d: read after Close: %v, want ErrSnapshotClosed", i, err)
		}
	}
	setBook(t, m, 0, "quiesce") // invalidate the cached version
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after racing reads and closes", got, total)
	}
}

// TestSnapshotOutlivesManager: a handle must stay readable after the
// manager that issued it is gone — the snapshot owns references to its
// chunks, not to the manager.
func TestSnapshotOutlivesManager(t *testing.T) {
	s := buildStore(t, doc, 16)
	var snap *Snapshot
	var want string
	func() {
		m := NewManager(s, nil)
		snap = m.Snapshot()
		want = viewXML(t, snap.View())
		setBook(t, m, 0, "mutated-before-manager-died")
	}()
	runtime.GC()
	runtime.GC()
	if got := viewXML(t, snap.View()); got != want {
		t.Fatalf("snapshot drifted after its manager was dropped:\nwant: %s\ngot:  %s", want, got)
	}
	snap.Close()
}

// TestSnapshotFinalizerWarnsAndReleases: an unclosed handle that becomes
// garbage must be released by its finalizer and reported through the
// leak handler, so even leaky callers don't tax the base forever.
func TestSnapshotFinalizerWarnsAndReleases(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	warned := make(chan uint64, 1)
	SetSnapshotLeakHandler(func(v uint64, _ []byte) {
		select {
		case warned <- v:
		default:
		}
	})
	defer SetSnapshotLeakHandler(nil)

	func() {
		leaked := m.Snapshot() // never closed
		_ = leaked.Version()
	}()
	// Supersede the leaked version so the leaked handle holds the only
	// outstanding reference once the cache moves on.
	setBook(t, m, 0, "supersede")

	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		select {
		case v := <-warned:
			if v != 0 {
				t.Fatalf("leak handler reported version %d, want 0", v)
			}
			if got := s.DirtyPages(); got != total {
				t.Fatalf("base owns %d/%d chunks after finalizer release", got, total)
			}
			return
		case <-deadline:
			t.Fatal("finalizer never fired for the leaked snapshot")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestRacingFirstReadersBuildInParallel proves the epoch-based slow
// path: two first-readers arriving after a commit must both be inside
// snapshot construction at the same time — neither serialized behind a
// manager-wide reader lock — and both must come away with a consistent
// view of the current version. Run under -race.
func TestRacingFirstReadersBuildInParallel(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)
	total := s.DirtyPages()

	const racers = 3
	var entered atomic.Int32
	var maxConcurrent atomic.Int32
	proceed := make(chan struct{})
	var once sync.Once
	m.snapBuildHook = func() {
		n := entered.Add(1)
		for {
			old := maxConcurrent.Load()
			if n <= old || maxConcurrent.CompareAndSwap(old, n) {
				break
			}
		}
		if n >= 2 {
			once.Do(func() { close(proceed) })
		}
		// Block until a second builder is in flight, proving the builds
		// overlap. The timeout keeps a regression (builders serialized
		// again) from deadlocking the suite; it fails the test below
		// via maxConcurrent instead.
		select {
		case <-proceed:
		case <-time.After(10 * time.Second):
		}
		entered.Add(-1)
	}

	setBook(t, m, 0, "stale-the-cache") // every racer must take the slow path

	want := m.Version()
	views := make([]*ReadView, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = m.AcquireRead()
		}(i)
	}
	wg.Wait()

	if got := maxConcurrent.Load(); got < 2 {
		t.Fatalf("at most %d snapshot build(s) ran concurrently; first readers are serialized again", got)
	}
	var xml string
	for i, rv := range views {
		if rv.Version() != want {
			t.Fatalf("racer %d acquired version %d, want %d", i, rv.Version(), want)
		}
		got := viewXML(t, rv.View())
		if xml == "" {
			xml = got
		} else if got != xml {
			t.Fatalf("racer %d saw a different document at the same version", i)
		}
		rv.Close()
	}
	// Losing builds must have been released on the spot: after the cache
	// moves on, the base owns every chunk again.
	m.snapBuildHook = nil
	setBook(t, m, 1, "drain")
	if got := s.DirtyPages(); got != total {
		t.Fatalf("base owns %d/%d chunks after the race; a losing build leaked its references", got, total)
	}
}

// TestSnapshotLeakStackAttribution: with SetSnapshotDebug on, a leaked
// handle's report must carry the call stack of the site that opened it,
// so the leak handler can say *where* the handle came from.
func TestSnapshotLeakStackAttribution(t *testing.T) {
	s := buildStore(t, doc, 16)
	m := NewManager(s, nil)

	SetSnapshotDebug(true)
	defer SetSnapshotDebug(false)
	type leak struct {
		version uint64
		stack   []byte
	}
	leaks := make(chan leak, 1)
	SetSnapshotLeakHandler(func(v uint64, stack []byte) {
		select {
		case leaks <- leak{v, stack}:
		default:
		}
	})
	defer SetSnapshotLeakHandler(nil)

	leakySnapshotOpener(m)
	setBook(t, m, 0, "supersede-leaked-version")

	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		select {
		case l := <-leaks:
			if len(l.stack) == 0 {
				t.Fatal("leak reported without a captured stack despite debug mode")
			}
			if !strings.Contains(string(l.stack), "leakySnapshotOpener") {
				t.Fatalf("stack does not attribute the leak to its opener:\n%s", l.stack)
			}
			return
		case <-deadline:
			t.Fatal("finalizer never fired for the leaked snapshot")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// leakySnapshotOpener exists to have a recognizable frame in the
// captured stack.
//
//go:noinline
func leakySnapshotOpener(m *Manager) {
	snap := m.Snapshot() // deliberately never closed
	_ = snap.Version()
}
