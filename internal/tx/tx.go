// Package tx implements the ACID transaction protocol of Section 3.2
// (Figure 8) over the paged document store:
//
//   - read-only queries run against an immutable per-version snapshot
//     (AcquireRead): the manager keeps a monotonic version counter,
//     bumped on every commit, and lazily caches one copy-on-write
//     snapshot for the current committed version. Acquiring a read view
//     at an unchanged version is a refcount bump — no per-query
//     O(pages) snapshot, and no lock held during evaluation, so long
//     scans never block commits and commits never block readers;
//   - write transactions work in isolation on a *page-granular
//     copy-on-write* image of the base store (core.Store.Snapshot): the
//     image shares all pages with the base and privately copies only the
//     pages its updates touch, so beginning a transaction and making a
//     small update are both O(pages touched), never O(document). They
//     acquire page-grained write locks for every logical page their
//     structural updates touch (no-wait locking: a conflict aborts the
//     younger request instead of risking deadlock);
//   - ancestor size maintenance is performed with commutative delta
//     increments at commit, so concurrent writers under the same
//     ancestors — in particular the document root — never contend on
//     ancestor pages ("delta operations are commutative, it does not
//     matter in which order they are executed");
//   - commit takes the global write lock briefly: validate, write one
//     WAL record, replay the transaction's resolved operations onto the
//     base store, release.
//
// For the ablation of this design, a Manager can be put in
// root-locking mode (LockAncestors), which additionally write-locks every
// ancestor's page the way an absolute-value size update would require;
// the CommutativeDeltas benchmark contrasts the two.
package tx

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"mxq/internal/core"
	"mxq/internal/wal"
	"mxq/internal/xenc"
)

// ErrConflict reports a page-lock conflict with a concurrent writer. The
// caller should abort and retry the transaction.
var ErrConflict = errors.New("tx: page lock conflict")

// ErrDone reports use of a finished transaction.
var ErrDone = errors.New("tx: transaction already committed or aborted")

// Validator checks document consistency before commit ("run XML document
// validation (if there is a schema)"). A non-nil error aborts the commit.
type Validator func(v xenc.DocView) error

// Manager coordinates transactions over one base store.
type Manager struct {
	mu        sync.RWMutex // the paper's global read/write lock
	store     *core.Store
	log       *wal.Log
	validator Validator

	// version counts committed write transactions. It is bumped inside
	// the commit critical section (under mu) and read atomically by the
	// lock-free read path to detect a stale cached snapshot.
	version atomic.Uint64

	// cached is the snapshot for the current committed version, built
	// lazily by AcquireRead and replaced (never mutated) when a reader
	// first arrives after a commit. Commit drops the cache-slot
	// reference of a superseded snapshot (invalidateStale) so a
	// write-only phase neither pins the old version in memory nor pays
	// copy-on-write for chunks no reader will ever lease again. readMu
	// serializes cache maintenance only; it is never held during query
	// evaluation and never taken while holding mu, so the read and
	// write paths cannot deadlock and evaluation shares no lock with
	// commits.
	readMu sync.Mutex
	cached *readSnap

	lockMu sync.Mutex
	owners map[int32]*Tx // logical page -> holder

	// LockAncestors switches to the root-locking discipline (ablation).
	lockAncestors bool

	commits  uint64
	aborts   uint64
	pageBits uint
}

// readSnap is one cached per-version snapshot plus its lease count: one
// reference is held by the manager's cache slot while the snap is
// current, plus one per open ReadView. When the count reaches zero —
// the cache has moved on to a newer version and the last reader closed —
// the snapshot's chunk references are released, handing ownership back
// to the base store (see core.Store.Release).
type readSnap struct {
	store   *core.Store
	version uint64
	refs    atomic.Int64
}

func (rs *readSnap) release() {
	if rs.refs.Add(-1) == 0 {
		rs.store.Release()
	}
}

// ReadView is a leased handle on the cached snapshot of one committed
// version. The view is immutable and safe for concurrent use; Close
// returns the lease (idempotent). Holding a ReadView open pins the
// chunks its version shares with the base, so long-running readers cost
// the base only the pages dirtied by commits that overlap them.
type ReadView struct {
	rs     *readSnap
	closed atomic.Bool
}

// View returns the immutable document view.
func (rv *ReadView) View() xenc.DocView { return rv.rs.store }

// Version returns the committed version the view observes.
func (rv *ReadView) Version() uint64 { return rv.rs.version }

// Close returns the lease. Calling Close more than once is harmless.
func (rv *ReadView) Close() {
	if rv.closed.CompareAndSwap(false, true) {
		rv.rs.release()
	}
}

// NewManager wraps a store; log may be nil for a volatile database.
func NewManager(store *core.Store, log *wal.Log) *Manager {
	return &Manager{
		store:    store,
		log:      log,
		owners:   make(map[int32]*Tx),
		pageBits: uint(bits.TrailingZeros(uint(store.PageSize()))),
	}
}

// SetValidator installs the pre-commit document validator.
func (m *Manager) SetValidator(v Validator) { m.validator = v }

// SetLockAncestors toggles the root-locking ablation mode.
func (m *Manager) SetLockAncestors(on bool) { m.lockAncestors = on }

// View runs a read-only transaction under the global read lock (the
// paper's original read path; AcquireRead is the lock-free successor —
// View remains for callers that need to see the base store itself).
func (m *Manager) View(fn func(v xenc.DocView) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return fn(m.store)
}

// Version returns the number of committed write transactions.
func (m *Manager) Version() uint64 { return m.version.Load() }

// AcquireRead leases an immutable snapshot of the current committed
// version. The fast path — the cached snapshot is still current — is a
// version check and a refcount bump: no lock is held while the caller
// evaluates against the view, so readers fully overlap commits. The
// first reader after a commit pays one O(pages) snapshot, which then
// serves every reader until the next commit.
//
// The caller must Close the returned view when done; the snapshot for a
// superseded version is dropped when its last reader closes, returning
// chunk ownership to the base store.
func (m *Manager) AcquireRead() *ReadView {
	m.readMu.Lock()
	rs := m.cached
	if rs == nil || rs.version != m.version.Load() {
		rs = m.refreshLocked()
	}
	rs.refs.Add(1)
	m.readMu.Unlock()
	return &ReadView{rs: rs}
}

// refreshLocked builds the snapshot for the current committed version
// and installs it as the cache entry. readMu must be held. The snapshot
// and its version are captured under the shared read lock, so a commit
// cannot slip between them; commits themselves never take readMu, which
// keeps the lock order (readMu → mu.RLock) acyclic.
func (m *Manager) refreshLocked() *readSnap {
	m.mu.RLock()
	snap := m.store.Snapshot()
	v := m.version.Load()
	m.mu.RUnlock()
	rs := &readSnap{store: snap, version: v}
	rs.refs.Store(1) // the cache slot's reference
	if old := m.cached; old != nil {
		old.release()
	}
	m.cached = rs
	return rs
}

// invalidateStale drops the cache-slot reference of a snapshot whose
// version has been superseded, so open readers keep their leases but
// the cache stops pinning the old version across a write-only phase.
// Commit calls it after releasing the global lock — never under mu:
// AcquireRead's slow path acquires mu.RLock while holding readMu, so
// taking readMu under mu would deadlock.
func (m *Manager) invalidateStale() {
	m.readMu.Lock()
	if rs := m.cached; rs != nil && rs.version != m.version.Load() {
		m.cached = nil
		rs.release()
	}
	m.readMu.Unlock()
}

// Stats returns commit and abort counters.
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.commits, m.aborts
}

// Begin starts a write transaction. The returned Tx is not safe for
// concurrent use by multiple goroutines.
//
// The transaction's private image is a page-granular copy-on-write
// snapshot (core.Store.Snapshot): taking it costs O(pages) and the
// transaction's writes materialize only the pages they touch. Snapshot
// creation only increments chunk reference counts — it never mutates
// base-private state — so it runs under the shared read lock (to
// exclude commits) and proceeds in parallel with read-only queries and
// other Begins.
func (m *Manager) Begin() *Tx {
	return &Tx{m: m, clone: m.snapshot(), pages: make(map[int32]bool)}
}

func (m *Manager) snapshot() *core.Store {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store.Snapshot()
}

// Snapshot returns an immutable point-in-time view of the document that
// can be read without holding any lock: readers traverse it while later
// write transactions commit concurrently, because commits copy the pages
// they modify instead of updating shared chunks in place (Section 3.2's
// copy-on-write reader isolation). The view is safe for concurrent use
// by any number of goroutines and stays consistent forever. A read-only
// snapshot never materializes pages of its own — it pins the chunks it
// shares with the base, which the garbage collector reclaims once the
// base replaces them and the snapshot itself is dropped. Because the
// returned view has no release hook, the base keeps copy-on-write
// semantics for its chunks indefinitely; prefer AcquireRead, whose
// leased views hand ownership back when closed.
func (m *Manager) Snapshot() xenc.DocView {
	return m.snapshot()
}

// Checkpoint writes an LSN-stamped snapshot of the current base store;
// a subsequent Recover needs only WAL records after that LSN.
func (m *Manager) Checkpoint(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	lsn := uint64(0)
	if m.log != nil {
		lsn = m.log.LastLSN()
	}
	if err := writeHeader(w, lsn); err != nil {
		return err
	}
	return m.store.Save(w)
}

// Recover rebuilds a store from a checkpoint and a WAL, replaying every
// committed record the checkpoint predates ("during recovery an
// up-to-date version of the database can be restored").
func Recover(snapshot io.Reader, log *wal.Log) (*core.Store, error) {
	lsn, err := readHeader(snapshot)
	if err != nil {
		return nil, err
	}
	store, err := core.Load(snapshot)
	if err != nil {
		return nil, err
	}
	if log == nil {
		return store, nil
	}
	// The checkpoint covers every record up to lsn. Make sure the log
	// never hands out those LSNs again (a truncated log reopens with its
	// counter at 0), or commits after this recovery would be skipped by
	// the replay of the next one.
	log.EnsureLSN(lsn)
	err = log.Replay(lsn, func(rec *wal.Record) error {
		if err := ApplyOps(store, rec.Ops); err != nil {
			return fmt.Errorf("tx: replaying LSN %d: %w", rec.LSN, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return store, nil
}

func writeHeader(w io.Writer, lsn uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(lsn >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

func readHeader(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("tx: reading checkpoint header: %w", err)
	}
	var lsn uint64
	for i := 0; i < 8; i++ {
		lsn |= uint64(b[i]) << (8 * i)
	}
	return lsn, nil
}

// --- page locks -------------------------------------------------------------

// lockPages acquires write locks on the given logical pages for t,
// all-or-nothing. A page held by another transaction causes ErrConflict
// (no-wait two-phase locking; locks are held until commit/abort).
func (m *Manager) lockPages(t *Tx, pages []int32) error {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for _, pg := range pages {
		if owner, held := m.owners[pg]; held && owner != t {
			return ErrConflict
		}
	}
	for _, pg := range pages {
		m.owners[pg] = t
		t.pages[pg] = true
	}
	return nil
}

func (m *Manager) unlockAll(t *Tx) {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for pg := range t.pages {
		if m.owners[pg] == t {
			delete(m.owners, pg)
		}
	}
	t.pages = make(map[int32]bool)
}
