// Package tx implements the ACID transaction protocol of Section 3.2
// (Figure 8) over the paged document store:
//
//   - read-only queries run against an immutable per-version snapshot
//     (AcquireRead): the manager keeps a monotonic version counter,
//     bumped on every commit, and lazily caches one copy-on-write
//     snapshot for the current committed version. Acquiring a read view
//     at an unchanged version is a refcount bump — no per-query
//     O(pages) snapshot, and no lock held during evaluation, so long
//     scans never block commits and commits never block readers;
//   - write transactions work in isolation on a *page-granular
//     copy-on-write* image of the base store (core.Store.Snapshot): the
//     image shares all pages with the base and privately copies only the
//     pages its updates touch, so beginning a transaction and making a
//     small update are both O(pages touched), never O(document). They
//     acquire page-grained write locks for every logical page their
//     structural updates touch (no-wait locking: a conflict aborts the
//     younger request instead of risking deadlock);
//   - ancestor size maintenance is performed with commutative delta
//     increments at commit, so concurrent writers under the same
//     ancestors — in particular the document root — never contend on
//     ancestor pages ("delta operations are commutative, it does not
//     matter in which order they are executed");
//   - commit takes the global write lock briefly: validate, write one
//     WAL record, replay the transaction's resolved operations onto the
//     base store, release.
//
// For the ablation of this design, a Manager can be put in
// root-locking mode (LockAncestors), which additionally write-locks every
// ancestor's page the way an absolute-value size update would require;
// the CommutativeDeltas benchmark contrasts the two.
package tx

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"mxq/internal/core"
	"mxq/internal/wal"
	"mxq/internal/xenc"
)

// ErrConflict reports a page-lock conflict with a concurrent writer. The
// caller should abort and retry the transaction.
var ErrConflict = errors.New("tx: page lock conflict")

// ErrDone reports use of a finished transaction.
var ErrDone = errors.New("tx: transaction already committed or aborted")

// ErrNotDurable reports that a commit was APPLIED — its effects are in
// the base store and visible to readers — but the group-commit fsync
// failed, so the record may not survive a crash. This is not a clean
// failure: the caller must NOT retry the transaction (that would apply
// it twice); treat it like any other lost-disk condition (surface it,
// stop accepting writes, or fall back to a fresh checkpoint).
var ErrNotDurable = errors.New("tx: commit applied but not durable")

// Validator checks document consistency before commit ("run XML document
// validation (if there is a schema)"). A non-nil error aborts the commit.
type Validator func(v xenc.DocView) error

// Manager coordinates transactions over one base store.
type Manager struct {
	mu        sync.RWMutex // the paper's global read/write lock
	store     *core.Store
	log       *wal.Log
	validator Validator

	// version counts committed write transactions. It is bumped inside
	// the commit critical section (under mu) and read atomically by the
	// lock-free read path to detect a stale cached snapshot.
	version atomic.Uint64

	// cached is the snapshot for the current committed version, built
	// lazily by the read path and replaced (never mutated) when a reader
	// first arrives after a commit. Cache maintenance is epoch-based and
	// entirely lock-free: racing first-readers after a commit each build
	// a snapshot in parallel (Snapshot only bumps refcounts, so builds
	// don't conflict), the newest version wins the CAS into the slot,
	// and losers either adopt the winner or release their build
	// immediately. Commit drops the cache-slot reference of a superseded
	// snapshot (invalidateStale) so a write-only phase neither pins the
	// old version in memory nor pays copy-on-write for chunks no reader
	// will ever lease again.
	cached atomic.Pointer[readSnap]

	// snapBuildHook, when non-nil, runs between building a snapshot and
	// trying to install it (testing hook: it lets tests prove that
	// racing first-readers really do build in parallel). Set it before
	// any reader runs; it must not be mutated afterwards.
	snapBuildHook func()

	lockMu sync.Mutex
	owners map[int32]*Tx // logical page -> holder

	// LockAncestors switches to the root-locking discipline (ablation).
	lockAncestors bool

	commits  uint64
	aborts   uint64
	pageBits uint

	// applied is the read-your-writes watermark (see repl.go).
	applied appliedLSN
}

// readSnap is one cached per-version snapshot plus its lease count: one
// reference is held by the manager's cache slot while the snap is
// current, plus one per open ReadView. When the count reaches zero —
// the cache has moved on to a newer version and the last reader closed —
// the snapshot's chunk references are released, handing ownership back
// to the base store (see core.Store.Release).
type readSnap struct {
	store   *core.Store
	version uint64
	refs    atomic.Int64
}

func (rs *readSnap) release() {
	if rs.refs.Add(-1) == 0 {
		rs.store.Release()
	}
}

// tryAcquire takes one reference unless the snapshot is already fully
// released. The CAS loop makes the "is it still alive" check and the
// increment atomic: a reader that loses the race against the final
// release must not resurrect a snapshot whose chunks are already handed
// back.
func (rs *readSnap) tryAcquire() bool {
	for {
		n := rs.refs.Load()
		if n <= 0 {
			return false
		}
		if rs.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// ReadView is a leased handle on the cached snapshot of one committed
// version. The view is immutable and safe for concurrent use; Close
// returns the lease (idempotent). Holding a ReadView open pins the
// chunks its version shares with the base, so long-running readers cost
// the base only the pages dirtied by commits that overlap them.
type ReadView struct {
	rs     *readSnap
	closed atomic.Bool
}

// View returns the immutable document view.
func (rv *ReadView) View() xenc.DocView { return rv.rs.store }

// Version returns the committed version the view observes.
func (rv *ReadView) Version() uint64 { return rv.rs.version }

// Close returns the lease. Calling Close more than once is harmless.
func (rv *ReadView) Close() {
	if rv.closed.CompareAndSwap(false, true) {
		rv.rs.release()
	}
}

// NewManager wraps a store; log may be nil for a volatile database.
func NewManager(store *core.Store, log *wal.Log) *Manager {
	m := &Manager{
		store:    store,
		log:      log,
		owners:   make(map[int32]*Tx),
		pageBits: uint(bits.TrailingZeros(uint(store.PageSize()))),
	}
	if log != nil {
		// Everything recovered (or replicated) up to the log's tail is in
		// the store the caller hands us, so the read-your-writes watermark
		// starts there — a client that saw LSN n commit before a failover
		// must not be told the recovered replica is behind n.
		m.applied.advance(log.LastLSN())
	}
	return m
}

// SetValidator installs the pre-commit document validator.
func (m *Manager) SetValidator(v Validator) { m.validator = v }

// SetLockAncestors toggles the root-locking ablation mode.
func (m *Manager) SetLockAncestors(on bool) { m.lockAncestors = on }

// View runs a read-only transaction under the global read lock (the
// paper's original read path; AcquireRead is the lock-free successor —
// View remains for callers that need to see the base store itself).
func (m *Manager) View(fn func(v xenc.DocView) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return fn(m.store)
}

// Version returns the number of committed write transactions.
func (m *Manager) Version() uint64 { return m.version.Load() }

// AcquireRead leases an immutable snapshot of the current committed
// version. The fast path — the cached snapshot is still current — is an
// atomic pointer load, a version check and a refcount bump: no lock is
// held while the caller evaluates against the view, so readers fully
// overlap commits. The slow path is epoch-based: every first-reader
// racing in after a commit builds its own O(pages) snapshot in parallel
// (snapshot construction only increments chunk refcounts under the
// shared read lock, so builds never conflict with each other or with
// other readers), and the builds are reconciled by compare-and-swap on
// the cache slot — the newest version wins, racers that lose to an
// equal-version build adopt the winner and release their own build
// immediately, and a build overtaken by an even newer commit is served
// to its own caller uncached. No reader ever waits for another reader's
// build.
//
// The caller must Close the returned view when done; the snapshot for a
// superseded version is dropped when its last reader closes, returning
// chunk ownership to the base store.
func (m *Manager) AcquireRead() *ReadView {
	return &ReadView{rs: m.acquireSnap()}
}

// acquireSnap returns the current version's snapshot with one reference
// taken for the caller.
func (m *Manager) acquireSnap() *readSnap {
	for {
		if rs := m.cached.Load(); rs != nil && rs.version == m.version.Load() && rs.tryAcquire() {
			return rs
		}
		if rs := m.buildSnap(); rs != nil {
			return rs
		}
	}
}

// buildSnap is the epoch-based slow path: build a snapshot of the
// current committed version without holding any manager-wide reader
// lock, then reconcile with racing builders through the cache slot's
// compare-and-swap. The snapshot and its version are captured together
// under the shared read lock, so a commit cannot slip between them.
// The returned snapshot carries one reference for the caller.
func (m *Manager) buildSnap() *readSnap {
	m.mu.RLock()
	snap := m.store.Snapshot()
	v := m.version.Load()
	m.mu.RUnlock()
	if h := m.snapBuildHook; h != nil {
		h()
	}
	rs := &readSnap{store: snap, version: v}
	rs.refs.Store(1) // the caller's lease
	for {
		old := m.cached.Load()
		if old != nil {
			if old.version > v {
				// A racer installed a newer epoch while we built. Our
				// snapshot is still a consistent view of a version that
				// was current within this call, so serve it to our own
				// caller uncached; it is released when that one lease
				// closes.
				return rs
			}
			if old.version == v {
				// Lost the install race to an equal-version build:
				// adopt the winner and release ours immediately.
				if old.tryAcquire() {
					rs.release()
					return old
				}
				// The cached equal-version snapshot was already fully
				// released (a commit invalidated it and its last reader
				// left); the CAS below will fail against the changed
				// slot and we reconcile again.
			}
		}
		rs.refs.Add(1) // the cache slot's reference
		if m.cached.CompareAndSwap(old, rs) {
			if old != nil {
				old.release()
			}
			// A commit may have landed between capturing the version
			// and installing: its invalidateStale can have run before
			// our install made rs visible, so re-check and self-evict
			// rather than leave a stale snapshot pinned in the slot
			// across a write-only phase.
			if rs.version != m.version.Load() {
				m.invalidateStale()
			}
			return rs
		}
		rs.refs.Add(-1)
	}
}

// invalidateStale drops the cache-slot reference of a snapshot whose
// version has been superseded, so open readers keep their leases but
// the cache stops pinning the old version across a write-only phase.
// Commit calls it after releasing the global lock; it is lock-free and
// safe to race with readers installing fresh snapshots.
func (m *Manager) invalidateStale() {
	for {
		rs := m.cached.Load()
		if rs == nil || rs.version == m.version.Load() {
			return
		}
		if m.cached.CompareAndSwap(rs, nil) {
			rs.release()
			return
		}
	}
}

// Stats returns commit and abort counters.
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.commits, m.aborts
}

// Begin starts a write transaction. The returned Tx is not safe for
// concurrent use by multiple goroutines.
//
// The transaction's private image is a page-granular copy-on-write
// snapshot (core.Store.Snapshot): taking it costs O(pages) and the
// transaction's writes materialize only the pages they touch. Snapshot
// creation only increments chunk reference counts — it never mutates
// base-private state — so it runs under the shared read lock (to
// exclude commits) and proceeds in parallel with read-only queries and
// other Begins.
func (m *Manager) Begin() *Tx {
	return &Tx{m: m, clone: m.snapshot(), pages: make(map[int32]bool)}
}

func (m *Manager) snapshot() *core.Store {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store.Snapshot()
}

// CompactDictionaries rebuilds the shared qualified-name pool and
// attribute-value dictionary of the base store, dropping entries leaked
// by aborted transactions (see core.Store.CompactDictionaries). It runs
// under the global write lock — like a commit — and returns the number
// of dropped name and property entries. Live snapshots and in-flight
// transactions keep their own references to the old pools and chunks,
// so they are never disturbed.
func (m *Manager) CompactDictionaries() (namesDropped, propsDropped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.CompactDictionaries()
}

// Checkpoint writes an LSN-stamped snapshot of the current base store
// under the full write lock (the stop-the-world legacy path; the online
// path pins a snapshot with PinCheckpoint and streams it outside the
// lock — see internal/ckpt). It returns the LSN the image covers: a
// subsequent Recover needs only WAL records after that LSN, and the
// caller must discard WAL records only up to that LSN (wal.Log.Prune) —
// never the whole log, or a commit racing the checkpoint would be lost.
func (m *Manager) Checkpoint(w io.Writer) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lsn := uint64(0)
	if m.log != nil {
		lsn = m.log.LastLSN()
	}
	if err := WriteSnapshotHeader(w, lsn); err != nil {
		return 0, err
	}
	return lsn, m.store.Save(w)
}

// PinCheckpoint captures a copy-on-write snapshot of the base store
// together with the LSN of the last record it covers, atomically with
// respect to commits (commits append to the WAL and apply to the base
// inside the write-lock critical section, so under the shared read lock
// the pair cannot tear). The snapshot costs O(pages) refcount bumps; the
// caller streams core.Store.Save from it outside any lock — commits
// proceed at full speed during the O(document) write — and must Release
// it when done.
func (m *Manager) PinCheckpoint() (*core.Store, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap := m.store.Snapshot()
	var lsn uint64
	if m.log != nil {
		lsn = m.log.LastLSN()
	}
	return snap, lsn
}

// Recover rebuilds a store from a checkpoint and a WAL, replaying every
// committed record the checkpoint predates ("during recovery an
// up-to-date version of the database can be restored").
func Recover(snapshot io.Reader, log *wal.Log) (*core.Store, error) {
	lsn, err := ReadSnapshotHeader(snapshot)
	if err != nil {
		return nil, err
	}
	store, err := core.Load(snapshot)
	if err != nil {
		return nil, err
	}
	if log == nil {
		return store, nil
	}
	// The checkpoint covers every record up to lsn. Make sure the log
	// never hands out those LSNs again (a truncated log reopens with its
	// counter at 0), or commits after this recovery would be skipped by
	// the replay of the next one.
	log.EnsureLSN(lsn)
	err = log.Replay(lsn, func(rec *wal.Record) error {
		if err := ApplyOps(store, rec.Ops); err != nil {
			return fmt.Errorf("tx: replaying LSN %d: %w", rec.LSN, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return store, nil
}

// WriteSnapshotHeader prefixes a checkpoint image with the LSN it
// covers (8 bytes, little endian). internal/ckpt shares the format.
func WriteSnapshotHeader(w io.Writer, lsn uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(lsn >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

// ReadSnapshotHeader reads the LSN written by WriteSnapshotHeader.
func ReadSnapshotHeader(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("tx: reading checkpoint header: %w", err)
	}
	var lsn uint64
	for i := 0; i < 8; i++ {
		lsn |= uint64(b[i]) << (8 * i)
	}
	return lsn, nil
}

// --- page locks -------------------------------------------------------------

// lockPages acquires write locks on the given logical pages for t,
// all-or-nothing. A page held by another transaction causes ErrConflict
// (no-wait two-phase locking; locks are held until commit/abort).
func (m *Manager) lockPages(t *Tx, pages []int32) error {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for _, pg := range pages {
		if owner, held := m.owners[pg]; held && owner != t {
			return ErrConflict
		}
	}
	for _, pg := range pages {
		m.owners[pg] = t
		t.pages[pg] = true
	}
	return nil
}

func (m *Manager) unlockAll(t *Tx) {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for pg := range t.pages {
		if m.owners[pg] == t {
			delete(m.owners, pg)
		}
	}
	t.pages = make(map[int32]bool)
}
