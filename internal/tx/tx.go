// Package tx implements the ACID transaction protocol of Section 3.2
// (Figure 8) over the paged document store:
//
//   - read-only queries acquire a global read lock for their duration,
//     or take a lock-free Snapshot view that stays consistent across
//     commits;
//   - write transactions work in isolation on a *page-granular
//     copy-on-write* image of the base store (core.Store.Snapshot): the
//     image shares all pages with the base and privately copies only the
//     pages its updates touch, so beginning a transaction and making a
//     small update are both O(pages touched), never O(document). They
//     acquire page-grained write locks for every logical page their
//     structural updates touch (no-wait locking: a conflict aborts the
//     younger request instead of risking deadlock);
//   - ancestor size maintenance is performed with commutative delta
//     increments at commit, so concurrent writers under the same
//     ancestors — in particular the document root — never contend on
//     ancestor pages ("delta operations are commutative, it does not
//     matter in which order they are executed");
//   - commit takes the global write lock briefly: validate, write one
//     WAL record, replay the transaction's resolved operations onto the
//     base store, release.
//
// For the ablation of this design, a Manager can be put in
// root-locking mode (LockAncestors), which additionally write-locks every
// ancestor's page the way an absolute-value size update would require;
// the CommutativeDeltas benchmark contrasts the two.
package tx

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"

	"mxq/internal/core"
	"mxq/internal/wal"
	"mxq/internal/xenc"
)

// ErrConflict reports a page-lock conflict with a concurrent writer. The
// caller should abort and retry the transaction.
var ErrConflict = errors.New("tx: page lock conflict")

// ErrDone reports use of a finished transaction.
var ErrDone = errors.New("tx: transaction already committed or aborted")

// Validator checks document consistency before commit ("run XML document
// validation (if there is a schema)"). A non-nil error aborts the commit.
type Validator func(v xenc.DocView) error

// Manager coordinates transactions over one base store.
type Manager struct {
	mu        sync.RWMutex // the paper's global read/write lock
	store     *core.Store
	log       *wal.Log
	validator Validator

	// snapMu serializes snapshot creation (Begin / Snapshot) against
	// itself: taking a snapshot mutates only the base store's
	// chunk-ownership tables, which readers never touch, so snapshot
	// creation runs under mu.RLock (excluding commits, which hold the
	// exclusive lock) plus this mutex (excluding other snapshotters) —
	// never blocking or queueing behind read-only queries.
	snapMu sync.Mutex

	lockMu sync.Mutex
	owners map[int32]*Tx // logical page -> holder

	// LockAncestors switches to the root-locking discipline (ablation).
	lockAncestors bool

	version  uint64
	commits  uint64
	aborts   uint64
	pageBits uint
}

// NewManager wraps a store; log may be nil for a volatile database.
func NewManager(store *core.Store, log *wal.Log) *Manager {
	return &Manager{
		store:    store,
		log:      log,
		owners:   make(map[int32]*Tx),
		pageBits: uint(bits.TrailingZeros(uint(store.PageSize()))),
	}
}

// SetValidator installs the pre-commit document validator.
func (m *Manager) SetValidator(v Validator) { m.validator = v }

// SetLockAncestors toggles the root-locking ablation mode.
func (m *Manager) SetLockAncestors(on bool) { m.lockAncestors = on }

// View runs a read-only transaction under the global read lock.
func (m *Manager) View(fn func(v xenc.DocView) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return fn(m.store)
}

// Version returns the number of committed write transactions.
func (m *Manager) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Stats returns commit and abort counters.
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.commits, m.aborts
}

// Begin starts a write transaction. The returned Tx is not safe for
// concurrent use by multiple goroutines.
//
// The transaction's private image is a page-granular copy-on-write
// snapshot (core.Store.Snapshot): taking it costs O(pages) and the
// transaction's writes materialize only the pages they touch. Snapshot
// creation mutates only the base store's chunk-ownership tables, which
// readers never access, so it runs under the shared read lock (to
// exclude commits) plus snapMu (to exclude other snapshotters) and
// proceeds in parallel with read-only queries.
func (m *Manager) Begin() *Tx {
	return &Tx{m: m, clone: m.snapshot(), pages: make(map[int32]bool)}
}

func (m *Manager) snapshot() *core.Store {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store.Snapshot()
}

// Snapshot returns an immutable point-in-time view of the document that
// can be read without holding any lock: readers traverse it while later
// write transactions commit concurrently, because commits copy the pages
// they modify instead of updating shared chunks in place (Section 3.2's
// copy-on-write reader isolation). The view is safe for concurrent use
// by any number of goroutines and stays consistent forever. A read-only
// snapshot never materializes pages of its own — it pins the chunks it
// shares with the base, which become collectable as the base replaces
// them and the snapshot itself is dropped.
func (m *Manager) Snapshot() xenc.DocView {
	return m.snapshot()
}

// Checkpoint writes an LSN-stamped snapshot of the current base store;
// a subsequent Recover needs only WAL records after that LSN.
func (m *Manager) Checkpoint(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	lsn := uint64(0)
	if m.log != nil {
		lsn = m.log.LastLSN()
	}
	if err := writeHeader(w, lsn); err != nil {
		return err
	}
	return m.store.Save(w)
}

// Recover rebuilds a store from a checkpoint and a WAL, replaying every
// committed record the checkpoint predates ("during recovery an
// up-to-date version of the database can be restored").
func Recover(snapshot io.Reader, log *wal.Log) (*core.Store, error) {
	lsn, err := readHeader(snapshot)
	if err != nil {
		return nil, err
	}
	store, err := core.Load(snapshot)
	if err != nil {
		return nil, err
	}
	if log == nil {
		return store, nil
	}
	// The checkpoint covers every record up to lsn. Make sure the log
	// never hands out those LSNs again (a truncated log reopens with its
	// counter at 0), or commits after this recovery would be skipped by
	// the replay of the next one.
	log.EnsureLSN(lsn)
	err = log.Replay(lsn, func(rec *wal.Record) error {
		if err := ApplyOps(store, rec.Ops); err != nil {
			return fmt.Errorf("tx: replaying LSN %d: %w", rec.LSN, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return store, nil
}

func writeHeader(w io.Writer, lsn uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(lsn >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

func readHeader(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("tx: reading checkpoint header: %w", err)
	}
	var lsn uint64
	for i := 0; i < 8; i++ {
		lsn |= uint64(b[i]) << (8 * i)
	}
	return lsn, nil
}

// --- page locks -------------------------------------------------------------

// lockPages acquires write locks on the given logical pages for t,
// all-or-nothing. A page held by another transaction causes ErrConflict
// (no-wait two-phase locking; locks are held until commit/abort).
func (m *Manager) lockPages(t *Tx, pages []int32) error {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for _, pg := range pages {
		if owner, held := m.owners[pg]; held && owner != t {
			return ErrConflict
		}
	}
	for _, pg := range pages {
		m.owners[pg] = t
		t.pages[pg] = true
	}
	return nil
}

func (m *Manager) unlockAll(t *Tx) {
	m.lockMu.Lock()
	defer m.lockMu.Unlock()
	for pg := range t.pages {
		if m.owners[pg] == t {
			delete(m.owners, pg)
		}
	}
	t.pages = make(map[int32]bool)
}
