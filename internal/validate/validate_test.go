package validate

import (
	"errors"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

func view(t *testing.T, doc string) xenc.DocView {
	t.Helper()
	tr, err := shred.Parse(strings.NewReader(doc), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func libSchema() *Schema {
	return NewSchema().
		Elem("lib", Rule{Children: []string{"shelf"}, NoText: true}).
		Elem("shelf", Rule{Children: []string{"book"}, RequiredAttrs: []string{"id"}}).
		Elem("book", Rule{NoElements: true})
}

func TestValidDocument(t *testing.T) {
	v := view(t, `<lib><shelf id="s1"><book>A</book></shelf></lib>`)
	if err := libSchema().Check(v); err != nil {
		t.Fatal(err)
	}
}

func TestMissingRequiredAttr(t *testing.T) {
	v := view(t, `<lib><shelf><book>A</book></shelf></lib>`)
	err := libSchema().Check(v)
	var ve *Error
	if !errors.As(err, &ve) || ve.Elem != "shelf" {
		t.Fatalf("err = %v", err)
	}
}

func TestDisallowedChild(t *testing.T) {
	v := view(t, `<lib><shelf id="s"><dvd/></shelf></lib>`)
	if err := libSchema().Check(v); err == nil {
		t.Fatal("disallowed child accepted")
	}
}

func TestTextOnlyElement(t *testing.T) {
	v := view(t, `<lib><shelf id="s"><book><sub/></book></shelf></lib>`)
	if err := libSchema().Check(v); err == nil {
		t.Fatal("element child inside text-only element accepted")
	}
}

func TestNoTextRule(t *testing.T) {
	v := view(t, `<lib>stray<shelf id="s"/></lib>`)
	if err := libSchema().Check(v); err == nil {
		t.Fatal("text inside NoText element accepted")
	}
}

func TestClosedSchema(t *testing.T) {
	s := libSchema()
	s.RequireRules = true
	v := view(t, `<lib><shelf id="s"><book>A</book></shelf></lib>`)
	if err := s.Check(v); err != nil {
		t.Fatal(err)
	}
	v2 := view(t, `<other/>`)
	if err := s.Check(v2); err == nil {
		t.Fatal("unknown element accepted by closed schema")
	}
}

func TestUnconstrainedElements(t *testing.T) {
	s := NewSchema().Elem("a", Rule{})
	v := view(t, `<root><a><anything/></a><b/></root>`)
	if err := s.Check(v); err != nil {
		t.Fatal(err)
	}
}

func TestValidateOverPagedStoreWithHoles(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(`<lib><shelf id="a"><book>1</book><book>2</book></shelf></lib>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var book xenc.Pre = -1
	for p := xenc.SkipFree(st, 0); p < st.Len(); p = xenc.SkipFree(st, p+1) {
		if st.Kind(p) == xenc.KindElem && st.Names().Name(st.Name(p)) == "book" {
			book = p
			break
		}
	}
	if err := st.Delete(book); err != nil {
		t.Fatal(err)
	}
	if err := libSchema().Check(st); err != nil {
		t.Fatalf("paged store with holes failed validation: %v", err)
	}
}
