// Package validate checks encoded documents against lightweight content
// models. It stands in for the schema validation of Grust & Klinger
// ([GK04]) that the paper's transaction protocol runs as the last stage
// before commit ("run XML document validation (if there is a schema); if
// this fails, the transaction is aborted") — the consistency leg of ACID.
//
// A Schema maps element names to rules: which child elements are allowed,
// which attributes are required, and whether text content is permitted.
// Validation walks the encoded tree once, directly on the
// pre/size/level view, without materializing a DOM.
package validate

import (
	"fmt"

	"mxq/internal/xenc"
)

// Rule constrains one element type.
type Rule struct {
	// Children lists the allowed child element names. Empty means any
	// child element is allowed (unless NoElements is set).
	Children []string
	// NoElements forbids child elements entirely (text-only elements).
	NoElements bool
	// NoText forbids text children.
	NoText bool
	// RequiredAttrs must all be present.
	RequiredAttrs []string
}

// Schema maps element names to rules. Elements without a rule are
// unconstrained.
type Schema struct {
	rules map[string]Rule
	// RequireRules makes elements without a rule invalid (closed schema).
	RequireRules bool
}

// NewSchema returns an empty (fully permissive) schema.
func NewSchema() *Schema { return &Schema{rules: make(map[string]Rule)} }

// Elem adds or replaces the rule for an element name.
func (s *Schema) Elem(name string, r Rule) *Schema {
	s.rules[name] = r
	return s
}

// Error describes one validation failure.
type Error struct {
	Pre  xenc.Pre
	Elem string
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("validate: <%s> at pre %d: %s", e.Elem, e.Pre, e.Msg)
}

// Check validates the whole document and returns the first violation.
func (s *Schema) Check(v xenc.DocView) error {
	for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
		if v.Kind(p) != xenc.KindElem {
			continue
		}
		if err := s.checkElem(v, p); err != nil {
			return err
		}
	}
	return nil
}

func (s *Schema) checkElem(v xenc.DocView, p xenc.Pre) error {
	name := v.Names().Name(v.Name(p))
	rule, ok := s.rules[name]
	if !ok {
		if s.RequireRules {
			return &Error{Pre: p, Elem: name, Msg: "no rule for element in closed schema"}
		}
		return nil
	}
	for _, attr := range rule.RequiredAttrs {
		id, ok := v.Names().Lookup(attr)
		if !ok {
			return &Error{Pre: p, Elem: name, Msg: fmt.Sprintf("missing required attribute %q", attr)}
		}
		if _, ok := v.AttrValue(p, id); !ok {
			return &Error{Pre: p, Elem: name, Msg: fmt.Sprintf("missing required attribute %q", attr)}
		}
	}
	allowed := map[string]bool{}
	for _, c := range rule.Children {
		allowed[c] = true
	}
	// Walk direct children.
	lvl := v.Level(p)
	q := xenc.SkipFree(v, p+1)
	for q < v.Len() && v.Level(q) > lvl {
		if v.Level(q) == lvl+1 {
			switch v.Kind(q) {
			case xenc.KindElem:
				child := v.Names().Name(v.Name(q))
				if rule.NoElements {
					return &Error{Pre: p, Elem: name, Msg: fmt.Sprintf("child element <%s> not allowed (text-only element)", child)}
				}
				if len(rule.Children) > 0 && !allowed[child] {
					return &Error{Pre: p, Elem: name, Msg: fmt.Sprintf("child element <%s> not allowed", child)}
				}
			case xenc.KindText:
				if rule.NoText {
					return &Error{Pre: p, Elem: name, Msg: "text content not allowed"}
				}
			}
		}
		q = xenc.SkipFree(v, q+v.Size(q)+1)
	}
	return nil
}
