package xpath

import (
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
)

func TestReverseAxisPositions(t *testing.T) {
	tr, _ := shred.Parse(strings.NewReader(`<a><b><c><d/></c></b><e/><f/></a>`), shred.Options{})
	v, _ := rostore.Build(tr)
	// ancestor::*[1] of d must be c (nearest), not a.
	ns, err := MustParse(`//d/ancestor::*[1]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || v.Names().Name(v.Name(ns[0].Pre)) != "c" {
		t.Fatalf("ancestor::*[1] = %v", ns)
	}
	// preceding-sibling::*[1] of f must be e (nearest preceding).
	ns, err = MustParse(`//f/preceding-sibling::*[1]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || v.Names().Name(v.Name(ns[0].Pre)) != "e" {
		t.Fatalf("preceding-sibling::*[1] = %v", ns)
	}
}

// TestReverseAxisNumbering pins position()/last() semantics on reverse
// axes — they number *against* document order — so the sequence-at-a-time
// pipeline (which keeps these shapes on the per-node path) can never
// silently change them.
func TestReverseAxisNumbering(t *testing.T) {
	tr, _ := shred.Parse(strings.NewReader(`<a><b><c><d/></c></b><e/><f/></a>`), shred.Options{})
	v, _ := rostore.Build(tr)
	name := func(n Node) string {
		if n.Pre == DocNodePre {
			return "#doc"
		}
		return v.Names().Name(v.Name(n.Pre))
	}
	cases := []struct {
		q    string
		want []string
	}{
		// ancestors of d nearest-first: c, b, a.
		{`//d/ancestor::*[2]`, []string{"b"}},
		{`//d/ancestor::*[position() = 2]`, []string{"b"}},
		{`//d/ancestor::*[last()]`, []string{"a"}},
		// ancestor::node() additionally ends at the document node.
		{`//d/ancestor::node()[last()]`, []string{"#doc"}},
		{`//d/ancestor-or-self::*[1]`, []string{"d"}},
		{`//d/ancestor-or-self::*[last()]`, []string{"a"}},
		// preceding siblings of f nearest-first: e, b.
		{`//f/preceding-sibling::*[2]`, []string{"b"}},
		{`//f/preceding-sibling::*[last()]`, []string{"b"}},
		// preceding of f nearest-first: e, d, c, b (ancestors excluded).
		{`//f/preceding::*[1]`, []string{"e"}},
		{`//f/preceding::*[3]`, []string{"c"}},
		{`//f/preceding::*[last()]`, []string{"b"}},
		{`//d/parent::node()[1]`, []string{"c"}},
		// Predicate-free reverse axes come back in document order even
		// for singleton contexts (the no-reversal fast path).
		{`//d/ancestor::*`, []string{"a", "b", "c"}},
		{`//f/preceding::*`, []string{"b", "c", "d", "e"}},
	}
	for _, tc := range cases {
		ns, err := MustParse(tc.q).Select(v)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		var got []string
		for _, n := range ns {
			got = append(got, name(n))
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s = %v, want %v", tc.q, got, tc.want)
				break
			}
		}
	}
}
