package xpath

import (
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
)

func TestReverseAxisPositions(t *testing.T) {
	tr, _ := shred.Parse(strings.NewReader(`<a><b><c><d/></c></b><e/><f/></a>`), shred.Options{})
	v, _ := rostore.Build(tr)
	// ancestor::*[1] of d must be c (nearest), not a.
	ns, err := MustParse(`//d/ancestor::*[1]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || v.Names().Name(v.Name(ns[0].Pre)) != "c" {
		t.Fatalf("ancestor::*[1] = %v", ns)
	}
	// preceding-sibling::*[1] of f must be e (nearest preceding).
	ns, err = MustParse(`//f/preceding-sibling::*[1]`).Select(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || v.Names().Name(v.Name(ns[0].Pre)) != "e" {
		t.Fatalf("preceding-sibling::*[1] = %v", ns)
	}
}
