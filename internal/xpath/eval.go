// Package xpath compiles and evaluates the XPath 1.0 subset that
// MonetDB/XQuery's update language and the XMark workload need: all
// twelve axes (evaluated by staircase join on the pre/size/level
// encoding), name and kind tests, positional and boolean predicates,
// arithmetic, comparisons with node-set existential semantics, variables
// ($x), and the core function library.
package xpath

import (
	"fmt"
	"math"
	"strings"

	"mxq/internal/staircase"
	"mxq/internal/xenc"
)

// context is one evaluation context (node, position, size, bindings).
type context struct {
	view xenc.DocView
	node Node
	pos  int
	size int
	vars map[string]Value
}

// Eval evaluates the expression with the document node as context.
func (e *Expr) Eval(v xenc.DocView) (Value, error) {
	return e.EvalAt(v, DocNode(), nil)
}

// EvalVars evaluates with variable bindings.
func (e *Expr) EvalVars(v xenc.DocView, vars map[string]Value) (Value, error) {
	return e.EvalAt(v, DocNode(), vars)
}

// EvalAt evaluates with an explicit context node and bindings.
func (e *Expr) EvalAt(v xenc.DocView, node Node, vars map[string]Value) (Value, error) {
	c := &context{view: v, node: node, pos: 1, size: 1, vars: vars}
	return e.root.eval(c)
}

// Select evaluates and requires a node-set result.
func (e *Expr) Select(v xenc.DocView) (NodeSet, error) {
	return e.SelectAt(v, DocNode(), nil)
}

// SelectVars evaluates with bindings and requires a node-set result.
func (e *Expr) SelectVars(v xenc.DocView, vars map[string]Value) (NodeSet, error) {
	return e.SelectAt(v, DocNode(), vars)
}

// SelectAt evaluates at a context node and requires a node-set result.
func (e *Expr) SelectAt(v xenc.DocView, node Node, vars map[string]Value) (NodeSet, error) {
	val, err := e.EvalAt(v, node, vars)
	if err != nil {
		return nil, err
	}
	ns, ok := val.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %q evaluates to a %T, not a node-set", e.src, val)
	}
	return ns, nil
}

// --- expression evaluation -------------------------------------------------

func (n numberLit) eval(*context) (Value, error) { return Number(n), nil }
func (s stringLit) eval(*context) (Value, error) { return String(s), nil }

func (v varRef) eval(c *context) (Value, error) {
	if val, ok := c.vars[string(v)]; ok {
		return val, nil
	}
	return nil, fmt.Errorf("unbound variable $%s", string(v))
}

func (n *negExpr) eval(c *context) (Value, error) {
	v, err := n.e.eval(c)
	if err != nil {
		return nil, err
	}
	return Number(-NumberOf(c.view, v)), nil
}

func (u *unionExpr) eval(c *context) (Value, error) {
	lv, err := u.l.eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := u.r.eval(c)
	if err != nil {
		return nil, err
	}
	ln, ok1 := lv.(NodeSet)
	rn, ok2 := rv.(NodeSet)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("union of non-node-sets")
	}
	return sortDedupe(append(append(NodeSet{}, ln...), rn...)), nil
}

func (b *binaryExpr) eval(c *context) (Value, error) {
	switch b.op {
	case "and":
		lv, err := b.l.eval(c)
		if err != nil {
			return nil, err
		}
		if !BoolOf(lv) {
			return Boolean(false), nil
		}
		rv, err := b.r.eval(c)
		if err != nil {
			return nil, err
		}
		return Boolean(BoolOf(rv)), nil
	case "or":
		lv, err := b.l.eval(c)
		if err != nil {
			return nil, err
		}
		if BoolOf(lv) {
			return Boolean(true), nil
		}
		rv, err := b.r.eval(c)
		if err != nil {
			return nil, err
		}
		return Boolean(BoolOf(rv)), nil
	}
	lv, err := b.l.eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := b.r.eval(c)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case "=", "!=", "<", "<=", ">", ">=":
		return Boolean(compare(c.view, b.op, lv, rv)), nil
	case "+":
		return Number(NumberOf(c.view, lv) + NumberOf(c.view, rv)), nil
	case "-":
		return Number(NumberOf(c.view, lv) - NumberOf(c.view, rv)), nil
	case "*":
		return Number(NumberOf(c.view, lv) * NumberOf(c.view, rv)), nil
	case "div":
		return Number(NumberOf(c.view, lv) / NumberOf(c.view, rv)), nil
	case "mod":
		return Number(math.Mod(NumberOf(c.view, lv), NumberOf(c.view, rv))), nil
	}
	return nil, fmt.Errorf("unknown operator %q", b.op)
}

func (f *filterExpr) eval(c *context) (Value, error) {
	base, err := f.base.eval(c)
	if err != nil {
		return nil, err
	}
	ns, ok := base.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("predicate applied to a %T", base)
	}
	// Position-free predicates filter the base sequence in place: a
	// filter's predicates number against the whole base sequence, which
	// is exactly the order ns holds, so a runtime numeric value compares
	// against the sequence position with no per-context renumbering (see
	// classifyFilter in compile.go). A borrowed base (variable binding)
	// is copied once before the first destructive pass.
	owned := f.ownedBase
	for i, pred := range f.preds {
		if f.seq != nil && f.seq[i] && planEnabled.Load() {
			if !owned {
				ns = append(NodeSet{}, ns...)
				owned = true
			}
			ns, err = filterNodesInPlace(c, ns, pred)
		} else {
			ns, err = filterNodes(c, ns, pred, false)
			owned = true
		}
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (p *pathExpr) eval(c *context) (Value, error) {
	var ctx NodeSet
	switch {
	case p.start != nil:
		base, err := p.start.eval(c)
		if err != nil {
			return nil, err
		}
		ns, ok := base.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("path step applied to a %T", base)
		}
		ctx = ns
	case p.absolute:
		ctx = NodeSet{DocNode()}
	default:
		ctx = NodeSet{c.node}
	}
	if p.plan != nil && planEnabled.Load() {
		return p.plan.run(c, ctx)
	}
	var err error
	for i := range p.steps {
		ctx, err = applyStep(c, ctx, &p.steps[i])
		if err != nil {
			return nil, err
		}
		if len(ctx) == 0 {
			return NodeSet{}, nil
		}
	}
	return ctx, nil
}

// applyStep evaluates one location step node-at-a-time. Predicates are
// applied per context node over the axis-ordered candidate list, which
// is what gives position() its XPath semantics; the per-node results are
// then merged into document order. The compiled pipeline (plan.go) only
// routes steps here whose predicate shapes need per-context numbering
// (position() on reverse axes, last(), untypable predicates), plus
// document-node and attribute-node contexts.
func applyStep(c *context, ctx NodeSet, st *step) (NodeSet, error) {
	var out NodeSet
	// Reversal exists only so predicates number against axis order; the
	// candidates come back from the staircase in document order, so a
	// predicate-free step needs neither the reversal nor the restoring
	// sort.
	reversed := st.axis.Reverse() && len(st.preds) > 0
	for _, node := range ctx {
		cands := axisCandidates(c.view, node, st)
		if reversed {
			for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
		var err error
		for _, pred := range st.preds {
			cands, err = filterNodes(c, cands, pred, false)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, cands...)
	}
	if len(ctx) > 1 || reversed {
		out = sortDedupe(out)
	}
	return out, nil
}

// filterNodes keeps the nodes for which the predicate holds. Numeric
// predicate values select by position.
func filterNodes(c *context, ns NodeSet, pred expr, _ bool) (NodeSet, error) {
	var out NodeSet
	sub := context{view: c.view, size: len(ns), vars: c.vars}
	for i, n := range ns {
		sub.node = n
		sub.pos = i + 1
		val, err := pred.eval(&sub)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := val.(Number); ok {
			keep = float64(num) == float64(i+1)
		} else {
			keep = BoolOf(val)
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// filterNodesInPlace is filterNodes without the result allocation: the
// kept nodes compact into the front of ns. Callers guarantee they own
// ns. Numeric predicate values still select by position — identical
// semantics, because the positions compared against are the sequence
// positions filterNodes would have assigned.
func filterNodesInPlace(c *context, ns NodeSet, pred expr) (NodeSet, error) {
	sub := context{view: c.view, size: len(ns), vars: c.vars}
	w := 0
	for i, n := range ns {
		sub.node = n
		sub.pos = i + 1
		val, err := pred.eval(&sub)
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := val.(Number); ok {
			keep = float64(num) == float64(i+1)
		} else {
			keep = BoolOf(val)
		}
		if keep {
			ns[w] = n
			w++
		}
	}
	return ns[:w], nil
}

// axisCandidates enumerates the axis from one context node, applying the
// node test, in document order.
func axisCandidates(v xenc.DocView, n Node, st *step) NodeSet {
	// Attribute axis.
	if st.axis == AxisAttribute {
		if n.Attr != NoAttr || n.Pre == DocNodePre || v.Kind(n.Pre) != xenc.KindElem {
			return nil
		}
		attrs := v.Attrs(n.Pre)
		var out NodeSet
		for i, a := range attrs {
			if st.tk == testNode || (st.tk == testName && (st.name == "" || v.Names().Name(a.Name) == st.name)) {
				out = append(out, Node{Pre: n.Pre, Attr: int32(i)})
			}
		}
		return out
	}

	// Axes from an attribute node.
	if n.Attr != NoAttr {
		switch st.axis {
		case AxisSelf:
			if st.tk == testNode {
				return NodeSet{n}
			}
			return nil
		case AxisParent, AxisAncestor, AxisAncestorOrSelf:
			elem := ElemNode(n.Pre)
			out := axisCandidates(v, elem, &step{axis: AxisAncestorOrSelf, tk: st.tk, name: st.name})
			if st.axis == AxisParent {
				// Only the owning element.
				out = nil
				if matchTreeTest(v, n.Pre, st) {
					out = NodeSet{elem}
				}
			}
			if st.axis == AxisAncestorOrSelf && st.tk == testNode {
				out = append(out, n)
			}
			return out
		default:
			return nil
		}
	}

	// Axes from the document node.
	if n.Pre == DocNodePre {
		switch st.axis {
		case AxisSelf:
			if st.tk == testNode {
				return NodeSet{n}
			}
			return nil
		case AxisChild:
			root := v.Root()
			if matchTreeTest(v, root, st) {
				return NodeSet{ElemNode(root)}
			}
			return nil
		case AxisDescendant, AxisDescendantOrSelf:
			var out NodeSet
			if st.axis == AxisDescendantOrSelf && st.tk == testNode {
				out = append(out, n)
			}
			for p := xenc.SkipFree(v, 0); p < v.Len(); p = xenc.SkipFree(v, p+1) {
				if matchTreeTest(v, p, st) {
					out = append(out, ElemNode(p))
				}
			}
			return out
		default:
			return nil
		}
	}

	// Regular tree axes via staircase join (the same dispatcher the
	// sequence pipeline uses, on a singleton context).
	test := treeTest(v, st)
	pres := staircase.EvalAxis(v, []xenc.Pre{n.Pre}, seqAxis(st.axis), test)
	out := make(NodeSet, 0, len(pres))
	for _, p := range pres {
		out = append(out, ElemNode(p))
	}
	// The document node is an ancestor of everything.
	switch st.axis {
	case AxisParent:
		if v.Level(n.Pre) == 0 && st.tk == testNode {
			out = append(NodeSet{DocNode()}, out...)
		}
	case AxisAncestor, AxisAncestorOrSelf:
		if st.tk == testNode {
			out = append(NodeSet{DocNode()}, out...)
		}
	}
	return out
}

func treeTest(v xenc.DocView, st *step) staircase.Test {
	switch st.tk {
	case testNode:
		return staircase.AnyNode()
	case testText:
		return staircase.KindTest(xenc.KindText)
	case testComment:
		return staircase.KindTest(xenc.KindComment)
	case testPI:
		if st.name == "" {
			return staircase.PITest(xenc.NoName)
		}
		if id, ok := v.Names().Lookup(st.name); ok {
			return staircase.PITest(id)
		}
		return staircase.PITest(-2) // never matches
	default: // testName
		if st.name == "" {
			return staircase.Element(xenc.NoName)
		}
		if id, ok := v.Names().Lookup(st.name); ok {
			return staircase.Element(id)
		}
		return staircase.Element(-2) // name not in this document
	}
}

func matchTreeTest(v xenc.DocView, p xenc.Pre, st *step) bool {
	return treeTest(v, st).Matches(v, p)
}

// --- function library -------------------------------------------------------

func (f *funcCall) eval(c *context) (Value, error) {
	argVals := make([]Value, len(f.args))
	for i, a := range f.args {
		v, err := a.eval(c)
		if err != nil {
			return nil, err
		}
		argVals[i] = v
	}
	argN := func(i int) float64 { return NumberOf(c.view, argVals[i]) }
	argS := func(i int) string { return StringOf(c.view, argVals[i]) }
	switch f.name {
	case "position":
		return Number(c.pos), nil
	case "last":
		return Number(c.size), nil
	case "count":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		ns, ok := argVals[0].(NodeSet)
		if !ok {
			return nil, fmt.Errorf("count() needs a node-set")
		}
		return Number(len(ns)), nil
	case "not":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		return Boolean(!BoolOf(argVals[0])), nil
	case "true":
		return Boolean(true), nil
	case "false":
		return Boolean(false), nil
	case "boolean":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		return Boolean(BoolOf(argVals[0])), nil
	case "number":
		if len(f.args) == 0 {
			return Number(NumberOf(c.view, NodeSet{c.node})), nil
		}
		return Number(argN(0)), nil
	case "string":
		if len(f.args) == 0 {
			return String(StringValue(c.view, c.node)), nil
		}
		return String(argS(0)), nil
	case "concat":
		var b strings.Builder
		for i := range argVals {
			b.WriteString(argS(i))
		}
		return String(b.String()), nil
	case "contains":
		if err := arity(f, 2); err != nil {
			return nil, err
		}
		return Boolean(strings.Contains(argS(0), argS(1))), nil
	case "starts-with":
		if err := arity(f, 2); err != nil {
			return nil, err
		}
		return Boolean(strings.HasPrefix(argS(0), argS(1))), nil
	case "substring-before":
		if err := arity(f, 2); err != nil {
			return nil, err
		}
		s, sep := argS(0), argS(1)
		if i := strings.Index(s, sep); i >= 0 {
			return String(s[:i]), nil
		}
		return String(""), nil
	case "substring-after":
		if err := arity(f, 2); err != nil {
			return nil, err
		}
		s, sep := argS(0), argS(1)
		if i := strings.Index(s, sep); i >= 0 {
			return String(s[i+len(sep):]), nil
		}
		return String(""), nil
	case "substring":
		if len(f.args) != 2 && len(f.args) != 3 {
			return nil, fmt.Errorf("substring() takes 2 or 3 arguments")
		}
		s := []rune(argS(0))
		start := int(math.Round(argN(1))) - 1
		end := len(s)
		if len(f.args) == 3 {
			end = start + int(math.Round(argN(2)))
		}
		if start < 0 {
			start = 0
		}
		if end > len(s) {
			end = len(s)
		}
		if start >= end {
			return String(""), nil
		}
		return String(string(s[start:end])), nil
	case "string-length":
		if len(f.args) == 0 {
			return Number(len([]rune(StringValue(c.view, c.node)))), nil
		}
		return Number(len([]rune(argS(0)))), nil
	case "normalize-space":
		s := ""
		if len(f.args) == 0 {
			s = StringValue(c.view, c.node)
		} else {
			s = argS(0)
		}
		return String(strings.Join(strings.Fields(s), " ")), nil
	case "name", "local-name":
		n := c.node
		if len(f.args) == 1 {
			ns, ok := argVals[0].(NodeSet)
			if !ok {
				return nil, fmt.Errorf("%s() needs a node-set", f.name)
			}
			if len(ns) == 0 {
				return String(""), nil
			}
			n = ns[0]
		}
		return String(nodeName(c.view, n)), nil
	case "sum":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		ns, ok := argVals[0].(NodeSet)
		if !ok {
			return nil, fmt.Errorf("sum() needs a node-set")
		}
		total := 0.0
		for _, n := range ns {
			total += parseNumber(StringValue(c.view, n))
		}
		return Number(total), nil
	case "translate":
		if err := arity(f, 3); err != nil {
			return nil, err
		}
		return String(translate(argS(0), argS(1), argS(2))), nil
	case "floor":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		return Number(math.Floor(argN(0))), nil
	case "ceiling":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		return Number(math.Ceil(argN(0))), nil
	case "round":
		if err := arity(f, 1); err != nil {
			return nil, err
		}
		return Number(math.Round(argN(0))), nil
	}
	return nil, fmt.Errorf("unknown function %s()", f.name)
}

func arity(f *funcCall, n int) error {
	if len(f.args) != n {
		return fmt.Errorf("%s() takes %d argument(s), got %d", f.name, n, len(f.args))
	}
	return nil
}

// translate implements the XPath translate() function: characters of s
// found in from are replaced by the corresponding character of to, or
// dropped if to is shorter.
func translate(s, from, to string) string {
	fromR := []rune(from)
	toR := []rune(to)
	m := make(map[rune]rune, len(fromR))
	drop := make(map[rune]bool)
	for i, r := range fromR {
		if _, seen := m[r]; seen || drop[r] {
			continue // first occurrence wins
		}
		if i < len(toR) {
			m[r] = toR[i]
		} else {
			drop[r] = true
		}
	}
	var b strings.Builder
	for _, r := range s {
		if drop[r] {
			continue
		}
		if repl, ok := m[r]; ok {
			b.WriteRune(repl)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func nodeName(v xenc.DocView, n Node) string {
	if n.Pre == DocNodePre {
		return ""
	}
	if n.Attr != NoAttr {
		attrs := v.Attrs(n.Pre)
		if int(n.Attr) < len(attrs) {
			return v.Names().Name(attrs[n.Attr].Name)
		}
		return ""
	}
	switch v.Kind(n.Pre) {
	case xenc.KindElem, xenc.KindPI:
		return v.Names().Name(v.Name(n.Pre))
	}
	return ""
}
