package xpath

import (
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
)

// TestParserNeverPanics throws token soup at the parser; it must return
// errors, not panic (the shell feeds it raw user input).
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"/", "//", "[", "]", "(", ")", "@", "..", ".", "*", "|", "$x",
		"and", "or", "div", "mod", "person", "text()", "node()", "::",
		"=", "!=", "<", "<=", "1", "3.14", `"str"`, "'s'", ",", "+", "-",
		"count", "ancestor", "child", "!", "$",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(8)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}

// TestParseStringRoundTrip: parsing the String() rendering of a valid
// expression yields an expression with the same rendering (a normal-form
// fixed point).
func TestParseStringRoundTrip(t *testing.T) {
	queries := []string{
		`/site/people/person[@id="p0"]/name/text()`,
		`//open_auction[bidder[1]/increase * 2 <= bidder[last()]/increase]`,
		`count(//item) + sum(//price) div 2`,
		`//a | //b[. = "x"]`,
		`//person[not(homepage) and profile/@income > 50000]`,
		`ancestor-or-self::*[2]/following-sibling::node()`,
		`(//a)[3]/.././/text()`,
		`-3 + -x`,
	}
	for _, q := range queries {
		e1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		norm := e1.String()
		e2, err := Parse(norm)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", norm, q, err)
		}
		if e2.String() != norm {
			t.Fatalf("normal form not fixed:\n1: %s\n2: %s", norm, e2.String())
		}
	}
}

// TestEvaluatorNeverPanicsOnValidQueries evaluates every round-trip
// query against a real document; errors are fine, panics are not.
func TestEvaluatorNeverPanicsOnValidQueries(t *testing.T) {
	tr, err := shred.Parse(strings.NewReader(
		`<site><people><person id="p0"><name>A</name><homepage>h</homepage>`+
			`<profile income="60000"/></person></people>`+
			`<open_auction><bidder><increase>2</increase></bidder></open_auction>`+
			`<item><price>5</price></item><a/><b>x</b></site>`), shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`/site/people/person[@id="p0"]/name/text()`,
		`//open_auction[bidder[1]/increase * 2 <= bidder[last()]/increase]`,
		`count(//item) + sum(//price) div 2`,
		`//a | //b[. = "x"]`,
		`//person[not(homepage) and profile/@income > 50000]`,
		`ancestor-or-self::*[2]/following-sibling::node()`,
		`(//a)[3]/.././/text()`,
		`//person/@*`,
	}
	for _, q := range queries {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Eval(%q) panicked: %v", q, r)
				}
			}()
			e.Eval(v)
		}()
	}
}
