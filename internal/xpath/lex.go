package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF  tokKind = iota
	tokName         // NCName (element/function/axis names, div/mod/and/or)
	tokNumber
	tokLiteral // quoted string
	tokSlash
	tokDblSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAt
	tokDot
	tokDotDot
	tokComma
	tokPipe
	tokStar
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokAxis   // name followed by '::'
	tokDollar // variable reference '$name'
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes an XPath expression. The classic XPath 1.0 lexical
// disambiguation applies: '*' and the names div/mod/and/or are operators
// only when the preceding token can end an operand.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) run() error {
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '/':
			if l.peekAt(1) == '/' {
				l.pos += 2
				l.emit(tokDblSlash, "//")
			} else {
				l.pos++
				l.emit(tokSlash, "/")
			}
		case c == '[':
			l.pos++
			l.emit(tokLBracket, "[")
		case c == ']':
			l.pos++
			l.emit(tokRBracket, "]")
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(")
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")")
		case c == '@':
			l.pos++
			l.emit(tokAt, "@")
		case c == ',':
			l.pos++
			l.emit(tokComma, ",")
		case c == '|':
			l.pos++
			l.emit(tokPipe, "|")
		case c == '+':
			l.pos++
			l.emit(tokPlus, "+")
		case c == '-':
			l.pos++
			l.emit(tokMinus, "-")
		case c == '=':
			l.pos++
			l.emit(tokEq, "=")
		case c == '!':
			if l.peekAt(1) != '=' {
				return fmt.Errorf("xpath: unexpected '!' at offset %d", start)
			}
			l.pos += 2
			l.emit(tokNeq, "!=")
		case c == '<':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(tokLe, "<=")
			} else {
				l.pos++
				l.emit(tokLt, "<")
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(tokGe, ">=")
			} else {
				l.pos++
				l.emit(tokGt, ">")
			}
		case c == '.':
			if l.peekAt(1) == '.' {
				l.pos += 2
				l.emit(tokDotDot, "..")
			} else if isDigit(l.peekAt(1)) {
				l.lexNumber()
			} else {
				l.pos++
				l.emit(tokDot, ".")
			}
		case c == '*':
			l.pos++
			if l.operatorPosition() {
				l.emit(tokStar, "*") // multiplication
			} else {
				l.emit(tokName, "*") // wildcard name test
			}
		case c == '\'' || c == '"':
			end := strings.IndexByte(l.src[l.pos+1:], c)
			if end < 0 {
				return fmt.Errorf("xpath: unterminated literal at offset %d", start)
			}
			l.emit(tokLiteral, l.src[l.pos+1:l.pos+1+end])
			l.pos += end + 2
		case c == '$':
			l.pos++
			name := l.lexName()
			if name == "" {
				return fmt.Errorf("xpath: '$' without variable name at offset %d", start)
			}
			l.emit(tokDollar, name)
		case isDigit(c):
			l.lexNumber()
		case isNameStart(rune(c)):
			name := l.lexName()
			l.skipSpace()
			if strings.HasPrefix(l.src[l.pos:], "::") {
				l.pos += 2
				l.emit(tokAxis, name)
				break
			}
			// div/mod/and/or are operators in operator position.
			if l.operatorPosition() {
				switch name {
				case "div", "mod", "and", "or":
					l.emit(tokName, name)
					l.toks[len(l.toks)-1].kind = operatorTok(name)
					continue
				}
			}
			l.emit(tokName, name)
		default:
			return fmt.Errorf("xpath: unexpected character %q at offset %d", c, start)
		}
	}
}

// operator token kinds for the word operators; they reuse tokName text.
const (
	tokDiv tokKind = 100 + iota
	tokMod
	tokAnd
	tokOr
)

func operatorTok(name string) tokKind {
	switch name {
	case "div":
		return tokDiv
	case "mod":
		return tokMod
	case "and":
		return tokAnd
	}
	return tokOr
}

// operatorPosition reports whether the previous token can end an operand,
// which is the XPath 1.0 rule for disambiguating '*' and word operators.
func (l *lexer) operatorPosition() bool {
	if len(l.toks) == 0 {
		return false
	}
	switch l.toks[len(l.toks)-1].kind {
	case tokName, tokNumber, tokLiteral, tokRParen, tokRBracket, tokDot, tokDotDot, tokDollar:
		return true
	}
	return false
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos])
	// fix emit pos bookkeeping: emit uses l.pos, close enough for errors
}

func (l *lexer) lexName() string {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// isNameChar accepts NCName characters. ':' is deliberately excluded:
// the engine works on local names, and excluding it also keeps the '::'
// of axis specifiers out of the name token.
func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
