package xpath

import (
	"fmt"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// planDoc nests elements deeply enough that descendant steps from
// multi-node contexts overlap (the shape the pruning exists for), and
// carries attributes, text, comments and a PI so every node test fires.
const planDoc = `<site>
  <people>
    <person id="p0"><name>ada</name><income>42</income>
      <watches><watch/><watch/><watch/></watches></person>
    <person id="p1"><name>bob gold</name></person>
    <person id="p2"><name>cy</name><income>7</income></person>
  </people>
  <regions>
    <europe>
      <item id="i0"><name>clock</name>
        <desc><parlist><listitem><parlist><listitem><kw>deep</kw></listitem></parlist>
          <kw>mid</kw></listitem></parlist><kw>top</kw></desc></item>
      <item id="i1"><name>vase</name><desc><kw>only</kw></desc></item>
    </europe>
    <asia><item id="i2"><name>gong</name></item></asia>
  </regions>
  <open_auctions>
    <open_auction><bidder><increase>10</increase></bidder>
      <bidder><increase>25</increase></bidder></open_auction>
    <open_auction><bidder><increase>5</increase></bidder></open_auction>
  </open_auctions>
  <!--note-->
  <?pi data?>
</site>`

// planQueries covers every execution strategy the compiler emits: pure
// sequence steps, fused //, fused positional counters, sequence
// predicates, per-node fallbacks (last(), reverse-axis positions), the
// attribute axis, unions, filters and variables.
var planQueries = []string{
	`//kw`,
	`//kw/text()`,
	`//item//kw`,
	`//listitem//kw`,
	`//parlist//parlist//kw`,
	`/site/regions//item/name/text()`,
	`/site//name`,
	`//node()`,
	`//text()`,
	`//comment()`,
	`//processing-instruction()`,
	`//person[1]`,
	`//person[2]/name/text()`,
	`//bidder[1]/increase/text()`,
	`//bidder[position() = 2]/increase/text()`,
	`//item[1]`,
	`//watch[3]`,
	`//watch[4]`,
	`//person[last()]/name/text()`,
	`//person[income]/name/text()`,
	`//person[income > 10]/@id`,
	`//item[desc//kw]/name/text()`,
	`//item[not(desc)]`,
	`//person[@id="p1"]/name/text()`,
	`//@id`,
	`//person/@id`,
	`//item/@id[1]`,
	`//person/attribute::node()`,
	`//kw/ancestor::item/name/text()`,
	`//kw/ancestor::*[1]`,
	`//kw/ancestor::*[last()]`,
	`//kw/ancestor-or-self::node()`,
	`//watch/parent::watches`,
	`//watch/..`,
	`//item/following::kw`,
	`//item/preceding::name/text()`,
	`//bidder/following-sibling::bidder`,
	`//bidder/preceding-sibling::*[1]`,
	`//person/descendant-or-self::*`,
	`//person/descendant::node()`,
	`//name | //kw`,
	`(//kw)[2]/text()`,
	`count(//kw)`,
	`count(//item//kw) + count(//person)`,
	`sum(//income)`,
	`//person[watches/watch[2]]/@id`,
	`//person[name = "cy"]/income/text()`,
	`/site/regions/europe/item[2]/desc/kw/text()`,
	`//desc/kw[last()]`,
	`string(//person[1]/name)`,
	`//person[position() = 2 or @id = "p0"]`,
	`.//kw`,
	`//europe//item[1]/name/text()`,
	// Filter expressions: predicates number against the base sequence.
	`(//person)[income]/name/text()`,
	`(//item)[desc//kw]/@id`,
	`(//item//kw)[2]/text()`,
	`(//person)[2]/name/text()`,
	`(//name | //kw)[contains(., "o")]`,
	`(//person)[income][2]/@id`,
	`($ns)[income]/name/text()`,
	`($ns)[$x]/name/text()`,
	// Untypable but position-free predicates: sequence step with the
	// dynamic numeric fallback ($x is a number, $who a string).
	`//watch[$x]`,
	`//person[$who]/name/text()`,
	`//person[$x]/@id`,
	`//watches[$x]`,
	`//bidder[$x]/increase/text()`,
	`//person[watches/watch[$x]]/@id`,
}

// buildPlanStores shreds planDoc into the read-only store and a paged
// store with interleaved free tuples (PageSize 8, fill 0.7), so the
// sequence operators also cross free runs.
func buildPlanStores(tb testing.TB) (xenc.DocView, xenc.DocView) {
	tb.Helper()
	tr, err := shred.Parse(strings.NewReader(planDoc), shred.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ro, err := rostore.Build(tr)
	if err != nil {
		tb.Fatal(err)
	}
	up, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.7})
	if err != nil {
		tb.Fatal(err)
	}
	return ro, up
}

// planVars builds the variable bindings the battery references: a
// string, a number (exercising the dynamic numeric fallback), and a
// node-set bound from the given view (store-specific pre ranks). The
// node-set is shared across queries, so a filter that destructively
// consumed it instead of copying would poison later queries.
func planVars(tb testing.TB, v xenc.DocView) map[string]Value {
	tb.Helper()
	ns, err := MustParse(`//person`).Select(v)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]Value{"who": String("p1"), "x": Number(2), "ns": ns}
}

// resultKey renders a value into a store-independent comparable form.
func resultKey(v xenc.DocView, val Value) string {
	switch x := val.(type) {
	case NodeSet:
		var b strings.Builder
		fmt.Fprintf(&b, "nodes:%d\n", len(x))
		for _, n := range x {
			kind := "document"
			if n.Attr != NoAttr {
				kind = "attribute"
			} else if n.Pre != DocNodePre {
				kind = v.Kind(n.Pre).String()
			}
			fmt.Fprintf(&b, "%s|%s|%s\n", kind, nodeName(v, n), StringValue(v, n))
		}
		return b.String()
	case Number:
		return "num:" + FormatNumber(float64(x))
	case String:
		return "str:" + string(x)
	case Boolean:
		return fmt.Sprintf("bool:%v", bool(x))
	}
	return fmt.Sprintf("?%T", val)
}

// TestPlanMatchesPerNode is the engine-level differential: every query
// must produce bit-identical results through the compiled pipeline and
// through the node-at-a-time interpreter, on both storage schemas.
func TestPlanMatchesPerNode(t *testing.T) {
	ro, up := buildPlanStores(t)
	for _, q := range planQueries {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, view := range []struct {
			name string
			v    xenc.DocView
		}{{"ro", ro}, {"up", up}} {
			vars := planVars(t, view.v)
			seqVal, seqErr := e.EvalVars(view.v, vars)
			prev := SetPlanEnabled(false)
			perVal, perErr := e.EvalVars(view.v, vars)
			SetPlanEnabled(prev)
			if (seqErr == nil) != (perErr == nil) {
				t.Fatalf("%s on %s: plan err %v, per-node err %v", q, view.name, seqErr, perErr)
			}
			if seqErr != nil {
				continue
			}
			got, want := resultKey(view.v, seqVal), resultKey(view.v, perVal)
			if got != want {
				t.Errorf("%s on %s diverged\nplan:     %s\nper-node: %s", q, view.name, got, want)
			}
		}
	}
}

// TestPlanMatchesAcrossStores pins that the pipeline gives the same
// answers on the dense read-only schema and the free-space-interleaved
// paged schema.
func TestPlanMatchesAcrossStores(t *testing.T) {
	ro, up := buildPlanStores(t)
	roVars, upVars := planVars(t, ro), planVars(t, up)
	for _, q := range planQueries {
		e := MustParse(q)
		a, err1 := e.EvalVars(ro, roVars)
		b, err2 := e.EvalVars(up, upVars)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: ro err %v, up err %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if got, want := resultKey(ro, a), resultKey(up, b); got != want {
			t.Errorf("%s: stores diverged\nro: %s\nup: %s", q, got, want)
		}
	}
}

// TestCompileClassification pins the lowering decisions the plan
// contract documents.
func TestCompileClassification(t *testing.T) {
	cases := []struct {
		q    string
		want []stepKind
	}{
		{`/site/people/person`, []stepKind{opSeq, opSeq, opSeq}},
		{`//kw`, []stepKind{opSeq}},              // fused into descendant::kw
		{`//item//kw`, []stepKind{opSeq, opSeq}}, // both // fused
		// A positional predicate blocks the // collapse (its numbering
		// depends on the uncollapsed context), so the shorthand step
		// survives as a sequence step and the counter fuses into the
		// child step.
		{`//bidder[1]`, []stepKind{opSeq, opFusedPos}},
		{`//person[position() = 2]`, []stepKind{opSeq, opFusedPos}},
		{`//person[last()]`, []stepKind{opSeq, opPerNode}},
		{`//person[income]`, []stepKind{opSeq}}, // seq filter, fused
		{`//kw/ancestor::*[1]`, []stepKind{opSeq, opPerNode}},
		// Untypable but position-free: sequence step with the dynamic
		// numeric fallback armed, and the // collapse suppressed (a
		// numeric value would number against the uncollapsed context).
		{`//watch[$n]`, []stepKind{opSeq, opSeq}},
		{`//item[desc][2]`, []stepKind{opSeq, opPerNode}}, // [2] not leading
		{`//item[2][desc]`, []stepKind{opSeq, opFusedPos}},
	}
	for _, tc := range cases {
		e := MustParse(tc.q)
		pe, ok := e.root.(*pathExpr)
		if !ok {
			t.Fatalf("%s: root is %T", tc.q, e.root)
		}
		var got []stepKind
		for i := range pe.plan.steps {
			got = append(got, pe.plan.steps[i].kind)
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d plan steps (%v), want %d", tc.q, len(got), got, len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: step %d kind %d, want %d", tc.q, i+1, got[i], tc.want[i])
			}
		}
	}

	// The untypable predicate marks its step dynamic; typed ones do not.
	dyn := MustParse(`//watch[$n]`).root.(*pathExpr)
	if !dyn.plan.steps[1].dyn {
		t.Errorf("//watch[$n]: step 2 not marked dyn")
	}
	typed := MustParse(`//person[income]`).root.(*pathExpr)
	if typed.plan.steps[0].dyn {
		t.Errorf("//person[income]: fused step marked dyn")
	}
}

// TestExplain pins the rendering the shell's explain command shows.
func TestExplain(t *testing.T) {
	out := MustParse(`//item//kw`).Explain()
	for _, want := range []string{"query: ", "descendant::item", "descendant::kw", "seq (fused //)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(//item//kw) missing %q:\n%s", want, out)
		}
	}
	out = MustParse(`//bidder[1]/increase`).Explain()
	if !strings.Contains(out, "early-exit pos=1") {
		t.Errorf("Explain missing fused position:\n%s", out)
	}
	out = MustParse(`//person[last()]`).Explain()
	if !strings.Contains(out, "per-node") {
		t.Errorf("Explain missing per-node fallback:\n%s", out)
	}
	// The acceptance shape: a position-free step predicate is a sequence
	// filter on a fused descendant scan, not a per-node fallback.
	out = MustParse(`//item[author]`).Explain()
	if !strings.Contains(out, "seq (fused //), 1 seq filter(s)") || strings.Contains(out, "per-node") {
		t.Errorf("Explain(//item[author]) not an in-place sequence filter:\n%s", out)
	}
	out = MustParse(`//person[profile/age]`).Explain()
	if !strings.Contains(out, "seq (fused //), 1 seq filter(s)") || strings.Contains(out, "per-node") {
		t.Errorf("Explain(//person[profile/age]) not an in-place sequence filter:\n%s", out)
	}
	// Filter expressions render one line per predicate.
	out = MustParse(`(//item)[author][2]`).Explain()
	if !strings.Contains(out, "filter [child::author]: seq (in-place)") {
		t.Errorf("Explain missing in-place filter line:\n%s", out)
	}
	if !strings.Contains(out, "filter [2]: seq (in-place)") {
		t.Errorf("Explain: numeric filter predicate should stay in place (sequence position IS its numbering):\n%s", out)
	}
	out = MustParse(`(//item)[position() = 2]`).Explain()
	if !strings.Contains(out, "filter [(position() = 2)]: per-node (positional)") {
		t.Errorf("Explain missing positional filter line:\n%s", out)
	}
	// A dynamic step predicate advertises its runtime fallback.
	out = MustParse(`//watch[$n]`).Explain()
	if !strings.Contains(out, "dyn: numeric falls back per-node") {
		t.Errorf("Explain missing dyn marker:\n%s", out)
	}
}

// TestFilterExprClassification pins the per-predicate classification of
// filter expressions: every position-free predicate — typed or not —
// filters the base sequence in place; only position()/last() keep the
// allocating per-node path. A variable base is borrowed, not owned.
func TestFilterExprClassification(t *testing.T) {
	cases := []struct {
		q     string
		seq   []bool
		owned bool
	}{
		{`(//item)[author]`, []bool{true}, true},
		{`(//item)[author][position() = 2]`, []bool{true, false}, true},
		{`(//item)[last()]`, []bool{false}, true},
		{`(//item)[$n]`, []bool{true}, true},
		{`(//item)[2]`, []bool{true}, true},
		{`($ns)[author]`, []bool{true}, false},
		{`(//a | //b)[c]`, []bool{true}, true},
	}
	for _, tc := range cases {
		f, ok := MustParse(tc.q).root.(*filterExpr)
		if !ok {
			t.Fatalf("%s: root is not a filterExpr", tc.q)
		}
		if len(f.seq) != len(tc.seq) {
			t.Fatalf("%s: %d seq marks, want %d", tc.q, len(f.seq), len(tc.seq))
		}
		for i := range f.seq {
			if f.seq[i] != tc.seq[i] {
				t.Errorf("%s: pred %d seq=%v, want %v", tc.q, i, f.seq[i], tc.seq[i])
			}
		}
		if f.ownedBase != tc.owned {
			t.Errorf("%s: ownedBase=%v, want %v", tc.q, f.ownedBase, tc.owned)
		}
	}
}

// TestFilterExprPreservesVariableBinding pins the defensive copy: a
// filter over a variable-bound node-set must not mutate the binding,
// which the caller may reuse.
func TestFilterExprPreservesVariableBinding(t *testing.T) {
	ro, _ := buildPlanStores(t)
	persons, err := MustParse(`//person`).Select(ro)
	if err != nil || len(persons) != 3 {
		t.Fatalf("persons: %v %v", persons, err)
	}
	orig := append(NodeSet{}, persons...)
	vars := map[string]Value{"ns": persons}
	got, err := MustParse(`($ns)[income]`).SelectVars(ro, vars)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("($ns)[income] = %d nodes, want 2", len(got))
	}
	for i := range persons {
		if persons[i] != orig[i] {
			t.Fatalf("filter mutated the variable binding at %d: %v != %v", i, persons[i], orig[i])
		}
	}
}

// TestDynPredicateFallback pins the runtime numeric fallback: an
// untypable predicate that turns out numeric selects by per-context
// position (node-at-a-time semantics), string/boolean/node-set values
// filter over the sequence.
func TestDynPredicateFallback(t *testing.T) {
	ro, _ := buildPlanStores(t)
	// $x = 2 over //watch: each watches context numbers its own children,
	// so [2] picks the second watch of the single watches element.
	got, err := MustParse(`//watch[$x]`).SelectVars(ro, map[string]Value{"x": Number(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("//watch[$x=2] = %d nodes, want 1", len(got))
	}
	// A string value is truthy iff non-empty: every person qualifies.
	got, err = MustParse(`//person[$who]`).SelectVars(ro, map[string]Value{"who": String("p1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("//person[$who] = %d nodes, want 3", len(got))
	}
	// Empty string is falsy: nothing qualifies.
	got, err = MustParse(`//person[$who]`).SelectVars(ro, map[string]Value{"who": String("")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf(`//person[$who=""] = %d nodes, want 0`, len(got))
	}
}

// TestPlanUnsortedVariableContext pins the staircase input contract: a
// variable bound to an unordered node-set context must still evaluate
// correctly (the plan sorts and dedupes before piping).
func TestPlanUnsortedVariableContext(t *testing.T) {
	ro, _ := buildPlanStores(t)
	persons, err := MustParse(`//person`).Select(ro)
	if err != nil || len(persons) != 3 {
		t.Fatalf("persons: %v %v", persons, err)
	}
	// Reversed, with a duplicate.
	unsorted := NodeSet{persons[2], persons[1], persons[0], persons[1]}
	vars := map[string]Value{"ns": unsorted}
	got, err := MustParse(`$ns/name/text()`).SelectVars(ro, vars)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("$ns/name/text() = %d nodes, want 3", len(got))
	}
	want := []string{"ada", "bob gold", "cy"}
	for i, n := range got {
		if StringValue(ro, n) != want[i] {
			t.Errorf("result %d = %q, want %q", i, StringValue(ro, n), want[i])
		}
	}
}
