package xpath

import (
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// FuzzXPathParse feeds arbitrary strings to the XPath compiler. Parse
// must either return an error or an expression whose Source round-trips
// and which survives evaluation against a tiny document — it must never
// panic, loop, or index out of range, whatever the lexer and parser are
// handed. The seed corpus covers the grammar: all axes, node tests,
// predicates, functions, operators, literals and variables.
func FuzzXPathParse(f *testing.F) {
	seeds := []string{
		// Paths and axes.
		`/`, `//person`, `/site/people/person/name/text()`,
		`//person/descendant-or-self::person`, `//d/ancestor::*[1]`,
		`//f/preceding-sibling::*[1]`, `//item[1]/preceding::person`,
		`//person[1]/following::item`, `//watch/ancestor-or-self::*`,
		`//increase/parent::bidder`, `./name/..`, `.//watch`,
		`//@id`, `//person/@id`, `child::*/attribute::id`,
		// Node tests.
		`//node()`, `//text()`, `//comment()`,
		`//processing-instruction()`, `//processing-instruction("tgt")`,
		// Predicates and positions.
		`//person[2]`, `//person[position() = 2]`, `//person[last()]`,
		`//person[@id="person0"]`, `//person[not(watches)]`,
		`//open_auction[bidder/increase > 10]`, `(//a)[1]/text()`,
		`//person/name[../income]`, `(1)[2]`, `("x")[1]/b`,
		// Operators.
		`1 + 2 * 3 - 4 div 5 mod 6`, `-1`, `- -1`, `1 < 2 or 3 >= 4 and 5 != 6`,
		`//name | //income`, `//a | 3`, `//person/@id = "person2"`,
		`//person/name = //item/name`, `"a" != "a"`,
		// Functions.
		`count(//person)`, `sum(//income)`, `floor(1.5)`, `ceiling(1.5)`,
		`round(2.5)`, `number("7")`, `string(123)`, `boolean(0)`,
		`concat("a", "-", "b")`, `contains(name, "gold")`,
		`starts-with(name(), "open_a")`, `substring("hello", 2, 3)`,
		`substring-before("a-b", "-")`, `substring-after("a-b", "-")`,
		`normalize-space("  x   y ")`, `string-length()`, `translate("abc","ab","x")`,
		`local-name()`, `true()`, `false()`, `not(true())`, `position()`,
		// Variables, literals, whitespace.
		`$who`, `//person[@id = $who]/name`, `'single'`, `"double"`,
		`  //a  [  1  ]  `, `3.14159`, `.5`, `5.`,
		// Malformed shapes that must error cleanly.
		`//person]`, `!`, `, `, `(`, `)`, `[`, `]`, `@`, `::`, `//`, `///`,
		`"unterminated`, `'unterminated`, `1 +`, `foo(`, `$`, `//a[`,
		`processing-instruction(`, `a//`, `..a`, `. .`, `1e`, `0x10`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	doc := buildFuzzDoc(f)
	f.Fuzz(func(t *testing.T, src string) {
		// Reject pathological inputs that are legal but exponentially
		// nested; the parser is recursive descent, and Go's fuzzer finds
		// multi-kilobyte bracket towers that only test stack depth.
		if len(src) > 4096 {
			t.Skip()
		}
		expr, err := Parse(src)
		if err != nil {
			return
		}
		if got := expr.Source(); got != src {
			t.Fatalf("Source() = %q, want %q", got, src)
		}
		// A successfully compiled expression must also evaluate without
		// panicking (errors are fine: unbound variables etc.).
		vars := map[string]Value{"who": String("w"), "x": Number(1)}
		_, _ = expr.EvalVars(doc, vars)
	})
}

// FuzzXPathEval is the evaluation-side differential fuzzer: every query
// that parses is evaluated three ways — through the compiled
// sequence-at-a-time pipeline on the paged store (free tuples
// interleaved), through the node-at-a-time interpreter on the same
// store, and through the interpreter on the naive dense oracle — and all
// three must agree on error-ness and, modulo physical pre ranks, on the
// result. This crosses both dimensions at once: plan vs. interpreter
// (the compiler's predicate classification and // fusion) and paged vs.
// dense storage (free-run skipping in the staircase operators).
func FuzzXPathEval(f *testing.F) {
	seeds := []string{
		// Shapes the compiler rewrites: descendant fusion, sequence
		// predicates, fused positional counters.
		`//kw`, `//item//kw`, `//listitem//kw/text()`, `/site//name`,
		`//person[income]/name/text()`, `//item[desc//kw]/@id`,
		`//bidder[1]/increase/text()`, `//person[position() = 2]`,
		`//watch[2]`, `//item[1]//kw`, `(//kw)[2]`, `//desc/kw[last()]`,
		// Shapes that stay per-node: reverse-axis numbering.
		`//kw/ancestor::*[1]`, `//kw/ancestor::node()[last()]`,
		`//bidder/preceding-sibling::*[1]`, `//f/preceding::*[2]`,
		// Attribute axis, unions, functions, operators, variables.
		`//@id`, `//person/@id[1]`, `//name | //kw`, `count(//kw)`,
		`sum(//income)`, `//person[@id = $who]/name`,
		`//person[name = "cy"]`, `string(//item[1])`, `//node()`,
		`//text()`, `//comment()`, `//processing-instruction()`,
		`//person/descendant-or-self::*`, `//item/following::kw`,
		`//watch/..`, `.//kw`, `1 + count(//item//kw) * 2`,
		// Filter expressions: in-place sequence filters over the base.
		`(//person)[income]/name/text()`, `(//item//kw)[2]/text()`,
		`(//person)[income][2]/@id`, `(//name | //kw)[contains(., "o")]`,
		`(//item)[desc//kw]`, `(//person)[$x]`, `(//person)[$who]`,
		// Untypable step predicates: dyn sequence steps whose numeric
		// fallback reruns the step per-node ($x is a number).
		`//watch[$x]`, `//person[$x]/@id`, `//person[$who]/name`,
		`//bidder[$x]/increase/text()`, `//person[watches/watch[$x]]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	tr, err := shred.Parse(strings.NewReader(fuzzEvalDoc), shred.Options{})
	if err != nil {
		f.Fatal(err)
	}
	oracle, err := naive.Build(tr)
	if err != nil {
		f.Fatal(err)
	}
	paged, err := core.Build(tr, core.Options{PageSize: 8, FillFactor: 0.7})
	if err != nil {
		f.Fatal(err)
	}
	vars := map[string]Value{"who": String("p1"), "x": Number(2)}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			t.Skip()
		}
		expr, err := Parse(src)
		if err != nil {
			return
		}
		planned, errPlan := fuzzFingerprint(paged, expr, vars)
		prev := SetPlanEnabled(false)
		perNode, errPer := fuzzFingerprint(paged, expr, vars)
		dense, errNaive := fuzzFingerprint(oracle, expr, vars)
		SetPlanEnabled(prev)
		if (errPlan == nil) != (errPer == nil) || (errPlan == nil) != (errNaive == nil) {
			t.Fatalf("%q: error disagreement: plan=%v per-node=%v naive=%v",
				src, errPlan, errPer, errNaive)
		}
		if errPlan != nil {
			return
		}
		if planned != perNode {
			t.Fatalf("%q: plan diverged from per-node\nplan:     %s\nper-node: %s",
				src, planned, perNode)
		}
		if planned != dense {
			t.Fatalf("%q: paged diverged from naive oracle\npaged: %s\nnaive: %s",
				src, planned, dense)
		}
	})
}

// fuzzEvalDoc nests elements deeply (overlapping descendant regions, the
// pruning's home turf) and carries every node kind.
const fuzzEvalDoc = `<site><people>` +
	`<person id="p0"><name>ada</name><income>42</income>` +
	`<watches><watch/><watch/><watch/></watches></person>` +
	`<person id="p1"><name>bob gold</name></person>` +
	`<person id="p2"><name>cy</name><income>7</income></person></people>` +
	`<regions><europe><item id="i0"><name>clock</name>` +
	`<desc><parlist><listitem><parlist><listitem><kw>deep</kw></listitem>` +
	`</parlist><kw>mid</kw></listitem></parlist><kw>top</kw></desc></item>` +
	`<item id="i1"><name>vase</name><desc><kw>only</kw></desc></item></europe>` +
	`<asia><item id="i2"><name>gong</name></item></asia></regions>` +
	`<open_auctions><open_auction><bidder><increase>10</increase></bidder>` +
	`<bidder><increase>25</increase></bidder></open_auction>` +
	`<open_auction><bidder><increase>5</increase></bidder></open_auction>` +
	`</open_auctions><e/><f/><!--c--><?tgt data?></site>`

// fuzzFingerprint renders a result in a form independent of physical pre
// ranks, so the paged store (with free tuples) and the dense oracle
// compare equal when they agree logically (the rendering is resultKey
// from plan_test.go).
func fuzzFingerprint(v xenc.DocView, e *Expr, vars map[string]Value) (string, error) {
	val, err := e.EvalVars(v, vars)
	if err != nil {
		return "", err
	}
	return resultKey(v, val), nil
}

func buildFuzzDoc(f *testing.F) xenc.DocView {
	f.Helper()
	tr, err := shred.Parse(strings.NewReader(
		`<site><people><person id="person0"><name>a b</name><income>42</income></person><person id="person1"><name>gold</name></person></people><open_auctions><open_auction><bidder><increase>20</increase></bidder></open_auction></open_auctions><!--c--><?tgt data?></site>`),
		shred.Options{})
	if err != nil {
		f.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		f.Fatal(err)
	}
	return v
}
