package xpath

import (
	"strings"
	"testing"

	"mxq/internal/rostore"
	"mxq/internal/shred"
	"mxq/internal/xenc"
)

// FuzzXPathParse feeds arbitrary strings to the XPath compiler. Parse
// must either return an error or an expression whose Source round-trips
// and which survives evaluation against a tiny document — it must never
// panic, loop, or index out of range, whatever the lexer and parser are
// handed. The seed corpus covers the grammar: all axes, node tests,
// predicates, functions, operators, literals and variables.
func FuzzXPathParse(f *testing.F) {
	seeds := []string{
		// Paths and axes.
		`/`, `//person`, `/site/people/person/name/text()`,
		`//person/descendant-or-self::person`, `//d/ancestor::*[1]`,
		`//f/preceding-sibling::*[1]`, `//item[1]/preceding::person`,
		`//person[1]/following::item`, `//watch/ancestor-or-self::*`,
		`//increase/parent::bidder`, `./name/..`, `.//watch`,
		`//@id`, `//person/@id`, `child::*/attribute::id`,
		// Node tests.
		`//node()`, `//text()`, `//comment()`,
		`//processing-instruction()`, `//processing-instruction("tgt")`,
		// Predicates and positions.
		`//person[2]`, `//person[position() = 2]`, `//person[last()]`,
		`//person[@id="person0"]`, `//person[not(watches)]`,
		`//open_auction[bidder/increase > 10]`, `(//a)[1]/text()`,
		`//person/name[../income]`, `(1)[2]`, `("x")[1]/b`,
		// Operators.
		`1 + 2 * 3 - 4 div 5 mod 6`, `-1`, `- -1`, `1 < 2 or 3 >= 4 and 5 != 6`,
		`//name | //income`, `//a | 3`, `//person/@id = "person2"`,
		`//person/name = //item/name`, `"a" != "a"`,
		// Functions.
		`count(//person)`, `sum(//income)`, `floor(1.5)`, `ceiling(1.5)`,
		`round(2.5)`, `number("7")`, `string(123)`, `boolean(0)`,
		`concat("a", "-", "b")`, `contains(name, "gold")`,
		`starts-with(name(), "open_a")`, `substring("hello", 2, 3)`,
		`substring-before("a-b", "-")`, `substring-after("a-b", "-")`,
		`normalize-space("  x   y ")`, `string-length()`, `translate("abc","ab","x")`,
		`local-name()`, `true()`, `false()`, `not(true())`, `position()`,
		// Variables, literals, whitespace.
		`$who`, `//person[@id = $who]/name`, `'single'`, `"double"`,
		`  //a  [  1  ]  `, `3.14159`, `.5`, `5.`,
		// Malformed shapes that must error cleanly.
		`//person]`, `!`, `, `, `(`, `)`, `[`, `]`, `@`, `::`, `//`, `///`,
		`"unterminated`, `'unterminated`, `1 +`, `foo(`, `$`, `//a[`,
		`processing-instruction(`, `a//`, `..a`, `. .`, `1e`, `0x10`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	doc := buildFuzzDoc(f)
	f.Fuzz(func(t *testing.T, src string) {
		// Reject pathological inputs that are legal but exponentially
		// nested; the parser is recursive descent, and Go's fuzzer finds
		// multi-kilobyte bracket towers that only test stack depth.
		if len(src) > 4096 {
			t.Skip()
		}
		expr, err := Parse(src)
		if err != nil {
			return
		}
		if got := expr.Source(); got != src {
			t.Fatalf("Source() = %q, want %q", got, src)
		}
		// A successfully compiled expression must also evaluate without
		// panicking (errors are fine: unbound variables etc.).
		vars := map[string]Value{"who": String("w"), "x": Number(1)}
		_, _ = expr.EvalVars(doc, vars)
	})
}

func buildFuzzDoc(f *testing.F) xenc.DocView {
	f.Helper()
	tr, err := shred.Parse(strings.NewReader(
		`<site><people><person id="person0"><name>a b</name><income>42</income></person><person id="person1"><name>gold</name></person></people><open_auctions><open_auction><bidder><increase>20</increase></bidder></open_auction></open_auctions><!--c--><?tgt data?></site>`),
		shred.Options{})
	if err != nil {
		f.Fatal(err)
	}
	v, err := rostore.Build(tr)
	if err != nil {
		f.Fatal(err)
	}
	return v
}
