package xpath

import (
	"fmt"
	"strconv"
)

// Expr is a compiled XPath expression, safe for concurrent evaluation.
type Expr struct {
	root expr
	src  string
}

// String returns a normalized rendering of the expression.
func (e *Expr) String() string { return e.root.String() }

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// Parse compiles an XPath 1.0 expression (the subset described in the
// package documentation).
func Parse(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("xpath: %w (in %q)", err, src)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpath: trailing input at %v (in %q)", p.peek(), src)
	}
	// Lower every location path into its sequence-at-a-time plan (see
	// compile.go); the compiled form is immutable and safe to share, so
	// Prepared queries pay for compilation exactly once.
	compilePlans(root)
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for statically known expressions.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []token
	at   int
}

func (p *parser) peek() token { return p.toks[p.at] }
func (p *parser) next() token { t := p.toks[p.at]; p.at++; return t }
func (p *parser) accept(k tokKind) bool {
	if p.toks[p.at].kind == k {
		p.at++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.toks[p.at].kind != k {
		return token{}, fmt.Errorf("expected %s, found %v", what, p.toks[p.at])
	}
	return p.next(), nil
}

// parseExpr := OrExpr
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokEq:
			op = "="
		case tokNeq:
			op = "!="
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseRelational() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokLt:
			op = "<"
		case tokLe:
			op = "<="
		case tokGt:
			op = ">"
		case tokGe:
			op = ">="
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokStar:
			op = "*"
		case tokDiv:
			op = "div"
		case tokMod:
			op = "mod"
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binaryExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokMinus) {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{e: e}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (expr, error) {
	l, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		l = &unionExpr{l: l, r: r}
	}
	return l, nil
}

// parsePath := LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)?
func (p *parser) parsePath() (expr, error) {
	switch p.peek().kind {
	case tokSlash:
		p.next()
		pe := &pathExpr{absolute: true}
		if p.startsStep() {
			if err := p.parseRelativePath(pe); err != nil {
				return nil, err
			}
		}
		return pe, nil
	case tokDblSlash:
		p.next()
		pe := &pathExpr{absolute: true}
		pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, tk: testNode})
		if err := p.parseRelativePath(pe); err != nil {
			return nil, err
		}
		return pe, nil
	}
	if p.startsPrimary() {
		base, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []expr
		for p.peek().kind == tokLBracket {
			pr, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pr)
		}
		if len(preds) > 0 {
			base = &filterExpr{base: base, preds: preds}
		}
		if p.peek().kind == tokSlash || p.peek().kind == tokDblSlash {
			pe := &pathExpr{start: base}
			if p.accept(tokDblSlash) {
				pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, tk: testNode})
			} else {
				p.next()
			}
			if err := p.parseRelativePath(pe); err != nil {
				return nil, err
			}
			return pe, nil
		}
		return base, nil
	}
	pe := &pathExpr{}
	if err := p.parseRelativePath(pe); err != nil {
		return nil, err
	}
	return pe, nil
}

// startsPrimary reports whether the next token begins a primary
// expression rather than a location path. A name followed by '(' is a
// function call unless it is a node-type test.
func (p *parser) startsPrimary() bool {
	switch p.peek().kind {
	case tokNumber, tokLiteral, tokLParen, tokDollar:
		return true
	case tokName:
		if p.toks[p.at+1].kind == tokLParen && !isNodeType(p.peek().text) {
			return true
		}
	}
	return false
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokAt, tokDot, tokDotDot, tokAxis:
		return true
	}
	return false
}

func isNodeType(name string) bool {
	switch name {
	case "node", "text", "comment", "processing-instruction":
		return true
	}
	return false
}

func (p *parser) parseRelativePath(pe *pathExpr) error {
	for {
		st, err := p.parseStep()
		if err != nil {
			return err
		}
		pe.steps = append(pe.steps, st)
		if p.accept(tokSlash) {
			continue
		}
		if p.accept(tokDblSlash) {
			pe.steps = append(pe.steps, step{axis: AxisDescendantOrSelf, tk: testNode})
			continue
		}
		return nil
	}
}

func (p *parser) parseStep() (step, error) {
	var st step
	switch p.peek().kind {
	case tokDot:
		p.next()
		return step{axis: AxisSelf, tk: testNode}, nil
	case tokDotDot:
		p.next()
		return step{axis: AxisParent, tk: testNode}, nil
	case tokAt:
		p.next()
		st.axis = AxisAttribute
	case tokAxis:
		t := p.next()
		ax, ok := axisNames[t.text]
		if !ok {
			return st, fmt.Errorf("unknown axis %q", t.text)
		}
		st.axis = ax
	default:
		st.axis = AxisChild
	}
	if err := p.parseNodeTest(&st); err != nil {
		return st, err
	}
	for p.peek().kind == tokLBracket {
		pr, err := p.parsePredicate()
		if err != nil {
			return st, err
		}
		st.preds = append(st.preds, pr)
	}
	return st, nil
}

func (p *parser) parseNodeTest(st *step) error {
	t, err := p.expect(tokName, "node test")
	if err != nil {
		return err
	}
	if p.peek().kind == tokLParen && isNodeType(t.text) {
		p.next()
		switch t.text {
		case "node":
			st.tk = testNode
		case "text":
			st.tk = testText
		case "comment":
			st.tk = testComment
		case "processing-instruction":
			st.tk = testPI
			if p.peek().kind == tokLiteral {
				st.name = p.next().text
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		return nil
	}
	st.tk = testName
	if t.text != "*" {
		st.name = t.text
	}
	return nil
}

func (p *parser) parsePredicate() (expr, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parsePrimary() (expr, error) {
	switch t := p.next(); t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return numberLit(f), nil
	case tokLiteral:
		return stringLit(t.text), nil
	case tokDollar:
		return varRef(t.text), nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		// Function call (startsPrimary guaranteed the '(').
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		fc := &funcCall{name: t.text}
		if p.peek().kind != tokRParen {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.args = append(fc.args, arg)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return fc, nil
	default:
		return nil, fmt.Errorf("unexpected %v", t)
	}
}
